// Tests of the 64-bit LCG and its O(log n) jump-ahead — the property that
// lets every rank regenerate any part of A on the fly.
#include <gtest/gtest.h>

#include <cstdint>

#include "gen/lcg.h"

namespace hplmxp {
namespace {

TEST(Lcg, SequentialDeterminism) {
  Lcg64 a(123);
  Lcg64 b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Lcg, DifferentSeedsDiffer) {
  Lcg64 a(1);
  Lcg64 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.next() == b.next() ? 1 : 0;
  }
  EXPECT_EQ(same, 0);
}

class LcgJumpTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LcgJumpTest, JumpEqualsNSteps) {
  const std::uint64_t n = GetParam();
  const std::uint64_t seed = 0xDEADBEEFCAFEF00DULL;
  Lcg64 seq(seed);
  for (std::uint64_t i = 0; i < n; ++i) {
    seq.next();
  }
  EXPECT_EQ(Lcg64::jumped(seed, n), seq.state()) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(JumpLengths, LcgJumpTest,
                         ::testing::Values(0, 1, 2, 3, 7, 8, 63, 64, 65, 100,
                                           255, 256, 1000, 4097, 65536,
                                           1000000));

TEST(Lcg, JumpComposes) {
  // Property: jump(a) then jump(b) == jump(a+b), for many (a, b).
  const std::uint64_t seed = 42;
  for (std::uint64_t a = 0; a < 50; a += 7) {
    for (std::uint64_t b = 0; b < 5000; b += 431) {
      const std::uint64_t s1 = Lcg64::jumped(Lcg64::jumped(seed, a), b);
      const std::uint64_t s2 = Lcg64::jumped(seed, a + b);
      EXPECT_EQ(s1, s2) << "a=" << a << " b=" << b;
    }
  }
}

TEST(Lcg, JumpHugeOffsetsFinish) {
  // O(log n) even for offsets like N^2 with N = 20M (Frontier-scale).
  const std::uint64_t huge = 20606976ULL * 20606976ULL;
  const std::uint64_t s = Lcg64::jumped(7, huge);
  EXPECT_NE(s, Lcg64::jumped(7, huge - 1));
  // And it matches one more sequential step from huge-1.
  EXPECT_EQ(s, Lcg64::jumped(7, huge - 1) * Lcg64::kMultiplier +
                   Lcg64::kIncrement);
}

TEST(Lcg, UniformRange) {
  Lcg64 g(99);
  double mean = 0.0;
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const double u = Lcg64::toUniform(g.next());
    ASSERT_GE(u, -0.5);
    ASSERT_LT(u, 0.5);
    mean += u;
  }
  mean /= kSamples;
  EXPECT_NEAR(mean, 0.0, 0.01);  // ~0 within sampling noise
}

TEST(Lcg, JumpZeroIsIdentity) {
  EXPECT_EQ(Lcg64::jumped(0x123456789ULL, 0), 0x123456789ULL);
}

}  // namespace
}  // namespace hplmxp
