// TRSM kernels vs the reference oracle and vs direct reconstruction
// (op(A) * X == alpha * B), over all side/uplo/diag combinations.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "blas/gemm.h"
#include "blas/reference.h"
#include "blas/trsm.h"

namespace hplmxp {
namespace {

using blas::Diag;
using blas::Side;
using blas::Trans;
using blas::Uplo;

/// Builds a well-conditioned triangular matrix: unit-ish diagonal dominance.
std::vector<float> triangularMatrix(index_t n, Uplo uplo, Diag diag,
                                    unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> d(-0.4f, 0.4f);
  std::vector<float> a(static_cast<std::size_t>(n * n), 0.0f);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      const bool inTri = uplo == Uplo::kLower ? i > j : i < j;
      if (inTri) {
        a[static_cast<std::size_t>(i + j * n)] = d(rng) / static_cast<float>(n);
      }
    }
    a[static_cast<std::size_t>(j + j * n)] =
        diag == Diag::kUnit ? 1.0f : 2.0f + d(rng);
  }
  return a;
}

struct TrsmCase {
  Side side;
  Uplo uplo;
  Diag diag;
  index_t m, n;
  float alpha;
};

class TrsmTest : public ::testing::TestWithParam<TrsmCase> {};

TEST_P(TrsmTest, MatchesReference) {
  const TrsmCase c = GetParam();
  const index_t tri = c.side == Side::kLeft ? c.m : c.n;
  auto a = triangularMatrix(tri, c.uplo, c.diag, 11);
  std::mt19937 rng(13);
  std::uniform_real_distribution<float> d(-1.0f, 1.0f);
  std::vector<float> b1(static_cast<std::size_t>(c.m * c.n));
  for (auto& x : b1) {
    x = d(rng);
  }
  auto b2 = b1;
  blas::strsm(c.side, c.uplo, c.diag, c.m, c.n, c.alpha, a.data(), tri,
              b1.data(), c.m);
  blas::ref::trsm<float>(c.side, c.uplo, c.diag, c.m, c.n, c.alpha, a.data(),
                         tri, b2.data(), c.m);
  for (std::size_t i = 0; i < b1.size(); ++i) {
    EXPECT_NEAR(b1[i], b2[i], 1e-4f) << "i=" << i;
  }
}

TEST_P(TrsmTest, SolutionReconstructsRhs) {
  const TrsmCase c = GetParam();
  const index_t tri = c.side == Side::kLeft ? c.m : c.n;
  auto a = triangularMatrix(tri, c.uplo, c.diag, 17);
  // Fill the untouched triangle with garbage: TRSM must ignore it.
  for (index_t j = 0; j < tri; ++j) {
    for (index_t i = 0; i < tri; ++i) {
      const bool inTri =
          c.uplo == Uplo::kLower ? i >= j : i <= j;
      if (!inTri) {
        a[static_cast<std::size_t>(i + j * tri)] = 777.0f;
      }
    }
  }
  std::mt19937 rng(19);
  std::uniform_real_distribution<float> d(-1.0f, 1.0f);
  std::vector<float> b(static_cast<std::size_t>(c.m * c.n));
  for (auto& v : b) {
    v = d(rng);
  }
  auto x = b;
  blas::strsm(c.side, c.uplo, c.diag, c.m, c.n, c.alpha, a.data(), tri,
              x.data(), c.m);

  // Rebuild a clean dense triangular factor and multiply back.
  std::vector<float> full(static_cast<std::size_t>(tri * tri), 0.0f);
  for (index_t j = 0; j < tri; ++j) {
    for (index_t i = 0; i < tri; ++i) {
      const bool inTri = c.uplo == Uplo::kLower ? i > j : i < j;
      if (inTri) {
        full[static_cast<std::size_t>(i + j * tri)] =
            a[static_cast<std::size_t>(i + j * tri)];
      }
    }
    full[static_cast<std::size_t>(j + j * tri)] =
        c.diag == Diag::kUnit ? 1.0f : a[static_cast<std::size_t>(j + j * tri)];
  }
  std::vector<float> back(static_cast<std::size_t>(c.m * c.n), 0.0f);
  if (c.side == Side::kLeft) {
    blas::sgemm(Trans::kNoTrans, Trans::kNoTrans, c.m, c.n, c.m, 1.0f,
                full.data(), tri, x.data(), c.m, 0.0f, back.data(), c.m);
  } else {
    blas::sgemm(Trans::kNoTrans, Trans::kNoTrans, c.m, c.n, c.n, 1.0f,
                x.data(), c.m, full.data(), tri, 0.0f, back.data(), c.m);
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(back[i], c.alpha * b[i], 2e-4f) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, TrsmTest,
    ::testing::Values(
        // The two variants Algorithm 1 uses:
        TrsmCase{Side::kLeft, Uplo::kLower, Diag::kUnit, 32, 96, 1.0f},
        TrsmCase{Side::kRight, Uplo::kUpper, Diag::kNonUnit, 96, 32, 1.0f},
        // Mirrors and scalars:
        TrsmCase{Side::kLeft, Uplo::kUpper, Diag::kNonUnit, 48, 20, 2.0f},
        TrsmCase{Side::kRight, Uplo::kLower, Diag::kUnit, 20, 48, -1.0f},
        TrsmCase{Side::kLeft, Uplo::kLower, Diag::kNonUnit, 1, 1, 1.0f},
        TrsmCase{Side::kLeft, Uplo::kUpper, Diag::kUnit, 65, 33, 0.5f},
        TrsmCase{Side::kRight, Uplo::kUpper, Diag::kUnit, 33, 65, 1.0f},
        TrsmCase{Side::kRight, Uplo::kLower, Diag::kNonUnit, 40, 37, 1.0f}));

TEST(Trsm, DoublePrecisionVariant) {
  const index_t n = 64;
  std::vector<double> a(static_cast<std::size_t>(n * n), 0.0);
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> d(-0.3, 0.3);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j + 1; i < n; ++i) {
      a[static_cast<std::size_t>(i + j * n)] = d(rng);
    }
    a[static_cast<std::size_t>(j + j * n)] = 1.0;
  }
  std::vector<double> b1(static_cast<std::size_t>(n * 8));
  for (auto& v : b1) {
    v = d(rng);
  }
  auto b2 = b1;
  blas::dtrsm(Side::kLeft, Uplo::kLower, Diag::kUnit, n, 8, 1.0, a.data(), n,
              b1.data(), n);
  blas::ref::trsm<double>(Side::kLeft, Uplo::kLower, Diag::kUnit, n, 8, 1.0,
                          a.data(), n, b2.data(), n);
  for (std::size_t i = 0; i < b1.size(); ++i) {
    EXPECT_NEAR(b1[i], b2[i], 1e-12);
  }
}

TEST(Trsm, EmptyDimsAreNoOps) {
  float a = 1.0f;
  float b = 5.0f;
  blas::strsm(Side::kLeft, Uplo::kLower, Diag::kUnit, 0, 0, 1.0f, &a, 1, &b,
              1);
  EXPECT_EQ(b, 5.0f);
}

}  // namespace
}  // namespace hplmxp
