// Cross-validation of the software binary16 against the compiler's native
// _Float16 (GCC on x86-64 emulates IEEE binary16 exactly). This pins our
// conversion to the reference semantics over the ENTIRE binary16 space and
// a dense sweep of the float space — the strongest possible oracle for the
// precision behaviour the whole mixed-precision benchmark rests on.
#include <gtest/gtest.h>

#ifdef __FLT16_MANT_DIG__
#define HPLMXP_HAS_NATIVE_F16 1
#endif

#include <cmath>
#include <cstdint>
#include <cstring>

#include "fp16/half.h"

namespace hplmxp {
namespace {

#ifdef HPLMXP_HAS_NATIVE_F16

std::uint16_t nativeBits(float f) {
  const _Float16 h = static_cast<_Float16>(f);
  std::uint16_t bits;
  std::memcpy(&bits, &h, sizeof(bits));
  return bits;
}

float nativeToFloat(std::uint16_t bits) {
  _Float16 h;
  std::memcpy(&h, &bits, sizeof(bits));
  return static_cast<float>(h);
}

TEST(HalfNative, WideningMatchesForAllBitPatterns) {
  for (std::uint32_t b = 0; b <= 0xFFFFu; ++b) {
    const auto bits = static_cast<std::uint16_t>(b);
    const float ours = half16::toFloatBits(bits);
    const float ref = nativeToFloat(bits);
    if (std::isnan(ref)) {
      EXPECT_TRUE(std::isnan(ours)) << "bits=" << b;
      continue;
    }
    EXPECT_EQ(ours, ref) << "bits=" << b;
    // Signed zero must match too.
    EXPECT_EQ(std::signbit(ours), std::signbit(ref)) << "bits=" << b;
  }
}

TEST(HalfNative, NarrowingMatchesOnDenseExponentSweep) {
  // Every float exponent from far-underflow to overflow, with mantissa
  // patterns chosen to hit round-down / tie / round-up cases.
  const std::uint32_t mantissas[] = {
      0x000000u, 0x000001u, 0x0FFFFFu, 0x100000u, 0x100001u, 0x1FFFFFu,
      0x200000u, 0x2FFFFFu, 0x300000u, 0x3FFFFFu, 0x400000u, 0x5A5A5Au,
      0x7FFFFEu, 0x7FFFFFu};
  for (int exp = 0; exp <= 254; ++exp) {
    for (std::uint32_t m : mantissas) {
      for (std::uint32_t sign : {0u, 0x80000000u}) {
        const std::uint32_t fb =
            sign | (static_cast<std::uint32_t>(exp) << 23) | m;
        float f;
        std::memcpy(&f, &fb, sizeof(f));
        ASSERT_EQ(half16::fromFloat(f), nativeBits(f))
            << "float bits=" << std::hex << fb;
      }
    }
  }
}

TEST(HalfNative, NarrowingMatchesOnPseudoRandomFloats) {
  std::uint64_t state = 0x1234567890ABCDEFULL;
  for (int i = 0; i < 2000000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto fb = static_cast<std::uint32_t>(state >> 32);
    float f;
    std::memcpy(&f, &fb, sizeof(f));
    if (std::isnan(f)) {
      continue;  // NaN payloads may differ; NaN-ness is covered above
    }
    ASSERT_EQ(half16::fromFloat(f), nativeBits(f))
        << "float bits=" << std::hex << fb;
  }
}

TEST(HalfNative, SubnormalBoundaryScan) {
  // Fine scan across the subnormal/normal boundary and the underflow edge,
  // where double-rounding bugs live.
  for (double v = 1e-9; v < 1e-3; v *= 1.0009) {
    const auto f = static_cast<float>(v);
    ASSERT_EQ(half16::fromFloat(f), nativeBits(f)) << "v=" << v;
    ASSERT_EQ(half16::fromFloat(-f), nativeBits(-f)) << "v=-" << v;
  }
}

TEST(HalfNative, OverflowBoundaryScan) {
  for (double v = 60000.0; v < 70000.0; v += 0.5) {
    const auto f = static_cast<float>(v);
    ASSERT_EQ(half16::fromFloat(f), nativeBits(f)) << "v=" << v;
  }
}

#else
TEST(HalfNative, SkippedWithoutNativeFloat16) {
  GTEST_SKIP() << "compiler lacks _Float16; cross-validation unavailable";
}
#endif

}  // namespace
}  // namespace hplmxp
