// Regression tests of the adaptive precision controller on CALIBRATED
// conditioning regimes (n=256, b=32, seed=7; see doc/PRECISION.md):
//
//   diagShift = +N (default) -> dominance ~3.9: every rung converges; the
//                               controller opens at fp8e5m2.
//   diagShift = 8.0          -> dominance ~0.12: all rungs converge, FP8
//                               slowly (6-7 iterations).
//   diagShift = 4.0          -> dominance ~0.057: BOTH FP8 rungs diverge,
//                               BF16 converges slowly (~19 iterations),
//                               FP16 quickly (~7) — the cliff that forces
//                               escalation.
//   diagShift = 3.0          -> dominance ~0.042: classical IR on fp16
//                               factors diverges; GMRES-IR on the same
//                               factors rescues the solve.
//   diagShift = 2.0          -> dominance <0.04: the probe routes straight
//                               to fp16 + GMRES-IR.
//
// Everything the controller reports — rung sequence, iteration counts,
// residual trajectories — must be bitwise reproducible across thread
// counts: the kernels' order-exactness contract composed through factor,
// IR, and GMRES.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/precision_ladder.h"
#include "core/single_solver.h"
#include "gen/matgen.h"
#include "lowp/precision.h"

namespace hplmxp {
namespace {

using lowp::StoragePrecision;

constexpr index_t kN = 256;
constexpr index_t kB = 32;
constexpr std::uint64_t kSeed = 7;

/// FP64 row-regenerated infinity-norm residual of the returned iterate.
double residualInf(const ProblemGenerator& gen, const std::vector<double>& x) {
  const index_t n = gen.n();
  double rInf = 0.0;
  for (index_t i = 0; i < n; ++i) {
    double acc = gen.rhs(i);
    for (index_t j = 0; j < n; ++j) {
      acc -= gen.entry(i, j) * x[static_cast<std::size_t>(j)];
    }
    rInf = std::max(rInf, std::fabs(acc));
  }
  return rInf;
}

TEST(Probe, DeterministicAndMonotoneInShift) {
  // The probe is a pure function of (seed, n, diagShift): repeated calls
  // agree exactly, and stronger diagonal shifts probe more dominant.
  const ProblemGenerator weak(kSeed, kN, 4.0);
  const ProblemGenerator strong(kSeed, kN, 8.0);
  const ConditioningProbe p1 = probeConditioning(weak);
  const ConditioningProbe p2 = probeConditioning(weak);
  EXPECT_EQ(p1.minDominance, p2.minDominance);
  EXPECT_EQ(p1.rowsSampled, p2.rowsSampled);
  EXPECT_GT(p1.rowsSampled, 0);
  EXPECT_LT(p1.minDominance, probeConditioning(strong).minDominance);
  // Benchmark default (+N) is strongly dominant.
  const ProblemGenerator easy(kSeed, kN);
  EXPECT_GT(probeConditioning(easy).minDominance, 1.0);
}

TEST(Probe, ChoiceThresholdsMatchCalibration) {
  auto choose = [](double dominance) {
    ConditioningProbe p;
    p.minDominance = dominance;
    p.rowsSampled = 8;
    return chooseRung(p);
  };
  // Strong dominance -> cheapest rung, classical IR.
  EXPECT_EQ(choose(3.9).rung, StoragePrecision::kFp8E5M2);
  EXPECT_EQ(choose(3.9).refiner, LadderRefiner::kIr);
  EXPECT_EQ(choose(1.0).rung, StoragePrecision::kFp8E4M3);
  EXPECT_EQ(choose(0.3).rung, StoragePrecision::kBf16);
  // Below the BF16 band: fp16.
  EXPECT_EQ(choose(0.1).rung, StoragePrecision::kFp16);
  EXPECT_EQ(choose(0.1).refiner, LadderRefiner::kIr);
  // Hostile conditioning routes straight to the GMRES-IR fallback.
  EXPECT_EQ(choose(0.03).rung, StoragePrecision::kFp16);
  EXPECT_EQ(choose(0.03).refiner, LadderRefiner::kGmresIr);
}

TEST(Ladder, DefaultProblemOpensAtFp8AndConverges) {
  // The benchmark configuration (+N shift) is the frontier case: the
  // controller must pick the cheapest rung and converge there, with no
  // escalations — this is where FP8 pays its 2x GEMM throughput.
  const ProblemGenerator gen(kSeed, kN);
  const LadderResult r = solveLadderSingle(gen, kB, Vendor::kAmd);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.startRung, StoragePrecision::kFp8E5M2);
  EXPECT_EQ(r.finalRung, StoragePrecision::kFp8E5M2);
  EXPECT_EQ(r.escalations, 0);
  EXPECT_FALSE(r.usedGmres);
  ASSERT_EQ(r.attempts.size(), 1u);
  EXPECT_LE(r.attempts[0].irIterations, 6);
  EXPECT_LT(r.residualInf, r.threshold);
  // The returned iterate really solves the system.
  EXPECT_LT(residualInf(gen, r.x), r.threshold);
}

TEST(Ladder, CliffRegimeEscalatesFp8ToBf16) {
  // diagShift=4.0: both FP8 rungs diverge, BF16 converges. Forcing the
  // start at the bottom rung must climb exactly fp8e5m2 -> fp8e4m3 ->
  // bf16, recording a divergence at each abandoned rung.
  const ProblemGenerator gen(kSeed, kN, 4.0);
  LadderPolicy policy;
  policy.forcedStart = StoragePrecision::kFp8E5M2;
  const LadderResult r = solveLadderSingle(gen, kB, Vendor::kAmd, policy);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.startRung, StoragePrecision::kFp8E5M2);
  EXPECT_EQ(r.finalRung, StoragePrecision::kBf16);
  EXPECT_EQ(r.escalations, 2);
  EXPECT_FALSE(r.usedGmres);
  ASSERT_EQ(r.attempts.size(), 3u);
  EXPECT_EQ(r.attempts[0].precision, StoragePrecision::kFp8E5M2);
  EXPECT_FALSE(r.attempts[0].converged);
  EXPECT_EQ(r.attempts[1].precision, StoragePrecision::kFp8E4M3);
  EXPECT_FALSE(r.attempts[1].converged);
  EXPECT_EQ(r.attempts[2].precision, StoragePrecision::kBf16);
  EXPECT_TRUE(r.attempts[2].converged);
  // BF16 converges but needs notably more IR than fp16 would (~19 vs ~7):
  // the accuracy/cost trade the ladder exists to navigate.
  EXPECT_GE(r.attempts[2].irIterations, 12);
  EXPECT_LT(r.residualInf, r.threshold);
  EXPECT_LT(residualInf(gen, r.x), r.threshold);
}

TEST(Ladder, CliffRegimeAdaptiveChoiceAvoidsTheClimb) {
  // Left adaptive, the probe must see the cliff (dominance ~0.057 < the
  // 0.15 BF16 floor) and open at fp16 directly — no wasted factorizations.
  const ProblemGenerator gen(kSeed, kN, 4.0);
  const LadderResult r = solveLadderSingle(gen, kB, Vendor::kAmd);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.startRung, StoragePrecision::kFp16);
  EXPECT_EQ(r.escalations, 0);
  ASSERT_EQ(r.attempts.size(), 1u);
  EXPECT_LE(r.attempts[0].irIterations, 10);
}

TEST(Ladder, HostileRegimeRescuedByGmres) {
  // diagShift=3.0: classical IR diverges even on fp16 factors; the
  // controller must fall back to GMRES-IR on the same factors and still
  // meet the HPL-AI criterion.
  const ProblemGenerator gen(kSeed, kN, 3.0);
  LadderPolicy policy;
  policy.forcedStart = StoragePrecision::kFp16;
  const LadderResult r = solveLadderSingle(gen, kB, Vendor::kAmd, policy);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.finalRung, StoragePrecision::kFp16);
  EXPECT_TRUE(r.usedGmres);
  ASSERT_GE(r.attempts.size(), 2u);
  EXPECT_FALSE(r.attempts.front().converged);
  EXPECT_EQ(r.attempts.back().refiner, LadderRefiner::kGmresIr);
  EXPECT_TRUE(r.attempts.back().converged);
  EXPECT_LT(residualInf(gen, r.x), r.threshold);
}

TEST(Ladder, ExtremeRegimeRoutesStraightToGmres) {
  // diagShift=2.0 probes below the GMRES threshold: no classical IR
  // attempt at all, one factorization, GMRES-IR converges.
  const ProblemGenerator gen(kSeed, kN, 2.0);
  const LadderResult r = solveLadderSingle(gen, kB, Vendor::kAmd);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.usedGmres);
  ASSERT_EQ(r.attempts.size(), 1u);
  EXPECT_EQ(r.attempts[0].refiner, LadderRefiner::kGmresIr);
  EXPECT_LT(residualInf(gen, r.x), r.threshold);
}

TEST(Ladder, GmresDisabledReportsHonestFailure) {
  // With the fallback off, the hostile regime must NOT claim convergence
  // (and must still return its best-effort iterate and trajectory).
  const ProblemGenerator gen(kSeed, kN, 3.0);
  LadderPolicy policy;
  policy.forcedStart = StoragePrecision::kFp16;
  policy.allowGmres = false;
  const LadderResult r = solveLadderSingle(gen, kB, Vendor::kAmd, policy);
  EXPECT_FALSE(r.converged);
  EXPECT_FALSE(r.usedGmres);
  ASSERT_FALSE(r.attempts.empty());
  EXPECT_FALSE(r.attempts.back().residualHistory.empty());
}

TEST(Ladder, DeterministicAcrossRepeatsAndRegimes) {
  // The whole adaptive trajectory — rung sequence, per-rung iteration
  // counts, every residual in every history — is bitwise reproducible.
  // (Thread-count invariance of the underlying kernels is proven in the
  // GEMM/cast suites; here we pin the composed controller, whose solver
  // builds its own pools, by exact repetition.)
  for (double shift : {-1.0, 8.0, 4.0, 3.0, 2.0}) {
    const ProblemGenerator gen(kSeed, kN, shift);
    LadderPolicy policy;
    if (shift == 4.0) {
      policy.forcedStart = StoragePrecision::kFp8E5M2;  // exercise the climb
    }
    const LadderResult r1 = solveLadderSingle(gen, kB, Vendor::kAmd, policy);
    const LadderResult r2 = solveLadderSingle(gen, kB, Vendor::kAmd, policy);
    EXPECT_EQ(r1.converged, r2.converged) << "shift=" << shift;
    EXPECT_EQ(r1.startRung, r2.startRung) << "shift=" << shift;
    EXPECT_EQ(r1.finalRung, r2.finalRung) << "shift=" << shift;
    EXPECT_EQ(r1.escalations, r2.escalations) << "shift=" << shift;
    EXPECT_EQ(r1.probe.minDominance, r2.probe.minDominance);
    ASSERT_EQ(r1.attempts.size(), r2.attempts.size()) << "shift=" << shift;
    for (std::size_t a = 0; a < r1.attempts.size(); ++a) {
      const RungAttempt& a1 = r1.attempts[a];
      const RungAttempt& a2 = r2.attempts[a];
      EXPECT_EQ(a1.precision, a2.precision);
      EXPECT_EQ(a1.refiner, a2.refiner);
      EXPECT_EQ(a1.irIterations, a2.irIterations);
      ASSERT_EQ(a1.residualHistory.size(), a2.residualHistory.size());
      for (std::size_t i = 0; i < a1.residualHistory.size(); ++i) {
        EXPECT_EQ(a1.residualHistory[i], a2.residualHistory[i])
            << "shift=" << shift << " attempt=" << a << " iter=" << i;
      }
    }
    ASSERT_EQ(r1.x.size(), r2.x.size());
    for (std::size_t i = 0; i < r1.x.size(); ++i) {
      EXPECT_EQ(r1.x[i], r2.x[i]) << "shift=" << shift << " i=" << i;
    }
  }
}

TEST(GmresSingle, RefinesFromZeroToThreshold) {
  // Direct unit coverage of the single-device GMRES: hostile regime,
  // fp16 factors, zero initial iterate.
  const ProblemGenerator gen(kSeed, kN, 3.0);
  Factorization f = factorMixedSingle(gen, kB, Vendor::kAmd);
  std::vector<double> x(static_cast<std::size_t>(kN), 0.0);
  const GmresSingleResult g = refineGmresSingle(f, gen, x);
  EXPECT_TRUE(g.converged);
  EXPECT_GT(g.iterations, 0);
  EXPECT_LT(g.residualInf, g.threshold);
  EXPECT_LT(residualInf(gen, x), g.threshold);
  // The outer trajectory starts at the unrefined residual and ends below
  // threshold: monotone progress overall (individual cycles may plateau).
  ASSERT_GE(g.residualHistory.size(), 2u);
  EXPECT_LT(g.residualHistory.back(), g.residualHistory.front());
}

}  // namespace
}  // namespace hplmxp
