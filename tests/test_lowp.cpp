// Exhaustive verification of the low-precision storage formats the
// precision ladder stands on: bfloat16 (2^16 encodings) and the OCP FP8
// pair (2^8 encodings each). Every encoding is decoded against an
// independent ldexp-based formula, every decode round-trips, and the
// encode direction is checked against the shared table-driven
// nearest-even oracle (tests/encoding_oracle.h) plus the format-specific
// Inf/NaN/saturation semantics the ladder's divergence detection relies
// on. Also covers the per-tile power-of-two scaling (lowp/scale.h) and
// the ladder metadata (lowp/precision.h).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "encoding_oracle.h"
#include "fp16/half.h"
#include "lowp/bfloat16.h"
#include "lowp/fp8.h"
#include "lowp/precision.h"
#include "lowp/scale.h"
#include "lowp/traits.h"
#include "util/common.h"

namespace hplmxp {
namespace {

using lowp::bfloat16;
using lowp::fp8e4m3;
using lowp::fp8e5m2;
using lowp::StoragePrecision;

// ---------------------------------------------------------------------------
// Independent decode formula: value = (-1)^s * m * 2^e assembled with
// ldexp from the raw fields, sharing no bit manipulation with toFloat().
// ---------------------------------------------------------------------------

/// Decodes a storage encoding of a format with `expBits` exponent bits and
/// `mantBits` mantissa bits (IEEE field layout) to its exact value.
/// Returns the value for finite encodings; callers skip Inf/NaN.
double decodeFormula(std::uint32_t bits, int expBits, int mantBits) {
  const int bias = (1 << (expBits - 1)) - 1;
  const std::uint32_t mantMask = (1u << mantBits) - 1u;
  const std::uint32_t expField = (bits >> mantBits) & ((1u << expBits) - 1u);
  const std::uint32_t mantField = bits & mantMask;
  const bool neg = (bits >> (expBits + mantBits)) & 1u;
  double mag;
  if (expField == 0) {
    // Subnormal: 0.mant * 2^(1 - bias).
    mag = std::ldexp(static_cast<double>(mantField), 1 - bias - mantBits);
  } else {
    // Normal: 1.mant * 2^(exp - bias).
    mag = std::ldexp(1.0 + std::ldexp(static_cast<double>(mantField),
                                      -mantBits),
                     static_cast<int>(expField) - bias);
  }
  return neg ? -mag : mag;
}

// ---------------------------------------------------------------------------
// bfloat16: exhaustive over all 2^16 encodings.
// ---------------------------------------------------------------------------

TEST(Bf16, KnownValues) {
  EXPECT_EQ(bfloat16(0.0f).bits(), 0x0000u);
  EXPECT_EQ(bfloat16(-0.0f).bits(), 0x8000u);
  EXPECT_EQ(bfloat16(1.0f).bits(), 0x3F80u);
  EXPECT_EQ(bfloat16(-2.0f).bits(), 0xC000u);
  EXPECT_EQ(bfloat16(bfloat16::maxFinite()).bits(), 0x7F7Fu);
  EXPECT_EQ(bfloat16(bfloat16::minNormal()).bits(), 0x0080u);
  // Smallest subnormal: 2^-133.
  EXPECT_EQ(bfloat16(std::ldexp(1.0f, -133)).bits(), 0x0001u);
}

TEST(Bf16, InfinityAndNan) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(bfloat16(inf).isInf());
  EXPECT_EQ(bfloat16(inf).bits(), 0x7F80u);
  EXPECT_EQ(bfloat16(-inf).bits(), 0xFF80u);
  EXPECT_TRUE(bfloat16(std::numeric_limits<float>::quiet_NaN()).isNan());
  EXPECT_TRUE(std::isnan(bfloat16(std::nanf("1")).toFloat()));
  // Overflow past maxFinite rounds to infinity, like binary16.
  EXPECT_TRUE(bfloat16(std::numeric_limits<float>::max()).isInf());
}

TEST(Bf16Exhaustive, EveryEncodingDecodesToFormula) {
  for (std::uint32_t bits = 0; bits <= 0xFFFFu; ++bits) {
    const bfloat16 v = bfloat16::fromBits(static_cast<std::uint16_t>(bits));
    if (v.isNan()) {
      EXPECT_TRUE(std::isnan(v.toFloat())) << "bits=" << bits;
      continue;
    }
    if (v.isInf()) {
      EXPECT_TRUE(std::isinf(v.toFloat())) << "bits=" << bits;
      continue;
    }
    EXPECT_EQ(static_cast<double>(v.toFloat()), decodeFormula(bits, 8, 7))
        << "bits=" << bits;
    EXPECT_EQ(std::signbit(v.toFloat()), (bits & 0x8000u) != 0)
        << "bits=" << bits;
  }
}

TEST(Bf16Exhaustive, EveryEncodingRoundTripsExactly) {
  long nans = 0;
  for (std::uint32_t bits = 0; bits <= 0xFFFFu; ++bits) {
    const auto b16 = static_cast<std::uint16_t>(bits);
    const bfloat16 v = bfloat16::fromBits(b16);
    const std::uint16_t back = bfloat16::fromFloat(v.toFloat());
    if (v.isNan()) {
      // NaN payloads canonicalize to the quiet NaN, sign preserved.
      EXPECT_EQ(back, static_cast<std::uint16_t>((b16 & 0x8000u) | 0x7FC0u))
          << "bits=" << bits;
      ++nans;
    } else {
      EXPECT_EQ(back, b16) << "bits=" << bits;
      EXPECT_EQ(std::isinf(v.toFloat()), v.isInf()) << "bits=" << bits;
    }
  }
  // 2 * (2^7 - 1) NaN payloads; make sure the loop actually walked them.
  EXPECT_EQ(nans, 2 * 127);
}

TEST(Bf16Exhaustive, EncodeMatchesNearestEvenOracle) {
  const oracle::EncodingTable table = oracle::buildEncodingTable<bfloat16>();
  ASSERT_FALSE(table.saturating);
  ASSERT_EQ(table.entries.back().second, 0x7F80u);  // overflow sentinel
  ASSERT_EQ(table.entries.back().first, std::ldexp(1.0, 128));

  auto check = [&](float f) {
    if (!std::isfinite(f)) {
      return;
    }
    const auto expected =
        static_cast<std::uint16_t>(oracle::nearestEvenOracle(table, f));
    EXPECT_EQ(bfloat16::fromFloat(f), expected) << "f=" << f;
    EXPECT_EQ(bfloat16::fromFloat(-f),
              static_cast<std::uint16_t>(expected ^ 0x8000u))
        << "f=" << -f;
  };

  // Every exact bf16 value, every neighbour midpoint (ties-to-even), and
  // points just off each midpoint. Midpoints carry 9 significant bits, so
  // they are exact floats and the casts below lose nothing.
  const float inf = std::numeric_limits<float>::infinity();
  const auto& grid = table.entries;
  for (std::size_t i = 0; i + 1 < grid.size(); ++i) {
    check(static_cast<float>(grid[i].first));
    const double mid = (grid[i].first + grid[i + 1].first) / 2.0;
    const auto fMid = static_cast<float>(mid);
    check(fMid);
    check(std::nextafter(fMid, 0.0f));
    check(std::nextafter(fMid, inf));
  }

  // Deterministic pseudo-random sweep of the whole float space.
  std::uint32_t s = 0x9E3779B9u;
  for (int i = 0; i < 200000; ++i) {
    s = s * 1664525u + 1013904223u;
    check(std::bit_cast<float>(s & 0x7FFFFFFFu));  // sign covered in check()
  }
}

// ---------------------------------------------------------------------------
// FP8: only 2^8 encodings, so decode, round-trip, AND encode are checked
// for every encoding; the encode oracle additionally sweeps every
// binary16 value (a superset of both FP8 grids) and a random float sweep.
// ---------------------------------------------------------------------------

template <typename Fp8>
void fp8DecodeMatchesFormula(int expBits, int mantBits) {
  for (std::uint32_t bits = 0; bits <= 0xFFu; ++bits) {
    const Fp8 v = Fp8::fromBits(static_cast<std::uint8_t>(bits));
    if (v.isNan()) {
      EXPECT_TRUE(std::isnan(v.toFloat())) << "bits=" << bits;
      continue;
    }
    if (v.isInf()) {
      EXPECT_TRUE(std::isinf(v.toFloat())) << "bits=" << bits;
      continue;
    }
    EXPECT_EQ(static_cast<double>(v.toFloat()),
              decodeFormula(bits, expBits, mantBits))
        << "bits=" << bits;
    EXPECT_EQ(std::signbit(v.toFloat()), (bits & 0x80u) != 0)
        << "bits=" << bits;
  }
}

TEST(Fp8E4M3Exhaustive, EveryEncodingDecodesToFormula) {
  // e4m3 reclaims the all-ones exponent for normals; the IEEE field
  // formula still applies to every non-NaN encoding.
  fp8DecodeMatchesFormula<fp8e4m3>(4, 3);
}

TEST(Fp8E5M2Exhaustive, EveryEncodingDecodesToFormula) {
  fp8DecodeMatchesFormula<fp8e5m2>(5, 2);
}

template <typename Fp8>
long fp8RoundTripCountNans(std::uint8_t canonicalNanAbs) {
  long nans = 0;
  for (std::uint32_t bits = 0; bits <= 0xFFu; ++bits) {
    const auto b8 = static_cast<std::uint8_t>(bits);
    const Fp8 v = Fp8::fromBits(b8);
    const std::uint8_t back = Fp8::fromFloat(v.toFloat());
    if (v.isNan()) {
      EXPECT_EQ(back,
                static_cast<std::uint8_t>((b8 & 0x80u) | canonicalNanAbs))
          << "bits=" << bits;
      ++nans;
    } else {
      EXPECT_EQ(back, b8) << "bits=" << bits;
      EXPECT_EQ(std::isinf(v.toFloat()), v.isInf()) << "bits=" << bits;
    }
  }
  return nans;
}

TEST(Fp8E4M3Exhaustive, EveryEncodingRoundTripsExactly) {
  // One NaN per sign (S.1111.111), canonicalizing to itself.
  EXPECT_EQ(fp8RoundTripCountNans<fp8e4m3>(0x7Fu), 2);
}

TEST(Fp8E5M2Exhaustive, EveryEncodingRoundTripsExactly) {
  // Three NaN payloads per sign; all canonicalize to S.11111.10.
  EXPECT_EQ(fp8RoundTripCountNans<fp8e5m2>(0x7Eu), 6);
}

template <typename Fp8>
void fp8EncodeMatchesOracle(const oracle::EncodingTable& table) {
  auto check = [&](float f) {
    if (!std::isfinite(f)) {
      return;
    }
    const auto expected =
        static_cast<std::uint8_t>(oracle::nearestEvenOracle(table, f));
    EXPECT_EQ(Fp8::fromFloat(f), expected) << "f=" << f;
    EXPECT_EQ(Fp8::fromFloat(-f), static_cast<std::uint8_t>(expected ^ 0x80u))
        << "f=" << -f;
  };

  // Every grid value, every neighbour midpoint, points just off each.
  const float inf = std::numeric_limits<float>::infinity();
  const auto& grid = table.entries;
  for (std::size_t i = 0; i + 1 < grid.size(); ++i) {
    check(static_cast<float>(grid[i].first));
    const double mid = (grid[i].first + grid[i + 1].first) / 2.0;
    const auto fMid = static_cast<float>(mid);
    check(fMid);
    check(std::nextafter(fMid, 0.0f));
    check(std::nextafter(fMid, inf));
  }

  // Every binary16 value — a dense superset of both FP8 grids covering
  // their full dynamic range, subnormals included.
  for (std::uint32_t bits = 0; bits < 0x7C00u; ++bits) {
    check(half16::toFloatBits(static_cast<std::uint16_t>(bits)));
  }

  // Deterministic pseudo-random sweep of the whole float space (mostly
  // exercising the overflow/underflow clamps).
  std::uint32_t s = 0x9E3779B9u;
  for (int i = 0; i < 200000; ++i) {
    s = s * 1664525u + 1013904223u;
    check(std::bit_cast<float>(s & 0x7FFFFFFFu));
  }
}

TEST(Fp8E4M3Exhaustive, EncodeMatchesNearestEvenOracle) {
  const oracle::EncodingTable table = oracle::buildEncodingTable<fp8e4m3>();
  ASSERT_TRUE(table.saturating);  // finite-only format
  ASSERT_EQ(table.maxFiniteBits, 0x7Eu);
  ASSERT_EQ(table.entries.back().first, 448.0);
  fp8EncodeMatchesOracle<fp8e4m3>(table);
}

TEST(Fp8E5M2Exhaustive, EncodeMatchesNearestEvenOracle) {
  const oracle::EncodingTable table = oracle::buildEncodingTable<fp8e5m2>();
  ASSERT_FALSE(table.saturating);
  ASSERT_EQ(table.entries.back().second, 0x7Cu);  // overflow sentinel: inf
  ASSERT_EQ(table.entries.back().first, 65536.0);
  fp8EncodeMatchesOracle<fp8e5m2>(table);
}

TEST(Fp8E4M3, SaturationSemantics) {
  // Finite overflow SATURATES to +-448 — never an Inf or NaN encoding.
  EXPECT_EQ(fp8e4m3::fromFloat(449.0f), 0x7Eu);
  EXPECT_EQ(fp8e4m3::fromFloat(480.0f), 0x7Eu);  // would round to the NaN slot
  EXPECT_EQ(fp8e4m3::fromFloat(1e10f), 0x7Eu);
  EXPECT_EQ(fp8e4m3::fromFloat(std::numeric_limits<float>::max()), 0x7Eu);
  EXPECT_EQ(fp8e4m3::fromFloat(-449.0f), 0xFEu);
  EXPECT_EQ(fp8e4m3::fromFloat(-1e10f), 0xFEu);
  // Inf input has no encoding: converts to NaN (hardware cast convention).
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(fp8e4m3::fromFloat(inf), 0x7Fu);
  EXPECT_EQ(fp8e4m3::fromFloat(-inf), 0xFFu);
  EXPECT_TRUE(fp8e4m3::fromBits(fp8e4m3::fromFloat(inf)).isNan());
  // 448 itself is exact; just below the 480 midpoint still rounds to 448.
  EXPECT_EQ(fp8e4m3::fromFloat(448.0f), 0x7Eu);
  EXPECT_EQ(fp8e4m3::fromFloat(479.0f), 0x7Eu);
  // No encoding ever reports isInf().
  for (std::uint32_t bits = 0; bits <= 0xFFu; ++bits) {
    EXPECT_FALSE(fp8e4m3::fromBits(static_cast<std::uint8_t>(bits)).isInf());
  }
}

TEST(Fp8E5M2, OverflowAndNanSemantics) {
  // IEEE-structured: overflow rounds to infinity under ties-to-even.
  EXPECT_EQ(fp8e5m2::fromFloat(57344.0f), 0x7Bu);  // max finite, exact
  EXPECT_EQ(fp8e5m2::fromFloat(61440.0f), 0x7Cu);  // midpoint ties up to inf
  EXPECT_EQ(fp8e5m2::fromFloat(std::nextafter(61440.0f, 0.0f)), 0x7Bu);
  EXPECT_EQ(fp8e5m2::fromFloat(-61440.0f), 0xFCu);
  EXPECT_EQ(fp8e5m2::fromFloat(1e10f), 0x7Cu);
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(fp8e5m2::fromFloat(inf), 0x7Cu);
  EXPECT_TRUE(fp8e5m2::fromBits(0x7Cu).isInf());
  EXPECT_TRUE(std::isnan(
      fp8e5m2::fromBits(fp8e5m2::fromFloat(std::nanf("1"))).toFloat()));
}

TEST(Fp8, SubnormalBoundaries) {
  // e4m3: min subnormal 2^-9; its half ties down to zero (even).
  const float e4Min = std::ldexp(1.0f, -9);
  EXPECT_EQ(fp8e4m3::fromFloat(e4Min), 0x01u);
  EXPECT_EQ(fp8e4m3::fromFloat(e4Min / 2.0f), 0x00u);
  EXPECT_EQ(fp8e4m3::fromFloat(std::nextafter(e4Min / 2.0f, 1.0f)), 0x01u);
  EXPECT_EQ(fp8e4m3::fromFloat(e4Min * 1.5f), 0x02u);  // tie to even
  // e5m2: min subnormal 2^-16.
  const float e5Min = std::ldexp(1.0f, -16);
  EXPECT_EQ(fp8e5m2::fromFloat(e5Min), 0x01u);
  EXPECT_EQ(fp8e5m2::fromFloat(e5Min / 2.0f), 0x00u);
  EXPECT_EQ(fp8e5m2::fromFloat(std::nextafter(e5Min / 2.0f, 1.0f)), 0x01u);
  // Min normals from the headers land on the first normal encoding.
  EXPECT_EQ(fp8e4m3::fromFloat(fp8e4m3::minNormal()), 0x08u);
  EXPECT_EQ(fp8e5m2::fromFloat(fp8e5m2::minNormal()), 0x04u);
}

// ---------------------------------------------------------------------------
// Per-tile power-of-two scaling.
// ---------------------------------------------------------------------------

/// True iff s is a (possibly subnormal) power of two.
bool isPowerOfTwo(float s) {
  int e = 0;
  return s > 0.0f && std::isfinite(s) && std::frexp(s, &e) == 0.5f;
}

TEST(TileScale, LandsInTargetBinade) {
  // Property: s is an exact power of two and amax/s in (max/4, max/2] for
  // every positive finite amax, both FP8 formats.
  for (float maxFinite : {fp8e4m3::maxFinite(), fp8e5m2::maxFinite()}) {
    std::uint32_t s32 = 0x243F6A88u;
    for (int i = 0; i < 100000; ++i) {
      s32 = s32 * 1664525u + 1013904223u;
      const float amax = std::fabs(std::bit_cast<float>(s32 & 0x7FFFFFFFu));
      if (!(amax > 0.0f) || !std::isfinite(amax)) {
        continue;
      }
      const float s = lowp::tileScale(amax, maxFinite);
      ASSERT_TRUE(isPowerOfTwo(s)) << "amax=" << amax;
      const float scaled = amax / s;
      ASSERT_LE(scaled, maxFinite / 2.0f) << "amax=" << amax << " s=" << s;
      if (amax >= std::ldexp(1.0f, -100)) {
        // Lower bound of the band holds whenever the 2^-126 scale clamp
        // for deeply subnormal tiles cannot engage.
        ASSERT_GT(scaled, maxFinite / 4.0f) << "amax=" << amax << " s=" << s;
      }
    }
  }
}

TEST(TileScale, DeeplySubnormalAmaxStaysFinite) {
  // Below amax ~ 2^-134 the ideal scale would be a subnormal (or zero)
  // power of two; the clamp pins it at 2^-126 so the stored tile is still
  // exact and finite (just tiny), never inf/NaN from a zero divide.
  for (int e = -149; e <= -130; ++e) {
    const float amax = std::ldexp(1.0f, e);
    ASSERT_GT(amax, 0.0f);
    const float s = lowp::tileScale(amax, fp8e4m3::maxFinite());
    EXPECT_TRUE(isPowerOfTwo(s)) << "e=" << e;
    EXPECT_GE(s, std::ldexp(1.0f, -126)) << "e=" << e;
    EXPECT_TRUE(std::isfinite(amax / s)) << "e=" << e;
    EXPECT_LE(amax / s, fp8e4m3::maxFinite() / 2.0f) << "e=" << e;
  }
}

TEST(TileScale, BinadeBoundariesExact) {
  // Exact powers of two around the target band, where the frexp/ldexp
  // correction step matters.
  const float max = fp8e4m3::maxFinite();  // 448 = 1.75 * 2^8
  for (int e = -30; e <= 30; ++e) {
    const float amax = std::ldexp(1.0f, e);
    const float s = lowp::tileScale(amax, max);
    EXPECT_TRUE(isPowerOfTwo(s));
    EXPECT_GT(amax / s, max / 4.0f) << "e=" << e;
    EXPECT_LE(amax / s, max / 2.0f) << "e=" << e;
  }
}

TEST(TileScale, DegenerateInputsYieldUnitScale) {
  const float max = fp8e5m2::maxFinite();
  EXPECT_EQ(lowp::tileScale(0.0f, max), 1.0f);
  EXPECT_EQ(lowp::tileScale(-0.0f, max), 1.0f);
  EXPECT_EQ(lowp::tileScale(-3.0f, max), 1.0f);
  EXPECT_EQ(lowp::tileScale(std::numeric_limits<float>::infinity(), max),
            1.0f);
  EXPECT_EQ(lowp::tileScale(std::nanf("1"), max), 1.0f);
}

TEST(TileScale, ScaledTileNeverSaturates) {
  // The contract the scaled cast paths rely on: after dividing by the
  // tile scale, no entry bounded by amax can saturate or overflow the
  // format (|v|/s <= amax/s <= max/2 < max).
  std::uint32_t s32 = 0x1B873593u;
  for (int i = 0; i < 20000; ++i) {
    s32 = s32 * 1664525u + 1013904223u;
    const float amax = std::fabs(std::bit_cast<float>(s32 & 0x7FFFFFFFu));
    if (!(amax > 0.0f) || !std::isfinite(amax)) {
      continue;
    }
    const float s = lowp::tileScale(amax, fp8e4m3::maxFinite());
    const fp8e4m3 top(amax / s);
    ASSERT_FALSE(top.isNan());
    ASSERT_LT(std::fabs(top.toFloat()), fp8e4m3::maxFinite());
  }
}

// ---------------------------------------------------------------------------
// Ladder metadata: specs agree with the storage types, the rung order is
// by unit roundoff, and names round-trip.
// ---------------------------------------------------------------------------

TEST(PrecisionSpec, AgreesWithStorageTypes) {
  EXPECT_EQ(lowp::spec(StoragePrecision::kFp16).maxFinite,
            half16::maxFinite());
  EXPECT_EQ(lowp::spec(StoragePrecision::kFp16).unitRoundoff,
            half16::epsilonUnit());
  EXPECT_EQ(lowp::spec(StoragePrecision::kBf16).maxFinite,
            bfloat16::maxFinite());
  EXPECT_EQ(lowp::spec(StoragePrecision::kBf16).unitRoundoff,
            bfloat16::epsilonUnit());
  EXPECT_EQ(lowp::spec(StoragePrecision::kFp8E4M3).maxFinite,
            fp8e4m3::maxFinite());
  EXPECT_EQ(lowp::spec(StoragePrecision::kFp8E4M3).unitRoundoff,
            fp8e4m3::epsilonUnit());
  EXPECT_EQ(lowp::spec(StoragePrecision::kFp8E5M2).maxFinite,
            fp8e5m2::maxFinite());
  EXPECT_EQ(lowp::spec(StoragePrecision::kFp8E5M2).unitRoundoff,
            fp8e5m2::epsilonUnit());
  // Tile-scale requirements match the compile-time traits.
  EXPECT_EQ(lowp::spec(StoragePrecision::kFp16).needsTileScale,
            lowp::StorageTraits<half16>::kNeedsTileScale);
  EXPECT_EQ(lowp::spec(StoragePrecision::kBf16).needsTileScale,
            lowp::StorageTraits<bfloat16>::kNeedsTileScale);
  EXPECT_EQ(lowp::spec(StoragePrecision::kFp8E4M3).needsTileScale,
            lowp::StorageTraits<fp8e4m3>::kNeedsTileScale);
  EXPECT_EQ(lowp::spec(StoragePrecision::kFp8E5M2).needsTileScale,
            lowp::StorageTraits<fp8e5m2>::kNeedsTileScale);
}

TEST(PrecisionSpec, NamesRoundTrip) {
  for (StoragePrecision p : lowp::ladderRungs()) {
    EXPECT_EQ(lowp::precisionFromString(lowp::toString(p)), p);
  }
  EXPECT_THROW((void)lowp::precisionFromString("fp4"), CheckError);
  EXPECT_THROW((void)lowp::precisionFromString(""), CheckError);
}

TEST(PrecisionSpec, LadderClimbsTowardFp16) {
  const auto& rungs = lowp::ladderRungs();
  ASSERT_EQ(rungs.size(), 4u);
  // ladderRungs is ordered by strictly decreasing unit roundoff
  // (cheapest first), and nextRungUp follows exactly that order.
  for (std::size_t i = 0; i + 1 < rungs.size(); ++i) {
    EXPECT_GT(lowp::spec(rungs[i]).unitRoundoff,
              lowp::spec(rungs[i + 1]).unitRoundoff);
    const auto up = lowp::nextRungUp(rungs[i]);
    ASSERT_TRUE(up.has_value());
    EXPECT_EQ(*up, rungs[i + 1]);
  }
  EXPECT_EQ(rungs.back(), StoragePrecision::kFp16);
  EXPECT_FALSE(lowp::nextRungUp(StoragePrecision::kFp16).has_value());
}

}  // namespace
}  // namespace hplmxp
