// Single-device mixed-precision solver and the FP64 HPL baseline.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "blas/getrf.h"
#include "core/hpl64.h"
#include "core/single_solver.h"
#include "core/verify.h"
#include "gen/matgen.h"

namespace hplmxp {
namespace {

class SingleSolveTest
    : public ::testing::TestWithParam<std::tuple<index_t, index_t>> {};

TEST_P(SingleSolveTest, ConvergesToFp64Accuracy) {
  const auto [n, b] = GetParam();
  ProblemGenerator gen(100 + n, n);
  std::vector<double> x;
  const SingleSolveResult r =
      solveMixedSingle(gen, b, Vendor::kAmd, x);
  EXPECT_TRUE(r.converged) << "n=" << n << " b=" << b;
  EXPECT_LT(r.residualInf, r.threshold);
  // Cross-check against the dense FP64 verifier.
  EXPECT_TRUE(hplaiValid(gen, x));
  // A couple of refinement steps should suffice for these sizes — the
  // point of IR is that recovering FP64 accuracy is cheap.
  EXPECT_LE(r.irIterations, 10);
  EXPECT_GE(r.irIterations, 1);  // FP16 GEMM must have lost *some* accuracy
}

INSTANTIATE_TEST_SUITE_P(Sizes, SingleSolveTest,
                         ::testing::Values(std::make_tuple(64, 16),
                                           std::make_tuple(128, 32),
                                           std::make_tuple(96, 32),
                                           std::make_tuple(192, 64),
                                           std::make_tuple(256, 64),
                                           std::make_tuple(128, 128)));

TEST(SingleSolve, MixedFactorsAreCloseToFp64Factors) {
  // The FP32/FP16 blocked factorization must track the FP64 no-pivot LU to
  // within mixed-precision error (relative ~1e-3 given FP16 panels).
  const index_t n = 128, b = 32;
  ProblemGenerator gen(55, n);
  std::vector<float> mixed(static_cast<std::size_t>(n * n));
  gen.fillTile<float>(0, 0, n, n, mixed.data(), n);
  factorMixedSingle(n, b, mixed.data(), n, Vendor::kNvidia);

  std::vector<double> exact(static_cast<std::size_t>(n * n));
  gen.fillTile<double>(0, 0, n, n, exact.data(), n);
  blas::dgetrfNoPiv(n, exact.data(), n);

  double maxRel = 0.0;
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    const double denom = std::max(1.0, std::fabs(exact[i]));
    maxRel = std::max(
        maxRel, std::fabs(static_cast<double>(mixed[i]) - exact[i]) / denom);
  }
  EXPECT_LT(maxRel, 5e-2);   // FP16 panels bound the error
  EXPECT_GT(maxRel, 1e-9);   // and it is genuinely mixed precision
}

TEST(SingleSolve, VendorPathsAgreeBitwise) {
  const index_t n = 96, b = 32;
  ProblemGenerator gen(77, n);
  std::vector<float> a1(static_cast<std::size_t>(n * n)), a2;
  gen.fillTile<float>(0, 0, n, n, a1.data(), n);
  a2 = a1;
  factorMixedSingle(n, b, a1.data(), n, Vendor::kNvidia);
  factorMixedSingle(n, b, a2.data(), n, Vendor::kAmd);
  for (std::size_t i = 0; i < a1.size(); ++i) {
    ASSERT_EQ(a1[i], a2[i]);
  }
}

TEST(SingleSolve, RejectsIndivisibleBlockSize) {
  ProblemGenerator gen(1, 100);
  std::vector<float> a(100 * 100);
  gen.fillTile<float>(0, 0, 100, 100, a.data(), 100);
  EXPECT_THROW(factorMixedSingle(100, 32, a.data(), 100, Vendor::kAmd),
               CheckError);
}

TEST(Hpl64, SolvesAndPassesResidualCheck) {
  ProblemGenerator gen(200, 160);
  std::vector<double> x;
  const Hpl64Result r = runHpl64(gen, x);
  EXPECT_TRUE(r.passed());
  EXPECT_LT(r.scaledResidual, 1.0);  // dense FP64 is far below 16
  EXPECT_GT(r.gflops(), 0.0);
  // FP64 solve is near machine precision without any refinement.
  EXPECT_LT(residualInfDense(gen, x), hplaiThreshold(gen, infNorm(x)));
}

TEST(Hpl64, FlopConventionDiffersFromHplai) {
  Hpl64Result r;
  r.n = 1000;
  const double d = 1000.0;
  EXPECT_DOUBLE_EQ(r.flops(), (2.0 / 3.0) * d * d * d + 2.0 * d * d);
}

TEST(Verify, ThresholdScalesLinearlyInN) {
  ProblemGenerator g1(1, 64);
  ProblemGenerator g2(1, 128);
  // Threshold ~ 8*N*eps*(2*N*xInf + bInf): roughly quadratic in N for
  // fixed xInf because ||diag|| ~ N.
  const double t1 = hplaiThreshold(g1, 1.0);
  const double t2 = hplaiThreshold(g2, 1.0);
  EXPECT_NEAR(t2 / t1, 4.0, 0.3);
}

}  // namespace
}  // namespace hplmxp
