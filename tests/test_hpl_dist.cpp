// Distributed FP64 HPL baseline: pivoted LU over the 2D grid, solve,
// and the classic HPL validity check.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "blas/getrf.h"
#include "blas/trsv.h"
#include "core/hpl_dist.h"
#include "gen/matgen.h"

namespace hplmxp {
namespace {

struct HplCase {
  index_t n, b, pr, pc;
  double diagShift;  // 0 = plain random (pivoting engages)
  simmpi::BcastStrategy strategy;
};

class HplDistTest : public ::testing::TestWithParam<HplCase> {};

TEST_P(HplDistTest, SolvesAndPassesHplCheck) {
  const HplCase c = GetParam();
  HplDistConfig cfg;
  cfg.n = c.n;
  cfg.b = c.b;
  cfg.pr = c.pr;
  cfg.pc = c.pc;
  cfg.diagShift = c.diagShift;
  cfg.panelBcast = c.strategy;
  std::vector<double> x;
  const HplDistResult r = runHplDist(cfg, &x);
  EXPECT_TRUE(r.passed()) << "scaled residual " << r.scaledResidual;
  EXPECT_LT(r.scaledResidual, 16.0);
  EXPECT_GT(r.gflops(), 0.0);
  if (c.diagShift == 0.0) {
    // A plain random matrix essentially always needs interchanges.
    EXPECT_GT(r.rowSwaps, 0);
  } else {
    // Diagonal dominance: the diagonal is always the pivot.
    EXPECT_EQ(r.rowSwaps, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, HplDistTest,
    ::testing::Values(
        // Benchmark matrix (no swaps expected).
        HplCase{128, 16, 1, 1, -1.0, simmpi::BcastStrategy::kBcast},
        HplCase{128, 16, 2, 2, -1.0, simmpi::BcastStrategy::kBcast},
        // Random matrices: the pivoting machinery genuinely engages.
        HplCase{96, 16, 1, 1, 0.0, simmpi::BcastStrategy::kBcast},
        HplCase{128, 16, 2, 2, 0.0, simmpi::BcastStrategy::kBcast},
        HplCase{128, 16, 2, 2, 0.0, simmpi::BcastStrategy::kRing2M},
        HplCase{144, 16, 3, 2, 0.0, simmpi::BcastStrategy::kRing1M},
        HplCase{160, 32, 2, 2, 0.0, simmpi::BcastStrategy::kBcast},
        HplCase{112, 16, 2, 3, 0.0, simmpi::BcastStrategy::kBcast}));

TEST(HplDist, MatchesSerialPivotedSolution) {
  // The distributed pivoted solve must agree with the serial dgetrf-based
  // solve to FP64 accuracy on a genuinely pivoting problem.
  const index_t n = 128, b = 16;
  HplDistConfig cfg;
  cfg.n = n;
  cfg.b = b;
  cfg.pr = 2;
  cfg.pc = 2;
  cfg.diagShift = 0.0;
  std::vector<double> xDist;
  const HplDistResult r = runHplDist(cfg, &xDist);
  ASSERT_TRUE(r.passed());

  // Serial oracle on the same generated system.
  const ProblemGenerator gen(cfg.seed, n, 0.0);
  std::vector<double> a(static_cast<std::size_t>(n * n));
  gen.fillTile<double>(0, 0, n, n, a.data(), n);
  std::vector<double> xSerial(static_cast<std::size_t>(n));
  gen.fillRhs<double>(0, n, xSerial.data());
  std::vector<index_t> ipiv;
  blas::dgetrf(n, a.data(), n, ipiv);
  for (index_t k = 0; k < n; ++k) {
    if (ipiv[static_cast<std::size_t>(k)] != k) {
      std::swap(xSerial[static_cast<std::size_t>(k)],
                xSerial[static_cast<std::size_t>(
                    ipiv[static_cast<std::size_t>(k)])]);
    }
  }
  blas::dtrsv(blas::Uplo::kLower, blas::Diag::kUnit, n, a.data(), n,
              xSerial.data());
  blas::dtrsv(blas::Uplo::kUpper, blas::Diag::kNonUnit, n, a.data(), n,
              xSerial.data());

  for (index_t i = 0; i < n; ++i) {
    const double scale =
        std::max(1.0, std::fabs(xSerial[static_cast<std::size_t>(i)]));
    EXPECT_NEAR(xDist[static_cast<std::size_t>(i)],
                xSerial[static_cast<std::size_t>(i)], 1e-8 * scale)
        << "i=" << i;
  }
}

TEST(HplDist, BenchmarkMatrixAgreesWithMixedPrecisionSolution) {
  // On the diagonally dominant benchmark matrix, FP64 HPL and refined
  // HPL-AI must produce the same solution to ~1e-9.
  HplDistConfig cfg;
  cfg.n = 128;
  cfg.b = 16;
  cfg.pr = 2;
  cfg.pc = 2;
  std::vector<double> xHpl;
  ASSERT_TRUE(runHplDist(cfg, &xHpl).passed());

  const ProblemGenerator gen(cfg.seed, cfg.n);
  // Reference: exact row sums via regeneration - solve check indirectly by
  // verifying the HPL solution satisfies the HPL-AI criterion too.
  double rInf = 0.0;
  for (index_t i = 0; i < cfg.n; i += 7) {
    double acc = gen.rhs(i);
    for (index_t j = 0; j < cfg.n; ++j) {
      acc -= gen.entry(i, j) * xHpl[static_cast<std::size_t>(j)];
    }
    rInf = std::max(rInf, std::fabs(acc));
  }
  EXPECT_LT(rInf, 1e-9);
}

TEST(HplDist, InvalidConfigRejected) {
  HplDistConfig cfg;
  cfg.n = 100;
  cfg.b = 16;  // N not a multiple of B
  EXPECT_THROW(runHplDist(cfg), CheckError);
}

TEST(HplDist, FlopConvention) {
  HplDistResult r;
  r.n = 1000;
  r.factorSeconds = 1.0;
  const double d = 1000.0;
  EXPECT_NEAR(r.gflops() * 1e9, (2.0 / 3.0) * d * d * d + 2.0 * d * d, 1.0);
}

}  // namespace
}  // namespace hplmxp
