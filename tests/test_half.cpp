// Unit and property tests of the software IEEE binary16 type. Correct
// storage rounding is what drives the numerical behaviour of the whole
// mixed-precision benchmark, so this module is tested exhaustively.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "encoding_oracle.h"
#include "fp16/half.h"

namespace hplmxp {
namespace {

TEST(Half, ZeroAndSigns) {
  EXPECT_EQ(half16(0.0f).bits(), 0x0000u);
  EXPECT_EQ(half16(-0.0f).bits(), 0x8000u);
  EXPECT_EQ(half16(0.0f).toFloat(), 0.0f);
  EXPECT_TRUE(std::signbit(half16(-0.0f).toFloat()));
}

TEST(Half, ExactSmallIntegers) {
  // All integers up to 2^11 are exactly representable.
  for (int i = -2048; i <= 2048; ++i) {
    const float f = static_cast<float>(i);
    EXPECT_EQ(half16(f).toFloat(), f) << "i=" << i;
  }
}

TEST(Half, KnownValues) {
  EXPECT_EQ(half16(1.0f).bits(), 0x3C00u);
  EXPECT_EQ(half16(-2.0f).bits(), 0xC000u);
  EXPECT_EQ(half16(65504.0f).bits(), 0x7BFFu);  // max finite
  EXPECT_EQ(half16(0.5f).bits(), 0x3800u);
  EXPECT_EQ(half16(6.103515625e-05f).bits(), 0x0400u);  // min normal
  EXPECT_EQ(half16(5.9604644775390625e-08f).bits(), 0x0001u);  // min subnorm
}

TEST(Half, OverflowToInfinity) {
  EXPECT_TRUE(half16(65520.0f).isInf());  // rounds past max finite
  EXPECT_TRUE(half16(1e10f).isInf());
  EXPECT_TRUE(half16(-1e10f).toFloat() < 0.0f);
  EXPECT_TRUE(half16(-1e10f).isInf());
  // 65519.996 rounds to 65504 (below the midpoint 65520).
  EXPECT_EQ(half16(65519.0f).toFloat(), 65504.0f);
}

TEST(Half, InfinityAndNan) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(half16(inf).isInf());
  EXPECT_TRUE(half16(-inf).isInf());
  EXPECT_TRUE(half16(std::numeric_limits<float>::quiet_NaN()).isNan());
  EXPECT_TRUE(std::isnan(half16(std::nanf("1")).toFloat()));
}

TEST(Half, RoundToNearestEvenAtOne) {
  // Between 1.0 and 1.0 + 2^-10, the midpoint 1 + 2^-11 ties to even (1.0).
  const float ulp = 9.765625e-04f;  // 2^-10
  EXPECT_EQ(half16(1.0f + ulp / 2.0f).toFloat(), 1.0f);        // tie -> even
  EXPECT_EQ(half16(1.0f + ulp * 0.51f).toFloat(), 1.0f + ulp);  // above
  EXPECT_EQ(half16(1.0f + ulp * 0.49f).toFloat(), 1.0f);        // below
  // Between 1+ulp and 1+2*ulp the tie rounds UP to the even mantissa.
  EXPECT_EQ(half16(1.0f + 1.5f * ulp).toFloat(), 1.0f + 2.0f * ulp);
}

TEST(Half, SubnormalRounding) {
  const float minSub = 5.9604644775390625e-08f;  // 2^-24
  // Half of the smallest subnormal ties to zero (even).
  EXPECT_EQ(half16(minSub / 2.0f).toFloat(), 0.0f);
  // Slightly above the midpoint rounds up to the smallest subnormal.
  EXPECT_EQ(half16(minSub * 0.75f).toFloat(), minSub);
  // 1.5x smallest subnormal ties to 2x (even).
  EXPECT_EQ(half16(minSub * 1.5f).toFloat(), 2.0f * minSub);
}

TEST(Half, AllBitPatternsRoundTripThroughFloat) {
  // Property: binary16 -> float -> binary16 is the identity for every
  // finite/infinite pattern, and NaNs stay NaNs.
  for (std::uint32_t bits = 0; bits <= 0xFFFFu; ++bits) {
    const half16 h = half16::fromBits(static_cast<std::uint16_t>(bits));
    if (h.isNan()) {
      EXPECT_TRUE(half16(h.toFloat()).isNan());
      continue;
    }
    EXPECT_EQ(half16(h.toFloat()).bits(), bits) << "bits=" << bits;
  }
}

TEST(Half, ConversionErrorWithinHalfUlp) {
  // Property: |half(f) - f| <= 2^-11 * |f| for normal-range inputs.
  for (int i = 1; i < 4000; ++i) {
    const float f = 0.37f * static_cast<float>(i);
    if (std::fabs(f) > half16::maxFinite()) {
      break;
    }
    const float err = std::fabs(half16(f).toFloat() - f);
    EXPECT_LE(err, half16::epsilonUnit() * std::fabs(f)) << "f=" << f;
  }
}

TEST(Half, ArithmeticRoundsThroughFloat) {
  const half16 a(1.5f);
  const half16 b(2.25f);
  EXPECT_EQ((a + b).toFloat(), 3.75f);
  EXPECT_EQ((a * b).toFloat(), 3.375f);
  EXPECT_EQ((b - a).toFloat(), 0.75f);
  EXPECT_EQ((b / a).toFloat(), 1.5f);
}

TEST(Half, LimitsConstants) {
  EXPECT_EQ(half16(half16::maxFinite()).toFloat(), 65504.0f);
  EXPECT_EQ(half16(half16::minNormal()).bits(), 0x0400u);
  EXPECT_FLOAT_EQ(half16::epsilonUnit(), std::ldexp(1.0f, -11));
}

// ---------------------------------------------------------------------------
// Exhaustive conversion checks. binary16 has only 2^16 encodings, so the
// decode path can be verified for every value, and the encode path can be
// verified against a table-driven nearest-even oracle that shares no code
// with the implementation.
// ---------------------------------------------------------------------------

TEST(HalfExhaustive, EveryEncodingRoundTripsExactly) {
  long nans = 0;
  for (std::uint32_t bits = 0; bits <= 0xFFFFu; ++bits) {
    const auto b16 = static_cast<std::uint16_t>(bits);
    const half16 h = half16::fromBits(b16);
    const float f = h.toFloat();
    const std::uint16_t back = half16::fromFloat(f);
    if (h.isNan()) {
      // Every NaN payload canonicalizes to the quiet NaN with the sign
      // preserved — the one fixed point of the NaN encoding class.
      const std::uint16_t canonical =
          static_cast<std::uint16_t>((b16 & 0x8000u) | 0x7E00u);
      EXPECT_EQ(back, canonical) << "bits=" << bits;
      ++nans;
    } else {
      EXPECT_EQ(back, b16) << "bits=" << bits;
      // Widening must agree with the IEEE value class.
      EXPECT_EQ(std::isinf(f), h.isInf()) << "bits=" << bits;
    }
  }
  // 2 * (2^10 - 1) NaN payloads exist; make sure we actually walked them.
  EXPECT_EQ(nans, 2 * 1023);
}

TEST(HalfExhaustive, EncodeMatchesNearestEvenOracle) {
  // Shared table-driven oracle (tests/encoding_oracle.h): all positive
  // finite binary16 values plus a 2^16 sentinel standing in for "the next
  // representable value above maxFinite". Doubles hold every entry and
  // every neighbour midpoint exactly (multiples of 2^-24 below 2^17), so
  // the oracle's compares are exact.
  const oracle::EncodingTable table = oracle::buildEncodingTable<half16>();
  ASSERT_FALSE(table.saturating);  // binary16 overflows to infinity
  ASSERT_EQ(table.entries.back().second, 0x7C00u);
  ASSERT_EQ(table.entries.back().first, 65536.0);

  auto check = [&](float f) {
    if (!std::isfinite(f)) {
      return;
    }
    const auto expected =
        static_cast<std::uint16_t>(oracle::nearestEvenOracle(table, f));
    EXPECT_EQ(half16::fromFloat(f), expected) << "f=" << f;
    EXPECT_EQ(half16::fromFloat(-f),
              static_cast<std::uint16_t>(expected ^ 0x8000u))
        << "f=" << -f;
  };

  // Every exact half value, every neighbour midpoint (the ties-to-even
  // cases), and points just off each midpoint in both directions.
  const auto& grid = table.entries;
  for (std::size_t i = 0; i + 1 < grid.size(); ++i) {
    check(static_cast<float>(grid[i].first));
    const double mid = (grid[i].first + grid[i + 1].first) / 2.0;
    const auto fMid = static_cast<float>(mid);
    check(fMid);
    check(std::nextafter(fMid, 0.0f));
    check(std::nextafter(fMid, 1e30f));
  }

  // Overflow boundary: 65520 = midpoint(65504, "65536") ties up to inf.
  EXPECT_EQ(half16::fromFloat(65520.0f), 0x7C00u);
  EXPECT_EQ(half16::fromFloat(std::nextafter(65520.0f, 0.0f)), 0x7BFFu);
  EXPECT_EQ(half16::fromFloat(-65520.0f), 0xFC00u);

  // Underflow boundary: half the smallest subnormal ties down to zero.
  const float minSub = 5.9604644775390625e-08f;  // 2^-24
  EXPECT_EQ(half16::fromFloat(minSub / 2.0f), 0x0000u);
  EXPECT_EQ(half16::fromFloat(std::nextafter(minSub / 2.0f, 1.0f)), 0x0001u);
  EXPECT_EQ(half16::fromFloat(-minSub / 2.0f), 0x8000u);

  // A deterministic pseudo-random sweep of float bit patterns across the
  // whole finite range (LCG over the 32-bit encodings).
  std::uint32_t s = 0x9E3779B9u;
  for (int i = 0; i < 200000; ++i) {
    s = s * 1664525u + 1013904223u;
    check(std::bit_cast<float>(s & 0x7FFFFFFFu));  // sign covered in check()
  }
}

/// Casting a panel whose entries are bounded by 1 (the L panel after the
/// diagonally-dominant TRSM) loses at most the unit roundoff per entry —
/// the property the paper's mixed-precision GEMM accuracy rests on.
TEST(Half, PanelEntriesSurviveCast) {
  for (int i = 0; i < 2000; ++i) {
    const float v = -1.0f + 0.001f * static_cast<float>(i);
    const float err = std::fabs(half16(v).toFloat() - v);
    EXPECT_LE(err, half16::epsilonUnit() * std::max(std::fabs(v), 1e-3f));
  }
}

}  // namespace
}  // namespace hplmxp
