// Serving subsystem: factor cache (LRU, budget, single-flight), admission
// control, batching policy, the end-to-end engine (including bitwise
// equivalence of served solutions and chaos-driven retries/deadline
// rejections), trace I/O, and the `hplmxp serve` command.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "cli/commands.h"
#include "cli/options.h"
#include "core/single_solver.h"
#include "gen/matgen.h"
#include "serve/engine.h"
#include "serve/json.h"
#include "serve/trace_io.h"

namespace hplmxp::serve {
namespace {

ProblemKey key(index_t n, index_t b, std::uint64_t seed) {
  ProblemKey k;
  k.n = n;
  k.b = b;
  k.seed = seed;
  return k;
}

Factorization factorOf(const ProblemKey& k) {
  const ProblemGenerator gen(k.seed, k.n);
  return factorMixedSingle(gen, k.b, Vendor::kAmd);
}

// ---------------------------------------------------------------- JSON --

TEST(Json, ParsesScalarsObjectsArrays) {
  const JsonValue v = JsonValue::parse(
      R"({"name": "t", "pi": 3.5, "on": true, "off": false,
          "nil": null, "list": [1, 2, 3], "nest": {"k": -2e2}})");
  EXPECT_EQ(v.get("name").asString(), "t");
  EXPECT_DOUBLE_EQ(v.get("pi").asNumber(), 3.5);
  EXPECT_TRUE(v.get("on").asBool());
  EXPECT_FALSE(v.get("off").asBool());
  EXPECT_TRUE(v.get("nil").isNull());
  ASSERT_EQ(v.get("list").asArray().size(), 3u);
  EXPECT_DOUBLE_EQ(v.get("list").asArray()[2].asNumber(), 3.0);
  EXPECT_DOUBLE_EQ(v.get("nest").get("k").asNumber(), -200.0);
  EXPECT_DOUBLE_EQ(v.numberOr("absent", 7.0), 7.0);
  EXPECT_EQ(v.stringOr("absent", "d"), "d");
}

TEST(Json, DecodesUnicodeEscapesToUtf8) {
  // The escape sequences are assembled from `esc` so the test source
  // itself stays plain ASCII.
  const std::string esc = "\\u";
  // BMP code points across the 1-, 2-, and 3-byte UTF-8 ranges.
  EXPECT_EQ(JsonValue::parse("\"" + esc + "0041\"").asString(), "A");
  EXPECT_EQ(JsonValue::parse("\"" + esc + "00e9\"").asString(),
            "\xC3\xA9");  // e-acute
  EXPECT_EQ(JsonValue::parse("\"" + esc + "20AC\"").asString(),
            "\xE2\x82\xAC");  // euro sign
  // Escaped control characters (the reason external traces escape).
  EXPECT_EQ(JsonValue::parse("\"" + esc + "0007\"").asString(), "\a");
  // Surrogate pair: U+1D11E (musical G clef) -> 4-byte UTF-8.
  EXPECT_EQ(JsonValue::parse("\"" + esc + "D834" + esc + "DD1E\"").asString(),
            "\xF0\x9D\x84\x9E");
  // Mixed with plain escapes and surrounding text.
  EXPECT_EQ(JsonValue::parse("\"a" + esc + "0042c\\n\"").asString(), "aBc\n");
  // Round trip: jsonQuote emits the \uXXXX escapes the parser decodes.
  const std::string original = std::string("x\x01y\x1Fz");
  EXPECT_EQ(JsonValue::parse(jsonQuote(original)).asString(), original);
}

TEST(Json, MalformedUnicodeEscapesCarryByteOffset) {
  const std::string esc = "\\u";
  const auto offsetOf = [](const std::string& text) -> std::size_t {
    try {
      (void)JsonValue::parse(text);
    } catch (const JsonParseError& e) {
      return e.offset();
    }
    ADD_FAILURE() << "expected JsonParseError for: " << text;
    return static_cast<std::size_t>(-1);
  };
  // Bad hex digit: blamed on the digit itself.
  EXPECT_EQ(offsetOf("\"" + esc + "12G4\""), 5u);
  // Truncated escape: blamed on the opening backslash.
  EXPECT_EQ(offsetOf("\"" + esc + "12"), 1u);
  // Unpaired low surrogate.
  EXPECT_EQ(offsetOf("\"" + esc + "DC00\""), 1u);
  // High surrogate with no escape after it.
  EXPECT_EQ(offsetOf("\"" + esc + "D834x\""), 1u);
  // High surrogate followed by an escape that is not a low surrogate.
  EXPECT_EQ(offsetOf("\"" + esc + "D834\\n\""), 1u);
  // The offset survives nesting: the prefix before the escape counts
  // (the bad hex digit 'Z' sits at byte 11).
  EXPECT_EQ(offsetOf("{\"k\": \"ab" + esc + "ZZZZ\"}"), 11u);
  // JsonParseError is still a CheckError for existing catch sites.
  EXPECT_THROW((void)JsonValue::parse("\"" + esc + "DEAD beef\""), CheckError);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW((void)JsonValue::parse("{"), CheckError);
  EXPECT_THROW((void)JsonValue::parse("[1,]"), CheckError);
  EXPECT_THROW((void)JsonValue::parse("{\"a\" 1}"), CheckError);
  EXPECT_THROW((void)JsonValue::parse("{} trailing"), CheckError);
  const JsonValue v = JsonValue::parse(R"({"a": 1})");
  EXPECT_THROW((void)v.get("missing"), CheckError);
  EXPECT_THROW((void)v.get("a").asString(), CheckError);
  // Defaulted lookups still type-check present keys.
  EXPECT_THROW((void)v.stringOr("a", "x"), CheckError);
  EXPECT_DOUBLE_EQ(v.numberOr("a", 0.0), 1.0);
}

// ------------------------------------------------------------ trace IO --

TEST(TraceIo, RoundTripsThroughJson) {
  const RequestTrace trace = makeSyntheticTrace(10, 3, 0.5, 64, 16, 21);
  const std::string path = "test_serve_trace_roundtrip.json";
  {
    std::ofstream out(path);
    out << traceToJson(trace);
  }
  const RequestTrace back = loadRequestTrace(path);
  std::remove(path.c_str());
  EXPECT_EQ(back.name, trace.name);
  ASSERT_EQ(back.requests.size(), trace.requests.size());
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    EXPECT_EQ(back.requests[i].seed, trace.requests[i].seed);
    EXPECT_EQ(back.requests[i].rhsSeed, trace.requests[i].rhsSeed);
    EXPECT_EQ(back.requests[i].n, trace.requests[i].n);
    EXPECT_DOUBLE_EQ(back.requests[i].atMs, trace.requests[i].atMs);
  }
}

TEST(TraceIo, ArrivalUsAccumulatesFromPreviousRequest) {
  const std::string path = "test_serve_trace_arrival_us.json";
  {
    std::ofstream out(path);
    out << R"({"name": "gaps", "requests": [
      {"arrival_us": 0,    "n": 32, "b": 16, "seed": 1},
      {"arrival_us": 250,  "n": 32, "b": 16, "seed": 2},
      {"arrival_us": 1500, "n": 32, "b": 16, "seed": 3},
      {"at_ms": 10.0,      "n": 32, "b": 16, "seed": 4},
      {"arrival_us": 500,  "n": 32, "b": 16, "seed": 5},
      {"n": 32, "b": 16, "seed": 6}
    ]})";
  }
  const RequestTrace trace = loadRequestTrace(path);
  std::remove(path.c_str());
  ASSERT_EQ(trace.requests.size(), 6u);
  EXPECT_DOUBLE_EQ(trace.requests[0].atMs, 0.0);
  EXPECT_DOUBLE_EQ(trace.requests[1].atMs, 0.25);
  EXPECT_DOUBLE_EQ(trace.requests[2].atMs, 1.75);
  // at_ms stays absolute and resets the accumulation base.
  EXPECT_DOUBLE_EQ(trace.requests[3].atMs, 10.0);
  EXPECT_DOUBLE_EQ(trace.requests[4].atMs, 10.5);
  // Neither field: back-to-back with the predecessor.
  EXPECT_DOUBLE_EQ(trace.requests[5].atMs, 0.0);
}

TEST(TraceIo, ArrivalUsRejectsNegativeGaps) {
  const std::string path = "test_serve_trace_arrival_neg.json";
  {
    std::ofstream out(path);
    out << R"({"requests": [{"arrival_us": -5, "n": 32, "b": 16, "seed": 1}]})";
  }
  EXPECT_THROW((void)loadRequestTrace(path), CheckError);
  std::remove(path.c_str());
}

// --------------------------------------------------------- FactorCache --

TEST(FactorCacheTest, HitsMissesAndProblemKeyIdentity) {
  FactorCache cache(std::size_t{16} << 20);
  const ProblemKey k1 = key(32, 16, 1);
  const ProblemKey k2 = key(32, 16, 2);  // different seed => different entry

  const FactorCache::Fetch a = cache.getOrFactor(k1, [&] { return factorOf(k1); });
  EXPECT_FALSE(a.hit);
  const FactorCache::Fetch b = cache.getOrFactor(k1, [&] { return factorOf(k1); });
  EXPECT_TRUE(b.hit);
  EXPECT_EQ(a.factors.get(), b.factors.get());
  const FactorCache::Fetch c = cache.getOrFactor(k2, [&] { return factorOf(k2); });
  EXPECT_FALSE(c.hit);

  const FactorCache::Stats s = cache.stats();
  EXPECT_EQ(s.lookups, 3u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.factorCount, 2u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NEAR(s.hitRate(), 1.0 / 3.0, 1e-12);
}

TEST(FactorCacheTest, EvictsLeastRecentlyUsedForBudget) {
  // One 32x32 FP32 factorization is ~4 KB; budget two of them.
  const std::size_t one = factorOf(key(32, 16, 1)).bytes();
  FactorCache cache(2 * one + 64);
  const ProblemKey k1 = key(32, 16, 1);
  const ProblemKey k2 = key(32, 16, 2);
  const ProblemKey k3 = key(32, 16, 3);

  (void)cache.getOrFactor(k1, [&] { return factorOf(k1); });
  (void)cache.getOrFactor(k2, [&] { return factorOf(k2); });
  (void)cache.peek(k1);  // touch k1 so k2 is now least-recently used
  (void)cache.getOrFactor(k3, [&] { return factorOf(k3); });

  EXPECT_TRUE(cache.contains(k1));
  EXPECT_FALSE(cache.contains(k2));
  EXPECT_TRUE(cache.contains(k3));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().bytesInUse, 2 * one + 64);
}

TEST(FactorCacheTest, SingleFlightCoalescesConcurrentMisses) {
  FactorCache cache(std::size_t{16} << 20);
  const ProblemKey k = key(32, 16, 9);
  std::atomic<int> factored{0};

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      const FactorCache::Fetch f = cache.getOrFactor(k, [&] {
        ++factored;
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        return factorOf(k);
      });
      EXPECT_NE(f.factors, nullptr);
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  // A burst of misses on one key costs exactly one factorization, and
  // every waiter that shared the result counts as a hit (coalesced is the
  // wait-event tally, not a third outcome).
  EXPECT_EQ(factored.load(), 1);
  const FactorCache::Stats s = cache.stats();
  EXPECT_EQ(s.factorCount, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(s.lookups, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(s.hits + s.misses, s.lookups);
}

TEST(FactorCacheTest, CoalescedWaitersCountAsHitsUnderContention) {
  // Regression for the waiter path returning hit=true without bumping
  // stats_.hits: hammer one key from many threads through repeated
  // rounds and assert the accounting identity the fleet report gates on.
  FactorCache cache(std::size_t{16} << 20);
  const ProblemKey k = key(32, 16, 21);

  constexpr int kThreads = 8;
  constexpr int kRounds = 25;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        const FactorCache::Fetch f =
            cache.getOrFactor(k, [&] { return factorOf(k); });
        EXPECT_NE(f.factors, nullptr);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  const FactorCache::Stats s = cache.stats();
  EXPECT_EQ(s.lookups, static_cast<std::uint64_t>(kThreads * kRounds));
  EXPECT_EQ(s.hits + s.misses, s.lookups);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.factorCount, 1u);
  EXPECT_NEAR(s.hitRate(),
              static_cast<double>(s.hits) / static_cast<double>(s.lookups),
              1e-12);
}

TEST(FactorCacheTest, FailedFactorizationIsWithdrawn) {
  FactorCache cache(std::size_t{16} << 20);
  const ProblemKey k = key(32, 16, 4);
  EXPECT_THROW((void)cache.getOrFactor(
                   k, [&]() -> Factorization { throw CheckError("boom"); }),
               CheckError);
  EXPECT_FALSE(cache.contains(k));
  // The key is retryable: the next caller factors fresh.
  const FactorCache::Fetch f = cache.getOrFactor(k, [&] { return factorOf(k); });
  EXPECT_FALSE(f.hit);
  EXPECT_NE(f.factors, nullptr);
}

// -------------------------------------------------------- RequestQueue --

QueuedRequest queued(const ProblemKey& k, std::uint64_t id, double at) {
  QueuedRequest qr;
  qr.request.id = id;
  qr.request.key = k;
  qr.submitSeconds = at;
  return qr;
}

TEST(RequestQueueTest, BoundsDepthAndCountsRejections) {
  RequestQueue q(2);
  EXPECT_TRUE(q.push(queued(key(32, 16, 1), 1, 0.0)));
  EXPECT_TRUE(q.push(queued(key(32, 16, 1), 2, 0.1)));
  EXPECT_FALSE(q.push(queued(key(32, 16, 1), 3, 0.2)));
  EXPECT_EQ(q.depth(), 2);
  EXPECT_EQ(q.rejectedFull(), 1u);
  // Retries bypass the bound: an admitted request is never re-rejected.
  q.pushRetry(queued(key(32, 16, 1), 4, 0.3));
  EXPECT_EQ(q.depth(), 3);
  EXPECT_EQ(q.peakDepth(), 3);
}

TEST(RequestQueueTest, TakesFifoPerKeyAndTracksOldest) {
  RequestQueue q(8);
  const ProblemKey a = key(32, 16, 1);
  const ProblemKey b = key(32, 16, 2);
  ASSERT_TRUE(q.push(queued(b, 10, 1.0)));
  ASSERT_TRUE(q.push(queued(a, 11, 2.0)));
  ASSERT_TRUE(q.push(queued(b, 12, 3.0)));

  double submit = 0.0;
  const ProblemKey* oldest = q.oldestKey(&submit);
  ASSERT_NE(oldest, nullptr);
  EXPECT_EQ(*oldest, b);
  EXPECT_DOUBLE_EQ(submit, 1.0);

  const std::vector<QueuedRequest> taken = q.take(b, 8);
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0].request.id, 10u);
  EXPECT_EQ(taken[1].request.id, 12u);
  EXPECT_EQ(q.depth(), 1);
  EXPECT_EQ(q.take(b, 8).size(), 0u);
}

TEST(RequestQueueTest, BackoffHidesFrontsUntilTheyMature) {
  RequestQueue q(8);
  const ProblemKey a = key(32, 16, 1);
  const ProblemKey b = key(32, 16, 2);
  QueuedRequest ra = queued(a, 1, 0.0);
  ra.notBeforeSeconds = 5.0;  // backing off
  q.pushRetry(std::move(ra));
  ASSERT_TRUE(q.push(queued(b, 2, 1.0)));

  // At t=2 only b is eligible, even though a submitted first.
  double submit = 0.0;
  double nextReady = 0.0;
  const ProblemKey* ready = q.readyKey(2.0, &submit, &nextReady);
  ASSERT_NE(ready, nullptr);
  EXPECT_EQ(*ready, b);
  EXPECT_DOUBLE_EQ(submit, 1.0);

  // oldestKey ignores eligibility (stop-flush path): a is oldest.
  const ProblemKey* oldest = q.oldestKey(&submit);
  ASSERT_NE(oldest, nullptr);
  EXPECT_EQ(*oldest, a);

  // Once b is gone, nothing is ready until a matures at t=5.
  (void)q.take(b, 8, 2.0);
  EXPECT_EQ(q.readyKey(2.0, &submit, &nextReady), nullptr);
  EXPECT_DOUBLE_EQ(nextReady, 5.0);
  ASSERT_NE(q.readyKey(5.0, &submit, &nextReady), nullptr);
}

TEST(RequestQueueTest, BackoffFrontBlocksItsWholeBucketFifo) {
  // Per-key FIFO is part of the serving contract: a backed-off front must
  // not be overtaken by a younger entry of the same key.
  RequestQueue q(8);
  const ProblemKey a = key(32, 16, 1);
  QueuedRequest retry = queued(a, 1, 0.0);
  retry.notBeforeSeconds = 9.0;
  q.pushRetry(std::move(retry));
  ASSERT_TRUE(q.push(queued(a, 2, 1.0)));

  double submit = 0.0;
  EXPECT_EQ(q.readyKey(2.0, &submit, nullptr), nullptr);
  EXPECT_TRUE(q.take(a, 8, 2.0).empty());

  // After the front matures the bucket drains in FIFO order.
  const std::vector<QueuedRequest> taken = q.take(a, 8, 9.0);
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0].request.id, 1u);
  EXPECT_EQ(taken[1].request.id, 2u);
}

// ------------------------------------------------------------- Batcher --

TEST(BatcherTest, DispatchesOnFullBatchOrAgedWindow) {
  const Batcher batcher(BatchPolicy{2, 0.010});
  RequestQueue q(8);
  EXPECT_FALSE(batcher.decide(q, 0.0).dispatch);  // idle

  ASSERT_TRUE(q.push(queued(key(32, 16, 1), 1, 0.0)));
  const Batcher::Decision waiting = batcher.decide(q, 0.004);
  EXPECT_FALSE(waiting.dispatch);  // one request, window not aged out
  EXPECT_NEAR(waiting.waitSeconds, 0.006, 1e-9);

  EXPECT_TRUE(batcher.decide(q, 0.011).dispatch);  // aged past the window

  ASSERT_TRUE(q.push(queued(key(32, 16, 1), 2, 0.001)));
  const Batcher::Decision full = batcher.decide(q, 0.002);
  EXPECT_TRUE(full.dispatch);  // full batch dispatches immediately
  EXPECT_EQ(full.key, key(32, 16, 1));
}

TEST(BatcherTest, SleepsExactlyUntilBackedOffRetryMatures) {
  const Batcher batcher(BatchPolicy{2, 0.010});
  RequestQueue q(8);
  QueuedRequest retry = queued(key(32, 16, 1), 1, 0.0);
  retry.notBeforeSeconds = 0.040;
  q.pushRetry(std::move(retry));

  const Batcher::Decision d = batcher.decide(q, 0.015);
  EXPECT_FALSE(d.dispatch);
  EXPECT_NEAR(d.waitSeconds, 0.025, 1e-9);  // exactly until t=0.040

  // Matured: the aged request dispatches (submitted at 0, window long gone).
  EXPECT_TRUE(batcher.decide(q, 0.041).dispatch);
}

// ------------------------------------------------------ CircuitBreaker --

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailuresAndCoolsDown) {
  BreakerConfig cfg;
  cfg.enabled = true;
  cfg.failureThreshold = 3;
  cfg.openSeconds = 1.0;
  CircuitBreaker cb(cfg);
  const ProblemKey k = key(32, 16, 1);

  cb.onFailure(k, 0.0);
  cb.onFailure(k, 0.1);
  EXPECT_TRUE(cb.allow(k, 0.2));  // two failures: still closed
  cb.onFailure(k, 0.2);           // third: trips
  EXPECT_EQ(cb.trips(), 1u);
  EXPECT_EQ(cb.openCount(), 1);
  EXPECT_FALSE(cb.allow(k, 0.5));  // open, inside cool-down
  EXPECT_EQ(cb.rejections(), 1u);

  // Cool-down elapsed: one probe admitted, further admissions rejected
  // until the probe's verdict.
  EXPECT_TRUE(cb.allow(k, 1.3));
  EXPECT_FALSE(cb.allow(k, 1.3));
  cb.onSuccess(k);
  EXPECT_TRUE(cb.allow(k, 1.4));  // closed again
  EXPECT_EQ(cb.openCount(), 0);
}

TEST(CircuitBreakerTest, FailedProbeReopensTheCircuit) {
  BreakerConfig cfg;
  cfg.enabled = true;
  cfg.failureThreshold = 1;
  cfg.openSeconds = 1.0;
  CircuitBreaker cb(cfg);
  const ProblemKey k = key(32, 16, 2);

  cb.onFailure(k, 0.0);             // trips immediately
  EXPECT_TRUE(cb.allow(k, 1.5));    // probe
  cb.onFailure(k, 1.5);             // probe failed: re-open
  EXPECT_EQ(cb.trips(), 2u);
  EXPECT_FALSE(cb.allow(k, 2.0));   // cooling down again until 2.5
  EXPECT_TRUE(cb.allow(k, 2.6));
}

TEST(CircuitBreakerTest, SuccessResetsTheFailureStreak) {
  BreakerConfig cfg;
  cfg.enabled = true;
  cfg.failureThreshold = 2;
  CircuitBreaker cb(cfg);
  const ProblemKey k = key(32, 16, 3);
  cb.onFailure(k, 0.0);
  cb.onSuccess(k);      // streak broken
  cb.onFailure(k, 0.2);
  EXPECT_EQ(cb.trips(), 0u);  // never reached two consecutive
  EXPECT_TRUE(cb.allow(k, 0.3));
}

TEST(CircuitBreakerTest, KeysAreIndependent) {
  BreakerConfig cfg;
  cfg.enabled = true;
  cfg.failureThreshold = 1;
  cfg.openSeconds = 10.0;
  CircuitBreaker cb(cfg);
  const ProblemKey bad = key(32, 16, 4);
  const ProblemKey good = key(32, 16, 5);
  cb.onFailure(bad, 0.0);
  EXPECT_FALSE(cb.allow(bad, 1.0));
  EXPECT_TRUE(cb.allow(good, 1.0));  // untouched key stays closed
  const std::vector<CircuitBreaker::KeySnapshot> snap = cb.snapshot();
  ASSERT_EQ(snap.size(), 1u);  // `good` never allocated an entry
  EXPECT_EQ(snap[0].key, bad);
  EXPECT_STREQ(toString(snap[0].state), "open");
}

// -------------------------------------------------------------- Engine --

SolveRequest request(const ProblemKey& k, std::uint64_t rhsSeed,
                     double deadlineSeconds = 0.0) {
  SolveRequest r;
  r.key = k;
  r.rhsSeed = rhsSeed;
  r.deadlineSeconds = deadlineSeconds;
  return r;
}

TEST(ServeEngineTest, BatchesCompatibleRequestsAndMatchesSoloBitwise) {
  ServeConfig cfg;
  cfg.startPaused = true;  // queue everything, then release: one batch
  cfg.maxBatch = 8;
  ServeEngine engine(cfg);

  const ProblemKey k = key(64, 16, 31);
  const std::vector<std::uint64_t> rhsSeeds = {101, 202, 303, 404};
  std::vector<ServeEngine::HandlePtr> handles;
  for (const std::uint64_t s : rhsSeeds) {
    handles.push_back(engine.submit(request(k, s)));
  }
  engine.resume();
  engine.drain();

  const Factorization f = factorOf(k);
  const ProblemGenerator gen(k.seed, k.n);
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const RequestOutcome& o = handles[i]->wait();
    ASSERT_EQ(o.status, RequestStatus::kCompleted) << o.error;
    EXPECT_EQ(o.batchSize, static_cast<index_t>(rhsSeeds.size()));
    EXPECT_TRUE(o.converged);
    std::vector<std::vector<double>> xs;
    (void)solveManyMixedSingle(f, gen, {rhsSeeds[i]}, xs);
    ASSERT_EQ(handles[i]->solution().size(), xs[0].size());
    EXPECT_EQ(0, std::memcmp(handles[i]->solution().data(), xs[0].data(),
                             sizeof(double) * xs[0].size()))
        << "rhs seed " << rhsSeeds[i];
  }
  const ServeReport report = engine.report();
  EXPECT_EQ(report.completed, rhsSeeds.size());
  EXPECT_EQ(report.cache.factorCount, 1u);  // one batch, one factorization
  EXPECT_EQ(report.maxBatchSize, static_cast<index_t>(rhsSeeds.size()));
}

TEST(ServeEngineTest, RepeatedKeysHitTheCache) {
  ServeConfig cfg;
  cfg.maxBatchDelaySeconds = 0.0;  // no coalescing: every request solo
  ServeEngine engine(cfg);
  const ProblemKey k = key(32, 16, 5);
  for (std::uint64_t s = 1; s <= 6; ++s) {
    engine.submit(request(k, 1000 + s))->wait();
  }
  engine.drain();
  const ServeReport report = engine.report();
  EXPECT_EQ(report.completed, 6u);
  EXPECT_EQ(report.cache.factorCount, 1u);
  EXPECT_GT(report.cache.hitRate(), 0.0);
}

TEST(ServeEngineTest, QueueFullRejectsImmediately) {
  ServeConfig cfg;
  cfg.queueDepth = 2;
  cfg.startPaused = true;
  ServeEngine engine(cfg);
  const ProblemKey k = key(32, 16, 6);
  const ServeEngine::HandlePtr a = engine.submit(request(k, 1));
  const ServeEngine::HandlePtr b = engine.submit(request(k, 2));
  const ServeEngine::HandlePtr c = engine.submit(request(k, 3));
  EXPECT_TRUE(c->done());  // rejected synchronously, while still paused
  EXPECT_EQ(c->wait().status, RequestStatus::kRejectedQueueFull);
  engine.resume();
  engine.drain();
  EXPECT_EQ(a->wait().status, RequestStatus::kCompleted);
  EXPECT_EQ(b->wait().status, RequestStatus::kCompleted);
  EXPECT_EQ(engine.report().rejectedQueueFull, 1u);
}

TEST(ServeEngineTest, RejectsKeysTheBackendCannotServe) {
  ServeEngine engine(ServeConfig{});
  ProblemKey distributed = key(64, 16, 1);
  distributed.pr = 2;
  const RequestOutcome& grid = engine.submit(request(distributed, 1))->wait();
  EXPECT_EQ(grid.status, RequestStatus::kFailed);
  EXPECT_NE(grid.error.find("1x1"), std::string::npos);

  const RequestOutcome& shape =
      engine.submit(request(key(0, 16, 1), 1))->wait();
  EXPECT_EQ(shape.status, RequestStatus::kFailed);
}

TEST(ServeEngineTest, InjectedDelaySurfacesAsDeadlineRejectionNotHang) {
  ServeConfig cfg;
  simmpi::FaultConfig faults;
  faults.delayProbability = 1.0;    // every attempt sleeps...
  faults.delayMicros = 20000;       // ...20 ms
  cfg.chaos = std::make_shared<simmpi::FaultInjector>(faults, cfg.workers);
  cfg.defaultDeadlineSeconds = 0.005;  // 5 ms budget: unmeetable
  ServeEngine engine(cfg);

  const ProblemKey k = key(32, 16, 7);
  const RequestOutcome& o = engine.submit(request(k, 1))->wait();
  EXPECT_EQ(o.status, RequestStatus::kRejectedDeadline);
  engine.drain();
  const ServeReport report = engine.report();
  EXPECT_EQ(report.rejectedDeadline, 1u);
  EXPECT_GT(report.injectedDelays, 0u);
}

TEST(ServeEngineTest, TransientFaultsExhaustRetryBudgetIntoFailure) {
  ServeConfig cfg;
  simmpi::FaultConfig faults;
  faults.transientSendProbability = 1.0;  // every attempt fails
  cfg.chaos = std::make_shared<simmpi::FaultInjector>(faults, cfg.workers);
  cfg.maxRetries = 2;
  ServeEngine engine(cfg);

  const RequestOutcome& o = engine.submit(request(key(32, 16, 8), 1))->wait();
  EXPECT_EQ(o.status, RequestStatus::kFailed);
  EXPECT_EQ(o.retries, 2);
  EXPECT_NE(o.error.find("retry budget"), std::string::npos);
  EXPECT_GT(engine.report().injectedTransients, 0u);
}

TEST(ServeEngineTest, TransientFaultsWithinBudgetRecover) {
  ServeConfig cfg;
  simmpi::FaultConfig faults;
  faults.seed = 11;
  faults.transientSendProbability = 0.45;
  cfg.chaos = std::make_shared<simmpi::FaultInjector>(faults, cfg.workers);
  cfg.maxRetries = 64;
  cfg.maxBatchDelaySeconds = 0.0;
  ServeEngine engine(cfg);

  std::uint64_t retries = 0;
  for (std::uint64_t s = 0; s < 6; ++s) {
    // Distinct keys so each request is its own batch (its own fault draw).
    const RequestOutcome& o =
        engine.submit(request(key(32, 16, 100 + s), 1))->wait();
    EXPECT_EQ(o.status, RequestStatus::kCompleted) << o.error;
    retries += static_cast<std::uint64_t>(o.retries);
  }
  EXPECT_GT(retries, 0u);  // the deterministic plan injects some failures
}

TEST(ServeEngineTest, PersistentKeyFaultTripsBreakerIntoStructuredRejection) {
  ServeConfig cfg;
  cfg.maxBatchDelaySeconds = 0.0;
  cfg.maxRetries = 0;  // every hook failure is terminal: one per submit
  cfg.breaker.enabled = true;
  cfg.breaker.failureThreshold = 3;
  cfg.breaker.openSeconds = 60.0;  // stays open for the rest of the test
  const ProblemKey bad = key(32, 16, 66);
  cfg.keyFaultHook = [bad](const ProblemKey& k) { return k == bad; };
  ServeEngine engine(cfg);

  // The first `failureThreshold` submissions execute (and fail); once the
  // circuit trips, admissions are rejected without touching a worker.
  for (int i = 0; i < 3; ++i) {
    const ServeEngine::HandlePtr h = engine.submit(request(bad, 1 + i));
    const RequestOutcome& o = h->wait();
    EXPECT_EQ(o.status, RequestStatus::kFailed) << "attempt " << i;
    EXPECT_NE(o.error.find("injected key fault"), std::string::npos);
  }
  const ServeEngine::HandlePtr rejectedHandle = engine.submit(request(bad, 9));
  const RequestOutcome& rejected = rejectedHandle->wait();
  EXPECT_EQ(rejected.status, RequestStatus::kRejectedCircuitOpen);
  EXPECT_NE(rejected.error.find("circuit open"), std::string::npos);

  // A healthy key is untouched by the bad key's open circuit.
  const ServeEngine::HandlePtr healthyHandle =
      engine.submit(request(key(32, 16, 67), 1));
  const RequestOutcome& healthy = healthyHandle->wait();
  EXPECT_EQ(healthy.status, RequestStatus::kCompleted) << healthy.error;

  engine.drain();
  const ServeReport report = engine.report();
  EXPECT_EQ(report.rejectedCircuitOpen, 1u);
  EXPECT_EQ(report.breakerTrips, 1u);
  EXPECT_GE(report.breakerRejections, 1u);
  EXPECT_EQ(report.breakersOpen, 1);
}

TEST(ServeEngineTest, HalfOpenProbeClosesTheCircuitAfterTheFaultClears) {
  ServeConfig cfg;
  cfg.maxBatchDelaySeconds = 0.0;
  cfg.maxRetries = 0;
  cfg.breaker.enabled = true;
  cfg.breaker.failureThreshold = 1;
  cfg.breaker.openSeconds = 0.010;  // short cool-down: the test waits it out
  auto faulty = std::make_shared<std::atomic<bool>>(true);
  const ProblemKey k = key(32, 16, 68);
  cfg.keyFaultHook = [faulty, k](const ProblemKey& kk) {
    return kk == k && faulty->load();
  };
  ServeEngine engine(cfg);

  EXPECT_EQ(engine.submit(request(k, 1))->wait().status,
            RequestStatus::kFailed);  // trips (threshold 1)
  EXPECT_EQ(engine.submit(request(k, 2))->wait().status,
            RequestStatus::kRejectedCircuitOpen);

  // Fault clears; after the cool-down the next admission is the probe,
  // it succeeds, and the circuit closes for good.
  faulty->store(false);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(engine.submit(request(k, 3))->wait().status,
            RequestStatus::kCompleted);
  EXPECT_EQ(engine.submit(request(k, 4))->wait().status,
            RequestStatus::kCompleted);
  engine.drain();
  EXPECT_EQ(engine.report().breakersOpen, 0);
}

TEST(ServeEngineTest, DegradedModeShedsBatchingWhileCircuitsBurn) {
  ServeConfig cfg;
  cfg.startPaused = true;
  cfg.maxBatch = 8;
  cfg.maxBatchDelaySeconds = 0.050;  // generous window: would coalesce
  cfg.maxRetries = 0;
  cfg.breaker.enabled = true;
  cfg.breaker.failureThreshold = 1;
  cfg.breaker.openSeconds = 60.0;
  cfg.degradedOpenBreakers = 1;
  const ProblemKey bad = key(32, 16, 70);
  cfg.keyFaultHook = [bad](const ProblemKey& k) { return k == bad; };
  ServeEngine engine(cfg);
  EXPECT_FALSE(engine.degraded());

  const ProblemKey good = key(32, 16, 71);
  std::vector<ServeEngine::HandlePtr> handles;
  handles.push_back(engine.submit(request(bad, 1)));  // will trip
  for (std::uint64_t s = 0; s < 4; ++s) {
    handles.push_back(engine.submit(request(good, 10 + s)));
  }
  engine.resume();
  engine.drain();

  EXPECT_EQ(handles[0]->wait().status, RequestStatus::kFailed);
  for (std::size_t i = 1; i < handles.size(); ++i) {
    const RequestOutcome& o = handles[i]->wait();
    EXPECT_EQ(o.status, RequestStatus::kCompleted) << o.error;
    // Degraded mode sheds coalescing: solo batches despite the window.
    EXPECT_EQ(o.batchSize, 1);
  }
  EXPECT_TRUE(engine.degraded());
  EXPECT_TRUE(engine.report().degraded);
}

TEST(ServeEngineTest, RetryBackoffDelaysRequeuedWorkButStillCompletes) {
  ServeConfig cfg;
  simmpi::FaultConfig faults;
  faults.seed = 13;
  faults.transientSendProbability = 0.45;
  cfg.chaos = std::make_shared<simmpi::FaultInjector>(faults, cfg.workers);
  cfg.maxRetries = 64;
  cfg.maxBatchDelaySeconds = 0.0;
  cfg.retryBackoffSeconds = 0.001;
  cfg.retryBackoffMaxSeconds = 0.004;
  ServeEngine engine(cfg);

  std::uint64_t retries = 0;
  for (std::uint64_t s = 0; s < 6; ++s) {
    const ServeEngine::HandlePtr h =
        engine.submit(request(key(32, 16, 200 + s), 1));
    const RequestOutcome& o = h->wait();
    EXPECT_EQ(o.status, RequestStatus::kCompleted) << o.error;
    retries += static_cast<std::uint64_t>(o.retries);
  }
  // Backoff delays retries; it must never strand them.
  EXPECT_GT(retries, 0u);
  engine.drain();
  EXPECT_EQ(engine.report().completed, 6u);
}

// ----------------------------------------------------------------- CLI --

TEST(CmdServe, ReplayReportsAndVerifiesBitwise) {
  const std::string jsonPath = "test_serve_report.json";
  // serve.batch=2 caps coalescing below the 5 requests per key, so each
  // key dispatches several batches and the second onward is a cache hit
  // no matter how the scheduler interleaves arrivals with the worker.
  const int rc = cli::cmdServe(cli::Options::parseArgs(
      {"--requests=10", "--keys=2", "--gap-ms=0.2", "--n=48", "--b=16",
       "--serve.batch=2", "--json", jsonPath, "--verify=3"}));
  EXPECT_EQ(rc, 0);

  std::ifstream in(jsonPath);
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  std::remove(jsonPath.c_str());

  const JsonValue report = JsonValue::parse(text.str());
  EXPECT_EQ(report.get("completed").asNumber(), 10.0);
  EXPECT_GT(report.get("cache_hit_rate").asNumber(), 0.0);
  EXPECT_EQ(report.get("factor_count").asNumber(), 2.0);
  EXPECT_GE(report.get("queue_wait_ms").get("p99").asNumber(), 0.0);
  EXPECT_GE(report.get("solve_ms").get("p99").asNumber(), 0.0);
  EXPECT_GE(report.get("total_ms").get("p50").asNumber(), 0.0);
}

}  // namespace
}  // namespace hplmxp::serve
