// Serving subsystem: factor cache (LRU, budget, single-flight), admission
// control, batching policy, the end-to-end engine (including bitwise
// equivalence of served solutions and chaos-driven retries/deadline
// rejections), trace I/O, and the `hplmxp serve` command.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "cli/commands.h"
#include "cli/options.h"
#include "core/single_solver.h"
#include "gen/matgen.h"
#include "serve/engine.h"
#include "serve/json.h"
#include "serve/trace_io.h"

namespace hplmxp::serve {
namespace {

ProblemKey key(index_t n, index_t b, std::uint64_t seed) {
  ProblemKey k;
  k.n = n;
  k.b = b;
  k.seed = seed;
  return k;
}

Factorization factorOf(const ProblemKey& k) {
  const ProblemGenerator gen(k.seed, k.n);
  return factorMixedSingle(gen, k.b, Vendor::kAmd);
}

// ---------------------------------------------------------------- JSON --

TEST(Json, ParsesScalarsObjectsArrays) {
  const JsonValue v = JsonValue::parse(
      R"({"name": "t", "pi": 3.5, "on": true, "off": false,
          "nil": null, "list": [1, 2, 3], "nest": {"k": -2e2}})");
  EXPECT_EQ(v.get("name").asString(), "t");
  EXPECT_DOUBLE_EQ(v.get("pi").asNumber(), 3.5);
  EXPECT_TRUE(v.get("on").asBool());
  EXPECT_FALSE(v.get("off").asBool());
  EXPECT_TRUE(v.get("nil").isNull());
  ASSERT_EQ(v.get("list").asArray().size(), 3u);
  EXPECT_DOUBLE_EQ(v.get("list").asArray()[2].asNumber(), 3.0);
  EXPECT_DOUBLE_EQ(v.get("nest").get("k").asNumber(), -200.0);
  EXPECT_DOUBLE_EQ(v.numberOr("absent", 7.0), 7.0);
  EXPECT_EQ(v.stringOr("absent", "d"), "d");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW((void)JsonValue::parse("{"), CheckError);
  EXPECT_THROW((void)JsonValue::parse("[1,]"), CheckError);
  EXPECT_THROW((void)JsonValue::parse("{\"a\" 1}"), CheckError);
  EXPECT_THROW((void)JsonValue::parse("{} trailing"), CheckError);
  const JsonValue v = JsonValue::parse(R"({"a": 1})");
  EXPECT_THROW((void)v.get("missing"), CheckError);
  EXPECT_THROW((void)v.get("a").asString(), CheckError);
  // Defaulted lookups still type-check present keys.
  EXPECT_THROW((void)v.stringOr("a", "x"), CheckError);
  EXPECT_DOUBLE_EQ(v.numberOr("a", 0.0), 1.0);
}

// ------------------------------------------------------------ trace IO --

TEST(TraceIo, RoundTripsThroughJson) {
  const RequestTrace trace = makeSyntheticTrace(10, 3, 0.5, 64, 16, 21);
  const std::string path = "test_serve_trace_roundtrip.json";
  {
    std::ofstream out(path);
    out << traceToJson(trace);
  }
  const RequestTrace back = loadRequestTrace(path);
  std::remove(path.c_str());
  EXPECT_EQ(back.name, trace.name);
  ASSERT_EQ(back.requests.size(), trace.requests.size());
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    EXPECT_EQ(back.requests[i].seed, trace.requests[i].seed);
    EXPECT_EQ(back.requests[i].rhsSeed, trace.requests[i].rhsSeed);
    EXPECT_EQ(back.requests[i].n, trace.requests[i].n);
    EXPECT_DOUBLE_EQ(back.requests[i].atMs, trace.requests[i].atMs);
  }
}

// --------------------------------------------------------- FactorCache --

TEST(FactorCacheTest, HitsMissesAndProblemKeyIdentity) {
  FactorCache cache(std::size_t{16} << 20);
  const ProblemKey k1 = key(32, 16, 1);
  const ProblemKey k2 = key(32, 16, 2);  // different seed => different entry

  const FactorCache::Fetch a = cache.getOrFactor(k1, [&] { return factorOf(k1); });
  EXPECT_FALSE(a.hit);
  const FactorCache::Fetch b = cache.getOrFactor(k1, [&] { return factorOf(k1); });
  EXPECT_TRUE(b.hit);
  EXPECT_EQ(a.factors.get(), b.factors.get());
  const FactorCache::Fetch c = cache.getOrFactor(k2, [&] { return factorOf(k2); });
  EXPECT_FALSE(c.hit);

  const FactorCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.factorCount, 2u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NEAR(s.hitRate(), 1.0 / 3.0, 1e-12);
}

TEST(FactorCacheTest, EvictsLeastRecentlyUsedForBudget) {
  // One 32x32 FP32 factorization is ~4 KB; budget two of them.
  const std::size_t one = factorOf(key(32, 16, 1)).bytes();
  FactorCache cache(2 * one + 64);
  const ProblemKey k1 = key(32, 16, 1);
  const ProblemKey k2 = key(32, 16, 2);
  const ProblemKey k3 = key(32, 16, 3);

  (void)cache.getOrFactor(k1, [&] { return factorOf(k1); });
  (void)cache.getOrFactor(k2, [&] { return factorOf(k2); });
  (void)cache.peek(k1);  // touch k1 so k2 is now least-recently used
  (void)cache.getOrFactor(k3, [&] { return factorOf(k3); });

  EXPECT_TRUE(cache.contains(k1));
  EXPECT_FALSE(cache.contains(k2));
  EXPECT_TRUE(cache.contains(k3));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().bytesInUse, 2 * one + 64);
}

TEST(FactorCacheTest, SingleFlightCoalescesConcurrentMisses) {
  FactorCache cache(std::size_t{16} << 20);
  const ProblemKey k = key(32, 16, 9);
  std::atomic<int> factored{0};

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      const FactorCache::Fetch f = cache.getOrFactor(k, [&] {
        ++factored;
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        return factorOf(k);
      });
      EXPECT_NE(f.factors, nullptr);
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  // A burst of misses on one key costs exactly one factorization.
  EXPECT_EQ(factored.load(), 1);
  EXPECT_EQ(cache.stats().factorCount, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits + cache.stats().coalesced,
            static_cast<std::uint64_t>(kThreads - 1));
}

TEST(FactorCacheTest, FailedFactorizationIsWithdrawn) {
  FactorCache cache(std::size_t{16} << 20);
  const ProblemKey k = key(32, 16, 4);
  EXPECT_THROW((void)cache.getOrFactor(
                   k, [&]() -> Factorization { throw CheckError("boom"); }),
               CheckError);
  EXPECT_FALSE(cache.contains(k));
  // The key is retryable: the next caller factors fresh.
  const FactorCache::Fetch f = cache.getOrFactor(k, [&] { return factorOf(k); });
  EXPECT_FALSE(f.hit);
  EXPECT_NE(f.factors, nullptr);
}

// -------------------------------------------------------- RequestQueue --

QueuedRequest queued(const ProblemKey& k, std::uint64_t id, double at) {
  QueuedRequest qr;
  qr.request.id = id;
  qr.request.key = k;
  qr.submitSeconds = at;
  return qr;
}

TEST(RequestQueueTest, BoundsDepthAndCountsRejections) {
  RequestQueue q(2);
  EXPECT_TRUE(q.push(queued(key(32, 16, 1), 1, 0.0)));
  EXPECT_TRUE(q.push(queued(key(32, 16, 1), 2, 0.1)));
  EXPECT_FALSE(q.push(queued(key(32, 16, 1), 3, 0.2)));
  EXPECT_EQ(q.depth(), 2);
  EXPECT_EQ(q.rejectedFull(), 1u);
  // Retries bypass the bound: an admitted request is never re-rejected.
  q.pushRetry(queued(key(32, 16, 1), 4, 0.3));
  EXPECT_EQ(q.depth(), 3);
  EXPECT_EQ(q.peakDepth(), 3);
}

TEST(RequestQueueTest, TakesFifoPerKeyAndTracksOldest) {
  RequestQueue q(8);
  const ProblemKey a = key(32, 16, 1);
  const ProblemKey b = key(32, 16, 2);
  ASSERT_TRUE(q.push(queued(b, 10, 1.0)));
  ASSERT_TRUE(q.push(queued(a, 11, 2.0)));
  ASSERT_TRUE(q.push(queued(b, 12, 3.0)));

  double submit = 0.0;
  const ProblemKey* oldest = q.oldestKey(&submit);
  ASSERT_NE(oldest, nullptr);
  EXPECT_EQ(*oldest, b);
  EXPECT_DOUBLE_EQ(submit, 1.0);

  const std::vector<QueuedRequest> taken = q.take(b, 8);
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0].request.id, 10u);
  EXPECT_EQ(taken[1].request.id, 12u);
  EXPECT_EQ(q.depth(), 1);
  EXPECT_EQ(q.take(b, 8).size(), 0u);
}

// ------------------------------------------------------------- Batcher --

TEST(BatcherTest, DispatchesOnFullBatchOrAgedWindow) {
  const Batcher batcher(BatchPolicy{2, 0.010});
  RequestQueue q(8);
  EXPECT_FALSE(batcher.decide(q, 0.0).dispatch);  // idle

  ASSERT_TRUE(q.push(queued(key(32, 16, 1), 1, 0.0)));
  const Batcher::Decision waiting = batcher.decide(q, 0.004);
  EXPECT_FALSE(waiting.dispatch);  // one request, window not aged out
  EXPECT_NEAR(waiting.waitSeconds, 0.006, 1e-9);

  EXPECT_TRUE(batcher.decide(q, 0.011).dispatch);  // aged past the window

  ASSERT_TRUE(q.push(queued(key(32, 16, 1), 2, 0.001)));
  const Batcher::Decision full = batcher.decide(q, 0.002);
  EXPECT_TRUE(full.dispatch);  // full batch dispatches immediately
  EXPECT_EQ(full.key, key(32, 16, 1));
}

// -------------------------------------------------------------- Engine --

SolveRequest request(const ProblemKey& k, std::uint64_t rhsSeed,
                     double deadlineSeconds = 0.0) {
  SolveRequest r;
  r.key = k;
  r.rhsSeed = rhsSeed;
  r.deadlineSeconds = deadlineSeconds;
  return r;
}

TEST(ServeEngineTest, BatchesCompatibleRequestsAndMatchesSoloBitwise) {
  ServeConfig cfg;
  cfg.startPaused = true;  // queue everything, then release: one batch
  cfg.maxBatch = 8;
  ServeEngine engine(cfg);

  const ProblemKey k = key(64, 16, 31);
  const std::vector<std::uint64_t> rhsSeeds = {101, 202, 303, 404};
  std::vector<ServeEngine::HandlePtr> handles;
  for (const std::uint64_t s : rhsSeeds) {
    handles.push_back(engine.submit(request(k, s)));
  }
  engine.resume();
  engine.drain();

  const Factorization f = factorOf(k);
  const ProblemGenerator gen(k.seed, k.n);
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const RequestOutcome& o = handles[i]->wait();
    ASSERT_EQ(o.status, RequestStatus::kCompleted) << o.error;
    EXPECT_EQ(o.batchSize, static_cast<index_t>(rhsSeeds.size()));
    EXPECT_TRUE(o.converged);
    std::vector<std::vector<double>> xs;
    (void)solveManyMixedSingle(f, gen, {rhsSeeds[i]}, xs);
    ASSERT_EQ(handles[i]->solution().size(), xs[0].size());
    EXPECT_EQ(0, std::memcmp(handles[i]->solution().data(), xs[0].data(),
                             sizeof(double) * xs[0].size()))
        << "rhs seed " << rhsSeeds[i];
  }
  const ServeReport report = engine.report();
  EXPECT_EQ(report.completed, rhsSeeds.size());
  EXPECT_EQ(report.cache.factorCount, 1u);  // one batch, one factorization
  EXPECT_EQ(report.maxBatchSize, static_cast<index_t>(rhsSeeds.size()));
}

TEST(ServeEngineTest, RepeatedKeysHitTheCache) {
  ServeConfig cfg;
  cfg.maxBatchDelaySeconds = 0.0;  // no coalescing: every request solo
  ServeEngine engine(cfg);
  const ProblemKey k = key(32, 16, 5);
  for (std::uint64_t s = 1; s <= 6; ++s) {
    engine.submit(request(k, 1000 + s))->wait();
  }
  engine.drain();
  const ServeReport report = engine.report();
  EXPECT_EQ(report.completed, 6u);
  EXPECT_EQ(report.cache.factorCount, 1u);
  EXPECT_GT(report.cache.hitRate(), 0.0);
}

TEST(ServeEngineTest, QueueFullRejectsImmediately) {
  ServeConfig cfg;
  cfg.queueDepth = 2;
  cfg.startPaused = true;
  ServeEngine engine(cfg);
  const ProblemKey k = key(32, 16, 6);
  const ServeEngine::HandlePtr a = engine.submit(request(k, 1));
  const ServeEngine::HandlePtr b = engine.submit(request(k, 2));
  const ServeEngine::HandlePtr c = engine.submit(request(k, 3));
  EXPECT_TRUE(c->done());  // rejected synchronously, while still paused
  EXPECT_EQ(c->wait().status, RequestStatus::kRejectedQueueFull);
  engine.resume();
  engine.drain();
  EXPECT_EQ(a->wait().status, RequestStatus::kCompleted);
  EXPECT_EQ(b->wait().status, RequestStatus::kCompleted);
  EXPECT_EQ(engine.report().rejectedQueueFull, 1u);
}

TEST(ServeEngineTest, RejectsKeysTheBackendCannotServe) {
  ServeEngine engine(ServeConfig{});
  ProblemKey distributed = key(64, 16, 1);
  distributed.pr = 2;
  const RequestOutcome& grid = engine.submit(request(distributed, 1))->wait();
  EXPECT_EQ(grid.status, RequestStatus::kFailed);
  EXPECT_NE(grid.error.find("1x1"), std::string::npos);

  const RequestOutcome& shape =
      engine.submit(request(key(0, 16, 1), 1))->wait();
  EXPECT_EQ(shape.status, RequestStatus::kFailed);
}

TEST(ServeEngineTest, InjectedDelaySurfacesAsDeadlineRejectionNotHang) {
  ServeConfig cfg;
  simmpi::FaultConfig faults;
  faults.delayProbability = 1.0;    // every attempt sleeps...
  faults.delayMicros = 20000;       // ...20 ms
  cfg.chaos = std::make_shared<simmpi::FaultInjector>(faults, cfg.workers);
  cfg.defaultDeadlineSeconds = 0.005;  // 5 ms budget: unmeetable
  ServeEngine engine(cfg);

  const ProblemKey k = key(32, 16, 7);
  const RequestOutcome& o = engine.submit(request(k, 1))->wait();
  EXPECT_EQ(o.status, RequestStatus::kRejectedDeadline);
  engine.drain();
  const ServeReport report = engine.report();
  EXPECT_EQ(report.rejectedDeadline, 1u);
  EXPECT_GT(report.injectedDelays, 0u);
}

TEST(ServeEngineTest, TransientFaultsExhaustRetryBudgetIntoFailure) {
  ServeConfig cfg;
  simmpi::FaultConfig faults;
  faults.transientSendProbability = 1.0;  // every attempt fails
  cfg.chaos = std::make_shared<simmpi::FaultInjector>(faults, cfg.workers);
  cfg.maxRetries = 2;
  ServeEngine engine(cfg);

  const RequestOutcome& o = engine.submit(request(key(32, 16, 8), 1))->wait();
  EXPECT_EQ(o.status, RequestStatus::kFailed);
  EXPECT_EQ(o.retries, 2);
  EXPECT_NE(o.error.find("retry budget"), std::string::npos);
  EXPECT_GT(engine.report().injectedTransients, 0u);
}

TEST(ServeEngineTest, TransientFaultsWithinBudgetRecover) {
  ServeConfig cfg;
  simmpi::FaultConfig faults;
  faults.seed = 11;
  faults.transientSendProbability = 0.45;
  cfg.chaos = std::make_shared<simmpi::FaultInjector>(faults, cfg.workers);
  cfg.maxRetries = 64;
  cfg.maxBatchDelaySeconds = 0.0;
  ServeEngine engine(cfg);

  std::uint64_t retries = 0;
  for (std::uint64_t s = 0; s < 6; ++s) {
    // Distinct keys so each request is its own batch (its own fault draw).
    const RequestOutcome& o =
        engine.submit(request(key(32, 16, 100 + s), 1))->wait();
    EXPECT_EQ(o.status, RequestStatus::kCompleted) << o.error;
    retries += static_cast<std::uint64_t>(o.retries);
  }
  EXPECT_GT(retries, 0u);  // the deterministic plan injects some failures
}

// ----------------------------------------------------------------- CLI --

TEST(CmdServe, ReplayReportsAndVerifiesBitwise) {
  const std::string jsonPath = "test_serve_report.json";
  const int rc = cli::cmdServe(cli::Options::parseArgs(
      {"--requests=10", "--keys=2", "--gap-ms=0.2", "--n=48", "--b=16",
       "--json", jsonPath, "--verify=3"}));
  EXPECT_EQ(rc, 0);

  std::ifstream in(jsonPath);
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  std::remove(jsonPath.c_str());

  const JsonValue report = JsonValue::parse(text.str());
  EXPECT_EQ(report.get("completed").asNumber(), 10.0);
  EXPECT_GT(report.get("cache_hit_rate").asNumber(), 0.0);
  EXPECT_EQ(report.get("factor_count").asNumber(), 2.0);
  EXPECT_GE(report.get("queue_wait_ms").get("p99").asNumber(), 0.0);
  EXPECT_GE(report.get("solve_ms").get("p99").asNumber(), 0.0);
  EXPECT_GE(report.get("total_ms").get("p50").asNumber(), 0.0);
}

}  // namespace
}  // namespace hplmxp::serve
