// Table-driven round-to-nearest-even oracle shared by the storage-format
// test suites (binary16, bfloat16, FP8). The oracle enumerates every
// positive finite encoding of a format by DECODING it — the one direction
// that is trivially exact — and then derives the correct encoding of any
// float purely from nearest-neighbour comparisons in double, so it shares
// no rounding code with the implementations it checks.
//
// Works for any storage type exposing the repo's lowp interface:
// fromBits / bits / toFloat / isNan / isInf. Formats with an infinity
// (binary16, bfloat16, fp8e5m2) get an overflow sentinel standing in for
// "the next representable value above maxFinite", so the overflow tie
// (midpoint rounds up to infinity, the even encoding) falls out of the
// same ties-to-even rule as every interior midpoint. Finite-only formats
// (fp8e4m3) instead saturate: everything beyond maxFinite clamps to the
// maxFinite encoding, matching the hardware cast convention.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

namespace hplmxp::oracle {

struct EncodingTable {
  /// All non-negative finite values of the format in increasing order as
  /// (value, encoding) pairs; for infinity-capable formats the last entry
  /// is the overflow sentinel (maxFinite + one top-binade ulp, encoding
  /// +inf). Doubles hold every entry and every neighbour midpoint exactly
  /// for all formats up to 16 storage bits.
  std::vector<std::pair<double, std::uint32_t>> entries;
  /// Sign bit of the encoding (0x8000 for 16-bit formats, 0x80 for FP8).
  std::uint32_t signMask = 0;
  /// Finite-only format: overflow clamps to maxFinite instead of rounding
  /// to an infinity encoding.
  bool saturating = false;
  /// Encoding of +maxFinite (the saturation target).
  std::uint32_t maxFiniteBits = 0;
};

/// Builds the oracle table for a storage format by decoding every
/// positive encoding. Saturation semantics are inferred from the format
/// itself: a format with no infinity encoding saturates.
template <typename Storage>
EncodingTable buildEncodingTable() {
  using Bits = decltype(std::declval<Storage>().bits());
  EncodingTable t;
  t.signMask = std::uint32_t{1} << (sizeof(Bits) * 8 - 1);
  std::uint32_t infBits = 0;
  bool hasInf = false;
  for (std::uint32_t b = 0; b < t.signMask; ++b) {
    const Storage v = Storage::fromBits(static_cast<Bits>(b));
    if (v.isNan()) {
      continue;
    }
    if (v.isInf()) {
      infBits = b;
      hasInf = true;
      continue;
    }
    t.entries.emplace_back(static_cast<double>(v.toFloat()), b);
  }
  // Positive finite encodings of every format here are already
  // value-ordered, but the oracle must not depend on that fact.
  std::sort(t.entries.begin(), t.entries.end());
  t.maxFiniteBits = t.entries.back().second;
  t.saturating = !hasInf;
  if (hasInf) {
    // Overflow sentinel: extend the top binade by one ulp. Values at or
    // beyond the midpoint to it tie/round up to infinity — exactly the
    // IEEE overflow rule.
    const double topUlp =
        t.entries.back().first - t.entries[t.entries.size() - 2].first;
    t.entries.emplace_back(t.entries.back().first + topUlp, infBits);
  }
  return t;
}

/// Round-to-nearest-even reference encoding of any finite float. NaN
/// inputs are the caller's business (canonicalization is format-specific
/// and asserted directly in the per-format suites).
inline std::uint32_t nearestEvenOracle(const EncodingTable& t, float f) {
  const std::uint32_t sign = std::signbit(f) ? t.signMask : 0u;
  const double mag = std::fabs(static_cast<double>(f));
  if (mag >= t.entries.back().first) {
    // Beyond the grid: the saturating clamp or the infinity sentinel.
    return sign | (t.saturating ? t.maxFiniteBits : t.entries.back().second);
  }
  auto hi = std::upper_bound(
      t.entries.begin(), t.entries.end(), mag,
      [](double v, const auto& entry) { return v < entry.first; });
  // mag < back() and mag >= 0 == front(): hi is interior.
  auto lo = hi - 1;
  const double dLo = mag - lo->first;
  const double dHi = hi->first - mag;
  std::uint32_t bits;
  if (dLo < dHi) {
    bits = lo->second;
  } else if (dHi < dLo) {
    bits = hi->second;
  } else {
    // Exact tie: pick the encoding with the even low mantissa bit.
    // Adjacent encodings differ by one, so exactly one of them is even.
    bits = (lo->second & 1u) == 0 ? lo->second : hi->second;
  }
  return sign | bits;
}

}  // namespace hplmxp::oracle
