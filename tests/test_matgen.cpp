// Tests of the HPL-AI problem generator: determinism, tile/element
// agreement, diagonal dominance (the no-pivoting justification), norms.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gen/matgen.h"

namespace hplmxp {
namespace {

TEST(Matgen, EntryDeterministic) {
  ProblemGenerator g1(7, 64);
  ProblemGenerator g2(7, 64);
  for (index_t i = 0; i < 64; i += 5) {
    for (index_t j = 0; j < 64; j += 3) {
      EXPECT_EQ(g1.entry(i, j), g2.entry(i, j));
    }
  }
}

TEST(Matgen, SeedChangesMatrix) {
  ProblemGenerator g1(1, 32);
  ProblemGenerator g2(2, 32);
  int same = 0;
  for (index_t i = 0; i < 32; ++i) {
    same += g1.entry(i, 0) == g2.entry(i, 0) ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(Matgen, OffDiagonalRange) {
  ProblemGenerator g(3, 100);
  for (index_t i = 0; i < 100; ++i) {
    for (index_t j = 0; j < 100; ++j) {
      if (i == j) {
        continue;
      }
      const double v = g.entry(i, j);
      EXPECT_GE(v, -0.5);
      EXPECT_LT(v, 0.5);
    }
  }
}

TEST(Matgen, StrictDiagonalDominance) {
  // The property that justifies factorizing WITHOUT pivoting.
  const index_t n = 96;
  ProblemGenerator g(11, n);
  for (index_t i = 0; i < n; ++i) {
    double offSum = 0.0;
    for (index_t j = 0; j < n; ++j) {
      if (j != i) {
        offSum += std::fabs(g.entry(i, j));
      }
    }
    EXPECT_GT(std::fabs(g.entry(i, i)), offSum) << "row " << i;
  }
}

class MatgenTileTest
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, index_t>> {
};

TEST_P(MatgenTileTest, TileMatchesElementwise) {
  const auto [i0, j0, size] = GetParam();
  const index_t n = 64;
  ProblemGenerator g(5, n);
  std::vector<double> tile(static_cast<std::size_t>(size * size));
  g.fillTile<double>(i0, j0, size, size, tile.data(), size);
  for (index_t c = 0; c < size; ++c) {
    for (index_t r = 0; r < size; ++r) {
      EXPECT_EQ(tile[static_cast<std::size_t>(r + c * size)],
                g.entry(i0 + r, j0 + c))
          << "r=" << r << " c=" << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Tiles, MatgenTileTest,
    ::testing::Values(std::make_tuple(0, 0, 8), std::make_tuple(8, 16, 16),
                      std::make_tuple(1, 1, 7), std::make_tuple(32, 0, 32),
                      std::make_tuple(56, 56, 8), std::make_tuple(0, 63, 1)));

TEST(Matgen, FloatTileIsNarrowedDoubleTile) {
  const index_t n = 48;
  ProblemGenerator g(9, n);
  std::vector<float> ftile(static_cast<std::size_t>(n * n));
  std::vector<double> dtile(static_cast<std::size_t>(n * n));
  g.fillTile<float>(0, 0, n, n, ftile.data(), n);
  g.fillTile<double>(0, 0, n, n, dtile.data(), n);
  for (std::size_t i = 0; i < ftile.size(); ++i) {
    EXPECT_EQ(ftile[i], static_cast<float>(dtile[i]));
  }
}

TEST(Matgen, RhsMatchesFill) {
  const index_t n = 40;
  ProblemGenerator g(13, n);
  std::vector<double> b(static_cast<std::size_t>(n));
  g.fillRhs<double>(0, n, b.data());
  for (index_t i = 0; i < n; ++i) {
    EXPECT_EQ(b[static_cast<std::size_t>(i)], g.rhs(i));
  }
  // Segment fill agrees with full fill.
  std::vector<double> seg(10);
  g.fillRhs<double>(17, 10, seg.data());
  for (index_t i = 0; i < 10; ++i) {
    EXPECT_EQ(seg[static_cast<std::size_t>(i)], g.rhs(17 + i));
  }
}

TEST(Matgen, RhsIndependentOfMatrixEntries) {
  // b lives in LCG index space beyond N^2; it must not alias any A entry.
  const index_t n = 16;
  ProblemGenerator g(21, n);
  for (index_t i = 0; i < n; ++i) {
    const double b = g.rhs(i);
    EXPECT_GE(b, -0.5);
    EXPECT_LT(b, 0.5);
  }
}

TEST(Matgen, Norms) {
  const index_t n = 32;
  ProblemGenerator g(17, n);
  double diagMax = 0.0;
  double bMax = 0.0;
  for (index_t i = 0; i < n; ++i) {
    diagMax = std::max(diagMax, std::fabs(g.entry(i, i)));
    bMax = std::max(bMax, std::fabs(g.rhs(i)));
  }
  EXPECT_DOUBLE_EQ(g.diagInfNorm(), diagMax);
  EXPECT_DOUBLE_EQ(g.rhsInfNorm(), bMax);
  // diag ~ N +- 0.5.
  EXPECT_GT(g.diagInfNorm(), static_cast<double>(n) - 0.5);
  EXPECT_LT(g.diagInfNorm(), static_cast<double>(n) + 0.5);
  // ||A||_inf >= diag and <= diag + 0.5*(n-1).
  const double aInf = g.matrixInfNorm();
  EXPECT_GE(aInf, g.diagInfNorm());
  EXPECT_LE(aInf, static_cast<double>(n) + 0.5 + 0.5 * (n - 1));
}

TEST(Matgen, LargeOrderEntryIsCheap) {
  // Frontier-scale order: entry access must be O(log N), not O(N).
  ProblemGenerator g(1, 20606976);
  const double v = g.entry(20606975, 20606975);
  EXPECT_GT(v, 20606975.0);  // diagonal shift applied
  const double w = g.entry(0, 20606975);
  EXPECT_GE(w, -0.5);
  EXPECT_LT(w, 0.5);
}

}  // namespace
}  // namespace hplmxp
