// Unit tests of the dataflow task-graph engine (util/task_graph.h): graph
// construction, dependency counting, execution ordering, main-lane FIFO
// discipline, exception/cancel drain semantics, and deadlock-freedom on
// degenerate shapes (empty graph, single node, long chains, wide fan-out).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/task_graph.h"
#include "util/thread_pool.h"

namespace hplmxp {
namespace {

using Id = TaskGraph::TaskId;

TEST(TaskGraph, ConstructionCountsDependencies) {
  TaskGraph g;
  const Id a = g.add(TaskKind::kGetrf, 0, [] {});
  const Id b = g.add(TaskKind::kTrsm, 0, [] {});
  const Id c = g.addMain(TaskKind::kPanelBcast, 0, [] {});
  g.addDep(a, b);
  g.addDep(a, c);
  g.addDep(b, c);
  EXPECT_EQ(g.size(), 3);
  EXPECT_EQ(g.dependencyCount(a), 0);
  EXPECT_EQ(g.dependencyCount(b), 1);
  EXPECT_EQ(g.dependencyCount(c), 2);
  EXPECT_EQ(g.successorCount(a), 2);
  EXPECT_EQ(g.successorCount(b), 1);
  EXPECT_EQ(g.successorCount(c), 0);
  EXPECT_FALSE(g.isMainOnly(a));
  EXPECT_TRUE(g.isMainOnly(c));
  EXPECT_EQ(g.kindOf(a), TaskKind::kGetrf);
  EXPECT_TRUE(g.acyclic());
}

TEST(TaskGraph, DuplicateEdgesStayBalanced) {
  TaskGraph g;
  const Id a = g.add(TaskKind::kGeneric, 0, [] {});
  const Id b = g.add(TaskKind::kGeneric, 0, [] {});
  g.addDep(a, b);
  g.addDep(a, b);  // duplicate: counted on both sides, still runs once
  EXPECT_EQ(g.dependencyCount(b), 2);
  std::atomic<int> runs{0};
  TaskGraph g2;
  const Id x = g2.add(TaskKind::kGeneric, 0, [] {});
  const Id y = g2.add(TaskKind::kGeneric, 0, [&] { ++runs; });
  g2.addDep(x, y);
  g2.addDep(x, y);
  ThreadPool pool(2);
  const TaskGraph::ExecStats s = g2.execute(pool);
  EXPECT_EQ(runs.load(), 1);
  EXPECT_EQ(s.tasksRun, 2);
}

TEST(TaskGraph, InvalidEdgesThrow) {
  TaskGraph g;
  const Id a = g.add(TaskKind::kGeneric, 0, [] {});
  EXPECT_THROW(g.addDep(a, a), CheckError);
  EXPECT_THROW(g.addDep(a, 7), CheckError);
  EXPECT_THROW(g.addDep(-1, a), CheckError);
}

TEST(TaskGraph, CycleIsDetected) {
  TaskGraph g;
  const Id a = g.add(TaskKind::kGeneric, 0, [] {});
  const Id b = g.add(TaskKind::kGeneric, 0, [] {});
  const Id c = g.add(TaskKind::kGeneric, 0, [] {});
  g.addDep(a, b);
  g.addDep(b, c);
  g.addDep(c, a);
  EXPECT_FALSE(g.acyclic());
  ThreadPool pool(2);
  EXPECT_THROW(g.execute(pool), CheckError);
}

TEST(TaskGraph, EmptyGraphExecutes) {
  TaskGraph g;
  ThreadPool pool(2);
  const TaskGraph::ExecStats s = g.execute(pool);
  EXPECT_EQ(s.tasksRun, 0);
  EXPECT_FALSE(s.cancelled);
}

TEST(TaskGraph, SingleTaskExecutes) {
  TaskGraph g;
  std::atomic<int> runs{0};
  g.add(TaskKind::kGetrf, 0, [&] { ++runs; });
  ThreadPool pool(4);
  const TaskGraph::ExecStats s = g.execute(pool);
  EXPECT_EQ(runs.load(), 1);
  EXPECT_EQ(s.tasksRun, 1);
  EXPECT_EQ(s.tasksSkipped, 0);
}

TEST(TaskGraph, DependenciesRunBeforeSuccessors) {
  // Diamond a -> {b, c} -> d, checked via per-task done flags read by the
  // successors themselves while they run.
  for (int trial = 0; trial < 20; ++trial) {
    TaskGraph g;
    std::vector<std::atomic<bool>> done(4);
    for (auto& f : done) {
      f.store(false);
    }
    std::atomic<bool> orderViolated{false};
    const Id a = g.add(TaskKind::kGeneric, 0, [&] { done[0] = true; });
    const Id b = g.add(TaskKind::kGeneric, 0, [&] {
      if (!done[0].load()) {
        orderViolated = true;
      }
      done[1] = true;
    });
    const Id c = g.add(TaskKind::kGeneric, 0, [&] {
      if (!done[0].load()) {
        orderViolated = true;
      }
      done[2] = true;
    });
    const Id d = g.add(TaskKind::kGeneric, 0, [&] {
      if (!done[1].load() || !done[2].load()) {
        orderViolated = true;
      }
      done[3] = true;
    });
    g.addDep(a, b);
    g.addDep(a, c);
    g.addDep(b, d);
    g.addDep(c, d);
    ThreadPool pool(4);
    g.execute(pool);
    EXPECT_FALSE(orderViolated.load());
    EXPECT_TRUE(done[3].load());
  }
}

TEST(TaskGraph, MainTasksRunOnCallerThreadInFifoOrder) {
  TaskGraph g;
  const std::thread::id caller = std::this_thread::get_id();
  std::mutex mu;
  std::vector<int> order;
  std::atomic<bool> wrongThread{false};
  std::vector<Id> mains;
  for (int i = 0; i < 8; ++i) {
    mains.push_back(g.addMain(TaskKind::kDiagBcast, i, [&, i] {
      if (std::this_thread::get_id() != caller) {
        wrongThread = true;
      }
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
    }));
    // Interleave compute tasks so lane 0 has competing work.
    const Id filler = g.add(TaskKind::kGemm, i, [] {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    });
    if (i > 0) {
      g.addDep(mains[static_cast<std::size_t>(i - 1)], filler);
    }
  }
  // Reverse-order readiness: give later main tasks fewer dependencies so
  // FIFO order (not readiness order) must win.
  ThreadPool pool(4);
  g.execute(pool);
  EXPECT_FALSE(wrongThread.load());
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(TaskGraph, ExceptionPropagatesAndGraphDrains) {
  TaskGraph g;
  std::atomic<int> lateRuns{0};
  const Id boom = g.add(TaskKind::kGeneric, 0,
                        [] { throw std::runtime_error("boom"); });
  // A long dependent chain behind the failure: all must retire (skipped),
  // not deadlock, and execute() must rethrow.
  Id prev = boom;
  for (int i = 0; i < 100; ++i) {
    const Id next = g.add(TaskKind::kGeneric, 0, [&] { ++lateRuns; });
    g.addDep(prev, next);
    prev = next;
  }
  ThreadPool pool(4);
  EXPECT_THROW(g.execute(pool), std::runtime_error);
  EXPECT_EQ(lateRuns.load(), 0);  // every chained body was skipped
}

TEST(TaskGraph, CancelSkipsRemainingWithoutError) {
  TaskGraph g;
  std::atomic<int> runs{0};
  const Id first = g.add(TaskKind::kGeneric, 0, [&g] { g.cancel(); });
  Id prev = first;
  for (int i = 0; i < 50; ++i) {
    const Id next = g.add(TaskKind::kGeneric, 0, [&] { ++runs; });
    g.addDep(prev, next);
    prev = next;
  }
  ThreadPool pool(4);
  TaskGraph::ExecStats s;
  EXPECT_NO_THROW(s = g.execute(pool));
  EXPECT_TRUE(s.cancelled);
  EXPECT_EQ(runs.load(), 0);
  EXPECT_EQ(s.tasksSkipped, 50);
}

TEST(TaskGraph, LongChainDoesNotDeadlock) {
  // Degenerate shape: zero parallelism; every lane but one is idle the
  // whole time. Must terminate promptly on a wide pool.
  TaskGraph g;
  std::atomic<int> runs{0};
  Id prev = TaskGraph::kNoTask;
  for (int i = 0; i < 2000; ++i) {
    const Id next = g.add(TaskKind::kGeneric, i, [&] { ++runs; });
    if (prev != TaskGraph::kNoTask) {
      g.addDep(prev, next);
    }
    prev = next;
  }
  ThreadPool pool(8);
  const TaskGraph::ExecStats s = g.execute(pool);
  EXPECT_EQ(runs.load(), 2000);
  EXPECT_EQ(s.tasksRun, 2000);
}

TEST(TaskGraph, WideFanOutAndFanIn) {
  // source -> 500 parallel tasks -> sink.
  TaskGraph g;
  std::atomic<int> runs{0};
  std::atomic<bool> sinkEarly{false};
  const Id src = g.add(TaskKind::kGeneric, 0, [&] { ++runs; });
  const Id sink = g.add(TaskKind::kGeneric, 0, [&] {
    if (runs.load() != 501) {
      sinkEarly = true;
    }
  });
  for (int i = 0; i < 500; ++i) {
    const Id mid = g.add(TaskKind::kGeneric, 0, [&] { ++runs; });
    g.addDep(src, mid);
    g.addDep(mid, sink);
  }
  ThreadPool pool(8);
  const TaskGraph::ExecStats s = g.execute(pool);
  EXPECT_FALSE(sinkEarly.load());
  EXPECT_EQ(s.tasksRun, 502);
  EXPECT_GE(s.lanes.size(), 1u);
}

TEST(TaskGraph, MainOnlyGraphRunsEntirelyOnCaller) {
  // Degenerate shape: nothing for worker lanes to do; they must exit
  // immediately instead of spinning on a graph that never feeds them.
  TaskGraph g;
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> wrongThread{false};
  for (int i = 0; i < 32; ++i) {
    g.addMain(TaskKind::kDiagBcast, i, [&] {
      if (std::this_thread::get_id() != caller) {
        wrongThread = true;
      }
    });
  }
  ThreadPool pool(4);
  const TaskGraph::ExecStats s = g.execute(pool);
  EXPECT_FALSE(wrongThread.load());
  EXPECT_EQ(s.tasksRun, 32);
}

TEST(TaskGraph, SerialPoolWidthStillCompletes) {
  // lanes collapses to 1 when the pool has no workers (caller-only).
  TaskGraph g;
  std::atomic<int> runs{0};
  std::vector<Id> layer;
  for (int i = 0; i < 10; ++i) {
    layer.push_back(g.add(TaskKind::kGemm, 0, [&] { ++runs; }));
  }
  const Id tail = g.addMain(TaskKind::kPoll, 0, [&] { ++runs; });
  for (const Id t : layer) {
    g.addDep(t, tail);
  }
  ThreadPool pool(1);  // spawns zero workers
  const TaskGraph::ExecStats s = g.execute(pool);
  EXPECT_EQ(runs.load(), 11);
  EXPECT_EQ(s.lanes.size(), 1u);
  EXPECT_EQ(s.steals, 0);
}

TEST(TaskGraph, ReexecutionIsClean) {
  TaskGraph g;
  std::atomic<int> runs{0};
  const Id a = g.add(TaskKind::kGeneric, 0, [&] { ++runs; });
  const Id b = g.add(TaskKind::kGeneric, 0, [&] { ++runs; });
  g.addDep(a, b);
  ThreadPool pool(2);
  g.execute(pool);
  g.execute(pool);
  EXPECT_EQ(runs.load(), 4);
}

TEST(TaskGraph, TimelineRecordsAreConsistent) {
  TaskGraph g;
  const Id a = g.add(TaskKind::kTrsm, 3, [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  const Id b = g.addMain(TaskKind::kPanelBcast, 3, [] {});
  g.addDep(a, b);
  ThreadPool pool(2);
  const TaskGraph::ExecStats s = g.execute(pool);
  ASSERT_EQ(s.records.size(), 2u);
  const TaskGraph::TaskRecord& ra = s.records[static_cast<std::size_t>(a)];
  const TaskGraph::TaskRecord& rb = s.records[static_cast<std::size_t>(b)];
  EXPECT_EQ(ra.kind, TaskKind::kTrsm);
  EXPECT_EQ(ra.step, 3);
  EXPECT_GE(ra.seconds(), 0.0);
  EXPECT_TRUE(rb.mainOnly);
  EXPECT_EQ(rb.lane, 0);
  // The dependent task begins no earlier than its predecessor ends.
  EXPECT_GE(rb.beginSeconds, ra.endSeconds);
  EXPECT_GE(s.makespanSeconds, ra.seconds());
  double busy = 0.0;
  for (const TaskGraph::LaneStats& lane : s.lanes) {
    EXPECT_GE(lane.idleSeconds, 0.0);
    busy += lane.busySeconds;
  }
  EXPECT_GE(busy, ra.seconds());
  EXPECT_EQ(toString(TaskKind::kTrsm), std::string("trsm"));
  EXPECT_EQ(toString(TaskKind::kPanelBcast), std::string("panel-bcast"));
}

TEST(TaskGraph, RandomDagsExecuteRespectingAllEdges) {
  // Randomized forward-edge DAGs: every task asserts all its declared
  // predecessors retired first. Seeded mt19937 keeps it reproducible.
  std::mt19937 rng(2022);
  for (int trial = 0; trial < 10; ++trial) {
    const int tasks = 200;
    TaskGraph g;
    std::vector<std::atomic<bool>> done(tasks);
    std::vector<std::vector<int>> preds(tasks);
    std::atomic<bool> violated{false};
    std::vector<Id> ids;
    for (int i = 0; i < tasks; ++i) {
      done[static_cast<std::size_t>(i)].store(false);
      ids.push_back(g.add(TaskKind::kGeneric, 0, [&, i] {
        for (const int p : preds[static_cast<std::size_t>(i)]) {
          if (!done[static_cast<std::size_t>(p)].load()) {
            violated = true;
          }
        }
        done[static_cast<std::size_t>(i)].store(true);
      }));
    }
    std::uniform_int_distribution<int> fan(0, 3);
    for (int i = 1; i < tasks; ++i) {
      const int edges = fan(rng);
      std::uniform_int_distribution<int> pick(0, i - 1);
      for (int e = 0; e < edges; ++e) {
        const int p = pick(rng);
        preds[static_cast<std::size_t>(i)].push_back(p);
        g.addDep(ids[static_cast<std::size_t>(p)],
                 ids[static_cast<std::size_t>(i)]);
      }
    }
    ThreadPool pool(4);
    const TaskGraph::ExecStats s = g.execute(pool);
    EXPECT_FALSE(violated.load());
    EXPECT_EQ(s.tasksRun, tasks);
  }
}

}  // namespace
}  // namespace hplmxp
