// GMRES-based refinement (the reference HPL-AI scheme) vs classical IR.
#include <gtest/gtest.h>

#include <vector>

#include "core/hplai.h"
#include "core/verify.h"
#include "gen/matgen.h"

namespace hplmxp {
namespace {

HplaiConfig gmresConfig(index_t n, index_t b, index_t pr, index_t pc) {
  HplaiConfig cfg;
  cfg.n = n;
  cfg.b = b;
  cfg.pr = pr;
  cfg.pc = pc;
  cfg.refiner = HplaiConfig::Refiner::kGmres;
  return cfg;
}

class GmresTest
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, index_t,
                                                 index_t>> {};

TEST_P(GmresTest, ConvergesToFp64Accuracy) {
  const auto [n, b, pr, pc] = GetParam();
  HplaiConfig cfg = gmresConfig(n, b, pr, pc);
  std::vector<double> x;
  const HplaiResult r = runHplai(cfg, &x);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.residualInf, r.threshold);
  const ProblemGenerator gen(cfg.seed, cfg.n);
  EXPECT_TRUE(hplaiValid(gen, x));
  // LU-preconditioned GMRES on a diagonally dominant system converges in
  // a handful of Krylov steps.
  EXPECT_LE(r.irIterations, 12);
  EXPECT_GE(r.irIterations, 1);
}

INSTANTIATE_TEST_SUITE_P(Configs, GmresTest,
                         ::testing::Values(std::make_tuple(128, 16, 1, 1),
                                           std::make_tuple(128, 16, 2, 2),
                                           std::make_tuple(144, 16, 3, 2),
                                           std::make_tuple(192, 32, 2, 2)));

TEST(Gmres, MatchesClassicIrSolution) {
  HplaiConfig classic = gmresConfig(128, 16, 2, 2);
  classic.refiner = HplaiConfig::Refiner::kClassicIr;
  HplaiConfig gmres = gmresConfig(128, 16, 2, 2);

  std::vector<double> xClassic, xGmres;
  ASSERT_TRUE(runHplai(classic, &xClassic).converged);
  ASSERT_TRUE(runHplai(gmres, &xGmres).converged);
  ASSERT_EQ(xClassic.size(), xGmres.size());
  for (std::size_t i = 0; i < xClassic.size(); ++i) {
    EXPECT_NEAR(xClassic[i], xGmres[i], 1e-9);
  }
}

TEST(Gmres, SmallRestartStillConverges) {
  // Even a tiny Krylov space converges via restarts on this system.
  HplaiConfig cfg = gmresConfig(128, 16, 2, 2);
  cfg.gmresRestart = 2;
  const HplaiResult r = runHplai(cfg);
  EXPECT_TRUE(r.converged);
}

}  // namespace
}  // namespace hplmxp
