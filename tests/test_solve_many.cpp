// Blocked multi-RHS refinement: the bitwise contract behind the serving
// subsystem. A batch of k right-hand sides refined together must produce,
// per column, exactly the bits a k=1 solve of the same rhs seed produces —
// same solutions, same iteration counts, same residual trajectory — and
// strsmMixed (the panel kernel carrying the correction solves) must match
// strsvMixed column for column.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "blas/trsm.h"
#include "blas/trsv.h"
#include "core/single_solver.h"
#include "gen/matgen.h"
#include "util/buffer.h"

namespace hplmxp {
namespace {

/// Deterministic well-conditioned triangular test matrix in FP32.
Buffer<float> triangularMatrix(index_t n, std::uint64_t seed) {
  const ProblemGenerator gen(seed, n);  // diagonally dominant by default
  Buffer<float> a(n * n);
  gen.fillTile<float>(0, 0, n, n, a.data(), n);
  return a;
}

std::vector<double> rhsColumns(index_t n, index_t k, std::uint64_t seed) {
  std::vector<double> x(static_cast<std::size_t>(n * k));
  const ProblemGenerator gen(seed, n * k);
  gen.fillRhs<double>(0, n * k, x.data());
  return x;
}

TEST(StrsmMixed, MatchesStrsvMixedBitwisePerColumn) {
  // Shapes straddle the internal stripe width (64): single stripe,
  // exact multiple, and ragged tail.
  for (const index_t n : {1, 7, 63, 64, 65, 128, 130}) {
    for (const index_t k : {1, 2, 5}) {
      const Buffer<float> a = triangularMatrix(n, 77);
      for (const blas::Uplo uplo : {blas::Uplo::kLower, blas::Uplo::kUpper}) {
        for (const blas::Diag diag :
             {blas::Diag::kUnit, blas::Diag::kNonUnit}) {
          const std::vector<double> rhs = rhsColumns(n, k, 99);
          std::vector<double> panel = rhs;
          blas::strsmMixed(uplo, diag, n, k, a.data(), n, panel.data(), n);
          for (index_t c = 0; c < k; ++c) {
            std::vector<double> ref(
                rhs.begin() + static_cast<std::ptrdiff_t>(c * n),
                rhs.begin() + static_cast<std::ptrdiff_t>((c + 1) * n));
            blas::strsvMixed(uplo, diag, n, a.data(), n, ref.data());
            EXPECT_EQ(0, std::memcmp(ref.data(),
                                     panel.data() + static_cast<std::size_t>(
                                                        c * n),
                                     sizeof(double) *
                                         static_cast<std::size_t>(n)))
                << "n=" << n << " k=" << k << " col=" << c
                << " uplo=" << (uplo == blas::Uplo::kLower ? "L" : "U")
                << " diag=" << (diag == blas::Diag::kUnit ? "unit" : "non");
          }
        }
      }
    }
  }
}

TEST(StrsmMixed, ThreadCountDoesNotChangeBits) {
  const index_t n = 96;
  const index_t k = 6;
  const Buffer<float> a = triangularMatrix(n, 5);
  const std::vector<double> rhs = rhsColumns(n, k, 6);

  ThreadPool solo(1);
  ThreadPool wide(4);
  std::vector<double> x1 = rhs;
  std::vector<double> x4 = rhs;
  blas::strsmMixed(blas::Uplo::kLower, blas::Diag::kUnit, n, k, a.data(), n,
                   x1.data(), n, &solo);
  blas::strsmMixed(blas::Uplo::kLower, blas::Diag::kUnit, n, k, a.data(), n,
                   x4.data(), n, &wide);
  EXPECT_EQ(0, std::memcmp(x1.data(), x4.data(), sizeof(double) * x1.size()));
}

TEST(SolveMany, BatchedColumnsMatchIndependentSolvesBitwise) {
  const index_t n = 64;
  const index_t b = 16;
  const ProblemGenerator gen(31, n);
  const Factorization f = factorMixedSingle(gen, b, Vendor::kAmd);

  const std::vector<std::uint64_t> seeds = {101, 202, 303, 404, 31};
  std::vector<std::vector<double>> batchX;
  const SolveManyResult batch = solveManyMixedSingle(f, gen, seeds, batchX);
  ASSERT_EQ(batch.k, static_cast<index_t>(seeds.size()));
  EXPECT_TRUE(batch.allConverged());

  for (std::size_t c = 0; c < seeds.size(); ++c) {
    std::vector<std::vector<double>> soloX;
    const SolveManyResult solo =
        solveManyMixedSingle(f, gen, {seeds[c]}, soloX);
    ASSERT_TRUE(solo.columns[0].converged);
    // Same iteration count, same residual trajectory, same solution bits.
    EXPECT_EQ(solo.columns[0].irIterations, batch.columns[c].irIterations);
    ASSERT_EQ(solo.columns[0].residualHistory.size(),
              batch.columns[c].residualHistory.size());
    for (std::size_t i = 0; i < solo.columns[0].residualHistory.size(); ++i) {
      EXPECT_EQ(solo.columns[0].residualHistory[i],
                batch.columns[c].residualHistory[i])
          << "seed=" << seeds[c] << " iter=" << i;
    }
    EXPECT_EQ(solo.columns[0].threshold, batch.columns[c].threshold);
    EXPECT_EQ(solo.columns[0].residualInf, batch.columns[c].residualInf);
    ASSERT_EQ(soloX[0].size(), batchX[c].size());
    EXPECT_EQ(0, std::memcmp(soloX[0].data(), batchX[c].data(),
                             sizeof(double) * soloX[0].size()))
        << "seed=" << seeds[c];
  }
}

TEST(SolveMany, EarlyConvergingColumnFreezesWhileBatchMatesIterate) {
  // Scan a deterministic seed pool for two rhs whose k=1 solves need
  // different iteration counts, then batch them: the early column must
  // freeze (same count as solo) while the late one keeps iterating.
  // A milder diagonal shift than the benchmark default weakens the FP16
  // factorization enough that IR iteration counts actually vary by rhs.
  const index_t n = 96;
  const index_t b = 16;
  const ProblemGenerator gen(7, n, 3.0);
  const Factorization f = factorMixedSingle(gen, b, Vendor::kAmd);

  std::uint64_t earlySeed = 0;
  std::uint64_t lateSeed = 0;
  index_t earlyIters = 0;
  index_t lateIters = 0;
  for (std::uint64_t s = 500; s < 560; ++s) {
    std::vector<std::vector<double>> xs;
    const SolveManyResult r = solveManyMixedSingle(f, gen, {s}, xs);
    if (!r.columns[0].converged) {
      continue;
    }
    const index_t it = r.columns[0].irIterations;
    if (earlySeed == 0 || it < earlyIters) {
      earlySeed = s;
      earlyIters = it;
    }
    if (lateSeed == 0 || it > lateIters) {
      lateSeed = s;
      lateIters = it;
    }
    if (earlySeed != 0 && lateSeed != 0 && earlyIters != lateIters) {
      break;
    }
  }
  if (earlyIters == lateIters) {
    GTEST_SKIP() << "every scanned rhs converged in the same iteration "
                    "count; early-freeze path not reachable at this size";
  }

  std::vector<std::vector<double>> xs;
  const SolveManyResult r =
      solveManyMixedSingle(f, gen, {earlySeed, lateSeed}, xs);
  EXPECT_TRUE(r.allConverged());
  EXPECT_EQ(r.columns[0].irIterations, earlyIters);
  EXPECT_EQ(r.columns[1].irIterations, lateIters);
  EXPECT_LT(r.columns[0].irIterations, r.columns[1].irIterations);
  // The frozen column recorded exactly as many residuals as its solo run.
  EXPECT_EQ(r.columns[0].residualHistory.size(),
            static_cast<std::size_t>(earlyIters) + 1);
}

TEST(SolveMany, FactorizationHandleIsReusable) {
  const index_t n = 64;
  const ProblemGenerator gen(13, n);
  const Factorization f = factorMixedSingle(gen, 16, Vendor::kAmd);
  EXPECT_EQ(f.n, n);
  EXPECT_EQ(f.seed, 13u);
  EXPECT_GT(f.diagInfNorm, 0.0);
  EXPECT_GT(f.bytes(), sizeof(Factorization));

  std::vector<std::vector<double>> first;
  std::vector<std::vector<double>> second;
  const SolveManyResult r1 = solveManyMixedSingle(f, gen, {42}, first);
  const SolveManyResult r2 = solveManyMixedSingle(f, gen, {42}, second);
  EXPECT_EQ(r1.columns[0].irIterations, r2.columns[0].irIterations);
  EXPECT_EQ(0, std::memcmp(first[0].data(), second[0].data(),
                           sizeof(double) * first[0].size()));
}

TEST(SolveMany, SingleSolveIsTheKEqualsOneCase) {
  const index_t n = 64;
  const index_t b = 16;
  const ProblemGenerator gen(57, n);

  std::vector<double> xSingle;
  const SingleSolveResult single =
      solveMixedSingle(gen, b, Vendor::kAmd, xSingle);
  ASSERT_TRUE(single.converged);

  const Factorization f = factorMixedSingle(gen, b, Vendor::kAmd);
  std::vector<std::vector<double>> xs;
  const SolveManyResult many =
      solveManyMixedSingle(f, gen, {gen.seed()}, xs);
  EXPECT_EQ(single.irIterations, many.columns[0].irIterations);
  EXPECT_EQ(single.residualInf, many.columns[0].residualInf);
  EXPECT_EQ(single.threshold, many.columns[0].threshold);
  EXPECT_EQ(0, std::memcmp(xSingle.data(), xs[0].data(),
                           sizeof(double) * xSingle.size()));
}

}  // namespace
}  // namespace hplmxp
