// Problem-size adjustment (Sec. III-C), config validation, result
// accounting, and grid-mapping invariance of the functional runtime.
#include <gtest/gtest.h>

#include <vector>

#include "cli/options.h"
#include "core/config.h"
#include "core/hplai.h"
#include "core/verify.h"
#include "gen/matgen.h"
#include "simmpi/recovery.h"

namespace hplmxp {
namespace {

TEST(AdjustProblemSize, RoundsToMultipleOfBlockAndGridLcm) {
  // B=32, grid 2x3: unit = 32 * lcm(2,3) = 192.
  EXPECT_EQ(adjustProblemSize(192, 32, 2, 3), 192);
  EXPECT_EQ(adjustProblemSize(200, 32, 2, 3), 192);   // nearest down
  EXPECT_EQ(adjustProblemSize(300, 32, 2, 3), 384);   // nearest up
  // 288 is equidistant (96 both ways): the tie keeps the smaller size.
  EXPECT_EQ(adjustProblemSize(288, 32, 2, 3), 192);
  EXPECT_EQ(adjustProblemSize(287, 32, 2, 3), 192);
  // Tiny requests round UP to one full unit.
  EXPECT_EQ(adjustProblemSize(1, 32, 2, 3), 192);
  EXPECT_EQ(adjustProblemSize(10, 16, 2, 2), 32);
}

TEST(AdjustProblemSize, GridLcmNotProduct) {
  // lcm(4, 6) = 12, not 24.
  EXPECT_EQ(adjustProblemSize(12 * 16, 16, 4, 6), 192);
  EXPECT_EQ(adjustProblemSize(1000, 16, 4, 6), 960);
}

TEST(AdjustProblemSize, PaperScales) {
  // Frontier's achievement N is already a clean multiple.
  EXPECT_EQ(adjustProblemSize(20606976, 3072, 172, 172), 20606976);
}

TEST(AdjustProblemSize, AdjustedSizeAlwaysValidates) {
  for (index_t n : {1, 100, 777, 5000}) {
    for (index_t b : {16, 32}) {
      for (index_t pr : {1, 2, 3}) {
        for (index_t pc : {1, 2}) {
          const index_t adj = adjustProblemSize(n, b, pr, pc);
          EXPECT_EQ(adj % b, 0);
          EXPECT_EQ((adj / b) % pr, 0);
          EXPECT_EQ((adj / b) % pc, 0);
        }
      }
    }
  }
}

TEST(HplaiConfig, ValidationCatchesBadInputs) {
  HplaiConfig cfg;
  cfg.n = 128;
  cfg.b = 16;
  EXPECT_NO_THROW(cfg.validate());
  cfg.b = 24;  // n % b != 0
  EXPECT_THROW(cfg.validate(), CheckError);
  cfg.b = 16;
  cfg.pr = 0;
  EXPECT_THROW(cfg.validate(), CheckError);
  cfg.pr = 1;
  cfg.maxIrIterations = 0;
  EXPECT_THROW(cfg.validate(), CheckError);
}

TEST(HplaiResult, AccountingConventions) {
  HplaiResult r;
  r.n = 100;
  r.ranks = 4;
  r.totalSeconds = 2.0;
  const double d = 100.0;
  EXPECT_DOUBLE_EQ(r.effectiveFlops(),
                   (2.0 / 3.0) * d * d * d + 1.5 * d * d);
  EXPECT_DOUBLE_EQ(r.gflopsTotal(), r.effectiveFlops() / 2.0 / 1e9);
  EXPECT_DOUBLE_EQ(r.gflopsPerRank() * 4.0, r.gflopsTotal());
  r.threshold = 0.0;
  EXPECT_DOUBLE_EQ(r.scaledResidual(), 0.0);  // no division by zero
}

TEST(GridMapping, NodeLocalMappingGivesIdenticalSolution) {
  // The node-local grid only permutes which rank sits at which grid
  // coordinate: every mapping must converge to the same solution (the
  // performance difference is a network-placement effect, Eq. 4/5).
  HplaiConfig colMajor;
  colMajor.n = 192;
  colMajor.b = 16;
  colMajor.pr = 2;
  colMajor.pc = 3;
  colMajor.gridOrder = GridOrder::kColumnMajor;

  HplaiConfig nodeLocal = colMajor;
  nodeLocal.gridOrder = GridOrder::kNodeLocal;
  nodeLocal.qr = 2;
  nodeLocal.qc = 1;

  std::vector<double> xCol, xNode;
  const HplaiResult rCol = runHplai(colMajor, &xCol);
  const HplaiResult rNode = runHplai(nodeLocal, &xNode);
  EXPECT_TRUE(rCol.converged);
  EXPECT_TRUE(rNode.converged);
  ASSERT_EQ(xCol.size(), xNode.size());
  // The mapping permutes which rank contributes where in the Allreduce
  // trees, so the last bits of the FP64 refinement can differ; both are
  // converged to FP64 accuracy and must agree far below the threshold.
  for (std::size_t i = 0; i < xCol.size(); ++i) {
    EXPECT_NEAR(xCol[i], xNode[i], 1e-12) << "i=" << i;
  }
}

TEST(GridMapping, InvalidNodeLocalGridRejected) {
  HplaiConfig cfg;
  cfg.n = 128;
  cfg.b = 16;
  cfg.pr = 2;
  cfg.pc = 2;
  cfg.gridOrder = GridOrder::kNodeLocal;
  cfg.qr = 3;  // does not divide pr
  EXPECT_THROW(runHplai(cfg), CheckError);
}

class SeedSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweepTest, EverySeedConvergesAndVerifies) {
  // Conditioning of the generated problem must be robust across seeds —
  // the diagonal-dominance construction cannot get unlucky.
  HplaiConfig cfg;
  cfg.n = 128;
  cfg.b = 16;
  cfg.pr = 2;
  cfg.pc = 2;
  cfg.seed = GetParam();
  std::vector<double> x;
  const HplaiResult r = runHplai(cfg, &x);
  EXPECT_TRUE(r.converged) << "seed " << GetParam();
  EXPECT_TRUE(hplaiValid(ProblemGenerator(cfg.seed, cfg.n), x));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(0, 1, 2, 7, 42, 1234, 99999,
                                           0xDEADBEEF, 0xFFFFFFFFFFFFFFFFULL));

TEST(EffectiveScheduler, DataflowFallsBackToBulkWithoutLanesToOverlap) {
  using Scheduler = HplaiConfig::Scheduler;
  // Dataflow needs at least two pool lanes to overlap anything; with one
  // lane the requested scheduler is overridden to bulk.
  EXPECT_EQ(effectiveScheduler(Scheduler::kDataflow, 1), Scheduler::kBulk);
  EXPECT_EQ(effectiveScheduler(Scheduler::kDataflow, 2),
            Scheduler::kDataflow);
  EXPECT_EQ(effectiveScheduler(Scheduler::kDataflow, 8),
            Scheduler::kDataflow);
  // Bulk is never overridden, whatever the lane count.
  EXPECT_EQ(effectiveScheduler(Scheduler::kBulk, 1), Scheduler::kBulk);
  EXPECT_EQ(effectiveScheduler(Scheduler::kBulk, 8), Scheduler::kBulk);
}

TEST(RecoveryConfigValidation, RejectsDegenerateKnobs) {
  simmpi::RecoveryConfig rc;
  EXPECT_NO_THROW(rc.validate());  // defaults are sane
  rc.checkpointEveryK = 0;
  EXPECT_THROW(rc.validate(), CheckError);
  rc.checkpointEveryK = 1;
  rc.maxResurrections = 0;
  EXPECT_THROW(rc.validate(), CheckError);
  rc.maxResurrections = 1;
  // compress/verify are pure policy toggles: any combination is valid.
  rc.compressCheckpoints = false;
  rc.verifyCheckpoints = false;
  EXPECT_NO_THROW(rc.validate());
}

TEST(EffectiveCheckpointCadence, ClampsCheckpointNeverCadences) {
  using simmpi::effectiveCheckpointCadence;
  // A cadence below the panel count is honored as requested.
  EXPECT_EQ(effectiveCheckpointCadence(4, 12), 4);
  EXPECT_EQ(effectiveCheckpointCadence(11, 12), 11);
  // cadence >= panel count would only ever take the free step-0 base
  // ("checkpoint never"): clamp to the largest useful cadence.
  EXPECT_EQ(effectiveCheckpointCadence(12, 12), 11);
  EXPECT_EQ(effectiveCheckpointCadence(1000, 12), 11);
  // Degenerate single-panel runs keep cadence 1 without complaint.
  EXPECT_EQ(effectiveCheckpointCadence(1, 1), 1);
  EXPECT_EQ(effectiveCheckpointCadence(5, 1), 1);
  // Unknown geometry (no panel count yet) passes through untouched.
  EXPECT_EQ(effectiveCheckpointCadence(64, 0), 64);
}

TEST(RecoveryConfigKeys, ConfKeysRoundTripThroughOptions) {
  // The same keys cmdBench/cmdChaos/cmdRecover read from hplmxp.conf.
  const cli::Options opts = cli::Options::parseArgs(
      {"--recovery.enabled", "on", "--recovery.every-k", "6",
       "--recovery.max-resurrections", "3", "--recovery.compress", "off",
       "--recovery.verify", "off"});
  simmpi::RecoveryConfig rc;
  rc.enabled = opts.getBool("recovery.enabled", false);
  rc.checkpointEveryK = opts.getInt("recovery.every-k", 8);
  rc.maxResurrections = opts.getInt("recovery.max-resurrections", 8);
  rc.compressCheckpoints = opts.getBool("recovery.compress", true);
  rc.verifyCheckpoints = opts.getBool("recovery.verify", true);
  EXPECT_TRUE(rc.enabled);
  EXPECT_EQ(rc.checkpointEveryK, 6);
  EXPECT_EQ(rc.maxResurrections, 3);
  EXPECT_FALSE(rc.compressCheckpoints);
  EXPECT_FALSE(rc.verifyCheckpoints);
  EXPECT_NO_THROW(rc.validate());
  // Unset keys fall back to the documented defaults.
  const cli::Options empty = cli::Options::parseArgs({});
  EXPECT_FALSE(empty.getBool("recovery.enabled", false));
  EXPECT_EQ(empty.getInt("recovery.every-k", 8), 8);
  EXPECT_EQ(empty.getInt("recovery.max-resurrections", 8), 8);
  EXPECT_TRUE(empty.getBool("recovery.compress", true));
  EXPECT_TRUE(empty.getBool("recovery.verify", true));
}

}  // namespace
}  // namespace hplmxp
