// The in-process message-passing runtime: P2P semantics, collectives, and
// the broadcast strategy family (all strategies must produce identical
// buffers — the performance differences live in the netsim models).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "simmpi/comm.h"
#include "simmpi/ring_bcast.h"
#include "simmpi/runtime.h"

namespace hplmxp {
namespace {

using simmpi::BcastStrategy;
using simmpi::Comm;

TEST(Simmpi, PingPong) {
  simmpi::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const int v = 42;
      comm.send(1, 7, &v, 1);
      int back = 0;
      comm.recv(1, 8, &back, 1);
      EXPECT_EQ(back, 43);
    } else {
      int v = 0;
      comm.recv(0, 7, &v, 1);
      const int reply = v + 1;
      comm.send(0, 8, &reply, 1);
    }
  });
}

TEST(Simmpi, FifoOrderingPerSourceAndTag) {
  simmpi::run(2, [](Comm& comm) {
    constexpr int kCount = 200;
    if (comm.rank() == 0) {
      for (int i = 0; i < kCount; ++i) {
        comm.send(1, 5, &i, 1);
      }
    } else {
      for (int i = 0; i < kCount; ++i) {
        int v = -1;
        comm.recv(0, 5, &v, 1);
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(Simmpi, TagsDoNotCross) {
  simmpi::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const int a = 1, b = 2;
      comm.send(1, 100, &a, 1);
      comm.send(1, 200, &b, 1);
    } else {
      int b = 0, a = 0;
      comm.recv(0, 200, &b, 1);  // out of send order: matched by tag
      comm.recv(0, 100, &a, 1);
      EXPECT_EQ(a, 1);
      EXPECT_EQ(b, 2);
    }
  });
}

TEST(Simmpi, MismatchedSizeThrows) {
  simmpi::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const int v[2] = {1, 2};
      comm.send(1, 1, v, 2);
    } else {
      int v = 0;
      EXPECT_THROW(comm.recv(0, 1, &v, 1), CheckError);
    }
  });
}

TEST(Simmpi, BarrierSynchronizes) {
  constexpr index_t kRanks = 8;
  std::atomic<int> phase1{0};
  simmpi::run(kRanks, [&](Comm& comm) {
    phase1.fetch_add(1);
    comm.barrier();
    // After the barrier every rank must observe all arrivals.
    EXPECT_EQ(phase1.load(), kRanks);
    comm.barrier();
  });
}

class BcastTest
    : public ::testing::TestWithParam<std::tuple<BcastStrategy, index_t,
                                                 index_t>> {};

TEST_P(BcastTest, AllRanksReceiveRootData) {
  const auto [strategy, ranks, count] = GetParam();
  simmpi::run(ranks, [&, count = count, strategy = strategy](Comm& comm) {
    for (index_t root = 0; root < comm.size(); ++root) {
      std::vector<double> buf(static_cast<std::size_t>(count), -1.0);
      if (comm.rank() == root) {
        for (index_t i = 0; i < count; ++i) {
          buf[static_cast<std::size_t>(i)] =
              static_cast<double>(root * 1000 + i);
        }
      }
      // Small segment size to force multi-segment pipelines.
      simmpi::broadcast(comm, strategy, root, buf.data(), count,
                        /*segmentBytes=*/64);
      for (index_t i = 0; i < count; ++i) {
        ASSERT_EQ(buf[static_cast<std::size_t>(i)],
                  static_cast<double>(root * 1000 + i))
            << "root=" << root << " i=" << i;
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesByWorld, BcastTest,
    ::testing::Combine(
        ::testing::Values(BcastStrategy::kBcast, BcastStrategy::kIbcast,
                          BcastStrategy::kRing1, BcastStrategy::kRing1M,
                          BcastStrategy::kRing2M),
        ::testing::Values<index_t>(1, 2, 3, 4, 7, 8),
        ::testing::Values<index_t>(0, 1, 40)));

TEST(Simmpi, IbcastOverlapsSends) {
  // The root returns immediately; receivers complete at wait().
  simmpi::run(4, [](Comm& comm) {
    std::vector<int> buf(16, comm.rank() == 2 ? 9 : 0);
    simmpi::Request req = comm.ibcast(2, buf.data(), 16);
    // ... compute would go here ...
    req.wait();
    for (int v : buf) {
      EXPECT_EQ(v, 9);
    }
  });
}

TEST(Simmpi, AllreduceSum) {
  constexpr index_t kRanks = 6;
  simmpi::run(kRanks, [](Comm& comm) {
    std::vector<double> v{static_cast<double>(comm.rank()), 1.0};
    comm.allreduceSum(v.data(), 2);
    EXPECT_DOUBLE_EQ(v[0], 15.0);  // 0+1+...+5
    EXPECT_DOUBLE_EQ(v[1], 6.0);
  });
}

TEST(Simmpi, AllreduceMax) {
  simmpi::run(5, [](Comm& comm) {
    const double mine = comm.rank() == 3 ? 99.5 : static_cast<double>(
                                                      comm.rank());
    EXPECT_DOUBLE_EQ(comm.allreduceMax(mine), 99.5);
  });
}

TEST(Simmpi, SplitIntoRowsAndCols) {
  // 2x3 grid: row comms of size 3, col comms of size 2, ranks ordered by
  // the split key.
  constexpr index_t pr = 2, pc = 3;
  simmpi::run(pr * pc, [&](Comm& comm) {
    const index_t myRow = comm.rank() % pr;
    const index_t myCol = comm.rank() / pr;
    Comm row = comm.split(myRow, myCol);
    Comm col = comm.split(pr + myCol, myRow);
    EXPECT_EQ(row.size(), pc);
    EXPECT_EQ(col.size(), pr);
    EXPECT_EQ(row.rank(), myCol);
    EXPECT_EQ(col.rank(), myRow);
    // Sub-communicator collectives work and are isolated per group.
    double v = static_cast<double>(myCol);
    row.allreduceSum(&v, 1);
    EXPECT_DOUBLE_EQ(v, 3.0);  // 0+1+2 within my row
  });
}

TEST(Simmpi, SubCommP2PIsIsolatedFromParent) {
  simmpi::run(4, [](Comm& comm) {
    Comm half = comm.split(comm.rank() / 2, comm.rank() % 2);
    // Same (src=0, tag=1) in parent and child must not collide.
    if (comm.rank() == 0) {
      const int a = 10;
      comm.send(1, 1, &a, 1);
    }
    if (half.rank() == 0) {
      const int b = 20;
      half.send(1, 1, &b, 1);
    }
    if (half.rank() == 1) {
      int b = 0;
      half.recv(0, 1, &b, 1);
      EXPECT_EQ(b, 20);
    }
    if (comm.rank() == 1) {
      int a = 0;
      comm.recv(0, 1, &a, 1);
      EXPECT_EQ(a, 10);
    }
    comm.barrier();
  });
}

TEST(Simmpi, RankExceptionPropagates) {
  EXPECT_THROW(simmpi::run(1,
                           [](Comm&) {
                             throw CheckError("rank failure");
                           }),
               CheckError);
}

TEST(Simmpi, StrategyNamesRoundTrip) {
  for (BcastStrategy s : simmpi::kAllBcastStrategies) {
    EXPECT_EQ(simmpi::bcastStrategyFromString(simmpi::toString(s)), s);
  }
  EXPECT_THROW(simmpi::bcastStrategyFromString("turbo"), CheckError);
}

TEST(Simmpi, RunCollectGathersResults) {
  auto results = simmpi::runCollect<index_t>(
      5, [](Comm& comm) { return comm.rank() * comm.rank(); });
  for (index_t r = 0; r < 5; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)], r * r);
  }
}

}  // namespace
}  // namespace hplmxp
