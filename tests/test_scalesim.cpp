// At-scale simulator tests: the headline reproductions (Fig. 11), the
// weak-scaling shape (Fig. 9), tuning orderings (Figs. 4, 8), the
// breakdown structure (Fig. 10), and the run-sequence study (Fig. 12).
#include <gtest/gtest.h>

#include <algorithm>

#include "machine/variability.h"
#include "scalesim/scale_sim.h"

namespace hplmxp {
namespace {

using simmpi::BcastStrategy;

ScaleSimConfig summitAchievement() {
  return ScaleSimConfig{.machine = MachineKind::kSummit,
                        .nl = 61440,
                        .b = 768,
                        .pr = 162,
                        .pc = 162,
                        .gridOrder = GridOrder::kNodeLocal,
                        .qr = 3,
                        .qc = 2,
                        .strategy = BcastStrategy::kBcast,
                        .slowestGcdMultiplier = 0.97};
}

ScaleSimConfig frontierAchievement() {
  return ScaleSimConfig{.machine = MachineKind::kFrontier,
                        .nl = 119808,
                        .b = 3072,
                        .pr = 172,
                        .pc = 172,
                        .gridOrder = GridOrder::kNodeLocal,
                        .qr = 4,
                        .qc = 2,
                        .strategy = BcastStrategy::kRing2M,
                        .slowestGcdMultiplier = 0.97};
}

TEST(ScaleSim, SummitExascaleRun) {
  // Paper: 1.411 EFLOPS at P = 162^2, B = 768 (Fig. 11). The model must
  // land within ~10% and exceed an exaflop.
  const ScaleSimResult r = simulateRun(summitAchievement());
  EXPECT_GT(r.exaflops, 1.0);
  EXPECT_NEAR(r.exaflops, 1.411, 0.15);
  EXPECT_NEAR(r.ratePerGcd / 1e12, 53.8, 6.0);
}

TEST(ScaleSim, FrontierExascaleRun) {
  // Paper: 2.387 EFLOPS at P = 172^2, B = 3072, Ring2M on ~40% of
  // Frontier.
  const ScaleSimResult r = simulateRun(frontierAchievement());
  EXPECT_NEAR(r.exaflops, 2.387, 0.12);
  EXPECT_NEAR(r.ratePerGcd / 1e12, 80.7, 4.0);
}

TEST(ScaleSim, FrontierBeatsSummitOnFractionOfSystem) {
  // 29584 GCDs of Frontier beat 26244 GCDs of Summit while solving a much
  // larger N (20.6M vs ~10M) — the Fig. 11 narrative.
  const ScaleSimResult s = simulateRun(summitAchievement());
  const ScaleSimResult f = simulateRun(frontierAchievement());
  EXPECT_GT(f.exaflops, s.exaflops);
  EXPECT_GT(f.n, 2 * s.n);
}

TEST(ScaleSim, FullFrontierProjectsFiveExaflops) {
  // Sec. VIII: "full scale Frontier runs will be able to achieve 5 EFLOPS".
  ScaleSimConfig cfg = frontierAchievement();
  cfg.pr = cfg.pc = 272;  // ~73984 GCDs ~ full system
  const ScaleSimResult r = simulateRun(cfg);
  EXPECT_GT(r.exaflops, 5.0);
  EXPECT_LT(r.exaflops, 6.5);
}

TEST(ScaleSim, HplAiOverHplIsAboutNinePointFive) {
  // Summit HPL-AI / HPL ~ 9.5x (abstract). FP64 mode prices HPL.
  const ScaleSimResult mxp = simulateRun(summitAchievement());
  ScaleSimConfig hpl = summitAchievement();
  hpl.fp64 = true;
  const ScaleSimResult h = simulateRun(hpl);
  const double ratio = mxp.ratePerGcd / h.ratePerGcd;
  EXPECT_GT(ratio, 7.0);
  EXPECT_LT(ratio, 13.0);
}

TEST(ScaleSim, OptimalBlockSizesMatchPaper) {
  // Fig. 4: sweep B in a distributed setting; Summit peaks at 768-1024,
  // Frontier at 3072.
  auto bestB = [](MachineKind kind, index_t nl, index_t pr,
                  BcastStrategy s, index_t qr, index_t qc) {
    double best = 0.0;
    index_t arg = 0;
    for (index_t b : {256, 512, 768, 1024, 1536, 2048, 3072, 4096}) {
      if ((nl * pr) % b != 0) {
        continue;
      }
      ScaleSimConfig cfg{.machine = kind, .nl = nl, .b = b, .pr = pr,
                         .pc = pr, .gridOrder = GridOrder::kNodeLocal,
                         .qr = qr, .qc = qc, .strategy = s};
      const double r = simulateRun(cfg).ratePerGcd;
      if (r > best) {
        best = r;
        arg = b;
      }
    }
    return arg;
  };
  const index_t summitB =
      bestB(MachineKind::kSummit, 61440, 54, BcastStrategy::kBcast, 3, 2);
  EXPECT_TRUE(summitB == 768 || summitB == 1024) << "Summit B=" << summitB;
  const index_t frontierB = bestB(MachineKind::kFrontier, 119808, 32,
                                  BcastStrategy::kRing2M, 4, 2);
  EXPECT_EQ(frontierB, 3072);
}

TEST(ScaleSim, CommStrategyOrderingsMatchFig8) {
  // Frontier: Ring2M > Ring1M > Ring1 > Bcast; Summit: Bcast best, IBcast
  // catastrophic.
  auto rate = [](MachineKind kind, BcastStrategy s, index_t qr, index_t qc) {
    ScaleSimConfig cfg{.machine = kind,
                       .nl = kind == MachineKind::kSummit ? 61440 : 119808,
                       .b = kind == MachineKind::kSummit ? 768 : 3072,
                       .pr = kind == MachineKind::kSummit ? 54 : 32,
                       .pc = kind == MachineKind::kSummit ? 54 : 32,
                       .gridOrder = GridOrder::kNodeLocal,
                       .qr = qr,
                       .qc = qc,
                       .strategy = s};
    return simulateRun(cfg).ratePerGcd;
  };
  const double fBcast = rate(MachineKind::kFrontier, BcastStrategy::kBcast,
                             4, 2);
  const double fR1 = rate(MachineKind::kFrontier, BcastStrategy::kRing1, 4,
                          2);
  const double fR1m = rate(MachineKind::kFrontier, BcastStrategy::kRing1M, 4,
                           2);
  const double fR2m = rate(MachineKind::kFrontier, BcastStrategy::kRing2M, 4,
                           2);
  EXPECT_GT(fR2m, fR1m);
  EXPECT_GT(fR1m, fR1);
  EXPECT_GT(fR1, fBcast);
  // Finding 6 magnitude: rings 20-34.4% over Bcast on Frontier.
  EXPECT_GT(fR2m / fBcast, 1.05);
  EXPECT_LT(fR2m / fBcast, 1.45);

  const double sBcast = rate(MachineKind::kSummit, BcastStrategy::kBcast, 3,
                             2);
  const double sR2m = rate(MachineKind::kSummit, BcastStrategy::kRing2M, 3,
                           2);
  const double sIb = rate(MachineKind::kSummit, BcastStrategy::kIbcast, 3,
                          2);
  EXPECT_GT(sBcast, sR2m);          // rings lose on Summit
  EXPECT_GT(sR2m / sBcast, 0.85);   // ... by a modest 2-12%
  EXPECT_LT(sIb, 0.7 * sBcast);     // IBcast is the disaster case
}

TEST(ScaleSim, PortBindingAndGpuAwareEndToEndGains) {
  ScaleSimConfig s{.machine = MachineKind::kSummit, .nl = 61440, .b = 768,
                   .pr = 54, .pc = 54, .gridOrder = GridOrder::kNodeLocal,
                   .qr = 3, .qc = 2, .strategy = BcastStrategy::kBcast};
  const double bound = simulateRun(s).ratePerGcd;
  s.portBinding = false;
  const double unbound = simulateRun(s).ratePerGcd;
  // Finding 5: 35.6-59.7% end-to-end on Summit.
  EXPECT_GT(bound / unbound, 1.20);
  EXPECT_LT(bound / unbound, 1.70);

  ScaleSimConfig f{.machine = MachineKind::kFrontier, .nl = 119808,
                   .b = 3072, .pr = 32, .pc = 32,
                   .gridOrder = GridOrder::kNodeLocal, .qr = 4, .qc = 2,
                   .strategy = BcastStrategy::kRing2M};
  const double aware = simulateRun(f).ratePerGcd;
  f.gpuAwareMpi = false;
  const double staged = simulateRun(f).ratePerGcd;
  // Finding 7: 40.3-56.6% end-to-end on Frontier.
  EXPECT_GT(aware / staged, 1.10);
  EXPECT_LT(aware / staged, 1.70);
}

TEST(ScaleSim, NodeGridTuningHelpsBothMachines) {
  // Finding 8: 3x2 beats column-major (6x1-style sharing) on Summit by
  // ~14%; 4x2/2x4 beats column-major on Frontier by a smaller margin.
  ScaleSimConfig s{.machine = MachineKind::kSummit, .nl = 61440, .b = 768,
                   .pr = 54, .pc = 54, .gridOrder = GridOrder::kNodeLocal,
                   .qr = 3, .qc = 2, .strategy = BcastStrategy::kBcast};
  const double tuned = simulateRun(s).ratePerGcd;
  s.gridOrder = GridOrder::kColumnMajor;
  const double colMajor = simulateRun(s).ratePerGcd;
  EXPECT_GT(tuned / colMajor, 1.05);
  EXPECT_LT(tuned / colMajor, 1.40);

  ScaleSimConfig f{.machine = MachineKind::kFrontier, .nl = 119808,
                   .b = 3072, .pr = 32, .pc = 32,
                   .gridOrder = GridOrder::kNodeLocal, .qr = 4, .qc = 2,
                   .strategy = BcastStrategy::kRing2M};
  const double fTuned = simulateRun(f).ratePerGcd;
  f.gridOrder = GridOrder::kColumnMajor;
  const double fCol = simulateRun(f).ratePerGcd;
  EXPECT_GT(fTuned, fCol);
  // The Frontier gain is smaller than Summit's (Finding 8).
  EXPECT_LT(fTuned / fCol, tuned / colMajor);
}

TEST(ScaleSim, WeakScalingShapeMatchesFig9) {
  // Memory weak scaling: rate rises from the small-scale baseline, then
  // flattens/drops at the largest scale (Frontier ~92% parallel
  // efficiency at 16384 GCDs, Sec. VI-A).
  auto rateAt = [](index_t pr) {
    ScaleSimConfig cfg{.machine = MachineKind::kFrontier, .nl = 119808,
                       .b = 3072, .pr = pr, .pc = pr,
                       .gridOrder = GridOrder::kColumnMajor,
                       .strategy = BcastStrategy::kRing2M};
    return simulateRun(cfg).ratePerGcd;
  };
  const double r8 = rateAt(8);      // 64 GCDs (the paper's baseline)
  const double r32 = rateAt(32);    // 1024 GCDs
  const double r128 = rateAt(128);  // 16384 GCDs
  EXPECT_GT(r32, r8);               // the initial rise
  EXPECT_LT(r128, r32);             // the large-scale drop
  const double parEff = r128 / r8;
  EXPECT_NEAR(parEff, 0.922, 0.05); // 92.2% in the paper
}

TEST(ScaleSim, SummitWeakScalingGridSplit) {
  // Sec. VI-A: column-major 91.4% vs 3x2 grid 104.6% at 2916 GCDs
  // (superlinear thanks to the weak-memory-scaling effects).
  auto rateAt = [](index_t pr, GridOrder order) {
    ScaleSimConfig cfg{.machine = MachineKind::kSummit, .nl = 61440,
                       .b = 768, .pr = pr, .pc = pr, .gridOrder = order,
                       .qr = 3, .qc = 2,
                       .strategy = BcastStrategy::kBcast};
    return simulateRun(cfg).ratePerGcd;
  };
  const double colEff = rateAt(54, GridOrder::kColumnMajor) /
                        rateAt(6, GridOrder::kColumnMajor);
  const double gridEff = rateAt(54, GridOrder::kNodeLocal) /
                         rateAt(6, GridOrder::kNodeLocal);
  EXPECT_LT(colEff, 1.0);   // column-major degrades
  EXPECT_GT(gridEff, colEff + 0.03);  // grid mapping scales better (~10%)
}

TEST(ScaleSim, BreakdownComputeBoundUntilTail) {
  // Fig. 10 (64 GCDs, Frontier): compute bound until the final trailing
  // iterations; GEMM time decreases toward the tail.
  ScaleSimConfig cfg{.machine = MachineKind::kFrontier, .nl = 119808,
                     .b = 3072, .pr = 8, .pc = 8,
                     .gridOrder = GridOrder::kNodeLocal, .qr = 2, .qc = 4,
                     .strategy = BcastStrategy::kRing2M,
                     .recordIterations = true};
  const ScaleSimResult r = simulateRun(cfg);
  ASSERT_FALSE(r.iterations.empty());
  EXPECT_FALSE(r.iterations.front().commBound);
  EXPECT_TRUE(r.iterations.back().commBound);
  EXPECT_GT(r.iterations.front().gemmSeconds,
            r.iterations[r.iterations.size() / 2].gemmSeconds);
  // Once communication-bound, it stays so (monotone crossover).
  bool seenComm = false;
  for (const SimIteration& it : r.iterations) {
    if (seenComm) {
      EXPECT_TRUE(it.commBound) << "iteration " << it.k;
    }
    seenComm = seenComm || it.commBound;
  }
  EXPECT_GT(r.commBoundFraction, 0.05);
  EXPECT_LT(r.commBoundFraction, 0.75);
}

TEST(ScaleSim, LookaheadHelps) {
  ScaleSimConfig cfg = frontierAchievement();
  const double with = simulateRun(cfg).ratePerGcd;
  cfg.lookahead = false;
  const double without = simulateRun(cfg).ratePerGcd;
  EXPECT_GT(with, without);
}

TEST(ScaleSim, SlowGcdStallsPipeline) {
  ScaleSimConfig cfg = frontierAchievement();
  cfg.slowestGcdMultiplier = 1.0;
  const double clean = simulateRun(cfg).ratePerGcd;
  cfg.slowestGcdMultiplier = 0.75;  // one degraded die in the fleet
  const double stalled = simulateRun(cfg).ratePerGcd;
  EXPECT_NEAR(stalled / clean, 0.75, 1e-9);
}

TEST(ScaleSim, RunSequencesMatchFig12) {
  ScaleSimConfig s{.machine = MachineKind::kSummit, .nl = 61440, .b = 768,
                   .pr = 54, .pc = 54, .gridOrder = GridOrder::kNodeLocal,
                   .qr = 3, .qc = 2, .strategy = BcastStrategy::kBcast};
  const auto summit = simulateRunSequence(s, 6, /*preWarmed=*/false);
  ASSERT_EQ(summit.size(), 6u);
  // First run ~20% slower; warmed runs within ~0.12%.
  EXPECT_NEAR(summit[0] / summit[1], 0.80, 0.02);
  for (std::size_t i = 2; i < summit.size(); ++i) {
    EXPECT_NEAR(summit[i] / summit[1], 1.0, 0.003);
  }
  // Pre-warming removes the cold run.
  const auto warmed = simulateRunSequence(s, 6, /*preWarmed=*/true);
  EXPECT_NEAR(warmed[0] / warmed[1], 1.0, 0.003);

  ScaleSimConfig f{.machine = MachineKind::kFrontier, .nl = 119808,
                   .b = 3072, .pr = 32, .pc = 32,
                   .gridOrder = GridOrder::kNodeLocal, .qr = 4, .qc = 2,
                   .strategy = BcastStrategy::kRing2M};
  const auto frontier = simulateRunSequence(f, 6, /*preWarmed=*/false);
  // First two runs faster, then settled within ~0.34%.
  EXPECT_GT(frontier[0], frontier[2]);
  EXPECT_GT(frontier[1], frontier[3]);
  for (std::size_t i = 3; i < frontier.size(); ++i) {
    EXPECT_NEAR(frontier[i] / frontier[2], 1.0, 0.008);
  }
}

TEST(ScaleSim, VariabilityFeedsPipelineStall) {
  const GcdVariability v(VariabilityConfig{.seed = 1, .spread = 0.05});
  ScaleSimConfig cfg = frontierAchievement();
  cfg.slowestGcdMultiplier = v.fleetMin(cfg.ranks());
  const ScaleSimResult r = simulateRun(cfg);
  EXPECT_GT(r.ratePerGcd, 0.0);
  EXPECT_LT(cfg.slowestGcdMultiplier, 1.0);
  EXPECT_GT(cfg.slowestGcdMultiplier, 0.94);
}

TEST(ScaleSim, ValidationRejectsBadConfigs) {
  ScaleSimConfig cfg = frontierAchievement();
  cfg.b = 0;
  EXPECT_THROW(simulateRun(cfg), CheckError);
  cfg = frontierAchievement();
  cfg.nl = 100;  // N not a multiple of B
  EXPECT_THROW(simulateRun(cfg), CheckError);
  cfg = frontierAchievement();
  cfg.qr = 3;  // 3*2 != 8 GCDs per node
  EXPECT_THROW(simulateRun(cfg), CheckError);
}

}  // namespace
}  // namespace hplmxp
