// Fleet co-simulator: event core ordering, topologies, LU and serve
// workload state machines, chaos, the scripted debug CLI, and the
// determinism regression (same seed + same topology => byte-identical
// event trace, witnessed by the FNV-1a trace hash).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <vector>

#include "cli/commands.h"
#include "cli/options.h"
#include "fleetsim/debug_cli.h"
#include "fleetsim/event_core.h"
#include "fleetsim/fleet_sim.h"
#include "serve/json.h"
#include "serve/metrics.h"

namespace hplmxp::fleetsim {
namespace {

// ------------------------------------------------------------ event core --

/// Records the order its events execute in.
class RecordingWorkload final : public Workload {
 public:
  std::string name() const override { return "recorder"; }
  void start(Simulator&) override {}
  void handle(Simulator&, const Event& event) override {
    executed.push_back(event);
  }
  bool done() const override { return true; }
  std::vector<Event> executed;
};

TEST(EventCore, ExecutesInTimeNodeSeqOrder) {
  Simulator sim;
  RecordingWorkload w;
  const index_t me = sim.addWorkload(&w);
  sim.startWorkloads();
  // Same time, different nodes; same (time, node), seq breaks the tie.
  sim.schedule(2e-3, 5, EventClass::kCrash, me, 1);
  sim.schedule(1e-3, 9, EventClass::kCrash, me, 2);
  sim.schedule(2e-3, 1, EventClass::kCrash, me, 3);
  sim.schedule(2e-3, 5, EventClass::kCrash, me, 4);
  sim.schedule(0.5e-3, 0, EventClass::kCrash, me, 5);
  EXPECT_EQ(sim.run(), StopReason::kExhausted);
  ASSERT_EQ(w.executed.size(), 5u);
  EXPECT_EQ(w.executed[0].a, 5);  // t=0.5
  EXPECT_EQ(w.executed[1].a, 2);  // t=1
  EXPECT_EQ(w.executed[2].a, 3);  // t=2, node 1
  EXPECT_EQ(w.executed[3].a, 1);  // t=2, node 5, earlier seq
  EXPECT_EQ(w.executed[4].a, 4);  // t=2, node 5, later seq
  EXPECT_EQ(sim.executedEvents(), 5u);
  EXPECT_DOUBLE_EQ(sim.now(), 2e-3);
}

TEST(EventCore, RejectsSchedulingIntoThePast) {
  Simulator sim;
  RecordingWorkload w;
  const index_t me = sim.addWorkload(&w);
  sim.startWorkloads();
  sim.schedule(1e-3, 0, EventClass::kCrash, me);
  EXPECT_TRUE(sim.step());
  EXPECT_THROW(sim.schedule(0.5e-3, 0, EventClass::kCrash, me), CheckError);
}

TEST(EventCore, BreakpointFiresBeforeTheMatchingEvent) {
  Simulator sim;
  RecordingWorkload w;
  const index_t me = sim.addWorkload(&w);
  sim.startWorkloads();
  sim.schedule(1e-3, 0, EventClass::kRequestArrival, me, 1);
  sim.schedule(2e-3, 0, EventClass::kCrash, me, 2);
  sim.schedule(3e-3, 0, EventClass::kRequestArrival, me, 3);
  Breakpoint bp;
  bp.kind = Breakpoint::Kind::kEventClass;
  bp.cls = EventClass::kCrash;
  sim.addBreakpoint(bp);

  EXPECT_EQ(sim.run(), StopReason::kBreakpoint);
  // The crash has NOT executed yet; the clock still sits at the last
  // executed event.
  ASSERT_EQ(w.executed.size(), 1u);
  EXPECT_DOUBLE_EQ(sim.now(), 1e-3);
  ASSERT_NE(sim.breakEvent(), nullptr);
  EXPECT_EQ(sim.breakEvent()->cls, EventClass::kCrash);

  // Resuming executes the broken-on event without re-breaking.
  EXPECT_EQ(sim.run(), StopReason::kExhausted);
  EXPECT_EQ(w.executed.size(), 3u);
}

TEST(EventCore, RunUntilLeavesLaterEventsPending) {
  Simulator sim;
  RecordingWorkload w;
  const index_t me = sim.addWorkload(&w);
  sim.startWorkloads();
  sim.schedule(1e-3, 0, EventClass::kCrash, me);
  sim.schedule(5e-3, 0, EventClass::kCrash, me);
  EXPECT_EQ(sim.runUntil(2e-3), StopReason::kTimeLimit);
  EXPECT_EQ(w.executed.size(), 1u);
  EXPECT_EQ(sim.pendingEvents(), 1u);
  EXPECT_EQ(sim.run(), StopReason::kExhausted);
  EXPECT_EQ(w.executed.size(), 2u);
}

TEST(EventCore, EventClassNamesRoundTrip) {
  for (const EventClass cls :
       {EventClass::kLuIteration, EventClass::kRequestArrival,
        EventClass::kCrash, EventClass::kSlowdown}) {
    EXPECT_EQ(eventClassFromString(toString(cls)), cls);
  }
  EXPECT_THROW((void)eventClassFromString("no-such-class"), CheckError);
}

// ------------------------------------------------------------- topology --

TEST(TopologyTest, ParsesConfigAndRejectsUnknownKeys) {
  const TopologyConfig config = TopologyConfig::parse(
      "# a comment\n"
      "name test-df\n"
      "kind dragonfly\n"
      "nodes 64\n"
      "group-size 8\n"
      "link-latency-us 2\n"
      "link-bandwidth-gbs 50\n"
      "machine summit\n"
      "variability-spread 0.1\n");
  EXPECT_EQ(config.name, "test-df");
  EXPECT_EQ(config.kind, TopologyKind::kDragonfly);
  EXPECT_EQ(config.nodes, 64);
  EXPECT_EQ(config.groupSize, 8);
  EXPECT_EQ(config.machine, MachineKind::kSummit);
  EXPECT_DOUBLE_EQ(config.variability.spread, 0.1);
  EXPECT_THROW(TopologyConfig::parse("no-such-key 3\n"), CheckError);
}

TEST(TopologyTest, FatTreeHopStructure) {
  TopologyConfig config;
  config.kind = TopologyKind::kFatTree;
  config.nodes = 64;
  config.radix = 4;
  const Topology topo(config);
  EXPECT_EQ(topo.hops(5, 5), 0);   // self
  EXPECT_EQ(topo.hops(0, 3), 2);   // same leaf (radix 4)
  EXPECT_EQ(topo.hops(0, 7), 4);   // same pod (radix^2 block)
  EXPECT_EQ(topo.hops(0, 60), 6);  // across the core
}

TEST(TopologyTest, DragonflyAndTorusHops) {
  TopologyConfig df;
  df.kind = TopologyKind::kDragonfly;
  df.nodes = 32;
  df.groupSize = 8;
  const Topology dragonfly(df);
  EXPECT_EQ(dragonfly.hops(1, 6), 2);
  EXPECT_EQ(dragonfly.hops(1, 30), 5);

  TopologyConfig t;
  t.kind = TopologyKind::kTorus;
  t.nodes = 27;
  t.torusX = 3;
  t.torusY = 3;
  t.torusZ = 3;
  const Topology torus(t);
  EXPECT_EQ(torus.hops(0, 1), 1);
  // Wraparound: (0,0,0) to (2,2,2) is one hop per axis.
  EXPECT_EQ(torus.hops(0, 26), 3);
  // Dimensions must multiply out to the node count.
  TopologyConfig bad = t;
  bad.nodes = 26;
  EXPECT_THROW((Topology(bad)), CheckError);
}

TEST(TopologyTest, TransferUsesLinkOracleSemantics) {
  TopologyConfig config;
  config.nodes = 16;
  config.radix = 4;
  config.linkLatencyUs = 4.0;
  config.linkBandwidthGBs = 25.0;
  const Topology topo(config);
  EXPECT_DOUBLE_EQ(topo.transferSeconds(3, 3, 1e9), 0.0);  // self-send
  // Same leaf: 2 hops of alpha plus the bandwidth term.
  EXPECT_NEAR(topo.transferSeconds(0, 1, 1e6), 2 * 4e-6 + 1e6 / 25e9, 1e-12);
  // Saturating the single rail doubles only the bandwidth term.
  const double clean = topo.transferSeconds(0, 1, 1e6, 1);
  const double congested = topo.transferSeconds(0, 1, 1e6, 2);
  EXPECT_NEAR(congested - clean, 1e6 / 25e9, 1e-12);
}

// ---------------------------------------------------------- LU workload --

FleetSimConfig luConfig(index_t nodes = 16) {
  FleetSimConfig cfg;
  cfg.topology.nodes = nodes;
  cfg.topology.radix = 4;
  cfg.runLu = true;
  cfg.lu.n = 2048;
  cfg.lu.b = 128;
  cfg.lu.pr = 4;
  cfg.lu.pc = 4;
  return cfg;
}

TEST(LuWorkloadTest, RunsToCompletionOnVirtualTime) {
  FleetSession session(luConfig());
  session.sim().run();
  const LuStats& stats = session.lu()->stats();
  EXPECT_TRUE(stats.finished);
  EXPECT_EQ(stats.iterations, 16);  // n/b
  EXPECT_GT(stats.factorSeconds, 0.0);
  EXPECT_GT(session.sim().executedEvents(), 16u);  // panel markers too
}

TEST(LuWorkloadTest, InjectedSlowNodeStallsEveryLaterIteration) {
  FleetSession baseline(luConfig());
  baseline.sim().run();
  const double clean = baseline.lu()->stats().factorSeconds;

  FleetSession slowed(luConfig());
  slowed.lu()->scheduleSlowdown(slowed.sim(), 0.0, 3, 0.25);
  slowed.sim().run();
  const double stalled = slowed.lu()->stats().factorSeconds;

  // One rank at quarter pace stalls the whole synchronous pipeline: the
  // sweep must be substantially slower, approaching the 4x compute bound.
  EXPECT_GT(stalled, clean * 1.5);
  EXPECT_DOUBLE_EQ(slowed.lu()->effectiveMultiplier(3),
                   0.25 * slowed.topology().nodeMultiplier(3));
}

// -------------------------------------------------------- serve workload --

FleetSimConfig serveConfig(index_t requests, index_t keys, double gapMs,
                           index_t shards, index_t nodes = 16) {
  FleetSimConfig cfg;
  cfg.topology.nodes = nodes;
  cfg.topology.radix = 4;
  cfg.runServe = true;
  cfg.serve.trace =
      serve::makeSyntheticTrace(requests, keys, gapMs, 64, 16, 42);
  cfg.serve.shards = shards;
  return cfg;
}

TEST(ServeWorkloadTest, CompletesAllRequestsWithExactAccounting) {
  FleetSession session(serveConfig(100, 4, 0.5, 2));
  session.sim().run();
  const ServeStats& stats = session.serve()->stats();
  EXPECT_EQ(stats.submitted, 100u);
  EXPECT_EQ(stats.completed, 100u);
  EXPECT_TRUE(session.serve()->done());
  // Cache invariant: hits + misses == lookups; one factorization per
  // distinct key (nothing evicted at this scale).
  EXPECT_EQ(stats.cacheHits + stats.cacheMisses, stats.cacheLookups);
  EXPECT_EQ(stats.factorCount, 4u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_GT(stats.hitRate(), 0.0);
  // Latency series sizes match the completion count.
  EXPECT_EQ(stats.totalSeconds.size(), 100u);
  EXPECT_EQ(stats.queueWaitSeconds.size(), 100u);
}

TEST(ServeWorkloadTest, BackToBackBurstCoalescesIntoBatches) {
  // 16 same-key requests arriving together must batch (8 + 8), costing
  // one factorization, one cache hit, and two solves.
  FleetSession session(serveConfig(16, 1, 0.0, 1));
  session.sim().run();
  const ServeStats& stats = session.serve()->stats();
  EXPECT_EQ(stats.completed, 16u);
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.maxBatchSize, 8);
  EXPECT_EQ(stats.factorCount, 1u);
  EXPECT_EQ(stats.cacheLookups, 2u);
  EXPECT_EQ(stats.cacheHits, 1u);  // the second batch hits
}

TEST(ServeWorkloadTest, QueueBoundRejectsAtDepth) {
  // A burst larger than the queue with a batch cap that never drains it
  // inside the window: depth fills, the overflow is rejected.
  FleetSimConfig cfg = serveConfig(100, 1, 0.0, 1);
  cfg.serve.queueDepth = 10;
  cfg.serve.maxBatch = 64;
  FleetSession session(cfg);
  session.sim().run();
  const ServeStats& stats = session.serve()->stats();
  EXPECT_EQ(stats.rejectedQueueFull, 90u);
  EXPECT_EQ(stats.completed, 10u);
  EXPECT_EQ(stats.peakQueueDepth, 10);
  EXPECT_TRUE(session.serve()->done());
}

TEST(ServeWorkloadTest, DeadlinesRejectLateRequests) {
  // All 20 requests queue at t=0 under a batch window that fires at 1ms,
  // past their 0.5ms deadline: every request is rejected at dispatch.
  FleetSimConfig cfg = serveConfig(20, 1, 0.0, 1);
  cfg.serve.maxBatch = 64;
  cfg.serve.defaultDeadlineMs = 0.5;
  FleetSession session(cfg);
  session.sim().run();
  const ServeStats& stats = session.serve()->stats();
  EXPECT_EQ(stats.rejectedDeadline, 20u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.batches, 0u);  // nothing survived to dispatch
  EXPECT_TRUE(session.serve()->done());
}

TEST(ServeWorkloadTest, CrashFailsOverAndResurrectRestores) {
  // With one key all traffic lands on one shard; a probe run finds which.
  FleetSession probe(serveConfig(10, 1, 0.5, 3));
  probe.sim().run();
  index_t hot = -1;
  for (index_t s = 0; s < 3; ++s) {
    if (probe.serve()->shardView(s).routed > 0) {
      hot = s;
    }
  }
  ASSERT_GE(hot, 0);

  FleetSimConfig cfg = serveConfig(200, 1, 0.5, 3);
  cfg.serve.chaos.push_back(
      {ChaosAction::Kind::kCrash, /*atMs=*/20.0, hot, 0.0});
  cfg.serve.chaos.push_back(
      {ChaosAction::Kind::kResurrect, /*atMs=*/50.0, hot, 0.0});
  FleetSession session(cfg);
  session.sim().run();
  const ServeStats& stats = session.serve()->stats();
  // Every request is answered exactly once; the crash shows up as
  // failovers to the ring successor, not as losses.
  EXPECT_TRUE(session.serve()->done());
  EXPECT_EQ(stats.completed + stats.rejectedQueueFull +
                stats.rejectedDeadline + stats.rejectedCircuitOpen +
                stats.failed,
            200u);
  EXPECT_GT(stats.failovers, 0u);
  EXPECT_GE(stats.completed, 195u);
  // The resurrected shard is healthy (and cold) in the final view.
  EXPECT_FALSE(session.serve()->shardView(hot).crashed);
}

TEST(ServeWorkloadTest, SlowShardStretchesItsSolveTimes) {
  FleetSession fast(serveConfig(60, 1, 1.0, 1));
  fast.sim().run();

  FleetSimConfig cfg = serveConfig(60, 1, 1.0, 1);
  cfg.serve.chaos.push_back(
      {ChaosAction::Kind::kSlow, /*atMs=*/0.0, /*shard=*/0, 0.1});
  FleetSession slow(cfg);
  slow.sim().run();

  const auto p50 = [](const FleetSession& s) {
    return serve::LatencyPercentiles::of(s.serve()->stats().solveSeconds)
        .p50Ms;
  };
  EXPECT_GT(p50(slow), p50(fast) * 2.0);
}

// --------------------------------------------------- gray-failure defense --

/// The tuned gray-failure scenario: solve-dominated traffic on 2 shards,
/// shard 1 silently dropping to 1/5 speed at t=60ms (slow-but-alive, the
/// failure mode that never trips a breaker). Defense = phi detector fed by
/// 2ms heartbeat pulses + hedged requests.
FleetSimConfig grayConfig(bool defense) {
  FleetSimConfig cfg;
  cfg.topology.nodes = 8;
  cfg.topology.radix = 4;
  cfg.runServe = true;
  cfg.serve.trace = serve::makeSyntheticTrace(600, 8, 0.3, 96, 16, 42);
  cfg.serve.shards = 2;
  cfg.serve.queueDepth = 256;
  cfg.serve.batchDelayUs = 200.0;
  cfg.serve.hostGflops = 0.5;
  cfg.serve.chaos.push_back(
      {ChaosAction::Kind::kSlow, /*atMs=*/60.0, /*shard=*/1, 0.2});
  if (defense) {
    cfg.serve.health.enabled = true;
    cfg.serve.heartbeatIntervalMs = 2.0;
    cfg.serve.hedgeEnabled = true;
  }
  return cfg;
}

TEST(GrayDefenseTest, DefenseCutsTheSlowShardTailWithBoundedDuplicateWork) {
  // The acceptance gate of the gray-failure defense, run entirely in the
  // co-simulator: with the defense on, the slow shard is quarantined and
  // traffic detours/hedges around it, so the p99 must drop to <= 0.6x the
  // defense-off tail while duplicate solve work stays <= 1.15x — and not
  // a single request may be dropped or double-answered.
  FleetSession off(grayConfig(false));
  off.sim().run();
  const ServeStats& so = off.serve()->stats();
  ASSERT_EQ(so.submitted, 600u);
  ASSERT_EQ(so.completed, 600u);
  // Defense off schedules no defense events at all.
  EXPECT_EQ(so.heartbeats, 0u);
  EXPECT_EQ(so.hedgesIssued, 0u);
  EXPECT_EQ(so.quarantines, 0u);

  FleetSession on(grayConfig(true));
  on.sim().run();
  const ServeStats& sn = on.serve()->stats();
  EXPECT_EQ(sn.submitted, 600u);
  EXPECT_EQ(sn.completed, 600u);  // every request answered exactly once
  EXPECT_EQ(sn.failed, 0u);
  EXPECT_EQ(sn.rejectedQueueFull + sn.rejectedDeadline +
                sn.rejectedCircuitOpen,
            0u);
  EXPECT_TRUE(on.serve()->done());

  const double p99Off =
      serve::LatencyPercentiles::of(so.totalSeconds).p99Ms;
  const double p99On = serve::LatencyPercentiles::of(sn.totalSeconds).p99Ms;
  EXPECT_LE(p99On, 0.6 * p99Off)
      << "defense-on p99 " << p99On << "ms vs off " << p99Off << "ms";
  EXPECT_LE(sn.solveWorkSeconds, 1.15 * so.solveWorkSeconds)
      << "duplicate-work amplification over budget";

  // The detector actually fired: pulses flowed, the slow shard was
  // quarantined, and routes detoured off it.
  EXPECT_GT(sn.heartbeats, 0u);
  EXPECT_GE(sn.quarantines, 1u);
  EXPECT_GT(sn.healthDetours, 0u);
}

TEST(GrayDefenseTest, DefenseOnTraceIsDeterministic) {
  // The whole defense — phi arithmetic, quarantine transitions, hedge
  // token bucket, p95-derived delays — runs on virtual time, so two runs
  // of the same config must produce byte-identical event traces.
  const auto hash = [] {
    FleetSession session(grayConfig(true));
    session.sim().run();
    return session.sim().traceHash();
  };
  EXPECT_EQ(hash(), hash());
}

FleetSimConfig mixedConfig() {
  FleetSimConfig cfg = serveConfig(300, 5, 0.1, 3, 64);
  cfg.serve.chaos.push_back({ChaosAction::Kind::kCrash, 5.0, 1, 0.0});
  cfg.serve.chaos.push_back({ChaosAction::Kind::kResurrect, 15.0, 1, 0.0});
  cfg.runLu = true;
  cfg.lu.n = 1024;
  cfg.lu.b = 128;
  cfg.lu.pr = 4;
  cfg.lu.pc = 4;
  return cfg;
}

std::uint64_t runHash() {
  FleetSession session(mixedConfig());
  session.sim().run();
  return session.sim().traceHash();
}

TEST(DeterminismTest, TwoConsecutiveRunsHashIdentically) {
  EXPECT_EQ(runHash(), runHash());
}

TEST(DeterminismTest, HashIsIndependentOfHostThreadContext) {
  // The simulator is single-threaded by construction; concurrent host
  // threads running their own sessions must not perturb any trace.
  const std::uint64_t reference = runHash();
  std::vector<std::future<std::uint64_t>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(std::async(std::launch::async, runHash));
  }
  for (auto& f : futures) {
    EXPECT_EQ(f.get(), reference);
  }
}

TEST(DeterminismTest, GoldenHashOfServeOnlyConfig) {
  // Serve-only schedule: every event time is built from plain arithmetic
  // on trace offsets and rate divisions (no libm), so the hash is stable
  // across compilers. If this fails, either the event schedule changed
  // (intended? update the constant) or determinism broke (fix that).
  FleetSimConfig cfg;
  cfg.topology.nodes = 8;
  cfg.topology.radix = 4;
  cfg.topology.variability.spread = 0.0;  // multipliers exactly 1.0
  cfg.runServe = true;
  cfg.serve.trace = serve::makeSyntheticTrace(64, 4, 0.25, 64, 16, 7);
  cfg.serve.shards = 2;
  FleetSession session(cfg);
  session.sim().run();
  EXPECT_EQ(session.sim().traceHash(), 0xa4e4158235f718deull);
}

TEST(DeterminismTest, DifferentTracesDiverge) {
  FleetSession a(serveConfig(50, 3, 0.2, 2));
  FleetSession b(serveConfig(50, 3, 0.3, 2));
  a.sim().run();
  b.sim().run();
  EXPECT_NE(a.sim().traceHash(), b.sim().traceHash());
}

// -------------------------------------------------------------- debug CLI --

TEST(DebugCliTest, ScriptedSessionDrivesTheSimulator) {
  FleetSession session(serveConfig(40, 2, 0.5, 2, 8));
  std::istringstream script(
      "help\n"
      "# a script comment\n"
      "step 2\n"
      "break class solve-done\n"
      "breaks\n"
      "run\n"
      "show shard 0\n"
      "show cache 0\n"
      "show queue 1\n"
      "show node 3\n"
      "clear-breaks\n"
      "run-until 5\n"
      "trace 5\n"
      "stats\n"
      "run\n"
      "quit\n");
  std::ostringstream out;
  DebugCli cli(session, script, out);
  EXPECT_EQ(cli.runLoop(), 0);
  const std::string text = out.str();
  EXPECT_NE(text.find("breakpoint 0: class solve-done"), std::string::npos);
  EXPECT_NE(text.find("breakpoint hit"), std::string::npos);
  EXPECT_NE(text.find("solve-done"), std::string::npos);
  EXPECT_NE(text.find("shard 0 @ node 0"), std::string::npos);
  EXPECT_NE(text.find("MB resident"), std::string::npos);
  EXPECT_NE(text.find("pending requests"), std::string::npos);
  EXPECT_NE(text.find("multiplier"), std::string::npos);
  EXPECT_NE(text.find("breakpoints cleared"), std::string::npos);
  EXPECT_NE(text.find("executed events (hash "), std::string::npos);
  EXPECT_NE(text.find("\"cache_hit_rate\""), std::string::npos);
  EXPECT_NE(text.find("event heap exhausted"), std::string::npos);
}

TEST(DebugCliTest, ErrorsAreCountedNotFatal) {
  FleetSession session(serveConfig(10, 2, 0.5, 1, 8));
  std::istringstream script(
      "no-such-command\n"
      "break class bogus\n"
      "show shard 99\n"
      "run\n"
      "quit\n");
  std::ostringstream out;
  DebugCli cli(session, script, out);
  EXPECT_EQ(cli.runLoop(), 3);
  // The run after the errors still drained the simulation.
  EXPECT_EQ(session.serve()->stats().completed, 10u);
}

TEST(DebugCliTest, ShowHealthRendersThePhiDetectorView) {
  FleetSimConfig cfg = serveConfig(40, 2, 0.5, 2, 8);
  cfg.serve.health.enabled = true;
  cfg.serve.heartbeatIntervalMs = 2.0;
  FleetSession session(cfg);
  std::istringstream script(
      "run\n"
      "show health 0\n"
      "show health 1\n"
      "show health 99\n"
      "quit\n");
  std::ostringstream out;
  DebugCli cli(session, script, out);
  EXPECT_EQ(cli.runLoop(), 1);  // only the out-of-range shard errors
  const std::string text = out.str();
  EXPECT_NE(text.find("state healthy"), std::string::npos) << text;
  EXPECT_NE(text.find("phi"), std::string::npos);
  EXPECT_NE(text.find("heartbeats"), std::string::npos);
  EXPECT_NE(text.find("quarantines 0"), std::string::npos);
  EXPECT_EQ(session.serve()->stats().completed, 40u);
  EXPECT_GT(session.serve()->stats().heartbeats, 0u);
}

// --------------------------------------------------- report + validation --

TEST(ReportTest, JsonCarriesTheCoSimulationPicture) {
  FleetSession session(mixedConfig());
  session.sim().run();
  const FleetSimReport report = session.report();
  const serve::JsonValue doc = serve::JsonValue::parse(report.toJson());
  EXPECT_EQ(doc.get("nodes").asNumber(), 64.0);
  EXPECT_GT(doc.get("events").asNumber(), 0.0);
  EXPECT_TRUE(doc.get("lu").get("finished").asBool());
  EXPECT_EQ(doc.get("serve").get("submitted").asNumber(), 300.0);
  EXPECT_TRUE(doc.get("serve").has("total_ms"));
  EXPECT_EQ(doc.get("serve").get("cache_hits").asNumber() +
                doc.get("serve").get("cache_misses").asNumber(),
            doc.get("serve").get("cache_lookups").asNumber());
}

TEST(ValidationTest, PassesWithinToleranceAndFailsOutside) {
  FleetSession session(serveConfig(24, 3, 0.2, 1, 8));
  session.sim().run();
  const FleetSimReport report = session.report();
  ASSERT_GT(report.total.p50Ms, 0.0);

  // Synthesize a "measured" report 1.5x slower than the simulation.
  const std::string path = "test_fleetsim_measured.json";
  {
    std::ofstream out(path);
    out << "{\"cache_hit_rate\": " << report.serveCounters.hitRate()
        << ", \"total_ms\": {\"p50\": " << report.total.p50Ms * 1.5
        << ", \"p95\": 0, \"p99\": " << report.total.p99Ms * 1.5
        << ", \"max\": 0}}";
  }
  const ValidationResult loose = validateAgainst(
      report, path, /*latencyFactorTol=*/2.0, /*hitRateTol=*/0.05);
  EXPECT_TRUE(loose.pass);
  EXPECT_EQ(loose.lines.size(), 3u);
  const ValidationResult tight = validateAgainst(
      report, path, /*latencyFactorTol=*/1.2, /*hitRateTol=*/0.05);
  EXPECT_FALSE(tight.pass);
  // The JSON form round-trips through the parser.
  const serve::JsonValue doc = serve::JsonValue::parse(loose.toJson());
  EXPECT_TRUE(doc.get("pass").asBool());
  std::remove(path.c_str());
}

// ------------------------------------------------------- cmdFleetsim e2e --

TEST(CmdFleetsimTest, ScriptedEndToEndWritesReport) {
  const std::string scriptPath = "test_fleetsim_cli.script";
  {
    std::ofstream script(scriptPath);
    script << "# CI-style scripted session\n"
              "break class crash\n"
              "run\n"
              "show shard 1\n"
              "clear-breaks\n"
              "run\n"
              "stats\n"
              "quit\n";
  }
  const std::string jsonPath = "test_fleetsim_cli.json";
  const cli::Options opts = cli::Options::parseArgs(
      {"--requests", "120", "--keys", "4", "--gap-ms", "0.2", "--shards",
       "3", "--nodes", "16", "--crash-at-ms", "6", "--crash-shard", "1",
       "--resurrect-at-ms", "14", "--script", scriptPath, "--json",
       jsonPath});
  EXPECT_EQ(cli::cmdFleetsim(opts), 0);

  std::ifstream in(jsonPath);
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  const serve::JsonValue doc = serve::JsonValue::parse(text.str());
  EXPECT_EQ(doc.get("report").get("serve").get("submitted").asNumber(),
            120.0);
  EXPECT_TRUE(doc.get("validation").isNull());
  std::remove(scriptPath.c_str());
  std::remove(jsonPath.c_str());
}

TEST(CmdFleetsimTest, TopologyFileRoundTrip) {
  const std::string topoPath = "test_fleetsim_topo.conf";
  {
    std::ofstream topo(topoPath);
    topo << "name unit-torus\n"
            "kind torus\n"
            "nodes 27\n"
            "torus-x 3\ntorus-y 3\ntorus-z 3\n"
            "machine frontier\n";
  }
  const cli::Options opts = cli::Options::parseArgs(
      {"--topology", topoPath, "--requests", "30", "--keys", "2",
       "--gap-ms", "0.5", "--shards", "2"});
  EXPECT_EQ(cli::cmdFleetsim(opts), 0);
  std::remove(topoPath.c_str());
}

}  // namespace
}  // namespace hplmxp::fleetsim
