// Kernel flop-rate models and the Eq. 1-5 analytic bounds: the paper's
// tuning conclusions must fall out of the model (B selection, N_L
// selection, LDA pathology, GETRF-on-the-critical-path behaviour).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "perfmodel/autotune.h"
#include "perfmodel/kernel_model.h"
#include "perfmodel/param_search.h"
#include "perfmodel/runtime_model.h"

namespace hplmxp {
namespace {

TEST(KernelModel, RatesAreBoundedByPeaks) {
  for (MachineKind kind : {MachineKind::kSummit, MachineKind::kFrontier}) {
    const KernelModel m(kind);
    const MachineSpec& spec = machineSpec(kind);
    for (double size : {128.0, 1024.0, 8192.0, 65536.0}) {
      const double r = m.gemmRate(size, size, 1024.0);
      EXPECT_GT(r, 0.0);
      EXPECT_LE(r, spec.fp16TflopsPerGcd * 1e12);
      EXPECT_LE(m.gemm64Rate(size, size, 256.0),
                spec.fp64TflopsPerGcd * 1e12);
    }
  }
}

TEST(KernelModel, GemmRateGrowsWithBlockSize) {
  // Fig. 5/6: every kernel's rate grows with B at fixed trailing size.
  for (MachineKind kind : {MachineKind::kSummit, MachineKind::kFrontier}) {
    const KernelModel m(kind);
    double prev = 0.0;
    for (double b : {256.0, 512.0, 1024.0, 2048.0, 4096.0}) {
      const double r = m.gemmRate(30000.0, 30000.0, b);
      EXPECT_GT(r, prev) << toString(kind) << " b=" << b;
      prev = r;
    }
    EXPECT_GT(m.getrfRate(2048.0), m.getrfRate(512.0));
    EXPECT_GT(m.trsmRate(2048.0, 30000.0), m.trsmRate(512.0, 30000.0));
  }
}

TEST(KernelModel, Mi250xNeedsLargerBlocksThanV100) {
  // The structural reason B=3072 on Frontier vs 768-1024 on Summit: at
  // small B the V100 is much closer to its peak than the MI250X.
  const KernelModel v100(MachineKind::kSummit);
  const KernelModel mi250x(MachineKind::kFrontier);
  // Isolate the B (k-dimension) effect with saturated m/n extents.
  const double big = 2e5;
  const double fracV100 = v100.gemmRate(big, big, 768) / v100.gemmPeak();
  const double fracMi = mi250x.gemmRate(big, big, 768) / mi250x.gemmPeak();
  EXPECT_GT(fracV100, 0.80);
  EXPECT_LT(fracMi, 0.70);
  // At B=3072 the MI250X has largely caught up.
  EXPECT_GT(mi250x.gemmRate(big, big, 3072) / mi250x.gemmPeak(), 0.75);
  EXPECT_GT(mi250x.gemmRate(big, big, 3072),
            1.15 * mi250x.gemmRate(big, big, 768));
}

TEST(KernelModel, LdaPathologyOnlyOnMi250x) {
  // Fig. 7: LDA = 122880 is significantly slower; 119808 is not; the V100
  // model has no such sensitivity.
  const KernelModel mi250x(MachineKind::kFrontier);
  const double good = mi250x.gemmRate(60000, 60000, 3072, 119808);
  const double bad = mi250x.gemmRate(60000, 60000, 3072, 122880);
  EXPECT_LT(bad, 0.75 * good);
  const KernelModel v100(MachineKind::kSummit);
  EXPECT_DOUBLE_EQ(v100.gemmRate(30000, 30000, 768, 122880),
                   v100.gemmRate(30000, 30000, 768, 119808));
  EXPECT_TRUE(isPathologicalLda(122880));
  EXPECT_FALSE(isPathologicalLda(119808));
  EXPECT_FALSE(isPathologicalLda(4096));  // small strides are fine
}

TEST(KernelModel, AlignmentBandsInHeatMap) {
  // Fig. 3 / Finding 2: peak rate is not uniformly achievable; tile-
  // aligned sizes are faster.
  const KernelModel m(MachineKind::kFrontier);
  const double aligned = m.gemmRate(20000, 20000, 3072);
  const double misaligned = m.gemmRate(20000, 20000, 3000);
  EXPECT_GT(aligned, misaligned);
}

TEST(KernelModel, RocsolverGetrfUnderperforms) {
  // Finding 3: the critical-path GETRF is relatively slower on Frontier.
  const KernelModel v100(MachineKind::kSummit);
  const KernelModel mi250x(MachineKind::kFrontier);
  EXPECT_GT(v100.getrfRate(1024) / v100.gemmPeak(),
            mi250x.getrfRate(1024) / mi250x.gemmPeak());
}

TEST(RuntimeModel, SerialBoundDecomposes) {
  const KernelModel m(MachineKind::kSummit);
  const double t = serialIterationBound(m, 61440, 768);
  EXPECT_GT(t, 0.0);
  // GEMM dominates the serial iteration at realistic sizes.
  const double gemmOnly =
      61440.0 * 61440.0 * 768.0 / m.gemmRate(61440, 61440, 768);
  EXPECT_GT(gemmOnly / t, 0.5);
}

TEST(RuntimeModel, ParallelBoundTermsScaleWithGrid) {
  const KernelModel m(MachineKind::kFrontier);
  ModelInput in{.n = 119808 * 8, .b = 3072, .pr = 8, .pc = 8, .nbb = 10e9};
  const ParallelBound b8 = projectedParallelBound(m, in);
  in.pr = in.pc = 16;
  in.n = 119808 * 16;
  const ParallelBound b16 = projectedParallelBound(m, in);
  // GETRF term grows with N (it is serial across the critical path).
  EXPECT_GT(b16.getrf, b8.getrf);
  // Look-ahead total is never worse than the plain sum.
  EXPECT_LE(b8.totalWithLookahead(), b8.total());
  EXPECT_LE(b16.totalWithLookahead(), b16.total());
}

TEST(RuntimeModel, DataflowBoundTightensTheHierarchy) {
  // The dataflow step-time variant folds TRSM + both broadcasts into the
  // GEMM overlap, so at every size: dataflow <= lookahead <= plain sum,
  // with GETRF always remaining on the critical path.
  const KernelModel m(MachineKind::kFrontier);
  for (const index_t p : {4, 8, 16}) {
    ModelInput in{.n = 119808 * p, .b = 3072, .pr = p, .pc = p,
                  .nbb = 10e9};
    const ParallelBound b = projectedParallelBound(m, in);
    EXPECT_LE(b.totalWithDataflow(), b.totalWithLookahead());
    EXPECT_LE(b.totalWithLookahead(), b.total());
    EXPECT_GE(b.totalWithDataflow(), b.getrf + b.gemm);
    // Dataflow can only hide comm/panel work, never the GEMM itself.
    EXPECT_GT(b.totalWithDataflow(), 0.0);
  }
}

TEST(RuntimeModel, Eq5PrefersBalancedGrids) {
  ModelInput in{.n = 958464, .b = 3072, .pr = 8, .pc = 8, .nbb = 10e9};
  const ProcessGrid balanced = ProcessGrid::nodeLocal(8, 8, 2, 4);
  const ProcessGrid skinny = ProcessGrid::nodeLocal(8, 8, 8, 1);
  EXPECT_LT(interNodeCommTime(in, balanced, 25e9),
            interNodeCommTime(in, skinny, 25e9));
}

TEST(RuntimeModel, EffectiveRateConvention) {
  // (2/3 N^3 + 3/2 N^2) / (P * t).
  const double r = effectiveRatePerGcd(1000, 10, 2.0);
  EXPECT_DOUBLE_EQ(
      r, ((2.0 / 3.0) * 1e9 + 1.5 * 1e6) / 20.0);
}

TEST(ParamSearch, PicksPaperBlockSizes) {
  // Summit: B = 768 or 1024; Frontier: B = 3072.
  {
    const KernelModel m(MachineKind::kSummit);
    ModelInput in{.n = 61440 * 54, .b = 0, .pr = 54, .pc = 54, .nbb = 4e9};
    const BSearchResult r = searchBlockSize(m, in);
    EXPECT_TRUE(r.bestB == 768 || r.bestB == 1024)
        << "Summit best B = " << r.bestB;
  }
  {
    const KernelModel m(MachineKind::kFrontier);
    ModelInput in{.n = 119808 * 32, .b = 0, .pr = 32, .pc = 32, .nbb = 8e9};
    const BSearchResult r = searchBlockSize(m, in);
    EXPECT_EQ(r.bestB, 3072) << "Frontier best B = " << r.bestB;
  }
}

TEST(ParamSearch, AdmissibilityBoundsBlockSizeBothWays) {
  // The selection rule rejects small B (GEMM far below its plateau) AND
  // huge B (GETRF exceeds 5% of the per-iteration GEMM — the critical
  // path rule of Sec. V-C).
  const KernelModel m(MachineKind::kFrontier);
  ModelInput in{.n = 119808 * 32, .b = 0, .pr = 32, .pc = 32, .nbb = 8e9};
  const BSearchResult r = searchBlockSize(m, in, {256, 3072, 4096});
  ASSERT_EQ(r.entries.size(), 3u);
  EXPECT_FALSE(r.entries[0].admissible) << "B=256: GEMM too far off peak";
  EXPECT_TRUE(r.entries[1].admissible);
  EXPECT_FALSE(r.entries[2].admissible) << "B=4096: GETRF over 5% of GEMM";
  EXPECT_GT(r.entries[2].getrfOverGemm, 0.05);
  EXPECT_LT(r.entries[1].getrfOverGemm, 0.05);
}

TEST(KernelModelCalibrate, MeasuredCurvesReplaceAnalyticOnes) {
  KernelModel m(MachineKind::kFrontier);
  EXPECT_FALSE(m.calibrated());

  MeasuredKernelCurves curves;
  // Deliberately unsorted: calibrate() must sort by size.
  curves.gemm = {{1024.0, 40e9}, {128.0, 4e9}, {512.0, 20e9}};
  curves.getrf = {{256.0, 2e9}, {64.0, 0.5e9}};
  m.calibrate(curves);
  ASSERT_TRUE(m.calibrated());

  // Exact sample points come back verbatim (gemm keys on cbrt(m*n*k)).
  EXPECT_DOUBLE_EQ(m.gemmRate(128.0, 128.0, 128.0), 4e9);
  EXPECT_DOUBLE_EQ(m.gemmRate(1024.0, 1024.0, 1024.0), 40e9);
  EXPECT_DOUBLE_EQ(m.getrfRate(64.0), 0.5e9);

  // Clamped outside the measured range, monotone-bounded inside it.
  EXPECT_DOUBLE_EQ(m.gemmRate(16.0, 16.0, 16.0), 4e9);
  EXPECT_DOUBLE_EQ(m.gemmRate(8192.0, 8192.0, 8192.0), 40e9);
  const double mid = m.gemmRate(256.0, 256.0, 256.0);
  EXPECT_GT(mid, 4e9);
  EXPECT_LT(mid, 20e9);

  // The trsm curve was left empty: that kernel keeps its analytic rate.
  const KernelModel analytic(MachineKind::kFrontier);
  EXPECT_DOUBLE_EQ(m.trsmRate(512.0, 4096.0), analytic.trsmRate(512.0, 4096.0));

  // Calibrated rates ignore the vendor LDA pathology: the measurement IS
  // the ground truth for this host.
  EXPECT_DOUBLE_EQ(m.gemmRate(512.0, 512.0, 512.0, 122880),
                   m.gemmRate(512.0, 512.0, 512.0, 0));
}

TEST(Autotune, SweepInstallsABlockingAndMeasuresRates) {
  ThreadPool pool(2);
  const blas::GemmBlocking before = blas::gemmBlocking();
  const GemmTuneResult r = autotuneGemmBlocking(96, &pool, 1);
  EXPECT_EQ(r.problemSize, 96);
  EXPECT_EQ(r.candidatesTried, 27);
  EXPECT_GT(r.gflops, 0.0);
  EXPECT_GE(r.gflops, r.baseline);
  // The winner is installed process-wide.
  EXPECT_EQ(blas::gemmBlocking().mc, r.blocking.mc);
  EXPECT_EQ(blas::gemmBlocking().nc, r.blocking.nc);
  EXPECT_EQ(blas::gemmBlocking().kc, r.blocking.kc);
  blas::setGemmBlocking(before);
}

TEST(Autotune, MeasuredCurvesFeedCalibration) {
  ThreadPool pool(2);
  const MeasuredKernelCurves curves = measureKernelCurves({32, 64}, &pool, 1);
  ASSERT_EQ(curves.gemm.size(), 2u);
  ASSERT_EQ(curves.getrf.size(), 2u);
  ASSERT_EQ(curves.trsm.size(), 2u);
  for (const auto& vec : {curves.gemm, curves.getrf, curves.trsm}) {
    for (const auto& s : vec) {
      EXPECT_GT(s.rate, 0.0);
    }
  }
  KernelModel m(MachineKind::kSummit);
  m.calibrate(curves);
  EXPECT_TRUE(m.calibrated());
  EXPECT_DOUBLE_EQ(m.gemmRate(32.0, 32.0, 32.0), curves.gemm[0].rate);
}

TEST(Autotune, TuneTableRoundTripsThroughDisk) {
  GemmTuneResult tune;
  tune.blocking = blas::GemmBlocking{64, 96, 128};
  tune.gflops = 12.5;
  MeasuredKernelCurves curves;
  curves.gemm = {{64.0, 1e9}, {128.0, 2e9}};
  curves.getrf = {{64.0, 3e8}};
  curves.trsm = {{64.0, 5e8}};

  const std::string path =
      ::testing::TempDir() + "hplmxp_tune_table_test.txt";
  ASSERT_TRUE(saveTuneTable(path, tune, curves));

  GemmTuneResult loadedTune;
  MeasuredKernelCurves loadedCurves;
  ASSERT_TRUE(loadTuneTable(path, &loadedTune, &loadedCurves));
  EXPECT_EQ(loadedTune.blocking.mc, 64);
  EXPECT_EQ(loadedTune.blocking.nc, 96);
  EXPECT_EQ(loadedTune.blocking.kc, 128);
  EXPECT_DOUBLE_EQ(loadedTune.gflops, 12.5);
  ASSERT_EQ(loadedCurves.gemm.size(), 2u);
  EXPECT_DOUBLE_EQ(loadedCurves.gemm[1].rate, 2e9);
  ASSERT_EQ(loadedCurves.getrf.size(), 1u);
  ASSERT_EQ(loadedCurves.trsm.size(), 1u);
  EXPECT_DOUBLE_EQ(loadedCurves.trsm[0].size, 64.0);

  EXPECT_FALSE(loadTuneTable(path + ".missing", nullptr, nullptr));
  std::remove(path.c_str());
}

TEST(ParamSearch, LocalSizePrefers119808Over122880) {
  // The Sec. V-D result: N_L = 119808 beats 122880 despite being smaller,
  // because LDA = 122880 hits the rocBLAS stride pathology.
  const KernelModel m(MachineKind::kFrontier);
  const auto entries =
      searchLocalSize(m, 3072, 32, 32, 8e9, {119808, 122880});
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_GT(entries[0].gemmRateAtScale, entries[1].gemmRateAtScale);
  EXPECT_GT(entries[0].ratePerGcd, entries[1].ratePerGcd);
}

}  // namespace
}  // namespace hplmxp
