// Machine specs (Table I), the GCD variability model, and the warm-up /
// run-sequence model (Fig. 12 behaviours).
#include <gtest/gtest.h>

#include "machine/machine.h"
#include "machine/power.h"
#include "machine/variability.h"
#include "machine/warmup.h"
#include "util/stats.h"

namespace hplmxp {
namespace {

TEST(Machine, TableISummit) {
  const MachineSpec& s = summitSpec();
  EXPECT_EQ(s.nodes, 4608);
  EXPECT_EQ(s.gcdsPerNode, 6);
  EXPECT_EQ(s.totalGcds(), 27648);
  EXPECT_DOUBLE_EQ(s.fp16TflopsPerGcd, 125.0);
  EXPECT_DOUBLE_EQ(s.fp64TflopsPerGcd, 7.8);
  EXPECT_DOUBLE_EQ(s.fp16TflopsPerNode, 750.0);
  EXPECT_EQ(s.nicsPerNode, 2);
  EXPECT_FALSE(s.nicAttachedToGpu);
  EXPECT_EQ(s.vendor, Vendor::kNvidia);
}

TEST(Machine, TableIFrontier) {
  const MachineSpec& f = frontierSpec();
  EXPECT_EQ(f.nodes, 9408);
  EXPECT_EQ(f.gcdsPerNode, 8);
  EXPECT_EQ(f.totalGcds(), 75264);
  // Table I lists 298/54.5 per MI250X (2 GCDs): 149/27.25 per GCD.
  EXPECT_DOUBLE_EQ(f.fp16TflopsPerGcd * 2.0, 298.0);
  EXPECT_DOUBLE_EQ(f.fp64TflopsPerGcd * 2.0, 54.5);
  EXPECT_DOUBLE_EQ(f.fp16TflopsPerNode, 1192.0);
  EXPECT_EQ(f.nicsPerNode, 4);
  EXPECT_TRUE(f.nicAttachedToGpu);
  EXPECT_EQ(f.vendor, Vendor::kAmd);
}

TEST(Machine, DerivedRatiosMatchPaperNarrative) {
  const MachineSpec& s = summitSpec();
  const MachineSpec& f = frontierSpec();
  // "Frontier has 1.58x per-node performance in half precision".
  EXPECT_NEAR(f.fp16TflopsPerNode / s.fp16TflopsPerNode, 1.58, 0.02);
  // "2x+ the number of nodes".
  EXPECT_GT(static_cast<double>(f.nodes) / s.nodes, 2.0);
  // "Frontier will be ~8x more powerful in double precision" (system).
  EXPECT_NEAR(f.systemPeakFp64Pflops() / s.systemPeakFp64Pflops(), 9.5, 1.5);
  // "4x memory per GCD over Summit".
  EXPECT_DOUBLE_EQ(f.gpuMemGiBPerGcd / s.gpuMemGiBPerGcd, 4.0);
}

TEST(Machine, PaperProblemSizesFitGpuMemory) {
  // N_L = 61440 (Summit, ~14 GiB FP32) and 119808 (Frontier, ~53 GiB).
  const double summitGiB = 61440.0 * 61440.0 * 4.0 / (1 << 30);
  const double frontierGiB =
      119808.0 * 119808.0 * 4.0 / (1ULL << 30);
  EXPECT_NEAR(summitGiB, 14.06, 0.1);
  EXPECT_LT(summitGiB, summitSpec().gpuMemGiBPerGcd);
  EXPECT_NEAR(frontierGiB, 53.5, 0.2);
  EXPECT_LT(frontierGiB, frontierSpec().gpuMemGiBPerGcd);
}

TEST(Variability, DeterministicAndBounded) {
  GcdVariability v(VariabilityConfig{.seed = 1, .spread = 0.05});
  for (index_t i = 0; i < 1000; ++i) {
    const double m = v.multiplier(i);
    EXPECT_GT(m, 0.95 - 1e-12);
    EXPECT_LE(m, 1.0);
    EXPECT_EQ(m, v.multiplier(i));  // deterministic
  }
  // ~5% maximum spread across a fleet (Sec. VI-B observation).
  const auto fleet = v.fleet(4096);
  EXPECT_NEAR(relativeSpreadPercent(fleet), 5.0, 0.6);
}

TEST(Variability, DegradedDiesAreSlowerAndFindable) {
  GcdVariability v(VariabilityConfig{
      .seed = 3, .spread = 0.05, .slowFraction = 0.01, .slowPenalty = 0.3});
  index_t degraded = 0;
  for (index_t i = 0; i < 10000; ++i) {
    if (v.isDegraded(i)) {
      ++degraded;
      EXPECT_LT(v.multiplier(i), 0.70 * 1.0 + 1e-9);
    } else {
      EXPECT_GE(v.multiplier(i), 0.95 - 1e-12);
    }
  }
  // ~1% of dies.
  EXPECT_NEAR(static_cast<double>(degraded) / 10000.0, 0.01, 0.004);
}

TEST(Variability, FleetMinIsThePipelineStallFactor) {
  GcdVariability v(VariabilityConfig{.seed = 5, .spread = 0.05});
  const auto fleet = v.fleet(512);
  EXPECT_DOUBLE_EQ(v.fleetMin(512), summarize(fleet).min);
}

TEST(Warmup, SummitFirstRunIsTwentyPercentSlower) {
  WarmupModel m(MachineKind::kSummit);
  const auto seq = m.sequence(6, /*preWarmed=*/false);
  EXPECT_NEAR(seq[0], 0.80, 0.01);
  for (std::size_t i = 1; i < seq.size(); ++i) {
    EXPECT_NEAR(seq[i], 1.0, 0.0012);  // 0.12% cap after warm-up
  }
}

TEST(Warmup, SummitPreWarmRemovesColdPenalty) {
  WarmupModel m(MachineKind::kSummit);
  const auto seq = m.sequence(6, /*preWarmed=*/true);
  for (double f : seq) {
    EXPECT_NEAR(f, 1.0, 0.0012);
  }
}

TEST(Warmup, FrontierEarlyRunsAreFaster) {
  WarmupModel m(MachineKind::kFrontier);
  const auto seq = m.sequence(6, /*preWarmed=*/false);
  // First two runs above the settled level, then within the 0.34% cap.
  EXPECT_GT(seq[0], 1.005);
  EXPECT_GT(seq[1], 1.003);
  EXPECT_GT(seq[0], seq[1]);
  for (std::size_t i = 2; i < seq.size(); ++i) {
    EXPECT_NEAR(seq[i], 1.0, 0.0034);
  }
}

TEST(Power, JobPowerAndEnergyScaleLinearly) {
  const PowerModel p(MachineKind::kFrontier);
  EXPECT_DOUBLE_EQ(p.jobPowerMw(0), 0.0);
  EXPECT_DOUBLE_EQ(p.jobPowerMw(2000), 2.0 * p.jobPowerMw(1000));
  EXPECT_DOUBLE_EQ(p.runEnergyMwh(1000, 3600.0), p.jobPowerMw(1000));
  EXPECT_GT(p.nodeLoadKw(), p.nodeIdleKw());
}

TEST(Power, FullSystemEnvelopesMatchPublicNumbers) {
  // Summit ~13 MW, Frontier ~21 MW under benchmark load.
  EXPECT_NEAR(PowerModel(MachineKind::kSummit).jobPowerMw(4608), 13.0, 0.5);
  EXPECT_NEAR(PowerModel(MachineKind::kFrontier).jobPowerMw(9408), 21.0,
              1.0);
}

TEST(Power, FrontierHplEfficiencyIsGreen500Class) {
  // Frontier's HPL sits around 50-60 GFLOPS/W; with ~1.2 EFLOPS FP64 over
  // the full system the model should land in that class.
  const PowerModel p(MachineKind::kFrontier);
  const double eff = p.gflopsPerWatt(1.2e18, 9408);
  EXPECT_GT(eff, 40.0);
  EXPECT_LT(eff, 75.0);
}

TEST(Warmup, FrontierPreWarmStartsSettled) {
  WarmupModel m(MachineKind::kFrontier);
  const auto seq = m.sequence(6, /*preWarmed=*/true);
  for (double f : seq) {
    EXPECT_NEAR(f, 1.0, 0.0034);
  }
}

}  // namespace
}  // namespace hplmxp
