// Recovery-subsystem tests: comm replay log, crash-rank resurrection with
// bitwise-identical re-execution, ABFT panel correction cross-checked
// against the injector's flip records, MultiRankError determinism and
// fault provenance, and scanAbnormal coordinate reporting.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "blas/abft.h"
#include "blas/scan.h"
#include "cli/commands.h"
#include "cli/options.h"
#include "core/hplai.h"
#include "fp16/half.h"
#include "gen/matgen.h"
#include "serve/json.h"
#include "simmpi/faults.h"
#include "simmpi/recovery.h"
#include "simmpi/runtime.h"

namespace hplmxp {
namespace {

using simmpi::FaultConfig;
using simmpi::FaultInjector;
using simmpi::FlipRecord;
using simmpi::RecoveryStats;
using simmpi::ReplayCounters;

// ---------------------------------------------------------------------------
// Comm replay log
// ---------------------------------------------------------------------------

TEST(ReplayLog, CountsOpsAndLogsRecvs) {
  simmpi::RunOptions opts;
  opts.replayLog = true;
  simmpi::run(2, [](simmpi::Comm& world) {
    if (world.rank() == 0) {
      for (int i = 0; i < 5; ++i) {
        double v = 10.0 * i;
        world.send(1, 7, &v, 1);
      }
    } else {
      for (int i = 0; i < 5; ++i) {
        double v = 0.0;
        world.recv(0, 7, &v, 1);
        EXPECT_EQ(v, 10.0 * i);
      }
    }
    world.barrier();
    const ReplayCounters c0 = world.replayCounters(0);
    const ReplayCounters c1 = world.replayCounters(1);
    if (world.rank() == 0) {
      EXPECT_EQ(c0.sends, 5u);
      EXPECT_EQ(c0.barriers, 1u);
      EXPECT_EQ(c1.recvs, 5u);
    }
  }, opts);
}

TEST(ReplayLog, ReplayServesLoggedRecvsAndSwallowsSends) {
  simmpi::RunOptions opts;
  opts.replayLog = true;
  simmpi::run(2, [](simmpi::Comm& world) {
    if (world.rank() == 0) {
      for (int i = 0; i < 4; ++i) {
        double v = 3.0 + i;
        world.send(1, 9, &v, 1);
      }
      double ack = 0.0;
      world.recv(1, 10, &ack, 1);
      EXPECT_EQ(ack, 42.0);
    } else {
      const ReplayCounters start = world.replayCounters(1);
      double sum = 0.0;
      for (int i = 0; i < 4; ++i) {
        double v = 0.0;
        world.recv(0, 9, &v, 1);
        sum += v;
      }
      double ack = 42.0;
      world.send(0, 10, &ack, 1);
      const double liveSum = sum;

      // Rewind and re-execute the same ops: recvs come from the log, the
      // ack send is swallowed (rank 0 already got it).
      world.beginReplay(1, start);
      EXPECT_TRUE(world.replaying(1));
      sum = 0.0;
      for (int i = 0; i < 4; ++i) {
        double v = 0.0;
        world.recv(0, 9, &v, 1);
        sum += v;
      }
      world.send(0, 10, &ack, 1);
      EXPECT_FALSE(world.replaying(1));
      EXPECT_EQ(sum, liveSum);

      const simmpi::ReplayActivity a = world.replayActivity(1);
      EXPECT_EQ(a.recvsReplayed, 4u);
      EXPECT_EQ(a.sendsSuppressed, 1u);
    }
    world.barrier();
  }, opts);
}

TEST(ReplayLog, TrimBoundsTheLog) {
  simmpi::RunOptions opts;
  opts.replayLog = true;
  simmpi::run(2, [](simmpi::Comm& world) {
    if (world.rank() == 0) {
      std::vector<double> payload(64, 1.5);
      for (int i = 0; i < 8; ++i) {
        world.send(1, 3, payload.data(), 64);
      }
    } else {
      std::vector<double> payload(64);
      for (int i = 0; i < 8; ++i) {
        world.recv(0, 3, payload.data(), 64);
      }
      const simmpi::ReplayActivity before = world.replayActivity(1);
      EXPECT_EQ(before.logRecords, 8u);
      world.trimReplayLog(1, 6);  // keep only the last two records
      const simmpi::ReplayActivity after = world.replayActivity(1);
      EXPECT_EQ(after.logRecords, 2u);
      EXPECT_LT(after.logBytes, before.logBytes);
      EXPECT_EQ(after.logPeakBytes, before.logPeakBytes);
    }
    world.barrier();
  }, opts);
}

TEST(ReplayLog, CrashedRankResurrectsAtTheExactOp) {
  // Rank 1 crashes mid-exchange; catching the crash and replaying from the
  // start reproduces the fault-free result bitwise while rank 0 never
  // notices (its sends were delivered eagerly; the ack it waits for is
  // sent live after replay catches up).
  FaultConfig fc;
  fc.crashRank = 1;
  fc.crashAtOp = 3;
  auto inj = std::make_shared<FaultInjector>(fc, 2);
  simmpi::RunOptions opts;
  opts.faults = inj;
  opts.replayLog = true;
  double finalSum = 0.0;
  simmpi::run(2, [&](simmpi::Comm& world) {
    if (world.rank() == 0) {
      for (int i = 0; i < 6; ++i) {
        double v = 2.0 + i;
        world.send(1, 5, &v, 1);
      }
      double ack = 0.0;
      world.recv(1, 6, &ack, 1);
      EXPECT_EQ(ack, 27.0);  // sum of 2..7
    } else {
      const ReplayCounters start = world.replayCounters(1);
      double sum = 0.0;
      int i = 0;
      while (i < 6) {
        try {
          double v = 0.0;
          world.recv(0, 5, &v, 1);
          sum += v;
          ++i;
        } catch (const simmpi::InjectedCrashError&) {
          world.beginReplay(1, start);
          sum = 0.0;
          i = 0;
        }
      }
      world.send(0, 6, &sum, 1);
      finalSum = sum;
    }
    world.barrier();
  }, opts);
  EXPECT_EQ(finalSum, 27.0);
  EXPECT_EQ(inj->stats().crashes, 1u);  // one-shot crash latch
}

// ---------------------------------------------------------------------------
// Crash-rank recovery: bitwise-identical factorization runs
// ---------------------------------------------------------------------------

HplaiConfig recoveryConfig(index_t everyK) {
  HplaiConfig cfg;
  cfg.n = 192;
  cfg.b = 16;
  cfg.pr = 2;
  cfg.pc = 2;
  cfg.seed = 7321;
  cfg.lookahead = false;
  cfg.scheduler = HplaiConfig::Scheduler::kBulk;
  cfg.recovery.enabled = everyK > 0;
  if (everyK > 0) {
    cfg.recovery.checkpointEveryK = everyK;
  }
  return cfg;
}

struct RunOutput {
  HplaiResult result;
  std::vector<double> solution;
};

RunOutput runWith(const HplaiConfig& config,
                  std::shared_ptr<FaultInjector> faults) {
  RunOutput out;
  simmpi::RunOptions opts;
  opts.faults = std::move(faults);
  opts.replayLog = config.recovery.enabled;
  simmpi::run(config.worldSize(), [&](simmpi::Comm& world) {
    std::vector<double> local;
    HplaiResult r = runHplaiOnComm(world, config, &local);
    if (world.rank() == 0) {
      out.result = std::move(r);
      out.solution = std::move(local);
    }
  }, opts);
  return out;
}

void expectBitwiseEqual(const RunOutput& a, const RunOutput& b) {
  ASSERT_EQ(a.solution.size(), b.solution.size());
  for (std::size_t i = 0; i < a.solution.size(); ++i) {
    EXPECT_EQ(std::memcmp(&a.solution[i], &b.solution[i], sizeof(double)), 0)
        << "solution diverges at " << i << ": " << a.solution[i] << " vs "
        << b.solution[i];
  }
  EXPECT_EQ(a.result.residualInf, b.result.residualInf);
  EXPECT_EQ(a.result.irIterations, b.result.irIterations);
  EXPECT_TRUE(b.result.converged);
}

TEST(CrashRecovery, MidFactorizationCrashRecoversBitwise) {
  const RunOutput clean = runWith(recoveryConfig(0), nullptr);
  ASSERT_TRUE(clean.result.converged);

  FaultConfig fc;
  fc.crashRank = 2;
  fc.crashAtOp = 35;  // mid-factorization: every rank spends ops 0-~45 in factor()
  auto inj = std::make_shared<FaultInjector>(fc, 4);
  HplaiConfig cfg = recoveryConfig(4);
  cfg.recoveryStats = std::make_shared<RecoveryStats>();
  const RunOutput recovered = runWith(cfg, inj);

  EXPECT_EQ(inj->stats().crashes, 1u);
  const simmpi::RecoveryReport rep =
      simmpi::snapshotRecovery(*cfg.recoveryStats);
  EXPECT_EQ(rep.resurrections, 1u);
  EXPECT_GT(rep.checkpoints, 0u);
  EXPECT_GT(rep.recvsReplayed + rep.barriersSkipped + rep.sendsSuppressed,
            0u);
  expectBitwiseEqual(clean, recovered);
}

TEST(CrashRecovery, EveryCheckpointCadenceRecoversBitwise) {
  const RunOutput clean = runWith(recoveryConfig(0), nullptr);
  ASSERT_TRUE(clean.result.converged);
  for (index_t everyK : {1, 3, 5, 12}) {
    FaultConfig fc;
    fc.crashRank = 1;
    fc.crashAtOp = 30;
    auto inj = std::make_shared<FaultInjector>(fc, 4);
    HplaiConfig cfg = recoveryConfig(everyK);
    cfg.recoveryStats = std::make_shared<RecoveryStats>();
    const RunOutput recovered = runWith(cfg, inj);
    EXPECT_EQ(inj->stats().crashes, 1u) << "everyK=" << everyK;
    EXPECT_EQ(
        simmpi::snapshotRecovery(*cfg.recoveryStats).resurrections, 1u)
        << "everyK=" << everyK;
    expectBitwiseEqual(clean, recovered);
  }
}

TEST(CrashRecovery, CrashOnRankZeroRecoversBitwise) {
  const RunOutput clean = runWith(recoveryConfig(0), nullptr);
  FaultConfig fc;
  fc.crashRank = 0;
  fc.crashAtOp = 28;
  auto inj = std::make_shared<FaultInjector>(fc, 4);
  const RunOutput recovered = runWith(recoveryConfig(2), inj);
  EXPECT_EQ(inj->stats().crashes, 1u);
  expectBitwiseEqual(clean, recovered);
}

TEST(CrashRecovery, FrequentCheckpointsBoundTheReplayLog) {
  // The replay log is trimmed at every checkpoint, so a tighter cadence
  // must strictly reduce its peak footprint.
  std::uint64_t peak[2] = {0, 0};
  int idx = 0;
  for (index_t everyK : {1, 12}) {
    HplaiConfig cfg = recoveryConfig(everyK);
    cfg.recoveryStats = std::make_shared<RecoveryStats>();
    (void)runWith(cfg, nullptr);
    peak[idx++] =
        simmpi::snapshotRecovery(*cfg.recoveryStats).replayLogPeakBytes;
  }
  EXPECT_GT(peak[0], 0u);
  EXPECT_LT(peak[0], peak[1]);
}

TEST(CrashRecovery, IncrementalCheckpointCopiesLessThanFull) {
  // Dirty-tile deltas: every generation stores only tiles touched since
  // the previous one; total raw bytes must be well below nSteps *
  // full-matrix, and the codec must shrink them further on the wire.
  HplaiConfig cfg = recoveryConfig(1);
  cfg.recoveryStats = std::make_shared<RecoveryStats>();
  (void)runWith(cfg, nullptr);
  const simmpi::RecoveryReport rep =
      simmpi::snapshotRecovery(*cfg.recoveryStats);
  const std::uint64_t localBytes = 96ull * 96ull * sizeof(float);  // per rank
  const std::uint64_t fullEveryTime = rep.checkpoints * localBytes;
  EXPECT_GT(rep.checkpointBytesCopied, 0u);
  EXPECT_LT(rep.checkpointBytesCopied, fullEveryTime);
  EXPECT_GT(rep.checkpointBytesStored, 0u);
  EXPECT_LT(rep.checkpointBytesStored, rep.checkpointBytesCopied);
}

TEST(CrashRecovery, UncompressedCheckpointsStillRecoverBitwise) {
  // recovery.compress off: raw XOR deltas, still chunked + CRC'd.
  const RunOutput clean = runWith(recoveryConfig(0), nullptr);
  FaultConfig fc;
  fc.crashRank = 1;
  fc.crashAtOp = 30;
  auto inj = std::make_shared<FaultInjector>(fc, 4);
  HplaiConfig cfg = recoveryConfig(4);
  cfg.recovery.compressCheckpoints = false;
  cfg.recoveryStats = std::make_shared<RecoveryStats>();
  const RunOutput recovered = runWith(cfg, inj);
  const simmpi::RecoveryReport rep =
      simmpi::snapshotRecovery(*cfg.recoveryStats);
  EXPECT_EQ(rep.resurrections, 1u);
  EXPECT_GE(rep.checkpointBytesStored, rep.checkpointBytesCopied);
  expectBitwiseEqual(clean, recovered);
}

// ---------------------------------------------------------------------------
// Multi-fault recovery: overlapping crashes and checkpoint corruption
// ---------------------------------------------------------------------------

TEST(MultiFault, TwoConcurrentRankCrashesRecoverBitwise) {
  const RunOutput clean = runWith(recoveryConfig(0), nullptr);
  ASSERT_TRUE(clean.result.converged);
  FaultConfig fc;
  fc.crashRank = 3;
  fc.crashAtOp = 64;
  fc.crashRank2 = 1;
  fc.crashAtOp2 = 40;
  auto inj = std::make_shared<FaultInjector>(fc, 4);
  HplaiConfig cfg = recoveryConfig(4);
  cfg.abftPanels = true;  // matches the recover CLI: ABFT traffic
  cfg.abftGemm = true;    // shifts the comm-op stream the ops are calibrated to
  cfg.recoveryStats = std::make_shared<RecoveryStats>();
  const RunOutput recovered = runWith(cfg, inj);
  EXPECT_EQ(inj->stats().crashes, 2u);
  const simmpi::RecoveryReport rep =
      simmpi::snapshotRecovery(*cfg.recoveryStats);
  EXPECT_EQ(rep.resurrections, 2u);
  expectBitwiseEqual(clean, recovered);
}

TEST(MultiFault, SecondCrashDuringReplayNestsAndRecoversBitwise) {
  // Rank 1 crashes live, resurrects, and crashes AGAIN two ops into its
  // replay: the nested resurrection rewinds once more while preserving
  // the original live-resume target.
  const RunOutput clean = runWith(recoveryConfig(0), nullptr);
  FaultConfig fc;
  fc.crashRank = 1;
  fc.crashAtOp = 40;
  fc.replayCrashRank = 1;
  fc.replayCrashAtOp = 2;
  auto inj = std::make_shared<FaultInjector>(fc, 4);
  HplaiConfig cfg = recoveryConfig(4);
  cfg.abftPanels = true;  // matches the recover CLI: ABFT traffic
  cfg.abftGemm = true;    // shifts the comm-op stream the ops are calibrated to
  cfg.recoveryStats = std::make_shared<RecoveryStats>();
  const RunOutput recovered = runWith(cfg, inj);
  EXPECT_EQ(inj->stats().crashes, 2u);
  const simmpi::RecoveryReport rep =
      simmpi::snapshotRecovery(*cfg.recoveryStats);
  EXPECT_EQ(rep.resurrections, 2u);
  EXPECT_EQ(rep.nestedResurrections, 1u);
  expectBitwiseEqual(clean, recovered);
}

TEST(MultiFault, CheckpointCorruptionFallsBackToIntactGeneration) {
  // The newest stored generation is bit-flipped; restore must detect the
  // CRC mismatch, discard it, and resurrect from the intact predecessor.
  const RunOutput clean = runWith(recoveryConfig(0), nullptr);
  FaultConfig fc;
  fc.crashRank = 1;
  fc.crashAtOp = 30;
  fc.ckptCorruptRank = 1;
  fc.ckptCorruptOrdinal = 0;  // the generation the crash would restore
  auto inj = std::make_shared<FaultInjector>(fc, 4);
  HplaiConfig cfg = recoveryConfig(4);
  cfg.abftPanels = true;  // matches the recover CLI: ABFT traffic
  cfg.abftGemm = true;    // shifts the comm-op stream the ops are calibrated to
  cfg.recoveryStats = std::make_shared<RecoveryStats>();
  const RunOutput recovered = runWith(cfg, inj);
  EXPECT_EQ(inj->stats().checkpointCorruptions, 1u);
  const simmpi::RecoveryReport rep =
      simmpi::snapshotRecovery(*cfg.recoveryStats);
  EXPECT_EQ(rep.resurrections, 1u);
  EXPECT_EQ(rep.checkpointCorruptionsDetected, 1u);
  EXPECT_GE(rep.generationsDiscarded, 1u);
  expectBitwiseEqual(clean, recovered);
}

TEST(MultiFault, TwoCrashesPlusCheckpointCorruptionRecoverBitwise) {
  // The acceptance gauntlet: two concurrent rank crashes and one injected
  // checkpoint corruption in a single run.
  const RunOutput clean = runWith(recoveryConfig(0), nullptr);
  FaultConfig fc;
  fc.crashRank = 3;
  fc.crashAtOp = 64;
  fc.crashRank2 = 1;
  fc.crashAtOp2 = 40;
  fc.ckptCorruptRank = 3;
  fc.ckptCorruptOrdinal = 1;  // rank 3's newest generation at crash time
  auto inj = std::make_shared<FaultInjector>(fc, 4);
  HplaiConfig cfg = recoveryConfig(4);
  cfg.abftPanels = true;  // matches the recover CLI: ABFT traffic
  cfg.abftGemm = true;    // shifts the comm-op stream the ops are calibrated to
  cfg.recoveryStats = std::make_shared<RecoveryStats>();
  const RunOutput recovered = runWith(cfg, inj);
  EXPECT_EQ(inj->stats().crashes, 2u);
  EXPECT_EQ(inj->stats().checkpointCorruptions, 1u);
  const simmpi::RecoveryReport rep =
      simmpi::snapshotRecovery(*cfg.recoveryStats);
  EXPECT_EQ(rep.resurrections, 2u);
  EXPECT_EQ(rep.checkpointCorruptionsDetected, 1u);
  EXPECT_GE(rep.generationsDiscarded, 1u);
  expectBitwiseEqual(clean, recovered);
}

TEST(MultiFault, RottedOldGenerationIsScrubbedAtNextAppend) {
  // Corrupt the FIRST matrix generation, then crash late enough that a
  // newer generation exists: restore-time fallback alone would have to
  // rewind past the replay floor. The scrub-on-append pass must instead
  // drop the rotted generation at the next checkpoint (folding its tiles
  // into the new one), so the late crash restores from a repaired chain.
  const RunOutput clean = runWith(recoveryConfig(0), nullptr);
  FaultConfig fc;
  fc.crashRank = 2;
  fc.crashAtOp = 50;
  fc.ckptCorruptRank = 2;
  fc.ckptCorruptOrdinal = 0;  // rots before later generations are appended
  auto inj = std::make_shared<FaultInjector>(fc, 4);
  HplaiConfig cfg = recoveryConfig(4);
  cfg.abftPanels = true;  // matches the recover CLI: ABFT traffic
  cfg.abftGemm = true;    // shifts the comm-op stream the ops are calibrated to
  cfg.recoveryStats = std::make_shared<RecoveryStats>();
  const RunOutput recovered = runWith(cfg, inj);
  EXPECT_EQ(inj->stats().checkpointCorruptions, 1u);
  const simmpi::RecoveryReport rep =
      simmpi::snapshotRecovery(*cfg.recoveryStats);
  EXPECT_EQ(rep.resurrections, 1u);
  EXPECT_EQ(rep.checkpointCorruptionsDetected, 1u);
  EXPECT_EQ(rep.generationsDiscarded, 1u);
  expectBitwiseEqual(clean, recovered);
}

TEST(MultiFault, MulticrashAndCkptcorruptScenariosAreKnown) {
  const std::vector<std::string> names = simmpi::knownFaultScenarios();
  auto has = [&](const char* n) {
    return std::find(names.begin(), names.end(), n) != names.end();
  };
  EXPECT_TRUE(has("multicrash"));
  EXPECT_TRUE(has("ckptcorrupt"));
  const FaultConfig multi = simmpi::faultScenario("multicrash", 1, 4);
  EXPECT_GE(multi.crashRank, 0);
  EXPECT_GE(multi.crashRank2, 0);
  EXPECT_NE(multi.crashRank, multi.crashRank2);
  const FaultConfig corrupt = simmpi::faultScenario("ckptcorrupt", 1, 4);
  EXPECT_GE(corrupt.crashRank, 0);
  EXPECT_EQ(corrupt.ckptCorruptRank, corrupt.crashRank);
}

// ---------------------------------------------------------------------------
// DirtyMap (the panel-granular tracking the core layer marks into)
// ---------------------------------------------------------------------------

TEST(DirtyMap, MarksClipsAndEnumeratesColumnMajor) {
  simmpi::DirtyMap map;
  map.reset(4, 3);
  EXPECT_EQ(map.markedCount(), 0u);
  map.mark(1, 2);
  map.markRect(2, 0, 99, 1);  // clipped to rows 2..3 of column 0
  EXPECT_TRUE(map.test(1, 2));
  EXPECT_TRUE(map.test(2, 0));
  EXPECT_TRUE(map.test(3, 0));
  EXPECT_FALSE(map.test(0, 0));
  EXPECT_FALSE(map.test(1, 1));
  map.mark(1, 2);  // re-marking is idempotent
  EXPECT_EQ(map.markedCount(), 3u);
  const std::vector<index_t> tiles = map.markedTiles();
  ASSERT_EQ(tiles.size(), 3u);
  EXPECT_EQ(tiles[0], 2);      // (2,0) -> 0*4+2
  EXPECT_EQ(tiles[1], 3);      // (3,0)
  EXPECT_EQ(tiles[2], 2 * 4 + 1);  // (1,2)
  map.clear();
  EXPECT_EQ(map.markedCount(), 0u);
  EXPECT_FALSE(map.test(1, 2));
}

TEST(CrashRecovery, ConfigRejectsLookaheadAndDataflow) {
  HplaiConfig cfg = recoveryConfig(4);
  cfg.lookahead = true;
  EXPECT_THROW(cfg.validate(), CheckError);
  cfg.lookahead = false;
  cfg.scheduler = HplaiConfig::Scheduler::kDataflow;
  EXPECT_THROW(cfg.validate(), CheckError);
}

// ---------------------------------------------------------------------------
// ABFT: checksum math and in-run correction
// ---------------------------------------------------------------------------

std::vector<half16> makePanel(index_t m, index_t n, std::uint32_t seed) {
  std::vector<half16> panel(static_cast<std::size_t>(m) *
                            static_cast<std::size_t>(n));
  std::uint32_t s = seed;
  for (auto& h : panel) {
    s = s * 1664525u + 1013904223u;
    const float v = static_cast<float>(static_cast<int>(s >> 16) % 97 - 48) /
                    16.0f;
    h = half16(v);
  }
  return panel;
}

TEST(Abft, CleanPanelVerifies) {
  const index_t m = 24, n = 16;
  std::vector<half16> panel = makePanel(m, n, 11);
  std::vector<float> rows(m), cols(n);
  blas::abftChecksum(m, n, panel.data(), m, rows.data(), cols.data());
  const blas::AbftOutcome out = blas::abftVerifyCorrect(
      m, n, panel.data(), m, rows.data(), cols.data());
  EXPECT_EQ(out.status, blas::AbftOutcome::Status::kClean);
}

TEST(Abft, SingleBitFlipIsCorrectedExactly) {
  const index_t m = 24, n = 16;
  for (int bit = 0; bit < 16; ++bit) {
    std::vector<half16> panel = makePanel(m, n, 100 + bit);
    std::vector<float> rows(m), cols(n);
    blas::abftChecksum(m, n, panel.data(), m, rows.data(), cols.data());
    const index_t i = (7 * bit) % m;
    const index_t j = (3 * bit) % n;
    const std::uint16_t orig = panel[i + j * m].bits();
    const std::uint16_t bad =
        orig ^ static_cast<std::uint16_t>(1u << bit);
    if (bad == orig) {
      continue;
    }
    panel[i + j * m] = half16::fromBits(bad);
    const blas::AbftOutcome out = blas::abftVerifyCorrect(
        m, n, panel.data(), m, rows.data(), cols.data());
    ASSERT_EQ(out.status, blas::AbftOutcome::Status::kCorrected)
        << "bit " << bit;
    EXPECT_EQ(out.row, i);
    EXPECT_EQ(out.col, j);
    EXPECT_EQ(out.badBits, bad);
    EXPECT_EQ(panel[i + j * m].bits(), orig)
        << "bit " << bit << ": correction must be bit-exact";
  }
}

TEST(Abft, ChecksumPayloadFlipLeavesPanelIntact) {
  const index_t m = 20, n = 8;
  std::vector<half16> panel = makePanel(m, n, 5);
  std::vector<float> rows(m), cols(n);
  blas::abftChecksum(m, n, panel.data(), m, rows.data(), cols.data());
  std::uint32_t bits;
  std::memcpy(&bits, &rows[4], sizeof(bits));
  bits ^= 1u << 30;  // corrupt the checksum, not the data
  std::memcpy(&rows[4], &bits, sizeof(bits));
  const blas::AbftOutcome out = blas::abftVerifyCorrect(
      m, n, panel.data(), m, rows.data(), cols.data());
  EXPECT_EQ(out.status, blas::AbftOutcome::Status::kChecksumCorrupted);
}

TEST(Abft, MultiElementCorruptionIsUncorrectable) {
  const index_t m = 20, n = 8;
  std::vector<half16> panel = makePanel(m, n, 6);
  std::vector<float> rows(m), cols(n);
  blas::abftChecksum(m, n, panel.data(), m, rows.data(), cols.data());
  panel[2 + 1 * m] = half16(13.0f);
  panel[9 + 5 * m] = half16(-9.0f);
  const blas::AbftOutcome out = blas::abftVerifyCorrect(
      m, n, panel.data(), m, rows.data(), cols.data());
  EXPECT_EQ(out.status, blas::AbftOutcome::Status::kUncorrectable);
}

TEST(Abft, GemmCarryCheckPassesCleanAndCatchesCorruption) {
  const index_t m = 32, n = 24, k = 16;
  std::vector<half16> l = makePanel(m, k, 21);
  std::vector<half16> u = makePanel(n, k, 22);
  std::vector<float> c(static_cast<std::size_t>(m) * n, 0.5f);
  std::vector<double> before(m);
  blas::abftRowSums64(m, n, c.data(), m, before.data());
  // Reference FP32-accumulation GEMM: C -= L * U^T.
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      float acc = 0.0f;
      for (index_t p = 0; p < k; ++p) {
        acc += l[i + p * m].toFloat() * u[j + p * n].toFloat();
      }
      c[i + j * m] -= acc;
    }
  }
  blas::AbftGemmCheck chk = blas::abftGemmCarryCheck(
      m, n, k, before.data(), l.data(), m, u.data(), n, c.data(), m);
  EXPECT_TRUE(chk.ok) << "row " << chk.row << " predicted " << chk.predicted
                      << " actual " << chk.actual;
  // Simulate an exponent flip landing during the update.
  c[5 + 3 * m] *= 65536.0f;
  c[5 + 3 * m] += 4096.0f;
  chk = blas::abftGemmCarryCheck(m, n, k, before.data(), l.data(), m,
                                 u.data(), n, c.data(), m);
  EXPECT_FALSE(chk.ok);
  EXPECT_EQ(chk.row, 5);
}

TEST(Abft, InRunPanelFlipsAreCorrectedBitwise) {
  // Baseline without faults or ABFT.
  HplaiConfig base = recoveryConfig(0);
  const RunOutput clean = runWith(base, nullptr);
  ASSERT_TRUE(clean.result.converged);

  // Inject FP16 flips into panel broadcasts only: the minimum-size gate
  // excludes the diagonal block (1 KiB) and the checksum payloads.
  FaultConfig fc;
  fc.seed = 0x5DC;
  fc.bitflipProbability = 0.25;
  fc.bitflipMinBytes = 2048;
  auto inj = std::make_shared<FaultInjector>(fc, 4);
  HplaiConfig cfg = recoveryConfig(0);
  cfg.abftPanels = true;
  cfg.recoveryStats = std::make_shared<RecoveryStats>();
  const RunOutput protectedRun = runWith(cfg, inj);

  const std::vector<FlipRecord> flips = inj->flipRecords();
  ASSERT_GT(flips.size(), 0u) << "scenario injected no flips; tune seed";
  for (const FlipRecord& f : flips) {
    EXPECT_GE(f.payloadBytes, 2048u);
    EXPECT_EQ(f.bit, 6);  // exponent bit of the high byte
  }
  const simmpi::RecoveryReport rep =
      simmpi::snapshotRecovery(*cfg.recoveryStats);
  // Every injected flip must have been corrected at least once (a flip on
  // a forwarded segment is seen — and fixed — by every downstream rank).
  EXPECT_GE(rep.flipsCorrected, flips.size());
  EXPECT_EQ(rep.flipsDetected, rep.flipsCorrected);
  expectBitwiseEqual(clean, protectedRun);
}

TEST(Abft, CleanRunWithAbftIsBitwiseIdentical) {
  // The checksums ride alongside the panels and never perturb the data.
  const RunOutput plain = runWith(recoveryConfig(0), nullptr);
  HplaiConfig cfg = recoveryConfig(0);
  cfg.abftPanels = true;
  cfg.abftGemm = true;
  const RunOutput checked = runWith(cfg, nullptr);
  expectBitwiseEqual(plain, checked);
}

TEST(Abft, GemmCarryCheckAcceptsHonestFactorization) {
  HplaiConfig cfg = recoveryConfig(0);
  cfg.abftGemm = true;
  cfg.recoveryStats = std::make_shared<RecoveryStats>();
  const RunOutput out = runWith(cfg, nullptr);
  EXPECT_TRUE(out.result.converged);
  EXPECT_GT(simmpi::snapshotRecovery(*cfg.recoveryStats).abftGemmChecks, 0u);
}

TEST(Abft, CrashAndFlipTogetherRecoverBitwise) {
  // The full gauntlet: a panel flip corrected by ABFT and a rank crash
  // resurrected via replay, in one run.
  const RunOutput clean = runWith(recoveryConfig(0), nullptr);
  FaultConfig fc;
  fc.seed = 0x5DC;
  fc.bitflipProbability = 0.25;
  fc.bitflipMinBytes = 2048;
  fc.crashRank = 3;
  fc.crashAtOp = 40;
  auto inj = std::make_shared<FaultInjector>(fc, 4);
  HplaiConfig cfg = recoveryConfig(3);
  cfg.abftPanels = true;
  cfg.recoveryStats = std::make_shared<RecoveryStats>();
  const RunOutput survived = runWith(cfg, inj);
  EXPECT_EQ(inj->stats().crashes, 1u);
  const simmpi::RecoveryReport rep =
      simmpi::snapshotRecovery(*cfg.recoveryStats);
  EXPECT_EQ(rep.resurrections, 1u);
  expectBitwiseEqual(clean, survived);
}

// ---------------------------------------------------------------------------
// MultiRankError determinism and fault provenance (satellite)
// ---------------------------------------------------------------------------

std::vector<simmpi::RankFailure> failingRun() {
  FaultConfig fc;
  fc.seed = 0xFA11;
  fc.crashRank = 1;
  fc.crashAtOp = 2;
  fc.crashOnce = false;  // the node stays dead; peers time out
  auto inj = std::make_shared<FaultInjector>(fc, 3);
  simmpi::RunOptions opts;
  opts.faults = inj;
  opts.timeout = std::chrono::milliseconds(200);
  try {
    simmpi::run(3, [](simmpi::Comm& world) {
      for (int round = 0; round < 8; ++round) {
        world.barrier();
      }
    }, opts);
  } catch (const simmpi::MultiRankError& e) {
    return e.failures();
  }
  ADD_FAILURE() << "expected MultiRankError";
  return {};
}

TEST(MultiRankError, FailureSetIsDeterministicAcrossRuns) {
  const std::vector<simmpi::RankFailure> a = failingRun();
  const std::vector<simmpi::RankFailure> b = failingRun();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GE(a.size(), 2u);  // the crashed rank plus >= 1 timed-out peer
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].rank, b[i].rank);
    EXPECT_EQ(a[i].message, b[i].message);
  }
}

TEST(MultiRankError, CarriesPerRankFaultProvenance) {
  const std::vector<simmpi::RankFailure> failures = failingRun();
  ASSERT_GE(failures.size(), 2u);
  bool sawCrash = false;
  for (const simmpi::RankFailure& f : failures) {
    EXPECT_NE(f.message.find("fault plan seed"), std::string::npos)
        << "rank " << f.rank << ": " << f.message;
    EXPECT_NE(f.message.find("comm ops"), std::string::npos);
    if (f.message.find("injected crash") != std::string::npos ||
        f.rank == 1) {
      sawCrash = true;
    }
  }
  EXPECT_TRUE(sawCrash);
}

// ---------------------------------------------------------------------------
// scanAbnormal coordinate reporting (satellite)
// ---------------------------------------------------------------------------

TEST(ScanAbnormal, ReportsFirstOffenderCoordinatesColumnMajor) {
  std::vector<float> tile(6 * 4, 1.0f);
  tile[3 + 2 * 6] = 1e9f;   // column 2 — scanned after column 1
  tile[5 + 1 * 6] = -2e9f;  // column 1 — the first offender in scan order
  const blas::AbnormalScan s =
      blas::scanAbnormal(6, 4, tile.data(), 6, 1e6);
  ASSERT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.count, 2);
  EXPECT_EQ(s.firstRow, 5);
  EXPECT_EQ(s.firstCol, 1);
  EXPECT_EQ(s.firstValue, static_cast<double>(-2e9f));
  const std::string msg = s.describe();
  EXPECT_NE(msg.find("(5, 1)"), std::string::npos) << msg;
}

TEST(ScanAbnormal, ReportsNonFiniteHalfCoordinates) {
  std::vector<half16> panel(8 * 3, half16(0.25f));
  panel[2 + 1 * 8] = half16::fromBits(0x7C00);  // +inf
  const blas::AbnormalScan s =
      blas::scanAbnormal(8, 3, panel.data(), 8, 64.0);
  ASSERT_TRUE(static_cast<bool>(s));
  EXPECT_EQ(s.firstRow, 2);
  EXPECT_EQ(s.firstCol, 1);
  EXPECT_TRUE(s.sawNonFinite);
}

// ---------------------------------------------------------------------------
// `hplmxp recover` (the CLI demo of the whole stack)
// ---------------------------------------------------------------------------

TEST(CmdRecover, CrashPlusFlipsRecoverBitwiseAndReportJson) {
  const std::string jsonPath = "test_recover_report.json";
  const int rc = cli::cmdRecover(cli::Options::parseArgs(
      {"--crash-rank=2", "--crash-at-op=35", "--flip-probability=0.25",
       "--json", jsonPath}));
  EXPECT_EQ(rc, 0);

  std::ifstream in(jsonPath);
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  std::remove(jsonPath.c_str());

  const serve::JsonValue report = serve::JsonValue::parse(text.str());
  EXPECT_TRUE(report.get("bitwise_identical").asBool());
  EXPECT_TRUE(report.get("converged").asBool());
  EXPECT_EQ(report.get("crashes_injected").asNumber(), 1.0);
  EXPECT_EQ(report.get("resurrections").asNumber(), 1.0);
  EXPECT_GT(report.get("checkpoints").asNumber(), 0.0);
  EXPECT_EQ(report.get("flips_detected").asNumber(),
            report.get("flips_corrected").asNumber());
}

}  // namespace
}  // namespace hplmxp
