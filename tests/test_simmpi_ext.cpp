// Extended simmpi operations: nonblocking P2P, sendrecv, MAXLOC
// reductions, gather/allgather.
#include <gtest/gtest.h>

#include <vector>

#include "simmpi/comm.h"
#include "simmpi/runtime.h"

namespace hplmxp {
namespace {

using simmpi::Comm;

TEST(SimmpiExt, IsendIrecvRoundTrip) {
  simmpi::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const int v = 77;
      simmpi::Request s = comm.isendBytes(1, 3, &v, sizeof(int));
      s.wait();
    } else {
      int v = 0;
      simmpi::Request r = comm.irecvBytes(0, 3, &v, sizeof(int));
      r.wait();
      EXPECT_EQ(v, 77);
    }
  });
}

TEST(SimmpiExt, SendrecvExchangesWithoutDeadlock) {
  simmpi::run(4, [](Comm& comm) {
    const index_t partner = comm.rank() ^ 1;  // pair (0,1) and (2,3)
    std::vector<double> mine(8, static_cast<double>(comm.rank()));
    std::vector<double> theirs(8, -1.0);
    comm.sendrecv(partner, 9, mine.data(), theirs.data(), 8);
    for (double v : theirs) {
      EXPECT_DOUBLE_EQ(v, static_cast<double>(partner));
    }
  });
}

TEST(SimmpiExt, AllreduceMaxLoc) {
  simmpi::run(6, [](Comm& comm) {
    // Rank 4 holds the max; `where` carries its payload.
    const double mine = comm.rank() == 4 ? 100.0 : static_cast<double>(
                                                       comm.rank());
    const auto ml = comm.allreduceMaxLoc(mine, comm.rank() * 10);
    EXPECT_DOUBLE_EQ(ml.value, 100.0);
    EXPECT_EQ(ml.where, 40);
  });
}

TEST(SimmpiExt, AllreduceMaxLocTieBreaksToSmallestWhere) {
  simmpi::run(5, [](Comm& comm) {
    const auto ml = comm.allreduceMaxLoc(1.0, comm.rank() + 100);
    EXPECT_DOUBLE_EQ(ml.value, 1.0);
    EXPECT_EQ(ml.where, 100);  // deterministic across runs
  });
}

TEST(SimmpiExt, GatherCollectsInRankOrder) {
  simmpi::run(5, [](Comm& comm) {
    const index_t root = 2;
    std::vector<int> mine{static_cast<int>(comm.rank()),
                          static_cast<int>(comm.rank() * 2)};
    std::vector<int> all(10, -1);
    comm.gather(root, mine.data(),
                comm.rank() == root ? all.data() : nullptr, 2);
    if (comm.rank() == root) {
      for (index_t r = 0; r < 5; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(2 * r)], r);
        EXPECT_EQ(all[static_cast<std::size_t>(2 * r + 1)], 2 * r);
      }
    }
  });
}

TEST(SimmpiExt, AllgatherGivesEveryoneEverything) {
  simmpi::run(4, [](Comm& comm) {
    const double mine = static_cast<double>(comm.rank() + 1);
    std::vector<double> all(4, 0.0);
    comm.allgather(&mine, all.data(), 1);
    for (index_t r = 0; r < 4; ++r) {
      EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(r)],
                       static_cast<double>(r + 1));
    }
  });
}

TEST(SimmpiExt, MaxLocWorksOnSubCommunicators) {
  // The HPL pivot search runs MAXLOC on column communicators.
  simmpi::run(6, [](Comm& comm) {
    Comm col = comm.split(comm.rank() % 2, comm.rank() / 2);
    const double v = static_cast<double>(comm.rank());
    const auto ml = col.allreduceMaxLoc(v, comm.rank());
    // Columns are {0,2,4} and {1,3,5}: max is 4 or 5 respectively.
    EXPECT_DOUBLE_EQ(ml.value, comm.rank() % 2 == 0 ? 4.0 : 5.0);
    EXPECT_EQ(ml.where, comm.rank() % 2 == 0 ? 4 : 5);
  });
}

}  // namespace
}  // namespace hplmxp
