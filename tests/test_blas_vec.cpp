// Vector kernels (GEMV, TRSV) and the CAST / TRANS_CAST conversion phases.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "blas/cast.h"
#include "blas/gemv.h"
#include "blas/trsv.h"

namespace hplmxp {
namespace {

using blas::Diag;
using blas::Trans;
using blas::Uplo;

TEST(Gemv, NoTransMatchesNaive) {
  const index_t m = 300, n = 170;
  std::mt19937 rng(1);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<double> a(static_cast<std::size_t>(m * n)),
      x(static_cast<std::size_t>(n)), y(static_cast<std::size_t>(m));
  for (auto& v : a) v = d(rng);
  for (auto& v : x) v = d(rng);
  for (auto& v : y) v = d(rng);
  auto yRef = y;
  blas::dgemv(Trans::kNoTrans, m, n, 2.0, a.data(), m, x.data(), -1.0,
              y.data());
  for (index_t i = 0; i < m; ++i) {
    double acc = 0.0;
    for (index_t j = 0; j < n; ++j) {
      acc += a[static_cast<std::size_t>(i + j * m)] *
             x[static_cast<std::size_t>(j)];
    }
    yRef[static_cast<std::size_t>(i)] =
        2.0 * acc - yRef[static_cast<std::size_t>(i)];
  }
  for (index_t i = 0; i < m; ++i) {
    EXPECT_NEAR(y[static_cast<std::size_t>(i)],
                yRef[static_cast<std::size_t>(i)], 1e-12 * n);
  }
}

TEST(Gemv, TransMatchesNaive) {
  const index_t m = 90, n = 260;
  std::mt19937 rng(2);
  std::uniform_real_distribution<float> d(-1.0f, 1.0f);
  std::vector<float> a(static_cast<std::size_t>(m * n)),
      x(static_cast<std::size_t>(m)), y(static_cast<std::size_t>(n), 0.0f);
  for (auto& v : a) v = d(rng);
  for (auto& v : x) v = d(rng);
  blas::sgemv(Trans::kTrans, m, n, 1.0f, a.data(), m, x.data(), 0.0f,
              y.data());
  for (index_t j = 0; j < n; ++j) {
    float acc = 0.0f;
    for (index_t i = 0; i < m; ++i) {
      acc += a[static_cast<std::size_t>(i + j * m)] *
             x[static_cast<std::size_t>(i)];
    }
    EXPECT_NEAR(y[static_cast<std::size_t>(j)], acc, 1e-4f);
  }
}

TEST(Gemv, BetaZeroOverwrites) {
  std::vector<double> a{1.0}, x{3.0};
  std::vector<double> y{std::nan("1")};
  blas::dgemv(Trans::kNoTrans, 1, 1, 1.0, a.data(), 1, x.data(), 0.0,
              y.data());
  EXPECT_EQ(y[0], 3.0);
}

class TrsvTest : public ::testing::TestWithParam<std::tuple<Uplo, Diag>> {};

TEST_P(TrsvTest, SolveThenMultiplyRoundTrips) {
  const auto [uplo, diag] = GetParam();
  const index_t n = 120;
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> d(-0.5, 0.5);
  std::vector<double> a(static_cast<std::size_t>(n * n), 0.0);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      const bool inTri = uplo == Uplo::kLower ? i > j : i < j;
      if (inTri) {
        a[static_cast<std::size_t>(i + j * n)] = d(rng) / n;
      }
    }
    a[static_cast<std::size_t>(j + j * n)] =
        diag == Diag::kUnit ? 123.0 /* must be ignored */ : 3.0 + d(rng);
  }
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = d(rng);
  auto x = b;
  blas::dtrsv(uplo, diag, n, a.data(), n, x.data());
  // Multiply back: op(A) x == b.
  for (index_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (index_t j = 0; j < n; ++j) {
      const bool inTri = uplo == Uplo::kLower ? i > j : i < j;
      double aij = 0.0;
      if (inTri) {
        aij = a[static_cast<std::size_t>(i + j * n)];
      } else if (i == j) {
        aij = diag == Diag::kUnit ? 1.0
                                  : a[static_cast<std::size_t>(i + i * n)];
      }
      acc += aij * x[static_cast<std::size_t>(j)];
    }
    EXPECT_NEAR(acc, b[static_cast<std::size_t>(i)], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, TrsvTest,
    ::testing::Combine(::testing::Values(Uplo::kLower, Uplo::kUpper),
                       ::testing::Values(Diag::kUnit, Diag::kNonUnit)));

TEST(TrsvMixed, Fp32FactorFp64Vector) {
  // strsvMixed must match dtrsv applied to the widened factor.
  const index_t n = 80;
  std::mt19937 rng(5);
  std::uniform_real_distribution<float> d(-0.5f, 0.5f);
  std::vector<float> a(static_cast<std::size_t>(n * n), 0.0f);
  std::vector<double> aWide(static_cast<std::size_t>(n * n), 0.0);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j + 1; i < n; ++i) {
      a[static_cast<std::size_t>(i + j * n)] = d(rng) / n;
    }
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    aWide[i] = static_cast<double>(a[i]);
  }
  std::vector<double> x1(static_cast<std::size_t>(n)), x2;
  std::uniform_real_distribution<double> dd(-1.0, 1.0);
  for (auto& v : x1) v = dd(rng);
  x2 = x1;
  blas::strsvMixed(Uplo::kLower, Diag::kUnit, n, a.data(), n, x1.data());
  blas::dtrsv(Uplo::kLower, Diag::kUnit, n, aWide.data(), n, x2.data());
  for (index_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(x1[static_cast<std::size_t>(i)],
                     x2[static_cast<std::size_t>(i)]);
  }
}

TEST(Cast, CastToHalfRoundsEveryElement) {
  const index_t m = 70, n = 33;
  std::mt19937 rng(6);
  std::uniform_real_distribution<float> d(-2.0f, 2.0f);
  std::vector<float> src(static_cast<std::size_t>(m * n));
  for (auto& v : src) v = d(rng);
  std::vector<half16> dst(src.size());
  blas::castToHalf(m, n, src.data(), m, dst.data(), m);
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(dst[i].bits(), half16(src[i]).bits());
  }
}

TEST(Cast, TransCastTransposes) {
  const index_t m = 41, n = 67;
  std::mt19937 rng(7);
  std::uniform_real_distribution<float> d(-1.0f, 1.0f);
  std::vector<float> src(static_cast<std::size_t>(m * n));
  for (auto& v : src) v = d(rng);
  std::vector<half16> dst(static_cast<std::size_t>(n * m));
  blas::transCastToHalf(m, n, src.data(), m, dst.data(), n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      EXPECT_EQ(dst[static_cast<std::size_t>(j + i * n)].bits(),
                half16(src[static_cast<std::size_t>(i + j * m)]).bits());
    }
  }
}

TEST(Cast, RoundTripHalfFloat) {
  const index_t m = 30, n = 20;
  std::vector<half16> src(static_cast<std::size_t>(m * n));
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = half16(0.125f * static_cast<float>(i % 97));
  }
  std::vector<float> mid(src.size());
  std::vector<half16> back(src.size());
  blas::castToFloat(m, n, src.data(), m, mid.data(), m);
  blas::castToHalf(m, n, mid.data(), m, back.data(), m);
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(src[i].bits(), back[i].bits());
  }
}

TEST(Cast, NarrowAndWiden) {
  const index_t m = 25, n = 11;
  std::vector<double> src(static_cast<std::size_t>(m * n));
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = 1.0 / (1.0 + static_cast<double>(i));
  }
  std::vector<float> f(src.size());
  std::vector<double> back(src.size());
  blas::narrowToFloat(m, n, src.data(), m, f.data(), m);
  blas::widenToDouble(m, n, f.data(), m, back.data(), m);
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(f[i], static_cast<float>(src[i]));
    EXPECT_EQ(back[i], static_cast<double>(f[i]));
  }
}

TEST(Cast, RespectsLeadingDimensions) {
  // Submatrix cast inside a larger matrix must not touch padding.
  const index_t m = 4, n = 3, ldSrc = 7, ldDst = 6;
  std::vector<float> src(static_cast<std::size_t>(ldSrc * n), 9.0f);
  std::vector<half16> dst(static_cast<std::size_t>(ldDst * n),
                          half16(-1.0f));
  blas::castToHalf(m, n, src.data(), ldSrc, dst.data(), ldDst);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < ldDst; ++i) {
      const float expected = i < m ? 9.0f : -1.0f;
      EXPECT_EQ(dst[static_cast<std::size_t>(i + j * ldDst)].toFloat(),
                expected);
    }
  }
}

}  // namespace
}  // namespace hplmxp
