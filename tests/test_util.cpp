// Utility substrate: thread pool, stats, tables, buffers, check macros.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <thread>
#include <vector>

#include "util/buffer.h"
#include "util/logging.h"
#include "util/common.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace hplmxp {
namespace {

TEST(Common, IntegerHelpers) {
  EXPECT_EQ(ceilDiv(10, 3), 4);
  EXPECT_EQ(ceilDiv(9, 3), 3);
  EXPECT_EQ(roundUp(10, 8), 16);
  EXPECT_EQ(roundUp(16, 8), 16);
  EXPECT_EQ(roundDown(10, 8), 8);
}

TEST(Common, CheckMacrosThrow) {
  EXPECT_THROW(HPLMXP_CHECK(1 == 2), CheckError);
  EXPECT_THROW(HPLMXP_REQUIRE(false, "context"), CheckError);
  EXPECT_NO_THROW(HPLMXP_CHECK(true));
  try {
    HPLMXP_REQUIRE(false, "specific context");
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("specific context"),
              std::string::npos);
  }
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallelFor(0, 1000, [&](index_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, EmptyRangeIsNoOp) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallelFor(5, 5, [&](index_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallelFor(0, 100,
                                [](index_t i) {
                                  if (i == 37) {
                                    throw CheckError("boom");
                                  }
                                }),
               CheckError);
  // Pool is still usable afterwards.
  std::atomic<int> count{0};
  pool.parallelFor(0, 10, [&](index_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, NestedUseFromRankedThreads) {
  // Multiple threads driving the same pool concurrently (as simmpi ranks
  // do with the global pool) must each see correct results.
  ThreadPool pool(2);
  std::vector<std::thread> threads;
  std::vector<long> sums(4, 0);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      std::atomic<long> sum{0};
      pool.parallelFor(0, 500, [&](index_t i) {
        sum.fetch_add(i);
      });
      sums[static_cast<std::size_t>(t)] = sum.load();
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (long s : sums) {
    EXPECT_EQ(s, 499 * 500 / 2);
  }
}

TEST(Stats, SummaryAndPercentile) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0, 5.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.0);
  EXPECT_DOUBLE_EQ(relativeSpreadPercent(v), (5.0 - 1.0) / 3.0 * 100.0);
}

TEST(Stats, RunningMatchesBatch) {
  RunningStats rs;
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) {
    const double x = 0.1 * i * ((i % 3) - 1);
    rs.add(x);
    v.push_back(x);
  }
  const Summary s = summarize(v);
  EXPECT_NEAR(rs.mean(), s.mean, 1e-12);
  EXPECT_NEAR(rs.stddev(), s.stddev, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), s.min);
  EXPECT_DOUBLE_EQ(rs.max(), s.max);
}

TEST(Table, RendersAlignedRows) {
  Table t({"name", "value"});
  t.addRow({"alpha", "1"});
  t.addRow({"b", "22.5"});
  const std::string out = t.render();
  // Columns pad to the widest cell ("value" = 5 chars).
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22.5  |"), std::string::npos);
  EXPECT_EQ(t.rowCount(), 2u);
  EXPECT_THROW(t.addRow({"too", "many", "cols"}), CheckError);
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(7LL), "7");
}

TEST(Buffer, AllocateMoveRelease) {
  Buffer<float> b(100);
  EXPECT_EQ(b.size(), 100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % kBufferAlignment,
            0u);
  b[0] = 1.5f;
  Buffer<float> c = std::move(b);
  EXPECT_EQ(c.size(), 100);
  EXPECT_EQ(c[0], 1.5f);
  EXPECT_EQ(b.size(), 0);  // NOLINT(bugprone-use-after-move): spec'd empty
  c.release();
  EXPECT_TRUE(c.empty());
}

TEST(Logging, LevelsFilterOutput) {
  const LogLevel old = Log::level();
  Log::setLevel(LogLevel::kWarn);
  EXPECT_EQ(Log::level(), LogLevel::kWarn);
  // Below-threshold writes are no-ops; above-threshold writes must not
  // throw (output goes to stderr).
  logDebug("suppressed ", 123);
  logInfo("suppressed too");
  Log::setLevel(LogLevel::kOff);
  logError("also suppressed at kOff? no: kError < kOff, suppressed");
  Log::setLevel(old);
}

TEST(Logging, ConcatFormatsMixedTypes) {
  // The variadic helpers stringify heterogeneous arguments.
  Log::setLevel(LogLevel::kOff);
  logWarn("n=", 42, " rate=", 1.5, " name=", std::string("x"));
  Log::setLevel(LogLevel::kWarn);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + 1.0;
  }
  EXPECT_GE(t.seconds(), 0.0);
  AccumTimer acc;
  acc.start();
  acc.stop();
  acc.start();
  acc.stop();
  EXPECT_EQ(acc.count(), 2);
  EXPECT_GE(acc.totalSeconds(), 0.0);
}

}  // namespace
}  // namespace hplmxp
