// Utility substrate: thread pool, stats, tables, buffers, check macros.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "util/arena.h"
#include "util/buffer.h"
#include "util/logging.h"
#include "util/common.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace hplmxp {
namespace {

TEST(Common, IntegerHelpers) {
  EXPECT_EQ(ceilDiv(10, 3), 4);
  EXPECT_EQ(ceilDiv(9, 3), 3);
  EXPECT_EQ(roundUp(10, 8), 16);
  EXPECT_EQ(roundUp(16, 8), 16);
  EXPECT_EQ(roundDown(10, 8), 8);
}

TEST(Common, CheckMacrosThrow) {
  EXPECT_THROW(HPLMXP_CHECK(1 == 2), CheckError);
  EXPECT_THROW(HPLMXP_REQUIRE(false, "context"), CheckError);
  EXPECT_NO_THROW(HPLMXP_CHECK(true));
  try {
    HPLMXP_REQUIRE(false, "specific context");
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("specific context"),
              std::string::npos);
  }
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallelFor(0, 1000, [&](index_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, EmptyRangeIsNoOp) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallelFor(5, 5, [&](index_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallelFor(0, 100,
                                [](index_t i) {
                                  if (i == 37) {
                                    throw CheckError("boom");
                                  }
                                }),
               CheckError);
  // Pool is still usable afterwards.
  std::atomic<int> count{0};
  pool.parallelFor(0, 10, [&](index_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, NestedUseFromRankedThreads) {
  // Multiple threads driving the same pool concurrently (as simmpi ranks
  // do with the global pool) must each see correct results.
  ThreadPool pool(2);
  std::vector<std::thread> threads;
  std::vector<long> sums(4, 0);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      std::atomic<long> sum{0};
      pool.parallelFor(0, 500, [&](index_t i) {
        sum.fetch_add(i);
      });
      sums[static_cast<std::size_t>(t)] = sum.load();
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (long s : sums) {
    EXPECT_EQ(s, 499 * 500 / 2);
  }
}

TEST(ThreadPool, ChunkedCoversRangeWithDisjointChunks) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1537);
  std::atomic<int> calls{0};
  pool.parallelForChunked(
      0, 1537,
      [&](index_t lo, index_t hi) {
        EXPECT_LT(lo, hi);
        calls.fetch_add(1);
        for (index_t i = lo; i < hi; ++i) {
          hits[static_cast<std::size_t>(i)].fetch_add(1);
        }
      },
      7);
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
  EXPECT_EQ(calls.load(), 7);
}

TEST(ThreadPool, ChunkedClampsChunksToRange) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  // 3 elements, 100 requested chunks: one single-element chunk each.
  pool.parallelForChunked(
      10, 13,
      [&](index_t lo, index_t hi) {
        EXPECT_EQ(hi, lo + 1);
        calls.fetch_add(1);
      },
      100);
  EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPool, ChunkedExceptionsPropagateAndPoolSurvives) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallelForChunked(0, 64,
                                       [](index_t lo, index_t hi) {
                                         if (lo <= 37 && 37 < hi) {
                                           throw CheckError("boom");
                                         }
                                       },
                                       16),
               CheckError);
  std::atomic<int> count{0};
  pool.parallelForChunked(0, 10,
                          [&](index_t lo, index_t hi) {
                            count.fetch_add(static_cast<int>(hi - lo));
                          });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ManyConcurrentChunkedLoopsFromRankedThreads) {
  // Saturates the fixed job-slot table from several driver threads at
  // once: slot exhaustion must degrade to caller-runs-alone, never lose
  // or duplicate a chunk.
  ThreadPool pool(2);
  std::vector<std::thread> threads;
  std::vector<long> sums(8, 0);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < 50; ++rep) {
        std::atomic<long> sum{0};
        pool.parallelForChunked(0, 300, [&](index_t lo, index_t hi) {
          long local = 0;
          for (index_t i = lo; i < hi; ++i) {
            local += i;
          }
          sum.fetch_add(local);
        });
        HPLMXP_CHECK(sum.load() == 299L * 300L / 2);
      }
      sums[static_cast<std::size_t>(t)] = 1;
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (long s : sums) {
    EXPECT_EQ(s, 1);
  }
}

TEST(ThreadPool, ScratchLeaseReusesOneArenaSequentially) {
  ThreadPool pool(2);
  {
    auto lease = pool.scratch();
    lease.arena().reserve(1 << 12);
    EXPECT_GE(lease.arena().capacity(), std::size_t{1} << 12);
  }
  EXPECT_EQ(pool.scratchArenaCount(), 1u);
  {
    auto lease = pool.scratch();
    // Same arena comes back with its capacity intact.
    EXPECT_GE(lease.arena().capacity(), std::size_t{1} << 12);
  }
  EXPECT_EQ(pool.scratchArenaCount(), 1u);
  // Overlapping leases get distinct arenas.
  {
    auto a = pool.scratch();
    auto b = pool.scratch();
    EXPECT_NE(&a.arena(), &b.arena());
  }
  EXPECT_EQ(pool.scratchArenaCount(), 2u);
}

TEST(Arena, AlignedBumpAllocationAndReset) {
  Arena arena;
  arena.reserve(1 << 10);
  const std::size_t cap = arena.capacity();
  float* f = arena.alloc<float>(10);
  double* d = arena.alloc<double>(10);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(f) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % 64, 0u);
  f[9] = 1.0f;
  d[9] = 2.0;
  EXPECT_GE(arena.used(), 10 * sizeof(float) + 10 * sizeof(double));

  // reserve() below capacity resets the cursor without reallocating.
  arena.reserve(16);
  EXPECT_EQ(arena.capacity(), cap);
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.alloc<float>(10), f);  // same storage handed out again

  // Exhausting the reservation is a hard error, not a silent grow: the
  // hot loop must never allocate mid-cycle.
  arena.reset();
  EXPECT_THROW(arena.alloc<std::byte>(arena.capacity() + 64), CheckError);
}

TEST(Arena, GrowthCounterTracksReallocations) {
  Arena arena;
  const long long g0 = arena.growths();
  arena.reserve(1 << 8);
  EXPECT_EQ(arena.growths(), g0 + 1);
  arena.reserve(1 << 8);  // fits: no growth
  EXPECT_EQ(arena.growths(), g0 + 1);
  arena.reserve(arena.capacity() * 2);
  EXPECT_EQ(arena.growths(), g0 + 2);
}

TEST(Stats, SummaryAndPercentile) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0, 5.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.0);
  EXPECT_DOUBLE_EQ(relativeSpreadPercent(v), (5.0 - 1.0) / 3.0 * 100.0);
}

TEST(Stats, RunningMatchesBatch) {
  RunningStats rs;
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) {
    const double x = 0.1 * i * ((i % 3) - 1);
    rs.add(x);
    v.push_back(x);
  }
  const Summary s = summarize(v);
  EXPECT_NEAR(rs.mean(), s.mean, 1e-12);
  EXPECT_NEAR(rs.stddev(), s.stddev, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), s.min);
  EXPECT_DOUBLE_EQ(rs.max(), s.max);
}

TEST(Table, RendersAlignedRows) {
  Table t({"name", "value"});
  t.addRow({"alpha", "1"});
  t.addRow({"b", "22.5"});
  const std::string out = t.render();
  // Columns pad to the widest cell ("value" = 5 chars).
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22.5  |"), std::string::npos);
  EXPECT_EQ(t.rowCount(), 2u);
  EXPECT_THROW(t.addRow({"too", "many", "cols"}), CheckError);
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(7LL), "7");
}

TEST(Buffer, AllocateMoveRelease) {
  Buffer<float> b(100);
  EXPECT_EQ(b.size(), 100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % kBufferAlignment,
            0u);
  b[0] = 1.5f;
  Buffer<float> c = std::move(b);
  EXPECT_EQ(c.size(), 100);
  EXPECT_EQ(c[0], 1.5f);
  EXPECT_EQ(b.size(), 0);  // NOLINT(bugprone-use-after-move): spec'd empty
  c.release();
  EXPECT_TRUE(c.empty());
}

TEST(Logging, LevelsFilterOutput) {
  const LogLevel old = Log::level();
  Log::setLevel(LogLevel::kWarn);
  EXPECT_EQ(Log::level(), LogLevel::kWarn);
  // Below-threshold writes are no-ops; above-threshold writes must not
  // throw (output goes to stderr).
  logDebug("suppressed ", 123);
  logInfo("suppressed too");
  Log::setLevel(LogLevel::kOff);
  logError("also suppressed at kOff? no: kError < kOff, suppressed");
  Log::setLevel(old);
}

TEST(Logging, ConcatFormatsMixedTypes) {
  // The variadic helpers stringify heterogeneous arguments.
  Log::setLevel(LogLevel::kOff);
  logWarn("n=", 42, " rate=", 1.5, " name=", std::string("x"));
  Log::setLevel(LogLevel::kWarn);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + 1.0;
  }
  EXPECT_GE(t.seconds(), 0.0);
  AccumTimer acc;
  acc.start();
  acc.stop();
  acc.start();
  acc.stop();
  EXPECT_EQ(acc.count(), 2);
  EXPECT_GE(acc.totalSeconds(), 0.0);
}

}  // namespace
}  // namespace hplmxp
