// First-principles pipeline timing: the alpha-beta derivation of why rings
// beat an unpipelined tree at HPL-AI panel sizes, and why the modified
// rings shrink the critical path (Sec. IV-B mechanics).
#include <gtest/gtest.h>

#include "netsim/pipeline.h"

namespace hplmxp {
namespace {

using simmpi::BcastStrategy;

// Slingshot-ish link: 4 us latency, 25 GB/s.
constexpr LinkModel kLink{.alpha = 4e-6, .betaPerByte = 1.0 / 25e9};

TEST(Pipeline, TreeScalesLogarithmicallyInRanks) {
  const double t16 = treeBcastTime(kLink, 1e6, 16);
  const double t256 = treeBcastTime(kLink, 1e6, 256);
  EXPECT_NEAR(t256 / t16, 2.0, 1e-9);  // log2: 8 vs 4 full-message hops
  EXPECT_DOUBLE_EQ(treeBcastTime(kLink, 1e6, 1), 0.0);
}

TEST(Pipeline, RingApproachesSingleTransferTimeForLargeMessages) {
  // The point of pipelining: for M*beta >> alpha*(P-2), the ring's
  // completion time tends to M*beta, independent of P. The convergence is
  // slow — T/M*beta = (1 + sqrt(alpha*(P-2)/(M*beta)))^2 — so the
  // asymptotic regime needs a genuinely bandwidth-dominated message.
  const double bytes = 1e9;
  const double oneTransfer = bytes * kLink.betaPerByte;
  const index_t p = 172;
  const double ring = strategyPipelineTime(kLink, BcastStrategy::kRing1,
                                           bytes, p);
  EXPECT_LT(ring, 1.3 * oneTransfer);
  EXPECT_GT(ring, oneTransfer);
  // The unpipelined tree pays log2(172) ~ 8 transfers.
  const double tree = treeBcastTime(kLink, bytes, p);
  EXPECT_GT(tree, 7.0 * oneTransfer);
  EXPECT_GT(tree / ring, 5.0);  // rings win big vs an unpipelined library

  // At an actual Frontier panel size (~50 MB) the ring still beats the
  // unpipelined tree by ~3x — the Finding 6 regime.
  const double panel = 50e6;
  EXPECT_GT(treeBcastTime(kLink, panel, p) /
                strategyPipelineTime(kLink, BcastStrategy::kRing1, panel, p),
            2.5);
}

TEST(Pipeline, PipelinedTreeNeutralizesTheRingAdvantage) {
  // Summit's tuned Spectrum MPI pipelines internally: with the same
  // segmentation freedom the tree is as good as (or better than) a ring,
  // reproducing Finding 6's flip side.
  const double bytes = 20e6;
  const index_t p = 162;
  const index_t segs = optimalSegments(kLink, bytes, p - 1);
  const double tunedTree = pipelinedTreeBcastTime(kLink, bytes, p, segs);
  const double ring = strategyPipelineTime(kLink, BcastStrategy::kRing1,
                                           bytes, p);
  EXPECT_LT(tunedTree, 1.1 * ring);
}

TEST(Pipeline, OptimalSegmentsFollowSqrtRule) {
  const double bytes = 1e7;
  const index_t s = optimalSegments(kLink, bytes, 100);
  // Perturbing the segment count around s* must not improve the time.
  const double best = ringBcastTime(kLink, bytes, 100, s);
  EXPECT_LE(best, ringBcastTime(kLink, bytes, 100, std::max<index_t>(
                                                       1, s / 2)));
  EXPECT_LE(best, ringBcastTime(kLink, bytes, 100, s * 2));
  EXPECT_GE(optimalSegments(kLink, 0.0, 100), 1);
  EXPECT_EQ(optimalSegments(kLink, bytes, 1), 1);
}

TEST(Pipeline, ModifiedRingsOrderAsThePaperMeasures) {
  // Completion time ordering at panel scale: 2M <= 1M <= 1 (shorter chains
  // fill faster), all well below the unpipelined tree.
  const double bytes = 40e6;
  const index_t p = 128;
  const double r1 = strategyPipelineTime(kLink, BcastStrategy::kRing1, bytes,
                                         p);
  const double r1m = strategyPipelineTime(kLink, BcastStrategy::kRing1M,
                                          bytes, p);
  const double r2m = strategyPipelineTime(kLink, BcastStrategy::kRing2M,
                                          bytes, p);
  EXPECT_LE(r2m, r1m);
  EXPECT_LE(r1m, r1);
  EXPECT_LT(r2m, treeBcastTime(kLink, bytes, p));
}

TEST(Pipeline, ModifiedRingsShrinkTheCriticalPath) {
  // The next diagonal owner (root's first neighbour) gets its panel in one
  // dedicated transfer under 1M/2M, but must relay the whole stream under
  // the plain ring — the paper's stated motivation for the modification.
  const double bytes = 40e6;
  const index_t p = 128;
  const double plain = criticalPathTime(kLink, BcastStrategy::kRing1, bytes,
                                        p);
  const double modified = criticalPathTime(kLink, BcastStrategy::kRing1M,
                                           bytes, p);
  EXPECT_LT(modified, plain);
  EXPECT_DOUBLE_EQ(modified,
                   criticalPathTime(kLink, BcastStrategy::kRing2M, bytes, p));
  // And it equals a single full-message transfer.
  EXPECT_DOUBLE_EQ(modified, kLink.alpha + bytes * kLink.betaPerByte);
}

TEST(Pipeline, LatencyBoundSmallMessagesPreferTheTree) {
  // Diagonal-block-sized messages (latency dominated): the log-depth tree
  // beats a P-hop ring — why the paper keeps the library Bcast for the
  // diagonal even on Frontier.
  const double bytes = 4096;
  const index_t p = 256;
  EXPECT_LT(treeBcastTime(kLink, bytes, p),
            strategyPipelineTime(kLink, BcastStrategy::kRing1, bytes, p));
}

TEST(Pipeline, DegenerateCases) {
  EXPECT_DOUBLE_EQ(strategyPipelineTime(kLink, BcastStrategy::kRing2M, 1e6,
                                        1),
                   0.0);
  EXPECT_DOUBLE_EQ(ringBcastTime(kLink, 1e6, 0, 4), 0.0);
  EXPECT_DOUBLE_EQ(criticalPathTime(kLink, BcastStrategy::kBcast, 1e6, 1),
                   0.0);
}

}  // namespace
}  // namespace hplmxp
