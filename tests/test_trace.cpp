// Operational tooling: progress monitoring / early termination and the
// slow-node scanner (Sec. VI-B best practices).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>

#include "core/dist_context.h"
#include "core/hplai.h"
#include "core/lu_dist.h"
#include "device/shim.h"
#include "gen/matgen.h"
#include "machine/variability.h"
#include "simmpi/runtime.h"
#include "trace/progress.h"
#include "trace/reference.h"
#include "trace/sched_timeline.h"
#include "trace/slow_node.h"
#include "util/buffer.h"
#include "util/stats.h"

namespace hplmxp {
namespace {

TEST(ProgressMonitor, HealthyRunNeverTerminates) {
  ProgressMonitor mon(ProgressPolicy{}, [](index_t) { return 0.010; });
  for (index_t k = 0; k < 100; ++k) {
    EXPECT_EQ(mon.observe(k, 0.011), ProgressVerdict::kHealthy);
  }
  EXPECT_FALSE(mon.terminated());
}

TEST(ProgressMonitor, TerminatesAfterConsecutiveSlowIterations) {
  ProgressMonitor mon(
      ProgressPolicy{.slowdownFactor = 2.0, .strikes = 3},
      [](index_t) { return 0.010; });
  EXPECT_EQ(mon.observe(0, 0.050), ProgressVerdict::kSlow);
  EXPECT_EQ(mon.observe(1, 0.050), ProgressVerdict::kSlow);
  EXPECT_EQ(mon.observe(2, 0.050), ProgressVerdict::kTerminate);
  EXPECT_TRUE(mon.terminated());
  // Stays terminated.
  EXPECT_EQ(mon.observe(3, 0.001), ProgressVerdict::kTerminate);
}

TEST(ProgressMonitor, RecoveryResetsStrikes) {
  // A transient hiccup (e.g. one congested iteration) must not kill an
  // otherwise healthy run.
  ProgressMonitor mon(
      ProgressPolicy{.slowdownFactor = 2.0, .strikes = 3},
      [](index_t) { return 0.010; });
  EXPECT_EQ(mon.observe(0, 0.050), ProgressVerdict::kSlow);
  EXPECT_EQ(mon.observe(1, 0.050), ProgressVerdict::kSlow);
  EXPECT_EQ(mon.observe(2, 0.010), ProgressVerdict::kHealthy);
  EXPECT_EQ(mon.consecutiveSlow(), 0);
  EXPECT_EQ(mon.observe(3, 0.050), ProgressVerdict::kSlow);
  EXPECT_FALSE(mon.terminated());
}

TEST(ProgressMonitor, MissingReferenceDisablesCheck) {
  ProgressMonitor mon(ProgressPolicy{.strikes = 1},
                      [](index_t k) { return k < 5 ? -1.0 : 0.010; });
  EXPECT_EQ(mon.observe(0, 99.0), ProgressVerdict::kHealthy);
  EXPECT_EQ(mon.observe(5, 99.0), ProgressVerdict::kTerminate);
}

TEST(ProgressMonitor, ReportLineContainsComponents) {
  ProgressMonitor mon(ProgressPolicy{}, nullptr);
  IterationTrace t;
  t.k = 12;
  t.trailingBlocks = 88;
  t.gemmSeconds = 0.5;
  const std::string line = mon.reportLine(t);
  EXPECT_NE(line.find("iter"), std::string::npos);
  EXPECT_NE(line.find("gemm"), std::string::npos);
  EXPECT_NE(line.find("500.000"), std::string::npos);  // ms formatting
}

TEST(SlowNodeScanner, FlagsDegradedDies) {
  // Simulated fleet with 2% degraded dies: the scanner must flag exactly
  // the degraded ones (their penalty is far below the healthy spread).
  const GcdVariability v(VariabilityConfig{
      .seed = 9, .spread = 0.05, .slowFraction = 0.02, .slowPenalty = 0.3});
  const index_t fleet = 2000;
  std::vector<double> rates;
  std::vector<index_t> expectedFlagged;
  for (index_t i = 0; i < fleet; ++i) {
    rates.push_back(100.0 * v.multiplier(i));
    if (v.isDegraded(i)) {
      expectedFlagged.push_back(i);
    }
  }
  const SlowNodeScanner scanner(ScanPolicy{.threshold = 0.90});
  const ScanReport report = scanner.scan(rates);
  EXPECT_EQ(report.flagged, expectedFlagged);
  // Healthy fleet spread ~5% (Sec. VI-B observation).
  ASSERT_FALSE(expectedFlagged.empty());
  EXPECT_GT(report.keptMinRate, 0.90 * report.median);
}

TEST(SlowNodeScanner, CleanFleetFlagsNothing) {
  const GcdVariability v(VariabilityConfig{.seed = 2, .spread = 0.05});
  std::vector<double> rates;
  for (index_t i = 0; i < 500; ++i) {
    rates.push_back(50.0 * v.multiplier(i));
  }
  const ScanReport report = SlowNodeScanner().scan(rates);
  EXPECT_TRUE(report.flagged.empty());
  EXPECT_NEAR(report.spreadPercent, 5.0, 1.0);
}

TEST(SlowNodeScanner, ExclusionImprovesPipelinePace) {
  // The point of scanning: after excluding flagged dies, the slowest kept
  // die (which paces the synchronous pipeline) is much faster.
  const GcdVariability v(VariabilityConfig{
      .seed = 4, .spread = 0.05, .slowFraction = 0.01, .slowPenalty = 0.25});
  std::vector<double> rates;
  for (index_t i = 0; i < 3000; ++i) {
    rates.push_back(v.multiplier(i));
  }
  const ScanReport report = SlowNodeScanner().scan(rates);
  ASSERT_FALSE(report.flagged.empty());
  const double unscannedMin = summarize(rates).min;
  EXPECT_GT(report.keptMinRate, unscannedMin * 1.15);
}

TEST(SlowNodeScanner, MiniBenchmarkMeasuresRealKernel) {
  // The mini-benchmark is the actual single-device LU; it must produce a
  // positive, repeatable-order rate.
  const double rate = runMiniBenchmark(128, 32, Vendor::kAmd);
  EXPECT_GT(rate, 1e6);  // > 1 MFLOP/s on any machine
}

TEST(SlowNodeScanner, RejectsEmptyAndBadPolicy) {
  EXPECT_THROW(SlowNodeScanner().scan({}), CheckError);
  EXPECT_THROW(SlowNodeScanner(ScanPolicy{.threshold = 1.5}), CheckError);
}

TEST(ProgressIntegration, MonitorAbortsFunctionalDistributedRun) {
  // Wire a ProgressMonitor into the real distributed factorization with an
  // impossible reference time: the run must stop early and collectively on
  // every rank (Sec. VI-B early termination).
  HplaiConfig cfg;
  cfg.n = 128;
  cfg.b = 16;
  cfg.pr = 2;
  cfg.pc = 2;
  const index_t nb = cfg.n / cfg.b;
  std::vector<index_t> stepsPerRank(static_cast<std::size_t>(4), -1);
  simmpi::run(cfg.worldSize(), [&](simmpi::Comm& world) {
    DistContext ctx(world, cfg);
    ProblemGenerator gen(cfg.seed, cfg.n);
    Buffer<float> local(ctx.localRows() * ctx.localCols());
    const BlockCyclic& layout = ctx.layout();
    for (index_t lj = 0; lj < ctx.localCols() / cfg.b; ++lj) {
      for (index_t li = 0; li < ctx.localRows() / cfg.b; ++li) {
        gen.fillTile<float>(layout.globalBlockRow(ctx.myRow(), li) * cfg.b,
                            layout.globalBlockCol(ctx.myCol(), lj) * cfg.b,
                            cfg.b, cfg.b,
                            local.data() + li * cfg.b +
                                lj * cfg.b * ctx.localRows(),
                            ctx.localRows());
      }
    }
    BlasShim shim(cfg.vendor);
    DistLU lu(ctx, cfg, shim);
    // Reference of ~0 seconds: everything looks catastrophically slow.
    ProgressMonitor monitor(
        ProgressPolicy{.slowdownFactor = 2.0, .strikes = 2},
        [](index_t) { return 1e-12; });
    lu.setProgressCallback([&](index_t k, double seconds) {
      return monitor.observe(k, seconds) == ProgressVerdict::kTerminate;
    });
    lu.factor(local.data(), ctx.localRows());
    EXPECT_TRUE(lu.aborted());
    stepsPerRank[static_cast<std::size_t>(world.rank())] =
        lu.stepsCompleted();
  });
  // Strikes=2 -> terminated after 2 steps, on every rank identically.
  for (index_t s : stepsPerRank) {
    EXPECT_EQ(s, 2);
  }
  EXPECT_LT(stepsPerRank[0], nb);
}

TEST(ReferenceTrace, SaveLoadRoundTrips) {
  std::vector<IterationTrace> trace(3);
  for (index_t k = 0; k < 3; ++k) {
    auto& t = trace[static_cast<std::size_t>(k)];
    t.k = k;
    t.trailingBlocks = 2 - k;
    t.diagSeconds = 0.001 * static_cast<double>(k + 1);
    t.trsmSeconds = 0.002;
    t.castSeconds = 0.0005;
    t.bcastSeconds = 0.003;
    t.gemmSeconds = 0.02 / static_cast<double>(k + 1);
  }
  const std::string path = "/tmp/hplmxp_test_reference.csv";
  saveReferenceTrace(path, trace);
  const auto loaded = loadReferenceTrace(path);
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(loaded[i].k, trace[i].k);
    EXPECT_EQ(loaded[i].trailingBlocks, trace[i].trailingBlocks);
    EXPECT_DOUBLE_EQ(loaded[i].gemmSeconds, trace[i].gemmSeconds);
    EXPECT_DOUBLE_EQ(iterationSeconds(loaded[i]),
                     iterationSeconds(trace[i]));
  }
  std::remove(path.c_str());
}

TEST(ReferenceTrace, LoadRejectsGarbage) {
  EXPECT_THROW(loadReferenceTrace("/nonexistent/ref.csv"), CheckError);
  const std::string path = "/tmp/hplmxp_bad_reference.csv";
  {
    std::ofstream f(path);
    f << "wrong,header\n1,2,3\n";
  }
  EXPECT_THROW(loadReferenceTrace(path), CheckError);
  std::remove(path.c_str());
}

TEST(ReferenceTrace, FunctionCoversRecordedRangeOnly) {
  std::vector<IterationTrace> trace(2);
  trace[0].gemmSeconds = 0.5;
  trace[1].gemmSeconds = 0.25;
  const auto ref = referenceFromTrace(trace);
  EXPECT_DOUBLE_EQ(ref(0), 0.5);
  EXPECT_DOUBLE_EQ(ref(1), 0.25);
  EXPECT_LT(ref(2), 0.0);   // beyond the recording: unmonitored
  EXPECT_LT(ref(-1), 0.0);
}

TEST(ReferenceTrace, DrivesAbortThroughRunHplai) {
  // Record a healthy run, then monitor a second run against a reference
  // scaled down 1000x: it must abort early and report it.
  HplaiConfig cfg;
  cfg.n = 128;
  cfg.b = 16;
  cfg.pr = 2;
  cfg.pc = 2;
  cfg.collectTrace = true;
  const HplaiResult healthy = runHplai(cfg);
  ASSERT_FALSE(healthy.trace.empty());

  auto tight = healthy.trace;
  for (auto& t : tight) {
    t.diagSeconds /= 1000.0;
    t.trsmSeconds /= 1000.0;
    t.castSeconds /= 1000.0;
    t.bcastSeconds /= 1000.0;
    t.gemmSeconds /= 1000.0;
  }
  auto monitor = std::make_shared<ProgressMonitor>(
      ProgressPolicy{.slowdownFactor = 1.5, .strikes = 2},
      referenceFromTrace(tight));
  cfg.progressCallback = [monitor](index_t k, double seconds) {
    return monitor->observe(k, seconds) == ProgressVerdict::kTerminate;
  };
  const HplaiResult watched = runHplai(cfg);
  EXPECT_TRUE(watched.aborted);
  EXPECT_FALSE(watched.converged);

  // With the true reference the same run completes.
  auto okMonitor = std::make_shared<ProgressMonitor>(
      ProgressPolicy{.slowdownFactor = 50.0, .strikes = 3},
      referenceFromTrace(healthy.trace));
  cfg.progressCallback = [okMonitor](index_t k, double seconds) {
    return okMonitor->observe(k, seconds) == ProgressVerdict::kTerminate;
  };
  const HplaiResult ok = runHplai(cfg);
  EXPECT_FALSE(ok.aborted);
  EXPECT_TRUE(ok.converged);
}

TEST(ProgressIntegration, HealthyRunCompletesWithMonitorAttached) {
  HplaiConfig cfg;
  cfg.n = 96;
  cfg.b = 16;
  cfg.pr = 2;
  cfg.pc = 2;
  simmpi::run(cfg.worldSize(), [&](simmpi::Comm& world) {
    DistContext ctx(world, cfg);
    ProblemGenerator gen(cfg.seed, cfg.n);
    Buffer<float> local(ctx.localRows() * ctx.localCols());
    const BlockCyclic& layout = ctx.layout();
    for (index_t lj = 0; lj < ctx.localCols() / cfg.b; ++lj) {
      for (index_t li = 0; li < ctx.localRows() / cfg.b; ++li) {
        gen.fillTile<float>(layout.globalBlockRow(ctx.myRow(), li) * cfg.b,
                            layout.globalBlockCol(ctx.myCol(), lj) * cfg.b,
                            cfg.b, cfg.b,
                            local.data() + li * cfg.b +
                                lj * cfg.b * ctx.localRows(),
                            ctx.localRows());
      }
    }
    BlasShim shim(cfg.vendor);
    DistLU lu(ctx, cfg, shim);
    ProgressMonitor monitor(ProgressPolicy{},
                            [](index_t) { return 3600.0; });  // generous
    lu.setProgressCallback([&](index_t k, double seconds) {
      return monitor.observe(k, seconds) == ProgressVerdict::kTerminate;
    });
    lu.factor(local.data(), ctx.localRows());
    EXPECT_FALSE(lu.aborted());
    EXPECT_EQ(lu.stepsCompleted(), cfg.n / cfg.b);
  });
}

TEST(SchedTimeline, SummaryComputesOverlapAndIdle) {
  // Synthetic two-lane timeline: a 1.0 s panel broadcast on lane 0 with a
  // GEMM covering [0.25, 0.75] on lane 1 — exactly half the comm interval
  // is hidden behind compute. A skipped record must be ignored.
  TaskGraph::ExecStats stats;
  stats.makespanSeconds = 1.0;
  stats.tasksRun = 2;
  stats.lanes.resize(2);
  stats.lanes[0].busySeconds = 1.0;
  stats.lanes[0].idleSeconds = 0.0;
  stats.lanes[1].busySeconds = 0.5;
  stats.lanes[1].idleSeconds = 0.5;

  TaskGraph::TaskRecord bcast;
  bcast.kind = TaskKind::kPanelBcast;
  bcast.beginSeconds = 0.0;
  bcast.endSeconds = 1.0;
  TaskGraph::TaskRecord gemm;
  gemm.kind = TaskKind::kGemm;
  gemm.lane = 1;
  gemm.beginSeconds = 0.25;
  gemm.endSeconds = 0.75;
  TaskGraph::TaskRecord skipped;
  skipped.kind = TaskKind::kGemm;
  skipped.skipped = true;
  skipped.beginSeconds = 0.0;
  skipped.endSeconds = 10.0;
  stats.records = {bcast, gemm, skipped};

  const trace::SchedTimelineSummary s =
      trace::summarizeSchedTimeline(stats);
  EXPECT_EQ(s.lanes, 2);
  EXPECT_DOUBLE_EQ(s.commSeconds, 1.0);
  EXPECT_DOUBLE_EQ(s.computeSeconds, 0.5);
  EXPECT_DOUBLE_EQ(s.overlappedCommSeconds, 0.5);
  EXPECT_DOUBLE_EQ(s.overlapFraction(), 0.5);
  EXPECT_DOUBLE_EQ(s.idleFraction(), 0.25);

  const std::string rendered = trace::renderSchedTimeline(s);
  EXPECT_NE(rendered.find("overlap fraction"), std::string::npos);
  EXPECT_NE(rendered.find("50.0 %"), std::string::npos);

  const auto kinds = trace::schedKindBreakdown(stats);
  ASSERT_EQ(kinds.size(), 2u);  // skipped record excluded
  EXPECT_EQ(kinds[0].kind, TaskKind::kPanelBcast);  // sorted by seconds
  EXPECT_EQ(kinds[1].kind, TaskKind::kGemm);
}

}  // namespace
}  // namespace hplmxp
