// Property tests for the checkpoint delta codec (util/delta_codec.h):
// decode(encode(x)) is bytewise x across payload shapes, sparse deltas
// compress, and CRC verification never passes a corrupted chunk.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "util/delta_codec.h"

namespace hplmxp::util {
namespace {

std::vector<std::uint8_t> randomBytes(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) {
    b = static_cast<std::uint8_t>(rng());
  }
  return v;
}

/// encode cur-vs-prev, decode onto a copy of prev, expect cur back.
void expectRoundTrip(const std::vector<std::uint8_t>& cur,
                     const std::vector<std::uint8_t>& prev,
                     const DeltaCodecConfig& cfg, const char* what) {
  const DeltaBlob blob =
      encodeDelta(cur.data(), prev.empty() ? nullptr : prev.data(),
                  cur.size(), cfg);
  EXPECT_EQ(blob.rawBytes, cur.size()) << what;
  std::vector<std::uint8_t> dst =
      prev.empty() ? std::vector<std::uint8_t>(cur.size(), 0) : prev;
  ASSERT_EQ(decodeDelta(blob, dst.data(), dst.size()),
            DeltaDecodeStatus::kOk)
      << what;
  EXPECT_EQ(std::memcmp(dst.data(), cur.data(), cur.size()), 0) << what;
}

TEST(Crc32, MatchesTheIeeeCheckVector) {
  const char* check = "123456789";
  EXPECT_EQ(crc32(check, 9), 0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
  // Chaining via the seed equals one pass over the concatenation.
  const std::uint32_t firstHalf = crc32(check, 4);
  EXPECT_EQ(crc32(check + 4, 5, firstHalf), 0xCBF43926u);
}

TEST(DeltaCodec, RoundTripsEveryPatternFamily) {
  for (const std::size_t elemSize : {std::size_t{2}, std::size_t{4}}) {
    for (const bool compress : {true, false}) {
      DeltaCodecConfig cfg;
      cfg.elemSize = elemSize;   // FP16 vs FP32 tile payloads
      cfg.compress = compress;
      cfg.chunkBytes = 1024;     // force multiple chunks on larger inputs
      const std::uint32_t salt =
          static_cast<std::uint32_t>(elemSize * 2 + (compress ? 1 : 0));

      // All-zero current and previous.
      expectRoundTrip(std::vector<std::uint8_t>(4096, 0),
                      std::vector<std::uint8_t>(4096, 0), cfg, "all-zero");
      // Dense random change against a random base.
      expectRoundTrip(randomBytes(8192, 11 + salt),
                      randomBytes(8192, 22 + salt), cfg, "dense-random");
      // Single-bit change: the sparsest non-trivial delta.
      {
        std::vector<std::uint8_t> prev = randomBytes(8192, 33 + salt);
        std::vector<std::uint8_t> cur = prev;
        cur[4097] ^= 0x20;
        expectRoundTrip(cur, prev, cfg, "single-bit");
      }
      // No previous generation (delta against the zero base).
      expectRoundTrip(randomBytes(3000, 44 + salt), {}, cfg, "no-prev");
      // Sizes that are not chunk- or element-aligned, including empty.
      for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                                  std::size_t{7}, std::size_t{1025}}) {
        expectRoundTrip(randomBytes(n, 55 + salt),
                        randomBytes(n, 66 + salt), cfg, "odd-size");
      }
    }
  }
}

TEST(DeltaCodec, SparseDeltasCompressAndDenseOnesNeverExplode) {
  DeltaCodecConfig cfg;
  const std::vector<std::uint8_t> prev = randomBytes(64 << 10, 7);
  std::vector<std::uint8_t> cur = prev;
  for (std::size_t i = 0; i < cur.size(); i += 4096) {
    cur[i] ^= 0x01;  // 16 changed bytes in 64 KiB
  }
  const DeltaBlob sparse =
      encodeDelta(cur.data(), prev.data(), cur.size(), cfg);
  EXPECT_LT(sparse.storedBytes(), sparse.rawBytes / 100);

  // A completely random delta is incompressible; the raw fallback caps the
  // stored size at raw + per-chunk headers.
  const std::vector<std::uint8_t> noise = randomBytes(64 << 10, 8);
  const DeltaBlob dense =
      encodeDelta(noise.data(), prev.data(), noise.size(), cfg);
  EXPECT_LE(dense.storedBytes(), dense.rawBytes + 9 * dense.chunks.size());
}

TEST(DeltaCodec, CompressOffStoresRawChunksWithCrcs) {
  DeltaCodecConfig cfg;
  cfg.compress = false;
  const std::vector<std::uint8_t> prev(32 << 10, 0);
  const std::vector<std::uint8_t> cur(32 << 10, 0);  // maximally sparse
  const DeltaBlob blob =
      encodeDelta(cur.data(), prev.data(), cur.size(), cfg);
  EXPECT_GE(blob.storedBytes(), blob.rawBytes);
  for (const DeltaChunk& c : blob.chunks) {
    EXPECT_FALSE(c.compressed);
    EXPECT_EQ(c.crc, crc32(c.payload.data(), c.payload.size()));
  }
}

TEST(DeltaCodec, CorruptedChunksNeverDecodeAsOk) {
  DeltaCodecConfig cfg;
  cfg.chunkBytes = 2048;
  const std::vector<std::uint8_t> prev = randomBytes(8192, 91);
  const std::vector<std::uint8_t> cur = randomBytes(8192, 92);
  const DeltaBlob clean =
      encodeDelta(cur.data(), prev.data(), cur.size(), cfg);
  ASSERT_GT(clean.chunks.size(), 1u);

  std::mt19937 rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    DeltaBlob blob = clean;
    auto& chunk = blob.chunks[rng() % blob.chunks.size()];
    ASSERT_FALSE(chunk.payload.empty());
    const std::size_t byte = rng() % chunk.payload.size();
    chunk.payload[byte] ^= static_cast<std::uint8_t>(1u << (rng() % 8));

    std::vector<std::uint8_t> dst = prev;
    const DeltaDecodeStatus status = decodeDelta(blob, dst.data(), dst.size());
    EXPECT_EQ(status, DeltaDecodeStatus::kCrcMismatch)
        << "trial " << trial << " byte " << byte;
    // Detection must leave the previous generation untouched (the fallback
    // ladder restores from it next).
    EXPECT_EQ(std::memcmp(dst.data(), prev.data(), prev.size()), 0);
  }

  // Truncation and size-field corruption are caught structurally even with
  // CRC verification disabled.
  DeltaBlob truncated = clean;
  truncated.chunks.pop_back();
  std::vector<std::uint8_t> dst = prev;
  EXPECT_EQ(decodeDelta(truncated, dst.data(), dst.size(), false),
            DeltaDecodeStatus::kMalformed);
  DeltaBlob resized = clean;
  resized.chunks[0].rawBytes += 4;
  EXPECT_EQ(decodeDelta(resized, dst.data(), dst.size(), false),
            DeltaDecodeStatus::kMalformed);
  EXPECT_EQ(std::memcmp(dst.data(), prev.data(), prev.size()), 0);
}

TEST(DeltaCodec, ExponentStablePayloadsCompressWell) {
  // The recovery-store workload: FP32 values drift by small relative
  // amounts between generations, so the XOR's high byte planes are ~zero.
  std::mt19937 rng(123);
  std::uniform_real_distribution<float> base(0.5f, 2.0f);
  std::uniform_real_distribution<float> drift(-1e-3f, 1e-3f);
  const std::size_t n = 16384;
  std::vector<float> prevF(n), curF(n);
  for (std::size_t i = 0; i < n; ++i) {
    prevF[i] = base(rng);
    curF[i] = prevF[i] * (1.0f + drift(rng));
  }
  DeltaCodecConfig cfg;
  const DeltaBlob blob = encodeDelta(
      reinterpret_cast<const std::uint8_t*>(curF.data()),
      reinterpret_cast<const std::uint8_t*>(prevF.data()),
      n * sizeof(float), cfg);
  EXPECT_LT(blob.storedBytes(), blob.rawBytes * 2 / 3);
  std::vector<float> dst = prevF;
  ASSERT_EQ(decodeDelta(blob, reinterpret_cast<std::uint8_t*>(dst.data()),
                        n * sizeof(float)),
            DeltaDecodeStatus::kOk);
  EXPECT_EQ(std::memcmp(dst.data(), curF.data(), n * sizeof(float)), 0);
}

}  // namespace
}  // namespace hplmxp::util
