// Device model and the Table II cross-platform dispatch shim.
#include <gtest/gtest.h>

#include <vector>

#include "device/device.h"
#include "device/shim.h"
#include "gen/matgen.h"

namespace hplmxp {
namespace {

TEST(Gcd, MemoryAccounting) {
  Gcd gcd(Vendor::kAmd, 1000);
  EXPECT_EQ(gcd.freeBytes(), 1000u);
  gcd.allocate(600);
  EXPECT_EQ(gcd.allocatedBytes(), 600u);
  EXPECT_TRUE(gcd.fits(400));
  EXPECT_FALSE(gcd.fits(401));
  EXPECT_THROW(gcd.allocate(401), CheckError);
  gcd.release(600);
  EXPECT_EQ(gcd.allocatedBytes(), 0u);
  EXPECT_THROW(gcd.release(1), CheckError);
}

TEST(Gcd, RaiiAllocation) {
  Gcd gcd(Vendor::kNvidia, 100);
  {
    DeviceAllocation a(gcd, 80);
    EXPECT_EQ(gcd.allocatedBytes(), 80u);
  }
  EXPECT_EQ(gcd.allocatedBytes(), 0u);
}

TEST(Gcd, OversubscriptionMirrorsNlCeiling) {
  // Summit V100: 16 GiB; a 61440^2 FP32 local matrix (~14 GiB) fits, a
  // 65536^2 one (16 GiB + panels) does not. This is the paper's N_L logic.
  const std::size_t v100 = 16ULL << 30;
  Gcd gcd(Vendor::kNvidia, v100);
  const std::size_t nlOk = 61440ULL * 61440ULL * 4ULL;
  const std::size_t nlTooBig = 66000ULL * 66000ULL * 4ULL;
  EXPECT_TRUE(gcd.fits(nlOk));
  EXPECT_FALSE(gcd.fits(nlTooBig));
}

TEST(Shim, TableIINames) {
  const BlasShim nv(Vendor::kNvidia);
  EXPECT_EQ(nv.routineNames().gemm, "cublasSgemmEx");
  EXPECT_EQ(nv.routineNames().trsm, "cublasStrsm");
  EXPECT_EQ(nv.routineNames().getrf, "cusolverDnSgetrf");
  const BlasShim amd(Vendor::kAmd);
  EXPECT_EQ(amd.routineNames().gemm, "rocblas_gemm_ex");
  EXPECT_EQ(amd.routineNames().trsm, "rocblas_strsm");
  EXPECT_EQ(amd.routineNames().getrf, "rocsolver_sgetrf");
}

TEST(Shim, NvidiaGetrfRequiresBufferSizeQuery) {
  // The cuSOLVER two-step protocol — the concrete API quirk that forced the
  // paper's non-HIP shim code.
  BlasShim shim(Vendor::kNvidia);
  ProblemGenerator gen(1, 32);
  std::vector<float> a(32 * 32);
  gen.fillTile<float>(0, 0, 32, 32, a.data(), 32);

  EXPECT_THROW(shim.getrf(32, a.data(), 32), CheckError);
  EXPECT_GT(shim.getrfBufferSize(32, 32), 0u);
  EXPECT_NO_THROW(shim.getrf(32, a.data(), 32));
  // The query is consumed: a second factorization needs a new one.
  EXPECT_THROW(shim.getrf(32, a.data(), 32), CheckError);
  // A query for the wrong size does not satisfy the protocol either.
  (void)shim.getrfBufferSize(16, 32);
  EXPECT_THROW(shim.getrf(32, a.data(), 32), CheckError);
}

TEST(Shim, AmdGetrfIsSingleCall) {
  BlasShim shim(Vendor::kAmd);
  ProblemGenerator gen(2, 32);
  std::vector<float> a(32 * 32);
  gen.fillTile<float>(0, 0, 32, 32, a.data(), 32);
  EXPECT_NO_THROW(shim.getrf(32, a.data(), 32));
  EXPECT_NO_THROW(shim.getrf(32, a.data(), 32));
}

TEST(Shim, BothVendorsComputeIdenticalResults) {
  // The shim dispatches both vendors to the same kernels: cross-platform
  // portability with bitwise-identical numerics in this substrate.
  ProblemGenerator gen(3, 64);
  std::vector<float> a1(64 * 64), a2;
  gen.fillTile<float>(0, 0, 64, 64, a1.data(), 64);
  a2 = a1;

  BlasShim nv(Vendor::kNvidia);
  (void)nv.getrfBufferSize(64, 64);
  nv.getrf(64, a1.data(), 64);

  BlasShim amd(Vendor::kAmd);
  amd.getrf(64, a2.data(), 64);

  for (std::size_t i = 0; i < a1.size(); ++i) {
    EXPECT_EQ(a1[i], a2[i]);
  }
}

TEST(Shim, CallCountsTrackUsage) {
  BlasShim shim(Vendor::kAmd);
  ProblemGenerator gen(4, 16);
  std::vector<float> a(16 * 16);
  gen.fillTile<float>(0, 0, 16, 16, a.data(), 16);
  shim.getrf(16, a.data(), 16);
  shim.trsm(blas::Side::kLeft, blas::Uplo::kLower, blas::Diag::kUnit, 16, 0,
            1.0f, a.data(), 16, a.data(), 16);
  std::vector<double> x(16, 1.0);
  shim.trsv(blas::Uplo::kLower, blas::Diag::kUnit, 16, a.data(), 16,
            x.data());
  EXPECT_EQ(shim.callCounts().getrf, 1);
  EXPECT_EQ(shim.callCounts().trsm, 1);
  EXPECT_EQ(shim.callCounts().trsv, 1);
  EXPECT_EQ(shim.callCounts().gemm, 0);
}

TEST(Vendor, Names) {
  EXPECT_EQ(toString(Vendor::kNvidia), "NVIDIA");
  EXPECT_EQ(toString(Vendor::kAmd), "AMD");
}

}  // namespace
}  // namespace hplmxp
