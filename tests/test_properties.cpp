// Cross-cutting property tests: monotonicity of the FP16 rounding, the
// statistical quality of the generator, special-value propagation through
// the kernels, and precision-loss bounds of the mixed factorization.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "blas/blas.h"
#include "blas/cast.h"
#include "core/single_solver.h"
#include "fp16/half.h"
#include "gen/matgen.h"
#include "lowp/scale.h"
#include "lowp/traits.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace hplmxp {
namespace {

TEST(Properties, HalfRoundingIsMonotone) {
  // f <= g implies half(f) <= half(g): rounding must never invert order.
  float prev = -70000.0f;
  float prevRounded = half16(prev).toFloat();
  for (int i = 1; i <= 20000; ++i) {
    const float f = -70000.0f + 7.0f * static_cast<float>(i);
    const float r = half16(f).toFloat();
    ASSERT_LE(prevRounded, r) << "f=" << f;
    prev = f;
    prevRounded = r;
  }
}

TEST(Properties, HalfRoundingIsIdempotent) {
  // Rounding an already-representable value changes nothing.
  for (std::uint32_t b = 0; b <= 0x7BFFu; b += 7) {
    const half16 h = half16::fromBits(static_cast<std::uint16_t>(b));
    ASSERT_EQ(half16(h.toFloat()).bits(), h.bits());
  }
}

TEST(Properties, HalfNegationIsExact) {
  for (float f : {0.0f, 1.0f, 0.333f, 1234.5f, 6.1e-5f, 1e-7f}) {
    EXPECT_EQ(half16(-f).bits() ^ 0x8000u, half16(f).bits());
  }
}

TEST(Properties, GeneratorUniformityByChiSquare) {
  // Off-diagonal entries should be uniform in [-0.5, 0.5): a 20-bucket
  // chi-square over 40000 entries must stay below a generous cutoff
  // (chi2_{19, 0.999} ~ 43.8).
  const index_t n = 200;
  ProblemGenerator gen(123, n);
  std::vector<index_t> buckets(20, 0);
  index_t total = 0;
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      if (i == j) {
        continue;
      }
      const double u = gen.entry(i, j) + 0.5;  // [0, 1)
      const auto b = static_cast<std::size_t>(u * 20.0);
      ++buckets[std::min<std::size_t>(b, 19)];
      ++total;
    }
  }
  const double expected = static_cast<double>(total) / 20.0;
  double chi2 = 0.0;
  for (index_t c : buckets) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 43.8) << "generator not uniform";
}

TEST(Properties, GeneratorRowsAreUncorrelated) {
  // Adjacent-row correlation of the LCG stream must be negligible.
  const index_t n = 400;
  ProblemGenerator gen(9, n);
  double sumXY = 0.0, sumX = 0.0, sumY = 0.0, sumX2 = 0.0, sumY2 = 0.0;
  for (index_t j = 0; j < n; ++j) {
    if (j == 100 || j == 101) {
      continue;  // skip diagonal-affected entries
    }
    const double x = gen.entry(100, j);
    const double y = gen.entry(101, j);
    sumXY += x * y;
    sumX += x;
    sumY += y;
    sumX2 += x * x;
    sumY2 += y * y;
  }
  const double m = static_cast<double>(n - 2);
  const double cov = sumXY / m - (sumX / m) * (sumY / m);
  const double vx = sumX2 / m - (sumX / m) * (sumX / m);
  const double vy = sumY2 / m - (sumY / m) * (sumY / m);
  EXPECT_LT(std::fabs(cov / std::sqrt(vx * vy)), 0.15);
}

TEST(Properties, GemmPropagatesSpecialValuesSanely) {
  // An infinity in A lands exactly in the affected row of C.
  const index_t n = 8;
  std::vector<float> a(static_cast<std::size_t>(n * n), 1.0f);
  std::vector<float> b(static_cast<std::size_t>(n * n), 1.0f);
  std::vector<float> c(static_cast<std::size_t>(n * n), 0.0f);
  a[3] = std::numeric_limits<float>::infinity();  // A(3, 0)
  blas::sgemm(blas::Trans::kNoTrans, blas::Trans::kNoTrans, n, n, n, 1.0f,
              a.data(), n, b.data(), n, 0.0f, c.data(), n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      const float v = c[static_cast<std::size_t>(i + j * n)];
      if (i == 3) {
        EXPECT_TRUE(std::isinf(v));
      } else {
        EXPECT_EQ(v, static_cast<float>(n));
      }
    }
  }
}

TEST(Properties, MixedFactorErrorShrinksWithPrecision) {
  // The FP16-panel factorization's deviation from the FP64 factorization
  // is an FP16-scale effect: it must exceed FP32 epsilon (mixed precision
  // is really in play) and stay within ~a few FP16 ulps relative.
  for (index_t n : {64, 128, 192}) {
    ProblemGenerator gen(n, n);
    std::vector<float> mixed(static_cast<std::size_t>(n * n));
    gen.fillTile<float>(0, 0, n, n, mixed.data(), n);
    factorMixedSingle(n, 32, mixed.data(), n, Vendor::kAmd);
    std::vector<double> exact(static_cast<std::size_t>(n * n));
    gen.fillTile<double>(0, 0, n, n, exact.data(), n);
    blas::dgetrfNoPiv(n, exact.data(), n);
    double worst = 0.0;
    for (std::size_t i = 0; i < mixed.size(); ++i) {
      const double denom = std::max(1.0, std::fabs(exact[i]));
      worst = std::max(worst, std::fabs(mixed[i] - exact[i]) / denom);
    }
    EXPECT_GT(worst, std::numeric_limits<float>::epsilon()) << "n=" << n;
    EXPECT_LT(worst, 64.0 * half16::epsilonUnit()) << "n=" << n;
  }
}

TEST(Properties, RefinementContractsGeometrically) {
  // Successive IR residuals shrink by a roughly constant factor (the
  // contraction rate of the FP16-perturbed iteration matrix).
  const index_t n = 192, b = 32;
  ProblemGenerator gen(5, n);
  std::vector<float> a(static_cast<std::size_t>(n * n));
  gen.fillTile<float>(0, 0, n, n, a.data(), n);
  factorMixedSingle(n, b, a.data(), n, Vendor::kAmd);

  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  std::vector<double> residuals;
  for (int iter = 0; iter < 4; ++iter) {
    // r = b - A x, dense FP64.
    std::vector<double> r(static_cast<std::size_t>(n));
    double rInf = 0.0;
    for (index_t i = 0; i < n; ++i) {
      double acc = gen.rhs(i);
      for (index_t j = 0; j < n; ++j) {
        acc -= gen.entry(i, j) * x[static_cast<std::size_t>(j)];
      }
      r[static_cast<std::size_t>(i)] = acc;
      rInf = std::max(rInf, std::fabs(acc));
    }
    residuals.push_back(rInf);
    blas::strsvMixed(blas::Uplo::kLower, blas::Diag::kUnit, n, a.data(), n,
                     r.data());
    blas::strsvMixed(blas::Uplo::kUpper, blas::Diag::kNonUnit, n, a.data(),
                     n, r.data());
    for (index_t i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] += r[static_cast<std::size_t>(i)];
    }
  }
  // Strictly decreasing with a strong contraction each step (until the
  // FP64 floor is hit).
  for (std::size_t i = 1; i < residuals.size(); ++i) {
    if (residuals[i - 1] < 1e-14) {
      break;  // already at the floor
    }
    EXPECT_LT(residuals[i], residuals[i - 1] * 1e-2)
        << "step " << i << ": " << residuals[i - 1] << " -> "
        << residuals[i];
  }
}

// ---------------------------------------------------------------------------
// Cast-path properties across the storage ladder. The pack/cast kernels
// are pure elementwise rounds (plus an order-free amax reduction in the
// scaled flavors), so their results must be bitwise independent of
// chunking and thread count and must match the scalar constructor.
// ---------------------------------------------------------------------------

template <typename TLow>
void castMatchesScalarRounding() {
  const index_t m = 37, n = 23, ldSrc = m + 5, ldDst = m + 2;
  std::vector<float> src(static_cast<std::size_t>(ldSrc * n));
  std::uint32_t s = 0xC0FFEE11u;
  for (auto& v : src) {
    s = s * 1664525u + 1013904223u;
    v = -2.0f + 4.0f * static_cast<float>(s >> 8) / 16777216.0f;
  }
  std::vector<TLow> dst(static_cast<std::size_t>(ldDst * n));
  ThreadPool wide(4);
  blas::castToLowp<TLow>(m, n, src.data(), ldSrc, dst.data(), ldDst, &wide);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      EXPECT_EQ(dst[static_cast<std::size_t>(i + j * ldDst)].bits(),
                TLow(src[static_cast<std::size_t>(i + j * ldSrc)]).bits())
          << "i=" << i << " j=" << j;
    }
  }
  // Transposing flavor: dst(j,i) = TLow(src(i,j)).
  std::vector<TLow> dstT(static_cast<std::size_t>((n + 3) * m));
  blas::transCastToLowp<TLow>(m, n, src.data(), ldSrc, dstT.data(), n + 3);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      EXPECT_EQ(dstT[static_cast<std::size_t>(j + i * (n + 3))].bits(),
                TLow(src[static_cast<std::size_t>(i + j * ldSrc)]).bits())
          << "i=" << i << " j=" << j;
    }
  }
  // Widening back is the exact toFloat of every stored element.
  std::vector<float> back(static_cast<std::size_t>(m * n));
  blas::lowpToFloat<TLow>(m, n, dst.data(), ldDst, back.data(), m);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      EXPECT_EQ(back[static_cast<std::size_t>(i + j * m)],
                dst[static_cast<std::size_t>(i + j * ldDst)].toFloat());
    }
  }
}

TEST(Properties, CastMatchesScalarRoundingAllRungs) {
  castMatchesScalarRounding<half16>();
  castMatchesScalarRounding<lowp::bfloat16>();
  castMatchesScalarRounding<lowp::fp8e4m3>();
  castMatchesScalarRounding<lowp::fp8e5m2>();
}

TEST(Properties, CastToHalfIsTheFp16Instantiation) {
  const index_t m = 41, n = 19;
  std::vector<float> src(static_cast<std::size_t>(m * n));
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = std::sin(0.37 * static_cast<double>(i)) * 3.0f;
  }
  std::vector<half16> viaLegacy(src.size()), viaTemplate(src.size());
  blas::castToHalf(m, n, src.data(), m, viaLegacy.data(), m);
  blas::castToLowp<half16>(m, n, src.data(), m, viaTemplate.data(), m);
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(viaLegacy[i].bits(), viaTemplate[i].bits());
  }
}

template <typename TLow>
void scaledCastProperties() {
  const index_t m = 53, n = 31;
  std::vector<float> src(static_cast<std::size_t>(m * n));
  std::uint32_t s = 0xDEADBEEFu;
  float amax = 0.0f;
  for (auto& v : src) {
    s = s * 1664525u + 1013904223u;
    // Values spanning far past the FP8 range so scaling must engage.
    v = (-0.5f + static_cast<float>(s >> 8) / 16777216.0f) * 5.0e4f;
    amax = std::max(amax, std::fabs(v));
  }

  std::vector<TLow> dst(src.size());
  const float scale =
      blas::castToLowpScaled<TLow>(m, n, src.data(), m, dst.data(), m);

  // The scale is the tile's amax run through lowp::tileScale: an exact
  // power of two landing amax/s in (max/4, max/2], so no element can
  // saturate.
  EXPECT_EQ(scale, lowp::tileScale(amax, TLow::maxFinite()));
  int e = 0;
  EXPECT_EQ(std::frexp(scale, &e), 0.5f);
  EXPECT_GT(amax / scale, TLow::maxFinite() / 4.0f);
  EXPECT_LE(amax / scale, TLow::maxFinite() / 2.0f);
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(dst[i].bits(), TLow(src[i] / scale).bits()) << "i=" << i;
    EXPECT_FALSE(dst[i].isNan());
    EXPECT_FALSE(dst[i].isInf());
  }

  // Thread-count invariance: the amax reduction is order-free, so scale
  // and stored bits are identical for any pool.
  ThreadPool serial(1);
  ThreadPool wide(4);
  std::vector<TLow> dst1(src.size()), dst4(src.size());
  const float s1 = blas::castToLowpScaled<TLow>(m, n, src.data(), m,
                                                dst1.data(), m, &serial);
  const float s4 = blas::castToLowpScaled<TLow>(m, n, src.data(), m,
                                                dst4.data(), m, &wide);
  EXPECT_EQ(s1, scale);
  EXPECT_EQ(s4, scale);
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(dst1[i].bits(), dst[i].bits());
    EXPECT_EQ(dst4[i].bits(), dst[i].bits());
  }

  // Transposing flavor: same scale, transposed placement.
  std::vector<TLow> dstT(src.size());
  const float sT = blas::transCastToLowpScaled<TLow>(m, n, src.data(), m,
                                                     dstT.data(), n);
  EXPECT_EQ(sT, scale);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      EXPECT_EQ(dstT[static_cast<std::size_t>(j + i * n)].bits(),
                dst[static_cast<std::size_t>(i + j * m)].bits());
    }
  }
}

TEST(Properties, ScaledCastAcrossFp8Rungs) {
  scaledCastProperties<lowp::fp8e4m3>();
  scaledCastProperties<lowp::fp8e5m2>();
}

TEST(Properties, ScaledCastZeroTileUsesUnitScale) {
  const index_t m = 8, n = 8;
  std::vector<float> src(static_cast<std::size_t>(m * n), 0.0f);
  std::vector<lowp::fp8e4m3> dst(src.size());
  const float s = blas::castToLowpScaled<lowp::fp8e4m3>(m, n, src.data(), m,
                                                        dst.data(), m);
  EXPECT_EQ(s, 1.0f);
  for (const auto& v : dst) {
    EXPECT_EQ(v.toFloat(), 0.0f);
  }
}

}  // namespace
}  // namespace hplmxp
