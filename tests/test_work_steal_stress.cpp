// Concurrency stress tests for the work-stealing deque and the task-graph
// engine, written to run under ThreadSanitizer (the CI thread-sanitize job
// builds and runs this file). The deque uses seq_cst atomics throughout
// precisely so TSan can model every ordering — any data race here is a
// real bug, not a fence-modelling artifact.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "simmpi/comm.h"
#include "simmpi/runtime.h"
#include "util/task_graph.h"
#include "util/thread_pool.h"
#include "util/work_steal.h"

namespace hplmxp {
namespace {

/// Deterministic per-thread RNG (SplitMix64).
struct Rng {
  std::uint64_t s;
  std::uint64_t next() {
    std::uint64_t x = (s += 0x9E3779B97F4A7C15ULL);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
  }
};

TEST(WorkStealStress, EveryPushedValueConsumedExactlyOnce) {
  // Owner pushes N values while interleaving pops; three thieves steal
  // concurrently with randomized yields. Every value must be consumed by
  // exactly one consumer — an ABA bug or a stale-slot read would show up
  // as a duplicate or a miss.
  constexpr int kValues = 20000;
  constexpr int kThieves = 3;
  WorkStealDeque<std::int32_t> deque(
      static_cast<std::size_t>(kValues));
  std::vector<std::atomic<int>> seen(static_cast<std::size_t>(kValues));
  for (auto& s : seen) {
    s.store(0);
  }
  std::atomic<bool> done{false};
  std::atomic<int> consumed{0};

  auto consume = [&](std::int32_t v) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, kValues);
    seen[static_cast<std::size_t>(v)].fetch_add(1);
    consumed.fetch_add(1);
  };

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&, t] {
      Rng rng{0xABCDEF00ULL + static_cast<std::uint64_t>(t)};
      std::int32_t v = 0;
      while (!done.load() || consumed.load() < kValues) {
        if (deque.trySteal(v)) {
          consume(v);
        } else if ((rng.next() & 7) == 0) {
          std::this_thread::yield();
        }
      }
    });
  }

  // Owner: push all values, popping a burst now and then so pop/steal
  // race on the last element (the CAS-contended path).
  Rng rng{0x5EED5EED5EEDULL};
  for (std::int32_t v = 0; v < kValues; ++v) {
    ASSERT_TRUE(deque.push(v));
    if ((rng.next() & 15) == 0) {
      std::int32_t got = 0;
      while (deque.tryPop(got)) {
        consume(got);
        if ((rng.next() & 3) == 0) {
          break;
        }
      }
    }
    if ((rng.next() & 63) == 0) {
      std::this_thread::yield();
    }
  }
  // Drain whatever the thieves have not taken.
  std::int32_t got = 0;
  while (deque.tryPop(got)) {
    consume(got);
  }
  done.store(true);
  for (std::thread& th : thieves) {
    th.join();
  }

  ASSERT_EQ(consumed.load(), kValues);
  for (int v = 0; v < kValues; ++v) {
    ASSERT_EQ(seen[static_cast<std::size_t>(v)].load(), 1)
        << "value " << v;
  }
}

TEST(WorkStealStress, OwnerPopAndStealRaceOnLastElement) {
  // Repeatedly race one owner pop against one thief steal over a
  // single-element deque: exactly one of them must win each round.
  constexpr int kRounds = 5000;
  WorkStealDeque<std::int32_t> deque(4);
  std::atomic<int> round{-1};
  std::atomic<int> winners{0};
  std::atomic<bool> stop{false};

  std::thread thief([&] {
    int lastRound = -1;
    std::int32_t v = 0;
    while (!stop.load()) {
      const int r = round.load();
      if (r != lastRound) {
        lastRound = r;
        if (deque.trySteal(v)) {
          winners.fetch_add(1);
        }
      } else {
        std::this_thread::yield();
      }
    }
  });

  for (int r = 0; r < kRounds; ++r) {
    ASSERT_TRUE(deque.push(r));
    round.store(r);
    std::int32_t v = 0;
    if (deque.tryPop(v)) {
      winners.fetch_add(1);
    }
    // Whether owner or thief won, the deque must be empty before the
    // next round begins (wait for a slow thief to finish its attempt).
    while (deque.sizeApprox() > 0) {
      std::this_thread::yield();
    }
  }
  stop.store(true);
  thief.join();
  ASSERT_EQ(winners.load(), kRounds);
}

TEST(WorkStealStress, TaskGraphParallelExecutionIsRaceFree) {
  // A randomized layered DAG executed on a real pool: every task bumps a
  // shared atomic and asserts all its predecessors retired first. Run
  // repeatedly so TSan sees many distinct interleavings of push / pop /
  // steal / retire.
  ThreadPool pool(4);
  for (int trial = 0; trial < 20; ++trial) {
    TaskGraph g;
    constexpr int kLayers = 8;
    constexpr int kWidth = 24;
    std::vector<std::atomic<int>> doneFlags(
        static_cast<std::size_t>(kLayers * kWidth));
    for (auto& f : doneFlags) {
      f.store(0);
    }
    std::vector<std::vector<TaskGraph::TaskId>> layers(kLayers);
    Rng rng{0xF00DULL + static_cast<std::uint64_t>(trial)};
    for (int l = 0; l < kLayers; ++l) {
      for (int w = 0; w < kWidth; ++w) {
        const int idx = l * kWidth + w;
        std::vector<int> preds;
        if (l > 0) {
          // 1-3 random predecessors from the previous layer.
          const int fan = 1 + static_cast<int>(rng.next() % 3);
          for (int f = 0; f < fan; ++f) {
            preds.push_back((l - 1) * kWidth +
                            static_cast<int>(rng.next() % kWidth));
          }
        }
        const TaskGraph::TaskId id =
            g.add(TaskKind::kGeneric, l, [idx, preds, &doneFlags] {
              for (const int p : preds) {
                // Relies on the retire edge's release/acquire ordering.
                if (doneFlags[static_cast<std::size_t>(p)].load() != 1) {
                  std::abort();  // predecessor not retired: ordering bug
                }
              }
              doneFlags[static_cast<std::size_t>(idx)].store(1);
            });
        layers[static_cast<std::size_t>(l)].push_back(id);
        if (l > 0) {
          for (const int p : preds) {
            g.addDep(layers[static_cast<std::size_t>(l - 1)]
                           [static_cast<std::size_t>(p % kWidth)],
                     id);
          }
        }
      }
    }
    const TaskGraph::ExecStats stats = g.execute(pool);
    ASSERT_EQ(stats.tasksRun, kLayers * kWidth);
    for (auto& f : doneFlags) {
      ASSERT_EQ(f.load(), 1);
    }
  }
}

TEST(WorkStealStress, MainLaneAndWorkersInterleaveRaceFree) {
  // Mix mainOnly tasks (comm stand-ins, strict FIFO on the caller) with
  // compute tasks the workers steal; the main lane alternates between
  // draining its FIFO and stealing compute — the production execution
  // shape of the dataflow LU.
  ThreadPool pool(4);
  for (int trial = 0; trial < 10; ++trial) {
    TaskGraph g;
    std::atomic<int> mainSeq{0};
    std::atomic<int> computeDone{0};
    constexpr int kSteps = 16;
    TaskGraph::TaskId prevMain = TaskGraph::kNoTask;
    std::vector<TaskGraph::TaskId> prevCompute;
    for (int k = 0; k < kSteps; ++k) {
      const TaskGraph::TaskId m = g.addMain(TaskKind::kPanelBcast, k,
                                            [k, &mainSeq] {
                                              // Mains run in submission
                                              // order on one thread.
                                              ASSERT_EQ(mainSeq.load(), k);
                                              mainSeq.store(k + 1);
                                            });
      if (prevMain != TaskGraph::kNoTask) {
        g.addDep(prevMain, m);
      }
      for (const TaskGraph::TaskId c : prevCompute) {
        g.addDep(c, m);
      }
      prevCompute.clear();
      for (int t = 0; t < 12; ++t) {
        const TaskGraph::TaskId c =
            g.add(TaskKind::kGemm, k, [&computeDone] {
              computeDone.fetch_add(1);
            });
        g.addDep(m, c);
        prevCompute.push_back(c);
      }
      prevMain = m;
    }
    const TaskGraph::ExecStats stats = g.execute(pool);
    ASSERT_EQ(mainSeq.load(), kSteps);
    ASSERT_EQ(computeDone.load(), kSteps * 12);
    ASSERT_FALSE(stats.cancelled);
  }
}

TEST(WorkStealStress, RequestTestPollLoopYieldsInsteadOfSpinning) {
  // Regression for the Request::test() busy-wait: rank 0 polls a pending
  // irecv in a tight test() loop while rank 1 sits on the payload. The
  // bounded spin-then-yield backoff must keep the loop cheap enough that
  // the run completes promptly, and test() must still flip to true.
  simmpi::run(2, [](simmpi::Comm& comm) {
    constexpr index_t kLen = 1024;
    if (comm.rank() == 0) {
      std::vector<float> buf(static_cast<std::size_t>(kLen), 0.0f);
      simmpi::Request req =
          comm.irecvBytes(1, 7, buf.data(), buf.size() * sizeof(float));
      std::uint64_t polls = 0;
      const auto start = std::chrono::steady_clock::now();
      while (!req.test()) {
        ++polls;
        const auto waited = std::chrono::steady_clock::now() - start;
        ASSERT_LT(waited, std::chrono::seconds(30)) << "poll loop hung";
      }
      EXPECT_GT(polls, 0u);  // we really did poll before completion
      for (index_t i = 0; i < kLen; ++i) {
        ASSERT_EQ(buf[static_cast<std::size_t>(i)],
                  static_cast<float>(i));
      }
    } else {
      // Let rank 0 enter its poll loop first.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      std::vector<float> buf(static_cast<std::size_t>(kLen));
      for (index_t i = 0; i < kLen; ++i) {
        buf[static_cast<std::size_t>(i)] = static_cast<float>(i);
      }
      comm.send(0, 7, buf.data(), kLen);
    }
  });
}

}  // namespace
}  // namespace hplmxp
