// Phi-accrual shard health detector: cold-start grace, phi growth under
// heartbeat silence, the healthy -> suspect -> quarantined -> probing ->
// healthy state machine, straggler-strike escalation, probe-quota routing,
// and bitwise determinism of the detector under identical call sequences.
//
// Everything runs on an explicit clock (the `now` arguments) — no sleeps,
// no wall time — which is the property that lets the fleetsim co-simulate
// this exact component on virtual time.
#include <gtest/gtest.h>

#include <vector>

#include "serve/fleet/health.h"

namespace hplmxp::serve {
namespace {

/// Default-config monitor warmed with `beats` heartbeats at the configured
/// 10ms cadence, starting at t=0. Returns the time of the last heartbeat.
double warmUp(ShardHealthMonitor& mon, index_t shard, int beats) {
  double t = 0.0;
  for (int i = 0; i < beats; ++i) {
    t = i * mon.config().heartbeatIntervalSeconds;
    mon.heartbeat(shard, t);
  }
  return t;
}

TEST(HealthConfigTest, ValidateRejectsDegenerateKnobs) {
  const auto reject = [](auto&& mutate) {
    HealthConfig cfg;
    mutate(cfg);
    EXPECT_THROW(cfg.validate(), CheckError);
  };
  reject([](HealthConfig& c) { c.heartbeatIntervalSeconds = 0.0; });
  reject([](HealthConfig& c) { c.windowSize = 1; });
  reject([](HealthConfig& c) { c.minStdDevSeconds = 0.0; });
  reject([](HealthConfig& c) { c.minSamples = 0; });
  reject([](HealthConfig& c) { c.suspectPhi = c.quarantinePhi; });
  reject([](HealthConfig& c) { c.quarantineDwellSeconds = -1.0; });
  reject([](HealthConfig& c) { c.probeQuota = 0; });
  reject([](HealthConfig& c) { c.stragglerStrikes = 0; });
  HealthConfig ok;
  EXPECT_NO_THROW(ok.validate());
}

TEST(ShardHealthMonitorTest, ColdStartCastsNoSuspicion) {
  ShardHealthMonitor mon(HealthConfig{}, 2);
  // No heartbeat ever: phi stays 0 no matter how late the clock reads —
  // an unseeded shard has no cadence to have violated.
  EXPECT_DOUBLE_EQ(mon.phi(0, 10.0), 0.0);
  EXPECT_EQ(mon.state(0, 10.0), HealthState::kHealthy);
  EXPECT_TRUE(mon.routable(0, 10.0));

  // Below minSamples the detector still withholds judgment.
  mon.heartbeat(0, 0.0);
  mon.heartbeat(0, 0.010);
  EXPECT_DOUBLE_EQ(mon.phi(0, 5.0), 0.0);
  EXPECT_EQ(mon.state(0, 5.0), HealthState::kHealthy);
}

TEST(ShardHealthMonitorTest, PhiGrowsMonotonicallyWithSilence) {
  ShardHealthMonitor mon(HealthConfig{}, 1);
  const double last = warmUp(mon, 0, 10);
  double prev = -1.0;
  bool crossedSuspect = false;
  bool crossedQuarantine = false;
  for (double gap = 0.010; gap <= 0.060; gap += 0.002) {
    const double p = mon.phi(0, last + gap);
    EXPECT_GE(p, prev) << "phi fell as the gap grew (gap " << gap << ")";
    prev = p;
    crossedSuspect = crossedSuspect || p >= mon.config().suspectPhi;
    crossedQuarantine = crossedQuarantine || p >= mon.config().quarantinePhi;
  }
  EXPECT_TRUE(crossedSuspect);
  EXPECT_TRUE(crossedQuarantine);
  // A fresh on-cadence heartbeat resets suspicion entirely.
  mon.heartbeat(0, last + 0.010);
  EXPECT_DOUBLE_EQ(mon.phi(0, last + 0.010), 0.0);
}

TEST(ShardHealthMonitorTest, SilenceWalksHealthySuspectQuarantined) {
  ShardHealthMonitor mon(HealthConfig{}, 1);
  const double last = warmUp(mon, 0, 10);
  // On cadence: healthy. ~3ms late: suspicious but not condemned.
  EXPECT_EQ(mon.state(0, last + 0.010), HealthState::kHealthy);
  EXPECT_EQ(mon.state(0, last + 0.013), HealthState::kSuspect);
  EXPECT_TRUE(mon.routable(0, last + 0.013));  // suspect still serves
  // A heartbeat while merely suspect walks straight back to healthy.
  mon.heartbeat(0, last + 0.014);
  EXPECT_EQ(mon.state(0, last + 0.014), HealthState::kHealthy);

  // Twice the cadence of silence: quarantined and unroutable.
  EXPECT_EQ(mon.state(0, last + 0.044), HealthState::kQuarantined);
  EXPECT_FALSE(mon.routable(0, last + 0.045));
  EXPECT_EQ(mon.quarantines(), 1u);
}

TEST(ShardHealthMonitorTest, QuarantineDwellsThenProbesThenHeals) {
  ShardHealthMonitor mon(HealthConfig{}, 1);
  const double last = warmUp(mon, 0, 10);
  const double tQuarantine = last + 0.040;
  ASSERT_EQ(mon.state(0, tQuarantine), HealthState::kQuarantined);

  // Inside the dwell window nothing routes there.
  const double dwell = mon.config().quarantineDwellSeconds;
  EXPECT_FALSE(mon.routable(0, tQuarantine + dwell * 0.5));

  // Past the dwell the shard half-opens: exactly probeQuota (=1) probe
  // is admitted, the rest stay blocked.
  const double tProbe = tQuarantine + dwell + 0.001;
  EXPECT_EQ(mon.state(0, tProbe), HealthState::kProbing);
  EXPECT_TRUE(mon.routable(0, tProbe));
  EXPECT_FALSE(mon.routable(0, tProbe + 0.0001));

  // The probe completing heals the shard — and re-seeds the arrival
  // clock, so the quarantine-sized gap cannot re-trip the detector.
  mon.onOutcome(0, /*success=*/true, tProbe + 0.002);
  EXPECT_EQ(mon.state(0, tProbe + 0.002), HealthState::kHealthy);
  EXPECT_TRUE(mon.routable(0, tProbe + 0.003));
  EXPECT_LT(mon.phi(0, tProbe + 0.004), mon.config().suspectPhi);
}

TEST(ShardHealthMonitorTest, FailedProbeGoesBackToQuarantine) {
  ShardHealthMonitor mon(HealthConfig{}, 1);
  const double last = warmUp(mon, 0, 10);
  const double tQuarantine = last + 0.040;
  ASSERT_EQ(mon.state(0, tQuarantine), HealthState::kQuarantined);
  const double tProbe =
      tQuarantine + mon.config().quarantineDwellSeconds + 0.001;
  ASSERT_EQ(mon.state(0, tProbe), HealthState::kProbing);
  ASSERT_TRUE(mon.routable(0, tProbe));

  mon.onOutcome(0, /*success=*/false, tProbe + 0.002);
  EXPECT_EQ(mon.state(0, tProbe + 0.002), HealthState::kQuarantined);
  EXPECT_FALSE(mon.routable(0, tProbe + 0.003));
  EXPECT_EQ(mon.quarantines(), 2u);
}

TEST(ShardHealthMonitorTest, StragglerStrikesEscalateWithoutSilence) {
  // The SlowRankMonitor path: the shard's heartbeats look fine (it is
  // alive and completing), but its grid keeps producing slow-rank
  // verdicts. Strikes alone must escalate it.
  ShardHealthMonitor mon(HealthConfig{}, 1);  // stragglerStrikes = 2
  const double last = warmUp(mon, 0, 10);

  mon.noteStraggler(0, last + 0.001);
  EXPECT_EQ(mon.state(0, last + 0.002), HealthState::kSuspect);
  // One healthy heartbeat clears the streak and the suspicion.
  mon.heartbeat(0, last + 0.010);
  EXPECT_EQ(mon.state(0, last + 0.011), HealthState::kHealthy);

  // Two consecutive strikes with no heartbeat in between: quarantined.
  mon.noteStraggler(0, last + 0.012);
  mon.noteStraggler(0, last + 0.013);
  EXPECT_EQ(mon.state(0, last + 0.014), HealthState::kQuarantined);
  EXPECT_EQ(mon.quarantines(), 1u);
  EXPECT_EQ(mon.stragglerReports(), 3u);
}

TEST(ShardHealthMonitorTest, ShardsAreJudgedIndependently) {
  ShardHealthMonitor mon(HealthConfig{}, 3);
  double t = 0.0;
  for (int i = 0; i < 10; ++i) {
    t = i * 0.010;
    mon.heartbeat(0, t);
    mon.heartbeat(1, t);
    mon.heartbeat(2, t);
  }
  // Only shard 1 goes silent; its peers keep pulsing.
  for (int i = 10; i < 15; ++i) {
    t = i * 0.010;
    mon.heartbeat(0, t);
    mon.heartbeat(2, t);
  }
  EXPECT_EQ(mon.state(1, t), HealthState::kQuarantined);
  EXPECT_EQ(mon.state(0, t), HealthState::kHealthy);
  EXPECT_EQ(mon.state(2, t), HealthState::kHealthy);
  EXPECT_TRUE(mon.routable(0, t));
  EXPECT_FALSE(mon.routable(1, t));
  EXPECT_EQ(mon.quarantines(), 1u);
}

TEST(ShardHealthMonitorTest, DisabledMonitorNeverIntervenes) {
  HealthConfig cfg;
  cfg.enabled = false;
  ShardHealthMonitor mon(cfg, 2);
  mon.heartbeat(0, 0.0);
  mon.noteStraggler(0, 1.0);
  mon.noteStraggler(0, 2.0);
  mon.onOutcome(0, false, 3.0);
  EXPECT_TRUE(mon.routable(0, 100.0));
  EXPECT_DOUBLE_EQ(mon.phi(0, 100.0), 0.0);
  EXPECT_EQ(mon.state(0, 100.0), HealthState::kHealthy);
  EXPECT_EQ(mon.quarantines(), 0u);
}

TEST(ShardHealthMonitorTest, SnapshotCarriesTheOpsPicture) {
  ShardHealthMonitor mon(HealthConfig{}, 2);
  const double last = warmUp(mon, 0, 8);
  const ShardHealthMonitor::ShardSnapshot healthy =
      mon.shardSnapshot(0, last + 0.005);
  EXPECT_EQ(healthy.shard, 0);
  EXPECT_EQ(healthy.state, HealthState::kHealthy);
  EXPECT_EQ(healthy.heartbeats, 8u);
  EXPECT_NEAR(healthy.lastHeartbeatAge, 0.005, 1e-12);
  EXPECT_NEAR(healthy.meanIntervalSeconds, 0.010, 1e-3);
  EXPECT_EQ(healthy.quarantines, 0u);

  const ShardHealthMonitor::ShardSnapshot dead =
      mon.shardSnapshot(0, last + 0.040);
  EXPECT_EQ(dead.state, HealthState::kQuarantined);
  EXPECT_GE(dead.phi, mon.config().quarantinePhi);
  EXPECT_EQ(dead.quarantines, 1u);

  ASSERT_EQ(mon.snapshot(last + 0.041).size(), 2u);
  EXPECT_EQ(mon.snapshot(last + 0.041)[1].heartbeats, 0u);

  EXPECT_STREQ(toString(HealthState::kHealthy), "healthy");
  EXPECT_STREQ(toString(HealthState::kSuspect), "suspect");
  EXPECT_STREQ(toString(HealthState::kQuarantined), "quarantined");
  EXPECT_STREQ(toString(HealthState::kProbing), "probing");
}

TEST(ShardHealthMonitorTest, IdenticalCallSequencesAreBitwiseIdentical) {
  // The detector feeds a deterministic co-simulation (golden trace
  // hashes), so its arithmetic must be a pure function of the call
  // sequence — identical inputs, bitwise-identical phi.
  const auto drive = [](ShardHealthMonitor& mon) {
    double t = 0.0;
    // Jittered but deterministic cadence.
    for (int i = 0; i < 40; ++i) {
      t += 0.008 + 0.004 * ((i * 7) % 3);
      mon.heartbeat(0, t);
    }
    return t;
  };
  ShardHealthMonitor a(HealthConfig{}, 1);
  ShardHealthMonitor b(HealthConfig{}, 1);
  const double ta = drive(a);
  const double tb = drive(b);
  ASSERT_EQ(ta, tb);
  for (double gap = 0.001; gap < 0.050; gap += 0.003) {
    EXPECT_EQ(a.phi(0, ta + gap), b.phi(0, tb + gap)) << "gap " << gap;
    EXPECT_EQ(a.state(0, ta + gap), b.state(0, tb + gap)) << "gap " << gap;
  }
}

}  // namespace
}  // namespace hplmxp::serve
