// Transposed TRSM variants (op(A) = A^T), validated by reconstruction:
// op(A) * X == alpha * B (left) and X * op(A) == alpha * B (right), over
// every side/uplo/diag combination.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "blas/gemm.h"
#include "blas/trsm.h"

namespace hplmxp {
namespace {

using blas::Diag;
using blas::Side;
using blas::Trans;
using blas::Uplo;

std::vector<double> triangular(index_t n, Uplo uplo, Diag diag,
                               unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> d(-0.4, 0.4);
  std::vector<double> a(static_cast<std::size_t>(n * n), 0.0);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      const bool inTri = uplo == Uplo::kLower ? i > j : i < j;
      if (inTri) {
        a[static_cast<std::size_t>(i + j * n)] =
            d(rng) / static_cast<double>(n);
      }
    }
    a[static_cast<std::size_t>(j + j * n)] =
        diag == Diag::kUnit ? 1.0 : 2.0 + d(rng);
  }
  return a;
}

/// Dense explicit op(A) with the diagonal resolved (unit -> 1).
std::vector<double> explicitOp(const std::vector<double>& a, index_t n,
                               Uplo uplo, Diag diag, Trans trans) {
  std::vector<double> full(static_cast<std::size_t>(n * n), 0.0);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      const bool inTri = uplo == Uplo::kLower ? i > j : i < j;
      double v = 0.0;
      if (inTri) {
        v = a[static_cast<std::size_t>(i + j * n)];
      } else if (i == j) {
        v = diag == Diag::kUnit ? 1.0
                                : a[static_cast<std::size_t>(i + i * n)];
      }
      if (trans == Trans::kNoTrans) {
        full[static_cast<std::size_t>(i + j * n)] = v;
      } else {
        full[static_cast<std::size_t>(j + i * n)] = v;
      }
    }
  }
  return full;
}

struct TransCase {
  Side side;
  Uplo uplo;
  Diag diag;
  index_t m, n;
  double alpha;
};

class TrsmTransTest : public ::testing::TestWithParam<TransCase> {};

TEST_P(TrsmTransTest, ReconstructsRhs) {
  const TransCase c = GetParam();
  const index_t tri = c.side == Side::kLeft ? c.m : c.n;
  const auto a = triangular(tri, c.uplo, c.diag, 23);
  std::mt19937 rng(29);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<double> b(static_cast<std::size_t>(c.m * c.n));
  for (auto& v : b) {
    v = d(rng);
  }
  auto x = b;
  blas::dtrsm(c.side, c.uplo, Trans::kTrans, c.diag, c.m, c.n, c.alpha,
              a.data(), tri, x.data(), c.m);

  const auto opA = explicitOp(a, tri, c.uplo, c.diag, Trans::kTrans);
  std::vector<double> back(static_cast<std::size_t>(c.m * c.n), 0.0);
  if (c.side == Side::kLeft) {
    blas::dgemm(Trans::kNoTrans, Trans::kNoTrans, c.m, c.n, c.m, 1.0,
                opA.data(), tri, x.data(), c.m, 0.0, back.data(), c.m);
  } else {
    blas::dgemm(Trans::kNoTrans, Trans::kNoTrans, c.m, c.n, c.n, 1.0,
                x.data(), c.m, opA.data(), tri, 0.0, back.data(), c.m);
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(back[i], c.alpha * b[i], 1e-10) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, TrsmTransTest,
    ::testing::Values(
        TransCase{Side::kLeft, Uplo::kLower, Diag::kUnit, 48, 20, 1.0},
        TransCase{Side::kLeft, Uplo::kLower, Diag::kNonUnit, 33, 17, 2.0},
        TransCase{Side::kLeft, Uplo::kUpper, Diag::kUnit, 40, 40, -1.0},
        TransCase{Side::kLeft, Uplo::kUpper, Diag::kNonUnit, 65, 9, 1.0},
        TransCase{Side::kRight, Uplo::kLower, Diag::kUnit, 20, 48, 1.0},
        TransCase{Side::kRight, Uplo::kLower, Diag::kNonUnit, 17, 33, 0.5},
        TransCase{Side::kRight, Uplo::kUpper, Diag::kUnit, 40, 40, 1.0},
        TransCase{Side::kRight, Uplo::kUpper, Diag::kNonUnit, 9, 65, -2.0}));

TEST(TrsmTrans, TransOfTransposeEqualsNoTransOfMirror) {
  // Solving with (A lower)^T must equal solving with the explicitly
  // transposed matrix as an upper triangle.
  const index_t n = 32;
  const auto a = triangular(n, Uplo::kLower, Diag::kNonUnit, 31);
  std::vector<double> at(static_cast<std::size_t>(n * n), 0.0);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      at[static_cast<std::size_t>(j + i * n)] =
          a[static_cast<std::size_t>(i + j * n)];
    }
  }
  std::vector<double> b1(static_cast<std::size_t>(n * 4), 1.0);
  for (std::size_t i = 0; i < b1.size(); ++i) {
    b1[i] = 0.01 * static_cast<double>(i % 37);
  }
  auto b2 = b1;
  blas::dtrsm(Side::kLeft, Uplo::kLower, Trans::kTrans, Diag::kNonUnit, n, 4,
              1.0, a.data(), n, b1.data(), n);
  blas::dtrsm(Side::kLeft, Uplo::kUpper, Trans::kNoTrans, Diag::kNonUnit, n,
              4, 1.0, at.data(), n, b2.data(), n);
  for (std::size_t i = 0; i < b1.size(); ++i) {
    EXPECT_NEAR(b1[i], b2[i], 1e-12);
  }
}

TEST(TrsmTrans, FloatVariantAgreesWithDouble) {
  const index_t n = 24;
  const auto ad = triangular(n, Uplo::kUpper, Diag::kNonUnit, 37);
  std::vector<float> af(ad.size());
  for (std::size_t i = 0; i < ad.size(); ++i) {
    af[i] = static_cast<float>(ad[i]);
  }
  std::vector<double> bd(static_cast<std::size_t>(n * 3), 0.5);
  std::vector<float> bf(bd.size(), 0.5f);
  blas::dtrsm(Side::kLeft, Uplo::kUpper, Trans::kTrans, Diag::kNonUnit, n, 3,
              1.0, ad.data(), n, bd.data(), n);
  blas::strsm(Side::kLeft, Uplo::kUpper, Trans::kTrans, Diag::kNonUnit, n, 3,
              1.0f, af.data(), n, bf.data(), n);
  for (std::size_t i = 0; i < bd.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(bf[i]), bd[i], 1e-5);
  }
}

}  // namespace
}  // namespace hplmxp
