// Sharded serve fabric: consistent-hash routing, the fleet-level factor
// index, shard health (break/drain, crash/failover, resurrection), the
// no-lost-answer ledger, and bitwise equivalence of fleet answers across
// shard counts. Also the rank-group isolation proof: concurrent
// simmpi::run invocations with independent fault injectors never see each
// other's faults, recovery, or replay-log state.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/single_solver.h"
#include "gen/matgen.h"
#include "serve/fleet/fleet.h"
#include "serve/json.h"
#include "simmpi/rank_group.h"

namespace hplmxp::serve {
namespace {

ProblemKey key(index_t n, index_t b, std::uint64_t seed) {
  ProblemKey k;
  k.n = n;
  k.b = b;
  k.seed = seed;
  return k;
}

SolveRequest request(const ProblemKey& k, std::uint64_t rhsSeed) {
  SolveRequest r;
  r.key = k;
  r.rhsSeed = rhsSeed;
  return r;
}

/// Ground truth for bitwise checks: the same pure single-device path every
/// shard runs (storage rung from the key, solve from the factors).
std::vector<double> soloSolution(const ProblemKey& k, std::uint64_t rhsSeed) {
  const ProblemGenerator gen(k.seed, k.n);
  const Factorization f =
      factorStorageSingle(gen, k.b, Vendor::kAmd, k.precision);
  std::vector<std::vector<double>> xs;
  (void)solveManyMixedSingle(f, gen, {rhsSeed}, xs);
  return xs[0];
}

void expectBitwise(const std::vector<double>& got,
                   const std::vector<double>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  EXPECT_EQ(0, std::memcmp(got.data(), want.data(),
                           sizeof(double) * want.size()))
      << what;
}

// ----------------------------------------------------------- HashRing --

TEST(HashRingTest, DeterministicAcrossInstances) {
  const HashRing a(3, 64);
  const HashRing b(3, 64);
  EXPECT_EQ(a.points(), 3 * 64);
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const ProblemKey k = key(64, 16, seed);
    EXPECT_EQ(a.route(k, nullptr), b.route(k, nullptr)) << "seed " << seed;
    EXPECT_EQ(HashRing::hashKey(k), HashRing::hashKey(k));
  }
}

TEST(HashRingTest, SpreadsKeysAcrossShards) {
  const HashRing ring(3, 64);
  std::vector<int> routed(3, 0);
  constexpr int kKeys = 300;
  for (std::uint64_t seed = 0; seed < kKeys; ++seed) {
    const index_t s = ring.route(key(64, 16, seed), nullptr);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 3);
    ++routed[static_cast<std::size_t>(s)];
  }
  for (int s = 0; s < 3; ++s) {
    // 64 virtual nodes keep the split far from degenerate.
    EXPECT_GT(routed[static_cast<std::size_t>(s)], kKeys / 10)
        << "shard " << s;
  }
}

TEST(HashRingTest, RemovingAShardOnlyMovesItsOwnKeys) {
  const HashRing ring(4, 64);
  const auto without1 = [](index_t s) { return s != 1; };
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const ProblemKey k = key(64, 16, seed);
    const index_t primary = ring.route(k, nullptr);
    const index_t rerouted = ring.route(k, without1);
    if (primary != 1) {
      // The consistent-hashing property drain/rebalance relies on.
      EXPECT_EQ(rerouted, primary) << "seed " << seed;
    } else {
      EXPECT_NE(rerouted, 1) << "seed " << seed;
      // The detour is the key's next distinct successor.
      const std::vector<index_t> succ = ring.successors(k, 2, nullptr);
      ASSERT_EQ(succ.size(), 2u);
      EXPECT_EQ(succ[0], 1);
      EXPECT_EQ(rerouted, succ[1]) << "seed " << seed;
    }
  }
}

TEST(HashRingTest, SuccessorsAreDistinctAndStartAtThePrimary) {
  const HashRing ring(4, 64);
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const ProblemKey k = key(64, 16, seed);
    const std::vector<index_t> succ = ring.successors(k, 4, nullptr);
    ASSERT_EQ(succ.size(), 4u);
    EXPECT_EQ(succ[0], ring.route(k, nullptr));
    EXPECT_EQ(std::set<index_t>(succ.begin(), succ.end()).size(), 4u);
  }
  EXPECT_TRUE(ring.successors(key(64, 16, 1), 0, nullptr).empty());
  // Unhealthy shards are skipped, not returned.
  const auto only2 = [](index_t s) { return s == 2; };
  const std::vector<index_t> one = ring.successors(key(64, 16, 1), 4, only2);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 2);
}

// ----------------------------------------------------- FleetCacheIndex --

TEST(FleetCacheIndexTest, PlacementsDedupAndEvictionsWithdraw) {
  FleetCacheIndex index;
  const ProblemKey k = key(64, 16, 7);
  EXPECT_EQ(index.noteRequest(k), 1u);
  EXPECT_EQ(index.noteRequest(k), 2u);
  EXPECT_EQ(index.requestCount(k), 2u);

  index.notePlacement(k, 0);
  index.notePlacement(k, 0);  // duplicate: ignored
  index.notePlacement(k, 2);
  EXPECT_EQ(index.placements(k), (std::vector<index_t>{0, 2}));
  FleetCacheIndex::Stats s = index.stats();
  EXPECT_EQ(s.placements, 2u);
  EXPECT_EQ(s.residentKeys, 1);
  EXPECT_EQ(s.replicatedKeys, 1);

  index.noteEviction(k, 0);
  index.noteEviction(k, 0);  // already gone: no double count
  EXPECT_EQ(index.placements(k), (std::vector<index_t>{2}));
  s = index.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.replicatedKeys, 0);
}

TEST(FleetCacheIndexTest, DropShardWithdrawsEverythingItHeld) {
  FleetCacheIndex index;
  const ProblemKey a = key(64, 16, 1);
  const ProblemKey b = key(64, 16, 2);
  index.notePlacement(a, 0);
  index.notePlacement(a, 1);
  index.notePlacement(b, 1);
  index.dropShard(1);
  EXPECT_EQ(index.placements(a), (std::vector<index_t>{0}));
  EXPECT_TRUE(index.placements(b).empty());
  const FleetCacheIndex::Stats s = index.stats();
  EXPECT_EQ(s.dropped, 2u);
  EXPECT_EQ(s.residentKeys, 1);
}

// --------------------------------------------------------- FleetEngine --

FleetConfig fleetConfig(index_t shards) {
  FleetConfig cfg;
  cfg.shards = shards;
  cfg.groupSize = 2;
  // Half-crashed grids must fail fast, not hang their peers.
  cfg.groupOptions.timeout = std::chrono::milliseconds(2000);
  return cfg;
}

struct Answer {
  RequestOutcome outcome;
  std::vector<double> solution;
};

/// Replays `requests` through a fresh fleet of `shards` shards, invoking
/// `chaos(fleet, i)` before submitting request i.
std::vector<Answer> replay(
    FleetConfig cfg, const std::vector<SolveRequest>& requests,
    const std::function<void(FleetEngine&, std::size_t)>& chaos = nullptr) {
  FleetEngine fleet(std::move(cfg));
  std::vector<FleetEngine::HandlePtr> handles;
  handles.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (chaos) {
      chaos(fleet, i);
    }
    handles.push_back(fleet.submit(requests[i]));
  }
  fleet.drain();
  const FleetReport report = fleet.report();
  EXPECT_EQ(report.submitted, requests.size());
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_EQ(report.doubleAnswered, 0u);
  EXPECT_TRUE(report.cacheLookupInvariant);
  std::vector<Answer> out;
  out.reserve(handles.size());
  for (const auto& h : handles) {
    out.push_back({h->wait(), h->solution()});
  }
  return out;
}

std::vector<SolveRequest> mixedTrace() {
  std::vector<SolveRequest> reqs;
  const std::vector<ProblemKey> keys = {key(32, 16, 11), key(32, 16, 12),
                                        key(48, 16, 13)};
  std::uint64_t rhs = 500;
  for (int round = 0; round < 3; ++round) {
    for (const ProblemKey& k : keys) {
      reqs.push_back(request(k, ++rhs));
    }
  }
  return reqs;
}

TEST(FleetEngineTest, ShardedReplayIsBitwiseIdenticalToSingleShard) {
  const std::vector<SolveRequest> reqs = mixedTrace();
  const std::vector<Answer> one = replay(fleetConfig(1), reqs);
  const std::vector<Answer> three = replay(fleetConfig(3), reqs);
  ASSERT_EQ(one.size(), reqs.size());
  ASSERT_EQ(three.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    ASSERT_EQ(one[i].outcome.status, RequestStatus::kCompleted)
        << one[i].outcome.error;
    ASSERT_EQ(three[i].outcome.status, RequestStatus::kCompleted)
        << three[i].outcome.error;
    expectBitwise(three[i].solution, one[i].solution, "1 vs 3 shards");
    // And both match the pure single-device path outright.
    expectBitwise(one[i].solution,
                  soloSolution(reqs[i].key, reqs[i].rhsSeed), "solo");
  }
}

TEST(FleetEngineTest, RepeatedKeysStickToTheirPlacementShard) {
  FleetConfig cfg = fleetConfig(3);
  FleetEngine fleet(cfg);
  const ProblemKey k = key(32, 16, 21);
  for (std::uint64_t rhs = 1; rhs <= 5; ++rhs) {
    const auto h = fleet.submit(request(k, rhs));
    ASSERT_EQ(h->wait().status, RequestStatus::kCompleted);
  }
  fleet.drain();
  const FleetReport report = fleet.report();
  // One factorization in the whole fleet: the index kept routing the key
  // to the shard already holding its factors.
  std::uint64_t factorCount = 0;
  for (const ShardReport& s : report.perShard) {
    factorCount += s.report.cache.factorCount;
  }
  EXPECT_EQ(factorCount, 1u);
  EXPECT_GE(report.affinityHits, 4u);
  EXPECT_EQ(fleet.cacheIndex().placements(k).size(), 1u);
}

TEST(FleetEngineTest, HotKeysSpreadAcrossReplicaShards) {
  FleetConfig cfg = fleetConfig(2);
  cfg.hotKeyRequests = 2;
  cfg.hotReplicas = 2;
  FleetEngine fleet(cfg);
  const ProblemKey k = key(32, 16, 22);
  const std::vector<double> want = soloSolution(k, 900);
  for (std::uint64_t i = 0; i < 8; ++i) {
    const auto h = fleet.submit(request(k, 900));
    ASSERT_EQ(h->wait().status, RequestStatus::kCompleted);
    expectBitwise(h->solution(), want, "hot replica answer");
  }
  fleet.drain();
  const FleetReport report = fleet.report();
  // Past the hot threshold the key round-robins, so both shards factor it.
  EXPECT_GT(report.perShard[0].routed, 0u);
  EXPECT_GT(report.perShard[1].routed, 0u);
  EXPECT_EQ(report.cacheIndex.replicatedKeys, 1);
  EXPECT_EQ(fleet.cacheIndex().placements(k).size(), 2u);
}

TEST(FleetEngineTest, BrokenShardDrainsAndReroutesUntilUnbroken) {
  FleetConfig cfg = fleetConfig(3);
  cfg.health.openSeconds = 3600.0;  // stays broken until ops intervene
  FleetEngine fleet(cfg);
  const ProblemKey k = key(32, 16, 23);
  const index_t primary = fleet.ring().route(k, nullptr);

  fleet.breakShard(primary);
  EXPECT_FALSE(fleet.shardRoutable(primary));

  const auto h = fleet.submit(request(k, 777));
  ASSERT_EQ(h->wait().status, RequestStatus::kCompleted);
  EXPECT_NE(h->wait().shard, primary);
  expectBitwise(h->solution(), soloSolution(k, 777), "rerouted answer");
  fleet.drain();

  FleetReport report = fleet.report();
  EXPECT_GE(report.reroutes, 1u);
  EXPECT_EQ(report.opsBreaks, 1u);
  EXPECT_GE(report.healthTrips, 1u);
  EXPECT_EQ(report.perShard[static_cast<std::size_t>(primary)].health,
            "broken");
  EXPECT_EQ(report.perShard[static_cast<std::size_t>(primary)].routed, 0u);

  fleet.unbreakShard(primary);
  EXPECT_TRUE(fleet.shardRoutable(primary));
  EXPECT_EQ(fleet.report().perShard[static_cast<std::size_t>(primary)].health,
            "healthy");
}

TEST(FleetEngineTest, OrganicCrashFailsOverThenResurrectionRebalances) {
  FleetConfig cfg = fleetConfig(2);
  cfg.shard.maxRetries = 0;  // first grid failure fails over immediately
  cfg.failoverLimit = 2;
  FleetEngine fleet(cfg);
  const ProblemKey k = key(32, 16, 24);
  const index_t primary = fleet.ring().route(k, nullptr);
  const index_t other = 1 - primary;
  const std::vector<double> want = soloSolution(k, 888);

  // The peer rank crashes receiving the factor replica: an organic grid
  // death mid-request, not an ops hook.
  simmpi::FaultConfig fc;
  fc.seed = 0xF1EE7;
  fc.crashRank = 1;
  fc.crashAtOp = 1;
  fleet.armShardFaults(primary,
                       std::make_shared<simmpi::FaultInjector>(fc, 2));

  const auto h = fleet.submit(request(k, 888));
  const RequestOutcome& o = h->wait();
  ASSERT_EQ(o.status, RequestStatus::kCompleted) << o.error;
  EXPECT_EQ(o.shard, other);
  EXPECT_GE(o.failovers, 1);
  expectBitwise(h->solution(), want, "failed-over answer");

  // The grid death latched: the shard is crashed, not just unlucky.
  EXPECT_FALSE(fleet.shardRoutable(primary));
  FleetReport report = fleet.report();
  EXPECT_EQ(report.crashes, 1u);
  EXPECT_GE(report.failovers, 1u);
  EXPECT_EQ(report.perShard[static_cast<std::size_t>(primary)].health,
            "crashed");
  EXPECT_EQ(report.perShard[static_cast<std::size_t>(primary)].groupCrashes,
            1u);

  // Resurrection: new generation, circuit closed, keyspace routes back.
  fleet.resurrectShard(primary);
  EXPECT_TRUE(fleet.shardRoutable(primary));
  // The failed-over key keeps its cache affinity (its factors now live on
  // the survivor), but fresh keys in the resurrected shard's keyspace
  // route back to it — and its cleared fault plan is gone.
  const auto h2 = fleet.submit(request(k, 889));
  ASSERT_EQ(h2->wait().status, RequestStatus::kCompleted)
      << h2->wait().error;
  EXPECT_EQ(h2->wait().shard, other);  // affinity to the live factors
  expectBitwise(h2->solution(), soloSolution(k, 889), "post-resurrection");
  ProblemKey fresh = k;
  for (std::uint64_t seed = 100;; ++seed) {
    fresh = key(32, 16, seed);
    if (fleet.ring().route(fresh, nullptr) == primary) {
      break;
    }
  }
  const auto h3 = fleet.submit(request(fresh, 890));
  ASSERT_EQ(h3->wait().status, RequestStatus::kCompleted)
      << h3->wait().error;
  EXPECT_EQ(h3->wait().shard, primary);  // rebalanced back, gen 2 grid
  expectBitwise(h3->solution(), soloSolution(fresh, 890), "rebalanced key");
  fleet.drain();

  report = fleet.report();
  EXPECT_EQ(report.resurrections, 1u);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_EQ(report.doubleAnswered, 0u);
  EXPECT_EQ(report.perShard[static_cast<std::size_t>(primary)].generation, 2);
}

TEST(FleetEngineTest, ChaoticReplayStaysBitwiseAndLosesNoAnswer) {
  const std::vector<SolveRequest> reqs = mixedTrace();
  const std::vector<Answer> clean = replay(fleetConfig(1), reqs);

  FleetConfig cfg = fleetConfig(3);
  cfg.failoverLimit = 2;
  const std::vector<Answer> chaotic = replay(
      cfg, reqs, [&](FleetEngine& fleet, std::size_t i) {
        if (i == reqs.size() / 3) {
          fleet.breakShard(0);
        } else if (i == 2 * reqs.size() / 3) {
          fleet.crashShard(1);
        } else if (i == reqs.size() - 1) {
          fleet.resurrectShard(1);
          fleet.unbreakShard(0);
        }
      });

  ASSERT_EQ(chaotic.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    ASSERT_EQ(chaotic[i].outcome.status, RequestStatus::kCompleted)
        << "request " << i << ": " << chaotic[i].outcome.error;
    expectBitwise(chaotic[i].solution, clean[i].solution, "chaotic replay");
  }
}

TEST(FleetEngineTest, WholeFleetDownAnswersStructurallyNotHangs) {
  FleetConfig cfg = fleetConfig(2);
  cfg.health.openSeconds = 3600.0;
  FleetEngine fleet(cfg);
  fleet.crashShard(0);
  fleet.breakShard(1);
  const auto h = fleet.submit(request(key(32, 16, 25), 1));
  const RequestOutcome& o = h->wait();
  EXPECT_EQ(o.status, RequestStatus::kFailed);
  EXPECT_NE(o.error.find("no healthy shard"), std::string::npos) << o.error;
  fleet.drain();
  const FleetReport report = fleet.report();
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_EQ(report.fleet.failed, 1u);
}

TEST(FleetEngineTest, ReportJsonCarriesTheCiGates) {
  FleetConfig cfg = fleetConfig(2);
  FleetEngine fleet(cfg);
  const auto h = fleet.submit(request(key(32, 16, 26), 5));
  ASSERT_EQ(h->wait().status, RequestStatus::kCompleted);
  fleet.drain();
  FleetReport report = fleet.report();
  report.trace = "unit";
  const JsonValue v = JsonValue::parse(report.toJson());
  EXPECT_EQ(v.get("trace").asString(), "unit");
  EXPECT_DOUBLE_EQ(v.get("shards").asNumber(), 2.0);
  EXPECT_DOUBLE_EQ(v.get("dropped").asNumber(), 0.0);
  EXPECT_DOUBLE_EQ(v.get("double_answered").asNumber(), 0.0);
  EXPECT_TRUE(v.get("cache_lookup_invariant").asBool());
  EXPECT_GE(v.get("fleet").get("total_ms").get("p99").asNumber(), 0.0);
  EXPECT_GE(v.get("fleet").get("cache_hit_rate").asNumber(), 0.0);
  EXPECT_GE(v.get("fleet").get("cache_lookups").asNumber(), 1.0);
  ASSERT_EQ(v.get("per_shard").asArray().size(), 2u);
  EXPECT_EQ(v.get("per_shard").asArray()[0].get("health").asString(),
            "healthy");
}

// ------------------------------------------------- gray-failure defense --

TEST(FleetEngineTest, HedgedReplayUnderGrayFailureLosesNoAnswer) {
  // The hedging race, stress-shaped: a slow-but-alive shard (the gray
  // failure) plus an aggressive hedge policy means nearly every request
  // runs as two racing copies. Whichever copy wins, the publish-once
  // Handle must keep the ledger exact — zero dropped, zero double
  // answered — and the answers bitwise right. Repeated to shake races.
  const std::vector<SolveRequest> reqs = mixedTrace();
  for (int rep = 0; rep < 3; ++rep) {
    FleetConfig cfg = fleetConfig(3);
    cfg.failoverLimit = 2;
    cfg.hedge.enabled = true;
    cfg.hedge.delayFactor = 0.25;  // hedge long before a stretched solve
    cfg.hedge.minDelaySeconds = 0.0005;
    cfg.hedge.budgetPerSecond = 1000.0;
    cfg.hedge.budgetBurst = 64.0;
    FleetEngine fleet(cfg);
    // Stretch the shard that owns the first key so the gray failure hits
    // live traffic no matter how the ring maps keys this run.
    fleet.slowShard(fleet.ring().route(reqs[0].key, nullptr), 25.0);

    std::vector<FleetEngine::HandlePtr> handles;
    handles.reserve(reqs.size());
    for (const SolveRequest& r : reqs) {
      handles.push_back(fleet.submit(r));
    }
    fleet.drain();
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      ASSERT_EQ(handles[i]->wait().status, RequestStatus::kCompleted)
          << "rep " << rep << " request " << i << ": "
          << handles[i]->wait().error;
      expectBitwise(handles[i]->solution(),
                    soloSolution(reqs[i].key, reqs[i].rhsSeed),
                    "hedged answer");
    }
    const FleetReport report = fleet.report();
    EXPECT_EQ(report.submitted, reqs.size());
    EXPECT_EQ(report.dropped, 0u) << "rep " << rep;
    EXPECT_EQ(report.doubleAnswered, 0u) << "rep " << rep;
    EXPECT_TRUE(report.cacheLookupInvariant);
    EXPECT_GT(report.hedgesIssued, 0u) << "rep " << rep;
  }
}

TEST(FleetEngineTest, StragglerVerdictsQuarantineAndDetourTheShard) {
  // The rankProgressHook path: slow-rank verdicts from a shard's grid are
  // straggler evidence against the whole shard. Enough strikes quarantine
  // it, and new routes detour to a replica instead of waiting on it.
  FleetConfig cfg = fleetConfig(2);
  cfg.slowRankPolicy.minLagSeconds = 0.002;
  cfg.slowRankPolicy.medianFactor = 4.0;
  cfg.slowRankPolicy.strikes = 2;
  // healthMonitor.stragglerStrikes defaults to 2: two verdicts condemn.
  FleetEngine fleet(cfg);

  // Rank 0 paces the grid (arrives last, waits ~0) while rank 1 idles.
  const std::vector<double> waits = {0.05, 0.0001};
  const auto hook = fleet.rankProgressHook(0);
  EXPECT_FALSE(hook(0, waits));  // strike one: observed, not terminal
  EXPECT_TRUE(hook(1, waits));   // strike two: verdict -> straggler report
  EXPECT_TRUE(fleet.reportRankWaits(0, 2, waits));  // second report

  EXPECT_EQ(fleet.healthMonitor().stragglerReports(), 2u);
  EXPECT_EQ(fleet.healthMonitor().quarantines(), 1u);
  // Quarantine deprioritizes, it does not hard-exclude: the breaker tier
  // still admits the shard (so the detector can never starve the fleet),
  // but preferred routing steers off it — witnessed by the detour below.
  EXPECT_TRUE(fleet.shardRoutable(0));

  // A key whose ring primary is the quarantined shard detours to its
  // replica — and still answers bitwise right.
  ProblemKey victim;
  for (std::uint64_t seed = 40;; ++seed) {
    victim = key(32, 16, seed);
    if (fleet.ring().route(victim, nullptr) == 0) {
      break;
    }
  }
  const auto h = fleet.submit(request(victim, 321));
  ASSERT_EQ(h->wait().status, RequestStatus::kCompleted) << h->wait().error;
  EXPECT_EQ(h->wait().shard, 1);
  expectBitwise(h->solution(), soloSolution(victim, 321), "detoured answer");
  fleet.drain();

  const FleetReport report = fleet.report();
  EXPECT_EQ(report.stragglerReports, 2u);
  EXPECT_EQ(report.quarantines, 1u);
  EXPECT_GE(report.healthDetours, 1u);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_EQ(report.perShard[0].healthState, "quarantined");
  EXPECT_GE(report.perShard[0].phi, 0.0);
  EXPECT_EQ(report.perShard[1].healthState, "healthy");
}

TEST(FleetEngineTest, ReportJsonCarriesGrayFailureFields) {
  FleetConfig cfg = fleetConfig(2);
  cfg.hedge.enabled = true;
  FleetEngine fleet(cfg);
  fleet.slowShard(0, 2.0);
  const auto h = fleet.submit(request(key(32, 16, 27), 9));
  ASSERT_EQ(h->wait().status, RequestStatus::kCompleted);
  fleet.drain();
  const FleetReport report = fleet.report();
  const JsonValue v = JsonValue::parse(report.toJson());
  EXPECT_DOUBLE_EQ(v.get("ops_slows").asNumber(), 1.0);
  EXPECT_GE(v.get("quarantines").asNumber(), 0.0);
  EXPECT_GE(v.get("health_detours").asNumber(), 0.0);
  EXPECT_GE(v.get("straggler_reports").asNumber(), 0.0);
  EXPECT_GE(v.get("hedges_issued").asNumber(), 0.0);
  EXPECT_GE(v.get("hedge_wins").asNumber(), 0.0);
  EXPECT_GE(v.get("hedge_wasted").asNumber(), 0.0);
  EXPECT_GE(v.get("hedge_denied").asNumber(), 0.0);
  const auto& shards = v.get("per_shard").asArray();
  ASSERT_EQ(shards.size(), 2u);
  double heartbeats = 0.0;
  for (const JsonValue& s : shards) {
    EXPECT_EQ(s.get("health_state").asString(), "healthy");
    EXPECT_EQ(s.get("breaker_state").asString(), "closed");
    EXPECT_GE(s.get("phi").asNumber(), 0.0);
    EXPECT_DOUBLE_EQ(s.get("quarantines").asNumber(), 0.0);
    heartbeats += s.get("heartbeats").asNumber();
  }
  // The completion fed the winner shard's heartbeat stream.
  EXPECT_GE(heartbeats, 1.0);
}

// ---------------------------------------- rank-group isolation (simmpi) --

/// One deterministic "grid job": a send/recv swap plus a barrier, returning
/// a value that proves both directions delivered intact.
int swapJob(simmpi::Comm& comm, int base) {
  int got = 0;
  const int mine = base + static_cast<int>(comm.rank());
  const index_t peer = 1 - comm.rank();
  if (comm.rank() == 0) {
    comm.send(peer, 40, &mine, 1);
    comm.recv(peer, 41, &got, 1);
  } else {
    comm.recv(peer, 40, &got, 1);
    comm.send(peer, 41, &mine, 1);
  }
  comm.barrier();
  return got;
}

TEST(RankGroupTest, ConcurrentGroupsKeepFaultsAndReplayLogsIsolated) {
  // Group A is armed to crash; group B runs clean with the replay log on.
  // They run concurrently: A's faults, death, and recovery state must be
  // invisible to B, and B's replay-log counters must count only B's ops.
  simmpi::FaultConfig fc;
  fc.seed = 0xAB1E;
  fc.crashRank = 1;
  fc.crashAtOp = 4;
  auto injA = std::make_shared<simmpi::FaultInjector>(fc, 2);
  auto injB = std::make_shared<simmpi::FaultInjector>(simmpi::FaultConfig{}, 2);

  simmpi::RunOptions optsA;
  optsA.faults = injA;
  optsA.timeout = std::chrono::milliseconds(2000);
  simmpi::RunOptions optsB;
  optsB.faults = injB;
  optsB.replayLog = true;

  simmpi::RankGroup groupA(0, 2, optsA);
  simmpi::RankGroup groupB(1, 2, optsB);

  std::atomic<int> aJobsBeforeCrash{0};
  std::atomic<bool> aCrashed{false};
  std::thread threadA([&] {
    for (int j = 0; j < 16; ++j) {
      try {
        groupA.runJob([&](simmpi::Comm& comm) { (void)swapJob(comm, 100); });
        aJobsBeforeCrash.fetch_add(1);
      } catch (...) {
        aCrashed.store(true);
        break;
      }
    }
  });

  constexpr int kJobsB = 12;
  std::atomic<int> bCorrect{0};
  std::thread threadB([&] {
    for (int j = 0; j < kJobsB; ++j) {
      groupB.runJob([&](simmpi::Comm& comm) {
        EXPECT_TRUE(comm.replayLogEnabled());
        const int got = swapJob(comm, 200 + 10 * j);
        const index_t peer = 1 - comm.rank();
        if (got == 200 + 10 * j + static_cast<int>(peer)) {
          bCorrect.fetch_add(1);
        }
        // Each job is its own world, so the log holds exactly this job's
        // ops for this rank — concurrent group A contributes nothing.
        const simmpi::ReplayCounters c = comm.replayCounters(comm.rank());
        EXPECT_EQ(c.sends, 1u);
        EXPECT_EQ(c.recvs, 1u);
        EXPECT_EQ(c.barriers, 1u);
      });
    }
  });
  threadA.join();
  threadB.join();

  // A crashed on schedule and latched dead...
  EXPECT_TRUE(aCrashed.load());
  EXPECT_FALSE(groupA.alive());
  EXPECT_EQ(injA->stats().crashes, 1u);
  const simmpi::RankGroup::Stats sa = groupA.stats();
  EXPECT_EQ(sa.crashes, 1u);
  EXPECT_EQ(sa.jobs,
            static_cast<std::uint64_t>(aJobsBeforeCrash.load()) + 1u);
  EXPECT_THROW(groupA.runJob([](simmpi::Comm&) {}), simmpi::GroupDownError);

  // ...while B saw none of it: every answer correct, no faults observed,
  // group alive, zero failures.
  EXPECT_EQ(bCorrect.load(), 2 * kJobsB);  // both ranks of every job
  EXPECT_TRUE(groupB.alive());
  const simmpi::RankGroup::Stats sb = groupB.stats();
  EXPECT_EQ(sb.jobs, static_cast<std::uint64_t>(kJobsB));
  EXPECT_EQ(sb.failures, 0u);
  const simmpi::FaultStats fsB = injB->stats();
  EXPECT_EQ(fsB.crashes, 0u);
  EXPECT_EQ(fsB.delays + fsB.transientFailures + fsB.bitflips + fsB.stalls,
            0u);

  // Restart rearms A on a fresh generation with the spent plan cleared.
  groupA.restart();
  EXPECT_TRUE(groupA.alive());
  EXPECT_EQ(groupA.generation(), 2);
  int recovered = 0;
  groupA.runJob(
      [&](simmpi::Comm& comm) { recovered = swapJob(comm, 300); });
  EXPECT_TRUE(recovered == 300 || recovered == 301);
}

TEST(RankGroupTest, OpsKillFailsFastUntilRestart) {
  simmpi::RankGroup group(7, 2);
  group.runJob([](simmpi::Comm& comm) { comm.barrier(); });
  group.kill("maintenance");
  EXPECT_FALSE(group.alive());
  EXPECT_THROW(group.runJob([](simmpi::Comm&) {}), simmpi::GroupDownError);
  group.restart();
  EXPECT_TRUE(group.alive());
  EXPECT_EQ(group.generation(), 2);
  group.runJob([](simmpi::Comm& comm) { comm.barrier(); });
  EXPECT_EQ(group.stats().jobs, 2u);  // killed-window attempt not counted
}

}  // namespace
}  // namespace hplmxp::serve
