// Regression tests for the GEMM hot-path allocation bug: the pre-rewrite
// kernel allocated its aPack/bPack vectors inside the parallel-for lambda
// (per task, per call). The rewritten kernel leases persistent pack arenas
// from the thread pool, so a steady-state GEMM must perform exactly zero
// heap allocations. This binary overrides the global allocator to count
// every operator new, which is why these tests live in their own
// executable.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "blas/blas.h"
#include "fp16/half.h"
#include "util/arena.h"
#include "util/thread_pool.h"

namespace {

std::atomic<long long> gAllocCount{0};
std::atomic<bool> gTracking{false};

void* countedAlloc(std::size_t size) {
  if (gTracking.load(std::memory_order_relaxed)) {
    gAllocCount.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size != 0 ? size : 1);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* countedAlignedAlloc(std::size_t size, std::size_t align) {
  if (gTracking.load(std::memory_order_relaxed)) {
    gAllocCount.fetch_add(1, std::memory_order_relaxed);
  }
  const std::size_t padded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, padded != 0 ? padded : align);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

/// Enables allocation counting for the enclosing scope.
struct TrackScope {
  TrackScope() { gTracking.store(true, std::memory_order_relaxed); }
  ~TrackScope() { gTracking.store(false, std::memory_order_relaxed); }
  [[nodiscard]] static long long count() {
    return gAllocCount.load(std::memory_order_relaxed);
  }
};

}  // namespace

void* operator new(std::size_t size) { return countedAlloc(size); }
void* operator new[](std::size_t size) { return countedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return countedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace hplmxp {
namespace {

using blas::Trans;

TEST(GemmAlloc, SteadyStateKernelsPerformZeroAllocations) {
  ThreadPool pool(3);  // 2 workers + the caller: helpers really get posted

  const index_t n = 160;
  const auto count = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  std::vector<float> af(count, 0.25f), bf(count, -0.5f), c(count, 1.0f);
  std::vector<double> ad(count, 0.25), bd(count, -0.5), cd(count, 1.0);
  std::vector<half16> ah(count, half16(0.25f)), bh(count, half16(-0.5f));
  std::vector<float> x(static_cast<std::size_t>(n), 1.0f);
  std::vector<float> y(static_cast<std::size_t>(n), 0.0f);

  auto runAll = [&] {
    blas::gemmMixed(Trans::kNoTrans, Trans::kTrans, n, n, n, -1.0f, ah.data(),
                    n, bh.data(), n, 1.0f, c.data(), n, &pool);
    blas::sgemm(Trans::kNoTrans, Trans::kNoTrans, n, n, n, 1.0f, af.data(), n,
                bf.data(), n, 0.5f, c.data(), n, &pool);
    blas::dgemm(Trans::kTrans, Trans::kNoTrans, n, n, n, 1.0, ad.data(), n,
                bd.data(), n, 0.5, cd.data(), n, &pool);
    blas::sgemv(Trans::kNoTrans, n, n, 1.0f, af.data(), n, x.data(), 0.0f,
                y.data(), &pool);
  };

  // Warmup: grows the pack arena to its high-water mark, creates the
  // scratch lease, and sizes the pool's task ring.
  for (int i = 0; i < 3; ++i) {
    runAll();
  }

  long long delta = 0;
  {
    TrackScope scope;
    const long long before = TrackScope::count();
    for (int i = 0; i < 10; ++i) {
      runAll();
    }
    delta = TrackScope::count() - before;
  }
  EXPECT_EQ(delta, 0)
      << "steady-state GEMM/GEMV must not touch the heap (pack buffers "
         "live in pool-owned arenas, helper tasks in fixed job slots)";
}

TEST(GemmAlloc, ArenaStopsGrowingAfterWarmup) {
  ThreadPool pool(2);
  const index_t n = 96;
  const auto count = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  std::vector<half16> a(count, half16(1.0f)), b(count, half16(0.5f));
  std::vector<float> c(count, 0.0f);

  blas::gemmMixed(Trans::kNoTrans, Trans::kTrans, n, n, n, -1.0f, a.data(), n,
                  b.data(), n, 1.0f, c.data(), n, &pool);
  const long long grown = Arena::totalGrowths();
  for (int i = 0; i < 8; ++i) {
    blas::gemmMixed(Trans::kNoTrans, Trans::kTrans, n, n, n, -1.0f, a.data(),
                    n, b.data(), n, 1.0f, c.data(), n, &pool);
  }
  EXPECT_EQ(Arena::totalGrowths(), grown);
  // Sequential invocations reuse one arena; they must not accumulate.
  EXPECT_EQ(pool.scratchArenaCount(), 1u);
}

TEST(GemmAlloc, ConcurrentGemmsLeaseDistinctArenas) {
  // lu_dist issues tile GEMMs from task-graph lanes against one shared
  // pool; each invocation must get its own pack arena, not race a shared
  // buffer.
  ThreadPool outer(4);
  ThreadPool inner(1);
  const index_t n = 64;
  const auto count = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  std::vector<float> a(count, 0.5f), b(count, 0.25f);
  std::vector<std::vector<float>> cs(4, std::vector<float>(count, 1.0f));

  outer.parallelForChunked(
      0, 4,
      [&](index_t lo, index_t hi) {
        for (index_t t = lo; t < hi; ++t) {
          blas::sgemm(Trans::kNoTrans, Trans::kNoTrans, n, n, n, 1.0f,
                      a.data(), n, b.data(), n, 0.0f, cs[t].data(), n,
                      &inner);
        }
      },
      4);

  for (int t = 1; t < 4; ++t) {
    EXPECT_EQ(cs[0], cs[t]);
  }
  EXPECT_GE(inner.scratchArenaCount(), 1u);
  EXPECT_LE(inner.scratchArenaCount(), 4u);
}

}  // namespace
}  // namespace hplmxp
