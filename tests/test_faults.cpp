// Chaos-harness tests: deterministic fault injection (simmpi/faults),
// comm timeouts/retry/aggregation, and the self-healing solver guards.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "blas/scan.h"
#include "cli/commands.h"
#include "core/dist_context.h"
#include "core/hplai.h"
#include "core/ir_dist.h"
#include "core/lu_dist.h"
#include "device/shim.h"
#include "gen/matgen.h"
#include "simmpi/faults.h"
#include "simmpi/runtime.h"
#include "trace/slow_node.h"
#include "util/buffer.h"
#include "util/timer.h"

namespace hplmxp {
namespace {

using simmpi::FaultConfig;
using simmpi::FaultDecision;
using simmpi::FaultInjector;
using simmpi::FaultPlan;

HplaiConfig baseConfig(index_t n, index_t b, index_t pr, index_t pc) {
  HplaiConfig cfg;
  cfg.n = n;
  cfg.b = b;
  cfg.pr = pr;
  cfg.pc = pc;
  cfg.seed = 2022;
  return cfg;
}

// ---------------------------------------------------------------------------
// Fault plan determinism
// ---------------------------------------------------------------------------

TEST(FaultPlan, IsDeterministicInSeedRankAndOp) {
  FaultConfig cfg;
  cfg.seed = 0xBEEF;
  cfg.delayProbability = 0.3;
  cfg.transientSendProbability = 0.2;
  cfg.bitflipProbability = 0.1;
  const FaultPlan a(cfg);
  const FaultPlan b(cfg);
  bool sawAny = false;
  for (index_t rank = 0; rank < 4; ++rank) {
    for (std::uint64_t op = 0; op < 256; ++op) {
      const FaultDecision da = a.decisionFor(rank, op);
      const FaultDecision db = b.decisionFor(rank, op);
      EXPECT_EQ(da.delayMicros, db.delayMicros);
      EXPECT_EQ(da.transientSendFailure, db.transientSendFailure);
      EXPECT_EQ(da.flipBit, db.flipBit);
      EXPECT_EQ(da.flipSelector, db.flipSelector);
      EXPECT_EQ(da.crash, db.crash);
      sawAny = sawAny || da.any();
    }
  }
  EXPECT_TRUE(sawAny) << "plan with 30%/20%/10% rates injected nothing";

  // A different seed must produce a different schedule somewhere.
  cfg.seed = 0xBEEF + 1;
  const FaultPlan c(cfg);
  bool differs = false;
  for (index_t rank = 0; rank < 4 && !differs; ++rank) {
    for (std::uint64_t op = 0; op < 256 && !differs; ++op) {
      const FaultDecision da = a.decisionFor(rank, op);
      const FaultDecision dc = c.decisionFor(rank, op);
      differs = da.delayMicros != dc.delayMicros ||
                da.transientSendFailure != dc.transientSendFailure ||
                da.flipBit != dc.flipBit;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, CrashAndStallScheduleAreExact) {
  FaultConfig cfg;
  cfg.crashRank = 2;
  cfg.crashAtOp = 10;
  cfg.stallRank = 1;
  cfg.stallEveryOps = 4;
  cfg.stallMicros = 777;
  const FaultPlan plan(cfg);
  EXPECT_FALSE(plan.decisionFor(2, 9).crash);
  EXPECT_TRUE(plan.decisionFor(2, 10).crash);
  EXPECT_TRUE(plan.decisionFor(2, 11).crash);
  EXPECT_FALSE(plan.decisionFor(0, 10).crash);
  EXPECT_EQ(plan.decisionFor(1, 8).delayMicros, 777);
  EXPECT_EQ(plan.decisionFor(1, 9).delayMicros, 0);
}

TEST(FaultInjector, AdvancesPerRankCountersIndependently) {
  FaultConfig cfg;
  cfg.delayProbability = 1.0;  // armed
  FaultInjector inj(cfg, 2);
  EXPECT_TRUE(inj.armed());
  (void)inj.next(0);
  (void)inj.next(0);
  (void)inj.next(1);
  EXPECT_EQ(inj.opsSeen(0), 2u);
  EXPECT_EQ(inj.opsSeen(1), 1u);
  // Unbound threads (rank -1) are never injected into.
  EXPECT_FALSE(inj.next(-1).any());
}

// ---------------------------------------------------------------------------
// Abnormal-value scans
// ---------------------------------------------------------------------------

TEST(ScanAbnormal, CleanPanelPasses) {
  std::vector<float> a(64 * 8, 0.25f);
  const blas::AbnormalScan s = blas::scanAbnormal(64, 8, a.data(), 64, 1e3);
  EXPECT_TRUE(s.clean());
  EXPECT_FALSE(static_cast<bool>(s));
  EXPECT_EQ(s.describe(), "clean");
}

TEST(ScanAbnormal, DetectsNonFiniteEvenWithoutLimit) {
  std::vector<double> a(16, 0.0);
  a[5] = std::numeric_limits<double>::infinity();
  a[9] = std::nan("");
  const blas::AbnormalScan s = blas::scanAbnormal(16, 1, a.data(), 16, 0.0);
  EXPECT_EQ(s.count, 2);
  EXPECT_EQ(s.firstRow, 5);
  EXPECT_TRUE(s.sawNonFinite);
}

TEST(ScanAbnormal, CatchesFp16ExponentBitFlip) {
  // A panel of benign HPL-AI-like values; flip bit 14 (the top exponent
  // bit, exactly what the SDC injector flips) of one element. 0.4375
  // becomes 0.4375 * 2^16 = 28672 — far beyond any legitimate panel entry.
  const index_t m = 32, n = 8;
  std::vector<half16> panel(static_cast<std::size_t>(m * n),
                            half16(0.4375f));
  const std::size_t victim = 3 * static_cast<std::size_t>(m) + 17;
  panel[victim] = half16::fromBits(
      static_cast<std::uint16_t>(panel[victim].bits() ^ 0x4000u));
  EXPECT_NEAR(panel[victim].toFloat(), 0.4375f * 65536.0f, 1.0f);

  const blas::AbnormalScan s =
      blas::scanAbnormal(m, n, panel.data(), m, /*magnitudeLimit=*/64.0);
  EXPECT_EQ(s.count, 1);
  EXPECT_EQ(s.firstRow, 17);
  EXPECT_EQ(s.firstCol, 3);
  EXPECT_GT(s.maxAbs, 1e4);
  EXPECT_FALSE(s.describe().empty());
}

// ---------------------------------------------------------------------------
// Comm-layer robustness
// ---------------------------------------------------------------------------

TEST(CommRobustness, RecvTimeoutRaisesStructuredError) {
  simmpi::RunOptions opts;
  opts.timeout = std::chrono::milliseconds(100);
  Timer wall;
  try {
    simmpi::run(
        2,
        [&](simmpi::Comm& world) {
          if (world.rank() == 0) {
            double v = 0.0;
            world.recv(1, /*tag=*/7, &v, 1);  // never sent
          }
          // Rank 1 exits without sending.
        },
        opts);
    FAIL() << "expected CommTimeoutError";
  } catch (const simmpi::CommTimeoutError& e) {
    EXPECT_EQ(e.op(), "recv");
    EXPECT_EQ(e.rank(), 0);
    EXPECT_EQ(e.peer(), 1);
    EXPECT_EQ(e.tag(), 7);
  }
  EXPECT_LT(wall.seconds(), 10.0) << "timeout did not bound the wait";
}

TEST(CommRobustness, TransientSendsAreRetriedWithIntactPayloads) {
  FaultConfig fault;
  fault.seed = 0x7A11;
  fault.transientSendProbability = 0.3;
  simmpi::RunOptions opts;
  opts.faults = std::make_shared<FaultInjector>(fault, 2);
  opts.timeout = std::chrono::milliseconds(5000);
  opts.sendMaxRetries = 14;
  opts.sendBackoff = std::chrono::microseconds(10);

  simmpi::run(
      2,
      [&](simmpi::Comm& world) {
        const index_t me = world.rank();
        const index_t peer = 1 - me;
        for (int round = 0; round < 200; ++round) {
          std::vector<double> out(16), in(16);
          for (int i = 0; i < 16; ++i) {
            out[static_cast<std::size_t>(i)] = me * 1000 + round + i * 0.5;
          }
          world.sendrecv(peer, round, out.data(), in.data(), 16);
          for (int i = 0; i < 16; ++i) {
            ASSERT_EQ(in[static_cast<std::size_t>(i)],
                      peer * 1000 + round + i * 0.5);
          }
        }
      },
      opts);

  const simmpi::FaultStats stats = opts.faults->stats();
  EXPECT_GT(stats.transientFailures, 0u);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_EQ(stats.crashes, 0u);
}

TEST(CommRobustness, ScheduledCrashSurfacesAsAggregateNotHang) {
  // Rank 3 crashes at its 16th op while everyone exchanges barriers and
  // broadcasts; peers must fail fast with CommTimeoutError and run() must
  // aggregate the whole picture instead of hanging ctest forever.
  FaultConfig fault;
  fault.crashRank = 3;
  fault.crashAtOp = 16;
  simmpi::RunOptions opts;
  opts.faults = std::make_shared<FaultInjector>(fault, 4);
  opts.timeout = std::chrono::milliseconds(300);

  Timer wall;
  try {
    simmpi::run(
        4,
        [&](simmpi::Comm& world) {
          std::vector<double> buf(64, 1.0);
          for (int round = 0; round < 50; ++round) {
            world.bcast(round % 4, buf.data(), 64);
            world.barrier();
          }
        },
        opts);
    FAIL() << "expected MultiRankError";
  } catch (const simmpi::MultiRankError& e) {
    ASSERT_GE(e.failures().size(), 2u);
    bool sawCrash = false;
    bool sawTimeout = false;
    for (const simmpi::RankFailure& f : e.failures()) {
      if (f.rank == 3 &&
          f.message.find("crash") != std::string::npos) {
        sawCrash = true;
      }
      if (f.message.find("comm timeout") != std::string::npos) {
        sawTimeout = true;
      }
    }
    EXPECT_TRUE(sawCrash) << e.what();
    EXPECT_TRUE(sawTimeout) << e.what();
  }
  EXPECT_LT(wall.seconds(), 30.0) << "crash was not bounded by the timeout";
  EXPECT_GE(opts.faults->stats().crashes, 1u);
}

TEST(CommRobustness, MultiRankErrorAggregatesDistinctFailures) {
  try {
    simmpi::run(3, [&](simmpi::Comm& world) {
      if (world.rank() == 1) {
        throw CheckError("rank-one failure");
      }
      if (world.rank() == 2) {
        throw CheckError("rank-two failure");
      }
    });
    FAIL() << "expected MultiRankError";
  } catch (const simmpi::MultiRankError& e) {
    ASSERT_EQ(e.failures().size(), 2u);
    EXPECT_EQ(e.failures()[0].rank, 1);
    EXPECT_EQ(e.failures()[1].rank, 2);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rank-one failure"), std::string::npos);
    EXPECT_NE(msg.find("rank-two failure"), std::string::npos);
  }
}

TEST(CommRobustness, SingleFailurePreservesOriginalType) {
  // Exactly one rank fails (its peer exits cleanly): run() must rethrow
  // the original exception type, not wrap it.
  EXPECT_THROW(simmpi::run(2,
                           [&](simmpi::Comm& world) {
                             if (world.rank() == 1) {
                               throw simmpi::InjectedCrashError("boom");
                             }
                           }),
               simmpi::InjectedCrashError);
}

// ---------------------------------------------------------------------------
// Network partitions (the gray-failure comm fault)
// ---------------------------------------------------------------------------

TEST(FaultPlan, PartitionWindowIsExactAndPure) {
  FaultConfig cfg;
  cfg.partitionBoundary = 2;
  cfg.partitionAtOp = 10;
  cfg.partitionOps = 5;
  EXPECT_TRUE(cfg.anyEnabled());
  const FaultPlan plan(cfg);
  // Cross-boundary sends drop exactly inside [atOp, atOp + ops).
  EXPECT_FALSE(plan.partitionedSend(0, 3, 9));
  EXPECT_TRUE(plan.partitionedSend(0, 3, 10));
  EXPECT_TRUE(plan.partitionedSend(3, 1, 14));  // both directions
  EXPECT_FALSE(plan.partitionedSend(0, 3, 15));  // healed
  // Same-side traffic always delivers: each half keeps working.
  EXPECT_FALSE(plan.partitionedSend(0, 1, 12));
  EXPECT_FALSE(plan.partitionedSend(2, 3, 12));
  // Unbound threads are never injected into.
  EXPECT_FALSE(plan.partitionedSend(-1, 3, 12));

  // partitionOps == 0: the split never heals.
  cfg.partitionOps = 0;
  const FaultPlan open(cfg);
  EXPECT_TRUE(open.partitionedSend(1, 2, 1000000));

  // Disabled plans drop nothing.
  EXPECT_FALSE(FaultPlan(FaultConfig{}).partitionedSend(0, 3, 12));

  // A boundary that splits off zero ranks is a config error.
  FaultConfig bad;
  bad.partitionBoundary = 0;
  EXPECT_THROW((FaultPlan(bad)), CheckError);
}

TEST(CommRobustness, PartitionSurfacesAsSymmetricTimeoutsWithProvenance) {
  // The grid splits down the middle mid-run: nothing crashes, both halves
  // stay alive, cross-half traffic silently vanishes. The aggregate must
  // read as a partition (boundary + drop count), not as dead ranks —
  // that provenance is what keeps the cascade diagnosable.
  FaultConfig fault;
  fault.partitionBoundary = 2;
  fault.partitionAtOp = 8;
  fault.partitionOps = 0;  // never heals
  simmpi::RunOptions opts;
  opts.faults = std::make_shared<FaultInjector>(fault, 4);
  opts.timeout = std::chrono::milliseconds(300);

  Timer wall;
  try {
    simmpi::run(
        4,
        [&](simmpi::Comm& world) {
          std::vector<double> buf(16, 1.0);
          for (int round = 0; round < 50; ++round) {
            world.bcast(round % 4, buf.data(), 16);
            world.barrier();
          }
        },
        opts);
    FAIL() << "expected MultiRankError";
  } catch (const simmpi::MultiRankError& e) {
    EXPECT_TRUE(e.partitioned()) << e.what();
    EXPECT_EQ(e.partitionBoundary(), 2);
    EXPECT_GT(e.partitionDrops(), 0u);
    ASSERT_GE(e.failures().size(), 2u);
    for (const simmpi::RankFailure& f : e.failures()) {
      // Pure timeout cascade: no rank crashed, every failure is a wait.
      EXPECT_NE(f.message.find("comm timeout"), std::string::npos)
          << "rank " << f.rank << ": " << f.message;
    }
    EXPECT_NE(std::string(e.what()).find("network partition"),
              std::string::npos);
  }
  EXPECT_LT(wall.seconds(), 30.0) << "partition was not bounded";
  EXPECT_GT(opts.faults->stats().partitionDrops, 0u);
  EXPECT_EQ(opts.faults->stats().crashes, 0u);
}

TEST(FaultScenario, PartitionScenarioSplitsTheGridDownTheMiddle) {
  const FaultConfig cfg = simmpi::faultScenario("partition", 42, 4);
  EXPECT_EQ(cfg.partitionBoundary, 2);
  EXPECT_EQ(cfg.partitionAtOp, 32u);
  EXPECT_EQ(cfg.partitionOps, 64u);
  EXPECT_TRUE(cfg.anyEnabled());
  const std::vector<std::string> known = simmpi::knownFaultScenarios();
  EXPECT_NE(std::find(known.begin(), known.end(), "partition"), known.end());
}

TEST(Request, WaitIsIdempotentAndTestPolls) {
  simmpi::run(2, [&](simmpi::Comm& world) {
    if (world.rank() == 0) {
      double v = 0.0;
      simmpi::Request req = world.irecvBytes(1, 5, &v, sizeof(v));
      // Poll until the (deliberately delayed) send lands.
      while (!req.test()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      EXPECT_EQ(v, 42.0);
      req.wait();  // idempotent after test() completed it
      EXPECT_TRUE(req.test());
      EXPECT_EQ(v, 42.0);
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      const double v = 42.0;
      world.send(0, 5, &v, 1);
    }
  });
}

TEST(Request, ConcurrentWaitersAllReturn) {
  simmpi::run(2, [&](simmpi::Comm& world) {
    if (world.rank() == 0) {
      std::vector<double> buf(8, 0.0);
      simmpi::Request req =
          world.irecvBytes(1, 9, buf.data(), 8 * sizeof(double));
      std::atomic<int> done{0};
      std::thread a([&] {
        req.wait();
        done.fetch_add(1);
      });
      std::thread b([&] {
        req.wait();
        done.fetch_add(1);
      });
      a.join();
      b.join();
      EXPECT_EQ(done.load(), 2);
      EXPECT_EQ(buf[7], 7.5);
    } else {
      std::vector<double> buf(8);
      for (int i = 0; i < 8; ++i) {
        buf[static_cast<std::size_t>(i)] = i + 0.5;
      }
      world.send(0, 9, buf.data(), 8);
    }
  });
}

// ---------------------------------------------------------------------------
// Self-healing solver guards
// ---------------------------------------------------------------------------

TEST(SolverGuards, InjectedSdcBitFlipIsDetectedBeforeVerification) {
  // Aggressive bit-flip plan targeting bulk panel traffic: the FP16 panel
  // guard must catch the corruption during factorization and fail fast
  // with a structured error instead of silently failing verification.
  HplaiConfig cfg = baseConfig(128, 32, 2, 2);
  cfg.guardPanels = true;
  cfg.lookahead = false;
  FaultConfig fault;
  fault.seed = 0x5DC;
  fault.bitflipProbability = 0.25;
  fault.bitflipMinBytes = 1024;  // panels/diag blocks, not control traffic
  simmpi::RunOptions opts;
  opts.faults = std::make_shared<FaultInjector>(fault, cfg.worldSize());
  opts.timeout = std::chrono::milliseconds(2000);

  bool detected = false;
  try {
    simmpi::run(
        cfg.worldSize(),
        [&](simmpi::Comm& world) { (void)runHplaiOnComm(world, cfg); },
        opts);
  } catch (const blas::AbnormalValueError& e) {
    detected = std::string(e.what()).find("corrupted") != std::string::npos;
  } catch (const simmpi::MultiRankError& e) {
    // The detecting rank throws; its peers time out. Either way the guard
    // must be the root cause in the aggregate.
    detected =
        std::string(e.what()).find("corrupted") != std::string::npos;
  }
  EXPECT_TRUE(detected) << "bit flips were not detected by the guards";
  EXPECT_GT(opts.faults->stats().bitflips, 0u);
}

TEST(SolverGuards, CleanRunWithGuardsStaysConverged) {
  HplaiConfig cfg = baseConfig(96, 16, 2, 2);
  cfg.guardPanels = true;
  const HplaiResult r = runHplai(cfg);
  EXPECT_TRUE(r.converged);
  EXPECT_FALSE(r.fellBackToGmres);
}

TEST(SolverGuards, IrDivergenceFallsBackToGmresAndConverges) {
  // Corrupt the factors so classical IR diverges (negated U diagonal makes
  // the stationary error operator's spectral radius ~2) while the GMRES
  // refiner — which only needs the preconditioner to be invertible —
  // still converges to the FP64 threshold. The divergence guard must
  // detect the growth and self-heal by switching refiners.
  const index_t n = 64, b = 16;
  HplaiConfig cfg = baseConfig(n, b, 1, 1);
  cfg.maxIrIterations = 40;
  cfg.gmresRestart = 64;  // full GMRES: convergence independent of M
  cfg.irDivergenceStrikes = 3;
  simmpi::run(1, [&](simmpi::Comm& world) {
    DistContext ctx(world, cfg);
    ProblemGenerator gen(cfg.seed, n);
    Buffer<float> local(n * n);
    gen.fillTile<float>(0, 0, n, n, local.data(), n);
    BlasShim shim(cfg.vendor);
    DistLU lu(ctx, cfg, shim);
    lu.factor(local.data(), n);
    for (index_t i = 0; i < n; i += 2) {
      local[i + i * n] = -local[i + i * n];  // corrupt U's diagonal
    }

    std::vector<double> x(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] = gen.rhs(i) / gen.entry(i, i);
    }
    DistIR ir(ctx, cfg, gen);
    const IrOutcome out = ir.refine(local.data(), n, x);
    EXPECT_TRUE(out.fellBack) << "divergence guard did not trip";
    EXPECT_TRUE(out.converged) << "GMRES fallback did not converge";
    EXPECT_LT(out.residualInf, out.threshold);
  });
}

TEST(SolverGuards, DivergenceGuardDisabledKeepsClassicBehavior) {
  const index_t n = 64, b = 16;
  HplaiConfig cfg = baseConfig(n, b, 1, 1);
  cfg.maxIrIterations = 10;
  cfg.irDivergenceStrikes = 0;  // guard off: IR just fails to converge
  simmpi::run(1, [&](simmpi::Comm& world) {
    DistContext ctx(world, cfg);
    ProblemGenerator gen(cfg.seed, n);
    Buffer<float> local(n * n);
    gen.fillTile<float>(0, 0, n, n, local.data(), n);
    BlasShim shim(cfg.vendor);
    DistLU lu(ctx, cfg, shim);
    lu.factor(local.data(), n);
    for (index_t i = 0; i < n; i += 2) {
      local[i + i * n] = -local[i + i * n];
    }
    std::vector<double> x(static_cast<std::size_t>(n), 0.0);
    DistIR ir(ctx, cfg, gen);
    const IrOutcome out = ir.refine(local.data(), n, x);
    EXPECT_FALSE(out.fellBack);
    EXPECT_FALSE(out.converged);
  });
}

// ---------------------------------------------------------------------------
// Slow-rank detection
// ---------------------------------------------------------------------------

TEST(SlowRank, MonitorFlagsThePersistentOutlier) {
  SlowRankMonitor monitor(4, SlowRankPolicy{.minLagSeconds = 0.002,
                                            .medianFactor = 4.0,
                                            .strikes = 3});
  // Rank 2 is the pacing rank: it arrives last (waits ~0) while the
  // others idle 50 ms.
  const std::vector<double> waits = {0.05, 0.048, 0.0001, 0.052};
  EXPECT_FALSE(monitor.observe(0, waits));
  EXPECT_FALSE(monitor.observe(1, waits));
  EXPECT_TRUE(monitor.observe(2, waits));
  EXPECT_TRUE(monitor.shouldTerminate());
  ASSERT_EQ(monitor.slowRanks().size(), 1u);
  EXPECT_EQ(monitor.slowRanks()[0], 2);
  EXPECT_GT(monitor.maxLagSeconds()[2], 0.04);
}

TEST(SlowRank, MonitorIgnoresNoiseAndResetsStreaks) {
  SlowRankMonitor monitor(4, SlowRankPolicy{.minLagSeconds = 0.002,
                                            .medianFactor = 4.0,
                                            .strikes = 2});
  const std::vector<double> healthy = {0.0001, 0.0002, 0.00015, 0.0001};
  const std::vector<double> rank1Slow = {0.05, 0.0001, 0.048, 0.052};
  EXPECT_FALSE(monitor.observe(0, rank1Slow));  // one strike
  EXPECT_FALSE(monitor.observe(1, healthy));    // streak resets
  EXPECT_FALSE(monitor.observe(2, rank1Slow));
  EXPECT_FALSE(monitor.shouldTerminate());
  EXPECT_TRUE(monitor.slowRanks().empty());
}

TEST(SlowRank, StalledRankIsDetectedMidRunAndRunTerminates) {
  // End to end: a deterministically stalled rank must be isolated by the
  // barrier-wait gather and terminate the run early (Sec. VI-B policy).
  HplaiConfig cfg = baseConfig(256, 32, 2, 2);
  cfg.lookahead = false;
  auto monitor = std::make_shared<SlowRankMonitor>(
      cfg.worldSize(), SlowRankPolicy{.minLagSeconds = 0.005,
                                      .medianFactor = 4.0,
                                      .strikes = 2});
  cfg.rankProgressCallback =
      [monitor](index_t k, const std::vector<double>& waits) {
        return monitor->observe(k, waits);
      };

  FaultConfig fault;
  fault.stallRank = 2;
  fault.stallEveryOps = 2;
  fault.stallMicros = 30000;
  simmpi::RunOptions opts;
  opts.faults = std::make_shared<FaultInjector>(fault, cfg.worldSize());

  HplaiResult result;
  simmpi::run(
      cfg.worldSize(),
      [&](simmpi::Comm& world) {
        HplaiResult r = runHplaiOnComm(world, cfg);
        if (world.rank() == 0) {
          result = r;
        }
      },
      opts);
  EXPECT_TRUE(result.aborted) << "slow-rank monitor did not terminate";
  ASSERT_FALSE(monitor->slowRanks().empty());
  EXPECT_EQ(monitor->slowRanks()[0], 2);
  EXPECT_GT(opts.faults->stats().stalls, 0u);
}

// ---------------------------------------------------------------------------
// Chaos CLI
// ---------------------------------------------------------------------------

TEST(ChaosCli, CleanScenarioConvergesAndExitsZero) {
  const int rc = cli::dispatch({"chaos", "--scenario", "none", "--n", "64",
                                "--b", "16", "--pr", "1", "--pc", "1",
                                "--quiet"});
  EXPECT_EQ(rc, 0);
}

TEST(ChaosCli, CrashScenarioIsContained) {
  const int rc = cli::dispatch(
      {"chaos", "--scenario", "crash", "--n", "64", "--b", "16", "--pr",
       "2", "--pc", "2", "--timeout-ms", "300", "--quiet"});
  EXPECT_EQ(rc, 0);  // contained: aggregated structured failure, no hang
}

TEST(ChaosCli, PartitionScenarioIsContained) {
  const int rc = cli::dispatch(
      {"chaos", "--scenario", "partition", "--n", "64", "--b", "16", "--pr",
       "2", "--pc", "2", "--timeout-ms", "300", "--quiet"});
  EXPECT_EQ(rc, 0);  // contained: aggregated timeouts with provenance
}

TEST(ChaosCli, UnknownScenarioIsRejected) {
  const int rc = cli::dispatch({"chaos", "--scenario", "lava", "--quiet"});
  EXPECT_EQ(rc, 2);
}

TEST(ChaosCli, UsageMentionsChaos) {
  EXPECT_NE(cli::usage().find("chaos"), std::string::npos);
}

}  // namespace
}  // namespace hplmxp
