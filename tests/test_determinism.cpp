// Determinism guarantees: results must be bit-identical across thread-pool
// widths and repeated runs — reproducibility is a prerequisite for the
// paper's debugging/tuning methodology (comparing component rates against
// recorded reference data only works if the numbers are stable).
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "blas/blas.h"
#include "blas/reference.h"
#include "core/hplai.h"
#include "core/single_solver.h"
#include "gen/matgen.h"
#include "util/thread_pool.h"

namespace hplmxp {
namespace {

std::vector<float> randomVec(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> d(-1.0f, 1.0f);
  std::vector<float> v(n);
  for (auto& x : v) {
    x = d(rng);
  }
  return v;
}

TEST(Determinism, GemmIdenticalAcrossPoolWidths) {
  // Each C element is one fixed-order dot product regardless of how tiles
  // are scheduled: widths 1, 2 and 5 must agree bitwise.
  const index_t n = 150;
  const auto a = randomVec(static_cast<std::size_t>(n * n), 1);
  const auto b = randomVec(static_cast<std::size_t>(n * n), 2);
  std::vector<std::vector<float>> results;
  for (std::size_t width : {1u, 2u, 5u}) {
    ThreadPool pool(width);
    std::vector<float> c(static_cast<std::size_t>(n * n), 0.0f);
    blas::sgemm(blas::Trans::kNoTrans, blas::Trans::kTrans, n, n, n, 1.0f,
                a.data(), n, b.data(), n, 0.0f, c.data(), n, &pool);
    results.push_back(std::move(c));
  }
  for (std::size_t i = 0; i < results[0].size(); ++i) {
    ASSERT_EQ(results[0][i], results[1][i]) << "i=" << i;
    ASSERT_EQ(results[0][i], results[2][i]) << "i=" << i;
  }
}

TEST(Determinism, TrsmIdenticalAcrossPoolWidths) {
  const index_t n = 96;
  ProblemGenerator gen(3, n);
  std::vector<float> tri(static_cast<std::size_t>(n * n));
  gen.fillTile<float>(0, 0, n, n, tri.data(), n);
  std::vector<std::vector<float>> results;
  for (std::size_t width : {1u, 3u}) {
    ThreadPool pool(width);
    auto rhs = randomVec(static_cast<std::size_t>(n * 40), 7);
    blas::strsm(blas::Side::kLeft, blas::Uplo::kLower, blas::Diag::kUnit, n,
                40, 1.0f, tri.data(), n, rhs.data(), n, &pool);
    results.push_back(std::move(rhs));
  }
  for (std::size_t i = 0; i < results[0].size(); ++i) {
    ASSERT_EQ(results[0][i], results[1][i]);
  }
}

TEST(Determinism, SingleDeviceFactorIsRunToRunStable) {
  const index_t n = 128, b = 32;
  ProblemGenerator gen(11, n);
  std::vector<float> a1(static_cast<std::size_t>(n * n)), a2;
  gen.fillTile<float>(0, 0, n, n, a1.data(), n);
  a2 = a1;
  factorMixedSingle(n, b, a1.data(), n, Vendor::kAmd);
  factorMixedSingle(n, b, a2.data(), n, Vendor::kAmd);
  for (std::size_t i = 0; i < a1.size(); ++i) {
    ASSERT_EQ(a1[i], a2[i]);
  }
}

TEST(Determinism, DistributedSolutionIsRunToRunStable) {
  // Same config run twice: thread interleaving differs, solutions must
  // not (all reductions have fixed tree shapes and fixed operand order).
  HplaiConfig cfg;
  cfg.n = 128;
  cfg.b = 16;
  cfg.pr = 2;
  cfg.pc = 2;
  std::vector<double> x1, x2;
  const HplaiResult r1 = runHplai(cfg, &x1);
  const HplaiResult r2 = runHplai(cfg, &x2);
  EXPECT_EQ(r1.irIterations, r2.irIterations);
  EXPECT_EQ(r1.residualInf, r2.residualInf);
  ASSERT_EQ(x1.size(), x2.size());
  for (std::size_t i = 0; i < x1.size(); ++i) {
    ASSERT_EQ(x1[i], x2[i]) << "i=" << i;
  }
}

TEST(Determinism, FuzzedGemmShapesMatchReference) {
  // 150 pseudo-random (shape, trans, scalar) combinations against the
  // naive oracle — broad-spectrum coverage of the packing/blocking edges.
  std::mt19937 rng(2022);
  std::uniform_int_distribution<index_t> dim(1, 70);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_real_distribution<float> scal(-2.0f, 2.0f);
  for (int iter = 0; iter < 150; ++iter) {
    const index_t m = dim(rng), n = dim(rng), k = dim(rng);
    const auto ta = coin(rng) ? blas::Trans::kTrans : blas::Trans::kNoTrans;
    const auto tb = coin(rng) ? blas::Trans::kTrans : blas::Trans::kNoTrans;
    const float alpha = scal(rng);
    const float beta = coin(rng) ? 0.0f : scal(rng);
    const index_t lda = (ta == blas::Trans::kNoTrans ? m : k) + coin(rng);
    const index_t ldb = (tb == blas::Trans::kNoTrans ? k : n) + coin(rng);
    const index_t ldc = m + coin(rng);
    const auto a = randomVec(
        static_cast<std::size_t>(lda *
                                 (ta == blas::Trans::kNoTrans ? k : m)),
        static_cast<unsigned>(iter * 3 + 1));
    const auto b = randomVec(
        static_cast<std::size_t>(ldb *
                                 (tb == blas::Trans::kNoTrans ? n : k)),
        static_cast<unsigned>(iter * 3 + 2));
    auto c1 = randomVec(static_cast<std::size_t>(ldc * n),
                        static_cast<unsigned>(iter * 3 + 3));
    auto c2 = c1;
    blas::sgemm(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta,
                c1.data(), ldc);
    blas::ref::gemm<float>(ta, tb, m, n, k, alpha, a.data(), lda, b.data(),
                           ldb, beta, c2.data(), ldc);
    const float tol = 1e-5f * static_cast<float>(k + 1);
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = 0; i < m; ++i) {
        const std::size_t idx = static_cast<std::size_t>(i + j * ldc);
        ASSERT_NEAR(c1[idx], c2[idx], tol)
            << "iter=" << iter << " m=" << m << " n=" << n << " k=" << k;
      }
    }
  }
}

}  // namespace
}  // namespace hplmxp
