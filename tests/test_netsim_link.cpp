// Link-model edge cases: the fleet simulator prices every virtual
// transfer through linkTransferTime + congestionFactor, so the
// degenerate inputs a request-level simulation produces constantly —
// zero-byte credit messages, self-sends, saturated links — need pinned
// semantics.
#include <gtest/gtest.h>

#include "netsim/pipeline.h"

namespace hplmxp {
namespace {

// Slingshot-ish link: 4 us latency, 25 GB/s.
constexpr LinkModel kLink{.alpha = 4e-6, .betaPerByte = 1.0 / 25e9};

TEST(LinkModel, SelfSendIsFree) {
  EXPECT_DOUBLE_EQ(linkTransferTime(kLink, 0.0, 0), 0.0);
  EXPECT_DOUBLE_EQ(linkTransferTime(kLink, 1e9, 0), 0.0);
}

TEST(LinkModel, ZeroByteMessagePaysPerHopLatencyOnly) {
  EXPECT_DOUBLE_EQ(linkTransferTime(kLink, 0.0, 1), kLink.alpha);
  EXPECT_DOUBLE_EQ(linkTransferTime(kLink, 0.0, 5), 5.0 * kLink.alpha);
}

TEST(LinkModel, BandwidthTermPaidOncePerPath) {
  // Pipelined path: hops add latency, the payload streams once.
  const double oneHop = linkTransferTime(kLink, 1e8, 1);
  const double threeHops = linkTransferTime(kLink, 1e8, 3);
  EXPECT_NEAR(threeHops - oneHop, 2.0 * kLink.alpha, 1e-12);
  EXPECT_NEAR(oneHop, kLink.alpha + 1e8 / 25e9, 1e-12);
}

TEST(LinkModel, TransferTimeMonotoneInBytesAndHops) {
  double prev = -1.0;
  for (const double bytes : {0.0, 1.0, 1e3, 1e6, 1e9}) {
    const double t = linkTransferTime(kLink, bytes, 2);
    EXPECT_GT(t, prev);
    prev = t;
  }
  prev = linkTransferTime(kLink, 1e6, 1);
  for (index_t hops = 2; hops <= 8; ++hops) {
    const double t = linkTransferTime(kLink, 1e6, hops);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(LinkModel, TransferTimeRejectsNegativeInputs) {
  EXPECT_THROW(linkTransferTime(kLink, -1.0, 1), CheckError);
  EXPECT_THROW(linkTransferTime(kLink, 1.0, -1), CheckError);
}

TEST(LinkModel, CongestionIsFreeWhileUnderSubscribed) {
  EXPECT_DOUBLE_EQ(congestionFactor(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(congestionFactor(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(congestionFactor(3, 4), 1.0);
  EXPECT_DOUBLE_EQ(congestionFactor(4, 4), 1.0);
}

TEST(LinkModel, CongestionAtSaturationSplitsBandwidthEvenly) {
  // Past saturation, k flows on one link each see 1/k of the bandwidth:
  // the factor is exactly the oversubscription ratio.
  EXPECT_DOUBLE_EQ(congestionFactor(2, 1), 2.0);
  EXPECT_DOUBLE_EQ(congestionFactor(10, 1), 10.0);
  EXPECT_DOUBLE_EQ(congestionFactor(8, 4), 2.0);
  EXPECT_DOUBLE_EQ(congestionFactor(9, 4), 2.25);
}

TEST(LinkModel, CongestionMonotoneInFlows) {
  double prev = 0.0;
  for (index_t flows = 0; flows <= 32; ++flows) {
    const double f = congestionFactor(flows, 4);
    EXPECT_GE(f, prev);
    EXPECT_GE(f, 1.0);
    prev = f;
  }
}

TEST(LinkModel, CongestionRejectsBadInputs) {
  EXPECT_THROW(congestionFactor(1, 0), CheckError);
  EXPECT_THROW(congestionFactor(-1, 1), CheckError);
}

TEST(LinkModel, CongestedTransferComposesWithOracle) {
  // The simulator's composition: latency per hop, bandwidth derated by
  // the congestion factor. Saturating the link doubles only the
  // bandwidth term.
  const double base = linkTransferTime(kLink, 1e8, 2);
  const double congested =
      2.0 * kLink.alpha + 1e8 * kLink.betaPerByte * congestionFactor(2, 1);
  EXPECT_GT(congested, base);
  EXPECT_DOUBLE_EQ(congested - base, 1e8 * kLink.betaPerByte);
}

}  // namespace
}  // namespace hplmxp
