// LU factorization tests: no-pivot GETRF (the HPL-AI kernel) and partial
// pivoting DGETRF (the HPL baseline), checked by reconstruction.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "blas/gemm.h"
#include "blas/getrf.h"
#include "blas/reference.h"
#include "blas/trsm.h"
#include "gen/matgen.h"

namespace hplmxp {
namespace {

/// Splits a factored in-place LU into explicit L (unit lower) and U.
template <typename T>
void splitLU(index_t n, const std::vector<T>& lu, std::vector<T>& l,
             std::vector<T>& u) {
  l.assign(static_cast<std::size_t>(n * n), T{0});
  u.assign(static_cast<std::size_t>(n * n), T{0});
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      const T v = lu[static_cast<std::size_t>(i + j * n)];
      if (i > j) {
        l[static_cast<std::size_t>(i + j * n)] = v;
      } else {
        u[static_cast<std::size_t>(i + j * n)] = v;
      }
    }
    l[static_cast<std::size_t>(j + j * n)] = T{1};
  }
}

class GetrfNoPivTest : public ::testing::TestWithParam<index_t> {};

TEST_P(GetrfNoPivTest, ReconstructsDiagonallyDominantMatrix) {
  const index_t n = GetParam();
  ProblemGenerator gen(31, n);
  std::vector<float> a(static_cast<std::size_t>(n * n));
  gen.fillTile<float>(0, 0, n, n, a.data(), n);
  const auto orig = a;

  blas::getrfNoPiv(n, a.data(), n);

  std::vector<float> l, u, prod(static_cast<std::size_t>(n * n), 0.0f);
  splitLU<float>(n, a, l, u);
  blas::sgemm(blas::Trans::kNoTrans, blas::Trans::kNoTrans, n, n, n, 1.0f,
              l.data(), n, u.data(), n, 0.0f, prod.data(), n);
  // Diagonal entries are ~n, so compare with a relative tolerance.
  const float tol = 1e-4f * static_cast<float>(n);
  for (std::size_t i = 0; i < prod.size(); ++i) {
    EXPECT_NEAR(prod[i], orig[i], tol) << "i=" << i;
  }
}

TEST_P(GetrfNoPivTest, MatchesUnblockedReference) {
  const index_t n = GetParam();
  ProblemGenerator gen(37, n);
  std::vector<float> blocked(static_cast<std::size_t>(n * n));
  gen.fillTile<float>(0, 0, n, n, blocked.data(), n);
  auto unblocked = blocked;
  blas::getrfNoPiv(n, blocked.data(), n);
  blas::ref::getrfNoPiv<float>(n, unblocked.data(), n);
  for (std::size_t i = 0; i < blocked.size(); ++i) {
    EXPECT_NEAR(blocked[i], unblocked[i],
                1e-3f)  // same algorithm, different update order
        << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, GetrfNoPivTest,
                         ::testing::Values(1, 2, 5, 16, 63, 64, 65, 128, 200));

TEST(GetrfNoPiv, ZeroPivotThrows) {
  std::vector<float> a{0.0f};
  EXPECT_THROW(blas::getrfNoPiv(1, a.data(), 1), CheckError);
}

TEST(GetrfNoPiv, DoubleVariantReconstructs) {
  const index_t n = 96;
  ProblemGenerator gen(41, n);
  std::vector<double> a(static_cast<std::size_t>(n * n));
  gen.fillTile<double>(0, 0, n, n, a.data(), n);
  const auto orig = a;
  blas::dgetrfNoPiv(n, a.data(), n);
  std::vector<double> l, u, prod(static_cast<std::size_t>(n * n), 0.0);
  splitLU<double>(n, a, l, u);
  blas::dgemm(blas::Trans::kNoTrans, blas::Trans::kNoTrans, n, n, n, 1.0,
              l.data(), n, u.data(), n, 0.0, prod.data(), n);
  for (std::size_t i = 0; i < prod.size(); ++i) {
    EXPECT_NEAR(prod[i], orig[i], 1e-10 * n);
  }
}

class DgetrfTest : public ::testing::TestWithParam<index_t> {};

TEST_P(DgetrfTest, ReconstructsPA) {
  const index_t n = GetParam();
  // A general (NOT diagonally dominant) matrix: pivoting must engage.
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<double> a(static_cast<std::size_t>(n * n));
  for (auto& v : a) {
    v = d(rng);
  }
  const auto orig = a;
  std::vector<index_t> ipiv;
  blas::dgetrf(n, a.data(), n, ipiv);

  std::vector<double> l, u, prod(static_cast<std::size_t>(n * n), 0.0);
  splitLU<double>(n, a, l, u);
  blas::dgemm(blas::Trans::kNoTrans, blas::Trans::kNoTrans, n, n, n, 1.0,
              l.data(), n, u.data(), n, 0.0, prod.data(), n);

  // Apply the recorded swaps to the original to get P*A.
  std::vector<double> pa = orig;
  for (index_t k = 0; k < n; ++k) {
    const index_t piv = ipiv[static_cast<std::size_t>(k)];
    if (piv != k) {
      for (index_t j = 0; j < n; ++j) {
        std::swap(pa[static_cast<std::size_t>(k + j * n)],
                  pa[static_cast<std::size_t>(piv + j * n)]);
      }
    }
  }
  for (std::size_t i = 0; i < prod.size(); ++i) {
    EXPECT_NEAR(prod[i], pa[i], 1e-9 * n) << "i=" << i;
  }
}

TEST_P(DgetrfTest, PivotsEnsureBoundedMultipliers) {
  const index_t n = GetParam();
  std::mt19937 rng(9);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<double> a(static_cast<std::size_t>(n * n));
  for (auto& v : a) {
    v = d(rng);
  }
  std::vector<index_t> ipiv;
  blas::dgetrf(n, a.data(), n, ipiv);
  // Partial pivoting bounds every L multiplier by 1 in magnitude.
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j + 1; i < n; ++i) {
      EXPECT_LE(std::fabs(a[static_cast<std::size_t>(i + j * n)]),
                1.0 + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, DgetrfTest,
                         ::testing::Values(2, 8, 64, 65, 129, 192));

TEST(FlopCounts, Conventions) {
  EXPECT_DOUBLE_EQ(blas::getrfFlops(10), 2.0 / 3.0 * 1000.0);
  EXPECT_DOUBLE_EQ(blas::gemmFlops(2, 3, 4), 48.0);
  EXPECT_DOUBLE_EQ(blas::trsmFlops(blas::Side::kLeft, 4, 5), 80.0);
  EXPECT_DOUBLE_EQ(blas::trsmFlops(blas::Side::kRight, 4, 5), 100.0);
}

}  // namespace
}  // namespace hplmxp
