// GEMM kernels vs the naive reference oracle, across shapes, transposes,
// scalars, leading dimensions, and all three precisions.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>
#include <vector>

#include "blas/gemm.h"
#include "blas/gemm_baseline.h"
#include "blas/reference.h"
#include "blas/tune.h"
#include "lowp/bfloat16.h"
#include "lowp/fp8.h"

namespace hplmxp {
namespace {

using blas::Trans;

std::vector<float> randomVec(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> d(-1.0f, 1.0f);
  std::vector<float> v(n);
  for (auto& x : v) {
    x = d(rng);
  }
  return v;
}

struct GemmCase {
  index_t m, n, k;
  Trans ta, tb;
  float alpha, beta;
};

class SgemmTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(SgemmTest, MatchesReference) {
  const GemmCase c = GetParam();
  const index_t lda = (c.ta == Trans::kNoTrans ? c.m : c.k) + 3;
  const index_t ldb = (c.tb == Trans::kNoTrans ? c.k : c.n) + 1;
  const index_t ldc = c.m + 2;
  auto a = randomVec(static_cast<std::size_t>(
                         lda * (c.ta == Trans::kNoTrans ? c.k : c.m)),
                     1);
  auto b = randomVec(static_cast<std::size_t>(
                         ldb * (c.tb == Trans::kNoTrans ? c.n : c.k)),
                     2);
  auto cOpt = randomVec(static_cast<std::size_t>(ldc * c.n), 3);
  auto cRef = cOpt;

  blas::sgemm(c.ta, c.tb, c.m, c.n, c.k, c.alpha, a.data(), lda, b.data(),
              ldb, c.beta, cOpt.data(), ldc);
  blas::ref::gemm<float>(c.ta, c.tb, c.m, c.n, c.k, c.alpha, a.data(), lda,
                         b.data(), ldb, c.beta, cRef.data(), ldc);

  const float tol = 1e-5f * static_cast<float>(std::max<index_t>(c.k, 1));
  for (index_t j = 0; j < c.n; ++j) {
    for (index_t i = 0; i < c.m; ++i) {
      const std::size_t idx = static_cast<std::size_t>(i + j * ldc);
      EXPECT_NEAR(cOpt[idx], cRef[idx], tol) << "i=" << i << " j=" << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SgemmTest,
    ::testing::Values(
        GemmCase{1, 1, 1, Trans::kNoTrans, Trans::kNoTrans, 1.0f, 0.0f},
        GemmCase{5, 7, 3, Trans::kNoTrans, Trans::kNoTrans, 2.0f, 0.5f},
        GemmCase{64, 64, 64, Trans::kNoTrans, Trans::kNoTrans, 1.0f, 1.0f},
        GemmCase{100, 50, 300, Trans::kNoTrans, Trans::kNoTrans, -1.0f, 1.0f},
        GemmCase{33, 65, 17, Trans::kTrans, Trans::kNoTrans, 1.0f, 0.0f},
        GemmCase{33, 65, 17, Trans::kNoTrans, Trans::kTrans, 1.0f, 2.0f},
        GemmCase{48, 48, 48, Trans::kTrans, Trans::kTrans, 0.5f, -1.0f},
        GemmCase{97, 101, 259, Trans::kNoTrans, Trans::kTrans, -1.0f, 1.0f},
        GemmCase{7, 300, 2, Trans::kNoTrans, Trans::kNoTrans, 1.0f, 0.0f},
        GemmCase{200, 3, 200, Trans::kTrans, Trans::kNoTrans, 1.0f, 0.0f}));

TEST(Sgemm, ZeroDimsAreNoOps) {
  float a = 1.0f, b = 2.0f, c = 3.0f;
  blas::sgemm(Trans::kNoTrans, Trans::kNoTrans, 0, 0, 0, 1.0f, &a, 1, &b, 1,
              1.0f, &c, 1);
  EXPECT_EQ(c, 3.0f);
  // k == 0 with beta: C scales only.
  blas::sgemm(Trans::kNoTrans, Trans::kNoTrans, 1, 1, 0, 1.0f, &a, 1, &b, 1,
              0.5f, &c, 1);
  EXPECT_EQ(c, 1.5f);
}

TEST(Sgemm, BetaZeroOverwritesNanC) {
  // beta == 0 must not propagate garbage from C (0 * NaN trap).
  std::vector<float> a{1.0f}, b{2.0f};
  std::vector<float> c{std::nanf("1")};
  blas::sgemm(Trans::kNoTrans, Trans::kNoTrans, 1, 1, 1, 1.0f, a.data(), 1,
              b.data(), 1, 0.0f, c.data(), 1);
  EXPECT_EQ(c[0], 2.0f);
}

TEST(Dgemm, MatchesReference) {
  const index_t m = 37, n = 53, k = 290;
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<double> a(static_cast<std::size_t>(m * k)),
      b(static_cast<std::size_t>(k * n)), c1(static_cast<std::size_t>(m * n)),
      c2;
  for (auto& x : a) x = d(rng);
  for (auto& x : b) x = d(rng);
  for (auto& x : c1) x = d(rng);
  c2 = c1;
  blas::dgemm(Trans::kNoTrans, Trans::kNoTrans, m, n, k, 1.5, a.data(), m,
              b.data(), k, -0.5, c1.data(), m);
  blas::ref::gemm<double>(Trans::kNoTrans, Trans::kNoTrans, m, n, k, 1.5,
                          a.data(), m, b.data(), k, -0.5, c2.data(), m);
  for (std::size_t i = 0; i < c1.size(); ++i) {
    EXPECT_NEAR(c1[i], c2[i], 1e-12 * k);
  }
}

class GemmMixedTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmMixedTest, MatchesMixedReference) {
  const GemmCase c = GetParam();
  const index_t lda = c.ta == Trans::kNoTrans ? c.m : c.k;
  const index_t ldb = c.tb == Trans::kNoTrans ? c.k : c.n;
  const index_t ldc = c.m;
  auto af = randomVec(static_cast<std::size_t>(
                          lda * (c.ta == Trans::kNoTrans ? c.k : c.m)),
                      7);
  auto bf = randomVec(static_cast<std::size_t>(
                          ldb * (c.tb == Trans::kNoTrans ? c.n : c.k)),
                      8);
  std::vector<half16> a(af.size()), b(bf.size());
  for (std::size_t i = 0; i < af.size(); ++i) a[i] = half16(af[i]);
  for (std::size_t i = 0; i < bf.size(); ++i) b[i] = half16(bf[i]);
  auto cOpt = randomVec(static_cast<std::size_t>(ldc * c.n), 9);
  auto cRef = cOpt;

  blas::gemmMixed(c.ta, c.tb, c.m, c.n, c.k, c.alpha, a.data(), lda, b.data(),
                  ldb, c.beta, cOpt.data(), ldc);
  blas::ref::gemmMixed(c.ta, c.tb, c.m, c.n, c.k, c.alpha, a.data(), lda,
                       b.data(), ldb, c.beta, cRef.data(), ldc);
  const float tol = 1e-5f * static_cast<float>(std::max<index_t>(c.k, 1));
  for (std::size_t i = 0; i < cOpt.size(); ++i) {
    EXPECT_NEAR(cOpt[i], cRef[i], tol);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmMixedTest,
    ::testing::Values(
        GemmCase{16, 16, 16, Trans::kNoTrans, Trans::kTrans, -1.0f, 1.0f},
        GemmCase{60, 44, 32, Trans::kNoTrans, Trans::kTrans, -1.0f, 1.0f},
        GemmCase{31, 29, 270, Trans::kNoTrans, Trans::kNoTrans, 1.0f, 0.0f},
        GemmCase{8, 120, 64, Trans::kTrans, Trans::kNoTrans, 2.0f, 0.5f},
        GemmCase{1, 1, 300, Trans::kNoTrans, Trans::kTrans, 1.0f, 1.0f}));

TEST(GemmMixed, Fp32AccumulationBeatsFp16Accumulation) {
  // The defining property of the mixed kernel: inputs are FP16 but sums
  // accumulate in FP32. Summing k copies of 1 + one of 2^-12 stays exact
  // in FP32 accumulation, while FP16 accumulation would lose the tail.
  const index_t k = 256;
  std::vector<half16> a(static_cast<std::size_t>(k), half16(1.0f));
  std::vector<half16> b(static_cast<std::size_t>(k), half16(1.0f));
  b[0] = half16(1.0f + 1.0f / 1024.0f);  // representable in binary16
  float c = 0.0f;
  blas::gemmMixed(blas::Trans::kNoTrans, blas::Trans::kNoTrans, 1, 1, k, 1.0f,
                  a.data(), 1, b.data(), k, 0.0f, &c, 1);
  EXPECT_FLOAT_EQ(c, static_cast<float>(k) + 1.0f / 1024.0f);
}

// ---------------------------------------------------------------------------
// Bitwise identity vs the retained pre-rewrite kernel (blas/gemm_baseline.h).
// The scheduler-equivalence suite and the determinism tests depend on the
// GEMM producing the exact same bits regardless of blocking or thread
// count, so these use memcmp, not tolerances.
// ---------------------------------------------------------------------------

/// Restores the process-wide blocking on scope exit so a failing test
/// cannot poison later ones.
struct BlockingGuard {
  blas::GemmBlocking saved = blas::gemmBlocking();
  ~BlockingGuard() { blas::setGemmBlocking(saved); }
};

class GemmBitwiseTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmBitwiseTest, SgemmMatchesBaselineBitwise) {
  const GemmCase c = GetParam();
  const index_t lda = (c.ta == Trans::kNoTrans ? c.m : c.k) + 2;
  const index_t ldb = (c.tb == Trans::kNoTrans ? c.k : c.n) + 1;
  const index_t ldc = c.m + 3;
  auto a = randomVec(static_cast<std::size_t>(
                         lda * (c.ta == Trans::kNoTrans ? c.k : c.m)),
                     21);
  auto b = randomVec(static_cast<std::size_t>(
                         ldb * (c.tb == Trans::kNoTrans ? c.n : c.k)),
                     22);
  auto c1 = randomVec(static_cast<std::size_t>(ldc * c.n), 23);
  auto c2 = c1;

  blas::sgemm(c.ta, c.tb, c.m, c.n, c.k, c.alpha, a.data(), lda, b.data(),
              ldb, c.beta, c1.data(), ldc);
  blas::baseline::sgemm(c.ta, c.tb, c.m, c.n, c.k, c.alpha, a.data(), lda,
                        b.data(), ldb, c.beta, c2.data(), ldc);
  for (index_t j = 0; j < c.n; ++j) {
    EXPECT_EQ(0, std::memcmp(c1.data() + j * ldc, c2.data() + j * ldc,
                             static_cast<std::size_t>(c.m) * sizeof(float)))
        << "column " << j;
  }
}

TEST_P(GemmBitwiseTest, GemmMixedMatchesBaselineBitwise) {
  const GemmCase c = GetParam();
  const index_t lda = c.ta == Trans::kNoTrans ? c.m : c.k;
  const index_t ldb = c.tb == Trans::kNoTrans ? c.k : c.n;
  const index_t ldc = c.m;
  auto af = randomVec(static_cast<std::size_t>(
                          lda * (c.ta == Trans::kNoTrans ? c.k : c.m)),
                      24);
  auto bf = randomVec(static_cast<std::size_t>(
                          ldb * (c.tb == Trans::kNoTrans ? c.n : c.k)),
                      25);
  std::vector<half16> a(af.size()), b(bf.size());
  for (std::size_t i = 0; i < af.size(); ++i) a[i] = half16(af[i]);
  for (std::size_t i = 0; i < bf.size(); ++i) b[i] = half16(bf[i]);
  auto c1 = randomVec(static_cast<std::size_t>(ldc * c.n), 26);
  auto c2 = c1;

  blas::gemmMixed(c.ta, c.tb, c.m, c.n, c.k, c.alpha, a.data(), lda, b.data(),
                  ldb, c.beta, c1.data(), ldc);
  blas::baseline::gemmMixed(c.ta, c.tb, c.m, c.n, c.k, c.alpha, a.data(),
                            lda, b.data(), ldb, c.beta, c2.data(), ldc);
  EXPECT_EQ(0, std::memcmp(c1.data(), c2.data(),
                           c1.size() * sizeof(float)));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmBitwiseTest,
    ::testing::Values(
        GemmCase{1, 1, 1, Trans::kNoTrans, Trans::kNoTrans, 1.0f, 0.0f},
        GemmCase{5, 7, 3, Trans::kNoTrans, Trans::kTrans, 0.37f, 0.5f},
        GemmCase{64, 64, 64, Trans::kTrans, Trans::kNoTrans, 1.0f, 1.0f},
        GemmCase{97, 101, 259, Trans::kNoTrans, Trans::kTrans, -1.0f, 1.0f},
        GemmCase{130, 96, 300, Trans::kTrans, Trans::kTrans, -1.0f, 0.0f},
        GemmCase{8, 6, 256, Trans::kNoTrans, Trans::kNoTrans, 1.0f, 1.0f},
        GemmCase{33, 65, 17, Trans::kNoTrans, Trans::kNoTrans, 2.0f, -1.0f},
        GemmCase{257, 131, 64, Trans::kNoTrans, Trans::kTrans, -1.0f, 1.0f}));

TEST(GemmBitwise, DgemmMatchesBaselineBitwise) {
  const index_t m = 61, n = 45, k = 333;
  std::mt19937 rng(31);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<double> a(static_cast<std::size_t>(m * k)),
      b(static_cast<std::size_t>(k * n)), c1(static_cast<std::size_t>(m * n));
  for (auto& x : a) x = d(rng);
  for (auto& x : b) x = d(rng);
  for (auto& x : c1) x = d(rng);
  auto c2 = c1;
  blas::dgemm(Trans::kNoTrans, Trans::kTrans, m, n, k, -1.0, a.data(), m,
              b.data(), n, 1.0, c1.data(), m);
  blas::baseline::dgemm(Trans::kNoTrans, Trans::kTrans, m, n, k, -1.0,
                        a.data(), m, b.data(), n, 1.0, c2.data(), m);
  EXPECT_EQ(0, std::memcmp(c1.data(), c2.data(), c1.size() * sizeof(double)));
}

TEST(GemmBitwise, InvariantUnderBlocking) {
  // (mc, nc, kc) are pure scheduling parameters: any legal blocking —
  // including degenerate ones that force the edge microkernel everywhere —
  // must produce the same bits.
  BlockingGuard guard;
  const index_t m = 97, n = 65, k = 130;
  auto a = randomVec(static_cast<std::size_t>(m * k), 41);
  auto b = randomVec(static_cast<std::size_t>(k * n), 42);
  auto c0 = randomVec(static_cast<std::size_t>(m * n), 43);

  auto ref = c0;
  blas::setGemmBlocking(blas::GemmBlocking{});
  blas::sgemm(Trans::kNoTrans, Trans::kNoTrans, m, n, k, -1.0f, a.data(), m,
              b.data(), k, 1.0f, ref.data(), m);

  for (blas::GemmBlocking bl :
       {blas::GemmBlocking{8, 6, 16}, blas::GemmBlocking{8, 6, 1},
        blas::GemmBlocking{64, 96, 64}, blas::GemmBlocking{256, 480, 512},
        blas::GemmBlocking{16, 12, 37}}) {
    blas::setGemmBlocking(bl);
    auto c = c0;
    blas::sgemm(Trans::kNoTrans, Trans::kNoTrans, m, n, k, -1.0f, a.data(),
                m, b.data(), k, 1.0f, c.data(), m);
    EXPECT_EQ(0, std::memcmp(c.data(), ref.data(), c.size() * sizeof(float)))
        << "mc=" << bl.mc << " nc=" << bl.nc << " kc=" << bl.kc;
  }
}

TEST(GemmBitwise, InvariantUnderThreadCount) {
  const index_t m = 120, n = 90, k = 200;
  auto af = randomVec(static_cast<std::size_t>(m * k), 51);
  auto bf = randomVec(static_cast<std::size_t>(n * k), 52);
  std::vector<half16> a(af.size()), b(bf.size());
  for (std::size_t i = 0; i < af.size(); ++i) a[i] = half16(af[i]);
  for (std::size_t i = 0; i < bf.size(); ++i) b[i] = half16(bf[i]);
  auto c0 = randomVec(static_cast<std::size_t>(m * n), 53);

  ThreadPool serial(1);
  ThreadPool wide(4);
  auto c1 = c0;
  auto c2 = c0;
  blas::gemmMixed(Trans::kNoTrans, Trans::kTrans, m, n, k, -1.0f, a.data(),
                  m, b.data(), n, 1.0f, c1.data(), m, &serial);
  blas::gemmMixed(Trans::kNoTrans, Trans::kTrans, m, n, k, -1.0f, a.data(),
                  m, b.data(), n, 1.0f, c2.data(), m, &wide);
  EXPECT_EQ(0, std::memcmp(c1.data(), c2.data(), c1.size() * sizeof(float)));
}

// ---------------------------------------------------------------------------
// Cross-precision GEMM proofs. gemmLowp<T> must be bitwise identical to
// the scalar order-exact oracle (blas/reference.h) for every storage
// format, shape, transpose pair, blocking, and thread count — the
// determinism contract the precision ladder inherits from the FP16
// kernel. memcmp, not tolerances.
// ---------------------------------------------------------------------------

template <typename TLow>
std::vector<TLow> roundVec(const std::vector<float>& src) {
  std::vector<TLow> out(src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    out[i] = TLow(src[i]);
  }
  return out;
}

const GemmCase kLowpCases[] = {
    GemmCase{1, 1, 1, Trans::kNoTrans, Trans::kNoTrans, 1.0f, 0.0f},
    GemmCase{5, 7, 3, Trans::kNoTrans, Trans::kTrans, 0.37f, 0.5f},
    GemmCase{64, 64, 64, Trans::kTrans, Trans::kNoTrans, 1.0f, 1.0f},
    GemmCase{33, 65, 17, Trans::kTrans, Trans::kTrans, -1.0f, 1.0f},
    GemmCase{97, 101, 130, Trans::kNoTrans, Trans::kTrans, -1.0f, 1.0f},
    GemmCase{8, 6, 256, Trans::kNoTrans, Trans::kNoTrans, 2.0f, -1.0f},
    GemmCase{130, 3, 96, Trans::kTrans, Trans::kNoTrans, -0.5f, 0.0f},
};

template <typename TLow>
class GemmLowpTest : public ::testing::Test {};

using StorageTypes = ::testing::Types<half16, lowp::bfloat16, lowp::fp8e4m3,
                                      lowp::fp8e5m2>;
TYPED_TEST_SUITE(GemmLowpTest, StorageTypes);

TYPED_TEST(GemmLowpTest, MatchesOrderExactOracleBitwise) {
  unsigned seed = 100;
  for (const GemmCase& c : kLowpCases) {
    const index_t lda = c.ta == Trans::kNoTrans ? c.m : c.k;
    const index_t ldb = c.tb == Trans::kNoTrans ? c.k : c.n;
    const index_t ldc = c.m;
    auto a = roundVec<TypeParam>(randomVec(
        static_cast<std::size_t>(lda * (c.ta == Trans::kNoTrans ? c.k : c.m)),
        ++seed));
    auto b = roundVec<TypeParam>(randomVec(
        static_cast<std::size_t>(ldb * (c.tb == Trans::kNoTrans ? c.n : c.k)),
        ++seed));
    auto c1 = randomVec(static_cast<std::size_t>(ldc * c.n), ++seed);
    auto c2 = c1;

    blas::gemmLowp<TypeParam>(c.ta, c.tb, c.m, c.n, c.k, c.alpha, a.data(),
                              lda, b.data(), ldb, c.beta, c1.data(), ldc);
    blas::ref::gemmLowpOrderExact<TypeParam>(c.ta, c.tb, c.m, c.n, c.k,
                                             c.alpha, a.data(), lda, b.data(),
                                             ldb, c.beta, c2.data(), ldc);
    EXPECT_EQ(0, std::memcmp(c1.data(), c2.data(), c1.size() * sizeof(float)))
        << "m=" << c.m << " n=" << c.n << " k=" << c.k;
  }
}

TYPED_TEST(GemmLowpTest, InvariantUnderBlockingAndThreads) {
  // The oracle result is the fixed point; every blocking and thread count
  // must reproduce it exactly.
  BlockingGuard guard;
  const index_t m = 61, n = 45, k = 77;
  auto a = roundVec<TypeParam>(
      randomVec(static_cast<std::size_t>(m * k), 201));
  auto b = roundVec<TypeParam>(
      randomVec(static_cast<std::size_t>(n * k), 202));
  auto c0 = randomVec(static_cast<std::size_t>(m * n), 203);

  auto ref = c0;
  blas::ref::gemmLowpOrderExact<TypeParam>(Trans::kNoTrans, Trans::kTrans, m,
                                           n, k, -1.0f, a.data(), m, b.data(),
                                           n, 1.0f, ref.data(), m);

  ThreadPool serial(1);
  ThreadPool wide(4);
  for (blas::GemmBlocking bl :
       {blas::GemmBlocking{}, blas::GemmBlocking{8, 6, 16},
        blas::GemmBlocking{8, 6, 1}, blas::GemmBlocking{64, 96, 64},
        blas::GemmBlocking{16, 12, 37}}) {
    blas::setGemmBlocking(bl);
    for (ThreadPool* pool : {static_cast<ThreadPool*>(nullptr), &serial,
                             &wide}) {
      auto c = c0;
      blas::gemmLowp<TypeParam>(Trans::kNoTrans, Trans::kTrans, m, n, k,
                                -1.0f, a.data(), m, b.data(), n, 1.0f,
                                c.data(), m, pool);
      EXPECT_EQ(0,
                std::memcmp(c.data(), ref.data(), c.size() * sizeof(float)))
          << "mc=" << bl.mc << " nc=" << bl.nc << " kc=" << bl.kc;
    }
  }
}

TEST(GemmLowp, Fp16InstantiationIsGemmMixedBitwise) {
  // The legacy FP16 entry point and the templated rung must be the same
  // kernel — the paper's configuration cannot drift when the ladder grows.
  for (const GemmCase& c : kLowpCases) {
    const index_t lda = c.ta == Trans::kNoTrans ? c.m : c.k;
    const index_t ldb = c.tb == Trans::kNoTrans ? c.k : c.n;
    const index_t ldc = c.m;
    auto a = roundVec<half16>(randomVec(
        static_cast<std::size_t>(lda * (c.ta == Trans::kNoTrans ? c.k : c.m)),
        301));
    auto b = roundVec<half16>(randomVec(
        static_cast<std::size_t>(ldb * (c.tb == Trans::kNoTrans ? c.n : c.k)),
        302));
    auto c1 = randomVec(static_cast<std::size_t>(ldc * c.n), 303);
    auto c2 = c1;
    blas::gemmMixed(c.ta, c.tb, c.m, c.n, c.k, c.alpha, a.data(), lda,
                    b.data(), ldb, c.beta, c1.data(), ldc);
    blas::gemmLowp<half16>(c.ta, c.tb, c.m, c.n, c.k, c.alpha, a.data(), lda,
                           b.data(), ldb, c.beta, c2.data(), ldc);
    EXPECT_EQ(0, std::memcmp(c1.data(), c2.data(), c1.size() * sizeof(float)))
        << "m=" << c.m << " n=" << c.n << " k=" << c.k;
  }
}

TEST(GemmLowp, Fp32AccumulationAcrossAllRungs) {
  // The defining mixed-precision property holds at every rung: inputs are
  // low-precision but sums accumulate in FP32, so summing k exact ones
  // stays exact even where the storage format could not hold k.
  const index_t k = 256;
  auto run = [&](auto tag) {
    using T = decltype(tag);
    std::vector<T> a(static_cast<std::size_t>(k), T(1.0f));
    std::vector<T> b(static_cast<std::size_t>(k), T(1.0f));
    float c = 0.0f;
    blas::gemmLowp<T>(Trans::kNoTrans, Trans::kNoTrans, 1, 1, k, 1.0f,
                      a.data(), 1, b.data(), k, 0.0f, &c, 1);
    EXPECT_FLOAT_EQ(c, static_cast<float>(k));
  };
  run(half16());
  run(lowp::bfloat16());
  run(lowp::fp8e4m3());
  run(lowp::fp8e5m2());
}

TEST(GemmMixed, InputsAreRoundedToHalfExactly) {
  // The kernel must see binary16-rounded operands, not the original FP32.
  const float v = 1.0f + 1e-4f;  // not representable in binary16
  std::vector<half16> a{half16(v)};
  std::vector<half16> b{half16(1.0f)};
  float c = 0.0f;
  blas::gemmMixed(blas::Trans::kNoTrans, blas::Trans::kNoTrans, 1, 1, 1, 1.0f,
                  a.data(), 1, b.data(), 1, 0.0f, &c, 1);
  EXPECT_EQ(c, half16(v).toFloat());
  EXPECT_NE(c, v);
}

}  // namespace
}  // namespace hplmxp
