// Network model tests: the Fig. 8 orderings (port binding, GPU-aware MPI,
// ring-vs-tree per machine) must come out of the BcastModel.
#include <gtest/gtest.h>

#include "netsim/bcast_model.h"

namespace hplmxp {
namespace {

using simmpi::BcastStrategy;

TEST(BcastModel, PortBindingImprovesSummitBandwidth) {
  const BcastModel bound(NetworkConfig{.machine = MachineKind::kSummit,
                                       .portBinding = true});
  const BcastModel unbound(NetworkConfig{.machine = MachineKind::kSummit,
                                         .portBinding = false});
  const double gain = unbound.panelBcastTime(BcastStrategy::kBcast, 1e8, 54,
                                             3) /
                      bound.panelBcastTime(BcastStrategy::kBcast, 1e8, 54, 3);
  // Finding 5: 35.6% to 59.7% improvement range (bandwidth-bound message).
  EXPECT_GT(gain, 1.30);
  EXPECT_LT(gain, 1.75);
}

TEST(BcastModel, GpuAwareMpiImprovesFrontierBandwidth) {
  const BcastModel aware(NetworkConfig{.machine = MachineKind::kFrontier,
                                       .gpuAwareMpi = true});
  const BcastModel staged(NetworkConfig{.machine = MachineKind::kFrontier,
                                        .gpuAwareMpi = false});
  const double gain =
      staged.panelBcastTime(BcastStrategy::kRing2M, 1e8, 32, 4) /
      aware.panelBcastTime(BcastStrategy::kRing2M, 1e8, 32, 4);
  // Bandwidth-level penalty of host staging; the END-TO-END 40.3-56.6%
  // gain of Finding 7 emerges from this once the communication share of
  // the run is applied (tested in test_scalesim).
  EXPECT_GT(gain, 2.0);
  EXPECT_LT(gain, 3.5);
}

TEST(BcastModel, KnobsOnlyAffectTheirMachine) {
  const BcastModel a(NetworkConfig{.machine = MachineKind::kSummit,
                                   .portBinding = true,
                                   .gpuAwareMpi = true});
  const BcastModel b(NetworkConfig{.machine = MachineKind::kSummit,
                                   .portBinding = true,
                                   .gpuAwareMpi = false});
  EXPECT_DOUBLE_EQ(a.effectiveNodeBandwidth(), b.effectiveNodeBandwidth());
  const BcastModel c(NetworkConfig{.machine = MachineKind::kFrontier,
                                   .portBinding = false,
                                   .gpuAwareMpi = true});
  const BcastModel d(NetworkConfig{.machine = MachineKind::kFrontier,
                                   .portBinding = true,
                                   .gpuAwareMpi = true});
  EXPECT_DOUBLE_EQ(c.effectiveNodeBandwidth(), d.effectiveNodeBandwidth());
}

TEST(BcastModel, RingsBeatBcastOnFrontierOnly) {
  // Finding 6: ring broadcasts outperform the library Bcast on Frontier;
  // on Summit the tuned tree keeps a 2-12% edge for bandwidth-bound sizes.
  const double bytes = 5e8;
  const BcastModel frontier(
      NetworkConfig{.machine = MachineKind::kFrontier});
  EXPECT_LT(frontier.panelBcastTime(BcastStrategy::kRing2M, bytes, 172, 4),
            frontier.panelBcastTime(BcastStrategy::kBcast, bytes, 172, 4));
  EXPECT_LT(frontier.panelBcastTime(BcastStrategy::kRing1M, bytes, 172, 4),
            frontier.panelBcastTime(BcastStrategy::kBcast, bytes, 172, 4));

  const BcastModel summit(NetworkConfig{.machine = MachineKind::kSummit});
  EXPECT_GT(summit.panelBcastTime(BcastStrategy::kRing2M, bytes, 162, 3),
            summit.panelBcastTime(BcastStrategy::kBcast, bytes, 162, 3));
  const double ringPenalty =
      summit.panelBcastTime(BcastStrategy::kRing1, bytes, 162, 3) /
      summit.panelBcastTime(BcastStrategy::kBcast, bytes, 162, 3);
  EXPECT_GT(ringPenalty, 1.0);
  EXPECT_LT(ringPenalty, 1.2);
}

TEST(BcastModel, Ring2MIsBestRingOnFrontier) {
  const BcastModel m(NetworkConfig{.machine = MachineKind::kFrontier});
  const double bytes = 5e8;
  const double r1 = m.panelBcastTime(BcastStrategy::kRing1, bytes, 172, 4);
  const double r1m = m.panelBcastTime(BcastStrategy::kRing1M, bytes, 172, 4);
  const double r2m = m.panelBcastTime(BcastStrategy::kRing2M, bytes, 172, 4);
  EXPECT_LT(r2m, r1m);
  EXPECT_LT(r1m, r1);
}

TEST(BcastModel, IbcastIsPathologicalOnSummit) {
  // Spectrum MPI's nonblocking broadcast is the paper's worst performer
  // (the source of the 603% best-vs-worst spread on Summit).
  const BcastModel m(NetworkConfig{.machine = MachineKind::kSummit});
  const double bytes = 5e8;
  EXPECT_GT(m.panelBcastTime(BcastStrategy::kIbcast, bytes, 162, 3),
            2.5 * m.panelBcastTime(BcastStrategy::kBcast, bytes, 162, 3));
}

TEST(BcastModel, NicSharingScalesTime) {
  const BcastModel m(NetworkConfig{.machine = MachineKind::kFrontier});
  const double t1 = m.panelBcastTime(BcastStrategy::kBcast, 1e8, 32, 1);
  const double t8 = m.panelBcastTime(BcastStrategy::kBcast, 1e8, 32, 8);
  // Eq. 5: 8 sharers ~ 8x the bandwidth term (latency unchanged).
  EXPECT_GT(t8, 6.0 * t1);
  EXPECT_LT(t8, 8.5 * t1);
}

TEST(BcastModel, SingleRankBroadcastsAreFree) {
  const BcastModel m(NetworkConfig{.machine = MachineKind::kSummit});
  EXPECT_DOUBLE_EQ(m.panelBcastTime(BcastStrategy::kRing2M, 1e9, 1, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.diagBcastTime(1e6, 1), 0.0);
}

TEST(BcastModel, RingLatencyGrowsLinearlyTreeLogarithmically) {
  const BcastModel m(NetworkConfig{.machine = MachineKind::kFrontier});
  const double treeSmall = m.strategyLatency(BcastStrategy::kBcast, 16);
  const double treeBig = m.strategyLatency(BcastStrategy::kBcast, 256);
  const double ringSmall = m.strategyLatency(BcastStrategy::kRing1, 16);
  const double ringBig = m.strategyLatency(BcastStrategy::kRing1, 256);
  EXPECT_NEAR(treeBig / treeSmall, 2.0, 0.1);    // log2: 8/4
  EXPECT_NEAR(ringBig / ringSmall, 17.0, 0.5);   // linear: 255/15
}

}  // namespace
}  // namespace hplmxp
