// Process-grid and block-cyclic layout invariants: mappings are bijective,
// ownership partitions the matrix, node-local grids tile correctly, and the
// Eq. 4 traffic formula behaves as Sec. IV-B describes.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "grid/block_cyclic.h"
#include "grid/process_grid.h"

namespace hplmxp {
namespace {

class GridBijectionTest
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, index_t,
                                                 index_t>> {};

TEST_P(GridBijectionTest, NodeLocalCoordsRoundTrip) {
  const auto [pr, pc, qr, qc] = GetParam();
  const ProcessGrid g = ProcessGrid::nodeLocal(pr, pc, qr, qc);
  std::set<std::pair<index_t, index_t>> seen;
  for (index_t r = 0; r < g.size(); ++r) {
    const GridCoord c = g.coordOf(r);
    EXPECT_GE(c.row, 0);
    EXPECT_LT(c.row, pr);
    EXPECT_GE(c.col, 0);
    EXPECT_LT(c.col, pc);
    EXPECT_EQ(g.rankOf(c.row, c.col), r);
    seen.insert({c.row, c.col});
  }
  EXPECT_EQ(static_cast<index_t>(seen.size()), pr * pc);
}

TEST_P(GridBijectionTest, NodesAreContiguousQrByQcTiles) {
  const auto [pr, pc, qr, qc] = GetParam();
  const ProcessGrid g = ProcessGrid::nodeLocal(pr, pc, qr, qc);
  for (index_t node = 0; node < g.nodeCount(); ++node) {
    // Collect coordinates of all GCDs on this node.
    index_t minR = pr, maxR = -1, minC = pc, maxC = -1;
    index_t count = 0;
    for (index_t r = 0; r < g.size(); ++r) {
      if (g.nodeOf(r) != node) {
        continue;
      }
      const GridCoord c = g.coordOf(r);
      minR = std::min(minR, c.row);
      maxR = std::max(maxR, c.row);
      minC = std::min(minC, c.col);
      maxC = std::max(maxC, c.col);
      ++count;
    }
    EXPECT_EQ(count, qr * qc);
    EXPECT_EQ(maxR - minR + 1, qr);
    EXPECT_EQ(maxC - minC + 1, qc);
    EXPECT_EQ(minR % qr, 0);  // tiles are aligned
    EXPECT_EQ(minC % qc, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, GridBijectionTest,
    ::testing::Values(std::make_tuple(6, 6, 3, 2), std::make_tuple(6, 6, 2, 3),
                      std::make_tuple(8, 8, 2, 4), std::make_tuple(8, 8, 4, 2),
                      std::make_tuple(4, 4, 1, 1), std::make_tuple(12, 6, 6, 1),
                      std::make_tuple(2, 8, 2, 8)));

TEST(ProcessGrid, ColumnMajorNumbering) {
  const ProcessGrid g = ProcessGrid::columnMajor(4, 3, 2);
  for (index_t r = 0; r < 12; ++r) {
    const GridCoord c = g.coordOf(r);
    EXPECT_EQ(c.row, r % 4);
    EXPECT_EQ(c.col, r / 4);
    EXPECT_EQ(g.rankOf(c.row, c.col), r);
    EXPECT_EQ(g.nodeOf(r), r / 2);
  }
  EXPECT_EQ(g.nodeCount(), 6);
}

TEST(ProcessGrid, NodeLocalRequiresDivisibility) {
  EXPECT_THROW(ProcessGrid::nodeLocal(6, 6, 4, 2), CheckError);
  EXPECT_THROW(ProcessGrid::nodeLocal(6, 6, 3, 4), CheckError);
}

TEST(ProcessGrid, Eq4TrafficFavorsBalancedNodeGrids) {
  // Sec. IV-B: Kr ~ Kc minimizes per-node traffic. Compare a balanced
  // Frontier-style 2x4 node grid against a degenerate 8x1 on a square
  // process grid: balanced must move less data per node.
  const double n = 1.0e6;
  const ProcessGrid balanced = ProcessGrid::nodeLocal(16, 16, 2, 4);
  const ProcessGrid skinny = ProcessGrid::nodeLocal(16, 16, 8, 1);
  // Identical GCDs per node, different tiling.
  EXPECT_EQ(balanced.gcdsPerNode(), skinny.gcdsPerNode());
  EXPECT_LT(balanced.nodeTrafficBytes(n), skinny.nodeTrafficBytes(n));
}

TEST(ProcessGrid, TrafficFormulaMatchesEq4) {
  const ProcessGrid g = ProcessGrid::nodeLocal(8, 8, 2, 4);
  // Kr = 4, Kc = 2: 2N^2/4 + 2N^2/2 = N^2.
  EXPECT_EQ(g.nodeRows(), 4);
  EXPECT_EQ(g.nodeCols(), 2);
  const double n = 1000.0;
  EXPECT_DOUBLE_EQ(g.nodeTrafficBytes(n), 1.5 * n * n);
}

class BlockCyclicTest
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, index_t,
                                                 index_t>> {};

TEST_P(BlockCyclicTest, OwnershipPartitionsAllBlocks) {
  const auto [n, b, pr, pc] = GetParam();
  const BlockCyclic layout(n, b, pr, pc);
  const index_t nb = layout.globalBlocks();
  // Every block has exactly one owner; local counts add up.
  std::vector<index_t> perRankBlocks(static_cast<std::size_t>(pr * pc), 0);
  for (index_t bi = 0; bi < nb; ++bi) {
    for (index_t bj = 0; bj < nb; ++bj) {
      const GridCoord o = layout.ownerOf(bi, bj);
      ++perRankBlocks[static_cast<std::size_t>(o.row * pc + o.col)];
    }
  }
  index_t total = 0;
  for (index_t r = 0; r < pr; ++r) {
    for (index_t c = 0; c < pc; ++c) {
      const index_t expected =
          layout.localBlockRows(r) * layout.localBlockCols(c);
      EXPECT_EQ(perRankBlocks[static_cast<std::size_t>(r * pc + c)], expected)
          << "rank (" << r << "," << c << ")";
      total += expected;
    }
  }
  EXPECT_EQ(total, nb * nb);
}

TEST_P(BlockCyclicTest, GlobalLocalRoundTrip) {
  const auto [n, b, pr, pc] = GetParam();
  const BlockCyclic layout(n, b, pr, pc);
  const index_t nb = layout.globalBlocks();
  for (index_t bi = 0; bi < nb; ++bi) {
    const GridCoord o = layout.ownerOf(bi, 0);
    const index_t lbi = layout.localBlockRow(bi);
    EXPECT_EQ(layout.globalBlockRow(o.row, lbi), bi);
  }
  for (index_t bj = 0; bj < nb; ++bj) {
    const GridCoord o = layout.ownerOf(0, bj);
    const index_t lbj = layout.localBlockCol(bj);
    EXPECT_EQ(layout.globalBlockCol(o.col, lbj), bj);
  }
}

TEST_P(BlockCyclicTest, FirstTrailingBlockIsConsistent) {
  const auto [n, b, pr, pc] = GetParam();
  const BlockCyclic layout(n, b, pr, pc);
  const index_t nb = layout.globalBlocks();
  for (index_t k = 0; k < nb; ++k) {
    for (index_t prow = 0; prow < pr; ++prow) {
      const index_t first = layout.firstLocalBlockRowAtOrAfter(prow, k);
      // All local block rows before `first` map to global rows < k, and
      // `first` itself (if it exists) maps to a global row >= k.
      for (index_t l = 0; l < first; ++l) {
        EXPECT_LT(layout.globalBlockRow(prow, l), k);
      }
      if (first < layout.localBlockRows(prow)) {
        EXPECT_GE(layout.globalBlockRow(prow, first), k);
      }
    }
  }
}

TEST_P(BlockCyclicTest, ElementLocationRoundTrip) {
  const auto [n, b, pr, pc] = GetParam();
  const BlockCyclic layout(n, b, pr, pc);
  for (index_t i = 0; i < n; i += std::max<index_t>(1, n / 17)) {
    const auto loc = layout.locateRow(i);
    // Reconstruct the global row from (owner, local index).
    const index_t lbi = loc.localIndex / b;
    const index_t off = loc.localIndex % b;
    EXPECT_EQ(layout.globalBlockRow(loc.gridIndex, lbi) * b + off, i);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, BlockCyclicTest,
    ::testing::Values(std::make_tuple(64, 8, 2, 2),
                      std::make_tuple(96, 8, 3, 2),
                      std::make_tuple(128, 16, 2, 4),
                      std::make_tuple(60, 12, 1, 5),
                      std::make_tuple(48, 16, 3, 3),
                      std::make_tuple(256, 32, 4, 2),
                      std::make_tuple(40, 8, 5, 1)));

TEST(BlockCyclic, RejectsIndivisibleN) {
  EXPECT_THROW(BlockCyclic(100, 16, 2, 2), CheckError);
}

}  // namespace
}  // namespace hplmxp
