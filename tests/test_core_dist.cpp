// End-to-end tests of the distributed benchmark: Algorithm 1 on the simmpi
// runtime across process grids, block sizes, broadcast strategies and
// look-ahead settings.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/dist_context.h"
#include "core/hplai.h"
#include "core/ir_dist.h"
#include "core/lu_dist.h"
#include "core/single_solver.h"
#include "core/verify.h"
#include "device/shim.h"
#include "gen/matgen.h"
#include "simmpi/runtime.h"
#include "util/buffer.h"

namespace hplmxp {
namespace {

HplaiConfig baseConfig(index_t n, index_t b, index_t pr, index_t pc) {
  HplaiConfig cfg;
  cfg.n = n;
  cfg.b = b;
  cfg.pr = pr;
  cfg.pc = pc;
  cfg.seed = 2022;
  return cfg;
}

struct DistCase {
  index_t n, b, pr, pc;
  simmpi::BcastStrategy strategy;
  bool lookahead;
};

class DistRunTest : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistRunTest, ConvergesAndVerifies) {
  const DistCase c = GetParam();
  HplaiConfig cfg = baseConfig(c.n, c.b, c.pr, c.pc);
  cfg.panelBcast = c.strategy;
  cfg.lookahead = c.lookahead;
  std::vector<double> x;
  const HplaiResult r = runHplai(cfg, &x);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.residualInf, r.threshold);
  EXPECT_LT(r.scaledResidual(), 1.0);
  EXPECT_GE(r.irIterations, 1);
  // Independent dense FP64 verification of the returned solution.
  ProblemGenerator gen(cfg.seed, cfg.n);
  EXPECT_TRUE(hplaiValid(gen, x));
}

INSTANTIATE_TEST_SUITE_P(
    GridsAndStrategies, DistRunTest,
    ::testing::Values(
        // Single rank sanity.
        DistCase{96, 16, 1, 1, simmpi::BcastStrategy::kBcast, false},
        // Square and rectangular grids.
        DistCase{128, 16, 2, 2, simmpi::BcastStrategy::kBcast, true},
        DistCase{128, 16, 2, 2, simmpi::BcastStrategy::kBcast, false},
        DistCase{144, 16, 3, 2, simmpi::BcastStrategy::kRing1, true},
        DistCase{144, 16, 2, 3, simmpi::BcastStrategy::kRing1M, true},
        DistCase{128, 16, 4, 2, simmpi::BcastStrategy::kRing2M, true},
        DistCase{160, 16, 2, 4, simmpi::BcastStrategy::kIbcast, true},
        DistCase{128, 32, 2, 2, simmpi::BcastStrategy::kRing2M, false},
        // Uneven block distribution (nb not a multiple of pr/pc).
        DistCase{112, 16, 3, 3, simmpi::BcastStrategy::kBcast, true},
        DistCase{176, 16, 3, 2, simmpi::BcastStrategy::kRing2M, true},
        // A larger 9-rank run exercising deeper block-cyclic wrap.
        DistCase{576, 32, 3, 3, simmpi::BcastStrategy::kRing2M, true}));

TEST(DistRun, MatchesSingleDeviceSolution) {
  // The distributed factorization is numerically equivalent to the
  // single-device path: both converge to FP64 accuracy, so their solutions
  // agree to ~1e-10 on a well-conditioned system.
  HplaiConfig cfg = baseConfig(128, 16, 2, 2);
  std::vector<double> xDist;
  (void)runHplai(cfg, &xDist);

  ProblemGenerator gen(cfg.seed, cfg.n);
  std::vector<double> xSingle;
  (void)solveMixedSingle(gen, cfg.b, Vendor::kAmd, xSingle);

  ASSERT_EQ(xDist.size(), xSingle.size());
  for (std::size_t i = 0; i < xDist.size(); ++i) {
    EXPECT_NEAR(xDist[i], xSingle[i], 1e-9);
  }
}

TEST(DistRun, LookaheadProducesIdenticalFactors) {
  // Look-ahead only reorders *independent* GEMM region updates; every
  // matrix element sees the same dot products, so the factored local
  // matrices must match bitwise.
  const index_t n = 96, b = 16, pr = 2, pc = 2;
  std::vector<std::vector<float>> factored(2);
  for (int la = 0; la < 2; ++la) {
    HplaiConfig cfg = baseConfig(n, b, pr, pc);
    cfg.lookahead = la == 1;
    std::vector<float> rank0Local;
    simmpi::run(cfg.worldSize(), [&](simmpi::Comm& world) {
      DistContext ctx(world, cfg);
      ProblemGenerator gen(cfg.seed, cfg.n);
      Buffer<float> local(ctx.localRows() * ctx.localCols());
      const BlockCyclic& layout = ctx.layout();
      for (index_t lj = 0; lj < ctx.localCols() / b; ++lj) {
        for (index_t li = 0; li < ctx.localRows() / b; ++li) {
          gen.fillTile<float>(layout.globalBlockRow(ctx.myRow(), li) * b,
                              layout.globalBlockCol(ctx.myCol(), lj) * b, b,
                              b, local.data() + li * b +
                                  lj * b * ctx.localRows(),
                              ctx.localRows());
        }
      }
      BlasShim shim(cfg.vendor);
      DistLU lu(ctx, cfg, shim);
      lu.factor(local.data(), ctx.localRows());
      if (world.rank() == 0) {
        rank0Local.assign(local.data(), local.data() + local.size());
      }
    });
    factored[static_cast<std::size_t>(la)] = std::move(rank0Local);
  }
  ASSERT_EQ(factored[0].size(), factored[1].size());
  for (std::size_t i = 0; i < factored[0].size(); ++i) {
    ASSERT_EQ(factored[0][i], factored[1][i]) << "element " << i;
  }
}

TEST(DistRun, TraceBreakdownIsRecorded) {
  HplaiConfig cfg = baseConfig(128, 16, 2, 2);
  cfg.collectTrace = true;
  cfg.lookahead = false;  // the per-phase attribution is exact w/o overlap
  const HplaiResult r = runHplai(cfg);
  ASSERT_EQ(static_cast<index_t>(r.trace.size()), cfg.n / cfg.b);
  for (const IterationTrace& t : r.trace) {
    EXPECT_GE(t.diagSeconds, 0.0);
    EXPECT_GE(t.gemmSeconds, 0.0);
  }
  // Trailing size decreases monotonically to zero.
  EXPECT_EQ(r.trace.front().trailingBlocks, cfg.n / cfg.b - 1);
  EXPECT_EQ(r.trace.back().trailingBlocks, 0);
  // Early iterations move more GEMM work than the last one.
  EXPECT_GE(r.trace.front().gemmSeconds, r.trace.back().gemmSeconds);
}

TEST(DistRun, DeviceMemoryAccountingRejectsOversizedProblems) {
  HplaiConfig cfg = baseConfig(128, 16, 1, 1);
  cfg.deviceMemoryBytes = 1024;  // absurdly small device
  EXPECT_THROW(runHplai(cfg), CheckError);
  cfg.deviceMemoryBytes = 1ULL << 30;
  EXPECT_NO_THROW(runHplai(cfg));
}

TEST(DistRun, ResultAccountingUsesHplaiFlops) {
  HplaiConfig cfg = baseConfig(96, 16, 2, 2);
  const HplaiResult r = runHplai(cfg);
  const double d = 96.0;
  EXPECT_DOUBLE_EQ(r.effectiveFlops(),
                   (2.0 / 3.0) * d * d * d + 1.5 * d * d);
  EXPECT_GT(r.gflopsTotal(), 0.0);
  EXPECT_NEAR(r.gflopsPerRank() * 4.0, r.gflopsTotal(), 1e-9);
}

TEST(DistIr, ResidualMatchesDenseComputation) {
  const index_t n = 96, b = 16;
  HplaiConfig cfg = baseConfig(n, b, 2, 2);
  simmpi::run(cfg.worldSize(), [&](simmpi::Comm& world) {
    DistContext ctx(world, cfg);
    ProblemGenerator gen(cfg.seed, n);
    DistIR ir(ctx, cfg, gen);
    // Arbitrary x: residual must equal the dense FP64 computation.
    std::vector<double> x(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] = 0.001 * static_cast<double>(i % 7);
    }
    std::vector<double> r;
    ir.residual(x, r);
    for (index_t i = 0; i < n; i += 9) {
      double acc = gen.rhs(i);
      for (index_t j = 0; j < n; ++j) {
        acc -= gen.entry(i, j) * x[static_cast<std::size_t>(j)];
      }
      EXPECT_NEAR(r[static_cast<std::size_t>(i)], acc, 1e-9)
          << "row " << i;
    }
  });
}

TEST(DistIr, BlockTrsvSolvesAgainstFactoredMatrix) {
  const index_t n = 96, b = 16;
  HplaiConfig cfg = baseConfig(n, b, 2, 2);
  simmpi::run(cfg.worldSize(), [&](simmpi::Comm& world) {
    DistContext ctx(world, cfg);
    ProblemGenerator gen(cfg.seed, n);
    // Factor a single-device copy, then distribute the SAME factors.
    std::vector<float> full(static_cast<std::size_t>(n * n));
    gen.fillTile<float>(0, 0, n, n, full.data(), n);
    factorMixedSingle(n, b, full.data(), n, Vendor::kAmd);

    Buffer<float> local(ctx.localRows() * ctx.localCols());
    const BlockCyclic& layout = ctx.layout();
    for (index_t lj = 0; lj < ctx.localCols() / b; ++lj) {
      const index_t gj = layout.globalBlockCol(ctx.myCol(), lj);
      for (index_t li = 0; li < ctx.localRows() / b; ++li) {
        const index_t gi = layout.globalBlockRow(ctx.myRow(), li);
        for (index_t jj = 0; jj < b; ++jj) {
          for (index_t ii = 0; ii < b; ++ii) {
            local[li * b + ii + (lj * b + jj) * ctx.localRows()] =
                full[static_cast<std::size_t>(gi * b + ii +
                                              (gj * b + jj) * n)];
          }
        }
      }
    }

    DistIR ir(ctx, cfg, gen);
    std::vector<double> rhs(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) {
      rhs[static_cast<std::size_t>(i)] = std::sin(static_cast<double>(i));
    }
    auto dist = rhs;
    ir.blockTrsv(blas::Uplo::kLower, local.data(), ctx.localRows(), dist);
    ir.blockTrsv(blas::Uplo::kUpper, local.data(), ctx.localRows(), dist);

    // Serial oracle on the full factored matrix.
    auto serial = rhs;
    blas::strsvMixed(blas::Uplo::kLower, blas::Diag::kUnit, n, full.data(), n,
                     serial.data());
    blas::strsvMixed(blas::Uplo::kUpper, blas::Diag::kNonUnit, n, full.data(),
                     n, serial.data());
    for (index_t i = 0; i < n; ++i) {
      EXPECT_NEAR(dist[static_cast<std::size_t>(i)],
                  serial[static_cast<std::size_t>(i)],
                  1e-9 * std::max(1.0,
                                  std::fabs(serial[static_cast<std::size_t>(
                                      i)])))
          << "i=" << i;
    }
  });
}

TEST(DistRun, InvalidConfigsThrow) {
  EXPECT_THROW(runHplai(baseConfig(100, 16, 2, 2)), CheckError);  // N % B
  HplaiConfig cfg = baseConfig(64, 16, 8, 8);  // nb < max(pr, pc)
  EXPECT_THROW(runHplai(cfg), CheckError);
}

}  // namespace
}  // namespace hplmxp
