// Stress tests of the message-passing runtime: randomized traffic
// patterns, interleaved collectives, and repeated splits — probing for
// ordering bugs, tag cross-talk, lost wakeups, and deadlocks that the
// structured benchmark traffic would not expose.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "simmpi/comm.h"
#include "simmpi/ring_bcast.h"
#include "simmpi/runtime.h"

namespace hplmxp {
namespace {

using simmpi::Comm;

/// Deterministic per-rank RNG (SplitMix64).
struct Rng {
  std::uint64_t s;
  std::uint64_t next() {
    std::uint64_t x = (s += 0x9E3779B97F4A7C15ULL);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
  }
  index_t below(index_t n) { return static_cast<index_t>(next() % n); }
};

TEST(SimmpiStress, AllToAllRandomSizedMessages) {
  // Every rank sends one message of pseudo-random size to every other
  // rank, then receives from everyone; sizes are derivable by both sides.
  constexpr index_t kRanks = 8;
  constexpr index_t kRounds = 20;
  simmpi::run(kRanks, [](Comm& comm) {
    for (index_t round = 0; round < kRounds; ++round) {
      for (index_t dst = 0; dst < comm.size(); ++dst) {
        if (dst == comm.rank()) {
          continue;
        }
        // Size depends on (round, src, dst): both peers can compute it.
        const index_t len = 1 + (round * 131 + comm.rank() * 17 + dst) % 97;
        std::vector<std::int32_t> payload(static_cast<std::size_t>(len));
        for (index_t i = 0; i < len; ++i) {
          payload[static_cast<std::size_t>(i)] =
              static_cast<std::int32_t>(round * 1000000 +
                                        comm.rank() * 1000 + i);
        }
        comm.send(dst, round, payload.data(), len);
      }
      for (index_t src = 0; src < comm.size(); ++src) {
        if (src == comm.rank()) {
          continue;
        }
        const index_t len =
            1 + (round * 131 + src * 17 + comm.rank()) % 97;
        std::vector<std::int32_t> payload(static_cast<std::size_t>(len));
        comm.recv(src, round, payload.data(), len);
        for (index_t i = 0; i < len; ++i) {
          ASSERT_EQ(payload[static_cast<std::size_t>(i)],
                    static_cast<std::int32_t>(round * 1000000 + src * 1000 +
                                              i));
        }
      }
    }
  });
}

TEST(SimmpiStress, InterleavedCollectivesKeepOrder) {
  // Alternate allreduce / bcast / barrier / maxloc many times; any
  // tag-reuse bug between successive collectives would corrupt values.
  constexpr index_t kRanks = 6;
  simmpi::run(kRanks, [](Comm& comm) {
    double running = 1.0;
    for (int round = 0; round < 50; ++round) {
      double v = static_cast<double>(comm.rank() + round);
      comm.allreduceSum(&v, 1);
      const double expectSum =
          static_cast<double>(kRanks * round + 15);  // 0+..+5 = 15
      ASSERT_DOUBLE_EQ(v, expectSum);

      double payload = comm.rank() == round % kRanks ? v * 2.0 : -1.0;
      comm.bcast(round % kRanks, &payload, 1);
      ASSERT_DOUBLE_EQ(payload, expectSum * 2.0);

      const auto ml = comm.allreduceMaxLoc(
          static_cast<double>((comm.rank() * 7 + round) % kRanks),
          comm.rank());
      ASSERT_GE(ml.value, 0.0);
      comm.barrier();
      running += payload;
    }
    ASSERT_GT(running, 0.0);
  });
}

TEST(SimmpiStress, ManyConcurrentRingBroadcasts) {
  // Every rank is root of its own ring broadcast, fired back to back with
  // small segments; all five strategies in rotation.
  constexpr index_t kRanks = 7;
  simmpi::run(kRanks, [](Comm& comm) {
    for (int round = 0; round < 10; ++round) {
      for (index_t root = 0; root < comm.size(); ++root) {
        const auto strategy = simmpi::kAllBcastStrategies[
            static_cast<std::size_t>((round + root) % 5)];
        std::vector<std::uint64_t> buf(33, 0);
        if (comm.rank() == root) {
          for (std::size_t i = 0; i < buf.size(); ++i) {
            buf[i] = static_cast<std::uint64_t>(round) << 32 |
                     static_cast<std::uint64_t>(root * 100 + i);
          }
        }
        simmpi::broadcast(comm, strategy, root, buf.data(),
                          static_cast<index_t>(buf.size()),
                          /*segmentBytes=*/32);
        for (std::size_t i = 0; i < buf.size(); ++i) {
          ASSERT_EQ(buf[i], static_cast<std::uint64_t>(round) << 32 |
                                static_cast<std::uint64_t>(root * 100 + i));
        }
      }
    }
  });
}

TEST(SimmpiStress, RepeatedSplitsAndSubCommTraffic) {
  // Split into changing groupings every round and run collectives inside
  // each; epoch bookkeeping must keep the groups straight.
  constexpr index_t kRanks = 8;
  simmpi::run(kRanks, [](Comm& comm) {
    for (index_t round = 1; round <= 8; ++round) {
      const index_t color = comm.rank() % round;
      Comm sub = comm.split(color, comm.rank());
      double v = 1.0;
      sub.allreduceSum(&v, 1);
      // Group size: ranks with rank%round == color.
      index_t expected = 0;
      for (index_t r = 0; r < kRanks; ++r) {
        expected += (r % round == color) ? 1 : 0;
      }
      ASSERT_DOUBLE_EQ(v, static_cast<double>(expected))
          << "round " << round;
      // P2P within the subcomm.
      if (sub.size() >= 2) {
        const index_t partner =
            sub.rank() % 2 == 0
                ? std::min<index_t>(sub.rank() + 1, sub.size() - 1)
                : sub.rank() - 1;
        if (partner != sub.rank()) {
          double mine = static_cast<double>(sub.rank());
          double theirs = -1.0;
          sub.sendrecv(partner, 5, &mine, &theirs, 1);
          ASSERT_DOUBLE_EQ(theirs, static_cast<double>(partner));
        }
      }
      comm.barrier();
    }
  });
}

TEST(SimmpiStress, RandomizedPairwiseExchanges) {
  // A random (but globally agreed) pairing per round; partners exchange
  // random-length payloads. Runs enough rounds to shake out races.
  constexpr index_t kRanks = 8;
  simmpi::run(kRanks, [](Comm& comm) {
    Rng pairRng{12345};  // same seed on every rank -> same pairings
    for (int round = 0; round < 30; ++round) {
      // Fisher-Yates with the shared RNG.
      std::vector<index_t> perm(kRanks);
      std::iota(perm.begin(), perm.end(), 0);
      for (index_t i = kRanks - 1; i > 0; --i) {
        std::swap(perm[static_cast<std::size_t>(i)],
                  perm[static_cast<std::size_t>(pairRng.below(i + 1))]);
      }
      // Pair perm[0]<->perm[1], perm[2]<->perm[3], ...
      index_t partner = -1;
      for (index_t i = 0; i < kRanks; i += 2) {
        if (perm[static_cast<std::size_t>(i)] == comm.rank()) {
          partner = perm[static_cast<std::size_t>(i + 1)];
        }
        if (perm[static_cast<std::size_t>(i + 1)] == comm.rank()) {
          partner = perm[static_cast<std::size_t>(i)];
        }
      }
      ASSERT_GE(partner, 0);
      const index_t len = 1 + (round * 7) % 55;
      std::vector<double> mine(static_cast<std::size_t>(len),
                               static_cast<double>(comm.rank()));
      std::vector<double> theirs(static_cast<std::size_t>(len), -1.0);
      comm.sendrecv(partner, 1000 + round, mine.data(), theirs.data(), len);
      for (double v : theirs) {
        ASSERT_DOUBLE_EQ(v, static_cast<double>(partner));
      }
    }
  });
}

TEST(SimmpiStress, LargePayloadIntegrity) {
  // A multi-megabyte broadcast with a checksum: catches torn copies.
  simmpi::run(4, [](Comm& comm) {
    const index_t len = 1 << 20;  // 8 MiB of doubles
    std::vector<double> buf(static_cast<std::size_t>(len), 0.0);
    if (comm.rank() == 1) {
      for (index_t i = 0; i < len; ++i) {
        buf[static_cast<std::size_t>(i)] = static_cast<double>(i % 1009);
      }
    }
    simmpi::broadcast(comm, simmpi::BcastStrategy::kRing2M, 1, buf.data(),
                      len);
    double sum = 0.0;
    for (double v : buf) {
      sum += v;
    }
    // Expected: sum over i of (i % 1009).
    double expect = 0.0;
    for (index_t i = 0; i < len; ++i) {
      expect += static_cast<double>(i % 1009);
    }
    EXPECT_DOUBLE_EQ(sum, expect);
  });
}

}  // namespace
}  // namespace hplmxp
