// CLI option parsing and command dispatch.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "cli/commands.h"
#include "cli/options.h"

namespace hplmxp::cli {
namespace {

TEST(Options, ParsesEqualsAndSpaceForms) {
  const Options o = Options::parseArgs(
      {"--n=256", "--b", "32", "--flag", "--name", "ring2m"});
  EXPECT_EQ(o.getInt("n", 0), 256);
  EXPECT_EQ(o.getInt("b", 0), 32);
  EXPECT_TRUE(o.getBool("flag", false));
  EXPECT_EQ(o.getString("name", ""), "ring2m");
}

TEST(Options, FlagFollowedByOptionIsBareFlag) {
  const Options o = Options::parseArgs({"--trace", "--n=5"});
  EXPECT_TRUE(o.getBool("trace", false));
  EXPECT_EQ(o.getInt("n", 0), 5);
}

TEST(Options, EmptyValueIsBoolTrueButInvalidInt) {
  const Options o = Options::parseArgs({"--trace"});
  EXPECT_TRUE(o.getBool("trace", false));
  EXPECT_THROW((void)o.getInt("trace", 0), CheckError);
}

TEST(Options, PositionalArgumentsCollected) {
  const Options o = Options::parseArgs({"first", "--k=1", "second"});
  ASSERT_EQ(o.positional().size(), 2u);
  EXPECT_EQ(o.positional()[0], "first");
  EXPECT_EQ(o.positional()[1], "second");
}

TEST(Options, TypedGettersValidate) {
  const Options o = Options::parseArgs({"--x=abc", "--y=1.5", "--z=true"});
  EXPECT_THROW((void)o.getInt("x", 0), CheckError);
  EXPECT_DOUBLE_EQ(o.getDouble("y", 0.0), 1.5);
  EXPECT_TRUE(o.getBool("z", false));
  EXPECT_THROW((void)o.getBool("y", false), CheckError);
  // Fallbacks for absent keys.
  EXPECT_EQ(o.getInt("missing", 7), 7);
  EXPECT_EQ(o.getString("missing", "d"), "d");
}

TEST(Options, ConfigFileLayering) {
  const std::string path = "/tmp/hplmxp_test_config.txt";
  {
    std::ofstream f(path);
    f << "# comment line\n"
      << "n 1024\n"
      << "bcast ring1m   # trailing comment\n"
      << "\n"
      << "b 128\n";
  }
  Options file = Options::parseFile(path);
  EXPECT_EQ(file.getInt("n", 0), 1024);
  EXPECT_EQ(file.getString("bcast", ""), "ring1m");
  // Command line overrides the file.
  Options cmd = Options::parseArgs({"--n=256"});
  file.merge(cmd);
  EXPECT_EQ(file.getInt("n", 0), 256);
  EXPECT_EQ(file.getInt("b", 0), 128);
  std::remove(path.c_str());
}

TEST(Options, ConfigFileRejectsBadLines) {
  const std::string path = "/tmp/hplmxp_test_config_bad.txt";
  {
    std::ofstream f(path);
    f << "key value extra\n";
  }
  EXPECT_THROW(Options::parseFile(path), CheckError);
  std::remove(path.c_str());
  EXPECT_THROW(Options::parseFile("/nonexistent/file"), CheckError);
}

TEST(Options, UnusedKeyTracking) {
  const Options o = Options::parseArgs({"--used=1", "--typo=2"});
  (void)o.getInt("used", 0);
  const auto unused = o.unusedKeys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Dispatch, HelpAndUnknownCommands) {
  EXPECT_EQ(dispatch({"help"}), 0);
  EXPECT_EQ(dispatch({}), 1);
  EXPECT_EQ(dispatch({"frobnicate"}), 1);
  EXPECT_NE(usage().find("project"), std::string::npos);
}

TEST(Dispatch, RunCommandExecutesEndToEnd) {
  EXPECT_EQ(dispatch({"run", "--n=128", "--b=16", "--pr=2", "--pc=2"}), 0);
  EXPECT_EQ(dispatch({"run", "--n=128", "--b=16", "--pr=1", "--pc=1",
                      "--refiner=gmres"}),
            0);
}

TEST(Dispatch, HplCommandExecutesEndToEnd) {
  EXPECT_EQ(dispatch({"hpl", "--n=128", "--b=16", "--pr=2", "--pc=2",
                      "--diag-shift=0"}),
            0);
}

TEST(Dispatch, ProjectAndTuneAndSpecs) {
  EXPECT_EQ(dispatch({"project", "--machine=frontier", "--pr=32"}), 0);
  EXPECT_EQ(dispatch({"project", "--machine=summit", "--pr=54"}), 0);
  EXPECT_EQ(dispatch({"tune", "--machine=frontier"}), 0);
  EXPECT_EQ(dispatch({"specs"}), 0);
  EXPECT_EQ(dispatch({"scan", "--fleet=64", "--n=64", "--b=16"}), 0);
}

TEST(Dispatch, BadOptionValueReturnsError) {
  EXPECT_EQ(dispatch({"project", "--machine=cray1"}), 2);
  EXPECT_EQ(dispatch({"run", "--n=abc"}), 2);
}

}  // namespace
}  // namespace hplmxp::cli
