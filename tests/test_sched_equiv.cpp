// Equivalence of the dataflow tile scheduler against the bulk reference
// schedule. The mathematical argument: every trailing-matrix element's
// update at step k is one fixed-order dot product over the inner dimension
// B, TRSM left-solves treat RHS columns independently and right-solves
// treat rows independently, and CAST is element-wise — so tiling those
// kernels and reordering tile execution cannot change a single bit of the
// factors. These tests enforce that claim across grids, shapes, broadcast
// strategies, randomized property-based configs, fault injection, and the
// degenerate geometries where a scheduler would deadlock if its dependency
// graph were wrong.
#include <gtest/gtest.h>

#include <chrono>
#include <random>
#include <string>
#include <vector>

#include "core/dist_context.h"
#include "core/hplai.h"
#include "core/ir_dist.h"
#include "core/lu_dist.h"
#include "device/shim.h"
#include "gen/matgen.h"
#include "simmpi/faults.h"
#include "simmpi/runtime.h"
#include "util/buffer.h"

namespace hplmxp {
namespace {

HplaiConfig baseConfig(index_t n, index_t b, index_t pr, index_t pc) {
  HplaiConfig cfg;
  cfg.n = n;
  cfg.b = b;
  cfg.pr = pr;
  cfg.pc = pc;
  cfg.seed = 2022;
  return cfg;
}

/// Factors under cfg on every rank and returns each rank's factored local
/// matrix (the complete distributed factor, not just rank 0's shard).
std::vector<std::vector<float>> factorAllRanks(
    const HplaiConfig& cfg,
    const simmpi::RunOptions& opts = simmpi::RunOptions{}) {
  std::vector<std::vector<float>> locals(
      static_cast<std::size_t>(cfg.worldSize()));
  simmpi::run(cfg.worldSize(), [&](simmpi::Comm& world) {
    DistContext ctx(world, cfg);
    const ProblemGenerator gen(cfg.seed, cfg.n);
    const index_t b = cfg.b;
    const index_t lda = ctx.localRows();
    Buffer<float> local(ctx.localRows() * ctx.localCols());
    const BlockCyclic& layout = ctx.layout();
    for (index_t lj = 0; lj < ctx.localCols() / b; ++lj) {
      for (index_t li = 0; li < ctx.localRows() / b; ++li) {
        gen.fillTile<float>(layout.globalBlockRow(ctx.myRow(), li) * b,
                            layout.globalBlockCol(ctx.myCol(), lj) * b, b, b,
                            local.data() + li * b + lj * b * lda, lda);
      }
    }
    BlasShim shim(cfg.vendor);
    DistLU lu(ctx, cfg, shim);
    lu.factor(local.data(), lda);
    locals[static_cast<std::size_t>(world.rank())].assign(
        local.data(), local.data() + local.size());
  }, opts);
  return locals;
}

void expectBitwiseEqual(const std::vector<std::vector<float>>& bulk,
                        const std::vector<std::vector<float>>& dataflow,
                        const std::string& label) {
  ASSERT_EQ(bulk.size(), dataflow.size()) << label;
  for (std::size_t r = 0; r < bulk.size(); ++r) {
    ASSERT_EQ(bulk[r].size(), dataflow[r].size())
        << label << " rank " << r;
    for (std::size_t i = 0; i < bulk[r].size(); ++i) {
      ASSERT_EQ(bulk[r][i], dataflow[r][i])
          << label << " rank " << r << " element " << i
          << " (bitwise mismatch)";
    }
  }
}

void expectSchedulersMatch(HplaiConfig cfg, const std::string& label) {
  cfg.scheduler = HplaiConfig::Scheduler::kBulk;
  const auto bulk = factorAllRanks(cfg);
  cfg.scheduler = HplaiConfig::Scheduler::kDataflow;
  const auto dataflow = factorAllRanks(cfg);
  expectBitwiseEqual(bulk, dataflow, label);
}

TEST(SchedEquiv, BitwiseAcrossGridsShapesAndBcasts) {
  struct Case {
    index_t n, b, pr, pc;
    simmpi::BcastStrategy strategy;
    bool lookahead;
  };
  const Case cases[] = {
      {96, 16, 1, 1, simmpi::BcastStrategy::kBcast, false},
      {96, 16, 2, 2, simmpi::BcastStrategy::kBcast, true},
      {128, 16, 2, 2, simmpi::BcastStrategy::kRing2M, true},
      {96, 16, 3, 2, simmpi::BcastStrategy::kRing1, false},
      {144, 16, 2, 3, simmpi::BcastStrategy::kRing1M, true},
      {128, 32, 2, 2, simmpi::BcastStrategy::kIbcast, false},
      {192, 32, 3, 3, simmpi::BcastStrategy::kRing2M, true},
  };
  for (const Case& c : cases) {
    HplaiConfig cfg = baseConfig(c.n, c.b, c.pr, c.pc);
    cfg.panelBcast = c.strategy;
    cfg.lookahead = c.lookahead;
    expectSchedulersMatch(
        cfg, "n=" + std::to_string(c.n) + " b=" + std::to_string(c.b) +
                 " grid=" + std::to_string(c.pr) + "x" +
                 std::to_string(c.pc));
  }
}

TEST(SchedEquiv, PropertyRandomizedConfigs) {
  // ~50 randomized (seed, N, B, Pr x Pc, bcast, lookahead) draws. Every
  // one must produce bitwise-identical factors on every rank. Problem
  // sizes follow the paper's adjustment rule so all ranks own full blocks.
  std::mt19937 rng(42);
  std::uniform_int_distribution<int> gridDim(1, 3);
  std::uniform_int_distribution<int> bPick(0, 2);
  std::uniform_int_distribution<int> blocksPick(2, 5);
  std::uniform_int_distribution<int> bcastPick(0, 4);
  std::uniform_int_distribution<std::uint64_t> seedPick(1, 1u << 20);
  const simmpi::BcastStrategy strategies[] = {
      simmpi::BcastStrategy::kBcast, simmpi::BcastStrategy::kIbcast,
      simmpi::BcastStrategy::kRing1, simmpi::BcastStrategy::kRing1M,
      simmpi::BcastStrategy::kRing2M};
  const index_t blockSizes[] = {8, 16, 32};

  int executed = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const index_t pr = gridDim(rng);
    const index_t pc = gridDim(rng);
    const index_t b = blockSizes[bPick(rng)];
    const index_t maxDim = std::max(pr, pc);
    // n = b * (multiple of lcm(pr,pc)) >= b * maxDim, capped for runtime.
    const index_t requested = b * maxDim * blocksPick(rng);
    const index_t n = adjustProblemSize(requested, b, pr, pc);
    if (n > 240 || n / b < maxDim) {
      continue;  // keep the sweep cheap; the shape mix stays rich
    }
    HplaiConfig cfg = baseConfig(n, b, pr, pc);
    cfg.seed = seedPick(rng);
    cfg.panelBcast = strategies[bcastPick(rng)];
    cfg.lookahead = (trial % 2) == 0;
    expectSchedulersMatch(
        cfg, "trial=" + std::to_string(trial) + " n=" + std::to_string(n) +
                 " b=" + std::to_string(b) + " grid=" + std::to_string(pr) +
                 "x" + std::to_string(pc) + " seed=" +
                 std::to_string(cfg.seed));
    ++executed;
  }
  // The cap above must not hollow the sweep out.
  EXPECT_GE(executed, 35);
}

TEST(SchedEquiv, IrResidualTrajectoriesIdentical) {
  // The IR trajectory is a deterministic function of the factors, so
  // bitwise-equal factors imply an identical residual path. Enforce it
  // directly: refine under increasing iteration budgets and compare the
  // residual after every budget — that is the trajectory point j — plus
  // the full FP64 solution vector bitwise at the end.
  HplaiConfig cfg = baseConfig(128, 16, 2, 2);
  cfg.panelBcast = simmpi::BcastStrategy::kRing2M;
  const int budgets = 5;

  struct Trajectory {
    std::vector<double> residuals;
    std::vector<index_t> iterations;
    std::vector<double> solution;
  };
  auto runOne = [&](HplaiConfig::Scheduler sched) {
    HplaiConfig c = cfg;
    c.scheduler = sched;
    Trajectory t;
    simmpi::run(c.worldSize(), [&](simmpi::Comm& world) {
      DistContext ctx(world, c);
      const ProblemGenerator gen(c.seed, c.n);
      const index_t b = c.b;
      const index_t lda = ctx.localRows();
      Buffer<float> local(ctx.localRows() * ctx.localCols());
      const BlockCyclic& layout = ctx.layout();
      for (index_t lj = 0; lj < ctx.localCols() / b; ++lj) {
        for (index_t li = 0; li < ctx.localRows() / b; ++li) {
          gen.fillTile<float>(layout.globalBlockRow(ctx.myRow(), li) * b,
                              layout.globalBlockCol(ctx.myCol(), lj) * b, b,
                              b, local.data() + li * b + lj * b * lda, lda);
        }
      }
      BlasShim shim(c.vendor);
      DistLU lu(ctx, c, shim);
      lu.factor(local.data(), lda);
      for (int j = 1; j <= budgets; ++j) {
        HplaiConfig cj = c;
        cj.maxIrIterations = j;
        cj.irDivergenceStrikes = 0;  // pure classical IR path
        DistIR ir(ctx, cj, gen);
        std::vector<double> x(static_cast<std::size_t>(c.n));
        for (index_t i = 0; i < c.n; ++i) {
          x[static_cast<std::size_t>(i)] = gen.rhs(i) / gen.entry(i, i);
        }
        const IrOutcome out = ir.refine(local.data(), lda, x);
        if (world.rank() == 0) {
          t.residuals.push_back(out.residualInf);
          t.iterations.push_back(out.iterations);
          if (j == budgets) {
            t.solution = x;
          }
        }
      }
    });
    return t;
  };

  const Trajectory bulk = runOne(HplaiConfig::Scheduler::kBulk);
  const Trajectory dataflow = runOne(HplaiConfig::Scheduler::kDataflow);
  ASSERT_EQ(bulk.residuals.size(), static_cast<std::size_t>(budgets));
  ASSERT_EQ(dataflow.residuals.size(), static_cast<std::size_t>(budgets));
  for (int j = 0; j < budgets; ++j) {
    // Bitwise: both schedulers walked the same residual trajectory.
    EXPECT_EQ(bulk.residuals[static_cast<std::size_t>(j)],
              dataflow.residuals[static_cast<std::size_t>(j)])
        << "residual after IR budget " << (j + 1);
    EXPECT_EQ(bulk.iterations[static_cast<std::size_t>(j)],
              dataflow.iterations[static_cast<std::size_t>(j)]);
  }
  ASSERT_EQ(bulk.solution.size(), dataflow.solution.size());
  for (std::size_t i = 0; i < bulk.solution.size(); ++i) {
    ASSERT_EQ(bulk.solution[i], dataflow.solution[i])
        << "solution element " << i;
  }
}

TEST(SchedEquiv, EndToEndResultsMatch) {
  for (const auto sched : {HplaiConfig::Scheduler::kBulk,
                           HplaiConfig::Scheduler::kDataflow}) {
    HplaiConfig cfg = baseConfig(128, 16, 2, 2);
    cfg.scheduler = sched;
    const HplaiResult r = runHplai(cfg);
    EXPECT_TRUE(r.converged) << toString(sched);
    EXPECT_LT(r.scaledResidual(), 1.0) << toString(sched);
  }
  // And the numeric outputs agree bitwise between the two engines.
  HplaiConfig cfg = baseConfig(128, 16, 2, 2);
  cfg.scheduler = HplaiConfig::Scheduler::kBulk;
  const HplaiResult bulk = runHplai(cfg);
  cfg.scheduler = HplaiConfig::Scheduler::kDataflow;
  const HplaiResult dataflow = runHplai(cfg);
  EXPECT_EQ(bulk.irIterations, dataflow.irIterations);
  EXPECT_EQ(bulk.residualInf, dataflow.residualInf);
  EXPECT_EQ(bulk.converged, dataflow.converged);
}

TEST(SchedEquiv, EquivalentUnderDelayFaultInjection) {
  // Timing faults (random injected delays, a stalling rank) perturb the
  // schedule without corrupting data: the dataflow factors must stay
  // bitwise identical to a clean bulk run. This is the PR-1 chaos harness
  // aimed at the scheduler.
  HplaiConfig cfg = baseConfig(96, 16, 2, 2);
  cfg.scheduler = HplaiConfig::Scheduler::kBulk;
  const auto clean = factorAllRanks(cfg);

  for (const char* scenario : {"delay", "stall"}) {
    simmpi::RunOptions opts;
    opts.faults = std::make_shared<simmpi::FaultInjector>(
        simmpi::faultScenario(scenario, 7, cfg.worldSize()),
        cfg.worldSize());
    opts.timeout = std::chrono::milliseconds(20000);
    HplaiConfig df = cfg;
    df.scheduler = HplaiConfig::Scheduler::kDataflow;
    const auto faulted = factorAllRanks(df, opts);
    expectBitwiseEqual(clean, faulted, std::string("scenario=") + scenario);
  }
}

// ---- Deadlock/starvation regressions: degenerate geometries ------------

TEST(SchedDeadlock, SingleTileMatrixTerminates) {
  // N == B: the whole matrix is one tile; the graph is a single GETRF
  // task (no panels, no trailing update, no broadcasts).
  HplaiConfig cfg = baseConfig(32, 32, 1, 1);
  expectSchedulersMatch(cfg, "single-tile");
}

TEST(SchedDeadlock, OneByOneGridTerminates) {
  // All collectives are single-member no-ops; every dependency must be
  // locally satisfiable.
  HplaiConfig cfg = baseConfig(128, 16, 1, 1);
  expectSchedulersMatch(cfg, "1x1-grid");
}

TEST(SchedDeadlock, MinimalLocalExtentTerminates) {
  // Each rank owns exactly one block (N_L == B): the trailing region on
  // every rank empties after its first step, so most steps have zero
  // local tiles — the classic shape for a scheduler that assumes "every
  // step has work on every rank" to hang on.
  HplaiConfig cfg = baseConfig(64, 32, 2, 2);
  expectSchedulersMatch(cfg, "one-block-per-rank");
}

TEST(SchedDeadlock, UnevenBlockDistributionTerminates) {
  // n/b = 3 on a 2x2 grid: ranks own 1 or 2 blocks per dimension, so
  // local extents differ across the grid and some ranks run out of
  // trailing tiles steps before others.
  HplaiConfig cfg = baseConfig(48, 16, 2, 2);
  expectSchedulersMatch(cfg, "uneven-blocks");
}

TEST(SchedDeadlock, StalledRankTerminatesOrFailsStructured) {
  // A chaos `stall` fault parks one rank inside comm ops. With a comm
  // timeout armed the run must either complete with correct factors or
  // fail with a structured error — never hang ctest.
  HplaiConfig cfg = baseConfig(96, 16, 2, 2);
  cfg.scheduler = HplaiConfig::Scheduler::kDataflow;

  simmpi::FaultConfig faults = simmpi::faultScenario("stall", 3, 4);
  simmpi::RunOptions opts;
  opts.faults = std::make_shared<simmpi::FaultInjector>(faults, 4);
  opts.timeout = std::chrono::milliseconds(2000);

  bool structuredError = false;
  std::vector<std::vector<float>> locals;
  try {
    locals = factorAllRanks(cfg, opts);
  } catch (const CheckError&) {
    structuredError = true;  // CommTimeoutError / MultiRankError etc.
  }
  if (!structuredError) {
    // Completed despite the stall: results must be correct.
    cfg.scheduler = HplaiConfig::Scheduler::kBulk;
    const auto clean = factorAllRanks(cfg);
    expectBitwiseEqual(clean, locals, "stall-completed");
  }
  SUCCEED();  // reaching here at all proves termination
}

TEST(SchedEquiv, DataflowTraceAndTimelineArePopulated) {
  HplaiConfig cfg = baseConfig(96, 16, 2, 2);
  cfg.scheduler = HplaiConfig::Scheduler::kDataflow;
  cfg.collectTrace = true;
  std::vector<IterationTrace> trace;
  TaskGraph::ExecStats stats;
  simmpi::run(cfg.worldSize(), [&](simmpi::Comm& world) {
    DistContext ctx(world, cfg);
    const ProblemGenerator gen(cfg.seed, cfg.n);
    const index_t b = cfg.b;
    const index_t lda = ctx.localRows();
    Buffer<float> local(ctx.localRows() * ctx.localCols());
    const BlockCyclic& layout = ctx.layout();
    for (index_t lj = 0; lj < ctx.localCols() / b; ++lj) {
      for (index_t li = 0; li < ctx.localRows() / b; ++li) {
        gen.fillTile<float>(layout.globalBlockRow(ctx.myRow(), li) * b,
                            layout.globalBlockCol(ctx.myCol(), lj) * b, b, b,
                            local.data() + li * b + lj * b * lda, lda);
      }
    }
    BlasShim shim(cfg.vendor);
    DistLU lu(ctx, cfg, shim);
    std::vector<IterationTrace> t = lu.factor(local.data(), lda);
    if (world.rank() == 0) {
      trace = std::move(t);
      stats = lu.schedStats();
    }
  });
  ASSERT_EQ(static_cast<index_t>(trace.size()), cfg.n / cfg.b);
  double gemmTotal = 0.0;
  for (const IterationTrace& t : trace) {
    gemmTotal += t.gemmSeconds;
  }
  EXPECT_GT(gemmTotal, 0.0);
  EXPECT_GT(stats.records.size(), 0u);
  EXPECT_EQ(stats.tasksSkipped, 0);
  EXPECT_FALSE(stats.cancelled);
  // Every record has a sane interval and every kind maps to a name.
  for (const TaskGraph::TaskRecord& rec : stats.records) {
    EXPECT_GE(rec.endSeconds, rec.beginSeconds);
    EXPECT_NE(std::string(toString(rec.kind)), "unknown");
  }
}

TEST(SchedEquiv, ProgressHookAbortsDataflowCollectively) {
  // The poll task chain must stop every rank at the same step without
  // hanging: abort after step 2 via the progress hook.
  HplaiConfig cfg = baseConfig(128, 16, 2, 2);
  cfg.scheduler = HplaiConfig::Scheduler::kDataflow;
  cfg.progressCallback = [](index_t k, double) { return k >= 2; };
  const HplaiResult r = runHplai(cfg);
  EXPECT_TRUE(r.aborted);
  EXPECT_FALSE(r.converged);
}

}  // namespace
}  // namespace hplmxp
