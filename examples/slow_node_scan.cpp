// Slow-node scan (Sec. VI-B): run the mini-benchmark — a single-GPU LU
// factorization — once per GCD of a (simulated) fleet, aggregate the
// rates, and flag the dies to exclude before a record run.
//
//   ./slow_node_scan [fleet-size] [degraded-fraction]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "machine/variability.h"
#include "trace/slow_node.h"
#include "util/table.h"

using namespace hplmxp;

int main(int argc, char** argv) {
  const index_t fleet = argc > 1 ? std::atoll(argv[1]) : 512;
  const double degraded = argc > 2 ? std::atof(argv[2]) : 0.01;

  // One real mini-benchmark measurement on this host establishes the
  // nominal rate; the fleet's dies are simulated around it with the
  // paper's observed ~5% manufacturing spread plus injected degraded dies.
  std::printf("running the mini-benchmark (single-GPU LU, N=256, B=64)...\n");
  const double nominal = runMiniBenchmark(256, 64, Vendor::kAmd);
  std::printf("nominal rate on this host: %.2f GFLOP/s\n", nominal / 1e9);

  const GcdVariability model(VariabilityConfig{.seed = 0xF1EE7,
                                               .spread = 0.05,
                                               .slowFraction = degraded,
                                               .slowPenalty = 0.25});
  std::vector<double> rates;
  rates.reserve(static_cast<std::size_t>(fleet));
  for (index_t gcd = 0; gcd < fleet; ++gcd) {
    rates.push_back(nominal * model.multiplier(gcd));
  }

  const SlowNodeScanner scanner(ScanPolicy{.threshold = 0.93});
  const ScanReport report = scanner.scan(rates);
  report.toTable().print();

  if (!report.flagged.empty()) {
    std::printf("\nexcluded GCDs:");
    for (std::size_t i = 0; i < std::min<std::size_t>(16,
                                                      report.flagged.size());
         ++i) {
      std::printf(" %lld", (long long)report.flagged[i]);
    }
    if (report.flagged.size() > 16) {
      std::printf(" ... (+%zu more)", report.flagged.size() - 16);
    }
    std::printf("\n");
  }
  std::printf(
      "\nA synchronous LU advances at the pace of its slowest rank: "
      "excluding %zu dies lifts the pipeline pace %.1f%%.\n",
      report.flagged.size(),
      (report.keptMinRate / report.min - 1.0) * 100.0);
  return 0;
}
