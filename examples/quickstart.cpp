// Quickstart: solve the HPL-AI system A x = b on one device with the
// mixed-precision factorization (FP32 panels, FP16 trailing GEMM) plus
// FP64 iterative refinement, then verify against the HPL-AI criterion.
//
//   ./quickstart [N] [B]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/single_solver.h"
#include "core/verify.h"
#include "gen/matgen.h"

using namespace hplmxp;

int main(int argc, char** argv) {
  const index_t n = argc > 1 ? std::atoll(argv[1]) : 512;
  const index_t b = argc > 2 ? std::atoll(argv[2]) : 64;

  std::printf("HPL-AI quickstart: N = %lld, B = %lld\n", (long long)n,
              (long long)b);

  // The problem is defined entirely by (seed, N): every entry of A and b
  // is regenerated on demand from the jump-ahead LCG.
  const ProblemGenerator gen(/*seed=*/2022, n);
  std::printf("A(0,0) = %.6f (diagonally dominant: the shift is +N)\n",
              gen.entry(0, 0));

  std::vector<double> x;
  const SingleSolveResult r = solveMixedSingle(gen, b, Vendor::kAmd, x);

  std::printf("\nfactorization (FP32/FP16): %.3f s\n", r.factorSeconds);
  std::printf("iterative refinement:      %.3f s, %lld iteration(s)\n",
              r.irSeconds, (long long)r.irIterations);
  std::printf("residual ||b - Ax||_inf:   %.3e\n", r.residualInf);
  std::printf("HPL-AI threshold:          %.3e\n", r.threshold);
  std::printf("converged:                 %s\n", r.converged ? "yes" : "NO");

  // Independent dense FP64 verification.
  const bool valid = hplaiValid(gen, x);
  std::printf("dense FP64 verification:   %s\n", valid ? "PASSED" : "FAILED");
  std::printf("x[0] = %.12f\n", x[0]);
  return valid && r.converged ? 0 : 1;
}
