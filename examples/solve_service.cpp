// Factor-once / solve-many through the serving stack.
//
// The mixed-precision factorization is the expensive artifact (O(N^3)
// flops); each refined right-hand side against it is cheap (O(N^2)). This
// example submits a burst of requests for a handful of problems through
// the ServeEngine and shows the economics: one factorization per distinct
// ProblemKey, every later request a cache hit, compatible requests
// coalesced into blocked multi-RHS refinement.
//
// Build & run:
//   cmake -B build -S . && cmake --build build --target solve_service
//   ./build/examples/solve_service
#include <cstdio>
#include <vector>

#include "serve/engine.h"

int main() {
  using namespace hplmxp;
  using namespace hplmxp::serve;

  ServeConfig config;
  config.maxBatch = 8;
  config.maxBatchDelaySeconds = 0.001;  // 1 ms coalescing window
  config.startPaused = true;  // queue the whole burst, then release it
  ServeEngine engine(config);

  // 12 requests over 2 distinct problems: 2 factorizations total.
  std::vector<ServeEngine::HandlePtr> handles;
  for (std::uint64_t i = 0; i < 12; ++i) {
    SolveRequest request;
    request.key.n = 128;
    request.key.b = 32;
    request.key.seed = 40 + (i % 2);  // alternate between two keys
    request.rhsSeed = 1000 + i;      // every request its own rhs
    handles.push_back(engine.submit(request));
  }
  engine.resume();
  engine.drain();

  std::printf("request  key-seed  rhs-seed  status     hit  batch  iters\n");
  for (const ServeEngine::HandlePtr& handle : handles) {
    const RequestOutcome& o = handle->wait();
    std::printf("%7llu  %8llu  %8llu  %-9s  %3s  %5lld  %5lld\n",
                (unsigned long long)o.id, (unsigned long long)o.key.seed,
                (unsigned long long)o.rhsSeed, toString(o.status),
                o.cacheHit ? "yes" : "no", (long long)o.batchSize,
                (long long)o.irIterations);
  }

  const ServeReport report = engine.report();
  std::printf("\n%llu requests served by %llu factorization(s); cache hit "
              "rate %.0f%%, mean batch %.1f\n",
              (unsigned long long)report.completed,
              (unsigned long long)report.cache.factorCount,
              report.cache.hitRate() * 100.0, report.meanBatchSize);
  report.toTable().print();
  return report.completed == handles.size() ? 0 : 1;
}
