// Machine projection: use the paper's performance model (Eqs. 1-5 +
// calibrated kernel curves + network models) to tune and project an
// HPL-AI run on Summit or Frontier — the workflow of Secs. IV-V.
//
//   ./machine_projection [summit|frontier] [gcds-per-side]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "perfmodel/param_search.h"
#include "scalesim/scale_sim.h"
#include "util/table.h"

using namespace hplmxp;

int main(int argc, char** argv) {
  const bool summit = argc > 1 && std::strcmp(argv[1], "summit") == 0;
  const MachineKind kind =
      summit ? MachineKind::kSummit : MachineKind::kFrontier;
  const index_t pr = argc > 2 ? std::atoll(argv[2])
                              : (summit ? index_t{162} : index_t{172});

  const MachineSpec& spec = machineSpec(kind);
  std::printf("projecting %s with a %lldx%lld grid (%lld GCDs of %lld)\n",
              spec.name.c_str(), (long long)pr, (long long)pr,
              (long long)(pr * pr), (long long)spec.totalGcds());

  // Step 1: pick N_L near the GPU memory ceiling, avoiding pathological
  // leading dimensions (Sec. V-A / V-D).
  const index_t nl = summit ? 61440 : 119808;
  const double matrixGiB =
      static_cast<double>(nl) * static_cast<double>(nl) * 4.0 / (1 << 30);
  std::printf("N_L = %lld (%.1f GiB FP32 of %.0f GiB per GCD)%s\n",
              (long long)nl, matrixGiB, spec.gpuMemGiBPerGcd,
              isPathologicalLda(nl) ? "  ** pathological LDA! **" : "");

  // Step 2: block-size search with the paper's heuristic.
  const KernelModel kernels(kind);
  ModelInput in{.n = nl * pr, .b = 0, .pr = pr, .pc = pr,
                .nbb = summit ? 4e9 : 8e9};
  const BSearchResult search = searchBlockSize(kernels, in);
  std::printf("block-size search selected B = %lld\n",
              (long long)search.bestB);

  // Step 3: pick the communication strategy and node grid by simulation.
  ScaleSimConfig cfg{.machine = kind, .nl = nl, .b = search.bestB, .pr = pr,
                     .pc = pr, .gridOrder = GridOrder::kNodeLocal,
                     .qr = summit ? index_t{3} : index_t{4},
                     .qc = summit ? index_t{2} : index_t{2},
                     .strategy = simmpi::BcastStrategy::kBcast,
                     .slowestGcdMultiplier = 0.97};
  simmpi::BcastStrategy best = cfg.strategy;
  double bestRate = 0.0;
  Table t({"strategy", "GF/GCD", "EFLOPS", "comm-bound iters"});
  for (simmpi::BcastStrategy s : simmpi::kAllBcastStrategies) {
    cfg.strategy = s;
    const ScaleSimResult r = simulateRun(cfg);
    t.addRow({simmpi::toString(s), Table::num(r.ratePerGcd / 1e9, 0),
              Table::num(r.exaflops, 3),
              Table::num(r.commBoundFraction * 100.0, 1) + "%"});
    if (r.ratePerGcd > bestRate) {
      bestRate = r.ratePerGcd;
      best = s;
    }
  }
  t.print();

  cfg.strategy = best;
  const ScaleSimResult r = simulateRun(cfg);
  std::printf("\nbest configuration: B=%lld, %s, %lldx%lld node grid\n",
              (long long)cfg.b, simmpi::toString(best).c_str(),
              (long long)cfg.qr, (long long)cfg.qc);
  std::printf("projected: N = %lld, %.0f s, %.3f EFLOPS (%.1f TF/GCD)\n",
              (long long)r.n, r.totalSeconds, r.exaflops,
              r.ratePerGcd / 1e12);
  return 0;
}
