// Produces an HPL-AI-style results report for a functional run on this
// host — the output block a site would attach to a benchmark submission
// (problem parameters, timing, effective rate, and the validity check),
// plus the at-scale projection for the machine of choice.
//
//   ./submission_report [N] [B] [Pr] [Pc]
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <vector>

#include "core/hplai.h"
#include "core/verify.h"
#include "gen/matgen.h"
#include "machine/power.h"
#include "scalesim/scale_sim.h"

using namespace hplmxp;

int main(int argc, char** argv) {
  HplaiConfig cfg;
  cfg.n = argc > 1 ? std::atoll(argv[1]) : 768;
  cfg.b = argc > 2 ? std::atoll(argv[2]) : 64;
  cfg.pr = argc > 3 ? std::atoll(argv[3]) : 2;
  cfg.pc = argc > 4 ? std::atoll(argv[4]) : 2;
  cfg.n = adjustProblemSize(cfg.n, cfg.b, cfg.pr, cfg.pc);
  cfg.panelBcast = simmpi::BcastStrategy::kRing2M;

  std::vector<double> x;
  const HplaiResult r = runHplai(cfg, &x);
  const ProblemGenerator gen(cfg.seed, cfg.n);
  const bool valid = hplaiValid(gen, x);

  std::printf("========================================================\n");
  std::printf("HPLMxP (HPL-AI) results — functional run on this host\n");
  std::printf("========================================================\n");
  std::printf("N        : %18lld\n", (long long)r.n);
  std::printf("NB       : %18lld\n", (long long)r.b);
  std::printf("P x Q    : %9lld x %6lld\n", (long long)cfg.pr,
              (long long)cfg.pc);
  std::printf("BCAST    : %18s\n", simmpi::toString(cfg.panelBcast).c_str());
  std::printf("Refiner  : %18s\n",
              cfg.refiner == HplaiConfig::Refiner::kGmres ? "GMRES" : "IR");
  std::printf("--------------------------------------------------------\n");
  std::printf("Factor time          : %12.4f s\n", r.factorSeconds);
  std::printf("Refinement time      : %12.4f s (%lld iterations)\n",
              r.irSeconds, (long long)r.irIterations);
  std::printf("Total time           : %12.4f s\n", r.totalSeconds);
  std::printf("Effective ops        : %12.4e flops (2/3 N^3 + 3/2 N^2)\n",
              r.effectiveFlops());
  std::printf("HPLMxP performance   : %12.4f GFLOP/s\n", r.gflopsTotal());
  std::printf("--------------------------------------------------------\n");
  std::printf("||b - Ax||_inf       : %12.4e\n", r.residualInf);
  std::printf("threshold (line 44)  : %12.4e\n", r.threshold);
  std::printf("residual check       : %12s\n",
              r.converged && valid ? "PASSED" : "FAILED");
  std::printf("========================================================\n");

  // The corresponding at-scale projection: what this configuration's
  // tuning choices deliver on the real machines per the calibrated model.
  std::printf("\nAt-scale projections (calibrated model):\n");
  for (MachineKind kind : {MachineKind::kSummit, MachineKind::kFrontier}) {
    const bool summit = kind == MachineKind::kSummit;
    ScaleSimConfig sim{.machine = kind,
                       .nl = summit ? index_t{61440} : index_t{119808},
                       .b = summit ? index_t{768} : index_t{3072},
                       .pr = summit ? index_t{162} : index_t{172},
                       .pc = summit ? index_t{162} : index_t{172},
                       .gridOrder = GridOrder::kNodeLocal,
                       .qr = summit ? index_t{3} : index_t{4},
                       .qc = 2,
                       .strategy = summit ? simmpi::BcastStrategy::kBcast
                                          : simmpi::BcastStrategy::kRing2M,
                       .slowestGcdMultiplier = 0.97};
    const ScaleSimResult s = simulateRun(sim);
    const PowerModel power(kind);
    const index_t nodes = s.ranks / machineSpec(kind).gcdsPerNode;
    std::printf("  %-8s : %7.3f EFLOPS on %6lld GCDs in %6.0f s "
                "(%5.1f GFLOPS/W)\n",
                toString(kind).c_str(), s.exaflops, (long long)s.ranks,
                s.totalSeconds,
                power.gflopsPerWatt(s.exaflops * 1e18, nodes));
  }
  return r.converged && valid ? 0 : 1;
}
