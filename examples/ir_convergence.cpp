// Iterative-refinement convergence study: how much accuracy the FP16
// trailing updates lose, and how quickly FP64 refinement recovers it —
// the numerical core of the paper's "defined double precision accuracy"
// claim.
//
//   ./ir_convergence [N] [B]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "blas/blas.h"
#include "core/single_solver.h"
#include "core/verify.h"
#include "gen/matgen.h"
#include "util/buffer.h"
#include "util/table.h"

using namespace hplmxp;

namespace {

/// Runs IR step by step, reporting the residual after each correction.
void study(const ProblemGenerator& gen, index_t b) {
  const index_t n = gen.n();
  Buffer<float> a(n * n);
  gen.fillTile<float>(0, 0, n, n, a.data(), n);
  factorMixedSingle(n, b, a.data(), n, Vendor::kAmd);

  std::vector<double> x(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] = gen.rhs(i) / gen.entry(i, i);
  }

  const double threshold = hplaiThreshold(gen, 1.0);
  Table t({"IR step", "||b - Ax||_inf", "scaled vs threshold"});
  for (index_t iter = 0; iter <= 8; ++iter) {
    const double rInf = residualInfDense(gen, x);
    const double thr = hplaiThreshold(gen, infNorm(x));
    t.addRow({Table::num((long long)iter), Table::sci(rInf),
              Table::sci(rInf / thr)});
    if (rInf < thr) {
      break;
    }
    // d = U^{-1} L^{-1} r with FP32 factors / FP64 accumulation.
    std::vector<double> d(static_cast<std::size_t>(n));
    Buffer<double> row(n);
    for (index_t i = 0; i < n; ++i) {
      gen.fillTile<double>(i, 0, 1, n, row.data(), 1);
      double acc = gen.rhs(i);
      for (index_t j = 0; j < n; ++j) {
        acc -= row[j] * x[static_cast<std::size_t>(j)];
      }
      d[static_cast<std::size_t>(i)] = acc;
    }
    blas::strsvMixed(blas::Uplo::kLower, blas::Diag::kUnit, n, a.data(), n,
                     d.data());
    blas::strsvMixed(blas::Uplo::kUpper, blas::Diag::kNonUnit, n, a.data(),
                     n, d.data());
    for (index_t i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] += d[static_cast<std::size_t>(i)];
    }
  }
  t.print();
  (void)threshold;
}

}  // namespace

int main(int argc, char** argv) {
  const index_t n = argc > 1 ? std::atoll(argv[1]) : 384;
  const index_t b = argc > 2 ? std::atoll(argv[2]) : 64;

  std::printf("IR convergence study, N=%lld B=%lld\n\n", (long long)n,
              (long long)b);
  std::printf("Mixed-precision factorization (FP16 panels) then FP64 IR:\n");
  const ProblemGenerator gen(99, n);
  study(gen, b);

  std::printf(
      "\nEach step multiplies the residual down by roughly the FP16-driven\n"
      "contraction factor — a handful of cheap O(N^2) corrections recover\n"
      "full FP64 accuracy from an O(N^3) low-precision factorization,\n"
      "which is the entire economic argument of HPL-AI.\n");

  // Contrast: how large the FP16-induced backward error is before IR.
  std::printf("\nfactor-only solution accuracy across sizes (no IR):\n");
  Table t({"N", "residual before IR", "threshold", "IR steps needed"});
  for (index_t size : {128, 256, 384}) {
    const ProblemGenerator g(99, size);
    std::vector<double> x;
    const SingleSolveResult r = solveMixedSingle(g, 64, Vendor::kAmd, x);
    t.addRow({Table::num((long long)size), "(converged)",
              Table::sci(r.threshold),
              Table::num((long long)r.irIterations)});
  }
  t.print();
  return 0;
}
