// Distributed benchmark run: Algorithm 1 end to end on the in-process
// message-passing runtime — a Pr x Pc grid of ranks, 2D block-cyclic
// matrix, panel broadcasts with a selectable strategy, look-ahead, and
// distributed FP64 iterative refinement.
//
//   ./distributed_solve [N] [B] [Pr] [Pc] [bcast|ibcast|ring1|ring1m|ring2m]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/hplai.h"
#include "core/verify.h"
#include "gen/matgen.h"

using namespace hplmxp;

int main(int argc, char** argv) {
  HplaiConfig cfg;
  cfg.n = argc > 1 ? std::atoll(argv[1]) : 512;
  cfg.b = argc > 2 ? std::atoll(argv[2]) : 64;
  cfg.pr = argc > 3 ? std::atoll(argv[3]) : 2;
  cfg.pc = argc > 4 ? std::atoll(argv[4]) : 2;
  if (argc > 5) {
    cfg.panelBcast = simmpi::bcastStrategyFromString(argv[5]);
  } else {
    cfg.panelBcast = simmpi::BcastStrategy::kRing2M;
  }
  cfg.collectTrace = true;
  cfg.lookahead = true;

  std::printf("distributed HPL-AI: N=%lld B=%lld grid=%lldx%lld bcast=%s "
              "(%lld ranks as threads)\n",
              (long long)cfg.n, (long long)cfg.b, (long long)cfg.pr,
              (long long)cfg.pc, simmpi::toString(cfg.panelBcast).c_str(),
              (long long)cfg.worldSize());

  std::vector<double> x;
  const HplaiResult r = runHplai(cfg, &x);

  std::printf("\nfactor: %.3f s | IR: %.3f s (%lld iters) | total: %.3f s\n",
              r.factorSeconds, r.irSeconds, (long long)r.irIterations,
              r.totalSeconds);
  std::printf("effective rate: %.2f GFLOP/s total, %.2f GFLOP/s per rank\n",
              r.gflopsTotal(), r.gflopsPerRank());
  std::printf("residual: %.3e (threshold %.3e) -> %s\n", r.residualInf,
              r.threshold, r.converged ? "converged" : "NOT converged");

  if (!r.trace.empty()) {
    std::printf("\nper-iteration GEMM seconds (rank 0, first/last 3):\n");
    auto show = [&](const IterationTrace& t) {
      std::printf("  k=%-4lld trailing=%-4lld gemm=%.4f s bcast=%.4f s\n",
                  (long long)t.k, (long long)t.trailingBlocks,
                  t.gemmSeconds, t.bcastSeconds);
    };
    for (std::size_t i = 0; i < std::min<std::size_t>(3, r.trace.size());
         ++i) {
      show(r.trace[i]);
    }
    std::printf("  ...\n");
    for (std::size_t i = r.trace.size() - std::min<std::size_t>(3,
                                                                r.trace
                                                                    .size());
         i < r.trace.size(); ++i) {
      show(r.trace[i]);
    }
  }

  const ProblemGenerator gen(cfg.seed, cfg.n);
  const bool valid = hplaiValid(gen, x);
  std::printf("\ndense FP64 verification: %s\n", valid ? "PASSED" : "FAILED");
  return valid ? 0 : 1;
}
