// Fig. 3: rocBLAS mixed-precision GEMM flop rate on one MI250X GCD as a
// function of matrix size, C = A^T B with A (k x m), B (k x n), m = n = B.
// The heat map shows that peak performance is NOT uniformly achievable:
// tile-aligned sizes run fast (bands), and the k (block size) dimension
// must be large before the matrix cores saturate (Finding 2).
#include <vector>

#include "bench_util.h"
#include "perfmodel/kernel_model.h"

using namespace hplmxp;

int main() {
  bench::banner("Fig. 3",
                "MI250X mixed GEMM rate heat map (TFLOP/s), m = n = B");

  const KernelModel mi250x(MachineKind::kFrontier);

  const std::vector<index_t> mn = {512,  1024, 1536, 2048, 3000,
                                   3072, 4096, 6144, 8192};
  const std::vector<index_t> k = {256, 512, 768, 1024, 1536, 2048, 3072};

  std::vector<std::string> header{"k \\ m=n"};
  for (index_t m : mn) {
    header.push_back(Table::num((long long)m));
  }
  Table t(header);
  for (index_t kk : k) {
    std::vector<std::string> row{Table::num((long long)kk)};
    for (index_t m : mn) {
      row.push_back(Table::num(
          mi250x.gemmRate((double)m, (double)m, (double)kk) / 1e12, 1));
    }
    t.addRow(row);
  }
  t.print();

  std::printf(
      "\nPaper observations reproduced:\n"
      " * highest rates only in the large-size / tile-aligned cells\n"
      "   (misaligned sizes like 3000 sit ~18%% below their neighbours),\n"
      " * the optimal B = 3072 reaches peak only for a few sizes,\n"
      " * rates keep climbing with k: the MI250X needs big blocks.\n");

  // The paper's companion observation (Finding 3): GETRF underperforms.
  bench::banner("Fig. 3 (companion)", "Critical-path GETRF rate vs B");
  Table g({"B", "GETRF TFLOP/s", "share of GEMM peak"});
  for (index_t b : {512, 1024, 2048, 3072}) {
    const double r = mi250x.getrfRate((double)b);
    g.addRow({Table::num((long long)b), Table::num(r / 1e12, 2),
              Table::num(r / mi250x.gemmPeak() * 100.0, 2) + "%"});
  }
  g.print();
  return 0;
}
