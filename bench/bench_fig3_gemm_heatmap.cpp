// Fig. 3: rocBLAS mixed-precision GEMM flop rate on one MI250X GCD as a
// function of matrix size, C = A^T B with A (k x m), B (k x n), m = n = B.
// The heat map shows that peak performance is NOT uniformly achievable:
// tile-aligned sizes run fast (bands), and the k (block size) dimension
// must be large before the matrix cores saturate (Finding 2).
#include <vector>

#include "bench_util.h"
#include "blas/blas.h"
#include "fp16/half.h"
#include "perfmodel/kernel_model.h"
#include "util/timer.h"

using namespace hplmxp;

int main() {
  bench::banner("Fig. 3",
                "MI250X mixed GEMM rate heat map (TFLOP/s), m = n = B");

  const KernelModel mi250x(MachineKind::kFrontier);

  const std::vector<index_t> mn = {512,  1024, 1536, 2048, 3000,
                                   3072, 4096, 6144, 8192};
  const std::vector<index_t> k = {256, 512, 768, 1024, 1536, 2048, 3072};

  std::vector<std::string> header{"k \\ m=n"};
  for (index_t m : mn) {
    header.push_back(Table::num((long long)m));
  }
  Table t(header);
  for (index_t kk : k) {
    std::vector<std::string> row{Table::num((long long)kk)};
    for (index_t m : mn) {
      row.push_back(Table::num(
          mi250x.gemmRate((double)m, (double)m, (double)kk) / 1e12, 1));
    }
    t.addRow(row);
  }
  t.print();

  std::printf(
      "\nPaper observations reproduced:\n"
      " * highest rates only in the large-size / tile-aligned cells\n"
      "   (misaligned sizes like 3000 sit ~18%% below their neighbours),\n"
      " * the optimal B = 3072 reaches peak only for a few sizes,\n"
      " * rates keep climbing with k: the MI250X needs big blocks.\n");

  // The paper's companion observation (Finding 3): GETRF underperforms.
  bench::banner("Fig. 3 (companion)", "Critical-path GETRF rate vs B");
  Table g({"B", "GETRF TFLOP/s", "share of GEMM peak"});
  for (index_t b : {512, 1024, 2048, 3072}) {
    const double r = mi250x.getrfRate((double)b);
    g.addRow({Table::num((long long)b), Table::num(r / 1e12, 2),
              Table::num(r / mi250x.gemmPeak() * 100.0, 2) + "%"});
  }
  g.print();

  // A small measured analogue of the heat map on this host's native mixed
  // kernel: same C = A^T B shape as Fig. 3, sizes kept tiny so the smoke
  // run stays fast. It demonstrates the same qualitative ramp (rates climb
  // with the k/block dimension) with real GF/s instead of model output.
  bench::banner("Fig. 3 (native)",
                "measured mixed GEMM rate on this host (GF/s), m = n");
  const std::vector<index_t> nativeMn = {96, 192};
  const std::vector<index_t> nativeK = {64, 128, 256};
  std::vector<std::string> nh{"k \\ m=n"};
  for (index_t m : nativeMn) {
    nh.push_back(Table::num((long long)m));
  }
  Table nt(nh);
  for (index_t kk : nativeK) {
    std::vector<std::string> row{Table::num((long long)kk)};
    for (index_t m : nativeMn) {
      const auto ac = static_cast<std::size_t>(kk) * m;
      const auto cc = static_cast<std::size_t>(m) * m;
      std::vector<half16> a(ac, half16(0.5f));
      std::vector<half16> b(ac, half16(-0.25f));
      std::vector<float> c(cc, 1.0f);
      auto run = [&] {
        blas::gemmMixed(blas::Trans::kTrans, blas::Trans::kNoTrans, m, m, kk,
                        -1.0f, a.data(), kk, b.data(), kk, 1.0f, c.data(),
                        m);
      };
      run();  // warmup
      double best = 1e300;
      for (int rep = 0; rep < 3; ++rep) {
        Timer timer;
        run();
        best = std::min(best, timer.seconds());
      }
      row.push_back(Table::num(blas::gemmFlops(m, m, kk) / best / 1e9, 2));
    }
    nt.addRow(row);
  }
  nt.print();
  return 0;
}
