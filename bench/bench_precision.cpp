// Precision-ladder benchmark: convergence-vs-precision curves and
// per-rung GEMM/factor rates on the benchmark's default (+N) problem.
//
// For every rung of the storage ladder (fp8e5m2 -> fp8e4m3 -> bf16 ->
// fp16) this bench:
//   - times the trailing-update GEMM kernel at that rung (gemmLowp<T> on
//     an n x n x n product) -> per-rung GF/s,
//   - runs the full factor + IR solve with the ladder pinned to the rung
//     (LadderPolicy::forcedStart) -> iterations to the HPL-AI threshold
//     and the residual trajectory (the convergence-vs-precision curve),
// and then one adaptive run shows which rung the controller opens at.
//
// Self-gating (nonzero exit on violation), consumed by the CI precision
// job:
//   - every rung must CONVERGE on the default problem (its diagonal
//     dominance tolerates even fp8e5m2 storage),
//   - iterations must be monotone non-increasing as precision rises,
//   - the adaptive controller must open at the cheapest rung,
//   - with a kernels JSON (bench_kernel_autotune output) as the third
//     argument, the FP16 rung's GEMM rate must stay within a generous
//     band of the tuned rate recorded there (> 20% — a drift gate, not a
//     perf target).
//
// Writes BENCH_precision.json.
//
// Usage: bench_precision [n] [out.json] [BENCH_kernels.json]
//   n    problem size, multiple of 32 (default 512; smoke runs use 256)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "blas/gemm.h"
#include "core/precision_ladder.h"
#include "gen/matgen.h"
#include "lowp/precision.h"
#include "lowp/traits.h"
#include "serve/json.h"
#include "util/table.h"
#include "util/timer.h"

namespace hplmxp {
namespace {

constexpr index_t kBlock = 32;
constexpr std::uint64_t kSeed = 20220521;  // the paper's SC'22 vintage

struct RungPoint {
  lowp::StoragePrecision precision = lowp::StoragePrecision::kFp16;
  double gemmGflops = 0.0;
  double factorSeconds = 0.0;
  double solveSeconds = 0.0;
  index_t irIterations = 0;
  bool converged = false;
  double residualInf = 0.0;
  double threshold = 0.0;
  std::vector<double> residualHistory;
};

/// Best-of-3 GEMM rate for one storage rung at n x n x n.
template <typename TLow>
double gemmRateGflops(index_t n) {
  const auto size = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  std::vector<float> src(size);
  std::uint32_t s = 0x9E3779B9u;
  for (auto& v : src) {
    s = s * 1664525u + 1013904223u;
    v = -1.0f + 2.0f * static_cast<float>(s >> 8) / 16777216.0f;
  }
  std::vector<TLow> a(size), b(size);
  for (std::size_t i = 0; i < size; ++i) {
    a[i] = TLow(src[i]);
    b[i] = TLow(src[size - 1 - i]);
  }
  std::vector<float> c(size, 0.0f);
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    Timer clock;
    blas::gemmLowp<TLow>(blas::Trans::kNoTrans, blas::Trans::kTrans, n, n, n,
                         -1.0f, a.data(), n, b.data(), n, 1.0f, c.data(), n);
    const double gf = blas::gemmFlops(n, n, n) / clock.seconds() / 1e9;
    best = std::max(best, gf);
  }
  return best;
}

double rungGemmRate(lowp::StoragePrecision p, index_t n) {
  switch (p) {
    case lowp::StoragePrecision::kFp16: return gemmRateGflops<half16>(n);
    case lowp::StoragePrecision::kBf16:
      return gemmRateGflops<lowp::bfloat16>(n);
    case lowp::StoragePrecision::kFp8E4M3:
      return gemmRateGflops<lowp::fp8e4m3>(n);
    case lowp::StoragePrecision::kFp8E5M2:
      return gemmRateGflops<lowp::fp8e5m2>(n);
  }
  return 0.0;
}

RungPoint measureRung(lowp::StoragePrecision p, index_t n) {
  RungPoint pt;
  pt.precision = p;
  pt.gemmGflops = rungGemmRate(p, n);

  const ProblemGenerator gen(kSeed, n);
  LadderPolicy policy;
  policy.forcedStart = p;
  policy.allowGmres = false;  // pure IR: the convergence curve per rung
  const LadderResult r = solveLadderSingle(gen, kBlock, Vendor::kAmd, policy);
  // forcedStart pins the opening rung; on this well-conditioned problem
  // every rung converges without escalation, so attempts[0] IS the rung.
  const RungAttempt& a = r.attempts.front();
  pt.factorSeconds = a.factorSeconds;
  pt.solveSeconds = a.solveSeconds;
  pt.irIterations = a.irIterations;
  pt.converged = a.converged && r.finalRung == p;
  pt.residualInf = a.residualInf;
  pt.threshold = a.threshold;
  pt.residualHistory = a.residualHistory;
  return pt;
}

void writeJson(const std::string& path, index_t n,
               const std::vector<RungPoint>& rungs,
               const LadderResult& adaptive, double fp16TunedGflops) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_precision: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"precision\",\n");
  std::fprintf(f, "  \"n\": %lld,\n", static_cast<long long>(n));
  std::fprintf(f, "  \"b\": %lld,\n", static_cast<long long>(kBlock));
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(kSeed));
  std::fprintf(f, "  \"rungs\": [\n");
  for (std::size_t i = 0; i < rungs.size(); ++i) {
    const RungPoint& p = rungs[i];
    std::fprintf(f,
                 "    {\"precision\": \"%s\", \"gemm_gflops\": %.3f, "
                 "\"factor_seconds\": %.6f, \"solve_seconds\": %.6f, "
                 "\"ir_iterations\": %lld, \"converged\": %s, "
                 "\"residual_inf\": %.3e, \"threshold\": %.3e, "
                 "\"residual_history\": [",
                 lowp::toString(p.precision), p.gemmGflops, p.factorSeconds,
                 p.solveSeconds, static_cast<long long>(p.irIterations),
                 p.converged ? "true" : "false", p.residualInf, p.threshold);
    for (std::size_t h = 0; h < p.residualHistory.size(); ++h) {
      std::fprintf(f, "%s%.6e", h > 0 ? ", " : "", p.residualHistory[h]);
    }
    std::fprintf(f, "]}%s\n", i + 1 < rungs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"adaptive\": {\"start\": \"%s\", \"final\": \"%s\", "
               "\"escalations\": %lld, \"converged\": %s, "
               "\"probe_dominance\": %.4f},\n",
               lowp::toString(adaptive.startRung),
               lowp::toString(adaptive.finalRung),
               static_cast<long long>(adaptive.escalations),
               adaptive.converged ? "true" : "false",
               adaptive.probe.minDominance);
  std::fprintf(f, "  \"fp16_tuned_gflops_reference\": %.3f,\n",
               fp16TunedGflops);
  bool allConverged = true;
  for (const RungPoint& p : rungs) {
    allConverged = allConverged && p.converged;
  }
  std::fprintf(f, "  \"all_rungs_converged\": %s\n",
               allConverged ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

/// Tuned FP16 GEMM rate from a bench_kernel_autotune JSON, or 0 if the
/// file is absent/unreadable (the gate is then skipped).
double loadTunedGflops(const std::string& path) {
  if (path.empty()) {
    return 0.0;
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    std::printf("note: no kernels JSON at %s, FP16 rate gate skipped\n",
                path.c_str());
    return 0.0;
  }
  std::string text;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  try {
    const serve::JsonValue doc = serve::JsonValue::parse(text);
    return doc.numberOr("tuned_gflops", 0.0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_precision: bad kernels JSON %s: %s\n",
                 path.c_str(), e.what());
    std::exit(1);
  }
}

int run(index_t n, const std::string& outPath,
        const std::string& kernelsPath) {
  bench::banner("BENCH precision",
                "convergence and GEMM rate per storage rung");
  std::printf("N=%lld B=%lld seed=%llu (benchmark default +N shift)\n\n",
              static_cast<long long>(n), static_cast<long long>(kBlock),
              static_cast<unsigned long long>(kSeed));

  std::vector<RungPoint> rungs;
  for (lowp::StoragePrecision p : lowp::ladderRungs()) {
    rungs.push_back(measureRung(p, n));
  }

  const ProblemGenerator gen(kSeed, n);
  const LadderResult adaptive = solveLadderSingle(gen, kBlock, Vendor::kAmd);

  Table table({"rung", "u", "gemm GF/s", "factor s", "solve s", "IR iters",
               "residual/threshold", "converged"});
  for (const RungPoint& p : rungs) {
    table.addRow({lowp::toString(p.precision),
                  Table::num(lowp::spec(p.precision).unitRoundoff, 6),
                  Table::num(p.gemmGflops, 2),
                  Table::num(p.factorSeconds, 4),
                  Table::num(p.solveSeconds, 4),
                  Table::num(static_cast<long long>(p.irIterations)),
                  Table::num(p.threshold > 0.0 ? p.residualInf / p.threshold
                                               : 0.0,
                             4),
                  p.converged ? "yes" : "NO"});
  }
  table.print();
  std::printf("\nadaptive controller: opened at %s, finished at %s "
              "(%lld escalations, probe dominance %.3f)\n",
              lowp::toString(adaptive.startRung),
              lowp::toString(adaptive.finalRung),
              static_cast<long long>(adaptive.escalations),
              adaptive.probe.minDominance);

  const double fp16Tuned = loadTunedGflops(kernelsPath);
  writeJson(outPath, n, rungs, adaptive, fp16Tuned);
  std::printf("wrote %s\n", outPath.c_str());

  // ---- Gates ----
  int failures = 0;
  for (const RungPoint& p : rungs) {
    if (!p.converged) {
      std::fprintf(stderr, "GATE: rung %s did not converge\n",
                   lowp::toString(p.precision));
      ++failures;
    }
  }
  // Ladder order is coarsest-first: iteration counts must not increase as
  // precision rises.
  for (std::size_t i = 0; i + 1 < rungs.size(); ++i) {
    if (rungs[i + 1].irIterations > rungs[i].irIterations) {
      std::fprintf(stderr,
                   "GATE: %s needs more IR iterations (%lld) than coarser "
                   "%s (%lld)\n",
                   lowp::toString(rungs[i + 1].precision),
                   static_cast<long long>(rungs[i + 1].irIterations),
                   lowp::toString(rungs[i].precision),
                   static_cast<long long>(rungs[i].irIterations));
      ++failures;
    }
  }
  if (!adaptive.converged ||
      adaptive.startRung != lowp::ladderRungs().front()) {
    std::fprintf(stderr,
                 "GATE: adaptive controller should open at %s and converge "
                 "on the default problem (opened %s, converged=%d)\n",
                 lowp::toString(lowp::ladderRungs().front()),
                 lowp::toString(adaptive.startRung),
                 adaptive.converged ? 1 : 0);
    ++failures;
  }
  if (fp16Tuned > 0.0) {
    const double fp16Rate = rungs.back().gemmGflops;
    if (fp16Rate < 0.2 * fp16Tuned) {
      std::fprintf(stderr,
                   "GATE: fp16 rung GEMM rate %.2f GF/s fell below 20%% of "
                   "the tuned kernel rate %.2f GF/s\n",
                   fp16Rate, fp16Tuned);
      ++failures;
    } else {
      std::printf("fp16 rate gate: %.2f GF/s vs tuned %.2f GF/s (ok)\n",
                  fp16Rate, fp16Tuned);
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "bench_precision: %d gate(s) failed\n", failures);
    return 1;
  }
  std::printf("all precision gates passed\n");
  return 0;
}

}  // namespace
}  // namespace hplmxp

int main(int argc, char** argv) {
  const long long n = argc > 1 ? std::atoll(argv[1]) : 512;
  const std::string out = argc > 2 ? argv[2] : "BENCH_precision.json";
  const std::string kernels = argc > 3 ? argv[3] : "";
  if (n < 64 || n % 32 != 0) {
    std::fprintf(stderr,
                 "bench_precision: n must be a multiple of 32, >= 64\n");
    return 1;
  }
  return hplmxp::run(static_cast<hplmxp::index_t>(n), out, kernels);
}
