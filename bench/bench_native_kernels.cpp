// Native microbenchmarks (google-benchmark) of the actual CPU kernels —
// the software substrate standing in for cuBLAS/rocBLAS in this
// reproduction. Reported rates are this host's, not a GPU's.
#include <benchmark/benchmark.h>

#include <vector>

#include "blas/blas.h"
#include "blas/gemm_baseline.h"
#include "core/single_solver.h"
#include "fp16/half.h"
#include "gen/lcg.h"
#include "gen/matgen.h"

namespace hplmxp {
namespace {

void BM_Sgemm(benchmark::State& state) {
  const index_t n = state.range(0);
  std::vector<float> a(static_cast<std::size_t>(n * n), 1.0f);
  std::vector<float> b(static_cast<std::size_t>(n * n), 0.5f);
  std::vector<float> c(static_cast<std::size_t>(n * n), 0.0f);
  for (auto _ : state) {
    blas::sgemm(blas::Trans::kNoTrans, blas::Trans::kNoTrans, n, n, n, 1.0f,
                a.data(), n, b.data(), n, 1.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      blas::gemmFlops(n, n, n) * static_cast<double>(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Sgemm)->Arg(128)->Arg(256)->Arg(384)->Arg(1024);

// The pre-rewrite GEMM kernel (blas/gemm_baseline.h), kept as the
// before/after reference for the register-blocked rewrite.
void BM_SgemmBaseline(benchmark::State& state) {
  const index_t n = state.range(0);
  std::vector<float> a(static_cast<std::size_t>(n * n), 1.0f);
  std::vector<float> b(static_cast<std::size_t>(n * n), 0.5f);
  std::vector<float> c(static_cast<std::size_t>(n * n), 0.0f);
  for (auto _ : state) {
    blas::baseline::sgemm(blas::Trans::kNoTrans, blas::Trans::kNoTrans, n, n,
                          n, 1.0f, a.data(), n, b.data(), n, 1.0f, c.data(),
                          n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      blas::gemmFlops(n, n, n) * static_cast<double>(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SgemmBaseline)->Arg(256)->Arg(384)->Arg(1024);

void BM_GemmMixed(benchmark::State& state) {
  const index_t n = state.range(0);
  std::vector<half16> a(static_cast<std::size_t>(n * n), half16(1.0f));
  std::vector<half16> b(static_cast<std::size_t>(n * n), half16(0.5f));
  std::vector<float> c(static_cast<std::size_t>(n * n), 0.0f);
  for (auto _ : state) {
    blas::gemmMixed(blas::Trans::kNoTrans, blas::Trans::kTrans, n, n, n,
                    -1.0f, a.data(), n, b.data(), n, 1.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      blas::gemmFlops(n, n, n) * static_cast<double>(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmMixed)->Arg(128)->Arg(256)->Arg(384)->Arg(1024);

void BM_GemmMixedBaseline(benchmark::State& state) {
  const index_t n = state.range(0);
  std::vector<half16> a(static_cast<std::size_t>(n * n), half16(1.0f));
  std::vector<half16> b(static_cast<std::size_t>(n * n), half16(0.5f));
  std::vector<float> c(static_cast<std::size_t>(n * n), 0.0f);
  for (auto _ : state) {
    blas::baseline::gemmMixed(blas::Trans::kNoTrans, blas::Trans::kTrans, n,
                              n, n, -1.0f, a.data(), n, b.data(), n, 1.0f,
                              c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      blas::gemmFlops(n, n, n) * static_cast<double>(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmMixedBaseline)->Arg(256)->Arg(384)->Arg(1024);

void BM_Strsm(benchmark::State& state) {
  const index_t b = state.range(0);
  const index_t n = 512;
  ProblemGenerator gen(3, b);
  std::vector<float> tri(static_cast<std::size_t>(b * b));
  gen.fillTile<float>(0, 0, b, b, tri.data(), b);
  std::vector<float> rhs(static_cast<std::size_t>(b * n), 1.0f);
  for (auto _ : state) {
    blas::strsm(blas::Side::kLeft, blas::Uplo::kLower, blas::Diag::kUnit, b,
                n, 1.0f, tri.data(), b, rhs.data(), b);
    benchmark::DoNotOptimize(rhs.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      blas::trsmFlops(blas::Side::kLeft, b, n) *
          static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Strsm)->Arg(64)->Arg(128)->Arg(256);

void BM_GetrfNoPiv(benchmark::State& state) {
  const index_t n = state.range(0);
  ProblemGenerator gen(5, n);
  std::vector<float> a(static_cast<std::size_t>(n * n));
  for (auto _ : state) {
    state.PauseTiming();
    gen.fillTile<float>(0, 0, n, n, a.data(), n);
    state.ResumeTiming();
    blas::getrfNoPiv(n, a.data(), n);
    benchmark::DoNotOptimize(a.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      blas::getrfFlops(n) * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GetrfNoPiv)->Arg(128)->Arg(256);

void BM_CastToHalf(benchmark::State& state) {
  const index_t n = state.range(0);
  std::vector<float> src(static_cast<std::size_t>(n * n), 1.25f);
  std::vector<half16> dst(src.size());
  for (auto _ : state) {
    blas::castToHalf(n, n, src.data(), n, dst.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * n * n *
                          static_cast<index_t>(sizeof(float)));
}
BENCHMARK(BM_CastToHalf)->Arg(256)->Arg(512);

void BM_TransCastToHalf(benchmark::State& state) {
  const index_t n = state.range(0);
  std::vector<float> src(static_cast<std::size_t>(n * n), 1.25f);
  std::vector<half16> dst(src.size());
  for (auto _ : state) {
    blas::transCastToHalf(n, n, src.data(), n, dst.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * n * n *
                          static_cast<index_t>(sizeof(float)));
}
BENCHMARK(BM_TransCastToHalf)->Arg(256)->Arg(512);

void BM_LcgJump(benchmark::State& state) {
  std::uint64_t offset = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Lcg64::jumped(42, offset));
    offset = offset * 3 + 1;  // vary the jump distance
  }
}
BENCHMARK(BM_LcgJump);

void BM_MatrixTileGeneration(benchmark::State& state) {
  const index_t b = state.range(0);
  ProblemGenerator gen(9, 1 << 20);  // a 1M-order matrix
  std::vector<double> tile(static_cast<std::size_t>(b * b));
  for (auto _ : state) {
    gen.fillTile<double>(777, 31337, b, b, tile.data(), b);
    benchmark::DoNotOptimize(tile.data());
  }
  state.SetItemsProcessed(state.iterations() * b * b);
}
BENCHMARK(BM_MatrixTileGeneration)->Arg(64)->Arg(256);

void BM_MixedFactorSingle(benchmark::State& state) {
  const index_t n = state.range(0);
  ProblemGenerator gen(11, n);
  std::vector<float> a(static_cast<std::size_t>(n * n));
  for (auto _ : state) {
    state.PauseTiming();
    gen.fillTile<float>(0, 0, n, n, a.data(), n);
    state.ResumeTiming();
    factorMixedSingle(n, 64, a.data(), n, Vendor::kAmd);
    benchmark::DoNotOptimize(a.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      blas::getrfFlops(n) * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MixedFactorSingle)->Arg(256);

}  // namespace
}  // namespace hplmxp
