// Shared implementation of Figs. 5 and 6: per-iteration LU kernel rates
// (GEMM / GETRF / TRSM) as a function of the trailing-matrix size, one
// series per block size B.
#pragma once

#include <vector>

#include "bench_util.h"
#include "perfmodel/kernel_model.h"

namespace hplmxp::bench {

inline void printKernelCurves(MachineKind kind, index_t nl,
                              const std::vector<index_t>& blocks) {
  const KernelModel m(kind);
  const std::vector<double> fractions = {1.0, 0.75, 0.5, 0.25, 0.1};

  for (const char* kernel : {"GEMM", "GETRF", "TRSM"}) {
    std::vector<std::string> header{"trailing size"};
    for (index_t b : blocks) {
      header.push_back("B=" + Table::num((long long)b) + " (TF)");
    }
    Table t(header);
    for (double f : fractions) {
      const double trailing = f * static_cast<double>(nl);
      std::vector<std::string> row{Table::num(trailing, 0)};
      for (index_t b : blocks) {
        const double bd = static_cast<double>(b);
        double rate = 0.0;
        if (std::string(kernel) == "GEMM") {
          rate = m.gemmRate(trailing, trailing, bd, nl);
        } else if (std::string(kernel) == "GETRF") {
          rate = m.getrfRate(bd);  // diagonal block only: flat in trailing
        } else {
          rate = m.trsmRate(bd, trailing);
        }
        row.push_back(Table::num(rate / 1e12, 2));
      }
      t.addRow(row);
    }
    std::printf("\n%s rate per iteration (%s, N_L=%lld):\n", kernel,
                toString(kind).c_str(), (long long)nl);
    t.print();
  }

  std::printf(
      "\nShape checks vs the paper: every kernel's rate grows with B; GEMM\n"
      "and TRSM decay toward the trailing tail (right-to-left in the\n"
      "paper's plots); GETRF depends only on B and sits far below GEMM —\n"
      "it is the critical-path kernel that the B selection must not let\n"
      "dominate.\n");
}

}  // namespace hplmxp::bench
