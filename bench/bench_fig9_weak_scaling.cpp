// Fig. 9: memory weak scaling — GFLOPS/GCD vs GCD count with the per-GCD
// memory footprint (N_L) held constant, for column-major vs tuned
// node-local grid mappings on both machines. Reports the paper's parallel
// efficiencies: Summit 91.4% (col-major) / 104.6% (3x2) at 2916 GCDs,
// Frontier 92.2% (col-major) at 16384 GCDs.
#include <vector>

#include "bench_util.h"

using namespace hplmxp;

namespace {

void weakScaling(const char* name, ScaleSimConfig base,
                 const std::vector<index_t>& prs, index_t basePr,
                 const std::vector<std::pair<std::string, GridOrder>>& grids,
                 index_t qr, index_t qc) {
  std::vector<std::string> header{"GCDs"};
  for (const auto& [label, order] : grids) {
    (void)order;
    header.push_back(label + " (GF/GCD)");
    header.push_back(label + " par.eff");
  }
  Table t(header);

  std::vector<double> baseline(grids.size(), 0.0);
  for (index_t pr : prs) {
    std::vector<std::string> row{Table::num((long long)(pr * pr))};
    for (std::size_t g = 0; g < grids.size(); ++g) {
      ScaleSimConfig cfg = base;
      cfg.pr = cfg.pc = pr;
      cfg.gridOrder = grids[g].second;
      cfg.qr = qr;
      cfg.qc = qc;
      const double rate = simulateRun(cfg).ratePerGcd;
      if (pr == basePr) {
        baseline[g] = rate;
      }
      row.push_back(Table::num(rate / 1e9, 0));
      row.push_back(baseline[g] > 0.0
                        ? Table::num(rate / baseline[g] * 100.0, 1) + "%"
                        : "-");
    }
    t.addRow(row);
  }
  std::printf("\n%s\n", name);
  t.print();
}

}  // namespace

int main() {
  bench::banner("Fig. 9", "Memory weak scaling, GFLOPS/GCD vs GCD count");

  {
    ScaleSimConfig s = bench::summitEvalConfig();
    weakScaling(
        "Summit, N_L=61440, B=768 (baseline 36 GCDs; paper: col-major "
        "91.4%, 3x2 grid 104.6% at 2916 GCDs)",
        s, {6, 12, 18, 24, 36, 54}, 6,
        {{"col-major", GridOrder::kColumnMajor},
         {"3x2 grid", GridOrder::kNodeLocal}},
        3, 2);
  }
  {
    ScaleSimConfig f = bench::frontierEvalConfig();
    weakScaling(
        "Frontier, N_L=119808, B=3072, Ring2M (baseline 64 GCDs; paper: "
        "col-major 92.2% at 16384 GCDs)",
        f, {8, 16, 32, 64, 96, 128}, 8,
        {{"col-major", GridOrder::kColumnMajor},
         {"4x2 grid", GridOrder::kNodeLocal}},
        4, 2);
  }

  std::printf(
      "\nShape reproduced: rates RISE from the small-scale baseline (the\n"
      "weak-memory-scaling effect the paper describes), flatten, then\n"
      "decline at the largest scales as network overhead grows — with the\n"
      "grid-tuned mapping holding up better (Finding 9: ~10%% better\n"
      "scalability from process mapping).\n");
  return 0;
}
