// Shared helpers for the figure/table reproduction benches.
#pragma once

#include <cstdio>
#include <string>

#include "scalesim/scale_sim.h"
#include "util/table.h"

namespace hplmxp::bench {

/// Prints the standard bench banner.
inline void banner(const std::string& id, const std::string& what) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id.c_str(), what.c_str());
  std::printf("================================================================\n");
}

/// The paper's best-run configurations (Fig. 11).
inline ScaleSimConfig summitAchievementConfig() {
  return ScaleSimConfig{.machine = MachineKind::kSummit,
                        .nl = 61440,
                        .b = 768,
                        .pr = 162,
                        .pc = 162,
                        .gridOrder = GridOrder::kNodeLocal,
                        .qr = 3,
                        .qc = 2,
                        .strategy = simmpi::BcastStrategy::kBcast,
                        .slowestGcdMultiplier = 0.97};
}

inline ScaleSimConfig frontierAchievementConfig() {
  return ScaleSimConfig{.machine = MachineKind::kFrontier,
                        .nl = 119808,
                        .b = 3072,
                        .pr = 172,
                        .pc = 172,
                        .gridOrder = GridOrder::kNodeLocal,
                        .qr = 4,
                        .qc = 2,
                        .strategy = simmpi::BcastStrategy::kRing2M,
                        .slowestGcdMultiplier = 0.97};
}

/// The Fig. 4/8 evaluation scales: Summit 2916 GCDs (Pr=54), Frontier 1024
/// GCDs (Pr=32).
inline ScaleSimConfig summitEvalConfig() {
  ScaleSimConfig cfg = summitAchievementConfig();
  cfg.pr = cfg.pc = 54;
  return cfg;
}

inline ScaleSimConfig frontierEvalConfig() {
  ScaleSimConfig cfg = frontierAchievementConfig();
  cfg.pr = cfg.pc = 32;
  return cfg;
}

}  // namespace hplmxp::bench
