// Extension: ablations of the design choices DESIGN.md calls out —
// look-ahead, slow-node exclusion, warm-up mitigation, and an energy
// proxy (the paper's conclusion asks how mixed precision affects the
// energy profile; to first order energy ~ node-power x time).
#include "bench_util.h"
#include "machine/power.h"
#include "machine/variability.h"

using namespace hplmxp;

int main() {
  bench::banner("Ablation", "Look-ahead on/off at the achievement scales");
  {
    Table t({"machine", "look-ahead", "time (s)", "EFLOPS", "gain"});
    for (auto make : {bench::summitAchievementConfig,
                      bench::frontierAchievementConfig}) {
      ScaleSimConfig cfg = make();
      const ScaleSimResult on = simulateRun(cfg);
      cfg.lookahead = false;
      const ScaleSimResult off = simulateRun(cfg);
      t.addRow({toString(cfg.machine), "on", Table::num(on.totalSeconds, 0),
                Table::num(on.exaflops, 3),
                Table::num((on.exaflops / off.exaflops - 1.0) * 100.0, 1) +
                    "%"});
      t.addRow({toString(cfg.machine), "off",
                Table::num(off.totalSeconds, 0),
                Table::num(off.exaflops, 3), "-"});
    }
    t.print();
  }

  bench::banner("Ablation", "Fleet variability and slow-node exclusion");
  {
    const GcdVariability healthy(VariabilityConfig{.seed = 1, .spread = 0.05});
    const GcdVariability sick(VariabilityConfig{.seed = 1,
                                                .spread = 0.05,
                                                .slowFraction = 0.002,
                                                .slowPenalty = 0.25});
    ScaleSimConfig cfg = bench::frontierAchievementConfig();
    Table t({"fleet", "slowest multiplier", "EFLOPS"});
    for (auto& [label, mult] :
         std::vector<std::pair<std::string, double>>{
             {"ideal", 1.0},
             {"healthy 5% spread", healthy.fleetMin(cfg.ranks())},
             {"0.2% degraded dies kept", sick.fleetMin(cfg.ranks())},
             {"degraded excluded (scan)", healthy.fleetMin(cfg.ranks())}}) {
      cfg.slowestGcdMultiplier = mult;
      t.addRow({label, Table::num(mult, 4),
                Table::num(simulateRun(cfg).exaflops, 3)});
    }
    t.print();
  }

  bench::banner("Ablation", "Warm-up mitigation value (first-run loss)");
  {
    Table t({"machine", "first run cold (GF/GCD)", "first run pre-warmed",
             "recovered"});
    for (auto make : {bench::summitEvalConfig, bench::frontierEvalConfig}) {
      const ScaleSimConfig cfg = make();
      const auto cold = simulateRunSequence(cfg, 3, false);
      const auto warm = simulateRunSequence(cfg, 3, true);
      t.addRow({toString(cfg.machine), Table::num(cold[0] / 1e9, 1),
                Table::num(warm[0] / 1e9, 1),
                Table::num((warm[0] / cold[0] - 1.0) * 100.0, 1) + "%"});
    }
    t.print();
  }

  bench::banner("Extension", "Energy model: mixed precision vs FP64");
  {
    // The paper's conclusion anticipates that the mixed-precision speedup
    // translates directly to energy; the PowerModel quantifies it.
    const PowerModel power(MachineKind::kSummit);
    ScaleSimConfig mxpCfg = bench::summitAchievementConfig();
    const ScaleSimResult mxp = simulateRun(mxpCfg);
    mxpCfg.fp64 = true;
    const ScaleSimResult hpl = simulateRun(mxpCfg);
    const index_t nodes = mxp.ranks / summitSpec().gcdsPerNode;
    const double mxpMwh = power.runEnergyMwh(nodes, mxp.totalSeconds);
    const double hplMwh = power.runEnergyMwh(nodes, hpl.totalSeconds);
    Table t({"benchmark", "time (s)", "energy (MWh)", "GFLOPS/W"});
    t.addRow({"HPL-AI", Table::num(mxp.totalSeconds, 0),
              Table::num(mxpMwh, 2),
              Table::num(power.gflopsPerWatt(mxp.exaflops * 1e18, nodes),
                         1)});
    t.addRow({"HPL", Table::num(hpl.totalSeconds, 0), Table::num(hplMwh, 2),
              Table::num(power.gflopsPerWatt(hpl.exaflops * 1e18, nodes),
                         1)});
    t.print();
    std::printf("energy ratio (HPL/HPL-AI): %.1fx — mixed precision's "
                "speedup translates directly to energy savings.\n",
                hplMwh / mxpMwh);
  }
  return 0;
}
