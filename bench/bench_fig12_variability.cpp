// Fig. 12: run-to-run variability across six consecutive full runs in one
// batch job at 2916 GCDs — Summit's first run is ~20% slower (cold
// caches), Frontier's first two runs are slightly faster (pre-throttle
// clocks); pre-warming removes both effects (Finding 10).
#include "bench_util.h"
#include "machine/warmup.h"
#include "util/stats.h"

using namespace hplmxp;

namespace {

void sequence(const char* name, const ScaleSimConfig& base) {
  const auto cold = simulateRunSequence(base, 6, /*preWarmed=*/false);
  const auto warm = simulateRunSequence(base, 6, /*preWarmed=*/true);
  Table t({"run", "no warm-up (GF/GCD)", "pre-warmed (GF/GCD)"});
  for (index_t i = 0; i < 6; ++i) {
    t.addRow({Table::num((long long)(i + 1)),
              Table::num(cold[static_cast<std::size_t>(i)] / 1e9, 1),
              Table::num(warm[static_cast<std::size_t>(i)] / 1e9, 1)});
  }
  std::printf("\n%s\n", name);
  t.print();

  // Steady-state discrepancy caps, as the paper reports them.
  std::vector<double> steadyCold(cold.begin() + 2, cold.end());
  std::vector<double> steadyWarm(warm.begin(), warm.end());
  std::printf("first-run vs steady: %+.1f%%; settled spread: %.2f%% "
              "(no warm-up), %.2f%% (pre-warmed)\n",
              (cold[0] / cold[2] - 1.0) * 100.0,
              relativeSpreadPercent(steadyCold),
              relativeSpreadPercent(steadyWarm));
}

}  // namespace

int main() {
  bench::banner("Fig. 12", "Variability across 6 consecutive runs (model)");

  sequence("Summit, 2916 GCDs (paper: run 1 is 20% slower; later runs "
           "within 0.12%)",
           bench::summitEvalConfig());
  sequence("Frontier, 1024 GCDs shown at Fig.12 scale (paper: first two "
           "runs faster; later runs within 0.34%)",
           bench::frontierEvalConfig());

  bench::banner("Finding 10", "Recommended warm-up strategies");
  std::printf(
      "Summit: run the mini-benchmark once before the real run (warms "
      "file-system caches for binaries/libraries).\n"
      "Frontier: embed small GEMM kernels at the start of the run so the "
      "GPUs settle into their sustained power/frequency state.\n");
  return 0;
}
