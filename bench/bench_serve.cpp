// Serving benchmark: throughput/latency of the solver-as-a-service engine.
//
// Three sweeps, all on synthetic open-loop traces over repeated problem
// keys (the serving analogue of the paper's factor-once economics):
//   1. batching   — the same request stream with coalescing windows of
//                   0 / 0.5 / 2 ms: what multi-RHS batching buys.
//   2. cache      — key working set smaller vs. larger than the factor
//                   cache budget: hit-rate and its latency cliff.
//   3. chaos      — the delay and transient scenarios from the PR-1 fault
//                   harness: retries and deadline rejections, never hangs.
//
// Writes BENCH_serve.json: the final section of each sweep plus the full
// latency report of the headline run (queue-wait and solve-time
// p50/p95/p99 — the fields the serve-smoke CI job asserts exist).
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "serve/engine.h"
#include "serve/fleet/fleet.h"
#include "serve/trace_io.h"
#include "simmpi/faults.h"
#include "util/table.h"

namespace hplmxp {
namespace {

using serve::RequestTrace;
using serve::ServeConfig;
using serve::ServeEngine;
using serve::ServeReport;
using serve::SolveRequest;
using serve::TraceRequest;

/// Replays `trace` open-loop through a fresh engine and returns the report.
ServeReport replay(const RequestTrace& trace, ServeConfig cfg) {
  ServeEngine engine(std::move(cfg));
  Timer clock;
  for (const TraceRequest& tr : trace.requests) {
    const double at = tr.atMs * 1e-3;
    const double nowS = clock.seconds();
    if (at > nowS) {
      std::this_thread::sleep_for(std::chrono::duration<double>(at - nowS));
    }
    SolveRequest req;
    req.key = {tr.n, tr.b, tr.seed, tr.pr, tr.pc,
               HplaiConfig::Scheduler::kBulk};
    req.rhsSeed = tr.rhsSeed;
    req.deadlineSeconds = tr.deadlineMs * 1e-3;
    engine.submit(req);
  }
  engine.drain();
  ServeReport r = engine.report();
  r.trace = trace.name;
  return r;
}

/// Replays `trace` through a sharded fleet, optionally circuit-breaking
/// shard 0 for the middle third of the arrivals (drain + re-route).
serve::FleetReport fleetReplay(const RequestTrace& trace,
                               serve::FleetConfig cfg, bool degrade) {
  serve::FleetEngine fleet(std::move(cfg));
  Timer clock;
  const std::size_t total = trace.requests.size();
  for (std::size_t i = 0; i < total; ++i) {
    if (degrade && i == total / 3) {
      fleet.breakShard(0);
    }
    if (degrade && i == 2 * total / 3) {
      fleet.unbreakShard(0);
    }
    const TraceRequest& tr = trace.requests[i];
    const double at = tr.atMs * 1e-3;
    const double nowS = clock.seconds();
    if (at > nowS) {
      std::this_thread::sleep_for(std::chrono::duration<double>(at - nowS));
    }
    SolveRequest req;
    req.key = {tr.n, tr.b, tr.seed, tr.pr, tr.pc,
               HplaiConfig::Scheduler::kBulk};
    req.rhsSeed = tr.rhsSeed;
    req.deadlineSeconds = tr.deadlineMs * 1e-3;
    fleet.submit(req);
  }
  fleet.drain();
  serve::FleetReport r = fleet.report();
  r.trace = trace.name;
  return r;
}

}  // namespace
}  // namespace hplmxp

int main() {
  using namespace hplmxp;
  bench::banner("BENCH serve", "solver-as-a-service: factor cache, request "
                               "batching, multi-RHS refinement");

  const index_t kRequests = 48;
  const index_t kKeys = 3;
  const index_t kN = 96;
  const index_t kB = 16;

  // Sweep 1: coalescing window.
  Table batching({"batch delay", "mean batch", "throughput r/s", "p50 ms",
                  "p99 ms", "hit rate"});
  ServeReport headline;
  for (const double delayUs : {0.0, 500.0, 2000.0}) {
    ServeConfig cfg;
    cfg.maxBatchDelaySeconds = delayUs * 1e-6;
    const ServeReport r =
        replay(serve::makeSyntheticTrace(kRequests, kKeys, 0.25, kN, kB, 21),
               std::move(cfg));
    batching.addRow({Table::num(delayUs, 0) + " us",
                     Table::num(r.meanBatchSize, 2),
                     Table::num(r.throughputRps, 1),
                     Table::num(r.total.p50Ms, 2), Table::num(r.total.p99Ms, 2),
                     Table::num(r.cache.hitRate() * 100.0, 1) + "%"});
    if (delayUs == 500.0) {
      headline = r;
    }
  }
  batching.print();

  // Sweep 2: factor-cache working set vs. budget. One n=96 FP32 panel set
  // is ~36 KB; a 64 KB budget holds one key, a 64 MB budget holds all.
  Table cache({"cache budget", "keys", "factorizations", "hit rate",
               "evictions", "p99 ms"});
  for (const std::size_t budget :
       {std::size_t{64} << 10, std::size_t{64} << 20}) {
    ServeConfig cfg;
    cfg.cacheBytes = budget;
    cfg.maxBatchDelaySeconds = 500e-6;
    const ServeReport r =
        replay(serve::makeSyntheticTrace(kRequests, kKeys, 0.25, kN, kB, 21),
               std::move(cfg));
    cache.addRow({Table::num((long long)(budget >> 10)) + " KB",
                  Table::num((long long)kKeys),
                  Table::num((long long)r.cache.factorCount),
                  Table::num(r.cache.hitRate() * 100.0, 1) + "%",
                  Table::num((long long)r.cache.evictions),
                  Table::num(r.total.p99Ms, 2)});
  }
  cache.print();

  // Sweep 3: chaos. Tight deadlines + injected delay => rejections;
  // transient faults => retries. Either way every request terminates.
  Table chaos({"scenario", "completed", "rej deadline", "failed", "retries",
               "inj delays", "inj transients"});
  for (const std::string scenario : {"none", "delay", "transient"}) {
    ServeConfig cfg;
    cfg.maxBatchDelaySeconds = 500e-6;
    cfg.defaultDeadlineSeconds = 0.050;
    if (scenario != "none") {
      cfg.chaos = std::make_shared<simmpi::FaultInjector>(
          simmpi::faultScenario(scenario, 7, cfg.workers), cfg.workers);
    }
    const ServeReport r =
        replay(serve::makeSyntheticTrace(kRequests, kKeys, 0.25, kN, kB, 21),
               std::move(cfg));
    chaos.addRow({scenario, Table::num((long long)r.completed),
                  Table::num((long long)r.rejectedDeadline),
                  Table::num((long long)r.failed),
                  Table::num((long long)r.retries),
                  Table::num((long long)r.injectedDelays),
                  Table::num((long long)r.injectedTransients)});
  }
  chaos.print();

  // Sweep 4: circuit breaker. A poisoned key (every execution attempt
  // fails) is interleaved with healthy traffic. Without the breaker its
  // retries keep burning the worker lane healthy keys queue behind; with
  // it the circuit trips after `failureThreshold` terminal failures and
  // later submissions are rejected at admission, keeping healthy-key p99
  // (completed requests only) near the fault-free baseline.
  // Arrivals are spread out (1 ms gaps) so poisoned batches start failing
  // while later poisoned requests are still arriving — that is the window
  // where the tripped circuit converts executions into admission
  // rejections.
  const std::uint64_t kPoisonSeed = 4242;
  const RequestTrace breakerBase =
      serve::makeSyntheticTrace(kRequests, kKeys, 1.0, kN, kB, 21);
  RequestTrace poisoned;
  poisoned.name = "poisoned";
  for (std::size_t i = 0; i < breakerBase.requests.size(); ++i) {
    poisoned.requests.push_back(breakerBase.requests[i]);
    if (i % 4 == 3) {  // one poisoned arrival per four healthy ones
      TraceRequest bad = breakerBase.requests[i];
      bad.seed = kPoisonSeed;
      bad.rhsSeed = 90000 + i;
      poisoned.requests.push_back(bad);
    }
  }
  Table breaker({"scenario", "completed", "failed", "rej circuit", "trips",
                 "healthy p99 ms"});
  double baselineP99 = 0.0;
  double breakerP99 = 0.0;
  for (const std::string scenario :
       {"baseline", "fault-no-breaker", "fault-breaker"}) {
    ServeConfig cfg;
    cfg.maxBatchDelaySeconds = 500e-6;
    cfg.workers = 2;  // a lane for the poisoned key, a lane for the rest
    if (scenario != "baseline") {
      cfg.keyFaultHook = [kPoisonSeed](const serve::ProblemKey& k) {
        return k.seed == kPoisonSeed;
      };
      cfg.maxRetries = 0;  // the fault is permanent: retries only add load
      cfg.retryBackoffSeconds = 0.5e-3;
    }
    if (scenario == "fault-breaker") {
      cfg.breaker.enabled = true;
      cfg.breaker.failureThreshold = 2;
      cfg.breaker.openSeconds = 60.0;  // longer than the replay: stays open
    }
    const ServeReport r =
        replay(scenario == "baseline" ? breakerBase : poisoned,
               std::move(cfg));
    if (scenario == "baseline") {
      baselineP99 = r.total.p99Ms;
    } else if (scenario == "fault-breaker") {
      breakerP99 = r.total.p99Ms;
    }
    breaker.addRow({scenario, Table::num((long long)r.completed),
                    Table::num((long long)r.failed),
                    Table::num((long long)r.rejectedCircuitOpen),
                    Table::num((long long)r.breakerTrips),
                    Table::num(r.total.p99Ms, 2)});
  }
  breaker.print();
  std::printf("breaker: healthy p99 %.2f ms vs baseline %.2f ms (%.2fx)\n",
              breakerP99, baselineP99,
              baselineP99 > 0.0 ? breakerP99 / baselineP99 : 0.0);

  // Sweep 5: the sharded fleet. The same stream over 1/2/3 shards (each
  // on its own rank grid), plus a degraded 3-shard run with shard 0
  // circuit-broken for the middle third of the arrivals. Answers are
  // bitwise-invariant to sharding (tests/test_fleet.cpp proves it); this
  // sweep records what sharding costs and what degradation does to the
  // ledger — dropped must be 0 in every row.
  Table fleetSweep({"fleet", "completed", "p50 ms", "p99 ms", "hit rate",
                    "reroutes", "dropped"});
  for (const index_t shards : {index_t{1}, index_t{2}, index_t{3}}) {
    for (const bool degrade : {false, true}) {
      if (degrade && shards < 3) {
        continue;
      }
      serve::FleetConfig cfg;
      cfg.shards = shards;
      cfg.groupSize = 2;
      cfg.health.openSeconds = 60.0;  // broken until explicitly unbroken
      cfg.shard.maxBatchDelaySeconds = 500e-6;
      const serve::FleetReport r = fleetReplay(
          serve::makeSyntheticTrace(kRequests, kKeys, 0.25, kN, kB, 21),
          std::move(cfg), degrade);
      fleetSweep.addRow(
          {Table::num((long long)shards) + " shard" + (shards > 1 ? "s" : "") +
               (degrade ? " (degraded)" : ""),
           Table::num((long long)r.fleet.completed),
           Table::num(r.fleet.total.p50Ms, 2),
           Table::num(r.fleet.total.p99Ms, 2),
           Table::num(r.fleet.cache.hitRate() * 100.0, 1) + "%",
           Table::num((long long)r.reroutes),
           Table::num((long long)r.dropped)});
    }
  }
  fleetSweep.print();

  headline.trace = "bench-serve-headline";
  serve::writeReportFile("BENCH_serve.json", headline.toJson());
  std::printf("\nwrote BENCH_serve.json (headline: %.1f req/s, hit rate "
              "%.0f%%, total p99 %.2f ms)\n",
              headline.throughputRps, headline.cache.hitRate() * 100.0,
              headline.total.p99Ms);
  return 0;
}
