// Fig. 6: per-iteration LU kernel rates (GEMM / GETRF / TRSM) on a
// Frontier MI250X GCD across block sizes, as the trailing problem shrinks.
#include "bench_kernel_curves.h"

using namespace hplmxp;

int main() {
  bench::banner("Fig. 6", "MI250X GCD per-iteration kernel rates (model)");
  bench::printKernelCurves(MachineKind::kFrontier, 119808,
                           {512, 1024, 2048, 3072, 4096});
  return 0;
}
