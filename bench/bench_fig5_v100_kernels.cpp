// Fig. 5: per-iteration LU kernel rates (GEMM / GETRF / TRSM) on a Summit
// V100 across block sizes, as the trailing problem shrinks.
#include "bench_kernel_curves.h"

using namespace hplmxp;

int main() {
  bench::banner("Fig. 5", "V100 per-iteration kernel rates (model)");
  bench::printKernelCurves(MachineKind::kSummit, 61440,
                           {256, 512, 768, 1024, 2048});
  return 0;
}
