// Fig. 10: per-iteration timing breakdown of the components on Frontier
// with 64 GCDs — the progress-report output of the paper's monitoring
// mechanism. Shows the benchmark is compute bound until the final trailing
// iterations, where communication wait dominates.
#include <vector>

#include "bench_util.h"
#include "trace/progress.h"

using namespace hplmxp;

int main() {
  bench::banner("Fig. 10",
                "Per-iteration breakdown, Frontier 64 GCDs (model)");

  ScaleSimConfig cfg = bench::frontierEvalConfig();
  cfg.pr = cfg.pc = 8;
  cfg.qr = 2;
  cfg.qc = 4;
  cfg.recordIterations = true;
  const ScaleSimResult r = simulateRun(cfg);

  Table t({"iter", "trailing", "getrf ms", "diag ms", "trsm ms", "cast ms",
           "bcast ms", "gemm ms", "iter ms", "bound"});
  const index_t nb = static_cast<index_t>(r.iterations.size());
  const index_t step = std::max<index_t>(1, nb / 16);
  for (index_t k = 0; k < nb; k += step) {
    const SimIteration& it = r.iterations[static_cast<std::size_t>(k)];
    t.addRow({Table::num((long long)it.k),
              Table::num((long long)(nb - it.k - 1)),
              Table::num(it.getrfSeconds * 1e3, 2),
              Table::num(it.diagBcastSeconds * 1e3, 2),
              Table::num(it.trsmSeconds * 1e3, 2),
              Table::num(it.castSeconds * 1e3, 2),
              Table::num(it.panelBcastSeconds * 1e3, 2),
              Table::num(it.gemmSeconds * 1e3, 2),
              Table::num(it.iterSeconds * 1e3, 2),
              it.commBound ? "comm" : "compute"});
  }
  t.addRow({Table::num((long long)(nb - 1)), "0",
            Table::num(r.iterations.back().getrfSeconds * 1e3, 2),
            Table::num(r.iterations.back().diagBcastSeconds * 1e3, 2),
            Table::num(r.iterations.back().trsmSeconds * 1e3, 2),
            Table::num(r.iterations.back().castSeconds * 1e3, 2),
            Table::num(r.iterations.back().panelBcastSeconds * 1e3, 2),
            Table::num(r.iterations.back().gemmSeconds * 1e3, 2),
            Table::num(r.iterations.back().iterSeconds * 1e3, 2),
            r.iterations.back().commBound ? "comm" : "compute"});
  t.print();

  std::printf("\ncompute-bound fraction: %.1f%% of iterations "
              "(paper: \"computational bounded until the final trailing "
              "iterations\")\n",
              (1.0 - r.commBoundFraction) * 100.0);

  // Early-termination demonstration: feed the breakdown into the monitor
  // with the model as the reference, then inject a fabric stall.
  bench::banner("Sec. VI-B", "Progress monitor / early termination demo");
  ProgressMonitor mon(ProgressPolicy{.slowdownFactor = 2.0, .strikes = 3},
                      [&](index_t k) {
                        return r.iterations[static_cast<std::size_t>(k)]
                            .iterSeconds;
                      });
  index_t terminatedAt = -1;
  for (index_t k = 0; k < nb; ++k) {
    double observed = r.iterations[static_cast<std::size_t>(k)].iterSeconds;
    if (k >= nb / 2) {
      observed *= 10.0;  // injected fabric hang at mid-run
    }
    if (mon.observe(k, observed) == ProgressVerdict::kTerminate) {
      terminatedAt = k;
      break;
    }
  }
  std::printf("injected a 10x slowdown at iteration %lld; monitor "
              "terminated the run at iteration %lld (3 strikes), saving "
              "%.0f%% of the remaining node-hours.\n",
              (long long)(nb / 2), (long long)terminatedAt,
              (1.0 - (double)terminatedAt / (double)nb) * 100.0);
  return 0;
}
