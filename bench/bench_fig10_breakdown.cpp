// Fig. 10: per-iteration timing breakdown of the components on Frontier
// with 64 GCDs — the progress-report output of the paper's monitoring
// mechanism. Shows the benchmark is compute bound until the final trailing
// iterations, where communication wait dominates.
#include <vector>

#include "bench_util.h"
#include "core/dist_context.h"
#include "core/hplai.h"
#include "core/lu_dist.h"
#include "device/shim.h"
#include "gen/matgen.h"
#include "simmpi/runtime.h"
#include "trace/progress.h"
#include "trace/sched_timeline.h"
#include "util/buffer.h"
#include "util/timer.h"

using namespace hplmxp;

namespace {

/// Factors one functional problem under the given scheduler, returning
/// (seconds, scheduler timeline stats from rank 0).
std::pair<double, TaskGraph::ExecStats> timeFactorization(
    HplaiConfig cfg, HplaiConfig::Scheduler sched) {
  cfg.scheduler = sched;
  double seconds = 0.0;
  TaskGraph::ExecStats stats;
  simmpi::run(cfg.worldSize(), [&](simmpi::Comm& world) {
    DistContext ctx(world, cfg);
    const ProblemGenerator gen(cfg.seed, cfg.n);
    const index_t b = cfg.b;
    const index_t lda = ctx.localRows();
    Buffer<float> local(ctx.localRows() * ctx.localCols());
    const BlockCyclic& layout = ctx.layout();
    for (index_t lj = 0; lj < ctx.localCols() / b; ++lj) {
      for (index_t li = 0; li < ctx.localRows() / b; ++li) {
        gen.fillTile<float>(layout.globalBlockRow(ctx.myRow(), li) * b,
                            layout.globalBlockCol(ctx.myCol(), lj) * b, b, b,
                            local.data() + li * b + lj * b * lda, lda);
      }
    }
    BlasShim shim(cfg.vendor);
    DistLU lu(ctx, cfg, shim);
    world.barrier();
    Timer timer;
    lu.factor(local.data(), lda);
    world.barrier();
    if (world.rank() == 0) {
      seconds = timer.seconds();
      stats = lu.schedStats();
    }
  });
  return {seconds, stats};
}

}  // namespace

int main() {
  bench::banner("Fig. 10",
                "Per-iteration breakdown, Frontier 64 GCDs (model)");

  ScaleSimConfig cfg = bench::frontierEvalConfig();
  cfg.pr = cfg.pc = 8;
  cfg.qr = 2;
  cfg.qc = 4;
  cfg.recordIterations = true;
  const ScaleSimResult r = simulateRun(cfg);

  Table t({"iter", "trailing", "getrf ms", "diag ms", "trsm ms", "cast ms",
           "bcast ms", "gemm ms", "iter ms", "bound"});
  const index_t nb = static_cast<index_t>(r.iterations.size());
  const index_t step = std::max<index_t>(1, nb / 16);
  for (index_t k = 0; k < nb; k += step) {
    const SimIteration& it = r.iterations[static_cast<std::size_t>(k)];
    t.addRow({Table::num((long long)it.k),
              Table::num((long long)(nb - it.k - 1)),
              Table::num(it.getrfSeconds * 1e3, 2),
              Table::num(it.diagBcastSeconds * 1e3, 2),
              Table::num(it.trsmSeconds * 1e3, 2),
              Table::num(it.castSeconds * 1e3, 2),
              Table::num(it.panelBcastSeconds * 1e3, 2),
              Table::num(it.gemmSeconds * 1e3, 2),
              Table::num(it.iterSeconds * 1e3, 2),
              it.commBound ? "comm" : "compute"});
  }
  t.addRow({Table::num((long long)(nb - 1)), "0",
            Table::num(r.iterations.back().getrfSeconds * 1e3, 2),
            Table::num(r.iterations.back().diagBcastSeconds * 1e3, 2),
            Table::num(r.iterations.back().trsmSeconds * 1e3, 2),
            Table::num(r.iterations.back().castSeconds * 1e3, 2),
            Table::num(r.iterations.back().panelBcastSeconds * 1e3, 2),
            Table::num(r.iterations.back().gemmSeconds * 1e3, 2),
            Table::num(r.iterations.back().iterSeconds * 1e3, 2),
            r.iterations.back().commBound ? "comm" : "compute"});
  t.print();

  std::printf("\ncompute-bound fraction: %.1f%% of iterations "
              "(paper: \"computational bounded until the final trailing "
              "iterations\")\n",
              (1.0 - r.commBoundFraction) * 100.0);

  // Early-termination demonstration: feed the breakdown into the monitor
  // with the model as the reference, then inject a fabric stall.
  bench::banner("Sec. VI-B", "Progress monitor / early termination demo");
  ProgressMonitor mon(ProgressPolicy{.slowdownFactor = 2.0, .strikes = 3},
                      [&](index_t k) {
                        return r.iterations[static_cast<std::size_t>(k)]
                            .iterSeconds;
                      });
  index_t terminatedAt = -1;
  for (index_t k = 0; k < nb; ++k) {
    double observed = r.iterations[static_cast<std::size_t>(k)].iterSeconds;
    if (k >= nb / 2) {
      observed *= 10.0;  // injected fabric hang at mid-run
    }
    if (mon.observe(k, observed) == ProgressVerdict::kTerminate) {
      terminatedAt = k;
      break;
    }
  }
  std::printf("injected a 10x slowdown at iteration %lld; monitor "
              "terminated the run at iteration %lld (3 strikes), saving "
              "%.0f%% of the remaining node-hours.\n",
              (long long)(nb / 2), (long long)terminatedAt,
              (1.0 - (double)terminatedAt / (double)nb) * 100.0);

  // Scheduler comparison on the functional substrate: the same problem
  // factored by the bulk (barriered) engine and by the dataflow task
  // graph, with the per-task timeline showing where the dataflow engine
  // hides communication and what the lanes did.
  bench::banner("Scheduler", "bulk vs dataflow tile task graph (functional)");
  HplaiConfig fcfg;
  fcfg.n = 1024;
  fcfg.b = 64;
  fcfg.pr = 2;
  fcfg.pc = 2;
  fcfg.seed = 2022;
  fcfg.panelBcast = simmpi::BcastStrategy::kRing2M;
  fcfg.lookahead = true;

  const auto [bulkSeconds, bulkStats] =
      timeFactorization(fcfg, HplaiConfig::Scheduler::kBulk);
  const auto [dfSeconds, dfStats] =
      timeFactorization(fcfg, HplaiConfig::Scheduler::kDataflow);

  Table cmp({"scheduler", "factor s", "speedup"});
  cmp.addRow({"bulk", Table::num(bulkSeconds, 4), "1.00"});
  cmp.addRow({"dataflow", Table::num(dfSeconds, 4),
              Table::num(dfSeconds > 0.0 ? bulkSeconds / dfSeconds : 0.0,
                         2)});
  cmp.print();

  std::printf("\nrank-0 dataflow timeline:\n%s\n",
              trace::renderSchedTimeline(
                  trace::summarizeSchedTimeline(dfStats))
                  .c_str());
  Table kinds({"task kind", "count", "seconds"});
  for (const trace::SchedKindBreakdown& row :
       trace::schedKindBreakdown(dfStats)) {
    kinds.addRow({toString(row.kind),
                  Table::num(static_cast<long long>(row.count)),
                  Table::num(row.seconds, 4)});
  }
  kinds.print();
  return 0;
}
