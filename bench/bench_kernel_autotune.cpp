// Kernel autotune bench: before/after comparison of the rewritten GEMM
// against the retained pre-rewrite kernel, plus the blocking sweep and the
// measured flop-rate ladders that calibrate the performance model.
//
// Usage: bench_kernel_autotune [N] [out.json] [sweepN]
//   N      problem size for the before/after measurement (default 256)
//   out    JSON results path (default BENCH_kernels.json); the tune table
//          is persisted next to it as <out minus .json>.tune.txt
//   sweepN blocking-sweep problem size (default min(N, 384) to keep the
//          27-candidate sweep affordable at large N)
//
// The CI kernel-bench job runs this at a small N and uploads the JSON so
// every change carries a measured GF/s record.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "blas/abft.h"
#include "blas/blas.h"
#include "blas/gemm_baseline.h"
#include "device/shim.h"
#include "fp16/half.h"
#include "perfmodel/autotune.h"
#include "perfmodel/kernel_model.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace hplmxp;

namespace {

void fill(half16* p, std::size_t count, std::uint32_t seed) {
  std::uint32_t s = seed;
  for (std::size_t i = 0; i < count; ++i) {
    s = s * 1664525u + 1013904223u;
    p[i] = half16(static_cast<float>(static_cast<std::int32_t>(s)) *
                  0x1p-31f);
  }
}

template <typename Fn>
double bestGflops(double flops, int reps, Fn&& fn) {
  fn();  // warmup
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return flops / best / 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  const index_t n = argc > 1 ? std::atol(argv[1]) : 256;
  const std::string outPath = argc > 2 ? argv[2] : "BENCH_kernels.json";
  const index_t sweepN =
      argc > 3 ? std::atol(argv[3]) : std::min<index_t>(n, 384);
  HPLMXP_REQUIRE(n > 0 && sweepN > 0, "sizes must be > 0");

  ThreadPool& pool = ThreadPool::global();
  bench::banner("Kernel autotune",
                "native GEMM before/after + blocking sweep + rate curves");
  std::printf("lanes=%lld  N=%lld  sweepN=%lld\n",
              static_cast<long long>(pool.laneCount()),
              static_cast<long long>(n), static_cast<long long>(sweepN));

  // --- Before/after: retained pre-rewrite kernel vs the BLIS-style one.
  const auto count = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  std::vector<half16> a(count);
  std::vector<half16> b(count);
  std::vector<float> c(count, 0.0f);
  fill(a.data(), count, 17);
  fill(b.data(), count, 29);
  const double flops = blas::gemmFlops(n, n, n);
  const int reps = n >= 1024 ? 2 : 3;

  const double beforeGf = bestGflops(flops, reps, [&] {
    blas::baseline::gemmMixed(blas::Trans::kNoTrans, blas::Trans::kTrans, n,
                              n, n, -1.0f, a.data(), n, b.data(), n, 1.0f,
                              c.data(), n, &pool);
  });
  const double afterGf = bestGflops(flops, reps, [&] {
    blas::gemmMixed(blas::Trans::kNoTrans, blas::Trans::kTrans, n, n, n,
                    -1.0f, a.data(), n, b.data(), n, 1.0f, c.data(), n,
                    &pool);
  });

  Table t({"kernel", "GF/s", "speedup"});
  t.addRow({"baseline (pre-rewrite)", Table::num(beforeGf, 2), "1.00x"});
  t.addRow({"blis-style rewrite", Table::num(afterGf, 2),
            Table::num(afterGf / beforeGf, 2) + "x"});
  t.print();

  // --- Blocking sweep (installs the winner process-wide).
  const GemmTuneResult tune = autotuneGemmBlocking(sweepN, &pool, 2);
  std::printf("\nsweep @ N=%lld: best mc=%lld nc=%lld kc=%lld  %.2f GF/s "
              "(default blocking: %.2f GF/s, %d candidates)\n",
              static_cast<long long>(sweepN),
              static_cast<long long>(tune.blocking.mc),
              static_cast<long long>(tune.blocking.nc),
              static_cast<long long>(tune.blocking.kc), tune.gflops,
              tune.baseline, tune.candidatesTried);

  // Re-measure the big problem under the tuned blocking.
  const double tunedGf = bestGflops(flops, reps, [&] {
    blas::gemmMixed(blas::Trans::kNoTrans, blas::Trans::kTrans, n, n, n,
                    -1.0f, a.data(), n, b.data(), n, 1.0f, c.data(), n,
                    &pool);
  });
  std::printf("tuned blocking @ N=%lld: %.2f GF/s\n",
              static_cast<long long>(n), tunedGf);

  BlasShim shim(Vendor::kAmd, &pool);
  std::printf("active kernel config: %s\n", shim.kernelConfig().c_str());

  // --- ABFT overhead: the same tuned GEMM wrapped in the trailing-update
  // protection the factorization runs under abft.gemm (doc/ROBUSTNESS.md):
  // FP64 row sums of C before, carry-invariant check after. O(n^2) next to
  // the GEMM's O(n^3); the reliability story only holds if this stays
  // cheap at scale.
  std::vector<double> rowSums64(static_cast<std::size_t>(n));
  const double protectedGf = bestGflops(flops, reps, [&] {
    blas::abftRowSums64(n, n, c.data(), n, rowSums64.data());
    blas::gemmMixed(blas::Trans::kNoTrans, blas::Trans::kTrans, n, n, n,
                    -1.0f, a.data(), n, b.data(), n, 1.0f, c.data(), n,
                    &pool);
    const blas::AbftGemmCheck chk = blas::abftGemmCarryCheck(
        n, n, n, rowSums64.data(), a.data(), n, b.data(), n, c.data(), n);
    HPLMXP_REQUIRE(chk.ok, "clean GEMM must pass the ABFT carry check");
  });
  const double abftOverheadPct = (tunedGf / protectedGf - 1.0) * 100.0;

  // Panel checksum round-trip at the same N: checksum an N x 64 panel,
  // flip one bit, and require detect-and-correct to restore it exactly —
  // the measured record behind the "flip corrected under <10% overhead"
  // acceptance line.
  const index_t pb = std::min<index_t>(n, 64);
  std::vector<half16> panel(a.begin(),
                            a.begin() + static_cast<std::size_t>(n) * pb);
  std::vector<float> rowSums(static_cast<std::size_t>(n));
  std::vector<float> colSums(static_cast<std::size_t>(pb));
  const double checksumSeconds = [&] {
    Timer tm;
    blas::abftChecksum(n, pb, panel.data(), n, rowSums.data(),
                       colSums.data());
    return tm.seconds();
  }();
  const std::size_t victim = static_cast<std::size_t>(n) * (pb / 2) + n / 3;
  const std::uint16_t sentBits = panel[victim].bits();
  panel[victim] = half16::fromBits(sentBits ^ (1u << 9));
  const blas::AbftOutcome fix = blas::abftVerifyCorrect(
      n, pb, panel.data(), n, rowSums.data(), colSums.data());
  const bool flipCorrected =
      fix.status == blas::AbftOutcome::Status::kCorrected &&
      panel[victim].bits() == sentBits;
  HPLMXP_REQUIRE(flipCorrected, "single panel bit flip must be corrected");

  Table abft({"GEMM @ N", "plain GF/s", "ABFT-protected GF/s", "overhead",
              "panel flip"});
  abft.addRow({Table::num(static_cast<long long>(n)), Table::num(tunedGf, 2),
               Table::num(protectedGf, 2),
               Table::num(abftOverheadPct, 2) + "%",
               flipCorrected ? "corrected" : "NOT corrected"});
  std::printf("\n");
  abft.print();
  std::printf("panel checksum (%lldx%lld): %.3f ms\n",
              static_cast<long long>(n), static_cast<long long>(pb),
              checksumSeconds * 1e3);

  // --- Measured rate ladders feeding the performance model.
  std::vector<index_t> sizes{96, 192};
  if (sweepN > 192) {
    sizes.push_back(sweepN);
  }
  const MeasuredKernelCurves curves = measureKernelCurves(sizes, &pool, 2);
  Table ct({"size", "GEMM GF/s", "GETRF GF/s", "TRSM GF/s"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    ct.addRow({Table::num(static_cast<long long>(sizes[i])),
               Table::num(curves.gemm[i].rate / 1e9, 2),
               Table::num(curves.getrf[i].rate / 1e9, 2),
               Table::num(curves.trsm[i].rate / 1e9, 2)});
  }
  std::printf("\n");
  ct.print();

  KernelModel model(MachineKind::kFrontier);
  model.calibrate(curves);
  const double modelGf =
      model.gemmRate(static_cast<double>(n), static_cast<double>(n),
                     static_cast<double>(n)) /
      1e9;
  std::printf("\ncalibrated model GEMM rate @ N=%lld: %.2f GF/s "
              "(measured: %.2f)\n",
              static_cast<long long>(n), modelGf, tunedGf);

  // --- Persist: JSON record + plain-text tune table.
  std::string tunePath = outPath;
  const std::size_t dot = tunePath.rfind(".json");
  if (dot != std::string::npos) {
    tunePath.resize(dot);
  }
  tunePath += ".tune.txt";
  if (!saveTuneTable(tunePath, tune, curves)) {
    std::fprintf(stderr, "failed to write %s\n", tunePath.c_str());
    return 1;
  }

  std::FILE* f = std::fopen(outPath.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "failed to write %s\n", outPath.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"n\": %lld,\n", static_cast<long long>(n));
  std::fprintf(f, "  \"threads\": %lld,\n",
               static_cast<long long>(pool.laneCount()));
  std::fprintf(f, "  \"baseline_gflops\": %.3f,\n", beforeGf);
  std::fprintf(f, "  \"new_gflops\": %.3f,\n", afterGf);
  std::fprintf(f, "  \"tuned_gflops\": %.3f,\n", tunedGf);
  std::fprintf(f, "  \"speedup\": %.3f,\n", tunedGf / beforeGf);
  std::fprintf(f,
               "  \"tuned_blocking\": {\"mc\": %lld, \"nc\": %lld, "
               "\"kc\": %lld, \"sweep_n\": %lld, \"sweep_gflops\": %.3f},\n",
               static_cast<long long>(tune.blocking.mc),
               static_cast<long long>(tune.blocking.nc),
               static_cast<long long>(tune.blocking.kc),
               static_cast<long long>(sweepN), tune.gflops);
  std::fprintf(f, "  \"calibrated_model_gflops_at_n\": %.3f,\n", modelGf);
  std::fprintf(f,
               "  \"abft\": {\"gemm_gflops\": %.3f, "
               "\"protected_gflops\": %.3f, \"overhead_percent\": %.3f, "
               "\"panel_flip_corrected\": %s, "
               "\"panel_checksum_ms\": %.3f},\n",
               tunedGf, protectedGf, abftOverheadPct,
               flipCorrected ? "true" : "false", checksumSeconds * 1e3);
  auto curve = [&](const char* name, const std::vector<RateSample>& samples,
                   bool last) {
    std::fprintf(f, "  \"%s\": [", name);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      std::fprintf(f, "%s{\"size\": %.0f, \"gflops\": %.3f}",
                   i == 0 ? "" : ", ", samples[i].size,
                   samples[i].rate / 1e9);
    }
    std::fprintf(f, "]%s\n", last ? "" : ",");
  };
  curve("gemm_curve", curves.gemm, false);
  curve("getrf_curve", curves.getrf, false);
  curve("trsm_curve", curves.trsm, true);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s and %s\n", outPath.c_str(), tunePath.c_str());
  return 0;
}
