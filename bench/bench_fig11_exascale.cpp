// Fig. 11: the exascale achievement runs — Summit 1.411 EFLOPS
// (B=768, Pr=Pc=162, Bcast, 3x2 grid) and Frontier 2.387 EFLOPS on ~40% of
// the system (B=3072, Pr=Pc=172, Ring2M) — plus the full-Frontier ~5 EFLOPS
// projection (Sec. VIII) and the HPL-AI vs HPL comparison (9.5x, abstract).
#include "bench_util.h"

using namespace hplmxp;

int main() {
  bench::banner("Fig. 11", "Exascale achievement runs (model)");

  Table t({"run", "N", "GCDs", "B", "strategy", "time (s)", "EFLOPS",
           "GF/GCD", "paper EFLOPS"});

  {
    const ScaleSimConfig cfg = bench::summitAchievementConfig();
    const ScaleSimResult r = simulateRun(cfg);
    t.addRow({"Summit 162x162", Table::num((long long)r.n),
              Table::num((long long)r.ranks), "768", "bcast+3x2",
              Table::num(r.totalSeconds, 0), Table::num(r.exaflops, 3),
              Table::num(r.ratePerGcd / 1e9, 0), "1.411"});
  }
  {
    const ScaleSimConfig cfg = bench::frontierAchievementConfig();
    const ScaleSimResult r = simulateRun(cfg);
    t.addRow({"Frontier 172x172 (~40%)", Table::num((long long)r.n),
              Table::num((long long)r.ranks), "3072", "ring2m+4x2",
              Table::num(r.totalSeconds, 0), Table::num(r.exaflops, 3),
              Table::num(r.ratePerGcd / 1e9, 0), "2.387"});
  }
  {
    ScaleSimConfig cfg = bench::frontierAchievementConfig();
    cfg.pr = cfg.pc = 272;  // ~full system (73984 of 75264 GCDs)
    const ScaleSimResult r = simulateRun(cfg);
    t.addRow({"Frontier 272x272 (full, proj.)", Table::num((long long)r.n),
              Table::num((long long)r.ranks), "3072", "ring2m+4x2",
              Table::num(r.totalSeconds, 0), Table::num(r.exaflops, 3),
              Table::num(r.ratePerGcd / 1e9, 0), "~5 (predicted)"});
  }
  t.print();

  std::printf("\nNote on problem sizes: Frontier solves N = 20.6M vs ~10M "
              "on Summit — the 4x GCD memory at work. (The paper prints "
              "Summit's N as 1368570, a typo; N_L=61440 x 162 = 9.95M is "
              "the size consistent with V100 memory.)\n");

  bench::banner("Abstract", "HPL-AI vs HPL on Summit (mixed vs FP64)");
  {
    const ScaleSimResult mxp = simulateRun(bench::summitAchievementConfig());
    ScaleSimConfig hplCfg = bench::summitAchievementConfig();
    hplCfg.fp64 = true;
    const ScaleSimResult hpl = simulateRun(hplCfg);
    Table c({"benchmark", "precision", "PFLOPS (system-scaled)", "GF/GCD"});
    c.addRow({"HPL-AI", "FP16/FP32 + FP64 IR",
              Table::num(mxp.exaflops * 1000.0, 0),
              Table::num(mxp.ratePerGcd / 1e9, 0)});
    c.addRow({"HPL", "FP64 + partial pivoting",
              Table::num(hpl.exaflops * 1000.0, 0),
              Table::num(hpl.ratePerGcd / 1e9, 0)});
    c.print();
    std::printf("HPL-AI / HPL speedup: %.1fx (paper: 9.5x; Summit HPL was "
                "148.6 PFLOPS)\n",
                mxp.ratePerGcd / hpl.ratePerGcd);
  }

  bench::banner("Sec. VI-B", "Slow-node exclusion effect on the pipeline");
  {
    // One degraded die in the fleet paces the whole run; scanning it out
    // recovers the loss (the reason for the mini-benchmark scan).
    ScaleSimConfig cfg = bench::frontierAchievementConfig();
    cfg.slowestGcdMultiplier = 1.0;
    const double clean = simulateRun(cfg).exaflops;
    cfg.slowestGcdMultiplier = 0.75;
    const double stalled = simulateRun(cfg).exaflops;
    cfg.slowestGcdMultiplier = 0.95;  // post-scan: healthy spread only
    const double scanned = simulateRun(cfg).exaflops;
    Table s({"fleet", "EFLOPS"});
    s.addRow({"ideal (no variability)", Table::num(clean, 3)});
    s.addRow({"one 25%-degraded GCD kept", Table::num(stalled, 3)});
    s.addRow({"degraded GCDs excluded (5% spread)", Table::num(scanned, 3)});
    s.print();
  }
  return 0;
}
