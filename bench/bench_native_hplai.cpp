// Native end-to-end benchmark: runs the REAL distributed mixed-precision
// benchmark (Algorithm 1 on the simmpi runtime with the software-FP16 CPU
// kernels) on this host at several grid/block configurations, reporting
// the HPL-AI metrics: effective GFLOP/s, IR iterations, scaled residual.
//
// These numbers measure this machine's CPU, not a GPU — the point is that
// the full algorithm executes and validates; the at-scale performance
// reproduction lives in the model benches.
#include <vector>

#include "bench_util.h"
#include "core/hpl64.h"
#include "core/hpl_dist.h"
#include "core/hplai.h"
#include "simmpi/runtime.h"
#include "util/timer.h"

using namespace hplmxp;

int main() {
  bench::banner("Native", "Functional distributed HPL-AI runs (this host)");

  Table t({"N", "B", "grid", "bcast", "lookahead", "time (s)", "GFLOP/s",
           "IR iters", "residual/threshold", "valid"});

  struct Case {
    index_t n, b, pr, pc;
    simmpi::BcastStrategy s;
    bool lookahead;
  };
  const std::vector<Case> cases = {
      {256, 32, 1, 1, simmpi::BcastStrategy::kBcast, true},
      {256, 32, 2, 2, simmpi::BcastStrategy::kBcast, true},
      {256, 32, 2, 2, simmpi::BcastStrategy::kRing2M, true},
      {384, 32, 3, 2, simmpi::BcastStrategy::kRing1M, true},
      {256, 32, 2, 2, simmpi::BcastStrategy::kBcast, false},
      {512, 64, 2, 2, simmpi::BcastStrategy::kRing2M, true},
  };

  for (const Case& c : cases) {
    HplaiConfig cfg;
    cfg.n = c.n;
    cfg.b = c.b;
    cfg.pr = c.pr;
    cfg.pc = c.pc;
    cfg.panelBcast = c.s;
    cfg.lookahead = c.lookahead;
    const HplaiResult r = runHplai(cfg);
    t.addRow({Table::num((long long)c.n), Table::num((long long)c.b),
              Table::num((long long)c.pr) + "x" + Table::num((long long)c.pc),
              simmpi::toString(c.s), c.lookahead ? "on" : "off",
              Table::num(r.totalSeconds, 3), Table::num(r.gflopsTotal(), 2),
              Table::num((long long)r.irIterations),
              Table::num(r.scaledResidual(), 4),
              r.converged ? "yes" : "NO"});
  }
  t.print();

  bench::banner("Native", "FP64 HPL baselines on this host");
  {
    Table h({"variant", "N", "grid", "row swaps", "time (s)", "GFLOP/s",
             "scaled residual", "passes"});
    {
      ProblemGenerator gen(7, 384);
      std::vector<double> x;
      const Hpl64Result r = runHpl64(gen, x);
      h.addRow({"serial dgetrf", "384", "1x1", "-",
                Table::num(r.factorSeconds + r.solveSeconds, 3),
                Table::num(r.gflops(), 2), Table::num(r.scaledResidual, 4),
                r.passed() ? "yes" : "NO"});
    }
    for (double shift : {-1.0, 0.0}) {
      HplDistConfig cfg;
      cfg.n = 384;
      cfg.b = 32;
      cfg.pr = 2;
      cfg.pc = 2;
      cfg.diagShift = shift;
      const HplDistResult r = runHplDist(cfg);
      h.addRow({shift == 0.0 ? "distributed (random A)"
                             : "distributed (benchmark A)",
                "384", "2x2", Table::num((long long)r.rowSwaps),
                Table::num(r.factorSeconds + r.solveSeconds, 3),
                Table::num(r.gflops(), 2), Table::num(r.scaledResidual, 4),
                r.passed() ? "yes" : "NO"});
    }
    h.print();
  }

  bench::banner("Native", "Broadcast strategies on the in-process runtime");
  {
    // Wall time of an 8 MiB panel broadcast across 8 ranks per strategy.
    // On shared memory this measures copy counts and pipelining overhead,
    // not NICs — the at-scale comparison lives in bench_fig8.
    Table bt({"strategy", "ms per 8 MiB bcast (8 ranks)"});
    const index_t count = 1 << 20;  // doubles
    for (simmpi::BcastStrategy s : simmpi::kAllBcastStrategies) {
      double seconds = 0.0;
      simmpi::run(8, [&](simmpi::Comm& comm) {
        std::vector<double> buf(static_cast<std::size_t>(count),
                                comm.rank() == 0 ? 1.0 : 0.0);
        comm.barrier();
        Timer timer;
        for (int rep = 0; rep < 4; ++rep) {
          simmpi::broadcast(comm, s, 0, buf.data(), count);
        }
        comm.barrier();
        if (comm.rank() == 0) {
          seconds = timer.seconds() / 4.0;
        }
      });
      bt.addRow({simmpi::toString(s), Table::num(seconds * 1e3, 2)});
    }
    bt.print();
  }
  return 0;
}
