// Fig. 8: per-GCD performance of the communication strategies (Bcast,
// IBcast, Ring1, Ring1M, Ring2M) crossed with node-local grids, plus the
// port-binding (Summit) and GPU-aware-MPI (Frontier) ablations.
// Summit: 2916 GCDs; Frontier: 1024 GCDs — the paper's Fig. 8 scales.
#include <vector>

#include "bench_util.h"
#include "netsim/pipeline.h"

using namespace hplmxp;
using simmpi::BcastStrategy;

namespace {

struct GridChoice {
  std::string label;
  GridOrder order;
  index_t qr, qc;
};

void strategyByGrid(const char* name, const ScaleSimConfig& base,
                    const std::vector<GridChoice>& grids) {
  std::vector<std::string> header{"strategy"};
  for (const auto& g : grids) {
    header.push_back(g.label + " (GF/GCD)");
  }
  Table t(header);
  double best = 0.0, worst = 1e30;
  for (BcastStrategy s : simmpi::kAllBcastStrategies) {
    std::vector<std::string> row{simmpi::toString(s)};
    for (const auto& g : grids) {
      ScaleSimConfig cfg = base;
      cfg.strategy = s;
      cfg.gridOrder = g.order;
      cfg.qr = g.qr;
      cfg.qc = g.qc;
      const double rate = simulateRun(cfg).ratePerGcd;
      best = std::max(best, rate);
      worst = std::min(worst, rate);
      row.push_back(Table::num(rate / 1e9, 0));
    }
    t.addRow(row);
  }
  std::printf("\n%s\n", name);
  t.print();
  std::printf("best-over-worst improvement: %.0f%% (paper: Summit 603%%, "
              "Frontier 94.6%%)\n",
              (best / worst - 1.0) * 100.0);
}

}  // namespace

int main() {
  bench::banner("Fig. 8", "Communication strategy x node-local grid (model)");

  strategyByGrid(
      "Summit, 2916 GCDs, B=768 (paper best: Bcast + 3x2 grid)",
      bench::summitEvalConfig(),
      {{"3x2", GridOrder::kNodeLocal, 3, 2},
       {"2x3", GridOrder::kNodeLocal, 2, 3},
       {"6x1", GridOrder::kNodeLocal, 6, 1},
       {"col-major", GridOrder::kColumnMajor, 0, 0}});

  strategyByGrid(
      "Frontier, 1024 GCDs, B=3072 (paper best: Ring2M + 4x2 grid)",
      bench::frontierEvalConfig(),
      {{"4x2", GridOrder::kNodeLocal, 4, 2},
       {"2x4", GridOrder::kNodeLocal, 2, 4},
       {"8x1", GridOrder::kNodeLocal, 8, 1},
       {"col-major", GridOrder::kColumnMajor, 0, 0}});

  bench::banner("Findings 5 & 7", "Port binding / GPU-aware MPI ablations");
  {
    Table t({"Machine", "knob", "on (GF/GCD)", "off (GF/GCD)", "gain",
             "paper range"});
    {
      ScaleSimConfig s = bench::summitEvalConfig();
      const double on = simulateRun(s).ratePerGcd;
      s.portBinding = false;
      const double off = simulateRun(s).ratePerGcd;
      t.addRow({"Summit", "port binding", Table::num(on / 1e9, 0),
                Table::num(off / 1e9, 0),
                Table::num((on / off - 1.0) * 100.0, 1) + "%",
                "35.6-59.7%"});
    }
    {
      ScaleSimConfig f = bench::frontierEvalConfig();
      const double on = simulateRun(f).ratePerGcd;
      f.gpuAwareMpi = false;
      const double off = simulateRun(f).ratePerGcd;
      t.addRow({"Frontier", "GPU-aware MPI", Table::num(on / 1e9, 0),
                Table::num(off / 1e9, 0),
                Table::num((on / off - 1.0) * 100.0, 1) + "%",
                "40.3-56.6%"});
    }
    t.print();
  }

  bench::banner("Finding 6 (derivation)",
                "Alpha-beta pipeline timing of the broadcast algorithms");
  {
    // First-principles derivation of WHY rings win on Frontier: against an
    // UNPIPELINED library broadcast, a segmented ring approaches a single
    // message transfer time; a library tree that pipelines internally
    // (Summit's Spectrum MPI) concedes nothing.
    const LinkModel link{.alpha = 4e-6, .betaPerByte = 1.0 / 25e9};
    Table t({"panel (MB)", "unpipelined tree (ms)", "pipelined tree (ms)",
             "ring1 (ms)", "ring1m (ms)", "ring2m (ms)",
             "crit.path ring1 (ms)", "crit.path ring1m (ms)"});
    const index_t p = 172;
    for (double mb : {1.0, 10.0, 50.0, 200.0}) {
      const double bytes = mb * 1e6;
      const index_t segs = optimalSegments(link, bytes, p - 1);
      t.addRow(
          {Table::num(mb, 0),
           Table::num(treeBcastTime(link, bytes, p) * 1e3, 2),
           Table::num(pipelinedTreeBcastTime(link, bytes, p, segs) * 1e3, 2),
           Table::num(strategyPipelineTime(
                          link, simmpi::BcastStrategy::kRing1, bytes, p) *
                          1e3,
                      2),
           Table::num(strategyPipelineTime(
                          link, simmpi::BcastStrategy::kRing1M, bytes, p) *
                          1e3,
                      2),
           Table::num(strategyPipelineTime(
                          link, simmpi::BcastStrategy::kRing2M, bytes, p) *
                          1e3,
                      2),
           Table::num(criticalPathTime(link, simmpi::BcastStrategy::kRing1,
                                       bytes, p) *
                          1e3,
                      2),
           Table::num(criticalPathTime(link, simmpi::BcastStrategy::kRing1M,
                                       bytes, p) *
                          1e3,
                      2)});
    }
    t.print();
    std::printf(
        "rings ~ one transfer time vs log2(P) transfers for the unpipelined "
        "tree;\nthe modified rings also hand the next diagonal owner its "
        "panel in a single\ndedicated send (the critical-path column).\n");
  }

  bench::banner("Finding 6", "Ring vs library broadcast per machine");
  {
    Table t({"Machine", "Ring2M/Bcast rate ratio", "paper"});
    {
      ScaleSimConfig s = bench::summitEvalConfig();
      s.strategy = BcastStrategy::kRing2M;
      const double ring = simulateRun(s).ratePerGcd;
      s.strategy = BcastStrategy::kBcast;
      const double tree = simulateRun(s).ratePerGcd;
      t.addRow({"Summit", Table::num(ring / tree, 3),
                "0.885-0.977 (rings lose)"});
    }
    {
      ScaleSimConfig f = bench::frontierEvalConfig();
      f.strategy = BcastStrategy::kRing2M;
      const double ring = simulateRun(f).ratePerGcd;
      f.strategy = BcastStrategy::kBcast;
      const double tree = simulateRun(f).ratePerGcd;
      t.addRow({"Frontier", Table::num(ring / tree, 3),
                "1.20-1.344 (rings win)"});
    }
    t.print();
  }
  return 0;
}
