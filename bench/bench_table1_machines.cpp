// Table I: key architectural specifications for Summit and Frontier, plus
// the derived ratios the paper's narrative quotes.
#include "bench_util.h"
#include "machine/machine.h"

using namespace hplmxp;

int main() {
  bench::banner("Table I", "Key architectural specifications");

  const MachineSpec& s = summitSpec();
  const MachineSpec& f = frontierSpec();

  Table t({"Spec", "Summit", "Frontier"});
  t.addRow({"Number of Nodes", Table::num((long long)s.nodes),
            Table::num((long long)f.nodes)});
  t.addRow({"Processor", s.processor, f.processor});
  t.addRow({"CPU memory (Node, GiB)", Table::num(s.cpuMemGiBPerNode, 0),
            Table::num(f.cpuMemGiBPerNode, 0)});
  t.addRow({"GPU model", s.gpuModel, f.gpuModel});
  t.addRow({"# of GCDs (Node)", Table::num((long long)s.gcdsPerNode),
            Table::num((long long)f.gcdsPerNode)});
  t.addRow({"GPU memory per GCD (GiB)", Table::num(s.gpuMemGiBPerGcd, 0),
            Table::num(f.gpuMemGiBPerGcd, 0)});
  t.addRow({"GPU memory per Node (GiB)", Table::num(s.gpuMemGiBPerNode, 0),
            Table::num(f.gpuMemGiBPerNode, 0)});
  t.addRow({"GPU Interconnect", s.gpuInterconnect, f.gpuInterconnect});
  t.addRow({"GPU link B/W (GB/s each way)",
            Table::num(s.gpuLinkGBsEachWay, 0),
            Table::num(f.gpuLinkGBsEachWay, 0)});
  t.addRow({"FP16 TFLOPS (GCD)", Table::num(s.fp16TflopsPerGcd, 1),
            Table::num(f.fp16TflopsPerGcd, 1)});
  t.addRow({"FP64 TFLOPS (GCD)", Table::num(s.fp64TflopsPerGcd, 2),
            Table::num(f.fp64TflopsPerGcd, 2)});
  t.addRow({"FP16 TFLOPS (Node)", Table::num(s.fp16TflopsPerNode, 0),
            Table::num(f.fp16TflopsPerNode, 0)});
  t.addRow({"# of NICs", Table::num((long long)s.nicsPerNode),
            Table::num((long long)f.nicsPerNode)});
  t.addRow({"NIC model", s.nicModel, f.nicModel});
  t.addRow({"NIC B/W (node, GB/s each way)",
            Table::num(s.nicGBsPerNodeEachWay, 1),
            Table::num(f.nicGBsPerNodeEachWay, 1)});
  t.addRow({"NIC attached to GPU", s.nicAttachedToGpu ? "yes" : "no",
            f.nicAttachedToGpu ? "yes" : "no"});
  t.print();

  bench::banner("Table I (derived)", "Ratios quoted in the paper text");
  Table d({"Quantity", "Value", "Paper says"});
  d.addRow({"Frontier/Summit FP16 per node",
            Table::num(f.fp16TflopsPerNode / s.fp16TflopsPerNode, 2),
            "1.58x"});
  d.addRow({"Frontier/Summit node count",
            Table::num((double)f.nodes / (double)s.nodes, 2), "2x+"});
  d.addRow({"Frontier/Summit GPU mem per GCD",
            Table::num(f.gpuMemGiBPerGcd / s.gpuMemGiBPerGcd, 1), "4x"});
  d.addRow({"Frontier/Summit system FP64",
            Table::num(f.systemPeakFp64Pflops() / s.systemPeakFp64Pflops(),
                       1),
            "~8x"});
  d.addRow({"Summit total GCDs", Table::num((long long)s.totalGcds()),
            "27648"});
  d.addRow({"Frontier total GCDs", Table::num((long long)f.totalGcds()),
            "75264"});
  d.print();
  return 0;
}
