// Recovery-cost benchmark: what incremental delta checkpoints cost — and
// save — against the full-copy-every-time baseline PR-5 shipped.
//
// One clean run with recovery off sets the wall-clock baseline, then an
// every-k sweep with recovery on measures, per cadence:
//   - checkpoint bytes raw (the dirty-tile XOR deltas before encoding),
//   - checkpoint bytes stored (after varint/RLE compression + CRC framing),
//   - the full-copy bytes the old scheme would have written for the same
//     number of checkpoints, and the resulting reduction factor,
//   - wall-clock overhead vs. the recovery-off baseline.
// A final run at the default cadence with recovery.compress off isolates
// the codec's contribution from the dirty-tracking's.
//
// Writes BENCH_recovery.json with the sweep and the headline
// reduction_vs_full_copy at the default cadence (the >= 4x target CI
// tracks).
//
// Usage: bench_recovery [n] [out.json]
//   n    problem size, multiple of 32 (default 512; smoke runs use 256)
//   out  JSON results path (default BENCH_recovery.json)
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/hplai.h"
#include "simmpi/recovery.h"
#include "util/table.h"
#include "util/timer.h"

namespace hplmxp {
namespace {

constexpr index_t kBlock = 16;
constexpr index_t kDefaultEveryK = 8;

struct SweepPoint {
  index_t everyK = 0;
  simmpi::RecoveryReport report;
  double seconds = 0.0;
  std::uint64_t fullCopyBytes = 0;  // checkpoints x per-rank local matrix
  double compressionRatio = 0.0;    // raw delta / stored
  double reductionVsFullCopy = 0.0; // full copy / stored, whole run
  // The acceptance metric: same ratio over steady-state checkpoints only
  // (second half of the factorization, past the warm-up generations whose
  // dirty region still spans most of the matrix).
  double steadyReduction = 0.0;
  double overheadPct = 0.0;
};

HplaiConfig baseConfig(index_t n) {
  HplaiConfig cfg;
  cfg.n = n;
  cfg.b = kBlock;
  cfg.pr = 2;
  cfg.pc = 2;
  cfg.seed = 20220521;  // the paper's SC'22 vintage
  cfg.lookahead = false;  // recovery requires deterministic step replay
  cfg.scheduler = HplaiConfig::Scheduler::kBulk;
  return cfg;
}

/// One recovery-on run (no faults): stats + wall seconds.
SweepPoint measure(index_t n, index_t everyK, bool compress,
                   double baselineSeconds) {
  HplaiConfig cfg = baseConfig(n);
  cfg.recovery.enabled = true;
  cfg.recovery.checkpointEveryK = everyK;
  cfg.recovery.compressCheckpoints = compress;
  cfg.recoveryStats = std::make_shared<simmpi::RecoveryStats>();
  Timer clock;
  const HplaiResult r = runHplai(cfg);
  SweepPoint p;
  p.everyK = everyK;
  p.seconds = clock.seconds();
  if (!r.converged) {
    std::fprintf(stderr, "bench_recovery: every-k %lld run did not converge\n",
                 static_cast<long long>(everyK));
    std::exit(1);
  }
  p.report = simmpi::snapshotRecovery(*cfg.recoveryStats);
  const std::uint64_t localBytes =
      static_cast<std::uint64_t>(n / cfg.pr) *
      static_cast<std::uint64_t>(n / cfg.pc) * sizeof(float);
  p.fullCopyBytes = p.report.checkpoints * localBytes;
  p.compressionRatio =
      p.report.checkpointBytesStored > 0
          ? static_cast<double>(p.report.checkpointBytesCopied) /
                static_cast<double>(p.report.checkpointBytesStored)
          : 0.0;
  p.reductionVsFullCopy =
      p.report.checkpointBytesStored > 0
          ? static_cast<double>(p.fullCopyBytes) /
                static_cast<double>(p.report.checkpointBytesStored)
          : 0.0;
  p.steadyReduction =
      p.report.steadyBytesStored > 0
          ? static_cast<double>(p.report.steadyCheckpoints * localBytes) /
                static_cast<double>(p.report.steadyBytesStored)
          : 0.0;
  p.overheadPct = baselineSeconds > 0.0
                      ? 100.0 * (p.seconds - baselineSeconds) / baselineSeconds
                      : 0.0;
  return p;
}

void writeJson(const std::string& path, index_t n, double baselineSeconds,
               const std::vector<SweepPoint>& sweep,
               const SweepPoint& compressOff) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_recovery: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  double defaultReduction = 0.0;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"recovery\",\n");
  std::fprintf(f, "  \"n\": %lld,\n", static_cast<long long>(n));
  std::fprintf(f, "  \"b\": %lld,\n", static_cast<long long>(kBlock));
  std::fprintf(f, "  \"grid\": \"2x2\",\n");
  std::fprintf(f, "  \"default_every_k\": %lld,\n",
               static_cast<long long>(kDefaultEveryK));
  std::fprintf(f, "  \"baseline_seconds\": %.6f,\n", baselineSeconds);
  std::fprintf(f, "  \"sweep\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    if (p.everyK == kDefaultEveryK) {
      defaultReduction = p.steadyReduction;
    }
    std::fprintf(f,
                 "    {\"every_k\": %lld, \"checkpoints\": %llu, "
                 "\"raw_delta_bytes\": %llu, \"stored_bytes\": %llu, "
                 "\"full_copy_bytes\": %llu, \"compression_ratio\": %.3f, "
                 "\"reduction_vs_full_copy\": %.3f, "
                 "\"steady_state_checkpoints\": %llu, "
                 "\"steady_state_stored_bytes\": %llu, "
                 "\"steady_state_reduction\": %.3f, \"seconds\": %.6f, "
                 "\"overhead_pct\": %.2f}%s\n",
                 static_cast<long long>(p.everyK),
                 static_cast<unsigned long long>(p.report.checkpoints),
                 static_cast<unsigned long long>(p.report.checkpointBytesCopied),
                 static_cast<unsigned long long>(p.report.checkpointBytesStored),
                 static_cast<unsigned long long>(p.fullCopyBytes),
                 p.compressionRatio, p.reductionVsFullCopy,
                 static_cast<unsigned long long>(p.report.steadyCheckpoints),
                 static_cast<unsigned long long>(p.report.steadyBytesStored),
                 p.steadyReduction, p.seconds,
                 p.overheadPct, i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"compress_off_stored_bytes\": %llu,\n",
               static_cast<unsigned long long>(
                   compressOff.report.checkpointBytesStored));
  std::fprintf(f, "  \"steady_state_definition\": "
               "\"checkpoints in the second half of the factorization\",\n");
  std::fprintf(f, "  \"default_steady_state_reduction\": %.3f,\n",
               defaultReduction);
  std::fprintf(f, "  \"meets_4x_target\": %s\n",
               defaultReduction >= 4.0 ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

int run(index_t n, const std::string& outPath) {
  bench::banner("BENCH recovery",
                "incremental checkpoint bytes and overhead vs. cadence");
  std::printf("N=%lld B=%lld grid=2x2 (default every-k %lld)\n\n",
              static_cast<long long>(n), static_cast<long long>(kBlock),
              static_cast<long long>(kDefaultEveryK));

  Timer clock;
  const HplaiResult base = runHplai(baseConfig(n));
  const double baselineSeconds = clock.seconds();
  if (!base.converged) {
    std::fprintf(stderr, "bench_recovery: baseline did not converge\n");
    return 1;
  }
  std::printf("baseline (recovery off): %.3f s\n\n", baselineSeconds);

  std::vector<SweepPoint> sweep;
  for (index_t everyK : {1, 2, 4, 8}) {
    sweep.push_back(measure(n, everyK, /*compress=*/true, baselineSeconds));
  }
  const SweepPoint compressOff =
      measure(n, kDefaultEveryK, /*compress=*/false, baselineSeconds);

  Table table({"every-k", "ckpts", "raw delta MB", "stored MB",
               "full-copy MB", "codec x", "vs full-copy x", "steady x",
               "overhead %"});
  for (const SweepPoint& p : sweep) {
    table.addRow({Table::num(static_cast<long long>(p.everyK)),
                  Table::num(static_cast<long long>(p.report.checkpoints)),
                  Table::num(p.report.checkpointBytesCopied / 1048576.0, 3),
                  Table::num(p.report.checkpointBytesStored / 1048576.0, 3),
                  Table::num(p.fullCopyBytes / 1048576.0, 3),
                  Table::num(p.compressionRatio, 2),
                  Table::num(p.reductionVsFullCopy, 2),
                  Table::num(p.steadyReduction, 2),
                  Table::num(p.overheadPct, 1)});
  }
  table.print();
  std::printf("\ncompress off at every-k %lld: stored %.3f MB (vs %.3f MB "
              "compressed)\n",
              static_cast<long long>(kDefaultEveryK),
              compressOff.report.checkpointBytesStored / 1048576.0,
              sweep.back().report.checkpointBytesStored / 1048576.0);

  const double headline = sweep.back().steadyReduction;
  std::printf("headline: %.2fx fewer steady-state checkpoint bytes than "
              "full-copy at default cadence (target >= 4x): %s\n",
              headline, headline >= 4.0 ? "PASS" : "MISS");
  writeJson(outPath, n, baselineSeconds, sweep, compressOff);
  std::printf("wrote %s\n", outPath.c_str());
  return 0;
}

}  // namespace
}  // namespace hplmxp

int main(int argc, char** argv) {
  const long long n = argc > 1 ? std::atoll(argv[1]) : 512;
  const std::string out = argc > 2 ? argv[2] : "BENCH_recovery.json";
  if (n < 64 || n % 32 != 0) {
    std::fprintf(stderr, "bench_recovery: n must be a multiple of 32, >= 64\n");
    return 1;
  }
  return hplmxp::run(static_cast<hplmxp::index_t>(n), out);
}
