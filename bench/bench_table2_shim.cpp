// Table II: cross-platform BLAS library dispatch, plus a live
// demonstration of the API quirk (cuSOLVER's two-step GETRF protocol) that
// motivated the paper's shim layer.
#include <vector>

#include "bench_util.h"
#include "device/shim.h"
#include "gen/matgen.h"

using namespace hplmxp;

int main() {
  bench::banner("Table II", "Cross-platform BLAS library functions");

  const BlasShim nv(Vendor::kNvidia);
  const BlasShim amd(Vendor::kAmd);
  Table t({"BLAS Mapping", "Summit", "Frontier"});
  t.addRow({"GEMM", nv.routineNames().gemm, amd.routineNames().gemm});
  t.addRow({"TRSM", nv.routineNames().trsm, amd.routineNames().trsm});
  t.addRow({"GETRF", nv.routineNames().getrf, amd.routineNames().getrf});
  t.addRow({"TRSV", nv.routineNames().trsv, amd.routineNames().trsv});
  t.print();

  bench::banner("Table II (live)", "GETRF protocol difference across vendors");
  const index_t n = 256;
  ProblemGenerator gen(1, n);
  std::vector<float> a(static_cast<std::size_t>(n * n));

  Table p({"Vendor", "bufferSize call", "getrf result"});
  {
    BlasShim shim(Vendor::kNvidia);
    gen.fillTile<float>(0, 0, n, n, a.data(), n);
    bool threw = false;
    try {
      shim.getrf(n, a.data(), n);
    } catch (const CheckError&) {
      threw = true;
    }
    p.addRow({"NVIDIA", "omitted", threw ? "rejected (workspace protocol)"
                                         : "accepted"});
    (void)shim.getrfBufferSize(n, n);
    shim.getrf(n, a.data(), n);
    p.addRow({"NVIDIA", "cusolverDnSgetrf_bufferSize first", "accepted"});
  }
  {
    BlasShim shim(Vendor::kAmd);
    gen.fillTile<float>(0, 0, n, n, a.data(), n);
    shim.getrf(n, a.data(), n);
    p.addRow({"AMD", "not required (single call)", "accepted"});
  }
  p.print();
  std::printf("\nBoth vendor paths dispatch to the same kernels in this "
              "substrate and produce identical factors (see test_device).\n");
  return 0;
}
