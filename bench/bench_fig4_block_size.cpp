// Fig. 4: total performance (GFLOPS/GCD) versus block size B in a
// distributed setting — Summit with 2916 GCDs (Pr = 54) and Frontier with
// 1024 GCDs (Pr = 32) — under distinct communication layouts.
// Reproduces the selections B = 768/1024 (Summit) and B = 3072 (Frontier).
#include <vector>

#include "bench_util.h"
#include "perfmodel/param_search.h"

using namespace hplmxp;

namespace {

void sweep(const char* name, ScaleSimConfig base,
           const std::vector<std::pair<std::string, ScaleSimConfig>>& comms) {
  std::vector<std::string> header{"B"};
  for (const auto& [label, cfg] : comms) {
    (void)cfg;
    header.push_back(label + " (GF/GCD)");
  }
  Table t(header);

  index_t bestB = 0;
  double best = 0.0;
  for (index_t b : {256, 512, 768, 1024, 1536, 2048, 3072, 4096}) {
    if ((base.nl * base.pr) % b != 0) {
      continue;
    }
    std::vector<std::string> row{Table::num((long long)b)};
    for (const auto& [label, comm] : comms) {
      (void)label;
      ScaleSimConfig cfg = comm;
      cfg.b = b;
      const double rate = simulateRun(cfg).ratePerGcd;
      row.push_back(Table::num(rate / 1e9, 0));
      if (rate > best) {
        best = rate;
        bestB = b;
      }
    }
    t.addRow(row);
  }
  std::printf("\n%s\n", name);
  t.print();
  std::printf("best B overall: %lld\n", (long long)bestB);
}

}  // namespace

int main() {
  bench::banner("Fig. 4",
                "GFLOPS/GCD vs block size B, distributed (model)");

  {
    ScaleSimConfig s = bench::summitEvalConfig();
    ScaleSimConfig sCol = s;
    sCol.gridOrder = GridOrder::kColumnMajor;
    ScaleSimConfig sRing = s;
    sRing.strategy = simmpi::BcastStrategy::kRing2M;
    sweep("Summit, 2916 GCDs (Pr=54), N_L=61440", s,
          {{"Bcast 3x2", s}, {"Bcast col-major", sCol}, {"Ring2M 3x2",
                                                         sRing}});
  }
  {
    ScaleSimConfig f = bench::frontierEvalConfig();
    ScaleSimConfig fCol = f;
    fCol.gridOrder = GridOrder::kColumnMajor;
    ScaleSimConfig fBcast = f;
    fBcast.strategy = simmpi::BcastStrategy::kBcast;
    sweep("Frontier, 1024 GCDs (Pr=32), N_L=119808", f,
          {{"Ring2M 4x2", f}, {"Ring2M col-major", fCol}, {"Bcast 4x2",
                                                           fBcast}});
  }

  bench::banner("Fig. 4 (analytic)",
                "Paper B-selection heuristic over the Eq. 3 model");
  for (MachineKind kind : {MachineKind::kSummit, MachineKind::kFrontier}) {
    const KernelModel m(kind);
    const bool summit = kind == MachineKind::kSummit;
    ModelInput in{.n = summit ? 61440 * 54 : index_t{119808} * 32,
                  .b = 0,
                  .pr = summit ? 54 : 32,
                  .pc = summit ? 54 : 32,
                  .nbb = summit ? 4e9 : 8e9};
    const BSearchResult r = searchBlockSize(m, in);
    Table t({"B", "Eq.3 rate (GF/GCD)", "GETRF/GEMM", "admissible"});
    for (const BSearchEntry& e : r.entries) {
      t.addRow({Table::num((long long)e.b),
                Table::num(e.ratePerGcd / 1e9, 0),
                Table::num(e.getrfOverGemm * 100.0, 1) + "%",
                e.admissible ? "yes" : "no"});
    }
    std::printf("\n%s (paper selects %s)\n", toString(kind).c_str(),
                summit ? "768 or 1024" : "3072");
    t.print();
    std::printf("selected B (smallest admissible): %lld\n",
                (long long)r.bestB);
  }
  return 0;
}
