// Extension: strong scaling study. The paper analyzed Summit strong
// scaling ("communication bound when performed at scale") but omitted the
// chart for space; this bench provides it from the same model: fixed
// global N, growing GCD counts.
#include "bench_util.h"

using namespace hplmxp;

namespace {

void strongScaling(const char* name, MachineKind kind, index_t n, index_t b,
                   simmpi::BcastStrategy strategy, index_t qr, index_t qc,
                   const std::vector<index_t>& prs) {
  Table t({"GCDs", "N_L", "time (s)", "GF/GCD", "speedup", "par.eff",
           "comm-bound iters"});
  double baseTime = 0.0;
  index_t basePr = 0;
  for (index_t pr : prs) {
    if (n % pr != 0 || (n / pr) % b != 0) {
      continue;
    }
    ScaleSimConfig cfg{.machine = kind,
                       .nl = n / pr,
                       .b = b,
                       .pr = pr,
                       .pc = pr,
                       .gridOrder = GridOrder::kNodeLocal,
                       .qr = qr,
                       .qc = qc,
                       .strategy = strategy};
    const ScaleSimResult r = simulateRun(cfg);
    if (basePr == 0) {
      basePr = pr;
      baseTime = r.totalSeconds;
    }
    const double speedup = baseTime / r.totalSeconds;
    const double ideal =
        static_cast<double>(pr * pr) / static_cast<double>(basePr * basePr);
    t.addRow({Table::num((long long)(pr * pr)),
              Table::num((long long)(n / pr)),
              Table::num(r.totalSeconds, 1),
              Table::num(r.ratePerGcd / 1e9, 0), Table::num(speedup, 2),
              Table::num(speedup / ideal * 100.0, 1) + "%",
              Table::num(r.commBoundFraction * 100.0, 1) + "%"});
  }
  std::printf("\n%s\n", name);
  t.print();
}

}  // namespace

int main() {
  bench::banner("Extension",
                "Strong scaling (fixed N, growing GCDs) — the study the "
                "paper describes but does not plot");

  strongScaling("Summit, N = 2211840, B = 768, Bcast, 3x2 grid",
                MachineKind::kSummit, 61440 * 36, 768,
                simmpi::BcastStrategy::kBcast, 3, 2,
                {36, 48, 72, 96, 144});

  strongScaling("Frontier, N = 3833856, B = 3072, Ring2M, 4x2 grid",
                MachineKind::kFrontier, 119808 * 32, 3072,
                simmpi::BcastStrategy::kRing2M, 4, 2,
                {32, 48, 64, 96, 128});

  std::printf(
      "\nAs the paper observes for Summit: strong scaling turns\n"
      "communication bound at scale — parallel efficiency falls and the\n"
      "comm-bound iteration share climbs as the per-GCD tile shrinks.\n");
  return 0;
}
