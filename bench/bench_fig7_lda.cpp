// Fig. 7: single MI250X GCD mixed-GEMM rate across GEMM sizes for
// different leading dimensions. LDA = 122880 falls into a pathological
// stride class and loses ~35%, which is why the paper selects
// N_L = 119808 over 122880 (Sec. V-D).
#include <vector>

#include "bench_util.h"
#include "perfmodel/kernel_model.h"
#include "perfmodel/param_search.h"

using namespace hplmxp;

int main() {
  bench::banner("Fig. 7", "MI250X GEMM rate vs size for different LDA");

  const KernelModel m(MachineKind::kFrontier);
  const std::vector<index_t> ldas = {116736, 119808, 122880};
  const std::vector<double> sizes = {20000, 40000, 60000, 80000, 100000,
                                     119808};

  std::vector<std::string> header{"GEMM size (m=n)"};
  for (index_t lda : ldas) {
    header.push_back("LDA=" + Table::num((long long)lda) + " (TF)");
  }
  Table t(header);
  for (double s : sizes) {
    std::vector<std::string> row{Table::num(s, 0)};
    for (index_t lda : ldas) {
      row.push_back(Table::num(m.gemmRate(s, s, 3072, lda) / 1e12, 1));
    }
    t.addRow(row);
  }
  t.print();

  bench::banner("Sec. V-D", "N_L selection fallout of the LDA pathology");
  const auto entries =
      searchLocalSize(m, 3072, 32, 32, 8e9, {116736, 119808, 122880});
  Table n({"N_L", "GEMM rate at scale (TF)", "projected GF/GCD",
           "pathological LDA"});
  for (const auto& e : entries) {
    n.addRow({Table::num((long long)e.nl),
              Table::num(e.gemmRateAtScale / 1e12, 1),
              Table::num(e.ratePerGcd / 1e9, 0),
              isPathologicalLda(e.nl) ? "yes" : "no"});
  }
  n.print();
  std::printf("\nPaper result reproduced: N_L = 119808 outperforms 122880 "
              "despite the smaller problem, because LDA = 122880 hits the "
              "rocBLAS stride pathology.\n");
  return 0;
}
