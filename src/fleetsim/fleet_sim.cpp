#include "fleetsim/fleet_sim.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "serve/json.h"

namespace hplmxp::fleetsim {

FleetSession::FleetSession(FleetSimConfig config)
    : config_(std::move(config)), topology_(config_.topology) {
  HPLMXP_REQUIRE(config_.runLu || config_.runServe,
                 "fleet session needs at least one workload");
  if (config_.runLu) {
    lu_ = std::make_unique<LuWorkload>(config_.lu, topology_);
    sim_.addWorkload(lu_.get());
  }
  if (config_.runServe) {
    serve_ = std::make_unique<ServeWorkload>(config_.serve, topology_);
    sim_.addWorkload(serve_.get());
  }
  sim_.startWorkloads();
}

FleetSimReport FleetSession::report() const {
  FleetSimReport report;
  report.topologyName = topology_.config().name;
  report.topologyKind = toString(topology_.config().kind);
  report.nodes = topology_.nodes();
  report.events = sim_.executedEvents();
  report.traceHash = sim_.traceHash();
  report.virtualSeconds = sim_.now();
  if (lu_ != nullptr) {
    report.hasLu = true;
    report.lu = lu_->stats();
  }
  if (serve_ != nullptr) {
    report.hasServe = true;
    report.serveCounters = serve_->stats();
    report.queueWait =
        serve::LatencyPercentiles::of(report.serveCounters.queueWaitSeconds);
    report.solve =
        serve::LatencyPercentiles::of(report.serveCounters.solveSeconds);
    report.total =
        serve::LatencyPercentiles::of(report.serveCounters.totalSeconds);
  }
  return report;
}

std::string FleetSimReport::toJson() const {
  std::ostringstream os;
  os.precision(6);
  os << "{\n";
  os << "  \"topology\": " << serve::jsonQuote(topologyName) << ",\n";
  os << "  \"kind\": " << serve::jsonQuote(topologyKind) << ",\n";
  os << "  \"nodes\": " << nodes << ",\n";
  os << "  \"events\": " << events << ",\n";
  os << "  \"trace_hash\": \"" << std::hex << traceHash << std::dec
     << "\",\n";
  os << "  \"virtual_seconds\": " << virtualSeconds;
  if (hasLu) {
    os << ",\n  \"lu\": {\n";
    os << "    \"iterations\": " << lu.iterations << ",\n";
    os << "    \"total_iterations\": " << lu.totalIterations << ",\n";
    os << "    \"finished\": " << (lu.finished ? "true" : "false") << ",\n";
    os << "    \"factor_seconds\": " << lu.factorSeconds << ",\n";
    os << "    \"comm_seconds\": " << lu.commSeconds << ",\n";
    os << "    \"comm_bound_iterations\": " << lu.commBoundIterations
       << "\n  }";
  }
  if (hasServe) {
    const ServeStats& s = serveCounters;
    os << ",\n  \"serve\": {\n";
    os << "    \"submitted\": " << s.submitted << ",\n";
    os << "    \"completed\": " << s.completed << ",\n";
    os << "    \"rejected_queue_full\": " << s.rejectedQueueFull << ",\n";
    os << "    \"rejected_deadline\": " << s.rejectedDeadline << ",\n";
    os << "    \"rejected_circuit_open\": " << s.rejectedCircuitOpen
       << ",\n";
    os << "    \"failed\": " << s.failed << ",\n";
    os << "    \"failovers\": " << s.failovers << ",\n";
    os << "    \"cache_lookups\": " << s.cacheLookups << ",\n";
    os << "    \"cache_hits\": " << s.cacheHits << ",\n";
    os << "    \"cache_misses\": " << s.cacheMisses << ",\n";
    os << "    \"cache_hit_rate\": " << s.hitRate() << ",\n";
    os << "    \"factor_count\": " << s.factorCount << ",\n";
    os << "    \"cache_evictions\": " << s.evictions << ",\n";
    os << "    \"batches\": " << s.batches << ",\n";
    os << "    \"mean_batch_size\": " << s.meanBatchSize() << ",\n";
    os << "    \"max_batch_size\": " << s.maxBatchSize << ",\n";
    os << "    \"peak_queue_depth\": " << s.peakQueueDepth << ",\n";
    os << "    \"breaker_trips\": " << s.breakerTrips << ",\n";
    os << "    \"heartbeats\": " << s.heartbeats << ",\n";
    os << "    \"quarantines\": " << s.quarantines << ",\n";
    os << "    \"health_detours\": " << s.healthDetours << ",\n";
    os << "    \"hedges_issued\": " << s.hedgesIssued << ",\n";
    os << "    \"hedge_wins\": " << s.hedgeWins << ",\n";
    os << "    \"hedge_wasted\": " << s.hedgeWasted << ",\n";
    os << "    \"hedge_denied\": " << s.hedgeDenied << ",\n";
    os << "    \"solve_work_seconds\": " << s.solveWorkSeconds << ",\n";
    os << "    \"queue_wait_ms\": " << queueWait.toJson() << ",\n";
    os << "    \"solve_ms\": " << solve.toJson() << ",\n";
    os << "    \"total_ms\": " << total.toJson() << "\n  }";
  }
  os << "\n}\n";
  return os.str();
}

std::string ValidationResult::toJson() const {
  std::ostringstream os;
  os.precision(6);
  os << "{\n  \"pass\": " << (pass ? "true" : "false")
     << ",\n  \"checks\": [\n";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const ValidationLine& line = lines[i];
    os << "    {\"metric\": " << serve::jsonQuote(line.metric)
       << ", \"simulated\": " << line.simulated
       << ", \"measured\": " << line.measured
       << ", \"ratio\": " << line.ratio << ", \"delta\": " << line.delta
       << ", \"pass\": " << (line.pass ? "true" : "false") << "}"
       << (i + 1 < lines.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

ValidationResult validateAgainst(const FleetSimReport& report,
                                 const std::string& benchServePath,
                                 double latencyFactorTol,
                                 double hitRateTol) {
  HPLMXP_REQUIRE(report.hasServe,
                 "validation needs a serve workload in the report");
  HPLMXP_REQUIRE(latencyFactorTol >= 1.0,
                 "latency tolerance is a factor >= 1");
  HPLMXP_REQUIRE(hitRateTol >= 0.0, "negative hit-rate tolerance");
  std::ifstream in(benchServePath);
  HPLMXP_REQUIRE(in.good(),
                 ("cannot open measured report: " + benchServePath).c_str());
  std::ostringstream text;
  text << in.rdbuf();
  const serve::JsonValue doc = serve::JsonValue::parse(text.str());
  // A --shards report nests the fleet-level ServeReport under "fleet".
  const serve::JsonValue& measured =
      doc.has("total_ms") ? doc : doc.get("fleet");

  ValidationResult result;
  result.pass = true;
  const auto latencyCheck = [&](const std::string& metric, double simMs,
                                double measuredMs) {
    ValidationLine line;
    line.metric = metric;
    line.simulated = simMs;
    line.measured = measuredMs;
    line.ratio = measuredMs > 0.0 ? simMs / measuredMs
                                  : (simMs > 0.0 ? INFINITY : 1.0);
    line.pass = line.ratio <= latencyFactorTol &&
                line.ratio >= 1.0 / latencyFactorTol;
    result.pass = result.pass && line.pass;
    result.lines.push_back(line);
  };
  const serve::JsonValue& totalMs = measured.get("total_ms");
  latencyCheck("total_p50_ms", report.total.p50Ms,
               totalMs.get("p50").asNumber());
  latencyCheck("total_p99_ms", report.total.p99Ms,
               totalMs.get("p99").asNumber());

  ValidationLine hit;
  hit.metric = "cache_hit_rate";
  hit.simulated = report.serveCounters.hitRate();
  hit.measured = measured.get("cache_hit_rate").asNumber();
  hit.delta = hit.simulated - hit.measured;
  hit.ratio = hit.measured > 0.0 ? hit.simulated / hit.measured : 1.0;
  hit.pass = std::abs(hit.delta) <= hitRateTol;
  result.pass = result.pass && hit.pass;
  result.lines.push_back(hit);
  return result;
}

}  // namespace hplmxp::fleetsim
