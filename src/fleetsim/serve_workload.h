// Serve-fleet workload: a request trace replayed against lightweight
// state machines of the sharded serving tier, entirely on virtual time.
//
// The real fleet's *policy* components are reused verbatim where they are
// already pure functions of an explicit clock — the consistent-hash
// router (serve::HashRing) and the per-shard drain gate
// (serve::CircuitBreaker). The stateful per-shard machinery (byte-budget
// LRU factor cache, batch window, bounded queue, worker lane) is
// re-modelled as plain counters and maps: the simulator needs their
// *timing and accounting* behavior, not their payloads. Accounting
// mirrors the real engine so the validation against a measured
// BENCH_serve.json compares like with like — one cache lookup per
// dispatched batch (a coalesced batch costs exactly one factorization,
// the single-flight contract), hits + misses == lookups, and the same
// latency split (queue wait / solve / total).
//
// Chaos vocabulary matches the serve CLI: crash-at/crash-shard kills a
// shard (cache and queue contents included), pending and future requests
// fail over along the ring successors; resurrect-at restores it cold.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "fleetsim/event_core.h"
#include "fleetsim/topology.h"
#include "serve/breaker.h"
#include "serve/fleet/hash_ring.h"
#include "serve/fleet/health.h"
#include "serve/metrics.h"
#include "serve/trace_io.h"

namespace hplmxp::fleetsim {

struct ChaosAction {
  enum class Kind { kCrash, kResurrect, kSlow };
  Kind kind = Kind::kCrash;
  double atMs = 0.0;
  index_t shard = 0;
  double factor = 0.5;  // kSlow only
};

struct ServeWorkloadConfig {
  serve::RequestTrace trace;
  index_t shards = 1;
  index_t virtualNodes = 64;
  index_t queueDepth = 64;
  index_t maxBatch = 8;
  double batchDelayUs = 1000.0;
  double cacheMb = 64.0;
  double defaultDeadlineMs = 0.0;  // 0 = none
  index_t failoverLimit = 2;
  serve::BreakerConfig breaker;

  /// Host-solve rate knob: effective GFLOP/s of one shard's solve lane.
  /// The default is calibrated so an n=64 b=16 smoke-trace solve costs a
  /// few hundred microseconds, the measured magnitude on the CI host.
  double hostGflops = 2.0;
  index_t irIterations = 3;
  double solveOverheadUs = 100.0;
  double requestBytes = 1024.0;  // routed request payload on the wire

  /// Gray-failure defense, co-simulated with the SAME policy component the
  /// live fleet runs (serve::ShardHealthMonitor) so detector thresholds
  /// tuned here land unchanged in FleetConfig::healthMonitor. Default OFF:
  /// a defense-off run schedules no heartbeat/hedge events, preserving
  /// existing golden trace hashes.
  serve::HealthConfig health{false};
  /// Periodic shard liveness pulses feeding the phi detector; a slowed
  /// shard (slowFactor f) pulses every heartbeatIntervalMs / f.
  double heartbeatIntervalMs = 10.0;

  /// Hedged requests (first answer wins). Delay = hedgeDelayFactor x the
  /// recent completed-total p95, clamped to [hedgeMinDelayMs, inf); the
  /// token bucket caps duplicate-work amplification fleet-wide.
  bool hedgeEnabled = false;
  double hedgeDelayFactor = 1.5;
  double hedgeMinDelayMs = 2.0;
  double hedgeBudgetPerSecond = 20.0;
  double hedgeBudgetBurst = 8.0;

  std::vector<ChaosAction> chaos;

  void validate(const Topology& topology) const;
};

/// Aggregated counters the report and the validation gate read. The
/// latency series are seconds, percentile-summarized on demand.
struct ServeStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejectedQueueFull = 0;
  std::uint64_t rejectedDeadline = 0;
  std::uint64_t rejectedCircuitOpen = 0;
  std::uint64_t failed = 0;
  std::uint64_t failovers = 0;

  std::uint64_t cacheLookups = 0;
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
  std::uint64_t factorCount = 0;
  std::uint64_t evictions = 0;

  std::uint64_t batches = 0;
  std::uint64_t batchedColumns = 0;
  index_t maxBatchSize = 0;
  index_t peakQueueDepth = 0;
  std::uint64_t breakerTrips = 0;

  // Gray-failure defense tallies (all zero with the defense off).
  std::uint64_t heartbeats = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t healthDetours = 0;  // routes steered off quarantined shards
  std::uint64_t hedgesIssued = 0;
  std::uint64_t hedgeWins = 0;
  std::uint64_t hedgeWasted = 0;
  std::uint64_t hedgeDenied = 0;
  /// Total shard-lane solve seconds spent, duplicates included — the
  /// duplicate-work amplification gate compares this across defense
  /// on/off runs (must stay <= 1.15x).
  double solveWorkSeconds = 0.0;

  std::vector<double> queueWaitSeconds;
  std::vector<double> solveSeconds;
  std::vector<double> totalSeconds;

  [[nodiscard]] double hitRate() const {
    return cacheLookups == 0
               ? 0.0
               : static_cast<double>(cacheHits) /
                     static_cast<double>(cacheLookups);
  }
  [[nodiscard]] double meanBatchSize() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(batchedColumns) /
                              static_cast<double>(batches);
  }
};

class ServeWorkload final : public Workload {
 public:
  ServeWorkload(ServeWorkloadConfig config, const Topology& topology);

  [[nodiscard]] std::string name() const override { return "serve"; }
  void start(Simulator& sim) override;
  void handle(Simulator& sim, const Event& event) override;
  [[nodiscard]] bool done() const override;

  [[nodiscard]] const ServeStats& stats() const { return stats_; }
  [[nodiscard]] const ServeWorkloadConfig& config() const { return config_; }

  /// Per-shard snapshot for the CLI's `show shard|cache|queue` views.
  struct ShardView {
    index_t shard = 0;
    index_t node = 0;
    bool crashed = false;
    double slowFactor = 1.0;
    index_t queuedRequests = 0;
    index_t cachedKeys = 0;
    double cachedMb = 0.0;
    std::uint64_t routed = 0;
    std::uint64_t completed = 0;
    double busyUntil = 0.0;
  };
  [[nodiscard]] ShardView shardView(index_t shard) const;
  [[nodiscard]] index_t shardNode(index_t shard) const;

  /// Per-shard phi-detector snapshot for the CLI's `show health` view.
  struct HealthView {
    index_t shard = 0;
    index_t node = 0;
    std::string state = "healthy";
    double phi = 0.0;
    double lastHeartbeatAge = 0.0;  // seconds of virtual time
    std::uint64_t heartbeats = 0;
    std::uint64_t quarantines = 0;
  };
  [[nodiscard]] HealthView healthView(index_t shard, double now);

 private:
  struct PendingRequest {
    index_t traceIndex = 0;
    double arrivalSeconds = 0.0;   // first submission instant
    double deadlineSeconds = 0.0;  // absolute; 0 = none
    index_t failovers = 0;
    bool hedgeCopy = false;  // this in-flight copy is the speculative one
  };

  /// Router-side fate of one trace request across all its copies: the
  /// first terminal event answers it; later copies are wasted hedge work.
  struct RequestState {
    index_t primaryShard = -1;
    bool answered = false;
  };

  struct CacheEntry {
    double bytes = 0.0;
    std::uint64_t lastTouch = 0;  // LRU clock (deterministic counter)
  };

  struct Shard {
    index_t node = 0;
    bool crashed = false;
    double slowFactor = 1.0;
    double busyUntil = 0.0;
    std::uint64_t routed = 0;
    std::uint64_t completed = 0;
    /// Heartbeat pulse generation: crash/resurrect bump it so stale
    /// scheduled pulses are dropped instead of pulsing for a dead shard.
    std::int64_t pulseGeneration = 0;
    // Batching buckets: key index -> waiting requests (FIFO).
    std::map<index_t, std::vector<PendingRequest>> buckets;
    std::map<index_t, std::uint64_t> bucketGeneration;
    index_t queuedRequests = 0;
    std::map<index_t, CacheEntry> cache;  // key index -> entry
    double cacheBytes = 0.0;
    std::uint64_t lruClock = 0;
  };

  struct InFlightBatch {
    index_t shard = 0;
    index_t keyIndex = 0;
    std::vector<PendingRequest> requests;
    double dispatchSeconds = 0.0;
    double solveCost = 0.0;  // factor + solve, for the latency split
  };

  [[nodiscard]] const serve::TraceRequest& traceRequest(index_t i) const;
  [[nodiscard]] serve::ProblemKey keyOf(const serve::TraceRequest& r) const;
  [[nodiscard]] index_t keyIndexOf(const serve::TraceRequest& r);
  [[nodiscard]] index_t routeShard(index_t keyIndex, double now);
  [[nodiscard]] double factorBytes(const serve::TraceRequest& r) const;
  void dispatchBucket(Simulator& sim, index_t shardIndex, index_t keyIndex);
  void crashShard(Simulator& sim, index_t shardIndex);
  void evictForBudget(Shard& shard);
  void reject(const PendingRequest& req, serve::RequestStatus status,
              double now);
  /// True when this copy's terminal event answered the request; false when
  /// another copy already had (the caller tallies wasted hedge work).
  [[nodiscard]] bool markAnswered(index_t traceIndex);
  void scheduleHeartbeat(Simulator& sim, index_t shardIndex);
  [[nodiscard]] double hedgeDelaySeconds() const;
  void fireHedge(Simulator& sim, index_t traceIndex, double now);
  /// Hedge-aware terminal failure: a primary copy counts as failed (if
  /// still unanswered); a hedge copy's failure is swallowed as waste.
  void failCopy(const PendingRequest& req);

  ServeWorkloadConfig config_;
  const Topology* topology_;
  serve::HashRing ring_;
  serve::CircuitBreaker breaker_;
  /// The SAME phi-accrual detector the live fleet runs, fed virtual time —
  /// the whole point of the co-simulation is tuning its thresholds here.
  serve::ShardHealthMonitor healthMon_;
  std::vector<serve::ProblemKey> sentinels_;  // per-shard breaker keys
  std::vector<Shard> shards_;
  std::map<serve::ProblemKey, index_t> keyIndex_;
  std::vector<serve::ProblemKey> keys_;
  std::vector<InFlightBatch> batches_;
  /// Router-side request state (deadline, failover count) keyed by trace
  /// index; shard-arrival events carry only the index.
  std::map<index_t, PendingRequest> pendingMeta_;
  std::map<index_t, RequestState> reqState_;
  double hedgeTokens_ = 0.0;
  double hedgeRefillAt_ = 0.0;
  index_t me_ = -1;
  index_t outstanding_ = 0;  // submitted - terminally answered
  bool arrivalsDone_ = false;
  ServeStats stats_;
  double cacheBudgetBytes_ = 0.0;
};

}  // namespace hplmxp::fleetsim
