// Serve-fleet workload: a request trace replayed against lightweight
// state machines of the sharded serving tier, entirely on virtual time.
//
// The real fleet's *policy* components are reused verbatim where they are
// already pure functions of an explicit clock — the consistent-hash
// router (serve::HashRing) and the per-shard drain gate
// (serve::CircuitBreaker). The stateful per-shard machinery (byte-budget
// LRU factor cache, batch window, bounded queue, worker lane) is
// re-modelled as plain counters and maps: the simulator needs their
// *timing and accounting* behavior, not their payloads. Accounting
// mirrors the real engine so the validation against a measured
// BENCH_serve.json compares like with like — one cache lookup per
// dispatched batch (a coalesced batch costs exactly one factorization,
// the single-flight contract), hits + misses == lookups, and the same
// latency split (queue wait / solve / total).
//
// Chaos vocabulary matches the serve CLI: crash-at/crash-shard kills a
// shard (cache and queue contents included), pending and future requests
// fail over along the ring successors; resurrect-at restores it cold.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "fleetsim/event_core.h"
#include "fleetsim/topology.h"
#include "serve/breaker.h"
#include "serve/fleet/hash_ring.h"
#include "serve/metrics.h"
#include "serve/trace_io.h"

namespace hplmxp::fleetsim {

struct ChaosAction {
  enum class Kind { kCrash, kResurrect, kSlow };
  Kind kind = Kind::kCrash;
  double atMs = 0.0;
  index_t shard = 0;
  double factor = 0.5;  // kSlow only
};

struct ServeWorkloadConfig {
  serve::RequestTrace trace;
  index_t shards = 1;
  index_t virtualNodes = 64;
  index_t queueDepth = 64;
  index_t maxBatch = 8;
  double batchDelayUs = 1000.0;
  double cacheMb = 64.0;
  double defaultDeadlineMs = 0.0;  // 0 = none
  index_t failoverLimit = 2;
  serve::BreakerConfig breaker;

  /// Host-solve rate knob: effective GFLOP/s of one shard's solve lane.
  /// The default is calibrated so an n=64 b=16 smoke-trace solve costs a
  /// few hundred microseconds, the measured magnitude on the CI host.
  double hostGflops = 2.0;
  index_t irIterations = 3;
  double solveOverheadUs = 100.0;
  double requestBytes = 1024.0;  // routed request payload on the wire

  std::vector<ChaosAction> chaos;

  void validate(const Topology& topology) const;
};

/// Aggregated counters the report and the validation gate read. The
/// latency series are seconds, percentile-summarized on demand.
struct ServeStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejectedQueueFull = 0;
  std::uint64_t rejectedDeadline = 0;
  std::uint64_t rejectedCircuitOpen = 0;
  std::uint64_t failed = 0;
  std::uint64_t failovers = 0;

  std::uint64_t cacheLookups = 0;
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
  std::uint64_t factorCount = 0;
  std::uint64_t evictions = 0;

  std::uint64_t batches = 0;
  std::uint64_t batchedColumns = 0;
  index_t maxBatchSize = 0;
  index_t peakQueueDepth = 0;
  std::uint64_t breakerTrips = 0;

  std::vector<double> queueWaitSeconds;
  std::vector<double> solveSeconds;
  std::vector<double> totalSeconds;

  [[nodiscard]] double hitRate() const {
    return cacheLookups == 0
               ? 0.0
               : static_cast<double>(cacheHits) /
                     static_cast<double>(cacheLookups);
  }
  [[nodiscard]] double meanBatchSize() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(batchedColumns) /
                              static_cast<double>(batches);
  }
};

class ServeWorkload final : public Workload {
 public:
  ServeWorkload(ServeWorkloadConfig config, const Topology& topology);

  [[nodiscard]] std::string name() const override { return "serve"; }
  void start(Simulator& sim) override;
  void handle(Simulator& sim, const Event& event) override;
  [[nodiscard]] bool done() const override;

  [[nodiscard]] const ServeStats& stats() const { return stats_; }
  [[nodiscard]] const ServeWorkloadConfig& config() const { return config_; }

  /// Per-shard snapshot for the CLI's `show shard|cache|queue` views.
  struct ShardView {
    index_t shard = 0;
    index_t node = 0;
    bool crashed = false;
    double slowFactor = 1.0;
    index_t queuedRequests = 0;
    index_t cachedKeys = 0;
    double cachedMb = 0.0;
    std::uint64_t routed = 0;
    std::uint64_t completed = 0;
    double busyUntil = 0.0;
  };
  [[nodiscard]] ShardView shardView(index_t shard) const;
  [[nodiscard]] index_t shardNode(index_t shard) const;

 private:
  struct PendingRequest {
    index_t traceIndex = 0;
    double arrivalSeconds = 0.0;   // first submission instant
    double deadlineSeconds = 0.0;  // absolute; 0 = none
    index_t failovers = 0;
  };

  struct CacheEntry {
    double bytes = 0.0;
    std::uint64_t lastTouch = 0;  // LRU clock (deterministic counter)
  };

  struct Shard {
    index_t node = 0;
    bool crashed = false;
    double slowFactor = 1.0;
    double busyUntil = 0.0;
    std::uint64_t routed = 0;
    std::uint64_t completed = 0;
    // Batching buckets: key index -> waiting requests (FIFO).
    std::map<index_t, std::vector<PendingRequest>> buckets;
    std::map<index_t, std::uint64_t> bucketGeneration;
    index_t queuedRequests = 0;
    std::map<index_t, CacheEntry> cache;  // key index -> entry
    double cacheBytes = 0.0;
    std::uint64_t lruClock = 0;
  };

  struct InFlightBatch {
    index_t shard = 0;
    index_t keyIndex = 0;
    std::vector<PendingRequest> requests;
    double dispatchSeconds = 0.0;
    double solveCost = 0.0;  // factor + solve, for the latency split
  };

  [[nodiscard]] const serve::TraceRequest& traceRequest(index_t i) const;
  [[nodiscard]] serve::ProblemKey keyOf(const serve::TraceRequest& r) const;
  [[nodiscard]] index_t keyIndexOf(const serve::TraceRequest& r);
  [[nodiscard]] index_t routeShard(index_t keyIndex) const;
  [[nodiscard]] double factorBytes(const serve::TraceRequest& r) const;
  void dispatchBucket(Simulator& sim, index_t shardIndex, index_t keyIndex);
  void crashShard(Simulator& sim, index_t shardIndex);
  void evictForBudget(Shard& shard);
  void reject(const PendingRequest& req, serve::RequestStatus status,
              double now);

  ServeWorkloadConfig config_;
  const Topology* topology_;
  serve::HashRing ring_;
  serve::CircuitBreaker breaker_;
  std::vector<serve::ProblemKey> sentinels_;  // per-shard breaker keys
  std::vector<Shard> shards_;
  std::map<serve::ProblemKey, index_t> keyIndex_;
  std::vector<serve::ProblemKey> keys_;
  std::vector<InFlightBatch> batches_;
  /// Router-side request state (deadline, failover count) keyed by trace
  /// index; shard-arrival events carry only the index.
  std::map<index_t, PendingRequest> pendingMeta_;
  index_t me_ = -1;
  index_t outstanding_ = 0;  // submitted - terminally answered
  bool arrivalsDone_ = false;
  ServeStats stats_;
  double cacheBudgetBytes_ = 0.0;
};

}  // namespace hplmxp::fleetsim
