#include "fleetsim/event_core.h"

#include <cstring>
#include <sstream>

namespace hplmxp::fleetsim {

const char* toString(EventClass cls) {
  switch (cls) {
    case EventClass::kLuIteration: return "lu-iteration";
    case EventClass::kLuPanelArrival: return "lu-panel-arrival";
    case EventClass::kLuDone: return "lu-done";
    case EventClass::kRequestArrival: return "request-arrival";
    case EventClass::kBatchWindow: return "batch-window";
    case EventClass::kSolveDone: return "solve-done";
    case EventClass::kCrash: return "crash";
    case EventClass::kResurrect: return "resurrect";
    case EventClass::kSlowdown: return "slowdown";
    case EventClass::kHeartbeat: return "heartbeat";
    case EventClass::kHedgeFire: return "hedge-fire";
  }
  return "?";
}

EventClass eventClassFromString(const std::string& name) {
  for (const EventClass cls :
       {EventClass::kLuIteration, EventClass::kLuPanelArrival,
        EventClass::kLuDone, EventClass::kRequestArrival,
        EventClass::kBatchWindow, EventClass::kSolveDone, EventClass::kCrash,
        EventClass::kResurrect, EventClass::kSlowdown,
        EventClass::kHeartbeat, EventClass::kHedgeFire}) {
    if (name == toString(cls)) {
      return cls;
    }
  }
  HPLMXP_REQUIRE(false, ("unknown event class: " + name).c_str());
  return EventClass::kLuIteration;  // unreachable
}

bool Breakpoint::matches(const Event& event) const {
  switch (kind) {
    case Kind::kEventClass: return event.cls == cls;
    case Kind::kNode: return event.node == node;
    case Kind::kTime: return event.time >= time;
  }
  return false;
}

std::string Breakpoint::toString() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kEventClass:
      os << "class " << fleetsim::toString(cls);
      break;
    case Kind::kNode:
      os << "node " << node;
      break;
    case Kind::kTime:
      os << "time " << time * 1e3 << "ms";
      break;
  }
  return os.str();
}

Simulator::Simulator() = default;

index_t Simulator::addWorkload(Workload* workload) {
  HPLMXP_REQUIRE(workload != nullptr, "null workload");
  workloads_.push_back(workload);
  return static_cast<index_t>(workloads_.size()) - 1;
}

index_t Simulator::workloadIndex(const Workload* workload) const {
  for (std::size_t i = 0; i < workloads_.size(); ++i) {
    if (workloads_[i] == workload) {
      return static_cast<index_t>(i);
    }
  }
  HPLMXP_REQUIRE(false, "workload not registered with this simulator");
  return -1;  // unreachable
}

void Simulator::startWorkloads() {
  HPLMXP_REQUIRE(!started_, "workloads already started");
  started_ = true;
  for (Workload* w : workloads_) {
    w->start(*this);
  }
}

void Simulator::schedule(double time, index_t node, EventClass cls,
                         index_t workload, std::int64_t a, std::int64_t b,
                         double x) {
  HPLMXP_REQUIRE(time >= now(), "cannot schedule an event in the past");
  HPLMXP_REQUIRE(workload >= 0 &&
                     workload < static_cast<index_t>(workloads_.size()),
                 "event names an unregistered workload");
  Event event;
  event.time = time;
  event.node = node;
  event.seq = nextSeq_++;
  event.cls = cls;
  event.workload = workload;
  event.a = a;
  event.b = b;
  event.x = x;
  heapPush(event);
}

// (time, node, seq) strict weak ordering — seq is unique, so the order is
// total and identical on every host.
bool Simulator::heapLess(std::size_t i, std::size_t j) const {
  const Event& a = heap_[i];
  const Event& b = heap_[j];
  if (a.time != b.time) return a.time < b.time;
  if (a.node != b.node) return a.node < b.node;
  return a.seq < b.seq;
}

void Simulator::heapPush(const Event& event) {
  heap_.push_back(event);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!heapLess(i, parent)) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

Event Simulator::heapPop() {
  const Event top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  std::size_t i = 0;
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t l = 2 * i + 1;
    const std::size_t r = l + 1;
    std::size_t best = i;
    if (l < n && heapLess(l, best)) best = l;
    if (r < n && heapLess(r, best)) best = r;
    if (best == i) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
  return top;
}

namespace {
std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xffu;
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

std::uint64_t doubleBits(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}
}  // namespace

void Simulator::execute(const Event& event) {
  clock_.advanceTo(event.time);
  ++executed_;
  traceHash_ = fnv1a(traceHash_, doubleBits(event.time));
  traceHash_ = fnv1a(traceHash_, static_cast<std::uint64_t>(event.node));
  traceHash_ = fnv1a(traceHash_, event.seq);
  traceHash_ = fnv1a(traceHash_, static_cast<std::uint64_t>(event.cls));
  traceHash_ = fnv1a(traceHash_, static_cast<std::uint64_t>(event.workload));
  traceHash_ = fnv1a(traceHash_, static_cast<std::uint64_t>(event.a));
  traceHash_ = fnv1a(traceHash_, static_cast<std::uint64_t>(event.b));
  traceHash_ = fnv1a(traceHash_, doubleBits(event.x));
  if (traceLimit_ > 0) {
    trace_.push_back(event);
    while (trace_.size() > traceLimit_) {
      trace_.pop_front();
    }
  }
  workloads_[static_cast<std::size_t>(event.workload)]->handle(*this, event);
}

const Breakpoint* Simulator::matchBreakpoint(const Event& event) const {
  for (const Breakpoint& bp : breakpoints_) {
    if (bp.matches(event)) {
      return &bp;
    }
  }
  return nullptr;
}

const Event* Simulator::peek() const {
  return heap_.empty() ? nullptr : &heap_.front();
}

const Event* Simulator::breakEvent() const {
  return breakValid_ ? &breakEvent_ : nullptr;
}

bool Simulator::step() {
  breakValid_ = false;
  if (heap_.empty()) {
    return false;
  }
  execute(heapPop());
  return true;
}

StopReason Simulator::run(index_t maxEvents) {
  breakValid_ = false;
  index_t executed = 0;
  while (!heap_.empty()) {
    if (maxEvents >= 0 && executed >= maxEvents) {
      return StopReason::kEventLimit;
    }
    const Event& top = heap_.front();
    if (top.seq != breakSeq_) {
      if (matchBreakpoint(top) != nullptr) {
        breakEvent_ = top;
        breakValid_ = true;
        breakSeq_ = top.seq;  // resume executes it without re-breaking
        return StopReason::kBreakpoint;
      }
    }
    execute(heapPop());
    ++executed;
  }
  return StopReason::kExhausted;
}

StopReason Simulator::runUntil(double time) {
  breakValid_ = false;
  while (!heap_.empty()) {
    const Event& top = heap_.front();
    if (top.time > time) {
      return StopReason::kTimeLimit;
    }
    if (top.seq != breakSeq_) {
      if (matchBreakpoint(top) != nullptr) {
        breakEvent_ = top;
        breakValid_ = true;
        breakSeq_ = top.seq;
        return StopReason::kBreakpoint;
      }
    }
    execute(heapPop());
  }
  return StopReason::kExhausted;
}

void Simulator::setTraceLimit(std::size_t limit) {
  traceLimit_ = limit;
  while (trace_.size() > traceLimit_) {
    trace_.pop_front();
  }
}

index_t Simulator::addBreakpoint(Breakpoint bp) {
  breakpoints_.push_back(bp);
  return static_cast<index_t>(breakpoints_.size()) - 1;
}

}  // namespace hplmxp::fleetsim
