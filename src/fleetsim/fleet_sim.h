// Fleet co-simulation session: topology + workloads + report.
//
// FleetSession wires a Topology, an optional LU workload, and an optional
// serve workload onto one Simulator. The report carries everything the
// CLI's `stats`, the BENCH_fleetsim.json artifact, and the validation
// gate need; validateAgainst() compares the simulated serving picture
// with a *measured* BENCH_serve.json from `hplmxp serve` on the same
// trace — the small-scale anchoring that keeps the model honest before
// it is scaled to thousands of nodes.
#pragma once

#include <memory>
#include <string>

#include "fleetsim/lu_workload.h"
#include "fleetsim/serve_workload.h"
#include "fleetsim/topology.h"
#include "serve/metrics.h"

namespace hplmxp::fleetsim {

struct FleetSimConfig {
  TopologyConfig topology;
  bool runLu = false;
  LuWorkloadConfig lu;
  bool runServe = false;
  ServeWorkloadConfig serve;
};

struct FleetSimReport {
  std::string topologyName;
  std::string topologyKind;
  index_t nodes = 0;
  std::uint64_t events = 0;
  std::uint64_t traceHash = 0;
  double virtualSeconds = 0.0;

  bool hasLu = false;
  LuStats lu;

  bool hasServe = false;
  ServeStats serveCounters;  // counters only; percentiles below
  serve::LatencyPercentiles queueWait;
  serve::LatencyPercentiles solve;
  serve::LatencyPercentiles total;

  [[nodiscard]] std::string toJson() const;
};

class FleetSession {
 public:
  explicit FleetSession(FleetSimConfig config);

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] const Simulator& sim() const { return sim_; }
  [[nodiscard]] const Topology& topology() const { return topology_; }
  [[nodiscard]] LuWorkload* lu() { return lu_.get(); }
  [[nodiscard]] ServeWorkload* serve() { return serve_.get(); }
  [[nodiscard]] const ServeWorkload* serve() const { return serve_.get(); }

  [[nodiscard]] FleetSimReport report() const;

 private:
  FleetSimConfig config_;
  Topology topology_;
  Simulator sim_;
  std::unique_ptr<LuWorkload> lu_;
  std::unique_ptr<ServeWorkload> serve_;
};

/// One model-vs-measured comparison line of the validation gate.
struct ValidationLine {
  std::string metric;
  double simulated = 0.0;
  double measured = 0.0;
  double ratio = 0.0;  // simulated / measured (latency checks)
  double delta = 0.0;  // simulated - measured (rate checks)
  bool pass = false;
};

struct ValidationResult {
  bool pass = false;
  std::vector<ValidationLine> lines;
  [[nodiscard]] std::string toJson() const;
};

/// Compares the simulated serve picture against a measured
/// BENCH_serve.json. Latency percentiles (total p50/p99) must agree
/// within a multiplicative `latencyFactorTol` in either direction; the
/// cache hit rate is structural and must agree within an absolute
/// `hitRateTol`. Throws CheckError when the report has no serve workload
/// or the measured file is unreadable.
ValidationResult validateAgainst(const FleetSimReport& report,
                                 const std::string& benchServePath,
                                 double latencyFactorTol,
                                 double hitRateTol);

}  // namespace hplmxp::fleetsim
