#include "fleetsim/serve_workload.h"

#include <algorithm>

namespace hplmxp::fleetsim {

void ServeWorkloadConfig::validate(const Topology& topology) const {
  HPLMXP_REQUIRE(!trace.requests.empty(), "serve workload needs requests");
  HPLMXP_REQUIRE(shards >= 1, "serve workload needs >= 1 shard");
  HPLMXP_REQUIRE(shards <= topology.nodes(),
                 "more shards than topology nodes");
  HPLMXP_REQUIRE(virtualNodes >= 1, "need >= 1 virtual ring node");
  HPLMXP_REQUIRE(queueDepth >= 1, "queue depth must be >= 1");
  HPLMXP_REQUIRE(maxBatch >= 1, "max batch must be >= 1");
  HPLMXP_REQUIRE(batchDelayUs >= 0.0, "negative batch delay");
  HPLMXP_REQUIRE(cacheMb > 0.0, "cache budget must be positive");
  HPLMXP_REQUIRE(failoverLimit >= 0, "negative failover limit");
  HPLMXP_REQUIRE(hostGflops > 0.0, "host rate must be positive");
  HPLMXP_REQUIRE(irIterations >= 1, "need >= 1 IR iteration");
  HPLMXP_REQUIRE(heartbeatIntervalMs > 0.0,
                 "heartbeat interval must be positive");
  if (hedgeEnabled) {
    HPLMXP_REQUIRE(hedgeDelayFactor >= 0.0 && hedgeMinDelayMs >= 0.0,
                   "hedge delay knobs must be non-negative");
    HPLMXP_REQUIRE(hedgeBudgetPerSecond > 0.0 && hedgeBudgetBurst >= 1.0,
                   "hedge budget must admit at least one hedge");
  }
}

namespace {

/// The phi detector is seeded from the configured pulse cadence, so the
/// millisecond CLI knob must land in the monitor's config before it is
/// constructed.
serve::HealthConfig syncedHealth(const ServeWorkloadConfig& cfg) {
  serve::HealthConfig h = cfg.health;
  h.heartbeatIntervalSeconds = cfg.heartbeatIntervalMs * 1e-3;
  return h;
}

}  // namespace

ServeWorkload::ServeWorkload(ServeWorkloadConfig config,
                             const Topology& topology)
    : config_(std::move(config)),
      topology_(&topology),
      ring_(config_.shards, config_.virtualNodes),
      breaker_(config_.breaker),
      healthMon_(syncedHealth(config_), config_.shards) {
  config_.validate(topology);
  cacheBudgetBytes_ = config_.cacheMb * 1024.0 * 1024.0;
  hedgeTokens_ = config_.hedgeBudgetBurst;
  shards_.resize(static_cast<std::size_t>(config_.shards));
  sentinels_.reserve(shards_.size());
  const index_t stride = topology.nodes() / config_.shards;
  for (index_t s = 0; s < config_.shards; ++s) {
    shards_[static_cast<std::size_t>(s)].node = s * std::max<index_t>(
                                                        stride, 1);
    serve::ProblemKey sentinel;
    sentinel.n = -(s + 1);  // never a servable shape
    sentinels_.push_back(sentinel);
  }
}

index_t ServeWorkload::shardNode(index_t shard) const {
  HPLMXP_REQUIRE(shard >= 0 && shard < config_.shards, "shard out of range");
  return shards_[static_cast<std::size_t>(shard)].node;
}

const serve::TraceRequest& ServeWorkload::traceRequest(index_t i) const {
  return config_.trace.requests[static_cast<std::size_t>(i)];
}

serve::ProblemKey ServeWorkload::keyOf(const serve::TraceRequest& r) const {
  serve::ProblemKey key;
  key.n = r.n;
  key.b = r.b;
  key.seed = r.seed;
  key.pr = r.pr;
  key.pc = r.pc;
  key.precision = r.precision;
  return key;
}

index_t ServeWorkload::keyIndexOf(const serve::TraceRequest& r) {
  const serve::ProblemKey key = keyOf(r);
  const auto [it, inserted] =
      keyIndex_.try_emplace(key, static_cast<index_t>(keys_.size()));
  if (inserted) {
    keys_.push_back(key);
  }
  return it->second;
}

index_t ServeWorkload::routeShard(index_t keyIndex, double now) {
  const serve::ProblemKey& key = keys_[static_cast<std::size_t>(keyIndex)];
  // The live fleet's two-tier routing: `preferred` steers off quarantined
  // shards, `hard` (alive at all) is the fallback so quarantine can never
  // starve the fleet.
  const auto hard = [this](index_t s) {
    return !shards_[static_cast<std::size_t>(s)].crashed;
  };
  const auto preferred = [&](index_t s) {
    return hard(s) && healthMon_.routable(s, now);
  };
  index_t chosen = ring_.route(key, preferred);
  if (chosen < 0) {
    chosen = ring_.route(key, hard);
  }
  if (config_.health.enabled && chosen >= 0) {
    const index_t allUp = ring_.route(key, nullptr);
    if (chosen != allUp && allUp >= 0 &&
        healthMon_.state(allUp, now) ==
            serve::HealthState::kQuarantined) {
      ++stats_.healthDetours;
    }
  }
  return chosen;
}

bool ServeWorkload::markAnswered(index_t traceIndex) {
  RequestState& st = reqState_[traceIndex];
  if (st.answered) {
    return false;
  }
  st.answered = true;
  return true;
}

void ServeWorkload::failCopy(const PendingRequest& req) {
  if (req.hedgeCopy || !markAnswered(req.traceIndex)) {
    ++stats_.hedgeWasted;  // a losing copy's work, discarded
    return;
  }
  ++stats_.failed;
  pendingMeta_.erase(req.traceIndex);
}

void ServeWorkload::scheduleHeartbeat(Simulator& sim, index_t shardIndex) {
  Shard& shard = shards_[static_cast<std::size_t>(shardIndex)];
  // A slowed shard pulses proportionally later — the gray-failure signal
  // the phi detector exists to notice.
  const double interval =
      config_.heartbeatIntervalMs * 1e-3 / shard.slowFactor;
  sim.schedule(sim.now() + interval, shard.node, EventClass::kHeartbeat, me_,
               shardIndex, shard.pulseGeneration);
}

double ServeWorkload::hedgeDelaySeconds() const {
  const double minDelay = config_.hedgeMinDelayMs * 1e-3;
  const std::vector<double>& totals = stats_.totalSeconds;
  if (totals.empty()) {
    return minDelay;
  }
  // p95 of the most recent completions: the hedge must track the current
  // service level, not the whole run's history.
  const std::size_t window = std::min<std::size_t>(totals.size(), 64);
  std::vector<double> recent(totals.end() -
                                 static_cast<std::ptrdiff_t>(window),
                             totals.end());
  std::sort(recent.begin(), recent.end());
  const double p95 = recent[static_cast<std::size_t>(
      0.95 * static_cast<double>(recent.size() - 1))];
  return std::max(minDelay, config_.hedgeDelayFactor * p95);
}

void ServeWorkload::fireHedge(Simulator& sim, index_t traceIndex,
                              double now) {
  const auto stIt = reqState_.find(traceIndex);
  if (stIt == reqState_.end() || stIt->second.answered) {
    return;  // answered in time: the hedge is moot
  }
  const auto metaIt = pendingMeta_.find(traceIndex);
  if (metaIt == pendingMeta_.end()) {
    return;
  }
  // Token-bucket refill on virtual time: a fleet-wide slowdown (every
  // request late) drains the bucket; an isolated slow shard stays within
  // budget.
  hedgeTokens_ = std::min(
      config_.hedgeBudgetBurst,
      hedgeTokens_ + (now - hedgeRefillAt_) * config_.hedgeBudgetPerSecond);
  hedgeRefillAt_ = now;
  if (hedgeTokens_ < 1.0) {
    ++stats_.hedgeDenied;
    return;
  }
  const serve::TraceRequest& r = traceRequest(traceIndex);
  const index_t keyIdx = keyIndexOf(r);
  const index_t primary = stIt->second.primaryShard;
  // Replica target: the first routable ring successor that is not the
  // primary (the hedge exists to bet on a DIFFERENT shard).
  index_t target = -1;
  const std::vector<index_t> successors = ring_.successors(
      keys_[static_cast<std::size_t>(keyIdx)], config_.shards,
      [&](index_t s) {
        return !shards_[static_cast<std::size_t>(s)].crashed &&
               healthMon_.routable(s, now);
      });
  for (const index_t s : successors) {
    if (s != primary) {
      target = s;
      break;
    }
  }
  if (target < 0) {
    ++stats_.hedgeDenied;
    return;
  }
  hedgeTokens_ -= 1.0;
  ++stats_.hedgesIssued;
  const double hop = topology_->transferSeconds(
      0, shardNode(target), config_.requestBytes, config_.shards);
  // x = 1.0 marks the arriving copy as the speculative one.
  sim.schedule(now + hop, shardNode(target), EventClass::kRequestArrival,
               me_, traceIndex, target, /*x=*/1.0);
}

double ServeWorkload::factorBytes(const serve::TraceRequest& r) const {
  // FP32 + low-precision factor pair, the serve cache's resident shape.
  const double n = static_cast<double>(r.n);
  return 6.0 * n * n;
}

void ServeWorkload::start(Simulator& sim) {
  me_ = sim.workloadIndex(this);
  // All arrivals enter at the router (node 0) on the trace clock; routing
  // happens when the event fires, so it sees then-current shard health.
  for (std::size_t i = 0; i < config_.trace.requests.size(); ++i) {
    const serve::TraceRequest& r = config_.trace.requests[i];
    (void)keyIndexOf(r);  // intern keys in trace order (deterministic)
    sim.schedule(r.atMs * 1e-3, 0, EventClass::kRequestArrival, me_,
                 static_cast<std::int64_t>(i), /*shard=*/-1);
  }
  for (const ChaosAction& action : config_.chaos) {
    HPLMXP_REQUIRE(action.shard >= 0 && action.shard < config_.shards,
                   "chaos action names a bad shard");
    const index_t node = shardNode(action.shard);
    switch (action.kind) {
      case ChaosAction::Kind::kCrash:
        sim.schedule(action.atMs * 1e-3, node, EventClass::kCrash, me_,
                     action.shard);
        break;
      case ChaosAction::Kind::kResurrect:
        sim.schedule(action.atMs * 1e-3, node, EventClass::kResurrect, me_,
                     action.shard);
        break;
      case ChaosAction::Kind::kSlow:
        HPLMXP_REQUIRE(action.factor > 0.0 && action.factor <= 1.0,
                       "slow factor must be in (0, 1]");
        sim.schedule(action.atMs * 1e-3, node, EventClass::kSlowdown, me_,
                     action.shard, 0, action.factor);
        break;
    }
  }
  if (config_.health.enabled) {
    for (index_t s = 0; s < config_.shards; ++s) {
      scheduleHeartbeat(sim, s);
    }
  }
}

bool ServeWorkload::done() const {
  const std::uint64_t answered = stats_.completed + stats_.rejectedQueueFull +
                                 stats_.rejectedDeadline +
                                 stats_.rejectedCircuitOpen + stats_.failed;
  return answered == config_.trace.requests.size();
}

void ServeWorkload::reject(const PendingRequest& req,
                           serve::RequestStatus status, double now) {
  (void)now;
  if (req.hedgeCopy || !markAnswered(req.traceIndex)) {
    // A losing copy's rejection is not the request's fate.
    ++stats_.hedgeWasted;
    return;
  }
  pendingMeta_.erase(req.traceIndex);
  switch (status) {
    case serve::RequestStatus::kRejectedQueueFull:
      ++stats_.rejectedQueueFull;
      break;
    case serve::RequestStatus::kRejectedDeadline:
      ++stats_.rejectedDeadline;
      break;
    case serve::RequestStatus::kRejectedCircuitOpen:
      ++stats_.rejectedCircuitOpen;
      break;
    default:
      ++stats_.failed;
      break;
  }
}

void ServeWorkload::evictForBudget(Shard& shard) {
  while (shard.cacheBytes > cacheBudgetBytes_ && !shard.cache.empty()) {
    auto victim = shard.cache.begin();
    for (auto it = shard.cache.begin(); it != shard.cache.end(); ++it) {
      if (it->second.lastTouch < victim->second.lastTouch) {
        victim = it;
      }
    }
    shard.cacheBytes -= victim->second.bytes;
    shard.cache.erase(victim);
    ++stats_.evictions;
  }
}

void ServeWorkload::dispatchBucket(Simulator& sim, index_t shardIndex,
                                   index_t keyIndex) {
  Shard& shard = shards_[static_cast<std::size_t>(shardIndex)];
  auto bucketIt = shard.buckets.find(keyIndex);
  if (bucketIt == shard.buckets.end() || bucketIt->second.empty()) {
    return;
  }
  std::vector<PendingRequest>& bucket = bucketIt->second;
  const std::size_t take =
      std::min<std::size_t>(bucket.size(),
                            static_cast<std::size_t>(config_.maxBatch));
  const double now = sim.now();

  InFlightBatch batch;
  batch.shard = shardIndex;
  batch.keyIndex = keyIndex;
  batch.dispatchSeconds = now;
  for (std::size_t i = 0; i < take; ++i) {
    PendingRequest& req = bucket[i];
    --shard.queuedRequests;
    if (req.deadlineSeconds > 0.0 && now > req.deadlineSeconds) {
      reject(req, serve::RequestStatus::kRejectedDeadline, now);
      continue;
    }
    batch.requests.push_back(req);
  }
  bucket.erase(bucket.begin(),
               bucket.begin() + static_cast<std::ptrdiff_t>(take));
  ++shard.bucketGeneration[keyIndex];
  if (!bucket.empty()) {
    // Remainder starts a fresh window.
    sim.schedule(now + config_.batchDelayUs * 1e-6, shard.node,
                 EventClass::kBatchWindow, me_, shardIndex, keyIndex,
                 static_cast<double>(shard.bucketGeneration[keyIndex]));
  }
  if (batch.requests.empty()) {
    return;  // every picked request was already past its deadline
  }

  // One cache lookup per dispatched batch — the single-flight contract's
  // accounting shape (hits + misses == lookups; a coalesced batch costs
  // at most one factorization).
  const serve::TraceRequest& proto =
      traceRequest(batch.requests.front().traceIndex);
  ++stats_.cacheLookups;
  double factorSeconds = 0.0;
  auto cacheIt = shard.cache.find(keyIndex);
  const double mult =
      topology_->nodeMultiplier(shard.node) * shard.slowFactor;
  const double rate = config_.hostGflops * 1e9 * mult;
  if (cacheIt != shard.cache.end()) {
    ++stats_.cacheHits;
    cacheIt->second.lastTouch = ++shard.lruClock;
  } else {
    ++stats_.cacheMisses;
    ++stats_.factorCount;
    const double n = static_cast<double>(proto.n);
    factorSeconds = (2.0 / 3.0) * n * n * n / rate;
    CacheEntry entry;
    entry.bytes = factorBytes(proto);
    entry.lastTouch = ++shard.lruClock;
    shard.cacheBytes += entry.bytes;
    shard.cache.emplace(keyIndex, entry);
    evictForBudget(shard);
  }
  const double n = static_cast<double>(proto.n);
  const double cols = static_cast<double>(batch.requests.size());
  const double solveSeconds =
      static_cast<double>(config_.irIterations) * 2.0 * n * n * cols / rate +
      config_.solveOverheadUs * 1e-6;
  batch.solveCost = factorSeconds + solveSeconds;
  // Duplicates included: the hedge amplification gate reads this.
  stats_.solveWorkSeconds += batch.solveCost;

  // One worker lane per shard: the batch queues behind whatever the lane
  // is already solving. Queue wait = submission to lane start.
  const double startAt = std::max(now, shard.busyUntil);
  const double doneAt = startAt + batch.solveCost;
  shard.busyUntil = doneAt;
  batch.dispatchSeconds = startAt;

  ++stats_.batches;
  stats_.batchedColumns += batch.requests.size();
  stats_.maxBatchSize = std::max(
      stats_.maxBatchSize, static_cast<index_t>(batch.requests.size()));

  batches_.push_back(std::move(batch));
  sim.schedule(doneAt, shard.node, EventClass::kSolveDone, me_,
               static_cast<std::int64_t>(batches_.size() - 1));
}

void ServeWorkload::crashShard(Simulator& sim, index_t shardIndex) {
  Shard& shard = shards_[static_cast<std::size_t>(shardIndex)];
  if (shard.crashed) {
    return;
  }
  shard.crashed = true;
  ++shard.pulseGeneration;  // pending heartbeat pulses are now stale
  // A crash loses the cached factors (a real node death does).
  shard.cache.clear();
  shard.cacheBytes = 0.0;
  shard.busyUntil = 0.0;
  // Queued requests fail over along the ring.
  const double now = sim.now();
  for (auto& [keyIndex, bucket] : shard.buckets) {
    for (PendingRequest& req : bucket) {
      --shard.queuedRequests;
      const auto stIt = reqState_.find(req.traceIndex);
      if (req.hedgeCopy ||
          (stIt != reqState_.end() && stIt->second.answered)) {
        ++stats_.hedgeWasted;  // a losing copy dies with the shard
        continue;
      }
      if (req.failovers >= config_.failoverLimit) {
        failCopy(req);
        continue;
      }
      const index_t next = routeShard(keyIndex, now);
      if (next < 0) {
        failCopy(req);
        continue;
      }
      ++req.failovers;
      ++stats_.failovers;
      const double hop = topology_->transferSeconds(
          shard.node, shardNode(next), config_.requestBytes, config_.shards);
      pendingMeta_[req.traceIndex] = req;
      sim.schedule(now + hop, shardNode(next), EventClass::kRequestArrival,
                   me_, req.traceIndex, next);
    }
  }
  shard.buckets.clear();
  shard.bucketGeneration.clear();
  shard.queuedRequests = 0;
  breaker_.onFailure(sentinels_[static_cast<std::size_t>(shardIndex)], now);
}

void ServeWorkload::handle(Simulator& sim, const Event& event) {
  const double now = sim.now();
  switch (event.cls) {
    case EventClass::kRequestArrival: {
      const index_t traceIdx = static_cast<index_t>(event.a);
      const index_t toShard = static_cast<index_t>(event.b);
      const serve::TraceRequest& r = traceRequest(traceIdx);
      const index_t keyIdx = keyIndexOf(r);
      if (toShard < 0) {
        // Router step: pick the shard, pay the wire.
        ++stats_.submitted;
        PendingRequest req;
        req.traceIndex = traceIdx;
        req.arrivalSeconds = now;
        const double deadlineMs =
            r.deadlineMs > 0.0 ? r.deadlineMs : config_.defaultDeadlineMs;
        req.deadlineSeconds =
            deadlineMs > 0.0 ? now + deadlineMs * 1e-3 : 0.0;
        const index_t shard = routeShard(keyIdx, now);
        if (shard < 0) {
          (void)markAnswered(traceIdx);
          ++stats_.failed;  // nobody healthy to route to
          break;
        }
        pendingMeta_[traceIdx] = req;
        reqState_[traceIdx].primaryShard = shard;
        const double hop = topology_->transferSeconds(
            0, shardNode(shard), config_.requestBytes, config_.shards);
        sim.schedule(now + hop, shardNode(shard),
                     EventClass::kRequestArrival, me_, traceIdx, shard);
        if (config_.hedgeEnabled && config_.shards > 1) {
          sim.schedule(now + hedgeDelaySeconds(), 0, EventClass::kHedgeFire,
                       me_, traceIdx);
        }
        break;
      }
      // Shard-side admission.
      const auto metaIt = pendingMeta_.find(traceIdx);
      if (metaIt == pendingMeta_.end()) {
        break;  // another copy already answered this request
      }
      PendingRequest req = metaIt->second;
      req.hedgeCopy = event.x > 0.5;
      Shard& shard = shards_[static_cast<std::size_t>(toShard)];
      if (shard.crashed) {
        // Crashed between routing and arrival: fail over (hedge copies
        // never fail over — the primary is still in flight).
        if (req.hedgeCopy) {
          ++stats_.hedgeWasted;
          break;
        }
        if (req.failovers >= config_.failoverLimit) {
          failCopy(req);
          break;
        }
        const index_t next = routeShard(keyIdx, now);
        if (next < 0) {
          failCopy(req);
          break;
        }
        ++req.failovers;
        ++stats_.failovers;
        pendingMeta_[traceIdx] = req;
        const double hop = topology_->transferSeconds(
            shard.node, shardNode(next), config_.requestBytes,
            config_.shards);
        sim.schedule(now + hop, shardNode(next), EventClass::kRequestArrival,
                     me_, traceIdx, next);
        break;
      }
      ++shard.routed;
      if (!breaker_.allow(sentinels_[static_cast<std::size_t>(toShard)],
                          now)) {
        reject(req, serve::RequestStatus::kRejectedCircuitOpen, now);
        break;
      }
      if (req.deadlineSeconds > 0.0 && now > req.deadlineSeconds) {
        reject(req, serve::RequestStatus::kRejectedDeadline, now);
        break;
      }
      if (shard.queuedRequests >= config_.queueDepth) {
        reject(req, serve::RequestStatus::kRejectedQueueFull, now);
        break;
      }
      std::vector<PendingRequest>& bucket = shard.buckets[keyIdx];
      const bool wasEmpty = bucket.empty();
      bucket.push_back(req);
      ++shard.queuedRequests;
      stats_.peakQueueDepth =
          std::max(stats_.peakQueueDepth, shard.queuedRequests);
      if (static_cast<index_t>(bucket.size()) >= config_.maxBatch) {
        dispatchBucket(sim, toShard, keyIdx);
      } else if (wasEmpty) {
        sim.schedule(now + config_.batchDelayUs * 1e-6, shard.node,
                     EventClass::kBatchWindow, me_, toShard, keyIdx,
                     static_cast<double>(shard.bucketGeneration[keyIdx]));
      }
      break;
    }
    case EventClass::kBatchWindow: {
      const index_t shardIdx = static_cast<index_t>(event.a);
      const index_t keyIdx = static_cast<index_t>(event.b);
      Shard& shard = shards_[static_cast<std::size_t>(shardIdx)];
      if (shard.crashed) {
        break;
      }
      const auto gen = static_cast<double>(shard.bucketGeneration[keyIdx]);
      if (gen != event.x) {
        break;  // the bucket this window armed for already dispatched
      }
      dispatchBucket(sim, shardIdx, keyIdx);
      break;
    }
    case EventClass::kSolveDone: {
      InFlightBatch& batch =
          batches_[static_cast<std::size_t>(event.a)];
      Shard& shard = shards_[static_cast<std::size_t>(batch.shard)];
      if (shard.crashed) {
        // The shard died mid-solve; surviving requests fail over.
        for (PendingRequest& req : batch.requests) {
          const auto stIt = reqState_.find(req.traceIndex);
          if (req.hedgeCopy ||
              (stIt != reqState_.end() && stIt->second.answered)) {
            ++stats_.hedgeWasted;  // the losing copy dies with the shard
            continue;
          }
          if (req.failovers >= config_.failoverLimit) {
            failCopy(req);
            continue;
          }
          const index_t next = routeShard(batch.keyIndex, now);
          if (next < 0) {
            failCopy(req);
            continue;
          }
          ++req.failovers;
          ++stats_.failovers;
          pendingMeta_[req.traceIndex] = req;
          const double hop = topology_->transferSeconds(
              shard.node, shardNode(next), config_.requestBytes,
              config_.shards);
          sim.schedule(now + hop, shardNode(next),
                       EventClass::kRequestArrival, me_, req.traceIndex,
                       next);
        }
        batch.requests.clear();
        break;
      }
      breaker_.onSuccess(sentinels_[static_cast<std::size_t>(batch.shard)]);
      // Completions heal a probing shard, but deliberately do NOT feed the
      // phi stream: a busy-but-slow shard completes constantly, and those
      // arrivals would mask the stretched pulse cadence that IS the
      // gray-failure signal. Only the periodic pulse carries it.
      if (config_.health.enabled &&
          healthMon_.state(batch.shard, now) ==
              serve::HealthState::kProbing) {
        healthMon_.onOutcome(batch.shard, true, now);
      }
      for (const PendingRequest& req : batch.requests) {
        if (!markAnswered(req.traceIndex)) {
          ++stats_.hedgeWasted;  // the other copy answered first
          continue;
        }
        if (req.hedgeCopy) {
          ++stats_.hedgeWins;
        }
        ++stats_.completed;
        ++shard.completed;
        stats_.queueWaitSeconds.push_back(batch.dispatchSeconds -
                                          req.arrivalSeconds);
        stats_.solveSeconds.push_back(batch.solveCost);
        stats_.totalSeconds.push_back(now - req.arrivalSeconds);
        pendingMeta_.erase(req.traceIndex);
      }
      batch.requests.clear();
      break;
    }
    case EventClass::kCrash:
      crashShard(sim, static_cast<index_t>(event.a));
      break;
    case EventClass::kResurrect: {
      Shard& shard = shards_[static_cast<std::size_t>(event.a)];
      shard.crashed = false;  // cold cache, healthy again
      shard.busyUntil = now;
      ++shard.pulseGeneration;
      breaker_.onSuccess(sentinels_[static_cast<std::size_t>(event.a)]);
      if (config_.health.enabled) {
        scheduleHeartbeat(sim, static_cast<index_t>(event.a));
      }
      break;
    }
    case EventClass::kSlowdown: {
      Shard& shard = shards_[static_cast<std::size_t>(event.a)];
      shard.slowFactor = std::min(shard.slowFactor, event.x);
      break;
    }
    case EventClass::kHeartbeat: {
      const index_t shardIdx = static_cast<index_t>(event.a);
      Shard& shard = shards_[static_cast<std::size_t>(shardIdx)];
      if (shard.crashed || event.b != shard.pulseGeneration) {
        break;  // stale pulse from before a crash/resurrect
      }
      healthMon_.heartbeat(shardIdx, now);
      ++stats_.heartbeats;
      if (!done()) {
        scheduleHeartbeat(sim, shardIdx);
      }
      break;
    }
    case EventClass::kHedgeFire:
      fireHedge(sim, static_cast<index_t>(event.a), now);
      break;
    default:
      HPLMXP_REQUIRE(false, "serve workload received a foreign event");
  }
  stats_.breakerTrips = breaker_.trips();
  if (config_.health.enabled) {
    stats_.quarantines = healthMon_.quarantines();
  }
}

ServeWorkload::ShardView ServeWorkload::shardView(index_t shard) const {
  HPLMXP_REQUIRE(shard >= 0 && shard < config_.shards, "shard out of range");
  const Shard& s = shards_[static_cast<std::size_t>(shard)];
  ShardView view;
  view.shard = shard;
  view.node = s.node;
  view.crashed = s.crashed;
  view.slowFactor = s.slowFactor;
  view.queuedRequests = s.queuedRequests;
  view.cachedKeys = static_cast<index_t>(s.cache.size());
  view.cachedMb = s.cacheBytes / (1024.0 * 1024.0);
  view.routed = s.routed;
  view.completed = s.completed;
  view.busyUntil = s.busyUntil;
  return view;
}

ServeWorkload::HealthView ServeWorkload::healthView(index_t shard,
                                                    double now) {
  HPLMXP_REQUIRE(shard >= 0 && shard < config_.shards, "shard out of range");
  const serve::ShardHealthMonitor::ShardSnapshot snap =
      healthMon_.shardSnapshot(shard, now);
  HealthView view;
  view.shard = shard;
  view.node = shards_[static_cast<std::size_t>(shard)].node;
  view.state = serve::toString(snap.state);
  view.phi = snap.phi;
  view.lastHeartbeatAge = snap.lastHeartbeatAge;
  view.heartbeats = snap.heartbeats;
  view.quarantines = snap.quarantines;
  return view;
}

}  // namespace hplmxp::fleetsim
