#include "fleetsim/lu_workload.h"

#include <algorithm>

namespace hplmxp::fleetsim {

void LuWorkloadConfig::validate(const Topology& topology) const {
  HPLMXP_REQUIRE(n > 0 && b > 0, "LU workload needs positive n and b");
  HPLMXP_REQUIRE(n % b == 0, "LU workload needs b | n");
  HPLMXP_REQUIRE(pr >= 1 && pc >= 1, "LU grid must be >= 1x1");
  HPLMXP_REQUIRE(pr * pc <= topology.nodes(),
                 "LU grid larger than the topology");
}

LuWorkload::LuWorkload(LuWorkloadConfig config, const Topology& topology)
    : config_(config),
      topology_(&topology),
      kernels_(topology.config().machine) {
  config_.validate(topology);
  stats_.totalIterations = config_.n / config_.b;
}

index_t LuWorkload::ownerNode(index_t k) const {
  // Block-cyclic diagonal ownership, rank = row * pc + col.
  const index_t row = k % config_.pr;
  const index_t col = k % config_.pc;
  return row * config_.pc + col;
}

double LuWorkload::effectiveMultiplier(index_t node) const {
  double m = topology_->nodeMultiplier(node);
  const auto it = injectedFactor_.find(node);
  if (it != injectedFactor_.end()) {
    m *= it->second;
  }
  return m;
}

double LuWorkload::slowestMultiplier() const {
  // A synchronous iteration advances at the pace of the slowest
  // participating rank (ranks occupy nodes [0, pr*pc)).
  double slowest = 1.0;
  for (index_t node = 0; node < config_.pr * config_.pc; ++node) {
    slowest = std::min(slowest, effectiveMultiplier(node));
  }
  return slowest;
}

double LuWorkload::iterationSeconds(index_t k, double* bcastOut,
                                    bool* commBoundOut) const {
  const double b = static_cast<double>(config_.b);
  const double trailing =
      static_cast<double>(config_.n - (k + 1) * config_.b);
  const double localTrailing =
      std::max(trailing / static_cast<double>(config_.pr), b);

  // Compute phases at the calibrated kernel rates, stalled by the
  // slowest participating rank.
  const double mult = slowestMultiplier();
  const double getrf =
      (2.0 / 3.0) * b * b * b / (kernels_.getrfRate(b) * mult);
  const double trsm = b * b * localTrailing /
                      (kernels_.trsmRate(b, localTrailing) * mult);
  const double gemm =
      2.0 * localTrailing * localTrailing * b /
      (kernels_.gemmRate(localTrailing, localTrailing, b) * mult);

  // Panel broadcast: the diagonal owner streams its b x localTrailing
  // low-precision panel along its grid row and column; every column peer
  // injects concurrently, sharing the rail set.
  const double panelBytes = 2.0 * b * localTrailing;  // fp16 storage
  const index_t root = ownerNode(k);
  double bcast = 0.0;
  for (index_t col = 0; col < config_.pc; ++col) {
    const index_t peer = (root / config_.pc) * config_.pc + col;
    bcast = std::max(bcast, topology_->transferSeconds(root, peer, panelBytes,
                                                       config_.pc));
  }
  for (index_t row = 0; row < config_.pr; ++row) {
    const index_t peer = row * config_.pc + root % config_.pc;
    bcast = std::max(bcast, topology_->transferSeconds(root, peer, panelBytes,
                                                       config_.pr));
  }

  // Look-ahead overlaps the broadcast with the trailing GEMM.
  const bool commBound = bcast > gemm;
  if (bcastOut != nullptr) *bcastOut = bcast;
  if (commBoundOut != nullptr) *commBoundOut = commBound;
  return getrf + trsm + std::max(bcast, gemm);
}

void LuWorkload::start(Simulator& sim) {
  me_ = sim.workloadIndex(this);
  sim.schedule(0.0, ownerNode(0), EventClass::kLuIteration, me_, 0);
}

void LuWorkload::scheduleSlowdown(Simulator& sim, double atSeconds,
                                  index_t node, double factor) {
  HPLMXP_REQUIRE(factor > 0.0 && factor <= 1.0,
                 "slowdown factor must be in (0, 1]");
  HPLMXP_REQUIRE(me_ >= 0, "LU workload not started yet");
  sim.schedule(atSeconds, node, EventClass::kSlowdown, me_, node, 0, factor);
}

void LuWorkload::handle(Simulator& sim, const Event& event) {
  switch (event.cls) {
    case EventClass::kLuIteration: {
      const index_t k = static_cast<index_t>(event.a);
      double bcast = 0.0;
      bool commBound = false;
      const double iter = iterationSeconds(k, &bcast, &commBound);
      stats_.iterations = k + 1;
      stats_.commSeconds += bcast;
      if (commBound) {
        ++stats_.commBoundIterations;
      }
      // Panel-arrival markers along the owner's grid row (kept sparse:
      // one per column peer, which is what the trace viewer wants to
      // see land).
      const index_t root = ownerNode(k);
      for (index_t col = 0; col < config_.pc; ++col) {
        const index_t peer = (root / config_.pc) * config_.pc + col;
        if (peer != root) {
          sim.schedule(sim.now() + bcast, peer, EventClass::kLuPanelArrival,
                       me_, k, peer);
        }
      }
      const double next = sim.now() + iter;
      if (k + 1 < stats_.totalIterations) {
        sim.schedule(next, ownerNode(k + 1), EventClass::kLuIteration, me_,
                     k + 1);
      } else {
        sim.schedule(next, root, EventClass::kLuDone, me_);
      }
      break;
    }
    case EventClass::kLuPanelArrival:
      break;  // trace marker only
    case EventClass::kLuDone:
      stats_.finished = true;
      stats_.factorSeconds = sim.now();
      break;
    case EventClass::kSlowdown: {
      const index_t node = static_cast<index_t>(event.a);
      auto [it, inserted] = injectedFactor_.try_emplace(node, event.x);
      if (!inserted) {
        it->second = std::min(it->second, event.x);
      }
      break;
    }
    default:
      HPLMXP_REQUIRE(false, "LU workload received a foreign event");
  }
}

}  // namespace hplmxp::fleetsim
