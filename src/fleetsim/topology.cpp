#include "fleetsim/topology.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace hplmxp::fleetsim {

const char* toString(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kFatTree: return "fat-tree";
    case TopologyKind::kDragonfly: return "dragonfly";
    case TopologyKind::kTorus: return "torus";
  }
  return "?";
}

TopologyKind topologyKindFromString(const std::string& name) {
  if (name == "fat-tree") return TopologyKind::kFatTree;
  if (name == "dragonfly") return TopologyKind::kDragonfly;
  if (name == "torus") return TopologyKind::kTorus;
  HPLMXP_REQUIRE(false, ("unknown topology kind: " + name).c_str());
  return TopologyKind::kFatTree;  // unreachable
}

TopologyConfig TopologyConfig::parse(const std::string& text) {
  TopologyConfig config;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream fields(line);
    std::string key, value;
    if (!(fields >> key)) {
      continue;  // blank / comment-only line
    }
    HPLMXP_REQUIRE(static_cast<bool>(fields >> value),
                   ("topology key without value: " + key).c_str());
    const auto num = [&] {
      std::size_t used = 0;
      const double v = std::stod(value, &used);
      HPLMXP_REQUIRE(used == value.size(),
                     ("malformed topology number: " + value).c_str());
      return v;
    };
    const auto integer = [&] { return static_cast<index_t>(num()); };
    if (key == "name") {
      config.name = value;
    } else if (key == "kind") {
      config.kind = topologyKindFromString(value);
    } else if (key == "nodes") {
      config.nodes = integer();
    } else if (key == "radix") {
      config.radix = integer();
    } else if (key == "group-size") {
      config.groupSize = integer();
    } else if (key == "torus-x") {
      config.torusX = integer();
    } else if (key == "torus-y") {
      config.torusY = integer();
    } else if (key == "torus-z") {
      config.torusZ = integer();
    } else if (key == "link-latency-us") {
      config.linkLatencyUs = num();
    } else if (key == "link-bandwidth-gbs") {
      config.linkBandwidthGBs = num();
    } else if (key == "rail-links") {
      config.railLinks = integer();
    } else if (key == "machine") {
      if (value == "summit") {
        config.machine = MachineKind::kSummit;
      } else if (value == "frontier") {
        config.machine = MachineKind::kFrontier;
      } else {
        HPLMXP_REQUIRE(false, ("unknown machine: " + value).c_str());
      }
    } else if (key == "variability-seed") {
      config.variability.seed = static_cast<std::uint64_t>(num());
    } else if (key == "variability-spread") {
      config.variability.spread = num();
    } else if (key == "slow-fraction") {
      config.variability.slowFraction = num();
    } else if (key == "slow-penalty") {
      config.variability.slowPenalty = num();
    } else {
      HPLMXP_REQUIRE(false, ("unknown topology key: " + key).c_str());
    }
  }
  config.validate();
  return config;
}

TopologyConfig TopologyConfig::load(const std::string& path) {
  std::ifstream in(path);
  HPLMXP_REQUIRE(in.good(), ("cannot open topology file: " + path).c_str());
  std::ostringstream text;
  text << in.rdbuf();
  return parse(text.str());
}

void TopologyConfig::validate() const {
  HPLMXP_REQUIRE(nodes >= 1, "topology needs >= 1 node");
  HPLMXP_REQUIRE(linkLatencyUs >= 0.0, "negative link latency");
  HPLMXP_REQUIRE(linkBandwidthGBs > 0.0, "link bandwidth must be positive");
  HPLMXP_REQUIRE(railLinks >= 1, "need >= 1 rail link");
  switch (kind) {
    case TopologyKind::kFatTree:
      HPLMXP_REQUIRE(radix >= 2, "fat-tree radix must be >= 2");
      break;
    case TopologyKind::kDragonfly:
      HPLMXP_REQUIRE(groupSize >= 1, "dragonfly group size must be >= 1");
      break;
    case TopologyKind::kTorus:
      HPLMXP_REQUIRE(torusX >= 1 && torusY >= 1 && torusZ >= 1,
                     "torus dimensions must be >= 1");
      HPLMXP_REQUIRE(torusX * torusY * torusZ == nodes,
                     "torus dimensions must multiply to the node count");
      break;
  }
}

Topology::Topology(TopologyConfig config)
    : config_(std::move(config)), variability_(config_.variability) {
  config_.validate();
  link_.alpha = config_.linkLatencyUs * 1e-6;
  link_.betaPerByte = 1.0 / (config_.linkBandwidthGBs * 1e9);
}

index_t Topology::hops(index_t from, index_t to) const {
  HPLMXP_REQUIRE(from >= 0 && from < config_.nodes, "node out of range");
  HPLMXP_REQUIRE(to >= 0 && to < config_.nodes, "node out of range");
  if (from == to) {
    return 0;
  }
  switch (config_.kind) {
    case TopologyKind::kFatTree: {
      if (from / config_.radix == to / config_.radix) {
        return 2;  // up to the shared leaf switch, down
      }
      const index_t pod = config_.radix * config_.radix;
      if (from / pod == to / pod) {
        return 4;  // leaf, aggregation, leaf
      }
      return 6;  // leaf, aggregation, core, aggregation, leaf
    }
    case TopologyKind::kDragonfly:
      if (from / config_.groupSize == to / config_.groupSize) {
        return 2;  // intra-group all-to-all via the group router
      }
      return 5;  // local router, global link, remote router
    case TopologyKind::kTorus: {
      const auto axis = [](index_t a, index_t b, index_t dim) {
        const index_t d = a > b ? a - b : b - a;
        return std::min(d, dim - d);  // wraparound
      };
      const index_t plane = config_.torusX * config_.torusY;
      const index_t fz = from / plane, tz = to / plane;
      const index_t fy = (from % plane) / config_.torusX;
      const index_t ty = (to % plane) / config_.torusX;
      const index_t fx = from % config_.torusX, tx = to % config_.torusX;
      return axis(fx, tx, config_.torusX) + axis(fy, ty, config_.torusY) +
             axis(fz, tz, config_.torusZ);
    }
  }
  return 0;
}

double Topology::transferSeconds(index_t from, index_t to, double bytes,
                                 index_t concurrentFlows) const {
  const index_t pathHops = hops(from, to);
  if (pathHops == 0) {
    return 0.0;
  }
  const double factor = congestionFactor(concurrentFlows, config_.railLinks);
  return static_cast<double>(pathHops) * link_.alpha +
         bytes * link_.betaPerByte * factor;
}

double Topology::nodeMultiplier(index_t node) const {
  return variability_.multiplier(node);
}

bool Topology::isDegraded(index_t node) const {
  return variability_.isDegraded(node);
}

double Topology::fleetMinMultiplier() const {
  return variability_.fleetMin(config_.nodes);
}

const MachineSpec& Topology::machineSpec() const {
  return hplmxp::machineSpec(config_.machine);
}

}  // namespace hplmxp::fleetsim
