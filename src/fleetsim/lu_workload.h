// Factorization workload: the scalesim per-iteration cost model replayed
// as discrete events on the fleet topology.
//
// Where scalesim::simulateRun folds Algorithm 1 into one closed-form sum,
// this workload walks the same block steps on the event heap: each
// kLuIteration event prices its phases with the calibrated KernelModel
// rates and the topology's link model, emits kLuPanelArrival markers at
// the row/column peers the panel broadcast reaches, and schedules the
// next step when the synchronous iteration completes. Because every
// iteration advances at the pace of the *slowest participating node*
// (GcdVariability multiplier x any injected kSlowdown penalties), a single
// slow node injected mid-run visibly stretches every subsequent
// iteration — the paper's pipeline-stall effect (Sec. VI-B) emerges from
// event timing rather than being asserted.
#pragma once

#include <map>
#include <vector>

#include "fleetsim/event_core.h"
#include "fleetsim/topology.h"
#include "perfmodel/kernel_model.h"

namespace hplmxp::fleetsim {

struct LuWorkloadConfig {
  index_t n = 4096;  // global order
  index_t b = 256;   // block size
  index_t pr = 4;    // rank grid rows (one rank per topology node)
  index_t pc = 4;

  void validate(const Topology& topology) const;
};

struct LuStats {
  index_t iterations = 0;
  index_t totalIterations = 0;
  double factorSeconds = 0.0;      // virtual time of the full sweep
  double commSeconds = 0.0;        // panel-broadcast share
  index_t commBoundIterations = 0; // bcast exceeded the trailing GEMM
  bool finished = false;
};

class LuWorkload final : public Workload {
 public:
  LuWorkload(LuWorkloadConfig config, const Topology& topology);

  [[nodiscard]] std::string name() const override { return "lu"; }
  void start(Simulator& sim) override;
  void handle(Simulator& sim, const Event& event) override;
  [[nodiscard]] bool done() const override { return stats_.finished; }

  [[nodiscard]] const LuStats& stats() const { return stats_; }
  [[nodiscard]] const LuWorkloadConfig& config() const { return config_; }

  /// Current effective multiplier of `node` (variability x injected
  /// slowdowns); the `show node` CLI view reads this.
  [[nodiscard]] double effectiveMultiplier(index_t node) const;

  /// Injects a slowdown: from virtual time `atSeconds`, node runs at
  /// `factor` of its nominal pace (factor in (0, 1]). Call before or
  /// during the run; takes effect via a kSlowdown event.
  void scheduleSlowdown(Simulator& sim, double atSeconds, index_t node,
                        double factor);

 private:
  [[nodiscard]] index_t ownerNode(index_t k) const;
  [[nodiscard]] double slowestMultiplier() const;
  [[nodiscard]] double iterationSeconds(index_t k, double* bcastOut,
                                        bool* commBoundOut) const;

  LuWorkloadConfig config_;
  const Topology* topology_;
  KernelModel kernels_;
  index_t me_ = -1;  // workload index in the simulator
  std::map<index_t, double> injectedFactor_;  // node -> penalty factor
  LuStats stats_;
};

}  // namespace hplmxp::fleetsim
