// Discrete-event core of the fleet co-simulator.
//
// One event heap, one virtual clock (a util ManualClock, so everything
// the simulator reuses — Timers, TaskGraph timelines, simmpi poll
// backoff — can read simulated time through the same ClockSource seam
// real code reads the wall clock through), and deterministic ordering:
// events execute in (time, node, seq) order, so two runs of the same
// configuration produce byte-identical event traces regardless of host
// speed or thread count. The FNV-1a hash over the executed trace is the
// determinism regression's oracle.
//
// Events are plain data — no std::function payloads. Each event names
// the Workload that owns it; the simulator dispatches by index. That
// keeps the heap cheap at the million-event scale a 100k-request replay
// produces, and makes every executed event hashable.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "util/clock.h"
#include "util/common.h"

namespace hplmxp::fleetsim {

enum class EventClass : std::uint8_t {
  kLuIteration,      // one block step of the factorization completes
  kLuPanelArrival,   // the broadcast panel lands on a peer rank
  kLuDone,           // factorization finished
  kRequestArrival,   // a solve request reaches its shard
  kBatchWindow,      // a batching window for one key expires
  kSolveDone,        // a dispatched batch finishes on a shard
  kCrash,            // a shard/node dies
  kResurrect,        // a crashed shard/node returns
  kSlowdown,         // a node's throughput multiplier degrades
  // Appended (never reordered): existing golden trace hashes depend on
  // the numeric values above.
  kHeartbeat,        // a shard's periodic liveness pulse (phi detector)
  kHedgeFire,        // a request's hedge delay expired (speculative copy)
};

[[nodiscard]] const char* toString(EventClass cls);

/// Parses the names toString emits (and the CLI accepts for `break`).
/// Throws CheckError on unknown names.
[[nodiscard]] EventClass eventClassFromString(const std::string& name);

/// One scheduled event. `seq` is the global admission counter — the
/// deterministic tie-breaker for simultaneous events and the trace's
/// causal order witness.
struct Event {
  double time = 0.0;
  index_t node = 0;
  std::uint64_t seq = 0;
  EventClass cls = EventClass::kLuIteration;
  index_t workload = -1;
  std::int64_t a = 0;  // payload (iteration k, request index, shard, ...)
  std::int64_t b = 0;  // payload (key index, generation, batch id, ...)
  double x = 0.0;      // payload (slowdown factor, cost seconds, ...)
};

class Simulator;

/// A workload plugs model logic into the event core: it schedules its
/// initial events in start() and reacts to its own events in handle()
/// (usually scheduling more).
class Workload {
 public:
  virtual ~Workload() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual void start(Simulator& sim) = 0;
  virtual void handle(Simulator& sim, const Event& event) = 0;
  [[nodiscard]] virtual bool done() const = 0;
};

/// A breakpoint matches PENDING events: the simulator stops *before*
/// executing a matching event, mgsim-style, so the CLI can inspect the
/// world the event is about to change.
struct Breakpoint {
  enum class Kind { kEventClass, kNode, kTime };
  Kind kind = Kind::kEventClass;
  EventClass cls = EventClass::kLuIteration;
  index_t node = 0;
  double time = 0.0;

  [[nodiscard]] bool matches(const Event& event) const;
  [[nodiscard]] std::string toString() const;
};

/// Why a run() stopped.
enum class StopReason { kExhausted, kBreakpoint, kTimeLimit, kEventLimit };

class Simulator {
 public:
  Simulator();

  /// Registers a workload (non-owning) and returns its dispatch index.
  index_t addWorkload(Workload* workload);

  /// Dispatch index of a registered workload (CheckError if foreign) —
  /// how a workload learns its own address inside start().
  [[nodiscard]] index_t workloadIndex(const Workload* workload) const;

  /// Calls start() on every registered workload (once).
  void startWorkloads();

  /// Enqueues an event at absolute virtual time `time` (>= now()).
  void schedule(double time, index_t node, EventClass cls, index_t workload,
                std::int64_t a = 0, std::int64_t b = 0, double x = 0.0);

  /// Executes exactly one event (ignoring breakpoints). Returns false
  /// when the heap is empty.
  bool step();

  /// Runs until the heap drains, a breakpoint fires, or `maxEvents`
  /// execute (-1 = unbounded).
  StopReason run(index_t maxEvents = -1);

  /// Runs until virtual time would exceed `time` (the first event later
  /// than `time` stays pending), a breakpoint fires, or the heap drains.
  StopReason runUntil(double time);

  // -- breakpoints -------------------------------------------------------
  index_t addBreakpoint(Breakpoint bp);
  void clearBreakpoints() { breakpoints_.clear(); }
  [[nodiscard]] const std::vector<Breakpoint>& breakpoints() const {
    return breakpoints_;
  }
  /// The pending event the last run() stopped in front of (valid after a
  /// kBreakpoint stop, until the next step/run).
  [[nodiscard]] const Event* breakEvent() const;

  // -- introspection -----------------------------------------------------
  [[nodiscard]] double now() const { return clock_.nowSeconds(); }
  [[nodiscard]] std::size_t pendingEvents() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t executedEvents() const { return executed_; }
  [[nodiscard]] const Event* peek() const;
  /// The virtual clock, exposed as a ClockSource so reused components
  /// (Timer, TaskGraph ExecOptions, simmpi poll backoff) can read
  /// simulated time.
  [[nodiscard]] const ManualClock& clock() const { return clock_; }

  // -- trace -------------------------------------------------------------
  /// Keeps the most recent `limit` executed events for `trace` display
  /// (the hash always covers ALL executed events).
  void setTraceLimit(std::size_t limit);
  [[nodiscard]] const std::deque<Event>& trace() const { return trace_; }
  /// FNV-1a over every executed event's (time bits, node, seq, class,
  /// workload, a, b, x bits) — the determinism oracle.
  [[nodiscard]] std::uint64_t traceHash() const { return traceHash_; }

 private:
  [[nodiscard]] bool heapLess(std::size_t i, std::size_t j) const;
  void heapPush(const Event& event);
  Event heapPop();
  void execute(const Event& event);
  [[nodiscard]] const Breakpoint* matchBreakpoint(const Event& event) const;

  std::vector<Event> heap_;  // binary min-heap by (time, node, seq)
  std::vector<Workload*> workloads_;
  std::vector<Breakpoint> breakpoints_;
  ManualClock clock_;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t traceHash_ = 14695981039346656037ull;  // FNV offset basis
  std::deque<Event> trace_;
  std::size_t traceLimit_ = 256;
  Event breakEvent_{};
  bool breakValid_ = false;
  std::uint64_t breakSeq_ = ~0ull;  // already-reported event; don't re-break
  bool started_ = false;
};

}  // namespace hplmxp::fleetsim
