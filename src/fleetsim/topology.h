// Link topologies for the fleet co-simulator.
//
// A topology file is the same "key value" text format the driver's
// config files use ('#' comments). It names a node-class from
// src/machine (summit | frontier), one of three link graphs, the
// alpha-beta link parameters, and the per-node variability model:
//
//   # 1056-node dragonfly of Frontier nodes
//   name      frontier-df
//   kind      dragonfly
//   nodes     1056
//   group-size 32
//   link-latency-us   4
//   link-bandwidth-gbs 25
//   machine   frontier
//   variability-spread 0.05
//
// Hop counts follow the classic structural distances:
//   * fat-tree (radix r): same leaf switch 2 hops, same pod (r^2 block)
//     4 hops, else 6 (up to the core and back down);
//   * dragonfly (groups of `group-size`): intra-group 2 hops, inter-group
//     5 (source router, global link, destination router);
//   * torus (X x Y x Z): wraparound Manhattan distance.
// Self-sends are 0 hops and therefore free (netsim's linkTransferTime
// edge contract).
#pragma once

#include <string>

#include "machine/machine.h"
#include "machine/variability.h"
#include "netsim/pipeline.h"
#include "util/common.h"

namespace hplmxp::fleetsim {

enum class TopologyKind { kFatTree, kDragonfly, kTorus };

[[nodiscard]] const char* toString(TopologyKind kind);
[[nodiscard]] TopologyKind topologyKindFromString(const std::string& name);

struct TopologyConfig {
  std::string name = "fleet";
  TopologyKind kind = TopologyKind::kFatTree;
  index_t nodes = 16;

  index_t radix = 8;       // fat-tree: nodes per leaf switch
  index_t groupSize = 16;  // dragonfly
  index_t torusX = 4, torusY = 4, torusZ = 1;

  double linkLatencyUs = 4.0;
  double linkBandwidthGBs = 25.0;
  index_t railLinks = 1;  // parallel rails; feeds congestionFactor

  MachineKind machine = MachineKind::kFrontier;
  VariabilityConfig variability;

  /// Parses the "key value" text form. Unknown keys throw CheckError —
  /// a typo'd topology file must not silently simulate the default.
  static TopologyConfig parse(const std::string& text);
  static TopologyConfig load(const std::string& path);
  void validate() const;
};

class Topology {
 public:
  explicit Topology(TopologyConfig config);

  [[nodiscard]] const TopologyConfig& config() const { return config_; }
  [[nodiscard]] index_t nodes() const { return config_.nodes; }
  [[nodiscard]] const LinkModel& link() const { return link_; }

  /// Structural hop count between two nodes (0 for self).
  [[nodiscard]] index_t hops(index_t from, index_t to) const;

  /// Transfer time of `bytes` between two nodes with `concurrentFlows`
  /// competing for the same rail set: per-hop latency plus the bandwidth
  /// term derated by netsim's congestionFactor.
  [[nodiscard]] double transferSeconds(index_t from, index_t to, double bytes,
                                       index_t concurrentFlows = 0) const;

  /// Deterministic per-node throughput multiplier (machine/variability).
  [[nodiscard]] double nodeMultiplier(index_t node) const;
  [[nodiscard]] bool isDegraded(index_t node) const;
  /// Slowest multiplier across the fleet — the synchronous-LU stall pace.
  [[nodiscard]] double fleetMinMultiplier() const;

  [[nodiscard]] const MachineSpec& machineSpec() const;

 private:
  TopologyConfig config_;
  LinkModel link_;
  GcdVariability variability_;
};

}  // namespace hplmxp::fleetsim
