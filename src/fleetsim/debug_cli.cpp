#include "fleetsim/debug_cli.h"

#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

namespace hplmxp::fleetsim {

DebugCli::DebugCli(FleetSession& session, std::istream& in, std::ostream& out)
    : session_(&session), in_(&in), out_(&out) {}

int DebugCli::runLoop() {
  std::string line;
  *out_ << "fleetsim: " << session_->topology().nodes() << " nodes, "
        << session_->sim().pendingEvents() << " pending events\n";
  while (true) {
    *out_ << "(fleetsim) " << std::flush;
    if (!std::getline(*in_, line)) {
      break;
    }
    if (!execute(line)) {
      break;
    }
  }
  return errors_;
}

void DebugCli::printEvent(const Event& event) {
  *out_ << std::fixed << std::setprecision(3) << "  [" << event.time * 1e3
        << "ms] node " << event.node << " " << toString(event.cls) << " (a="
        << event.a << " b=" << event.b << " seq=" << event.seq << ")\n";
  out_->unsetf(std::ios_base::floatfield);
}

void DebugCli::reportStop(StopReason reason) {
  switch (reason) {
    case StopReason::kExhausted:
      *out_ << "event heap exhausted at " << session_->sim().now() * 1e3
            << "ms\n";
      break;
    case StopReason::kBreakpoint: {
      const Event* event = session_->sim().breakEvent();
      *out_ << "breakpoint hit; next event:\n";
      if (event != nullptr) {
        printEvent(*event);
      }
      break;
    }
    case StopReason::kTimeLimit:
      *out_ << "time limit reached at " << session_->sim().now() * 1e3
            << "ms\n";
      break;
    case StopReason::kEventLimit:
      break;
  }
}

void DebugCli::cmdStep(std::istringstream& args) {
  index_t count = 1;
  args >> count;
  HPLMXP_REQUIRE(count >= 1, "step count must be >= 1");
  for (index_t i = 0; i < count; ++i) {
    const Event* next = session_->sim().peek();
    if (next == nullptr) {
      *out_ << "event heap exhausted\n";
      break;
    }
    const Event shown = *next;
    session_->sim().step();
    printEvent(shown);
  }
}

void DebugCli::cmdRun() { reportStop(session_->sim().run()); }

void DebugCli::cmdRunUntil(std::istringstream& args) {
  double ms = 0.0;
  HPLMXP_REQUIRE(static_cast<bool>(args >> ms), "run-until needs a time (ms)");
  reportStop(session_->sim().runUntil(ms * 1e-3));
}

void DebugCli::cmdBreak(std::istringstream& args) {
  std::string what;
  HPLMXP_REQUIRE(static_cast<bool>(args >> what),
                 "break needs class|node|time");
  Breakpoint bp;
  if (what == "class") {
    std::string name;
    HPLMXP_REQUIRE(static_cast<bool>(args >> name),
                   "break class needs an event class name");
    bp.kind = Breakpoint::Kind::kEventClass;
    bp.cls = eventClassFromString(name);
  } else if (what == "node") {
    bp.kind = Breakpoint::Kind::kNode;
    HPLMXP_REQUIRE(static_cast<bool>(args >> bp.node),
                   "break node needs a node index");
  } else if (what == "time") {
    double ms = 0.0;
    HPLMXP_REQUIRE(static_cast<bool>(args >> ms),
                   "break time needs a time (ms)");
    bp.kind = Breakpoint::Kind::kTime;
    bp.time = ms * 1e-3;
  } else {
    HPLMXP_REQUIRE(false, ("unknown break kind: " + what).c_str());
  }
  const index_t id = session_->sim().addBreakpoint(bp);
  *out_ << "breakpoint " << id << ": " << bp.toString() << "\n";
}

void DebugCli::cmdTrace(std::istringstream& args) {
  std::size_t count = 10;
  args >> count;
  const std::deque<Event>& trace = session_->sim().trace();
  const std::size_t shown = std::min(count, trace.size());
  *out_ << "last " << shown << " of " << session_->sim().executedEvents()
        << " executed events (hash " << std::hex
        << session_->sim().traceHash() << std::dec << "):\n";
  for (std::size_t i = trace.size() - shown; i < trace.size(); ++i) {
    printEvent(trace[i]);
  }
}

void DebugCli::cmdShow(std::istringstream& args) {
  std::string what;
  index_t id = 0;
  HPLMXP_REQUIRE(static_cast<bool>(args >> what >> id),
                 "show needs: node|shard|cache|queue|health <index>");
  if (what == "node") {
    const Topology& topo = session_->topology();
    *out_ << "node " << id << ": multiplier "
          << topo.nodeMultiplier(id) << (topo.isDegraded(id)
                                             ? " (degraded die)"
                                             : "");
    if (session_->lu() != nullptr) {
      *out_ << ", effective " << session_->lu()->effectiveMultiplier(id);
    }
    *out_ << "\n";
    return;
  }
  HPLMXP_REQUIRE(session_->serve() != nullptr,
                 "no serve workload in this session");
  const ServeWorkload::ShardView view = session_->serve()->shardView(id);
  if (what == "shard") {
    *out_ << "shard " << view.shard << " @ node " << view.node << ": "
          << (view.crashed ? "crashed" : "healthy") << ", slow-factor "
          << view.slowFactor << ", routed " << view.routed << ", completed "
          << view.completed << ", busy-until " << view.busyUntil * 1e3
          << "ms\n";
  } else if (what == "cache") {
    *out_ << "shard " << view.shard << " cache: " << view.cachedKeys
          << " keys, " << view.cachedMb << " MB resident\n";
  } else if (what == "queue") {
    *out_ << "shard " << view.shard << " queue: " << view.queuedRequests
          << " pending requests\n";
  } else if (what == "health") {
    const ServeWorkload::HealthView health =
        session_->serve()->healthView(id, session_->sim().now());
    *out_ << "shard " << health.shard << " @ node " << health.node
          << ": state " << health.state << ", phi " << health.phi
          << ", last heartbeat " << health.lastHeartbeatAge * 1e3
          << "ms ago, heartbeats " << health.heartbeats << ", quarantines "
          << health.quarantines << "\n";
  } else {
    HPLMXP_REQUIRE(false, ("unknown show target: " + what).c_str());
  }
}

void DebugCli::cmdStats() { *out_ << session_->report().toJson(); }

bool DebugCli::execute(const std::string& line) {
  std::istringstream args(line);
  std::string cmd;
  if (!(args >> cmd) || cmd[0] == '#') {
    return true;  // blank line / script comment
  }
  try {
    if (cmd == "quit" || cmd == "exit") {
      return false;
    } else if (cmd == "help") {
      *out_ << "commands: step [n] | run | run-until <ms> | break "
               "class|node|time <arg> | breaks | clear-breaks | trace [n] | "
               "show node|shard|cache|queue|health <i> | stats | quit\n";
    } else if (cmd == "step") {
      cmdStep(args);
    } else if (cmd == "run") {
      cmdRun();
    } else if (cmd == "run-until") {
      cmdRunUntil(args);
    } else if (cmd == "break") {
      cmdBreak(args);
    } else if (cmd == "breaks") {
      const std::vector<Breakpoint>& bps = session_->sim().breakpoints();
      for (std::size_t i = 0; i < bps.size(); ++i) {
        *out_ << "breakpoint " << i << ": " << bps[i].toString() << "\n";
      }
    } else if (cmd == "clear-breaks") {
      session_->sim().clearBreakpoints();
      *out_ << "breakpoints cleared\n";
    } else if (cmd == "trace") {
      cmdTrace(args);
    } else if (cmd == "show") {
      cmdShow(args);
    } else if (cmd == "stats") {
      cmdStats();
    } else {
      HPLMXP_REQUIRE(false, ("unknown command: " + cmd).c_str());
    }
  } catch (const CheckError& error) {
    ++errors_;
    *out_ << "error: " << error.what() << "\n";
  }
  return true;
}

}  // namespace hplmxp::fleetsim
