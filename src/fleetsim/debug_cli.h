// Interactive debugger over a fleet co-simulation, mgsim-style.
//
// The CLI drives one FleetSession through a line protocol that works
// identically on a terminal and on a --script file (the CI mode):
//
//   step [N]            execute N events (default 1), printing each
//   run                 run to exhaustion or the next breakpoint
//   run-until <ms>      run until virtual time reaches <ms>
//   break class <name>  break before events of a class (e.g. crash)
//   break node <i>      break before events on node i
//   break time <ms>     break before crossing a virtual instant
//   breaks | clear-breaks
//   trace [N]           show the last N executed events (default 10)
//   show node <i>       node health: multiplier, degraded flag
//   show shard <i>      shard state machine snapshot
//   show cache <i>      shard i's cache occupancy
//   show queue <i>      shard i's queued request count
//   stats               the full report (counters + percentiles)
//   help | quit
//
// Commands never throw across the loop: errors print and the session
// continues, so a typo mid-postmortem does not lose simulator state.
#pragma once

#include <iosfwd>
#include <string>

#include "fleetsim/fleet_sim.h"

namespace hplmxp::fleetsim {

class DebugCli {
 public:
  DebugCli(FleetSession& session, std::istream& in, std::ostream& out);

  /// Reads commands until quit/EOF. Returns the number of commands that
  /// failed (0 = a clean scripted session; the CI gate checks this).
  int runLoop();

  /// Executes one command line. Returns false when the session should
  /// end (quit). Malformed commands print an error and return true.
  bool execute(const std::string& line);

  [[nodiscard]] int errors() const { return errors_; }

 private:
  void printEvent(const Event& event);
  void cmdStep(std::istringstream& args);
  void cmdRun();
  void cmdRunUntil(std::istringstream& args);
  void cmdBreak(std::istringstream& args);
  void cmdTrace(std::istringstream& args);
  void cmdShow(std::istringstream& args);
  void cmdStats();
  void reportStop(StopReason reason);

  FleetSession* session_;
  std::istream* in_;
  std::ostream* out_;
  int errors_ = 0;
};

}  // namespace hplmxp::fleetsim
