// Network timing models for the panel broadcasts (Sec. IV-B, Fig. 8).
//
// The model layers, matching the paper's communication-optimization study:
//
//   * Base per-node injection bandwidth NBN from Table I (Summit 12.5 GB/s
//     per direction over 2 EDR NICs, Frontier 25 GB/s over 4 Slingshot-11).
//   * Port binding (Summit): without binding, both sockets funnel traffic
//     through one NIC; binding ranks to their socket's NIC roughly halves
//     contention (the paper measures 35.6-59.7% end-to-end gains).
//   * GPU-aware MPI (Frontier): NICs are attached to the GPUs, so staging
//     through host memory costs extra copies and bandwidth (40.3-56.6%
//     end-to-end gains when eliminated).
//   * NIC sharing (Eq. 5): the Qr (resp. Qc) ranks of a node that sit in
//     the same process column (row) receive the same panel family through
//     the shared NICs, multiplying the per-node volume.
//   * Strategy efficiency: Spectrum MPI's tree broadcast is highly tuned
//     for Summit's fat tree (rings are 2.3-11.5% *slower* there), while
//     Frontier's early MPI broadcast underperforms and pipelined rings win
//     by 20-34.4%, Ring2M best (Finding 6). IBcast on Summit is
//     catastrophically slow (the paper's 603% worst-to-best spread).
#pragma once

#include "grid/process_grid.h"
#include "machine/machine.h"
#include "simmpi/ring_bcast.h"
#include "util/common.h"

namespace hplmxp {

struct NetworkConfig {
  MachineKind machine = MachineKind::kFrontier;
  bool portBinding = true;   // Summit knob (ignored on Frontier)
  bool gpuAwareMpi = true;   // Frontier knob (ignored on Summit)
};

/// Broadcast/communication time model for one machine configuration.
class BcastModel {
 public:
  explicit BcastModel(NetworkConfig config);

  /// Effective per-node injection bandwidth (bytes/s) after the port
  /// binding / GPU-aware adjustments.
  [[nodiscard]] double effectiveNodeBandwidth() const;

  /// Bandwidth efficiency of a strategy on this machine, in (0, 1].
  [[nodiscard]] double strategyEfficiency(simmpi::BcastStrategy s) const;

  /// Startup/latency term of one broadcast over `p` ranks (seconds).
  [[nodiscard]] double strategyLatency(simmpi::BcastStrategy s,
                                       index_t p) const;

  /// Time for one panel broadcast of `bytes` along a row or column of `p`
  /// ranks, where `sharers` ranks per node receive the same panel family
  /// through the shared NICs (Qr or Qc of Eq. 5).
  [[nodiscard]] double panelBcastTime(simmpi::BcastStrategy s, double bytes,
                                      index_t p, index_t sharers) const;

  /// Time for the (small, synchronous) diagonal broadcast pair.
  [[nodiscard]] double diagBcastTime(double bytes, index_t p) const;

  [[nodiscard]] const NetworkConfig& config() const { return config_; }

 private:
  NetworkConfig config_;
};

}  // namespace hplmxp
