// Closed-form pipeline timing of the broadcast algorithms.
//
// The netsim BcastModel prices strategies with calibrated efficiency
// factors; this module derives the *mechanism* behind them from first
// principles, using the classic alpha-beta (latency-bandwidth) model the
// HPL literature the paper cites uses:
//
//   * an unpipelined binomial tree moves the whole message ceil(log2 P)
//     times in sequence: T = ceil(log2 P) * (alpha + M*beta);
//   * a pipelined ring splits the message into S segments and streams
//     them: the last rank finishes after the pipeline fills (P-2 hops)
//     plus S segment slots: T = (S + P - 2) * (alpha + (M/S)*beta), with
//     an optimal segment count S* = sqrt(M*beta*(P-2)/alpha);
//   * the modified ring (1M) removes the first neighbour from the chain
//     (it receives the full message directly), shortening both the chain
//     and, crucially, the *critical path to the next diagonal owner*;
//   * the double ring (2M) halves the chain length by streaming both
//     halves of the ring concurrently.
//
// For HPL-AI panel sizes (tens of MB), the ring's asymptotic cost
// approaches M*beta — ceil(log2 P)x better than the unpipelined tree —
// which is exactly why hand-rolled rings beat an unpipelined library
// broadcast (Frontier, Finding 6), while a good library tree that already
// pipelines internally (Summit's Spectrum MPI) leaves rings nothing to
// win (Finding 6's flip side).
#pragma once

#include "simmpi/ring_bcast.h"
#include "util/common.h"

namespace hplmxp {

/// alpha-beta link parameters.
struct LinkModel {
  double alpha = 4e-6;     // per-message latency (s)
  double betaPerByte = 0;  // inverse bandwidth (s/byte)
};

/// One point-to-point transfer of `bytes` over a path of `hops` links —
/// the fleet simulator's bandwidth oracle. Edge semantics:
///   * self-sends (hops == 0) are free: the payload never leaves the
///     node, a memcpy the alpha-beta model does not price;
///   * zero-byte messages still pay the per-hop latency alpha (a pure
///     synchronization/credit message);
///   * the bandwidth term is paid once (store-and-forward latency is the
///     per-hop alpha; large transfers pipeline through the path).
double linkTransferTime(const LinkModel& link, double bytes, index_t hops);

/// Congestion derating factor >= 1 for `flows` concurrent flows sharing
/// `links` parallel links: 1 while under-subscribed (each flow has a link
/// to itself), flows/links once saturated — past saturation the fabric
/// splits bandwidth evenly, so transfer time scales linearly with the
/// oversubscription ratio. flows == 0 (pricing a transfer that is itself
/// the only traffic) costs nothing extra.
double congestionFactor(index_t flows, index_t links);

/// Completion time of an UNPIPELINED binomial-tree broadcast.
double treeBcastTime(const LinkModel& link, double bytes, index_t p);

/// Completion time of a PIPELINED tree broadcast with S segments (what a
/// well-tuned vendor library does internally).
double pipelinedTreeBcastTime(const LinkModel& link, double bytes, index_t p,
                              index_t segments);

/// Completion time of a pipelined chain (ring) broadcast over `chainLen`
/// hops with S segments.
double ringBcastTime(const LinkModel& link, double bytes, index_t chainLen,
                     index_t segments);

/// Optimal segment count for a pipelined chain (sqrt rule), >= 1.
index_t optimalSegments(const LinkModel& link, double bytes,
                        index_t chainLen);

/// Completion time of a strategy with optimal segmentation, matching the
/// structure of the simmpi implementations (Ring1 chain P-1; Ring1M leaf +
/// chain P-2; Ring2M leaf + two chains of ~(P-2)/2).
double strategyPipelineTime(const LinkModel& link,
                            simmpi::BcastStrategy strategy, double bytes,
                            index_t p);

/// Time until the NEXT DIAGONAL OWNER (the root's first neighbour) holds
/// the full message — the critical-path latency the modified rings are
/// designed to shrink (Sec. IV-B "Communicator Choice").
double criticalPathTime(const LinkModel& link,
                        simmpi::BcastStrategy strategy, double bytes,
                        index_t p);

}  // namespace hplmxp
