#include "netsim/pipeline.h"

#include <cmath>

namespace hplmxp {

double linkTransferTime(const LinkModel& link, double bytes, index_t hops) {
  HPLMXP_REQUIRE(bytes >= 0.0, "negative message size");
  HPLMXP_REQUIRE(hops >= 0, "negative hop count");
  if (hops == 0) {
    return 0.0;  // self-send: never leaves the node
  }
  return static_cast<double>(hops) * link.alpha + bytes * link.betaPerByte;
}

double congestionFactor(index_t flows, index_t links) {
  HPLMXP_REQUIRE(links >= 1, "need at least one link");
  HPLMXP_REQUIRE(flows >= 0, "negative flow count");
  if (flows <= links) {
    return 1.0;
  }
  return static_cast<double>(flows) / static_cast<double>(links);
}

double treeBcastTime(const LinkModel& link, double bytes, index_t p) {
  if (p <= 1) {
    return 0.0;
  }
  const double depth = std::ceil(std::log2(static_cast<double>(p)));
  return depth * (link.alpha + bytes * link.betaPerByte);
}

double pipelinedTreeBcastTime(const LinkModel& link, double bytes, index_t p,
                              index_t segments) {
  if (p <= 1) {
    return 0.0;
  }
  HPLMXP_REQUIRE(segments >= 1, "need at least one segment");
  const double depth = std::ceil(std::log2(static_cast<double>(p)));
  const double slot =
      link.alpha + bytes / static_cast<double>(segments) * link.betaPerByte;
  // Last leaf finishes after the tree fills (depth slots) plus the
  // remaining segments stream through.
  return (depth + static_cast<double>(segments - 1)) * slot;
}

double ringBcastTime(const LinkModel& link, double bytes, index_t chainLen,
                     index_t segments) {
  if (chainLen <= 0) {
    return 0.0;
  }
  HPLMXP_REQUIRE(segments >= 1, "need at least one segment");
  const double slot =
      link.alpha + bytes / static_cast<double>(segments) * link.betaPerByte;
  // Fill the chain (chainLen-1 forwarding hops) then stream the rest.
  return (static_cast<double>(chainLen - 1) +
          static_cast<double>(segments)) *
         slot;
}

index_t optimalSegments(const LinkModel& link, double bytes,
                        index_t chainLen) {
  if (chainLen <= 1 || bytes <= 0.0 || link.alpha <= 0.0) {
    return 1;
  }
  const double s = std::sqrt(bytes * link.betaPerByte *
                             static_cast<double>(chainLen - 1) / link.alpha);
  return std::max<index_t>(1, static_cast<index_t>(std::llround(s)));
}

namespace {
double bestRingTime(const LinkModel& link, double bytes, index_t chainLen) {
  if (chainLen <= 0) {
    return 0.0;
  }
  return ringBcastTime(link, bytes, chainLen,
                       optimalSegments(link, bytes, chainLen));
}
}  // namespace

double strategyPipelineTime(const LinkModel& link,
                            simmpi::BcastStrategy strategy, double bytes,
                            index_t p) {
  using simmpi::BcastStrategy;
  if (p <= 1) {
    return 0.0;
  }
  switch (strategy) {
    case BcastStrategy::kBcast:
    case BcastStrategy::kIbcast:
      return treeBcastTime(link, bytes, p);
    case BcastStrategy::kRing1:
      return bestRingTime(link, bytes, p - 1);
    case BcastStrategy::kRing1M: {
      // The root sends the leaf its full copy concurrently with feeding
      // the chain of the remaining P-2 ranks.
      const double leaf = link.alpha + bytes * link.betaPerByte;
      return std::max(leaf, bestRingTime(link, bytes, p - 2));
    }
    case BcastStrategy::kRing2M: {
      const double leaf = link.alpha + bytes * link.betaPerByte;
      const index_t half = (p - 2 + 1) / 2;
      return std::max(leaf, bestRingTime(link, bytes, half));
    }
  }
  return 0.0;
}

double criticalPathTime(const LinkModel& link,
                        simmpi::BcastStrategy strategy, double bytes,
                        index_t p) {
  using simmpi::BcastStrategy;
  if (p <= 1) {
    return 0.0;
  }
  switch (strategy) {
    case BcastStrategy::kBcast:
    case BcastStrategy::kIbcast:
      // The first neighbour is one tree hop away but the message is not
      // segmented: it waits for the full transfer.
      return link.alpha + bytes * link.betaPerByte;
    case BcastStrategy::kRing1: {
      // The neighbour receives segment-by-segment but must forward each:
      // it holds the full panel only after all segments passed through.
      const index_t s = optimalSegments(link, bytes, p - 1);
      return static_cast<double>(s) *
             (link.alpha + bytes / static_cast<double>(s) *
                               link.betaPerByte);
    }
    case BcastStrategy::kRing1M:
    case BcastStrategy::kRing2M:
      // The modified rings hand the neighbour one dedicated full-message
      // send and relieve it of forwarding duty.
      return link.alpha + bytes * link.betaPerByte;
  }
  return 0.0;
}

}  // namespace hplmxp
