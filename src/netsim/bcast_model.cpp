#include "netsim/bcast_model.h"

#include <cmath>

namespace hplmxp {

namespace {
// MPI message latencies (rendezvous setup per hop), seconds.
constexpr double kHopLatencySummit = 6e-6;
constexpr double kHopLatencyFrontier = 4e-6;
}  // namespace

BcastModel::BcastModel(NetworkConfig config) : config_(config) {}

double BcastModel::effectiveNodeBandwidth() const {
  const MachineSpec& spec = machineSpec(config_.machine);
  double bw = spec.nicGBsPerNodeEachWay * 1e9;
  if (config_.machine == MachineKind::kSummit && !config_.portBinding) {
    // Unbound ranks contend for one socket's NIC: ~35-60% end-to-end loss.
    bw *= 0.62;
  }
  if (config_.machine == MachineKind::kFrontier && !config_.gpuAwareMpi) {
    // Host staging (GPU -> CPU -> NIC) costs extra copies and PCIe hops;
    // with the NIC attached to the GPU the detour is expensive enough to
    // produce the paper's 40-56% end-to-end loss (Finding 7).
    bw *= 0.36;
  }
  return bw;
}

double BcastModel::strategyEfficiency(simmpi::BcastStrategy s) const {
  using simmpi::BcastStrategy;
  if (config_.machine == MachineKind::kSummit) {
    // Spectrum MPI: excellent tree broadcast on the fat tree, unusable
    // nonblocking broadcast; rings slightly below the tuned tree.
    switch (s) {
      case BcastStrategy::kBcast: return 0.92;
      case BcastStrategy::kIbcast: return 0.24;
      case BcastStrategy::kRing1: return 0.82;
      case BcastStrategy::kRing1M: return 0.85;
      case BcastStrategy::kRing2M: return 0.88;
    }
  } else {
    // Early Cray MPICH on Slingshot-11: the library broadcast badly
    // underperforms the link rate, which is why hand-rolled pipelined
    // rings win by 20-34% END TO END (Finding 6).
    switch (s) {
      case BcastStrategy::kBcast: return 0.33;
      case BcastStrategy::kIbcast: return 0.30;
      case BcastStrategy::kRing1: return 0.60;
      case BcastStrategy::kRing1M: return 0.66;
      case BcastStrategy::kRing2M: return 0.74;
    }
  }
  return 0.5;
}

double BcastModel::strategyLatency(simmpi::BcastStrategy s, index_t p) const {
  using simmpi::BcastStrategy;
  const double hop = config_.machine == MachineKind::kSummit
                         ? kHopLatencySummit
                         : kHopLatencyFrontier;
  const double pd = static_cast<double>(std::max<index_t>(p, 2));
  switch (s) {
    case BcastStrategy::kBcast:
    case BcastStrategy::kIbcast:
      return hop * std::ceil(std::log2(pd));
    case BcastStrategy::kRing1:
      return hop * (pd - 1.0);  // pipeline fill across the whole ring
    case BcastStrategy::kRing1M:
      return hop * (pd - 2.0 > 0.0 ? pd - 2.0 : 1.0);
    case BcastStrategy::kRing2M:
      return hop * (pd / 2.0);  // two concurrent half rings
  }
  return hop;
}

double BcastModel::panelBcastTime(simmpi::BcastStrategy s, double bytes,
                                  index_t p, index_t sharers) const {
  HPLMXP_REQUIRE(bytes >= 0.0 && p >= 1 && sharers >= 1,
                 "invalid broadcast parameters");
  if (p == 1) {
    return 0.0;
  }
  const double perRankBw =
      effectiveNodeBandwidth() / static_cast<double>(sharers);
  return bytes / (perRankBw * strategyEfficiency(s)) + strategyLatency(s, p);
}

double BcastModel::diagBcastTime(double bytes, index_t p) const {
  if (p == 1) {
    return 0.0;
  }
  // Small message: latency-dominated tree; full node bandwidth applies.
  return bytes / effectiveNodeBandwidth() +
         strategyLatency(simmpi::BcastStrategy::kBcast, p);
}

}  // namespace hplmxp
