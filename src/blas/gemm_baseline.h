// The pre-rewrite cache-blocked GEMM, retained verbatim as an oracle.
//
// The register-blocked kernel in gemm.cpp must produce bitwise-identical
// results to this implementation (both accumulate each C element in
// ascending-k order with the same per-step arithmetic), which is what lets
// the scheduler-equivalence suite and the IR trajectory stay stable across
// the rewrite. Tests assert the identity; the kernel benchmarks use this
// as the before/after baseline. Not for production call sites.
#pragma once

#include "blas/types.h"
#include "fp16/half.h"
#include "util/common.h"
#include "util/thread_pool.h"

namespace hplmxp::blas::baseline {

void sgemm(Trans transA, Trans transB, index_t m, index_t n, index_t k,
           float alpha, const float* a, index_t lda, const float* b,
           index_t ldb, float beta, float* c, index_t ldc,
           ThreadPool* pool = nullptr);

void dgemm(Trans transA, Trans transB, index_t m, index_t n, index_t k,
           double alpha, const double* a, index_t lda, const double* b,
           index_t ldb, double beta, double* c, index_t ldc,
           ThreadPool* pool = nullptr);

void gemmMixed(Trans transA, Trans transB, index_t m, index_t n, index_t k,
               float alpha, const half16* a, index_t lda, const half16* b,
               index_t ldb, float beta, float* c, index_t ldc,
               ThreadPool* pool = nullptr);

}  // namespace hplmxp::blas::baseline
