// Naive reference kernels. These are deliberately simple (triple loops, no
// blocking, no threading) and serve as the oracle for the optimized kernels
// in the test suite.
#pragma once

#include <vector>

#include "blas/types.h"
#include "fp16/half.h"
#include "util/common.h"

namespace hplmxp::blas::ref {

/// C = alpha * op(A) * op(B) + beta * C, any arithmetic type T.
template <typename T>
void gemm(Trans ta, Trans tb, index_t m, index_t n, index_t k, T alpha,
          const T* a, index_t lda, const T* b, index_t ldb, T beta, T* c,
          index_t ldc) {
  auto opA = [&](index_t i, index_t l) {
    return ta == Trans::kNoTrans ? a[i + l * lda] : a[l + i * lda];
  };
  auto opB = [&](index_t l, index_t j) {
    return tb == Trans::kNoTrans ? b[l + j * ldb] : b[j + l * ldb];
  };
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      T acc{0};
      for (index_t l = 0; l < k; ++l) {
        acc += opA(i, l) * opB(l, j);
      }
      T& cij = c[i + j * ldc];
      cij = alpha * acc + (beta == T{0} ? T{0} : beta * cij);
    }
  }
}

/// Mixed reference: half16 inputs widened per element, FP32 accumulate.
void gemmMixed(Trans ta, Trans tb, index_t m, index_t n, index_t k,
               float alpha, const half16* a, index_t lda, const half16* b,
               index_t ldb, float beta, float* c, index_t ldc);

/// Order-exact mixed oracle for the optimized gemmLowp kernel: scalar
/// triple loop that mirrors gemmCore's arithmetic EXACTLY — beta-scale of
/// C up front, alpha folded into each widened B element (one multiply per
/// step, matching packBStrip), then ascending-k fused accumulation with
/// one mul-add per step. Because gemmCore's determinism contract fixes
/// that order regardless of threads or blocking, the optimized kernel
/// must match this oracle BITWISE for every storage type.
template <typename TLow>
void gemmLowpOrderExact(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                        float alpha, const TLow* a, index_t lda,
                        const TLow* b, index_t ldb, float beta, float* c,
                        index_t ldc) {
  auto opA = [&](index_t i, index_t l) {
    return ta == Trans::kNoTrans ? a[i + l * lda] : a[l + i * lda];
  };
  auto opB = [&](index_t l, index_t j) {
    return tb == Trans::kNoTrans ? b[l + j * ldb] : b[j + l * ldb];
  };
  // beta phase, identical to gemmCore's up-front pass.
  for (index_t j = 0; j < n; ++j) {
    float* col = c + j * ldc;
    if (beta == 0.0f) {
      for (index_t i = 0; i < m; ++i) {
        col[i] = 0.0f;
      }
    } else if (beta != 1.0f) {
      for (index_t i = 0; i < m; ++i) {
        col[i] *= beta;
      }
    }
  }
  if (k == 0 || alpha == 0.0f) {
    return;
  }
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      float acc = c[i + j * ldc];
      for (index_t l = 0; l < k; ++l) {
        const float av = static_cast<float>(opA(i, l));
        const float bv = alpha * static_cast<float>(opB(l, j));
        acc += av * bv;
      }
      c[i + j * ldc] = acc;
    }
  }
}

/// Triangular solve oracle (no transpose).
template <typename T>
void trsm(Side side, Uplo uplo, Diag diag, index_t m, index_t n, T alpha,
          const T* a, index_t lda, T* b, index_t ldb) {
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      b[i + j * ldb] *= alpha;
    }
  }
  if (side == Side::kLeft) {
    for (index_t j = 0; j < n; ++j) {
      T* x = b + j * ldb;
      if (uplo == Uplo::kLower) {
        for (index_t i = 0; i < m; ++i) {
          T acc = x[i];
          for (index_t l = 0; l < i; ++l) {
            acc -= a[i + l * lda] * x[l];
          }
          x[i] = diag == Diag::kUnit ? acc : acc / a[i + i * lda];
        }
      } else {
        for (index_t i = m - 1; i >= 0; --i) {
          T acc = x[i];
          for (index_t l = i + 1; l < m; ++l) {
            acc -= a[i + l * lda] * x[l];
          }
          x[i] = diag == Diag::kUnit ? acc : acc / a[i + i * lda];
        }
      }
    }
  } else {
    for (index_t i = 0; i < m; ++i) {
      if (uplo == Uplo::kUpper) {
        for (index_t j = 0; j < n; ++j) {
          T acc = b[i + j * ldb];
          for (index_t l = 0; l < j; ++l) {
            acc -= b[i + l * ldb] * a[l + j * lda];
          }
          b[i + j * ldb] =
              diag == Diag::kUnit ? acc : acc / a[j + j * lda];
        }
      } else {
        for (index_t j = n - 1; j >= 0; --j) {
          T acc = b[i + j * ldb];
          for (index_t l = j + 1; l < n; ++l) {
            acc -= b[i + l * ldb] * a[l + j * lda];
          }
          b[i + j * ldb] =
              diag == Diag::kUnit ? acc : acc / a[j + j * lda];
        }
      }
    }
  }
}

/// Unblocked no-pivot LU oracle.
template <typename T>
void getrfNoPiv(index_t n, T* a, index_t lda) {
  for (index_t k = 0; k < n; ++k) {
    const T pivot = a[k + k * lda];
    HPLMXP_REQUIRE(pivot != T{0}, "ref::getrfNoPiv: zero pivot");
    for (index_t i = k + 1; i < n; ++i) {
      a[i + k * lda] /= pivot;
    }
    for (index_t j = k + 1; j < n; ++j) {
      const T up = a[k + j * lda];
      for (index_t i = k + 1; i < n; ++i) {
        a[i + j * lda] -= a[i + k * lda] * up;
      }
    }
  }
}

/// Dense solve oracle via no-pivot LU in FP64 (for well-conditioned inputs).
void solveNoPiv(index_t n, std::vector<double> a, index_t lda,
                std::vector<double>& x);

}  // namespace hplmxp::blas::ref
