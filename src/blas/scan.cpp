#include "blas/scan.h"

#include <cmath>
#include <cstdio>

namespace hplmxp::blas {

std::string AbnormalScan::describe() const {
  if (clean()) {
    return "clean";
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%lld abnormal entries (first at (%lld, %lld) = %g, "
                "max |x| = %g%s)",
                static_cast<long long>(count),
                static_cast<long long>(firstRow),
                static_cast<long long>(firstCol), firstValue, maxAbs,
                sawNonFinite ? ", non-finite seen" : "");
  return buf;
}

namespace {

template <typename T>
AbnormalScan scanT(index_t m, index_t n, const T* a, index_t lda,
                   double magnitudeLimit) {
  HPLMXP_REQUIRE(m >= 0 && n >= 0, "scan: bad extents");
  HPLMXP_REQUIRE(lda >= m, "scan: leading dimension too small");
  AbnormalScan r;
  for (index_t j = 0; j < n; ++j) {
    const T* col = a + j * lda;
    for (index_t i = 0; i < m; ++i) {
      const double v = static_cast<double>(col[i]);
      const bool finite = std::isfinite(v);
      const double mag = std::fabs(v);
      if (finite) {
        r.maxAbs = std::max(r.maxAbs, mag);
      } else {
        r.sawNonFinite = true;
      }
      if (!finite || (magnitudeLimit > 0.0 && mag > magnitudeLimit)) {
        if (r.count == 0) {
          r.firstRow = i;
          r.firstCol = j;
          r.firstValue = v;
        }
        ++r.count;
      }
    }
  }
  return r;
}

}  // namespace

AbnormalScan scanAbnormal(index_t m, index_t n, const float* a, index_t lda,
                          double magnitudeLimit) {
  return scanT(m, n, a, lda, magnitudeLimit);
}

AbnormalScan scanAbnormal(index_t m, index_t n, const double* a, index_t lda,
                          double magnitudeLimit) {
  return scanT(m, n, a, lda, magnitudeLimit);
}

AbnormalScan scanAbnormal(index_t m, index_t n, const half16* a, index_t lda,
                          double magnitudeLimit) {
  HPLMXP_REQUIRE(m >= 0 && n >= 0, "scan: bad extents");
  HPLMXP_REQUIRE(lda >= m, "scan: leading dimension too small");
  AbnormalScan r;
  for (index_t j = 0; j < n; ++j) {
    const half16* col = a + j * lda;
    for (index_t i = 0; i < m; ++i) {
      const double v = static_cast<double>(col[i].toFloat());
      const bool finite = std::isfinite(v);
      const double mag = std::fabs(v);
      if (finite) {
        r.maxAbs = std::max(r.maxAbs, mag);
      } else {
        r.sawNonFinite = true;
      }
      if (!finite || (magnitudeLimit > 0.0 && mag > magnitudeLimit)) {
        if (r.count == 0) {
          r.firstRow = i;
          r.firstCol = j;
          r.firstValue = v;
        }
        ++r.count;
      }
    }
  }
  return r;
}

}  // namespace hplmxp::blas
