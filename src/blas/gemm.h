// General matrix-matrix multiply: C = alpha * op(A) * op(B) + beta * C.
//
// Three instantiations mirror the paper's kernels:
//   * sgemm  — FP32 x FP32 -> FP32 (panel-sized products inside GETRF/TRSM)
//   * dgemm  — FP64 path used by the HPL comparison and verification
//   * gemmMixed — FP16 inputs, FP32 accumulate: the heart of HPL-AI
//     (cublasSgemmEx / rocblas_gemm_ex with HALF inputs, FLOAT compute).
//
// Implementation: BLIS-style register-blocked packing GEMM. Per k panel,
// op(A) and op(B) are packed once into zero-padded microkernel strips in a
// persistent pool-owned arena (packed A is shared across all column blocks
// and packed B across all row blocks — nothing is re-packed, and the hot
// loop never touches the allocator), then a kGemmMr x kGemmNr register-
// accumulator microkernel sweeps (mc x nc) macro-tiles under 2D
// parallelism on the
// shared ThreadPool. The packing step performs both the transposition
// and, for gemmMixed, the half->float widening, which is exactly the data
// flow of a tensor-core MMA pipeline: FP16 operands are widened on load
// and accumulated in FP32.
//
// Determinism contract: every C element accumulates its k contributions in
// ascending order with one mul-add per step, independent of thread count
// and of the (mc, nc, kc) blocking (see blas/tune.h). Results are bitwise
// identical to the pre-rewrite kernel (blas/gemm_baseline.h), which the
// scheduler-equivalence suite depends on.
#pragma once

#include "blas/types.h"
#include "fp16/half.h"
#include "lowp/bfloat16.h"
#include "lowp/fp8.h"
#include "util/common.h"
#include "util/thread_pool.h"

namespace hplmxp::blas {

/// FP32 GEMM.
void sgemm(Trans transA, Trans transB, index_t m, index_t n, index_t k,
           float alpha, const float* a, index_t lda, const float* b,
           index_t ldb, float beta, float* c, index_t ldc,
           ThreadPool* pool = nullptr);

/// FP64 GEMM.
void dgemm(Trans transA, Trans transB, index_t m, index_t n, index_t k,
           double alpha, const double* a, index_t lda, const double* b,
           index_t ldb, double beta, double* c, index_t ldc,
           ThreadPool* pool = nullptr);

/// Mixed-precision GEMM over the storage ladder: A and B are a
/// low-precision storage type (binary16 / bfloat16 / fp8e4m3 / fp8e5m2),
/// C and the accumulator are FP32. Operands widen to FP32 during packing,
/// so every rung shares the identical accumulation path — only the
/// widening table differs. Instantiated for the four ladder rungs.
template <typename TLow>
void gemmLowp(Trans transA, Trans transB, index_t m, index_t n, index_t k,
              float alpha, const TLow* a, index_t lda, const TLow* b,
              index_t ldb, float beta, float* c, index_t ldc,
              ThreadPool* pool = nullptr);

/// Mixed-precision GEMM: A and B are binary16, C and the accumulator are
/// FP32. This is the "Update Trailing Matrix" kernel of Algorithm 1.
/// (The binary16 instantiation of gemmLowp, kept under its historical
/// name; bitwise-identical to the pre-ladder kernel.)
void gemmMixed(Trans transA, Trans transB, index_t m, index_t n, index_t k,
               float alpha, const half16* a, index_t lda, const half16* b,
               index_t ldb, float beta, float* c, index_t ldc,
               ThreadPool* pool = nullptr);

/// Flop count convention for GEMM: 2*m*n*k.
constexpr double gemmFlops(index_t m, index_t n, index_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

}  // namespace hplmxp::blas
