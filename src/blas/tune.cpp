#include "blas/tune.h"

#include <atomic>

namespace hplmxp::blas {

namespace {
std::atomic<index_t> gMc{GemmBlocking{}.mc};
std::atomic<index_t> gNc{GemmBlocking{}.nc};
std::atomic<index_t> gKc{GemmBlocking{}.kc};
}  // namespace

GemmBlocking gemmBlocking() {
  return GemmBlocking{gMc.load(std::memory_order_relaxed),
                      gNc.load(std::memory_order_relaxed),
                      gKc.load(std::memory_order_relaxed)};
}

void setGemmBlocking(const GemmBlocking& blocking) {
  gMc.store(blocking.mc > 0 ? roundUp(blocking.mc, kGemmMr) : kGemmMr,
            std::memory_order_relaxed);
  gNc.store(blocking.nc > 0 ? roundUp(blocking.nc, kGemmNr) : kGemmNr,
            std::memory_order_relaxed);
  gKc.store(blocking.kc > 0 ? blocking.kc : 1, std::memory_order_relaxed);
}

}  // namespace hplmxp::blas
