// Matrix-vector product: y = alpha * op(A) * x + beta * y.
//
// Iterative refinement computes the FP64 residual r = b - A*x with a
// parallel GEMV over regenerated matrix entries (Algorithm 1, lines 33-43);
// this module provides the dense kernels those partial products use.
#pragma once

#include "blas/types.h"
#include "util/common.h"
#include "util/thread_pool.h"

namespace hplmxp::blas {

/// FP64 GEMV.
void dgemv(Trans trans, index_t m, index_t n, double alpha, const double* a,
           index_t lda, const double* x, double beta, double* y,
           ThreadPool* pool = nullptr);

/// FP32 GEMV.
void sgemv(Trans trans, index_t m, index_t n, float alpha, const float* a,
           index_t lda, const float* x, float beta, float* y,
           ThreadPool* pool = nullptr);

/// Flop count convention for GEMV: 2*m*n.
constexpr double gemvFlops(index_t m, index_t n) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n);
}

}  // namespace hplmxp::blas
