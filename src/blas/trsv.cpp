#include "blas/trsv.h"

namespace hplmxp::blas {

namespace {

/// TA: factor type; TX: vector/accumulator type.
template <typename TA, typename TX>
void trsvCore(Uplo uplo, Diag diag, index_t n, const TA* a, index_t lda,
              TX* x) {
  HPLMXP_REQUIRE(n >= 0, "trsv: n must be >= 0");
  HPLMXP_REQUIRE(lda >= (n > 0 ? n : 1), "trsv: lda too small");
  if (uplo == Uplo::kLower) {
    // Forward substitution, column-oriented.
    for (index_t j = 0; j < n; ++j) {
      const TA* col = a + j * lda;
      if (diag == Diag::kNonUnit) {
        x[j] /= static_cast<TX>(col[j]);
      }
      const TX xj = x[j];
      for (index_t i = j + 1; i < n; ++i) {
        x[i] -= static_cast<TX>(col[i]) * xj;
      }
    }
  } else {
    // Backward substitution.
    for (index_t j = n - 1; j >= 0; --j) {
      const TA* col = a + j * lda;
      if (diag == Diag::kNonUnit) {
        x[j] /= static_cast<TX>(col[j]);
      }
      const TX xj = x[j];
      for (index_t i = 0; i < j; ++i) {
        x[i] -= static_cast<TX>(col[i]) * xj;
      }
    }
  }
}

}  // namespace

void dtrsv(Uplo uplo, Diag diag, index_t n, const double* a, index_t lda,
           double* x) {
  trsvCore<double, double>(uplo, diag, n, a, lda, x);
}

void strsv(Uplo uplo, Diag diag, index_t n, const float* a, index_t lda,
           float* x) {
  trsvCore<float, float>(uplo, diag, n, a, lda, x);
}

void strsvMixed(Uplo uplo, Diag diag, index_t n, const float* a, index_t lda,
                double* x) {
  trsvCore<float, double>(uplo, diag, n, a, lda, x);
}

}  // namespace hplmxp::blas
