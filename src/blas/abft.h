// Algorithm-based fault tolerance (ABFT) for the FP16 panels and the
// FP32 trailing update — the detect-AND-correct half of the paper's
// Sec. VI-B reliability story (the guards in scan.h only detect).
//
// Panel protection: the broadcast root computes FP32 row/column checksums
// of its binary16 panel in a fixed sequential order, so every receiver can
// recompute them bit-identically from an uncorrupted payload. A single
// flipped bit in the panel perturbs exactly one row sum and one column
// sum; intersecting the two mismatches locates the element, and a
// 16-candidate single-bit search restores its original bit pattern exactly
// (the corrected panel is bitwise identical to the sent one). A mismatch
// in only one dimension means the (separately broadcast) checksum payload
// itself was hit and the panel data is intact.
//
// GEMM carry: the row-sum invariant of C' = C - L * U^T is
//   rowSum(C')_i = rowSum(C)_i - sum_p L(i,p) * t(p),  t(p) = sum_j U^T(j,p)
// Predicting the post-update row sums in FP64 and comparing against the
// recomputed actual sums (within an FP32-accumulation tolerance) catches
// corruption introduced *during* the trailing update at O(mn + (m+n)b)
// cost next to the GEMM's O(mnb).
#pragma once

#include <cstdint>

#include "fp16/half.h"
#include "util/common.h"

namespace hplmxp::blas {

/// FP32 checksums of a col-major m x n binary16 panel, in the fixed order
/// receivers reproduce: rowSums[i] = sum_j a(i,j) (j ascending),
/// colSums[j] = sum_i a(i,j) (i ascending). rowSums has m entries,
/// colSums n.
void abftChecksum(index_t m, index_t n, const half16* a, index_t lda,
                  float* rowSums, float* colSums);

/// Outcome of a panel verification pass.
struct AbftOutcome {
  enum class Status {
    kClean,              // all checksums match bitwise
    kCorrected,          // single flipped element restored exactly
    kChecksumCorrupted,  // checksum payload hit; panel data intact
    kUncorrectable,      // multi-element mismatch: beyond single-flip ABFT
  };
  Status status = Status::kClean;
  index_t row = -1;          // panel-local coordinates of the corrected
  index_t col = -1;          // element (kCorrected only)
  std::uint16_t badBits = 0;   // corrupted binary16 bit pattern
  std::uint16_t goodBits = 0;  // restored bit pattern

  [[nodiscard]] explicit operator bool() const {
    return status != Status::kClean;
  }
};

/// Verifies a received panel against the root's reference checksums and
/// corrects a single bit flip in place. Checksum comparison is bitwise:
/// both sides accumulate the identical sequence of FP32 additions.
AbftOutcome abftVerifyCorrect(index_t m, index_t n, half16* a, index_t lda,
                              const float* rowSums, const float* colSums);

/// rowSums64[i] = sum_j c(i,j), accumulated in FP64 (j ascending).
void abftRowSums64(index_t m, index_t n, const float* c, index_t ldc,
                   double* rowSums64);

/// Result of the trailing-update carry check.
struct AbftGemmCheck {
  bool ok = true;
  index_t row = -1;        // first violating row (local to the region)
  double predicted = 0.0;  // expected post-update row sum
  double actual = 0.0;     // recomputed row sum
  double tolerance = 0.0;  // bound it was tested against

  [[nodiscard]] explicit operator bool() const { return !ok; }
};

/// Verifies C' = C - L * U^T via the row-sum invariant. `rowSumsBefore`
/// are the FP64 row sums of C taken before the update (abftRowSums64);
/// l is m x kDepth (ld ldl), u is the TRANS_CAST'ed n x kDepth panel
/// (ld ldu, so U^T(j,p) = u[j + p*ldu]), c is the post-update m x n tile.
AbftGemmCheck abftGemmCarryCheck(index_t m, index_t n, index_t kDepth,
                                 const double* rowSumsBefore, const half16* l,
                                 index_t ldl, const half16* u, index_t ldu,
                                 const float* c, index_t ldc);

}  // namespace hplmxp::blas
