#include "blas/abft.h"

#include <cmath>
#include <cstring>
#include <vector>

namespace hplmxp::blas {

namespace {

/// Recomputes row sum i with element (i0, j0) replaced by `candidate`.
float rowSumWith(index_t n, const half16* a, index_t lda, index_t i,
                 index_t j0, float candidate) {
  float s = 0.0f;
  for (index_t j = 0; j < n; ++j) {
    s += j == j0 ? candidate : a[i + j * lda].toFloat();
  }
  return s;
}

/// Recomputes column sum j with element (i0, j) replaced by `candidate`.
float colSumWith(index_t m, const half16* a, index_t lda, index_t i0,
                 index_t j, float candidate) {
  float s = 0.0f;
  for (index_t i = 0; i < m; ++i) {
    s += i == i0 ? candidate : a[i + j * lda].toFloat();
  }
  return s;
}

}  // namespace

void abftChecksum(index_t m, index_t n, const half16* a, index_t lda,
                  float* rowSums, float* colSums) {
  for (index_t i = 0; i < m; ++i) {
    rowSums[i] = 0.0f;
  }
  // Column-major sweep; row sums still accumulate with j ascending, which
  // is the order rowSumWith() reproduces during correction.
  for (index_t j = 0; j < n; ++j) {
    float cs = 0.0f;
    const half16* col = a + j * lda;
    for (index_t i = 0; i < m; ++i) {
      const float v = col[i].toFloat();
      cs += v;
      rowSums[i] += v;
    }
    colSums[j] = cs;
  }
}

AbftOutcome abftVerifyCorrect(index_t m, index_t n, half16* a, index_t lda,
                              const float* rowSums, const float* colSums) {
  std::vector<float> rs(static_cast<std::size_t>(m));
  std::vector<float> cs(static_cast<std::size_t>(n));
  abftChecksum(m, n, a, lda, rs.data(), cs.data());

  // Bitwise comparison: NaN checksums (possible if a flip makes an element
  // NaN/inf) must still register as mismatches, so compare representations
  // rather than values.
  auto differs = [](float x, float y) {
    return std::memcmp(&x, &y, sizeof(float)) != 0;
  };
  index_t badRow = -1, badCol = -1;
  int rowMismatches = 0, colMismatches = 0;
  for (index_t i = 0; i < m; ++i) {
    if (differs(rs[static_cast<std::size_t>(i)], rowSums[i])) {
      ++rowMismatches;
      badRow = i;
    }
  }
  for (index_t j = 0; j < n; ++j) {
    if (differs(cs[static_cast<std::size_t>(j)], colSums[j])) {
      ++colMismatches;
      badCol = j;
    }
  }

  AbftOutcome out;
  if (rowMismatches == 0 && colMismatches == 0) {
    return out;  // kClean
  }
  if (rowMismatches == 1 && colMismatches == 1) {
    // Single suspect element: search the 16 single-bit candidates for the
    // one that reproduces BOTH reference sums bit-exactly.
    const std::uint16_t bad = a[badRow + badCol * lda].bits();
    for (int bit = 0; bit < 16; ++bit) {
      const std::uint16_t cand =
          bad ^ static_cast<std::uint16_t>(1u << bit);
      const float cf = half16::toFloatBits(cand);
      if (!differs(rowSumWith(n, a, lda, badRow, badCol, cf),
                   rowSums[badRow]) &&
          !differs(colSumWith(m, a, lda, badRow, badCol, cf),
                   colSums[badCol])) {
        a[badRow + badCol * lda] = half16::fromBits(cand);
        out.status = AbftOutcome::Status::kCorrected;
        out.row = badRow;
        out.col = badCol;
        out.badBits = bad;
        out.goodBits = cand;
        return out;
      }
    }
    out.status = AbftOutcome::Status::kUncorrectable;
    out.row = badRow;
    out.col = badCol;
    out.badBits = bad;
    return out;
  }
  if ((rowMismatches == 1 && colMismatches == 0) ||
      (rowMismatches == 0 && colMismatches == 1)) {
    // One dimension fully consistent: the panel is intact and the flip hit
    // the checksum payload itself.
    out.status = AbftOutcome::Status::kChecksumCorrupted;
    out.row = badRow;
    out.col = badCol;
    return out;
  }
  out.status = AbftOutcome::Status::kUncorrectable;
  out.row = badRow;
  out.col = badCol;
  return out;
}

void abftRowSums64(index_t m, index_t n, const float* c, index_t ldc,
                   double* rowSums64) {
  for (index_t i = 0; i < m; ++i) {
    rowSums64[i] = 0.0;
  }
  for (index_t j = 0; j < n; ++j) {
    const float* col = c + j * ldc;
    for (index_t i = 0; i < m; ++i) {
      rowSums64[i] += static_cast<double>(col[i]);
    }
  }
}

AbftGemmCheck abftGemmCarryCheck(index_t m, index_t n, index_t kDepth,
                                 const double* rowSumsBefore, const half16* l,
                                 index_t ldl, const half16* u, index_t ldu,
                                 const float* c, index_t ldc) {
  // t(p) = sum_j U^T(j,p); also track sum_p |t(p)| for the error bound.
  std::vector<double> t(static_cast<std::size_t>(kDepth));
  for (index_t p = 0; p < kDepth; ++p) {
    double s = 0.0;
    const half16* col = u + p * ldu;
    for (index_t j = 0; j < n; ++j) {
      s += static_cast<double>(col[j].toFloat());
    }
    t[static_cast<std::size_t>(p)] = s;
  }

  std::vector<double> actual(static_cast<std::size_t>(m));
  abftRowSums64(m, n, c, ldc, actual.data());

  AbftGemmCheck out;
  for (index_t i = 0; i < m; ++i) {
    double update = 0.0;
    double absUpdate = 0.0;
    for (index_t p = 0; p < kDepth; ++p) {
      const double lv = static_cast<double>(l[i + p * ldl].toFloat());
      update += lv * t[static_cast<std::size_t>(p)];
      absUpdate += std::abs(lv * t[static_cast<std::size_t>(p)]);
    }
    const double predicted = rowSumsBefore[i] - update;
    // The GEMM accumulates each element in FP32, then the row sum adds n
    // of them; bound the drift generously — a surviving exponent flip is
    // orders of magnitude above any rounding residue.
    const double scale =
        1.0 + std::abs(rowSumsBefore[i]) + absUpdate + static_cast<double>(n);
    const double tol = 1e-4 * scale;
    const double a = actual[static_cast<std::size_t>(i)];
    if (!(std::abs(a - predicted) <= tol)) {  // catches NaN too
      out.ok = false;
      out.row = i;
      out.predicted = predicted;
      out.actual = a;
      out.tolerance = tol;
      return out;
    }
  }
  return out;
}

}  // namespace hplmxp::blas
