// Verbatim copy of the original gemmCore (scalar triple loop over packed
// column blocks). See gemm_baseline.h for why it is kept.
#include "blas/gemm_baseline.h"

#include <vector>

namespace hplmxp::blas::baseline {

namespace {

constexpr index_t kMc = 96;
constexpr index_t kKc = 256;
constexpr index_t kNc = 96;

template <typename TAcc, typename TIn>
inline TAcc widen(TIn v) {
  return static_cast<TAcc>(v);
}

template <typename TAcc, typename TIn>
void packA(Trans ta, const TIn* a, index_t lda, index_t i0, index_t k0,
           index_t mc, index_t kc, TAcc* dst) {
  if (ta == Trans::kNoTrans) {
    for (index_t l = 0; l < kc; ++l) {
      const TIn* src = a + i0 + (k0 + l) * lda;
      TAcc* d = dst + l * mc;
      for (index_t i = 0; i < mc; ++i) {
        d[i] = widen<TAcc>(src[i]);
      }
    }
  } else {
    for (index_t l = 0; l < kc; ++l) {
      const TIn* src = a + (k0 + l) + i0 * lda;
      TAcc* d = dst + l * mc;
      for (index_t i = 0; i < mc; ++i) {
        d[i] = widen<TAcc>(src[i * lda]);
      }
    }
  }
}

template <typename TAcc, typename TIn>
void packB(Trans tb, const TIn* b, index_t ldb, index_t k0, index_t j0,
           index_t kc, index_t nc, TAcc* dst) {
  if (tb == Trans::kNoTrans) {
    for (index_t j = 0; j < nc; ++j) {
      const TIn* src = b + k0 + (j0 + j) * ldb;
      TAcc* d = dst + j * kc;
      for (index_t l = 0; l < kc; ++l) {
        d[l] = widen<TAcc>(src[l]);
      }
    }
  } else {
    for (index_t j = 0; j < nc; ++j) {
      const TIn* src = b + (j0 + j) + k0 * ldb;
      TAcc* d = dst + j * kc;
      for (index_t l = 0; l < kc; ++l) {
        d[l] = widen<TAcc>(src[l * ldb]);
      }
    }
  }
}

template <typename TIn, typename TAcc>
void gemmCore(Trans ta, Trans tb, index_t m, index_t n, index_t k, TAcc alpha,
              const TIn* a, index_t lda, const TIn* b, index_t ldb, TAcc beta,
              TAcc* c, index_t ldc, ThreadPool* pool) {
  HPLMXP_REQUIRE(m >= 0 && n >= 0 && k >= 0, "gemm dims must be >= 0");
  HPLMXP_REQUIRE(ldc >= (m > 0 ? m : 1), "gemm: ldc too small");
  if (m == 0 || n == 0) {
    return;
  }
  const index_t opARows = (ta == Trans::kNoTrans) ? m : k;
  const index_t opBRows = (tb == Trans::kNoTrans) ? k : n;
  HPLMXP_REQUIRE(lda >= (opARows > 0 ? opARows : 1), "gemm: lda too small");
  HPLMXP_REQUIRE(ldb >= (opBRows > 0 ? opBRows : 1), "gemm: ldb too small");

  if (pool == nullptr) {
    pool = &ThreadPool::global();
  }

  const index_t nBlocks = ceilDiv(n, kNc);
  pool->parallelFor(0, nBlocks, [&](index_t jb) {
    const index_t j0 = jb * kNc;
    const index_t nc = std::min(kNc, n - j0);

    for (index_t j = 0; j < nc; ++j) {
      TAcc* col = c + (j0 + j) * ldc;
      if (beta == TAcc{0}) {
        for (index_t i = 0; i < m; ++i) {
          col[i] = TAcc{0};
        }
      } else if (beta != TAcc{1}) {
        for (index_t i = 0; i < m; ++i) {
          col[i] *= beta;
        }
      }
    }
    if (k == 0 || alpha == TAcc{0}) {
      return;
    }

    std::vector<TAcc> aPack(static_cast<std::size_t>(kMc * kKc));
    std::vector<TAcc> bPack(static_cast<std::size_t>(kKc * nc));

    for (index_t k0 = 0; k0 < k; k0 += kKc) {
      const index_t kc = std::min(kKc, k - k0);
      packB<TAcc>(tb, b, ldb, k0, j0, kc, nc, bPack.data());
      for (index_t i0 = 0; i0 < m; i0 += kMc) {
        const index_t mc = std::min(kMc, m - i0);
        packA<TAcc>(ta, a, lda, i0, k0, mc, kc, aPack.data());
        for (index_t j = 0; j < nc; ++j) {
          TAcc* ccol = c + (j0 + j) * ldc + i0;
          const TAcc* bcol = bPack.data() + j * kc;
          for (index_t l = 0; l < kc; ++l) {
            const TAcc bv = alpha * bcol[l];
            const TAcc* acol = aPack.data() + l * mc;
            for (index_t i = 0; i < mc; ++i) {
              ccol[i] += acol[i] * bv;
            }
          }
        }
      }
    }
  });
}

}  // namespace

void sgemm(Trans transA, Trans transB, index_t m, index_t n, index_t k,
           float alpha, const float* a, index_t lda, const float* b,
           index_t ldb, float beta, float* c, index_t ldc, ThreadPool* pool) {
  gemmCore<float, float>(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta,
                         c, ldc, pool);
}

void dgemm(Trans transA, Trans transB, index_t m, index_t n, index_t k,
           double alpha, const double* a, index_t lda, const double* b,
           index_t ldb, double beta, double* c, index_t ldc,
           ThreadPool* pool) {
  gemmCore<double, double>(transA, transB, m, n, k, alpha, a, lda, b, ldb,
                           beta, c, ldc, pool);
}

void gemmMixed(Trans transA, Trans transB, index_t m, index_t n, index_t k,
               float alpha, const half16* a, index_t lda, const half16* b,
               index_t ldb, float beta, float* c, index_t ldc,
               ThreadPool* pool) {
  gemmCore<half16, float>(transA, transB, m, n, k, alpha, a, lda, b, ldb,
                          beta, c, ldc, pool);
}

}  // namespace hplmxp::blas::baseline
