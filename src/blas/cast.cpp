#include "blas/cast.h"

#include <cmath>

#include "lowp/scale.h"
#include "lowp/traits.h"

namespace hplmxp::blas {

namespace {

constexpr index_t kColChunk = 16;

template <typename TSrc, typename TDst, typename Convert>
void castCore(index_t m, index_t n, const TSrc* src, index_t ldSrc, TDst* dst,
              index_t ldDst, ThreadPool* pool, Convert convert) {
  HPLMXP_REQUIRE(m >= 0 && n >= 0, "cast dims must be >= 0");
  HPLMXP_REQUIRE(ldSrc >= (m > 0 ? m : 1) && ldDst >= (m > 0 ? m : 1),
                 "cast: leading dimension too small");
  if (m == 0 || n == 0) {
    return;
  }
  if (pool == nullptr) {
    pool = &ThreadPool::global();
  }
  pool->parallelForChunked(
      0, n,
      [&](index_t j0, index_t j1) {
        for (index_t j = j0; j < j1; ++j) {
          const TSrc* s = src + j * ldSrc;
          TDst* d = dst + j * ldDst;
          for (index_t i = 0; i < m; ++i) {
            d[i] = convert(s[i]);
          }
        }
      },
      ceilDiv(n, kColChunk));
}

template <typename TLow, typename Convert>
void transCastCore(index_t m, index_t n, const float* src, index_t ldSrc,
                   TLow* dst, index_t ldDst, ThreadPool* pool,
                   Convert convert) {
  HPLMXP_REQUIRE(m >= 0 && n >= 0, "trans_cast dims must be >= 0");
  HPLMXP_REQUIRE(ldSrc >= (m > 0 ? m : 1), "trans_cast: ldSrc too small");
  HPLMXP_REQUIRE(ldDst >= (n > 0 ? n : 1), "trans_cast: ldDst too small");
  if (m == 0 || n == 0) {
    return;
  }
  if (pool == nullptr) {
    pool = &ThreadPool::global();
  }
  // Tile the transpose so reads and writes both stay cache-friendly.
  constexpr index_t kTile = 32;
  const index_t rowTiles = ceilDiv(m, kTile);
  const index_t colTiles = ceilDiv(n, kTile);
  pool->parallelForChunked(0, rowTiles * colTiles, [&](index_t lo,
                                                       index_t hi) {
    for (index_t t = lo; t < hi; ++t) {
      const index_t ti = t % rowTiles;
      const index_t tj = t / rowTiles;
      const index_t i1 = std::min(m, (ti + 1) * kTile);
      const index_t j1 = std::min(n, (tj + 1) * kTile);
      for (index_t j = tj * kTile; j < j1; ++j) {
        for (index_t i = ti * kTile; i < i1; ++i) {
          dst[j + i * ldDst] = convert(src[i + j * ldSrc]);
        }
      }
    }
  });
}

/// Tile amax (max |src(i,j)|), parallel per-chunk maxima folded with
/// std::max — order-free, so the result is thread-count independent.
float tileAmax(index_t m, index_t n, const float* src, index_t ldSrc,
               ThreadPool* pool) {
  if (m == 0 || n == 0) {
    return 0.0f;
  }
  if (pool == nullptr) {
    pool = &ThreadPool::global();
  }
  const index_t chunks = ceilDiv(n, kColChunk);
  std::vector<float> partial(static_cast<std::size_t>(chunks), 0.0f);
  pool->parallelForChunked(
      0, chunks,
      [&](index_t c0, index_t c1) {
        for (index_t c = c0; c < c1; ++c) {
          float best = 0.0f;
          const index_t j1 = std::min(n, (c + 1) * kColChunk);
          for (index_t j = c * kColChunk; j < j1; ++j) {
            const float* s = src + j * ldSrc;
            for (index_t i = 0; i < m; ++i) {
              best = std::max(best, std::fabs(s[i]));
            }
          }
          partial[static_cast<std::size_t>(c)] = best;
        }
      },
      chunks);
  float amax = 0.0f;
  for (float v : partial) {
    amax = std::max(amax, v);
  }
  return amax;
}

}  // namespace

template <typename TLow>
void castToLowp(index_t m, index_t n, const float* src, index_t ldSrc,
                TLow* dst, index_t ldDst, ThreadPool* pool) {
  castCore(m, n, src, ldSrc, dst, ldDst, pool,
           [](float v) { return TLow(v); });
}

template <typename TLow>
void transCastToLowp(index_t m, index_t n, const float* src, index_t ldSrc,
                     TLow* dst, index_t ldDst, ThreadPool* pool) {
  transCastCore(m, n, src, ldSrc, dst, ldDst, pool,
                [](float v) { return TLow(v); });
}

template <typename TLow>
void lowpToFloat(index_t m, index_t n, const TLow* src, index_t ldSrc,
                 float* dst, index_t ldDst, ThreadPool* pool) {
  castCore(m, n, src, ldSrc, dst, ldDst, pool,
           [](TLow v) { return v.toFloat(); });
}

template <typename TLow>
float castToLowpScaled(index_t m, index_t n, const float* src, index_t ldSrc,
                       TLow* dst, index_t ldDst, ThreadPool* pool) {
  const float amax = tileAmax(m, n, src, ldSrc, pool);
  const float s =
      lowp::tileScale(amax, lowp::StorageTraits<TLow>::maxFinite());
  castCore(m, n, src, ldSrc, dst, ldDst, pool,
           [s](float v) { return TLow(v / s); });
  return s;
}

template <typename TLow>
float transCastToLowpScaled(index_t m, index_t n, const float* src,
                            index_t ldSrc, TLow* dst, index_t ldDst,
                            ThreadPool* pool) {
  const float amax = tileAmax(m, n, src, ldSrc, pool);
  const float s =
      lowp::tileScale(amax, lowp::StorageTraits<TLow>::maxFinite());
  transCastCore(m, n, src, ldSrc, dst, ldDst, pool,
                [s](float v) { return TLow(v / s); });
  return s;
}

// The four ladder rungs.
#define HPLMXP_INSTANTIATE_CASTS(T)                                          \
  template void castToLowp<T>(index_t, index_t, const float*, index_t, T*,   \
                              index_t, ThreadPool*);                         \
  template void transCastToLowp<T>(index_t, index_t, const float*, index_t,  \
                                   T*, index_t, ThreadPool*);                \
  template void lowpToFloat<T>(index_t, index_t, const T*, index_t, float*,  \
                               index_t, ThreadPool*);                        \
  template float castToLowpScaled<T>(index_t, index_t, const float*,         \
                                     index_t, T*, index_t, ThreadPool*);     \
  template float transCastToLowpScaled<T>(index_t, index_t, const float*,    \
                                          index_t, T*, index_t, ThreadPool*)

HPLMXP_INSTANTIATE_CASTS(half16);
HPLMXP_INSTANTIATE_CASTS(lowp::bfloat16);
HPLMXP_INSTANTIATE_CASTS(lowp::fp8e4m3);
HPLMXP_INSTANTIATE_CASTS(lowp::fp8e5m2);
#undef HPLMXP_INSTANTIATE_CASTS

void castToHalf(index_t m, index_t n, const float* src, index_t ldSrc,
                half16* dst, index_t ldDst, ThreadPool* pool) {
  castToLowp<half16>(m, n, src, ldSrc, dst, ldDst, pool);
}

void transCastToHalf(index_t m, index_t n, const float* src, index_t ldSrc,
                     half16* dst, index_t ldDst, ThreadPool* pool) {
  transCastToLowp<half16>(m, n, src, ldSrc, dst, ldDst, pool);
}

void castToFloat(index_t m, index_t n, const half16* src, index_t ldSrc,
                 float* dst, index_t ldDst, ThreadPool* pool) {
  lowpToFloat<half16>(m, n, src, ldSrc, dst, ldDst, pool);
}

void narrowToFloat(index_t m, index_t n, const double* src, index_t ldSrc,
                   float* dst, index_t ldDst, ThreadPool* pool) {
  castCore(m, n, src, ldSrc, dst, ldDst, pool,
           [](double v) { return static_cast<float>(v); });
}

void widenToDouble(index_t m, index_t n, const float* src, index_t ldSrc,
                   double* dst, index_t ldDst, ThreadPool* pool) {
  castCore(m, n, src, ldSrc, dst, ldDst, pool,
           [](float v) { return static_cast<double>(v); });
}

}  // namespace hplmxp::blas
