#include "blas/cast.h"

namespace hplmxp::blas {

namespace {

constexpr index_t kColChunk = 16;

template <typename TSrc, typename TDst, typename Convert>
void castCore(index_t m, index_t n, const TSrc* src, index_t ldSrc, TDst* dst,
              index_t ldDst, ThreadPool* pool, Convert convert) {
  HPLMXP_REQUIRE(m >= 0 && n >= 0, "cast dims must be >= 0");
  HPLMXP_REQUIRE(ldSrc >= (m > 0 ? m : 1) && ldDst >= (m > 0 ? m : 1),
                 "cast: leading dimension too small");
  if (m == 0 || n == 0) {
    return;
  }
  if (pool == nullptr) {
    pool = &ThreadPool::global();
  }
  pool->parallelForChunked(
      0, n,
      [&](index_t j0, index_t j1) {
        for (index_t j = j0; j < j1; ++j) {
          const TSrc* s = src + j * ldSrc;
          TDst* d = dst + j * ldDst;
          for (index_t i = 0; i < m; ++i) {
            d[i] = convert(s[i]);
          }
        }
      },
      ceilDiv(n, kColChunk));
}

}  // namespace

void castToHalf(index_t m, index_t n, const float* src, index_t ldSrc,
                half16* dst, index_t ldDst, ThreadPool* pool) {
  castCore(m, n, src, ldSrc, dst, ldDst, pool,
           [](float v) { return half16(v); });
}

void transCastToHalf(index_t m, index_t n, const float* src, index_t ldSrc,
                     half16* dst, index_t ldDst, ThreadPool* pool) {
  HPLMXP_REQUIRE(m >= 0 && n >= 0, "trans_cast dims must be >= 0");
  HPLMXP_REQUIRE(ldSrc >= (m > 0 ? m : 1), "trans_cast: ldSrc too small");
  HPLMXP_REQUIRE(ldDst >= (n > 0 ? n : 1), "trans_cast: ldDst too small");
  if (m == 0 || n == 0) {
    return;
  }
  if (pool == nullptr) {
    pool = &ThreadPool::global();
  }
  // Tile the transpose so reads and writes both stay cache-friendly.
  constexpr index_t kTile = 32;
  const index_t rowTiles = ceilDiv(m, kTile);
  const index_t colTiles = ceilDiv(n, kTile);
  pool->parallelForChunked(0, rowTiles * colTiles, [&](index_t lo,
                                                       index_t hi) {
    for (index_t t = lo; t < hi; ++t) {
      const index_t ti = t % rowTiles;
      const index_t tj = t / rowTiles;
      const index_t i1 = std::min(m, (ti + 1) * kTile);
      const index_t j1 = std::min(n, (tj + 1) * kTile);
      for (index_t j = tj * kTile; j < j1; ++j) {
        for (index_t i = ti * kTile; i < i1; ++i) {
          dst[j + i * ldDst] = half16(src[i + j * ldSrc]);
        }
      }
    }
  });
}

void castToFloat(index_t m, index_t n, const half16* src, index_t ldSrc,
                 float* dst, index_t ldDst, ThreadPool* pool) {
  castCore(m, n, src, ldSrc, dst, ldDst, pool,
           [](half16 v) { return v.toFloat(); });
}

void narrowToFloat(index_t m, index_t n, const double* src, index_t ldSrc,
                   float* dst, index_t ldDst, ThreadPool* pool) {
  castCore(m, n, src, ldSrc, dst, ldDst, pool,
           [](double v) { return static_cast<float>(v); });
}

void widenToDouble(index_t m, index_t n, const float* src, index_t ldSrc,
                   double* dst, index_t ldDst, ThreadPool* pool) {
  castCore(m, n, src, ldSrc, dst, ldDst, pool,
           [](float v) { return static_cast<double>(v); });
}

}  // namespace hplmxp::blas
