#include "blas/gemv.h"

#include <vector>

namespace hplmxp::blas {

namespace {

constexpr index_t kRowStripe = 256;

template <typename T>
void gemvCore(Trans trans, index_t m, index_t n, T alpha, const T* a,
              index_t lda, const T* x, T beta, T* y, ThreadPool* pool) {
  HPLMXP_REQUIRE(m >= 0 && n >= 0, "gemv dims must be >= 0");
  HPLMXP_REQUIRE(lda >= (m > 0 ? m : 1), "gemv: lda too small");
  if (pool == nullptr) {
    pool = &ThreadPool::global();
  }
  const index_t outLen = (trans == Trans::kNoTrans) ? m : n;
  if (outLen == 0) {
    return;
  }

  if (trans == Trans::kNoTrans) {
    // y_i = beta*y_i + alpha * sum_j A(i,j) x_j; stripe rows so each task
    // owns a disjoint slice of y.
    const index_t stripes = ceilDiv(m, kRowStripe);
    pool->parallelFor(0, stripes, [&](index_t s) {
      const index_t i0 = s * kRowStripe;
      const index_t i1 = std::min(m, i0 + kRowStripe);
      std::vector<T> acc(static_cast<std::size_t>(i1 - i0), T{0});
      for (index_t j = 0; j < n; ++j) {
        const T* col = a + j * lda;
        const T xv = x[j];
        for (index_t i = i0; i < i1; ++i) {
          acc[static_cast<std::size_t>(i - i0)] += col[i] * xv;
        }
      }
      for (index_t i = i0; i < i1; ++i) {
        const T base = (beta == T{0}) ? T{0} : beta * y[i];
        y[i] = base + alpha * acc[static_cast<std::size_t>(i - i0)];
      }
    });
  } else {
    // y_j = beta*y_j + alpha * sum_i A(i,j) x_i; columns are independent.
    const index_t stripes = ceilDiv(n, kRowStripe);
    pool->parallelFor(0, stripes, [&](index_t s) {
      const index_t j0 = s * kRowStripe;
      const index_t j1 = std::min(n, j0 + kRowStripe);
      for (index_t j = j0; j < j1; ++j) {
        const T* col = a + j * lda;
        T acc{0};
        for (index_t i = 0; i < m; ++i) {
          acc += col[i] * x[i];
        }
        const T base = (beta == T{0}) ? T{0} : beta * y[j];
        y[j] = base + alpha * acc;
      }
    });
  }
}

}  // namespace

void dgemv(Trans trans, index_t m, index_t n, double alpha, const double* a,
           index_t lda, const double* x, double beta, double* y,
           ThreadPool* pool) {
  gemvCore<double>(trans, m, n, alpha, a, lda, x, beta, y, pool);
}

void sgemv(Trans trans, index_t m, index_t n, float alpha, const float* a,
           index_t lda, const float* x, float beta, float* y,
           ThreadPool* pool) {
  gemvCore<float>(trans, m, n, alpha, a, lda, x, beta, y, pool);
}

}  // namespace hplmxp::blas
