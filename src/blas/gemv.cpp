#include "blas/gemv.h"

namespace hplmxp::blas {

namespace {

constexpr index_t kRowStripe = 256;

template <typename T>
void gemvCore(Trans trans, index_t m, index_t n, T alpha, const T* a,
              index_t lda, const T* x, T beta, T* y, ThreadPool* pool) {
  HPLMXP_REQUIRE(m >= 0 && n >= 0, "gemv dims must be >= 0");
  HPLMXP_REQUIRE(lda >= (m > 0 ? m : 1), "gemv: lda too small");
  if (pool == nullptr) {
    pool = &ThreadPool::global();
  }
  const index_t outLen = (trans == Trans::kNoTrans) ? m : n;
  if (outLen == 0) {
    return;
  }

  if (trans == Trans::kNoTrans) {
    // y_i = beta*y_i + alpha * sum_j A(i,j) x_j; stripe rows so each task
    // owns a disjoint slice of y. The partial sums live in a fixed-size
    // stack buffer: no heap traffic per stripe.
    const index_t stripes = ceilDiv(m, kRowStripe);
    pool->parallelForChunked(0, stripes, [&](index_t sLo, index_t sHi) {
      T acc[kRowStripe];
      for (index_t s = sLo; s < sHi; ++s) {
        const index_t i0 = s * kRowStripe;
        const index_t i1 = std::min(m, i0 + kRowStripe);
        const index_t len = i1 - i0;
        for (index_t i = 0; i < len; ++i) {
          acc[i] = T{0};
        }
        for (index_t j = 0; j < n; ++j) {
          const T* col = a + j * lda;
          const T xv = x[j];
          for (index_t i = 0; i < len; ++i) {
            acc[i] += col[i0 + i] * xv;
          }
        }
        for (index_t i = 0; i < len; ++i) {
          const T base = (beta == T{0}) ? T{0} : beta * y[i0 + i];
          y[i0 + i] = base + alpha * acc[i];
        }
      }
    });
  } else {
    // y_j = beta*y_j + alpha * sum_i A(i,j) x_i; columns are independent.
    pool->parallelForChunked(0, n, [&](index_t jLo, index_t jHi) {
      for (index_t j = jLo; j < jHi; ++j) {
        const T* col = a + j * lda;
        T acc{0};
        for (index_t i = 0; i < m; ++i) {
          acc += col[i] * x[i];
        }
        const T base = (beta == T{0}) ? T{0} : beta * y[j];
        y[j] = base + alpha * acc;
      }
    });
  }
}

}  // namespace

void dgemv(Trans trans, index_t m, index_t n, double alpha, const double* a,
           index_t lda, const double* x, double beta, double* y,
           ThreadPool* pool) {
  gemvCore<double>(trans, m, n, alpha, a, lda, x, beta, y, pool);
}

void sgemv(Trans trans, index_t m, index_t n, float alpha, const float* a,
           index_t lda, const float* x, float beta, float* y,
           ThreadPool* pool) {
  gemvCore<float>(trans, m, n, alpha, a, lda, x, beta, y, pool);
}

}  // namespace hplmxp::blas
