// Tunable macro-tile blocking of the packed GEMM kernel.
//
// The microkernel shape (kGemmMr x kGemmNr register accumulators) is fixed
// at compile time; the macro blocking (mc, nc, kc) only moves work between
// cache levels and parallel tasks. Changing it NEVER changes results: the
// kernel accumulates each C element in ascending-k order regardless of the
// blocking, which is what the scheduler-equivalence suite relies on. The
// autotuner (perfmodel/autotune.h) sweeps candidate blockings on the host
// and installs the fastest via setGemmBlocking().
#pragma once

#include "util/common.h"

namespace hplmxp::blas {

/// Register-block (microkernel) shape: MR x NR FP32/FP64 accumulators.
/// 24x2 is sized for the portable baseline ISA this tree builds with (no
/// -march flag => SSE2, 16 vector registers): 6 accumulator registers + 6
/// A registers + 1 B broadcast fits the file, whereas the classic
/// AVX2-oriented 8x6 tile spills and measured ~6x slower here. A register
/// sweep on the build host measured (GF/s, k=256 streaming microkernel):
/// 24x2: 30.0, 8x4: 23.5, 16x2: 23.5, 8x6: 5.1, 16x4: 3.1.
inline constexpr index_t kGemmMr = 24;
inline constexpr index_t kGemmNr = 2;

/// Cache/task blocking of the packed GEMM. mc rows x nc cols define one
/// macro-tile task of the 2D parallel decomposition; kc is the packed
/// panel depth. Values are rounded up to microkernel multiples on use.
struct GemmBlocking {
  index_t mc = 120;
  index_t nc = 240;
  index_t kc = 256;
};

/// Snapshot of the globally installed blocking (thread-safe).
[[nodiscard]] GemmBlocking gemmBlocking();

/// Installs a new blocking for subsequent GEMM calls (thread-safe).
/// Non-positive fields are clamped to the microkernel minimum.
void setGemmBlocking(const GemmBlocking& blocking);

}  // namespace hplmxp::blas
