// Shared BLAS enums and conventions.
//
// All matrices are column-major with an explicit leading dimension, exactly
// like the cuBLAS/rocBLAS routines listed in Table II of the paper. The
// naming (GEMM, TRSM, GETRF, TRSV, GEMV) follows the BLAS Technical Forum
// standard the paper references.
#pragma once

namespace hplmxp::blas {

enum class Side { kLeft, kRight };
enum class Uplo { kLower, kUpper };
enum class Trans { kNoTrans, kTrans };
enum class Diag { kUnit, kNonUnit };

}  // namespace hplmxp::blas
