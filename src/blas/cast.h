// Precision conversion kernels: the CAST and TRANS_CAST phases of
// Algorithm 1 (lines 15 and 24), plus the FP64 -> FP32 conversion used when
// staging the generated matrix onto the device.
//
// TRANS_CAST transposes the U panel while casting so the trailing-update
// GEMM can consume both panels with a uniform fast layout — the paper notes
// U "is conveniently transposed and cast simultaneously".
#pragma once

#include "fp16/half.h"
#include "util/common.h"
#include "util/thread_pool.h"

namespace hplmxp::blas {

/// dst(i,j) = half(src(i,j)); col-major m x n.
void castToHalf(index_t m, index_t n, const float* src, index_t ldSrc,
                half16* dst, index_t ldDst, ThreadPool* pool = nullptr);

/// dst(j,i) = half(src(i,j)): transposes m x n src into n x m dst while
/// casting to binary16.
void transCastToHalf(index_t m, index_t n, const float* src, index_t ldSrc,
                     half16* dst, index_t ldDst, ThreadPool* pool = nullptr);

/// dst(i,j) = float(src(i,j)); col-major m x n, binary16 -> FP32 (exact).
void castToFloat(index_t m, index_t n, const half16* src, index_t ldSrc,
                 float* dst, index_t ldDst, ThreadPool* pool = nullptr);

/// FP64 -> FP32 narrowing copy (host matrix -> device matrix staging).
void narrowToFloat(index_t m, index_t n, const double* src, index_t ldSrc,
                   float* dst, index_t ldDst, ThreadPool* pool = nullptr);

/// FP32 -> FP64 widening copy.
void widenToDouble(index_t m, index_t n, const float* src, index_t ldSrc,
                   double* dst, index_t ldDst, ThreadPool* pool = nullptr);

}  // namespace hplmxp::blas
