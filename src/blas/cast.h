// Precision conversion kernels: the CAST and TRANS_CAST phases of
// Algorithm 1 (lines 15 and 24), plus the FP64 -> FP32 conversion used when
// staging the generated matrix onto the device.
//
// TRANS_CAST transposes the U panel while casting so the trailing-update
// GEMM can consume both panels with a uniform fast layout — the paper notes
// U "is conveniently transposed and cast simultaneously".
//
// The cast paths are precision-parameterized over the storage ladder
// (lowp/traits.h): castToLowp / transCastToLowp / lowpToFloat are
// instantiated for binary16, bfloat16 and the FP8 pair. The FP8 rungs go
// through the *Scaled variants, which compute a per-tile power-of-two
// scale (lowp/scale.h), store value/scale, and return the scale for the
// caller to fold into the GEMM's alpha — exactly in FP32, so scaling never
// perturbs the rounding arithmetic. castToHalf and friends are the
// historical binary16 names and stay bitwise-identical: they ARE the
// half16 instantiations.
#pragma once

#include "fp16/half.h"
#include "lowp/bfloat16.h"
#include "lowp/fp8.h"
#include "util/common.h"
#include "util/thread_pool.h"

namespace hplmxp::blas {

/// dst(i,j) = TLow(src(i,j)); col-major m x n, round-to-nearest-even.
template <typename TLow>
void castToLowp(index_t m, index_t n, const float* src, index_t ldSrc,
                TLow* dst, index_t ldDst, ThreadPool* pool = nullptr);

/// dst(j,i) = TLow(src(i,j)): transposes m x n src into n x m dst while
/// casting.
template <typename TLow>
void transCastToLowp(index_t m, index_t n, const float* src, index_t ldSrc,
                     TLow* dst, index_t ldDst, ThreadPool* pool = nullptr);

/// dst(i,j) = float(src(i,j)); exact widening.
template <typename TLow>
void lowpToFloat(index_t m, index_t n, const TLow* src, index_t ldSrc,
                 float* dst, index_t ldDst, ThreadPool* pool = nullptr);

/// Scaled cast for the narrow-range rungs: computes the tile's amax,
/// derives the power-of-two scale s = lowp::tileScale(amax, maxFinite),
/// stores dst = TLow(src / s), and returns s. The caller multiplies the
/// consuming GEMM's alpha by s (exact: s is a power of two).
template <typename TLow>
float castToLowpScaled(index_t m, index_t n, const float* src, index_t ldSrc,
                       TLow* dst, index_t ldDst, ThreadPool* pool = nullptr);

/// Transposing flavor of the scaled cast.
template <typename TLow>
float transCastToLowpScaled(index_t m, index_t n, const float* src,
                            index_t ldSrc, TLow* dst, index_t ldDst,
                            ThreadPool* pool = nullptr);

/// dst(i,j) = half(src(i,j)); col-major m x n. (binary16 instantiation of
/// castToLowp, kept under its historical name.)
void castToHalf(index_t m, index_t n, const float* src, index_t ldSrc,
                half16* dst, index_t ldDst, ThreadPool* pool = nullptr);

/// dst(j,i) = half(src(i,j)): transposes m x n src into n x m dst while
/// casting to binary16.
void transCastToHalf(index_t m, index_t n, const float* src, index_t ldSrc,
                     half16* dst, index_t ldDst, ThreadPool* pool = nullptr);

/// dst(i,j) = float(src(i,j)); col-major m x n, binary16 -> FP32 (exact).
void castToFloat(index_t m, index_t n, const half16* src, index_t ldSrc,
                 float* dst, index_t ldDst, ThreadPool* pool = nullptr);

/// FP64 -> FP32 narrowing copy (host matrix -> device matrix staging).
void narrowToFloat(index_t m, index_t n, const double* src, index_t ldSrc,
                   float* dst, index_t ldDst, ThreadPool* pool = nullptr);

/// FP32 -> FP64 widening copy.
void widenToDouble(index_t m, index_t n, const float* src, index_t ldSrc,
                   double* dst, index_t ldDst, ThreadPool* pool = nullptr);

}  // namespace hplmxp::blas
