// Triangular matrix-vector solve: op(A) * x = b, x overwrites b.
//
// Iterative refinement solves L*(U*d) = r with TRSV_LOW then TRSV_UP on
// the CPU (Algorithm 1, line 47). The factors are FP32 but the solve
// accumulates in FP64 ("mixed FP32/FP64, stored in double"), which the
// strsvMixed variants reproduce.
#pragma once

#include "blas/types.h"
#include "util/common.h"

namespace hplmxp::blas {

/// FP64 TRSV.
void dtrsv(Uplo uplo, Diag diag, index_t n, const double* a, index_t lda,
           double* x);

/// FP32 TRSV.
void strsv(Uplo uplo, Diag diag, index_t n, const float* a, index_t lda,
           float* x);

/// Mixed-precision TRSV: FP32 triangular factor, FP64 right-hand side and
/// accumulation. This matches the paper's IR correction solve.
void strsvMixed(Uplo uplo, Diag diag, index_t n, const float* a, index_t lda,
                double* x);

}  // namespace hplmxp::blas
