#include "blas/trsm.h"

namespace hplmxp::blas {

namespace {

// Number of RHS columns (kLeft) or rows (kRight) per parallel task.
constexpr index_t kStripe = 32;

template <typename T>
void scaleColumns(T* b, index_t ldb, index_t m, index_t j0, index_t j1,
                  T alpha) {
  if (alpha == T{1}) {
    return;
  }
  for (index_t j = j0; j < j1; ++j) {
    T* col = b + j * ldb;
    for (index_t i = 0; i < m; ++i) {
      col[i] *= alpha;
    }
  }
}

/// Left-side solve on columns [j0, j1): op is forward (Lower) or backward
/// (Upper) substitution, column-oriented so the inner update vectorizes.
template <typename T>
void leftSolveStripe(Uplo uplo, Diag diag, index_t m, const T* a, index_t lda,
                     T* b, index_t ldb, index_t j0, index_t j1) {
  if (uplo == Uplo::kLower) {
    for (index_t l = 0; l < m; ++l) {
      const T* acol = a + l * lda;
      const T pivot = acol[l];
      for (index_t j = j0; j < j1; ++j) {
        T* bcol = b + j * ldb;
        if (diag == Diag::kNonUnit) {
          bcol[l] /= pivot;
        }
        const T x = bcol[l];
        for (index_t i = l + 1; i < m; ++i) {
          bcol[i] -= acol[i] * x;
        }
      }
    }
  } else {
    for (index_t l = m - 1; l >= 0; --l) {
      const T* acol = a + l * lda;
      const T pivot = acol[l];
      for (index_t j = j0; j < j1; ++j) {
        T* bcol = b + j * ldb;
        if (diag == Diag::kNonUnit) {
          bcol[l] /= pivot;
        }
        const T x = bcol[l];
        for (index_t i = 0; i < l; ++i) {
          bcol[i] -= acol[i] * x;
        }
      }
    }
  }
}

/// Left-side TRANSPOSED solve on columns [j0, j1): op(A) = A^T turns the
/// update sweep into dot products down the stored columns of A (still
/// unit-stride). Lower^T solves backward; Upper^T solves forward.
template <typename T>
void leftSolveTransStripe(Uplo uplo, Diag diag, index_t m, const T* a,
                          index_t lda, T* b, index_t ldb, index_t j0,
                          index_t j1) {
  if (uplo == Uplo::kLower) {
    // op(A) is upper: backward substitution, dotting A's column below the
    // diagonal against already-solved entries.
    for (index_t l = m - 1; l >= 0; --l) {
      const T* acol = a + l * lda;
      for (index_t j = j0; j < j1; ++j) {
        T* bcol = b + j * ldb;
        T acc = bcol[l];
        for (index_t i = l + 1; i < m; ++i) {
          acc -= acol[i] * bcol[i];
        }
        bcol[l] = diag == Diag::kUnit ? acc : acc / acol[l];
      }
    }
  } else {
    // op(A) is lower: forward substitution over A's column above the
    // diagonal.
    for (index_t l = 0; l < m; ++l) {
      const T* acol = a + l * lda;
      for (index_t j = j0; j < j1; ++j) {
        T* bcol = b + j * ldb;
        T acc = bcol[l];
        for (index_t i = 0; i < l; ++i) {
          acc -= acol[i] * bcol[i];
        }
        bcol[l] = diag == Diag::kUnit ? acc : acc / acol[l];
      }
    }
  }
}

/// Right-side solve on rows [i0, i1): rows of B are independent, so each
/// stripe runs the full column recurrence X * op(A) = B on its rows.
template <typename T>
void rightSolveStripe(Uplo uplo, Diag diag, index_t n, const T* a, index_t lda,
                      T* b, index_t ldb, index_t i0, index_t i1) {
  if (uplo == Uplo::kUpper) {
    for (index_t j = 0; j < n; ++j) {
      const T* acol = a + j * lda;
      T* bcol = b + j * ldb;
      for (index_t l = 0; l < j; ++l) {
        const T ax = acol[l];
        const T* xcol = b + l * ldb;
        for (index_t i = i0; i < i1; ++i) {
          bcol[i] -= xcol[i] * ax;
        }
      }
      if (diag == Diag::kNonUnit) {
        const T pivot = acol[j];
        for (index_t i = i0; i < i1; ++i) {
          bcol[i] /= pivot;
        }
      }
    }
  } else {
    for (index_t j = n - 1; j >= 0; --j) {
      const T* acol = a + j * lda;
      T* bcol = b + j * ldb;
      for (index_t l = j + 1; l < n; ++l) {
        const T ax = acol[l];
        const T* xcol = b + l * ldb;
        for (index_t i = i0; i < i1; ++i) {
          bcol[i] -= xcol[i] * ax;
        }
      }
      if (diag == Diag::kNonUnit) {
        const T pivot = acol[j];
        for (index_t i = i0; i < i1; ++i) {
          bcol[i] /= pivot;
        }
      }
    }
  }
}

/// Right-side TRANSPOSED solve on rows [i0, i1): X * A^T = B is solved by
/// the recurrence over columns with op(A)[l][j] = A[j][l] (row access).
template <typename T>
void rightSolveTransStripe(Uplo uplo, Diag diag, index_t n, const T* a,
                           index_t lda, T* b, index_t ldb, index_t i0,
                           index_t i1) {
  if (uplo == Uplo::kUpper) {
    // op(A) is lower: process columns descending.
    for (index_t j = n - 1; j >= 0; --j) {
      T* bcol = b + j * ldb;
      for (index_t l = j + 1; l < n; ++l) {
        const T ax = a[j + l * lda];  // op(A)[l][j] = A[j][l]
        const T* xcol = b + l * ldb;
        for (index_t i = i0; i < i1; ++i) {
          bcol[i] -= xcol[i] * ax;
        }
      }
      if (diag == Diag::kNonUnit) {
        const T pivot = a[j + j * lda];
        for (index_t i = i0; i < i1; ++i) {
          bcol[i] /= pivot;
        }
      }
    }
  } else {
    // op(A) is upper: process columns ascending.
    for (index_t j = 0; j < n; ++j) {
      T* bcol = b + j * ldb;
      for (index_t l = 0; l < j; ++l) {
        const T ax = a[j + l * lda];
        const T* xcol = b + l * ldb;
        for (index_t i = i0; i < i1; ++i) {
          bcol[i] -= xcol[i] * ax;
        }
      }
      if (diag == Diag::kNonUnit) {
        const T pivot = a[j + j * lda];
        for (index_t i = i0; i < i1; ++i) {
          bcol[i] /= pivot;
        }
      }
    }
  }
}

template <typename T>
void trsmCore(Side side, Uplo uplo, Trans trans, Diag diag, index_t m,
              index_t n, T alpha, const T* a, index_t lda, T* b, index_t ldb,
              ThreadPool* pool) {
  HPLMXP_REQUIRE(m >= 0 && n >= 0, "trsm dims must be >= 0");
  if (m == 0 || n == 0) {
    return;
  }
  const index_t triOrder = (side == Side::kLeft) ? m : n;
  HPLMXP_REQUIRE(lda >= triOrder, "trsm: lda too small");
  HPLMXP_REQUIRE(ldb >= m, "trsm: ldb too small");
  if (pool == nullptr) {
    pool = &ThreadPool::global();
  }

  // Chunked dispatch: each task receives a contiguous column (kLeft) or
  // row (kRight) range directly — no type-erased call per stripe.
  if (side == Side::kLeft) {
    pool->parallelForChunked(
        0, n,
        [&](index_t j0, index_t j1) {
          scaleColumns(b, ldb, m, j0, j1, alpha);
          if (trans == Trans::kNoTrans) {
            leftSolveStripe(uplo, diag, m, a, lda, b, ldb, j0, j1);
          } else {
            leftSolveTransStripe(uplo, diag, m, a, lda, b, ldb, j0, j1);
          }
        },
        ceilDiv(n, kStripe));
  } else {
    pool->parallelForChunked(
        0, m,
        [&](index_t i0, index_t i1) {
          if (alpha != T{1}) {
            for (index_t j = 0; j < n; ++j) {
              T* col = b + j * ldb;
              for (index_t i = i0; i < i1; ++i) {
                col[i] *= alpha;
              }
            }
          }
          if (trans == Trans::kNoTrans) {
            rightSolveStripe(uplo, diag, n, a, lda, b, ldb, i0, i1);
          } else {
            rightSolveTransStripe(uplo, diag, n, a, lda, b, ldb, i0, i1);
          }
        },
        ceilDiv(m, kStripe));
  }
}

}  // namespace

void strsm(Side side, Uplo uplo, Diag diag, index_t m, index_t n, float alpha,
           const float* a, index_t lda, float* b, index_t ldb,
           ThreadPool* pool) {
  trsmCore<float>(side, uplo, Trans::kNoTrans, diag, m, n, alpha, a, lda, b,
                  ldb, pool);
}

void dtrsm(Side side, Uplo uplo, Diag diag, index_t m, index_t n, double alpha,
           const double* a, index_t lda, double* b, index_t ldb,
           ThreadPool* pool) {
  trsmCore<double>(side, uplo, Trans::kNoTrans, diag, m, n, alpha, a, lda, b,
                   ldb, pool);
}

void strsm(Side side, Uplo uplo, Trans trans, Diag diag, index_t m, index_t n,
           float alpha, const float* a, index_t lda, float* b, index_t ldb,
           ThreadPool* pool) {
  trsmCore<float>(side, uplo, trans, diag, m, n, alpha, a, lda, b, ldb, pool);
}

void dtrsm(Side side, Uplo uplo, Trans trans, Diag diag, index_t m, index_t n,
           double alpha, const double* a, index_t lda, double* b, index_t ldb,
           ThreadPool* pool) {
  trsmCore<double>(side, uplo, trans, diag, m, n, alpha, a, lda, b, ldb,
                   pool);
}

namespace {

// Stripe width for the mixed multi-RHS solve: wide enough that the
// triangular block and sub-panel stay resident while every column of the
// chunk streams through them, small enough that a stripe of the factor
// fits in L1/L2 alongside a handful of FP64 columns.
constexpr index_t kMixedStripe = 64;

/// One chunk of right-hand-side columns, forward substitution. Each
/// column-j axpy of the column-oriented TRSV is split at the stripe edge;
/// per (element, column) the update order over j is unchanged, which is
/// what makes the batched solve bitwise-equal to strsvMixed per column.
void mixedLowerColumns(Diag diag, index_t n, const float* a, index_t lda,
                       double* x, index_t ldx, index_t c0, index_t c1) {
  for (index_t s0 = 0; s0 < n; s0 += kMixedStripe) {
    const index_t s1 = std::min(n, s0 + kMixedStripe);
    for (index_t c = c0; c < c1; ++c) {
      double* xc = x + c * ldx;
      // In-stripe substitution on the triangular block.
      for (index_t j = s0; j < s1; ++j) {
        const float* col = a + j * lda;
        if (diag == Diag::kNonUnit) {
          xc[j] /= static_cast<double>(col[j]);
        }
        const double xj = xc[j];
        for (index_t i = j + 1; i < s1; ++i) {
          xc[i] -= static_cast<double>(col[i]) * xj;
        }
      }
      // Panel update of the rows below the stripe (the TRSM "GEMM"
      // stage, kept as ordered axpys for the bitwise contract).
      for (index_t j = s0; j < s1; ++j) {
        const float* col = a + j * lda;
        const double xj = xc[j];
        for (index_t i = s1; i < n; ++i) {
          xc[i] -= static_cast<double>(col[i]) * xj;
        }
      }
    }
  }
}

/// One chunk of right-hand-side columns, backward substitution (mirror of
/// mixedLowerColumns: stripes and columns walk downward).
void mixedUpperColumns(Diag diag, index_t n, const float* a, index_t lda,
                       double* x, index_t ldx, index_t c0, index_t c1) {
  for (index_t s1 = n; s1 > 0; s1 -= std::min(s1, kMixedStripe)) {
    const index_t s0 = s1 - std::min(s1, kMixedStripe);
    for (index_t c = c0; c < c1; ++c) {
      double* xc = x + c * ldx;
      for (index_t j = s1 - 1; j >= s0; --j) {
        const float* col = a + j * lda;
        if (diag == Diag::kNonUnit) {
          xc[j] /= static_cast<double>(col[j]);
        }
        const double xj = xc[j];
        for (index_t i = s0; i < j; ++i) {
          xc[i] -= static_cast<double>(col[i]) * xj;
        }
      }
      for (index_t j = s1 - 1; j >= s0; --j) {
        const float* col = a + j * lda;
        const double xj = xc[j];
        for (index_t i = 0; i < s0; ++i) {
          xc[i] -= static_cast<double>(col[i]) * xj;
        }
      }
    }
  }
}

}  // namespace

void strsmMixed(Uplo uplo, Diag diag, index_t n, index_t nrhs, const float* a,
                index_t lda, double* x, index_t ldx, ThreadPool* pool) {
  HPLMXP_REQUIRE(n >= 0 && nrhs >= 0, "strsmMixed: negative extent");
  if (n == 0 || nrhs == 0) {
    return;
  }
  HPLMXP_REQUIRE(lda >= n, "strsmMixed: lda too small");
  HPLMXP_REQUIRE(ldx >= n, "strsmMixed: ldx too small");
  if (pool == nullptr) {
    pool = &ThreadPool::global();
  }
  // Columns are independent solves; chunking over them keeps each stripe
  // of the factor hot across a chunk's columns with zero synchronization.
  pool->parallelForChunked(
      0, nrhs,
      [&](index_t c0, index_t c1) {
        if (uplo == Uplo::kLower) {
          mixedLowerColumns(diag, n, a, lda, x, ldx, c0, c1);
        } else {
          mixedUpperColumns(diag, n, a, lda, x, ldx, c0, c1);
        }
      },
      nrhs);
}

}  // namespace hplmxp::blas
