#include "blas/gemm.h"

#include "blas/tune.h"

namespace hplmxp::blas {

namespace {

// Upper bound on one GEMM invocation's pack working set; kc is halved (it
// only affects speed, never results) until the packed panels fit.
constexpr std::size_t kPackBytesCap = std::size_t{96} << 20;

template <typename TAcc, typename TIn>
inline TAcc widen(TIn v) {
  return static_cast<TAcc>(v);
}

/// Packs one MR-row strip of op(A)[i0:i0+rows, k0:k0+kc] into dst, laid
/// out l-major (dst[l*MR + i]) and zero-padded to the full MR so the
/// microkernel always streams aligned full-width strips. This is where
/// FP16 operands widen to the FP32 accumulation type: gemmMixed and sgemm
/// share the identical numeric path from here on.
template <typename TAcc, typename TIn>
void packAStrip(Trans ta, const TIn* a, index_t lda, index_t i0, index_t rows,
                index_t k0, index_t kc, TAcc* dst) {
  if (ta == Trans::kNoTrans) {
    for (index_t l = 0; l < kc; ++l) {
      const TIn* src = a + i0 + (k0 + l) * lda;
      TAcc* d = dst + l * kGemmMr;
      for (index_t i = 0; i < rows; ++i) {
        d[i] = widen<TAcc>(src[i]);
      }
      for (index_t i = rows; i < kGemmMr; ++i) {
        d[i] = TAcc{0};
      }
    }
  } else {
    for (index_t l = 0; l < kc; ++l) {
      const TIn* src = a + (k0 + l) + i0 * lda;
      TAcc* d = dst + l * kGemmMr;
      for (index_t i = 0; i < rows; ++i) {
        d[i] = widen<TAcc>(src[i * lda]);
      }
      for (index_t i = rows; i < kGemmMr; ++i) {
        d[i] = TAcc{0};
      }
    }
  }
}

/// Packs one NR-column strip of op(B)[k0:k0+kc, j0:j0+cols] into dst,
/// l-major (dst[l*NR + j]), zero-padded to NR, with alpha folded in:
/// alpha * widen(b) is the exact per-step scaling the pre-rewrite kernel
/// applied (bv = alpha * bcol[l]), so results stay bitwise identical.
template <typename TAcc, typename TIn>
void packBStrip(Trans tb, const TIn* b, index_t ldb, index_t k0, index_t j0,
                index_t cols, index_t kc, TAcc alpha, TAcc* dst) {
  if (tb == Trans::kNoTrans) {
    for (index_t l = 0; l < kc; ++l) {
      const TIn* src = b + (k0 + l);
      TAcc* d = dst + l * kGemmNr;
      for (index_t j = 0; j < cols; ++j) {
        d[j] = alpha * widen<TAcc>(src[(j0 + j) * ldb]);
      }
      for (index_t j = cols; j < kGemmNr; ++j) {
        d[j] = TAcc{0};
      }
    }
  } else {
    for (index_t l = 0; l < kc; ++l) {
      const TIn* src = b + (k0 + l) * ldb;
      TAcc* d = dst + l * kGemmNr;
      for (index_t j = 0; j < cols; ++j) {
        d[j] = alpha * widen<TAcc>(src[j0 + j]);
      }
      for (index_t j = cols; j < kGemmNr; ++j) {
        d[j] = TAcc{0};
      }
    }
  }
}

/// Register-blocked microkernel: C[0:rows, 0:cols] += Ap * Bp over one
/// packed k panel, with an MR x NR accumulator block held in registers.
/// Each C element still receives its updates in ascending-k order, one
/// mul-add per step, exactly as the pre-rewrite kernel did — the register
/// tile only changes where the partial sums live, not their arithmetic.
/// kEdge = true is the templated edge path: partial tiles load/store
/// through bounds masks while the FMA loop stays full-width (the packed
/// strips are zero-padded, so the padded lanes are dead weight, not
/// branches).
template <typename TAcc, bool kEdge>
inline void microKernel(index_t kc, const TAcc* ap, const TAcc* bp, TAcc* c,
                        index_t ldc, index_t rows, index_t cols) {
  constexpr int MR = static_cast<int>(kGemmMr);
  constexpr int NR = static_cast<int>(kGemmNr);
  TAcc acc[NR][MR];
  if constexpr (kEdge) {
    for (int j = 0; j < NR; ++j) {
      for (int i = 0; i < MR; ++i) {
        acc[j][i] = (j < cols && i < rows) ? c[i + j * ldc] : TAcc{0};
      }
    }
  } else {
    for (int j = 0; j < NR; ++j) {
      for (int i = 0; i < MR; ++i) {
        acc[j][i] = c[i + j * ldc];
      }
    }
  }
  for (index_t l = 0; l < kc; ++l) {
    const TAcc* a = ap + l * MR;
    const TAcc* b = bp + l * NR;
    for (int j = 0; j < NR; ++j) {
      const TAcc bv = b[j];
      for (int i = 0; i < MR; ++i) {
        acc[j][i] += a[i] * bv;
      }
    }
  }
  if constexpr (kEdge) {
    for (index_t j = 0; j < cols; ++j) {
      for (index_t i = 0; i < rows; ++i) {
        c[i + j * ldc] = acc[j][i];
      }
    }
  } else {
    for (int j = 0; j < NR; ++j) {
      for (int i = 0; i < MR; ++i) {
        c[i + j * ldc] = acc[j][i];
      }
    }
  }
}

template <typename TIn, typename TAcc>
void gemmCore(Trans ta, Trans tb, index_t m, index_t n, index_t k, TAcc alpha,
              const TIn* a, index_t lda, const TIn* b, index_t ldb, TAcc beta,
              TAcc* c, index_t ldc, ThreadPool* pool) {
  HPLMXP_REQUIRE(m >= 0 && n >= 0 && k >= 0, "gemm dims must be >= 0");
  HPLMXP_REQUIRE(ldc >= (m > 0 ? m : 1), "gemm: ldc too small");
  if (m == 0 || n == 0) {
    return;
  }
  const index_t opARows = (ta == Trans::kNoTrans) ? m : k;
  const index_t opBRows = (tb == Trans::kNoTrans) ? k : n;
  HPLMXP_REQUIRE(lda >= (opARows > 0 ? opARows : 1), "gemm: lda too small");
  HPLMXP_REQUIRE(ldb >= (opBRows > 0 ? opBRows : 1), "gemm: ldb too small");

  if (pool == nullptr) {
    pool = &ThreadPool::global();
  }

  // beta-scale all of C once, up front (element-wise, order-free).
  pool->parallelForChunked(0, n, [&](index_t jLo, index_t jHi) {
    for (index_t j = jLo; j < jHi; ++j) {
      TAcc* col = c + j * ldc;
      if (beta == TAcc{0}) {
        for (index_t i = 0; i < m; ++i) {
          col[i] = TAcc{0};
        }
      } else if (beta != TAcc{1}) {
        for (index_t i = 0; i < m; ++i) {
          col[i] *= beta;
        }
      }
    }
  });
  if (k == 0 || alpha == TAcc{0}) {
    return;
  }

  GemmBlocking bl = gemmBlocking();
  bl.mc = roundUp(std::max<index_t>(bl.mc, kGemmMr), kGemmMr);
  bl.nc = roundUp(std::max<index_t>(bl.nc, kGemmNr), kGemmNr);
  const index_t mPad = roundUp(m, kGemmMr);
  const index_t nPad = roundUp(n, kGemmNr);
  index_t kcMax = std::min(std::max<index_t>(bl.kc, 1), k);
  while (kcMax > 64 &&
         static_cast<std::size_t>(mPad + nPad) * kcMax * sizeof(TAcc) >
             kPackBytesCap) {
    kcMax /= 2;  // speed-only: the accumulation order is kc-independent
  }

  // Persistent pack arenas: one lease per invocation, shared read-only by
  // every compute task. Steady-state calls never touch the allocator.
  auto lease = pool->scratch();
  Arena& arena = lease.arena();
  arena.reserve(static_cast<std::size_t>(mPad + nPad) * kcMax * sizeof(TAcc) +
                2 * 64);
  TAcc* aPack = arena.alloc<TAcc>(mPad * kcMax);
  TAcc* bPack = arena.alloc<TAcc>(nPad * kcMax);

  const index_t aStrips = mPad / kGemmMr;
  const index_t bStrips = nPad / kGemmNr;
  const index_t mBlocks = ceilDiv(m, bl.mc);
  const index_t nBlocks = ceilDiv(n, bl.nc);

  for (index_t k0 = 0; k0 < k; k0 += kcMax) {
    const index_t kc = std::min(kcMax, k - k0);

    // Pack phase: every A strip is packed exactly once per k panel and
    // shared across all column blocks (the old kernel re-packed it per
    // column block); the B panel is packed once and shared too.
    pool->parallelForChunked(0, aStrips + bStrips, [&](index_t lo,
                                                       index_t hi) {
      for (index_t u = lo; u < hi; ++u) {
        if (u < aStrips) {
          const index_t i0 = u * kGemmMr;
          packAStrip<TAcc>(ta, a, lda, i0, std::min(kGemmMr, m - i0), k0, kc,
                           aPack + u * (kGemmMr * kc));
        } else {
          const index_t j0 = (u - aStrips) * kGemmNr;
          packBStrip<TAcc>(tb, b, ldb, k0, j0, std::min(kGemmNr, n - j0), kc,
                           alpha, bPack + (u - aStrips) * (kGemmNr * kc));
        }
      }
    });

    // Compute phase: 2D parallelization over (mc x nc) macro-tiles. Each
    // C tile is owned by exactly one task per panel and panels run in
    // ascending-k order behind a barrier, so every element's accumulation
    // order is fixed no matter the thread count or blocking.
    pool->parallelForChunked(0, mBlocks * nBlocks, [&](index_t lo,
                                                       index_t hi) {
      for (index_t t = lo; t < hi; ++t) {
        const index_t i0 = (t / nBlocks) * bl.mc;
        const index_t j0 = (t % nBlocks) * bl.nc;
        const index_t iEnd = std::min(m, i0 + bl.mc);
        const index_t jEnd = std::min(n, j0 + bl.nc);
        for (index_t jr = j0; jr < jEnd; jr += kGemmNr) {
          const index_t cols = std::min(kGemmNr, n - jr);
          const TAcc* bp = bPack + (jr / kGemmNr) * (kGemmNr * kc);
          for (index_t ir = i0; ir < iEnd; ir += kGemmMr) {
            const index_t rows = std::min(kGemmMr, m - ir);
            const TAcc* ap = aPack + (ir / kGemmMr) * (kGemmMr * kc);
            TAcc* ctile = c + ir + jr * ldc;
            if (rows == kGemmMr && cols == kGemmNr) {
              microKernel<TAcc, false>(kc, ap, bp, ctile, ldc, rows, cols);
            } else {
              microKernel<TAcc, true>(kc, ap, bp, ctile, ldc, rows, cols);
            }
          }
        }
      }
    });
  }
}

}  // namespace

void sgemm(Trans transA, Trans transB, index_t m, index_t n, index_t k,
           float alpha, const float* a, index_t lda, const float* b,
           index_t ldb, float beta, float* c, index_t ldc, ThreadPool* pool) {
  gemmCore<float, float>(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta,
                         c, ldc, pool);
}

void dgemm(Trans transA, Trans transB, index_t m, index_t n, index_t k,
           double alpha, const double* a, index_t lda, const double* b,
           index_t ldb, double beta, double* c, index_t ldc,
           ThreadPool* pool) {
  gemmCore<double, double>(transA, transB, m, n, k, alpha, a, lda, b, ldb,
                           beta, c, ldc, pool);
}

template <typename TLow>
void gemmLowp(Trans transA, Trans transB, index_t m, index_t n, index_t k,
              float alpha, const TLow* a, index_t lda, const TLow* b,
              index_t ldb, float beta, float* c, index_t ldc,
              ThreadPool* pool) {
  gemmCore<TLow, float>(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta,
                        c, ldc, pool);
}

template void gemmLowp<half16>(Trans, Trans, index_t, index_t, index_t, float,
                               const half16*, index_t, const half16*, index_t,
                               float, float*, index_t, ThreadPool*);
template void gemmLowp<lowp::bfloat16>(Trans, Trans, index_t, index_t,
                                       index_t, float, const lowp::bfloat16*,
                                       index_t, const lowp::bfloat16*,
                                       index_t, float, float*, index_t,
                                       ThreadPool*);
template void gemmLowp<lowp::fp8e4m3>(Trans, Trans, index_t, index_t, index_t,
                                      float, const lowp::fp8e4m3*, index_t,
                                      const lowp::fp8e4m3*, index_t, float,
                                      float*, index_t, ThreadPool*);
template void gemmLowp<lowp::fp8e5m2>(Trans, Trans, index_t, index_t, index_t,
                                      float, const lowp::fp8e5m2*, index_t,
                                      const lowp::fp8e5m2*, index_t, float,
                                      float*, index_t, ThreadPool*);

void gemmMixed(Trans transA, Trans transB, index_t m, index_t n, index_t k,
               float alpha, const half16* a, index_t lda, const half16* b,
               index_t ldb, float beta, float* c, index_t ldc,
               ThreadPool* pool) {
  gemmLowp<half16>(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c,
                   ldc, pool);
}

}  // namespace hplmxp::blas
