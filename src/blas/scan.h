// Abnormal-value scanning: the cheap fail-fast detector behind the solver
// guards. A bit flip in an FP16 panel or a corrupted broadcast silently
// poisons the LU factors and is otherwise discovered only when verification
// fails hours later; scanning panels and tiles for non-finite or
// abnormally large entries right after cast/GEMM turns silent data
// corruption into an immediate structured error. The scan is O(m*n) with
// no arithmetic beyond a compare — ~1/B the cost of the GEMM that produced
// the tile — and is only invoked when the caller enables guarding.
#pragma once

#include <string>

#include "fp16/half.h"
#include "util/common.h"

namespace hplmxp::blas {

/// Thrown by callers when a scan detects corruption (the scan itself only
/// reports; the thrower adds solver context).
class AbnormalValueError : public CheckError {
 public:
  explicit AbnormalValueError(const std::string& msg) : CheckError(msg) {}
};

/// Result of one panel/tile scan.
struct AbnormalScan {
  index_t count = 0;           // entries non-finite or above the limit
  index_t firstRow = -1;       // coordinates of the first offender
  index_t firstCol = -1;
  double firstValue = 0.0;     // its (widened) value
  double maxAbs = 0.0;         // largest finite magnitude seen
  bool sawNonFinite = false;

  [[nodiscard]] bool clean() const { return count == 0; }
  explicit operator bool() const { return count > 0; }

  /// "3 abnormal entries (first at (12, 7) = inf, max |x| = 6.1e4)".
  [[nodiscard]] std::string describe() const;
};

/// Scans a col-major m x n tile for entries that are non-finite or exceed
/// `magnitudeLimit` in absolute value. A limit <= 0 checks finiteness only.
AbnormalScan scanAbnormal(index_t m, index_t n, const float* a, index_t lda,
                          double magnitudeLimit);
AbnormalScan scanAbnormal(index_t m, index_t n, const double* a, index_t lda,
                          double magnitudeLimit);
AbnormalScan scanAbnormal(index_t m, index_t n, const half16* a, index_t lda,
                          double magnitudeLimit);

}  // namespace hplmxp::blas
