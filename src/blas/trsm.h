// Triangular solve with multiple right-hand sides:
//   Side::kLeft :  op(A) * X = alpha * B   (X overwrites B)
//   Side::kRight:  X * op(A) = alpha * B
//
// Algorithm 1 uses two variants per iteration ("Panel Update"):
//   * TRSM_L_LOW  — Left / Lower / Unit: U(k, k+1:n) = L11^{-1} A(k, k+1:n)
//   * TRSM_R_UP   — Right / Upper / NonUnit: L(k+1:n, k) = A(k+1:n, k) U11^{-1}
//
// The triangular matrix A is B x B (small); B has panel shape. The solve is
// blocked: forward/backward substitution over kNb-wide stripes with GEMM
// updates in between, parallelized over right-hand-side columns (kLeft) or
// rows (kRight).
#pragma once

#include "blas/types.h"
#include "util/common.h"
#include "util/thread_pool.h"

namespace hplmxp::blas {

/// FP32 TRSM (no transpose of the triangular factor; both side/uplo/diag
/// combinations used by HPL-AI and their mirrors are supported).
void strsm(Side side, Uplo uplo, Diag diag, index_t m, index_t n, float alpha,
           const float* a, index_t lda, float* b, index_t ldb,
           ThreadPool* pool = nullptr);

/// FP64 TRSM for the HPL comparison path.
void dtrsm(Side side, Uplo uplo, Diag diag, index_t m, index_t n, double alpha,
           const double* a, index_t lda, double* b, index_t ldb,
           ThreadPool* pool = nullptr);

/// Mixed-precision TRSM over the whole n x n factor: FP32 triangular
/// factor, FP64 right-hand sides and accumulation — the multi-RHS
/// analogue of strsvMixed (trsv.h) used by batched iterative refinement.
/// X is n x nrhs column-major with leading dimension ldx; op(A) is
/// NoTrans. The solve is blocked over kStripe-wide stripes of the factor
/// (the stripe's triangular block and its sub-panel are reused across all
/// right-hand sides, which is where the batching win over per-vector TRSV
/// comes from) and parallelized over right-hand-side columns.
///
/// Bitwise contract: every column of X receives exactly the FP operation
/// sequence strsvMixed would apply to it in isolation — the blocking only
/// splits each column-j axpy of the column-oriented substitution into an
/// in-stripe range and a below/above-stripe range, preserving the per-
/// element update order — so batched refinement trajectories are bit-for-
/// bit identical to single-RHS ones (tests/test_solve_many.cpp).
void strsmMixed(Uplo uplo, Diag diag, index_t n, index_t nrhs, const float* a,
                index_t lda, double* x, index_t ldx,
                ThreadPool* pool = nullptr);

/// Full-surface TRSM with an op(A) transpose flag (the complete BLAS
/// signature; op(A)=A^T solves arise in left-looking LU and least-squares
/// variants). The four-argument overloads above are the NoTrans shorthand.
void strsm(Side side, Uplo uplo, Trans trans, Diag diag, index_t m, index_t n,
           float alpha, const float* a, index_t lda, float* b, index_t ldb,
           ThreadPool* pool = nullptr);
void dtrsm(Side side, Uplo uplo, Trans trans, Diag diag, index_t m, index_t n,
           double alpha, const double* a, index_t lda, double* b, index_t ldb,
           ThreadPool* pool = nullptr);

/// Flop count convention for TRSM: m*n*k where k is the triangle order
/// (i.e. n*m^2 for Left, m*n^2 for Right).
constexpr double trsmFlops(Side side, index_t m, index_t n) {
  return side == Side::kLeft
             ? static_cast<double>(n) * static_cast<double>(m) *
                   static_cast<double>(m)
             : static_cast<double>(m) * static_cast<double>(n) *
                   static_cast<double>(n);
}

}  // namespace hplmxp::blas
