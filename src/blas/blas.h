// Umbrella header for the from-scratch BLAS substrate (the CPU stand-in for
// cuBLAS/rocBLAS/cuSOLVER/rocSOLVER listed in Table II of the paper).
#pragma once

#include "blas/abft.h"      // IWYU pragma: export
#include "blas/cast.h"      // IWYU pragma: export
#include "blas/gemm.h"      // IWYU pragma: export
#include "blas/gemv.h"      // IWYU pragma: export
#include "blas/getrf.h"     // IWYU pragma: export
#include "blas/scan.h"      // IWYU pragma: export
#include "blas/trsm.h"      // IWYU pragma: export
#include "blas/trsv.h"      // IWYU pragma: export
#include "blas/tune.h"      // IWYU pragma: export
#include "blas/types.h"     // IWYU pragma: export
