// LU factorizations ("Diagonal Update" of Algorithm 1).
//
//   * getrfNoPiv  — FP32 LU *without pivoting* (cusolverDnSgetrf /
//     rocsolver_sgetrf with pivoting disabled). Legal for HPL-AI because
//     the generated matrix is strictly diagonally dominant.
//   * dgetrf      — FP64 LU with partial pivoting, used by the HPL (FP64)
//     comparison path and by verification.
//
// Both are right-looking blocked factorizations: unblocked panel factor,
// TRSM for the block row, GEMM for the trailing update.
#pragma once

#include <vector>

#include "util/common.h"
#include "util/thread_pool.h"

namespace hplmxp::blas {

/// In-place LU without pivoting: A = L * U with unit-diagonal L stored
/// below the diagonal and U on/above it. Throws CheckError on an exactly
/// zero pivot (cannot happen for the HPL-AI generator).
void getrfNoPiv(index_t n, float* a, index_t lda, ThreadPool* pool = nullptr);

/// FP64 variant of the no-pivot factorization (used in tests/verification).
void dgetrfNoPiv(index_t n, double* a, index_t lda,
                 ThreadPool* pool = nullptr);

/// In-place LU with partial (row) pivoting: P * A = L * U. ipiv[k] is the
/// row swapped with row k (LAPACK-style, 0-based). Throws on singularity.
void dgetrf(index_t n, double* a, index_t lda, std::vector<index_t>& ipiv,
            ThreadPool* pool = nullptr);

/// Flop count convention for an n x n LU: (2/3) n^3.
constexpr double getrfFlops(index_t n) {
  const double d = static_cast<double>(n);
  return 2.0 / 3.0 * d * d * d;
}

}  // namespace hplmxp::blas
