#include "blas/getrf.h"

#include <cmath>

#include "blas/gemm.h"
#include "blas/trsm.h"

namespace hplmxp::blas {

namespace {

constexpr index_t kPanel = 64;  // panel width of the blocked factorization

/// Unblocked no-pivot LU of an m x nb panel (m >= nb): factors the top
/// nb x nb triangle and applies the eliminations to the rows below.
template <typename T>
void panelFactorNoPiv(index_t m, index_t nb, T* a, index_t lda) {
  for (index_t k = 0; k < nb; ++k) {
    T* col = a + k * lda;
    const T pivot = col[k];
    HPLMXP_REQUIRE(pivot != T{0}, "getrfNoPiv: zero pivot");
    const T inv = T{1} / pivot;
    for (index_t i = k + 1; i < m; ++i) {
      col[i] *= inv;
    }
    for (index_t j = k + 1; j < nb; ++j) {
      T* cj = a + j * lda;
      const T up = cj[k];
      for (index_t i = k + 1; i < m; ++i) {
        cj[i] -= col[i] * up;
      }
    }
  }
}

inline void trsmDispatch(Side s, Uplo u, Diag d, index_t m, index_t n,
                         float alpha, const float* a, index_t lda, float* b,
                         index_t ldb, ThreadPool* pool) {
  strsm(s, u, d, m, n, alpha, a, lda, b, ldb, pool);
}
inline void trsmDispatch(Side s, Uplo u, Diag d, index_t m, index_t n,
                         double alpha, const double* a, index_t lda, double* b,
                         index_t ldb, ThreadPool* pool) {
  dtrsm(s, u, d, m, n, alpha, a, lda, b, ldb, pool);
}
inline void gemmDispatch(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                         float alpha, const float* a, index_t lda,
                         const float* b, index_t ldb, float beta, float* c,
                         index_t ldc, ThreadPool* pool) {
  sgemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, pool);
}
inline void gemmDispatch(Trans ta, Trans tb, index_t m, index_t n, index_t k,
                         double alpha, const double* a, index_t lda,
                         const double* b, index_t ldb, double beta, double* c,
                         index_t ldc, ThreadPool* pool) {
  dgemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, pool);
}

template <typename T>
void getrfNoPivCore(index_t n, T* a, index_t lda, ThreadPool* pool) {
  HPLMXP_REQUIRE(n >= 0, "getrf: n must be >= 0");
  HPLMXP_REQUIRE(lda >= (n > 0 ? n : 1), "getrf: lda too small");
  for (index_t k = 0; k < n; k += kPanel) {
    const index_t nb = std::min(kPanel, n - k);
    T* akk = a + k + k * lda;
    panelFactorNoPiv(n - k, nb, akk, lda);
    const index_t rest = n - k - nb;
    if (rest > 0) {
      // U block row: L11^{-1} * A12.
      trsmDispatch(Side::kLeft, Uplo::kLower, Diag::kUnit, nb, rest, T{1}, akk,
                   lda, akk + nb * lda, lda, pool);
      // Trailing update: A22 -= L21 * U12.
      gemmDispatch(Trans::kNoTrans, Trans::kNoTrans, rest, rest, nb, T{-1},
                   akk + nb, lda, akk + nb * lda, lda, T{1},
                   akk + nb + nb * lda, lda, pool);
    }
  }
}

}  // namespace

void getrfNoPiv(index_t n, float* a, index_t lda, ThreadPool* pool) {
  getrfNoPivCore<float>(n, a, lda, pool);
}

void dgetrfNoPiv(index_t n, double* a, index_t lda, ThreadPool* pool) {
  getrfNoPivCore<double>(n, a, lda, pool);
}

void dgetrf(index_t n, double* a, index_t lda, std::vector<index_t>& ipiv,
            ThreadPool* pool) {
  HPLMXP_REQUIRE(n >= 0, "dgetrf: n must be >= 0");
  HPLMXP_REQUIRE(lda >= (n > 0 ? n : 1), "dgetrf: lda too small");
  ipiv.assign(static_cast<std::size_t>(n), 0);

  for (index_t k0 = 0; k0 < n; k0 += kPanel) {
    const index_t nb = std::min(kPanel, n - k0);
    // Unblocked partial-pivot factorization of the panel [k0:n, k0:k0+nb],
    // applying each row swap across the full matrix width.
    for (index_t k = k0; k < k0 + nb; ++k) {
      // Pivot search in column k below (and including) row k.
      index_t piv = k;
      double best = std::fabs(a[k + k * lda]);
      for (index_t i = k + 1; i < n; ++i) {
        const double v = std::fabs(a[i + k * lda]);
        if (v > best) {
          best = v;
          piv = i;
        }
      }
      HPLMXP_REQUIRE(best != 0.0, "dgetrf: singular matrix");
      ipiv[static_cast<std::size_t>(k)] = piv;
      if (piv != k) {
        for (index_t j = 0; j < n; ++j) {
          std::swap(a[k + j * lda], a[piv + j * lda]);
        }
      }
      double* col = a + k * lda;
      const double inv = 1.0 / col[k];
      for (index_t i = k + 1; i < n; ++i) {
        col[i] *= inv;
      }
      // Rank-1 update restricted to the panel; the block row/trailing
      // matrix are updated with TRSM/GEMM below.
      for (index_t j = k + 1; j < k0 + nb; ++j) {
        double* cj = a + j * lda;
        const double up = cj[k];
        for (index_t i = k + 1; i < n; ++i) {
          cj[i] -= col[i] * up;
        }
      }
    }
    const index_t rest = n - k0 - nb;
    if (rest > 0) {
      double* akk = a + k0 + k0 * lda;
      dtrsm(Side::kLeft, Uplo::kLower, Diag::kUnit, nb, rest, 1.0, akk, lda,
            akk + nb * lda, lda, pool);
      dgemm(Trans::kNoTrans, Trans::kNoTrans, rest, rest, nb, -1.0, akk + nb,
            lda, akk + nb * lda, lda, 1.0, akk + nb + nb * lda, lda, pool);
    }
  }
}

}  // namespace hplmxp::blas
