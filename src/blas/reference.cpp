#include "blas/reference.h"

namespace hplmxp::blas::ref {

void gemmMixed(Trans ta, Trans tb, index_t m, index_t n, index_t k,
               float alpha, const half16* a, index_t lda, const half16* b,
               index_t ldb, float beta, float* c, index_t ldc) {
  auto opA = [&](index_t i, index_t l) {
    return (ta == Trans::kNoTrans ? a[i + l * lda] : a[l + i * lda]).toFloat();
  };
  auto opB = [&](index_t l, index_t j) {
    return (tb == Trans::kNoTrans ? b[l + j * ldb] : b[j + l * ldb]).toFloat();
  };
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      float acc = 0.0f;
      for (index_t l = 0; l < k; ++l) {
        acc += opA(i, l) * opB(l, j);
      }
      float& cij = c[i + j * ldc];
      cij = alpha * acc + (beta == 0.0f ? 0.0f : beta * cij);
    }
  }
}

void solveNoPiv(index_t n, std::vector<double> a, index_t lda,
                std::vector<double>& x) {
  HPLMXP_REQUIRE(static_cast<index_t>(a.size()) >= lda * n,
                 "solveNoPiv: matrix storage too small");
  HPLMXP_REQUIRE(static_cast<index_t>(x.size()) == n,
                 "solveNoPiv: rhs size mismatch");
  getrfNoPiv<double>(n, a.data(), lda);
  // Forward: L y = b (unit lower).
  for (index_t i = 0; i < n; ++i) {
    double acc = x[i];
    for (index_t l = 0; l < i; ++l) {
      acc -= a[i + l * lda] * x[l];
    }
    x[i] = acc;
  }
  // Backward: U x = y.
  for (index_t i = n - 1; i >= 0; --i) {
    double acc = x[i];
    for (index_t l = i + 1; l < n; ++l) {
      acc -= a[i + l * lda] * x[l];
    }
    x[i] = acc / a[i + i * lda];
  }
}

}  // namespace hplmxp::blas::ref
