// GCD ("graphics complex die") device model.
//
// One MPI rank maps to one GCD (a whole V100 on Summit, half an MI250X on
// Frontier). The model tracks device-memory consumption against the
// Table I capacity — the paper sizes N_L so that the FP32 local matrix,
// FP16 panels and look-ahead buffers fit in GPU memory — and carries a
// per-device performance multiplier used by the slow-node tooling.
#pragma once

#include <cstddef>
#include <string>

#include "util/common.h"

namespace hplmxp {

enum class Vendor { kNvidia, kAmd };

std::string toString(Vendor v);

/// Memory-accounting handle for one GCD.
class Gcd {
 public:
  Gcd(Vendor vendor, std::size_t memoryBytes, double perfMultiplier = 1.0);

  [[nodiscard]] Vendor vendor() const { return vendor_; }
  [[nodiscard]] std::size_t memoryBytes() const { return memoryBytes_; }
  [[nodiscard]] std::size_t allocatedBytes() const { return allocated_; }
  [[nodiscard]] std::size_t freeBytes() const {
    return memoryBytes_ - allocated_;
  }
  /// Relative throughput of this die (1.0 = nominal; Sec. VI-B reports
  /// ~5% manufacturing spread across Frontier GCDs).
  [[nodiscard]] double perfMultiplier() const { return perfMultiplier_; }

  /// Charges an allocation against the device. Throws CheckError when the
  /// device memory would be exceeded (the paper's N_L ceiling).
  void allocate(std::size_t bytes);

  /// Releases a prior allocation.
  void release(std::size_t bytes);

  /// True if a further allocation of `bytes` would fit.
  [[nodiscard]] bool fits(std::size_t bytes) const {
    return bytes <= freeBytes();
  }

 private:
  Vendor vendor_;
  std::size_t memoryBytes_;
  std::size_t allocated_ = 0;
  double perfMultiplier_;
};

/// RAII allocation charge against a Gcd.
class DeviceAllocation {
 public:
  DeviceAllocation(Gcd& gcd, std::size_t bytes) : gcd_(&gcd), bytes_(bytes) {
    gcd_->allocate(bytes_);
  }
  ~DeviceAllocation() { gcd_->release(bytes_); }
  DeviceAllocation(const DeviceAllocation&) = delete;
  DeviceAllocation& operator=(const DeviceAllocation&) = delete;

  [[nodiscard]] std::size_t bytes() const { return bytes_; }

 private:
  Gcd* gcd_;
  std::size_t bytes_;
};

}  // namespace hplmxp
