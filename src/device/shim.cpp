#include "device/shim.h"

#include <sstream>

namespace hplmxp {

std::string BlasShim::kernelConfig() const {
  const blas::GemmBlocking bl = blas::gemmBlocking();
  std::ostringstream os;
  os << "mr=" << blas::kGemmMr << " nr=" << blas::kGemmNr << " mc=" << bl.mc
     << " nc=" << bl.nc << " kc=" << bl.kc;
  return os.str();
}

BlasShim::BlasShim(Vendor vendor, ThreadPool* pool)
    : vendor_(vendor), pool_(pool) {
  if (vendor_ == Vendor::kNvidia) {
    names_ = ShimRoutineNames{"cublasSgemmEx", "cublasStrsm",
                              "cusolverDnSgetrf", "openBLAS dtrsv"};
  } else {
    names_ = ShimRoutineNames{"rocblas_gemm_ex", "rocblas_strsm",
                              "rocsolver_sgetrf", "openBLAS dtrsv"};
  }
}

void BlasShim::gemmEx(blas::Trans ta, blas::Trans tb, index_t m, index_t n,
                      index_t k, float alpha, const half16* a, index_t lda,
                      const half16* b, index_t ldb, float beta, float* c,
                      index_t ldc) {
  ++counts_.gemm;
  blas::gemmMixed(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
                  pool_);
}

void BlasShim::trsm(blas::Side side, blas::Uplo uplo, blas::Diag diag,
                    index_t m, index_t n, float alpha, const float* a,
                    index_t lda, float* b, index_t ldb) {
  ++counts_.trsm;
  blas::strsm(side, uplo, diag, m, n, alpha, a, lda, b, ldb, pool_);
}

std::size_t BlasShim::getrfBufferSize(index_t n, index_t lda) {
  ++counts_.getrfBufferSize;
  workspaceQueriedFor_ = n;
  // cuSOLVER-style workspace estimate: one panel of the blocked algorithm.
  return static_cast<std::size_t>(lda) * 64 * sizeof(float);
}

void BlasShim::getrf(index_t n, float* a, index_t lda) {
  if (vendor_ == Vendor::kNvidia) {
    // The cuSOLVER protocol: factorization without the prior workspace
    // query is an API-usage error. This is the concrete Table II quirk the
    // paper calls out as needing non-HIP shim code.
    HPLMXP_REQUIRE(workspaceQueriedFor_ == n,
                   "cusolverDnSgetrf requires a matching "
                   "cusolverDnSgetrf_bufferSize call first");
    workspaceQueriedFor_ = -1;
  }
  ++counts_.getrf;
  blas::getrfNoPiv(n, a, lda, pool_);
}

void BlasShim::trsv(blas::Uplo uplo, blas::Diag diag, index_t n,
                    const float* a, index_t lda, double* x) {
  ++counts_.trsv;
  blas::strsvMixed(uplo, diag, n, a, lda, x);
}

}  // namespace hplmxp
