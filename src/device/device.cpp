#include "device/device.h"

namespace hplmxp {

std::string toString(Vendor v) {
  return v == Vendor::kNvidia ? "NVIDIA" : "AMD";
}

Gcd::Gcd(Vendor vendor, std::size_t memoryBytes, double perfMultiplier)
    : vendor_(vendor), memoryBytes_(memoryBytes),
      perfMultiplier_(perfMultiplier) {
  HPLMXP_REQUIRE(memoryBytes > 0, "device memory must be positive");
  HPLMXP_REQUIRE(perfMultiplier > 0.0, "perf multiplier must be positive");
}

void Gcd::allocate(std::size_t bytes) {
  HPLMXP_REQUIRE(bytes <= freeBytes(),
                 "device memory exceeded: problem does not fit on the GCD");
  allocated_ += bytes;
}

void Gcd::release(std::size_t bytes) {
  HPLMXP_REQUIRE(bytes <= allocated_, "releasing more than allocated");
  allocated_ -= bytes;
}

}  // namespace hplmxp
