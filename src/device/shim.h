// Cross-platform BLAS dispatch shim (Table II).
//
// The paper built "a thin shim layer using a macro approach" because HIP
// alone did not cover every library-API difference between CUDA and ROCm —
// the worked example being GETRF, where cuSOLVER needs an explicit
// workspace query (cusolverDnSgetrf_bufferSize) before the factorization
// while rocSOLVER is a single call. This module reproduces that design as
// a typed dispatch object: both vendors route to the same CPU kernels, but
// the NVIDIA backend *enforces* the two-step GETRF protocol and each
// backend reports its vendor routine names, so the cross-platform quirks
// stay visible and testable.
#pragma once

#include <cstddef>
#include <string>

#include "blas/blas.h"
#include "device/device.h"
#include "fp16/half.h"
#include "util/common.h"

namespace hplmxp {

/// Per-routine vendor names, as in Table II.
struct ShimRoutineNames {
  std::string gemm;
  std::string trsm;
  std::string getrf;
  std::string trsv;
};

/// Counters so tests/benches can observe the dispatch behaviour.
struct ShimCallCounts {
  long gemm = 0;
  long trsm = 0;
  long getrf = 0;
  long getrfBufferSize = 0;
  long trsv = 0;
};

/// The vendor-parameterized BLAS entry point used by the core algorithm.
class BlasShim {
 public:
  explicit BlasShim(Vendor vendor, ThreadPool* pool = nullptr);

  [[nodiscard]] Vendor vendor() const { return vendor_; }
  [[nodiscard]] const ShimRoutineNames& routineNames() const {
    return names_;
  }
  [[nodiscard]] const ShimCallCounts& callCounts() const { return counts_; }

  /// The GEMM macro-blocking gemmEx currently dispatches into — the
  /// process-wide setting installed by the autotuner (perfmodel/autotune.h).
  [[nodiscard]] blas::GemmBlocking gemmBlocking() const {
    return blas::gemmBlocking();
  }

  /// One-line description of the active kernel configuration, e.g.
  /// "mr=24 nr=2 mc=120 nc=240 kc=256" (microkernel shape + macro blocking).
  /// Benches print this next to the vendor routine names so runs record
  /// which tuning they measured.
  [[nodiscard]] std::string kernelConfig() const;

  /// Mixed-precision GEMM (cublasSgemmEx / rocblas_gemm_ex).
  void gemmEx(blas::Trans ta, blas::Trans tb, index_t m, index_t n, index_t k,
              float alpha, const half16* a, index_t lda, const half16* b,
              index_t ldb, float beta, float* c, index_t ldc);

  /// Mixed-precision GEMM over the other storage-ladder rungs (the
  /// cublasGemmEx compute-type matrix: BF16/FP8 inputs, FP32 compute).
  /// Same dispatch counter as the binary16 overload.
  template <typename TLow>
  void gemmExLowp(blas::Trans ta, blas::Trans tb, index_t m, index_t n,
                  index_t k, float alpha, const TLow* a, index_t lda,
                  const TLow* b, index_t ldb, float beta, float* c,
                  index_t ldc) {
    ++counts_.gemm;
    blas::gemmLowp<TLow>(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c,
                         ldc, pool_);
  }

  /// FP32 TRSM (cublasStrsm / rocblas_strsm).
  void trsm(blas::Side side, blas::Uplo uplo, blas::Diag diag, index_t m,
            index_t n, float alpha, const float* a, index_t lda, float* b,
            index_t ldb);

  /// Workspace query required by the cuSOLVER protocol. On the NVIDIA
  /// backend getrf() throws unless the matching bufferSize call was made
  /// first; on AMD it is a harmless no-op (rocSOLVER is single-call).
  [[nodiscard]] std::size_t getrfBufferSize(index_t n, index_t lda);

  /// FP32 no-pivot LU (cusolverDnSgetrf / rocsolver_sgetrf).
  void getrf(index_t n, float* a, index_t lda);

  /// FP32-factor / FP64-vector TRSV (openBLAS on the host in the paper).
  void trsv(blas::Uplo uplo, blas::Diag diag, index_t n, const float* a,
            index_t lda, double* x);

 private:
  Vendor vendor_;
  ThreadPool* pool_;
  ShimRoutineNames names_;
  ShimCallCounts counts_;
  index_t workspaceQueriedFor_ = -1;  // NVIDIA GETRF protocol state
};

}  // namespace hplmxp
