#include "serve/factor_cache.h"

#include "util/timer.h"

namespace hplmxp::serve {

FactorCache::FactorCache(std::size_t budgetBytes)
    : budgetBytes_(budgetBytes) {
  stats_.budgetBytes = budgetBytes;
}

FactorCache::Fetch FactorCache::getOrFactor(
    const ProblemKey& key, const std::function<Factorization()>& factorFn) {
  std::unique_lock<std::mutex> lock(mutex_);
  ++stats_.lookups;
  while (true) {
    auto it = entries_.find(key);
    if (it != entries_.end() && !it->second.inFlight) {
      it->second.lastUse = ++useClock_;
      ++stats_.hits;
      return Fetch{it->second.value, true, 0.0};
    }
    if (it != entries_.end()) {
      // Someone else is factoring this key right now: wait for the entry
      // to either become ready or be withdrawn (factorFn threw), then
      // re-evaluate from scratch.
      ++stats_.coalesced;
      cv_.wait(lock, [&] {
        const auto cur = entries_.find(key);
        return cur == entries_.end() || !cur->second.inFlight;
      });
      const auto cur = entries_.find(key);
      if (cur != entries_.end() && !cur->second.inFlight) {
        cur->second.lastUse = ++useClock_;
        // A coalesced wait that lands on a ready entry is a hit like any
        // other — without this, hits + misses undercounts lookups and the
        // CI-gated hit rate misreports under contention.
        ++stats_.hits;
        return Fetch{cur->second.value, true, 0.0};
      }
      continue;  // withdrawn — race to become the factoring caller
    }

    // Miss: claim the in-flight slot and factor outside the lock.
    Entry& claimed = entries_[key];
    claimed.inFlight = true;
    claimed.lastUse = ++useClock_;
    ++stats_.misses;
    lock.unlock();

    std::shared_ptr<const Factorization> produced;
    Timer timer;
    try {
      produced = std::make_shared<const Factorization>(factorFn());
    } catch (...) {
      lock.lock();
      entries_.erase(key);
      cv_.notify_all();
      throw;
    }
    const double factorSeconds = timer.seconds();

    lock.lock();
    ++stats_.factorCount;
    Entry& entry = entries_[key];
    entry.value = produced;
    entry.inFlight = false;
    entry.bytes = produced->bytes();
    entry.lastUse = ++useClock_;
    bytesInUse_ += entry.bytes;
    evictForBudgetLocked();
    cv_.notify_all();
    return Fetch{produced, false, factorSeconds};
  }
}

void FactorCache::setEvictionListener(
    std::function<void(const ProblemKey&)> listener) {
  std::lock_guard<std::mutex> lock(mutex_);
  evictionListener_ = std::move(listener);
}

std::shared_ptr<const Factorization> FactorCache::peek(const ProblemKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end() || it->second.inFlight) {
    return nullptr;
  }
  it->second.lastUse = ++useClock_;
  return it->second.value;
}

bool FactorCache::contains(const ProblemKey& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  return it != entries_.end() && !it->second.inFlight;
}

std::size_t FactorCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t ready = 0;
  for (const auto& [key, entry] : entries_) {
    ready += entry.inFlight ? 0 : 1;
  }
  return ready;
}

FactorCache::Stats FactorCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s = stats_;
  s.bytesInUse = bytesInUse_;
  s.budgetBytes = budgetBytes_;
  return s;
}

void FactorCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.inFlight) {
      ++it;
    } else {
      bytesInUse_ -= it->second.bytes;
      it = entries_.erase(it);
    }
  }
}

void FactorCache::evictForBudgetLocked() {
  // Evict ready LRU entries until we fit. An entry that alone exceeds the
  // budget is evicted too once everything else is gone — callers keep it
  // alive through their shared_ptr; the cache just declines to retain it.
  while (bytesInUse_ > budgetBytes_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.inFlight) {
        continue;
      }
      if (victim == entries_.end() ||
          it->second.lastUse < victim->second.lastUse) {
        victim = it;
      }
    }
    if (victim == entries_.end()) {
      return;  // only in-flight entries left; nothing evictable
    }
    bytesInUse_ -= victim->second.bytes;
    if (evictionListener_) {
      evictionListener_(victim->first);
    }
    entries_.erase(victim);
    ++stats_.evictions;
  }
}

}  // namespace hplmxp::serve
