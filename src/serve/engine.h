// Solver-as-a-service engine: factor cache + request batching + batched
// multi-RHS iterative refinement behind a submit()/wait() interface.
//
// Architecture (one box per module):
//
//   submit() ──admission──▶ RequestQueue ──Batcher──▶ worker loop(s)
//                │ reject: queue full /                  │
//                ▼ deadline already passed               ▼
//           Handle(done)                      FactorCache.getOrFactor
//                                             (single-flight, LRU)
//                                                        │
//                                             solveManyMixedSingle
//                                             (blocked multi-RHS IR)
//                                                        │
//                                             Handle(done) + metrics
//
// Worker loops run on dedicated std::threads owned by the engine — NOT as
// ThreadPool::enqueue tasks, because the pool spawns lanes-1 worker
// threads and on a single-lane machine a fire-and-forget task would never
// be popped (the caller is the only lane). Solver kernels invoked inside a
// worker still ride the shared ThreadPool through its caller-participates
// parallel-for, so a dispatcher thread is itself a full execution lane and
// the engine is deadlock-free at any pool width. A worker executes its
// batches inline and never blocks on another worker except through the
// factor cache's single-flight wait, which is bounded by one
// factorization.
//
// Chaos: an optional simmpi::FaultInjector (the PR-1 chaos harness) is
// consulted once per batch execution attempt, with the worker's lane index
// standing in for the rank. Injected delays surface as longer service
// times — and deadline *rejections* once the budget is gone — and injected
// transient failures surface as bounded retries (the batch is requeued)
// or, past the retry budget, structured kFailed outcomes. Never hangs.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "device/device.h"
#include "serve/batcher.h"
#include "serve/breaker.h"
#include "serve/factor_cache.h"
#include "serve/metrics.h"
#include "serve/request.h"
#include "serve/request_queue.h"
#include "simmpi/faults.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace hplmxp::serve {

struct ServeConfig {
  std::size_t cacheBytes = std::size_t{64} << 20;  // factor-cache budget
  index_t queueDepth = 64;       // admission bound (backpressure)
  index_t maxBatch = 8;          // RHS columns per coalesced solve
  double maxBatchDelaySeconds = 0.001;  // coalescing window
  double defaultDeadlineSeconds = 0.0;  // request deadline when unset; 0 = none
  index_t workers = 1;           // concurrent worker loops on the pool
  index_t maxRetries = 2;        // per-request retry budget under chaos
  index_t maxIrIterations = 50;
  Vendor vendor = Vendor::kAmd;
  bool startPaused = false;      // hold dispatch until resume() (tests)
  /// Optional chaos injector; lanes are addressed as ranks 0..workers-1.
  std::shared_ptr<simmpi::FaultInjector> chaos;

  /// Per-key circuit breaker (serve/breaker.h). Default-off: enabling it
  /// turns persistent per-key failures into immediate structured
  /// kRejectedCircuitOpen answers instead of retry storms.
  BreakerConfig breaker;

  /// Jittered exponential backoff for retry requeues: a retried request
  /// becomes dispatchable only after base * 2^retries seconds, scaled by
  /// a deterministic per-(request, attempt) jitter in [0.5, 1), and
  /// capped. 0 = retries are immediately eligible (the old behavior).
  double retryBackoffSeconds = 0.0;
  double retryBackoffMaxSeconds = 0.250;

  /// Degraded mode: when at least this many circuits are open at once the
  /// engine stops coalescing (batch size 1, no window) and shrinks the
  /// default deadline of new admissions by `degradedDeadlineScale` —
  /// shedding optional latency optimizations to keep healthy keys moving
  /// while part of the keyspace is burning. 0 disables.
  index_t degradedOpenBreakers = 0;
  double degradedDeadlineScale = 0.5;

  /// Test/bench hook: keys for which every batch execution fails (a
  /// deterministic stand-in for a poisoned factorization). Failures flow
  /// through the normal retry-then-breaker path.
  std::function<bool(const ProblemKey&)> keyFaultHook;

  /// When set, cache misses run this instead of the built-in single-device
  /// factorization. The fleet tier points it at a simmpi rank-group job so
  /// a shard's factorizations execute on (and crash with) its rank grid.
  /// Must produce a Factorization for exactly the given key; exceptions
  /// flow through the normal retry-then-breaker path.
  std::function<Factorization(const ProblemKey&)> factorOverride;
};

class ServeEngine {
 public:
  /// Completion handle of one submitted request. wait() blocks until the
  /// request reaches a terminal status. For completed requests `solution`
  /// holds the refined x.
  class Handle {
   public:
    const RequestOutcome& wait();
    [[nodiscard]] bool done() const;
    /// Valid after wait() returns kCompleted.
    [[nodiscard]] const std::vector<double>& solution() const {
      return solution_;
    }
    /// Terminal outcome; valid once done() is true.
    [[nodiscard]] const RequestOutcome& outcome() const { return outcome_; }

    /// Registers a completion callback, invoked exactly once when the
    /// request reaches a terminal status — immediately if it already has
    /// (submit() returns terminal handles for admission rejections). The
    /// callback runs on the finishing thread (or the caller, for the
    /// already-done case) with no engine lock held; the fleet router uses
    /// it to fail requests over between shards without a thread per
    /// request. One callback per handle.
    void onDone(std::function<void()> callback);

   private:
    friend class ServeEngine;
    void finish(RequestOutcome outcome, std::vector<double> solution);
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool done_ = false;
    RequestOutcome outcome_;
    std::vector<double> solution_;
    std::function<void()> onDone_;
  };
  using HandlePtr = std::shared_ptr<Handle>;

  /// `pool` defaults to ThreadPool::global(); solver kernels inside the
  /// engine's own dispatcher threads ride it.
  explicit ServeEngine(ServeConfig config, ThreadPool* pool = nullptr);
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Admits one request. The returned handle is already terminal for
  /// admission rejections (queue full, deadline impossible, or a key the
  /// single-device backend cannot serve).
  HandlePtr submit(const SolveRequest& request);

  /// Releases a paused engine's workers (ServeConfig::startPaused).
  void resume();

  /// Blocks until every admitted request has reached a terminal status.
  void drain();

  /// Graceful stop: drains pending work, then parks the workers. Called
  /// by the destructor.
  void stop();

  [[nodiscard]] ServeReport report() const;
  [[nodiscard]] const FactorCache& cache() const { return cache_; }
  /// Fleet hooks: eviction listener pass-through and crash simulation
  /// (a crashed shard loses its resident factors).
  void setCacheEvictionListener(std::function<void(const ProblemKey&)> fn) {
    cache_.setEvictionListener(std::move(fn));
  }
  void clearCache() { cache_.clear(); }
  /// Gray-fault hook: stretches every batch's service time by `stretch`
  /// (sleeping the extra (stretch-1)x after the solve) WITHOUT failing
  /// anything — the slow-but-alive shard the fleet's phi detector and
  /// hedging are tested against. 1.0 restores full speed.
  void setServiceStretch(double stretch);
  [[nodiscard]] const CircuitBreaker& breaker() const { return breaker_; }
  /// True while enough circuits are open to shed batching and shrink
  /// deadlines (ServeConfig::degradedOpenBreakers).
  [[nodiscard]] bool degraded() const;
  [[nodiscard]] std::vector<RequestOutcome> outcomes() const {
    return recorder_.outcomes();
  }

 private:
  void workerLoop(index_t lane);
  void executeBatch(index_t lane, const ProblemKey& key,
                    std::vector<QueuedRequest> batch);
  void finishRequest(QueuedRequest& qr, RequestOutcome outcome,
                     std::vector<double> solution);
  [[nodiscard]] double now() const { return clock_.seconds(); }
  [[nodiscard]] double retryBackoff(std::uint64_t id, index_t attempt) const;

  ServeConfig config_;
  ThreadPool* pool_;
  std::atomic<double> serviceStretch_{1.0};
  FactorCache cache_;
  Batcher batcher_;
  CircuitBreaker breaker_;
  LatencyRecorder recorder_;
  Timer clock_;  // engine-relative monotonic clock

  mutable std::mutex mutex_;
  std::condition_variable cv_;        // workers: work available / stop
  std::condition_variable idleCv_;    // drain()/stop(): outstanding == 0
  RequestQueue queue_;
  bool paused_ = false;
  bool stopping_ = false;
  index_t outstanding_ = 0;  // admitted, not yet terminal
  std::uint64_t nextAutoId_ = 1;
  std::vector<std::thread> workers_;  // dispatcher threads
};

}  // namespace hplmxp::serve
