// Cache / batching identity of a solve request.
//
// Two requests are "compatible" — may share a cached factorization and be
// coalesced into one blocked multi-RHS refinement — exactly when their
// ProblemKeys are equal: same order, block size, and matrix seed (the
// factors are a pure function of those three on one device), and same
// grid shape and scheduler (which select the execution substrate the
// factors were produced on; the single-device serve backend requires a
// 1x1 grid today, but distributed keys already name their placement so
// the cache key never has to change shape).
#pragma once

#include <cstdint>
#include <string>
#include <tuple>

#include "core/config.h"
#include "lowp/precision.h"
#include "util/common.h"

namespace hplmxp::serve {

struct ProblemKey {
  index_t n = 0;
  index_t b = 0;
  std::uint64_t seed = 0;
  index_t pr = 1;
  index_t pc = 1;
  HplaiConfig::Scheduler scheduler = HplaiConfig::Scheduler::kBulk;
  /// Storage rung the factors were produced at. Factors at different
  /// rungs round differently, so a cached fp16 factorization must never
  /// satisfy an fp8 request (and vice versa) — the rung is part of the
  /// key's identity.
  lowp::StoragePrecision precision = lowp::StoragePrecision::kFp16;

  [[nodiscard]] auto tied() const {
    return std::tie(n, b, seed, pr, pc, scheduler, precision);
  }

  friend bool operator==(const ProblemKey& a, const ProblemKey& b) {
    return a.tied() == b.tied();
  }
  friend bool operator<(const ProblemKey& a, const ProblemKey& b) {
    return a.tied() < b.tied();
  }

  [[nodiscard]] std::string toString() const {
    return "n=" + std::to_string(n) + " b=" + std::to_string(b) +
           " seed=" + std::to_string(seed) + " grid=" + std::to_string(pr) +
           "x" + std::to_string(pc) + " sched=" +
           hplmxp::toString(scheduler) + " prec=" +
           lowp::toString(precision);
  }
};

}  // namespace hplmxp::serve
