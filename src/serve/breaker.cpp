#include "serve/breaker.h"

namespace hplmxp::serve {

void BreakerConfig::validate() const {
  HPLMXP_REQUIRE(failureThreshold > 0,
                 "breaker failure threshold must be positive");
  HPLMXP_REQUIRE(openSeconds >= 0.0,
                 "breaker cool-down must be non-negative");
  HPLMXP_REQUIRE(halfOpenProbes > 0,
                 "breaker needs at least one half-open probe");
}

CircuitBreaker::CircuitBreaker(BreakerConfig config)
    : config_(config) {
  config_.validate();
}

void CircuitBreaker::trip(Entry& e, double now) {
  e.state = State::kOpen;
  e.reopenAt = now + config_.openSeconds;
  e.probesInFlight = 0;
  ++e.trips;
}

bool CircuitBreaker::allow(const ProblemKey& key, double now) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return true;  // no history: closed, and no entry allocated until needed
  }
  Entry& e = it->second;
  if (e.state == State::kOpen) {
    if (now < e.reopenAt) {
      ++e.rejections;
      return false;
    }
    e.state = State::kHalfOpen;
    e.probesInFlight = 0;
  }
  if (e.state == State::kHalfOpen) {
    if (e.probesInFlight >= config_.halfOpenProbes) {
      ++e.rejections;
      return false;
    }
    ++e.probesInFlight;
    return true;
  }
  return true;  // closed
}

void CircuitBreaker::onSuccess(const ProblemKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return;
  }
  Entry& e = it->second;
  e.state = State::kClosed;
  e.consecutiveFailures = 0;
  e.probesInFlight = 0;
}

void CircuitBreaker::onFailure(const ProblemKey& key, double now) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entries_[key];
  switch (e.state) {
    case State::kClosed:
      if (++e.consecutiveFailures >= config_.failureThreshold) {
        trip(e, now);
      }
      break;
    case State::kHalfOpen:
      // The probe failed: the fault is still there, cool down again.
      ++e.consecutiveFailures;
      trip(e, now);
      break;
    case State::kOpen:
      // A failure from a batch admitted before the trip; stays open and
      // the cool-down restarts (fresh evidence the key is still broken).
      ++e.consecutiveFailures;
      e.reopenAt = now + config_.openSeconds;
      break;
  }
}

index_t CircuitBreaker::openCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  index_t n = 0;
  for (const auto& [key, e] : entries_) {
    if (e.state == State::kOpen) {
      ++n;
    }
  }
  return n;
}

std::uint64_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t n = 0;
  for (const auto& [key, e] : entries_) {
    n += e.trips;
  }
  return n;
}

std::uint64_t CircuitBreaker::rejections() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t n = 0;
  for (const auto& [key, e] : entries_) {
    n += e.rejections;
  }
  return n;
}

std::vector<CircuitBreaker::KeySnapshot> CircuitBreaker::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<KeySnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [key, e] : entries_) {
    out.push_back({key, e.state, e.consecutiveFailures, e.trips,
                   e.rejections});
  }
  return out;
}

}  // namespace hplmxp::serve
