// Minimal JSON value + recursive-descent parser for the serving layer:
// request traces in, latency/hit-rate reports out. Deliberately tiny — no
// external dependency, only the subset the trace format uses (objects,
// arrays, strings, numbers, booleans, null). String escapes cover the
// full JSON repertoire including \uXXXX (surrogate pairs decode to
// UTF-8); malformed input raises JsonParseError carrying the byte offset.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/common.h"

namespace hplmxp::serve {

/// Raised on malformed JSON input. Derives from CheckError so existing
/// catch sites keep working; carries the byte offset of the failure so
/// tooling that replays externally generated traces can point at the
/// exact broken escape.
class JsonParseError : public CheckError {
 public:
  JsonParseError(std::size_t offset, const std::string& what)
      : CheckError("json parse error at offset " + std::to_string(offset) +
                   ": " + what),
        offset_(offset) {}

  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// One parsed JSON value. A tagged struct rather than std::variant so the
/// accessors can give precise CheckError messages on shape mismatches.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  /// Parses `text` (the whole string must be one JSON document). Throws
  /// CheckError with an offset-annotated message on malformed input.
  static JsonValue parse(const std::string& text);

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool isNull() const { return type_ == Type::kNull; }

  /// Typed accessors; throw CheckError when the value has another type.
  [[nodiscard]] bool asBool() const;
  [[nodiscard]] double asNumber() const;
  [[nodiscard]] const std::string& asString() const;
  [[nodiscard]] const std::vector<JsonValue>& asArray() const;
  [[nodiscard]] const std::map<std::string, JsonValue>& asObject() const;

  /// Object field lookup. `get` throws when absent; the defaulted forms
  /// return the fallback for absent keys (but still throw on type
  /// mismatch, so a typo'd value never silently defaults).
  [[nodiscard]] const JsonValue& get(const std::string& key) const;
  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] double numberOr(const std::string& key, double fallback) const;
  [[nodiscard]] std::string stringOr(const std::string& key,
                                     const std::string& fallback) const;

 private:
  friend class JsonParser;
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Escapes a string for embedding in a JSON document (quotes included).
[[nodiscard]] std::string jsonQuote(const std::string& s);

}  // namespace hplmxp::serve
