// Request traces for `hplmxp serve`: a JSON list of timed solve requests
// replayed open-loop (arrivals follow the trace clock, not the solver's
// completion pace, so queueing and batching behavior are faithfully
// reproduced).
//
// Trace format:
//
//   {
//     "name": "smoke",
//     "requests": [
//       {"at_ms": 0.0, "n": 64, "b": 16, "seed": 1,
//        "rhs_seed": 101, "deadline_ms": 2000.0},
//       ...
//     ]
//   }
//
// `at_ms` is the arrival offset from replay start; `deadline_ms` is
// relative to arrival (0 or absent = engine default). `pr`/`pc` default to
// the 1x1 grid the serve backend accepts.
//
// A request may instead carry `arrival_us`, an inter-arrival gap in
// microseconds relative to the PREVIOUS request's arrival (the format
// load generators like to emit). When present it overrides `at_ms`:
// arrival = previous arrival + arrival_us/1000. Absent both fields, the
// request arrives back-to-back with its predecessor (offset 0).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lowp/precision.h"
#include "util/common.h"

namespace hplmxp::serve {

struct TraceRequest {
  double atMs = 0.0;
  index_t n = 0;
  index_t b = 0;
  std::uint64_t seed = 0;
  std::uint64_t rhsSeed = 0;
  double deadlineMs = 0.0;
  index_t pr = 1;
  index_t pc = 1;
  /// Storage rung for the factors ("fp16" | "bf16" | "fp8e4m3" |
  /// "fp8e5m2"); absent in the JSON means fp16, the paper's format.
  lowp::StoragePrecision precision = lowp::StoragePrecision::kFp16;
};

struct RequestTrace {
  std::string name;
  std::vector<TraceRequest> requests;
};

/// Parses a trace file. Throws CheckError on unreadable files or
/// malformed/incomplete documents (every request needs n, b, seed).
[[nodiscard]] RequestTrace loadRequestTrace(const std::string& path);

/// Renders a trace back to its JSON form (round-trips loadRequestTrace).
[[nodiscard]] std::string traceToJson(const RequestTrace& trace);

/// Deterministic synthetic trace: `requests` arrivals spaced `gapMs`
/// apart, cycling over `keys` distinct problems (seed0, seed0+1, ...) of
/// order baseN / block baseB, each request with a fresh rhs seed. The key
/// cycle is what gives the factor cache its hits.
[[nodiscard]] RequestTrace makeSyntheticTrace(index_t requests, index_t keys,
                                              double gapMs, index_t baseN,
                                              index_t baseB,
                                              std::uint64_t seed0);

}  // namespace hplmxp::serve
