#include "serve/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "serve/json.h"
#include "util/stats.h"

namespace hplmxp::serve {

LatencyPercentiles LatencyPercentiles::of(
    const std::vector<double>& seconds) {
  LatencyPercentiles p;
  if (seconds.empty()) {
    return p;
  }
  p.p50Ms = percentile(seconds, 50.0) * 1e3;
  p.p95Ms = percentile(seconds, 95.0) * 1e3;
  p.p99Ms = percentile(seconds, 99.0) * 1e3;
  p.maxMs = *std::max_element(seconds.begin(), seconds.end()) * 1e3;
  return p;
}

std::string LatencyPercentiles::toJson() const {
  std::ostringstream os;
  os.precision(6);
  os << "{\"p50\": " << p50Ms << ", \"p95\": " << p95Ms
     << ", \"p99\": " << p99Ms << ", \"max\": " << maxMs << "}";
  return os.str();
}

void LatencyRecorder::record(const RequestOutcome& outcome) {
  std::lock_guard<std::mutex> lock(mutex_);
  outcomes_.push_back(outcome);
  if (outcome.status == RequestStatus::kCompleted) {
    if (recentTotals_.size() < kRecentWindow) {
      recentTotals_.push_back(outcome.totalSeconds);
    } else {
      recentTotals_[recentNext_] = outcome.totalSeconds;
      recentNext_ = (recentNext_ + 1) % kRecentWindow;
    }
  }
}

double LatencyRecorder::recentTotalP95Seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (recentTotals_.empty()) {
    return 0.0;
  }
  return percentile(recentTotals_, 95.0);
}

void LatencyRecorder::recordBatch(index_t batchSize) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++batchedSolves_;
  batchedColumns_ += static_cast<std::uint64_t>(batchSize);
  maxBatchSize_ = std::max(maxBatchSize_, batchSize);
}

std::vector<RequestOutcome> LatencyRecorder::outcomes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return outcomes_;
}

ServeReport LatencyRecorder::report(const FactorCache::Stats& cacheStats,
                                    double wallSeconds,
                                    index_t peakQueueDepth) const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServeReport r;
  r.cache = cacheStats;
  r.wallSeconds = wallSeconds;
  r.peakQueueDepth = peakQueueDepth;
  r.submitted = outcomes_.size();
  r.batchedSolves = batchedSolves_;
  r.maxBatchSize = maxBatchSize_;
  r.meanBatchSize =
      batchedSolves_ > 0 ? static_cast<double>(batchedColumns_) /
                               static_cast<double>(batchedSolves_)
                         : 0.0;

  std::vector<double> queueWait;
  std::vector<double> solve;
  std::vector<double> total;
  for (const RequestOutcome& o : outcomes_) {
    r.retries += static_cast<std::uint64_t>(o.retries);
    switch (o.status) {
      case RequestStatus::kCompleted:
        ++r.completed;
        queueWait.push_back(o.queueWaitSeconds);
        solve.push_back(o.solveSeconds);
        total.push_back(o.totalSeconds);
        break;
      case RequestStatus::kRejectedQueueFull:
        ++r.rejectedQueueFull;
        break;
      case RequestStatus::kRejectedDeadline:
        ++r.rejectedDeadline;
        break;
      case RequestStatus::kRejectedCircuitOpen:
        ++r.rejectedCircuitOpen;
        break;
      case RequestStatus::kFailed:
        ++r.failed;
        break;
      case RequestStatus::kPending:
        break;  // drained engines never report pending outcomes
    }
  }
  r.throughputRps =
      wallSeconds > 0.0 ? static_cast<double>(r.completed) / wallSeconds
                        : 0.0;
  r.queueWait = LatencyPercentiles::of(queueWait);
  r.solve = LatencyPercentiles::of(solve);
  r.total = LatencyPercentiles::of(total);
  return r;
}

Table ServeReport::toTable() const {
  Table t({"metric", "value"});
  t.addRow({"requests submitted", Table::num((long long)submitted)});
  t.addRow({"completed", Table::num((long long)completed)});
  t.addRow({"rejected (queue full)",
            Table::num((long long)rejectedQueueFull)});
  t.addRow({"rejected (deadline)", Table::num((long long)rejectedDeadline)});
  t.addRow({"rejected (circuit open)",
            Table::num((long long)rejectedCircuitOpen)});
  t.addRow({"failed", Table::num((long long)failed)});
  t.addRow({"retries (chaos)", Table::num((long long)retries)});
  t.addRow({"wall seconds", Table::num(wallSeconds, 3)});
  t.addRow({"throughput (req/s)", Table::num(throughputRps, 1)});
  t.addRow({"batched solves", Table::num((long long)batchedSolves)});
  t.addRow({"mean / max batch", Table::num(meanBatchSize, 2) + " / " +
                                    Table::num((long long)maxBatchSize)});
  t.addRow({"peak queue depth", Table::num((long long)peakQueueDepth)});
  t.addRow({"breaker trips", Table::num((long long)breakerTrips)});
  t.addRow({"breakers open / degraded",
            Table::num((long long)breakersOpen) + " / " +
                (degraded ? "yes" : "no")});
  if (hedges > 0 || quarantines > 0) {
    t.addRow({"hedges / wins / wasted", Table::num((long long)hedges) +
                                            " / " +
                                            Table::num((long long)hedgeWins) +
                                            " / " +
                                            Table::num((long long)hedgeWasted)});
    t.addRow({"health quarantines", Table::num((long long)quarantines)});
  }
  t.addRow({"cache hit rate", Table::num(cache.hitRate() * 100.0, 1) + "%"});
  t.addRow({"factorizations run", Table::num((long long)cache.factorCount)});
  t.addRow({"cache evictions", Table::num((long long)cache.evictions)});
  t.addRow({"cache bytes", Table::num((long long)cache.bytesInUse)});
  t.addRow({"queue wait p50/p95/p99 ms",
            Table::num(queueWait.p50Ms, 2) + " / " +
                Table::num(queueWait.p95Ms, 2) + " / " +
                Table::num(queueWait.p99Ms, 2)});
  t.addRow({"solve p50/p95/p99 ms",
            Table::num(solve.p50Ms, 2) + " / " + Table::num(solve.p95Ms, 2) +
                " / " + Table::num(solve.p99Ms, 2)});
  t.addRow({"total p50/p95/p99 ms",
            Table::num(total.p50Ms, 2) + " / " + Table::num(total.p95Ms, 2) +
                " / " + Table::num(total.p99Ms, 2)});
  return t;
}

std::string ServeReport::toJson() const {
  std::ostringstream os;
  os.precision(6);
  os << "{\n";
  os << "  \"trace\": " << jsonQuote(trace) << ",\n";
  os << "  \"submitted\": " << submitted << ",\n";
  os << "  \"completed\": " << completed << ",\n";
  os << "  \"rejected_queue_full\": " << rejectedQueueFull << ",\n";
  os << "  \"rejected_deadline\": " << rejectedDeadline << ",\n";
  os << "  \"rejected_circuit_open\": " << rejectedCircuitOpen << ",\n";
  os << "  \"failed\": " << failed << ",\n";
  os << "  \"retries\": " << retries << ",\n";
  os << "  \"wall_seconds\": " << wallSeconds << ",\n";
  os << "  \"throughput_rps\": " << throughputRps << ",\n";
  os << "  \"batched_solves\": " << batchedSolves << ",\n";
  os << "  \"mean_batch_size\": " << meanBatchSize << ",\n";
  os << "  \"max_batch_size\": " << maxBatchSize << ",\n";
  os << "  \"peak_queue_depth\": " << peakQueueDepth << ",\n";
  os << "  \"injected_delays\": " << injectedDelays << ",\n";
  os << "  \"injected_transients\": " << injectedTransients << ",\n";
  os << "  \"breaker_trips\": " << breakerTrips << ",\n";
  os << "  \"breaker_rejections\": " << breakerRejections << ",\n";
  os << "  \"breakers_open\": " << breakersOpen << ",\n";
  os << "  \"degraded\": " << (degraded ? "true" : "false") << ",\n";
  os << "  \"hedges\": " << hedges << ",\n";
  os << "  \"hedge_wins\": " << hedgeWins << ",\n";
  os << "  \"hedge_wasted\": " << hedgeWasted << ",\n";
  os << "  \"quarantines\": " << quarantines << ",\n";
  os << "  \"cache_hit_rate\": " << cache.hitRate() << ",\n";
  os << "  \"cache_lookups\": " << cache.lookups << ",\n";
  os << "  \"cache_hits\": " << cache.hits << ",\n";
  os << "  \"cache_coalesced\": " << cache.coalesced << ",\n";
  os << "  \"cache_misses\": " << cache.misses << ",\n";
  os << "  \"factor_count\": " << cache.factorCount << ",\n";
  os << "  \"cache_evictions\": " << cache.evictions << ",\n";
  os << "  \"cache_bytes_in_use\": " << cache.bytesInUse << ",\n";
  os << "  \"cache_budget_bytes\": " << cache.budgetBytes << ",\n";
  os << "  \"queue_wait_ms\": " << queueWait.toJson() << ",\n";
  os << "  \"solve_ms\": " << solve.toJson() << ",\n";
  os << "  \"total_ms\": " << total.toJson() << "\n";
  os << "}\n";
  return os.str();
}

void writeReportFile(const std::string& path, const std::string& json) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  HPLMXP_REQUIRE(f != nullptr,
                 ("cannot write report file: " + path).c_str());
  std::fputs(json.c_str(), f);
  std::fclose(f);
}

}  // namespace hplmxp::serve
