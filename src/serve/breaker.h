// Per-key circuit breaker: the serve layer's answer to a *persistently*
// failing problem key (a poisoned factorization, a key whose solves keep
// tripping the chaos harness, a shape the backend mishandles).
//
// Retries handle transient faults; they make persistent ones worse — every
// retry burns a worker lane that healthy keys are queued behind. The
// breaker cuts that loss off with the classic three-state machine:
//
//     closed ──(failureThreshold consecutive failures)──▶ open
//       ▲                                                  │
//       │ probe succeeds                 cool-down elapses  │
//       └───────────── half-open ◀──────────────────────────┘
//                        │ probe fails: back to open
//
// While open, submissions for the key are rejected immediately with
// kRejectedCircuitOpen (a structured answer, never a hang — the same
// contract as every other rejection). After `openSeconds` the next
// admission becomes a probe: it runs, and its outcome decides between
// closing the circuit and another cool-down round.
//
// The breaker gates *admission only*. Requests already queued when the
// circuit trips still execute; their outcomes keep feeding the state
// machine. All methods are thread-safe; time is the engine's monotonic
// clock, passed in explicitly so the policy stays deterministic and
// unit-testable without sleeping.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "serve/problem_key.h"
#include "util/common.h"

namespace hplmxp::serve {

struct BreakerConfig {
  bool enabled = false;
  /// Consecutive batch failures for one key that trip its circuit.
  index_t failureThreshold = 3;
  /// Cool-down while open; the first admission after it is the probe.
  double openSeconds = 0.050;
  /// Probe admissions allowed while half-open (before a verdict).
  index_t halfOpenProbes = 1;

  void validate() const;
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct KeySnapshot {
    ProblemKey key;
    State state = State::kClosed;
    index_t consecutiveFailures = 0;
    std::uint64_t trips = 0;
    std::uint64_t rejections = 0;
  };

  explicit CircuitBreaker(BreakerConfig config);

  /// Admission gate. True = proceed (in half-open state this consumes a
  /// probe slot); false = reject with kRejectedCircuitOpen.
  [[nodiscard]] bool allow(const ProblemKey& key, double now);

  /// A batch for `key` completed; closes a half-open circuit and resets
  /// the failure streak.
  void onSuccess(const ProblemKey& key);

  /// A batch for `key` failed terminally (retry budget exhausted or a
  /// non-retryable error). Advances closed toward open; re-opens a
  /// half-open circuit.
  void onFailure(const ProblemKey& key, double now);

  /// Circuits currently open (cooling down). Drives the engine's degraded
  /// mode.
  [[nodiscard]] index_t openCount() const;

  /// Total closed->open (and half-open->open) transitions.
  [[nodiscard]] std::uint64_t trips() const;

  /// Total admissions rejected while open/half-open.
  [[nodiscard]] std::uint64_t rejections() const;

  [[nodiscard]] std::vector<KeySnapshot> snapshot() const;

 private:
  struct Entry {
    State state = State::kClosed;
    index_t consecutiveFailures = 0;
    double reopenAt = 0.0;        // engine-clock instant; valid while open
    index_t probesInFlight = 0;   // admissions granted while half-open
    std::uint64_t trips = 0;
    std::uint64_t rejections = 0;
  };

  void trip(Entry& e, double now);

  BreakerConfig config_;
  mutable std::mutex mutex_;
  std::map<ProblemKey, Entry> entries_;
};

[[nodiscard]] constexpr const char* toString(CircuitBreaker::State s) {
  switch (s) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half-open";
  }
  return "?";
}

}  // namespace hplmxp::serve
