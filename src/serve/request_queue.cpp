#include "serve/request_queue.h"

#include <algorithm>
#include <limits>

namespace hplmxp::serve {

RequestQueue::RequestQueue(index_t maxDepth) : maxDepth_(maxDepth) {
  HPLMXP_REQUIRE(maxDepth > 0, "queue depth bound must be positive");
}

bool RequestQueue::push(QueuedRequest qr) {
  if (depth_ >= maxDepth_) {
    ++rejectedFull_;
    return false;
  }
  buckets_[qr.request.key].push_back(std::move(qr));
  ++depth_;
  peakDepth_ = std::max(peakDepth_, depth_);
  return true;
}

void RequestQueue::pushRetry(QueuedRequest qr) {
  buckets_[qr.request.key].push_back(std::move(qr));
  ++depth_;
  peakDepth_ = std::max(peakDepth_, depth_);
}

const ProblemKey* RequestQueue::oldestKey(double* ageOut) const {
  return readyKey(std::numeric_limits<double>::infinity(), ageOut, nullptr);
}

const ProblemKey* RequestQueue::readyKey(double now, double* ageOut,
                                         double* nextReadyOut) const {
  const ProblemKey* best = nullptr;
  double bestSubmit = 0.0;
  double nextReady = std::numeric_limits<double>::infinity();
  for (const auto& [key, bucket] : buckets_) {
    if (bucket.empty()) {
      continue;
    }
    const QueuedRequest& front = bucket.front();
    if (front.notBeforeSeconds > now) {
      nextReady = std::min(nextReady, front.notBeforeSeconds);
      continue;
    }
    if (best == nullptr || front.submitSeconds < bestSubmit) {
      best = &key;
      bestSubmit = front.submitSeconds;
    }
  }
  if (best != nullptr && ageOut != nullptr) {
    *ageOut = bestSubmit;
  }
  if (nextReadyOut != nullptr) {
    *nextReadyOut = nextReady;
  }
  return best;
}

std::vector<QueuedRequest> RequestQueue::take(const ProblemKey& key,
                                              index_t maxBatch) {
  return take(key, maxBatch, std::numeric_limits<double>::infinity());
}

std::vector<QueuedRequest> RequestQueue::take(const ProblemKey& key,
                                              index_t maxBatch, double now) {
  std::vector<QueuedRequest> out;
  const auto it = buckets_.find(key);
  if (it == buckets_.end()) {
    return out;
  }
  while (!it->second.empty() &&
         static_cast<index_t>(out.size()) < maxBatch &&
         it->second.front().notBeforeSeconds <= now) {
    out.push_back(std::move(it->second.front()));
    it->second.pop_front();
    --depth_;
  }
  if (it->second.empty()) {
    buckets_.erase(it);
  }
  return out;
}

}  // namespace hplmxp::serve
