// Coalescing policy: when should a worker stop waiting and form a batch?
//
// The Batcher trades a bounded coalescing delay for multi-RHS efficiency:
// a freshly arrived key is held up to `maxBatchDelaySeconds` hoping that
// compatible requests (same ProblemKey) arrive and can share the blocked
// refinement; a full batch — or an aged one — dispatches immediately. The
// policy is a pure function of queue state and the clock, so it is unit-
// testable without threads.
#pragma once

#include <algorithm>
#include <cmath>

#include "serve/request_queue.h"
#include "util/common.h"

namespace hplmxp::serve {

struct BatchPolicy {
  index_t maxBatch = 8;              // RHS columns per coalesced solve
  double maxBatchDelaySeconds = 0.0; // how long to hold a partial batch
};

class Batcher {
 public:
  explicit Batcher(BatchPolicy policy) : policy_(policy) {
    HPLMXP_REQUIRE(policy.maxBatch > 0, "batch size must be positive");
    HPLMXP_REQUIRE(policy.maxBatchDelaySeconds >= 0.0,
                   "batch delay must be non-negative");
  }

  /// What a worker should do given the queue and the current engine-clock
  /// time.
  struct Decision {
    bool dispatch = false;     // take a batch now (key below)
    double waitSeconds = 0.0;  // else: sleep at most this long (0 = idle)
    ProblemKey key;
  };

  [[nodiscard]] Decision decide(const RequestQueue& queue,
                                double nowSeconds) const {
    Decision d;
    double oldestSubmit = 0.0;
    double nextReady = 0.0;
    const ProblemKey* key =
        queue.readyKey(nowSeconds, &oldestSubmit, &nextReady);
    if (key == nullptr) {
      // Nothing dispatchable. If requests exist but are all backing off,
      // tell the worker exactly how long until the earliest one matures;
      // a truly empty queue keeps waitSeconds at 0 (idle — the caller
      // blocks on its condition variable).
      if (!queue.empty() && std::isfinite(nextReady)) {
        d.waitSeconds = std::max(nextReady - nowSeconds, 0.0);
      }
      return d;
    }
    d.key = *key;
    const double age = nowSeconds - oldestSubmit;
    // Dispatch when the oldest key has a full batch, has aged past the
    // coalescing window, or the queue is saturated (holding out for more
    // batch-mates under backpressure only makes the tail worse).
    if (queue.depth() >= policy_.maxBatch ||
        age >= policy_.maxBatchDelaySeconds) {
      d.dispatch = true;
      return d;
    }
    d.waitSeconds = policy_.maxBatchDelaySeconds - age;
    return d;
  }

  [[nodiscard]] const BatchPolicy& policy() const { return policy_; }

 private:
  BatchPolicy policy_;
};

}  // namespace hplmxp::serve
