#include "serve/engine.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>
#include <utility>

#include "gen/matgen.h"
#include "util/logging.h"

namespace hplmxp::serve {

namespace {

/// Smallest wait a worker parks for while a partial batch ages; guards
/// against a zero-length wait_for spinning the lock.
constexpr double kMinBatchWaitSeconds = 20e-6;

std::chrono::duration<double> secondsOf(double s) {
  return std::chrono::duration<double>(s);
}

/// SplitMix64 over (request id, attempt): the jitter source for retry
/// backoff. Deterministic so chaos runs replay exactly.
double jitter01(std::uint64_t id, std::uint64_t attempt) {
  std::uint64_t z = id * 0x9E3779B97F4A7C15ull + attempt + 1;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

}  // namespace

const RequestOutcome& ServeEngine::Handle::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return done_; });
  return outcome_;
}

bool ServeEngine::Handle::done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

void ServeEngine::Handle::onDone(std::function<void()> callback) {
  bool already = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (done_) {
      already = true;  // fire below, outside the lock
    } else {
      onDone_ = std::move(callback);
    }
  }
  if (already && callback) {
    callback();
  }
}

void ServeEngine::Handle::finish(RequestOutcome outcome,
                                 std::vector<double> solution) {
  std::function<void()> callback;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    outcome_ = std::move(outcome);
    solution_ = std::move(solution);
    done_ = true;
    callback = std::move(onDone_);
  }
  cv_.notify_all();
  if (callback) {
    callback();
  }
}

ServeEngine::ServeEngine(ServeConfig config, ThreadPool* pool)
    : config_(std::move(config)),
      pool_(pool != nullptr ? pool : &ThreadPool::global()),
      cache_(config_.cacheBytes),
      batcher_(BatchPolicy{config_.maxBatch, config_.maxBatchDelaySeconds}),
      breaker_(config_.breaker),
      queue_(config_.queueDepth),
      paused_(config_.startPaused) {
  HPLMXP_REQUIRE(config_.workers > 0, "serve engine needs >= 1 worker");
  HPLMXP_REQUIRE(config_.maxRetries >= 0, "retry budget must be >= 0");
  HPLMXP_REQUIRE(config_.retryBackoffSeconds >= 0.0 &&
                     config_.retryBackoffMaxSeconds >= 0.0,
                 "retry backoff must be non-negative");
  HPLMXP_REQUIRE(config_.degradedOpenBreakers >= 0,
                 "degraded-mode threshold must be >= 0");
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (index_t lane = 0; lane < config_.workers; ++lane) {
    workers_.emplace_back([this, lane] { workerLoop(lane); });
  }
}

ServeEngine::~ServeEngine() { stop(); }

ServeEngine::HandlePtr ServeEngine::submit(const SolveRequest& request) {
  auto handle = std::make_shared<Handle>();
  const double submitNow = now();

  RequestOutcome outcome;
  outcome.key = request.key;
  outcome.rhsSeed = request.rhsSeed;

  std::unique_lock<std::mutex> lock(mutex_);
  outcome.id = request.id != 0 ? request.id : nextAutoId_++;

  // Admission: keys the single-device backend cannot serve fail fast with
  // a structured outcome instead of surfacing a worker-side exception.
  std::string reject;
  if (stopping_) {
    reject = "engine is stopping";
  } else if (request.key.pr != 1 || request.key.pc != 1) {
    reject = "single-device serve backend only accepts 1x1 process grids";
  } else if (request.key.n <= 0 || request.key.b <= 0 ||
             request.key.b > request.key.n) {
    reject = "invalid problem shape: n=" + std::to_string(request.key.n) +
             " b=" + std::to_string(request.key.b);
  }
  if (!reject.empty()) {
    lock.unlock();
    outcome.status = RequestStatus::kFailed;
    outcome.error = std::move(reject);
    recorder_.record(outcome);
    handle->finish(std::move(outcome), {});
    return handle;
  }

  // Circuit breaker: a key with an open circuit is answered immediately
  // with a structured rejection — no queue slot, no worker time.
  if (config_.breaker.enabled && !breaker_.allow(request.key, submitNow)) {
    lock.unlock();
    outcome.status = RequestStatus::kRejectedCircuitOpen;
    outcome.error = "circuit open for key " + request.key.toString();
    outcome.totalSeconds = now() - submitNow;
    recorder_.record(outcome);
    handle->finish(std::move(outcome), {});
    return handle;
  }

  QueuedRequest qr;
  qr.request = request;
  qr.request.id = outcome.id;
  qr.submitSeconds = submitNow;
  double rel = request.deadlineSeconds > 0.0 ? request.deadlineSeconds
                                             : config_.defaultDeadlineSeconds;
  if (rel > 0.0 && degraded()) {
    // Degraded mode sheds deadline slack: while circuits are burning the
    // engine promises less and answers sooner.
    rel *= config_.degradedDeadlineScale;
  }
  qr.deadlineSeconds = rel > 0.0 ? submitNow + rel : 0.0;
  qr.handle = handle;

  if (!queue_.push(std::move(qr))) {
    lock.unlock();
    outcome.status = RequestStatus::kRejectedQueueFull;
    outcome.totalSeconds = now() - submitNow;
    recorder_.record(outcome);
    handle->finish(std::move(outcome), {});
    return handle;
  }
  ++outstanding_;
  lock.unlock();
  cv_.notify_one();
  return handle;
}

void ServeEngine::resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  cv_.notify_all();
}

void ServeEngine::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  HPLMXP_REQUIRE(!paused_, "drain() on a paused engine would never return");
  idleCv_.wait(lock, [&] { return outstanding_ == 0; });
}

void ServeEngine::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    paused_ = false;
  }
  cv_.notify_all();
  // Workers flush the queue (every admitted request reaches a terminal
  // status before its worker exits), so after the join nothing is
  // outstanding.
  for (std::thread& w : workers_) {
    if (w.joinable()) {
      w.join();
    }
  }
}

void ServeEngine::setServiceStretch(double stretch) {
  HPLMXP_REQUIRE(stretch >= 1.0, "service stretch must be >= 1.0");
  serviceStretch_.store(stretch, std::memory_order_relaxed);
}

bool ServeEngine::degraded() const {
  return config_.breaker.enabled && config_.degradedOpenBreakers > 0 &&
         breaker_.openCount() >= config_.degradedOpenBreakers;
}

double ServeEngine::retryBackoff(std::uint64_t id, index_t attempt) const {
  if (config_.retryBackoffSeconds <= 0.0) {
    return 0.0;
  }
  const double exp = static_cast<double>(
      std::uint64_t{1} << std::min<index_t>(attempt, 10));
  const double j = 0.5 + 0.5 * jitter01(id, static_cast<std::uint64_t>(attempt));
  return std::min(config_.retryBackoffSeconds * exp * j,
                  config_.retryBackoffMaxSeconds);
}

ServeReport ServeEngine::report() const {
  index_t peak = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    peak = queue_.peakDepth();
  }
  ServeReport r = recorder_.report(cache_.stats(), clock_.seconds(), peak);
  if (config_.chaos) {
    const simmpi::FaultStats s = config_.chaos->stats();
    r.injectedDelays = s.delays;
    r.injectedTransients = s.transientFailures;
  }
  if (config_.breaker.enabled) {
    r.breakerTrips = breaker_.trips();
    r.breakerRejections = breaker_.rejections();
    r.breakersOpen = breaker_.openCount();
    r.degraded = degraded();
  }
  return r;
}

void ServeEngine::workerLoop(index_t lane) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (stopping_ && queue_.empty()) {
      break;
    }
    if (paused_ || queue_.empty()) {
      cv_.wait(lock);
      continue;
    }
    const double t = now();
    Batcher::Decision d = batcher_.decide(queue_, t);
    const bool isDegraded = degraded();
    if (isDegraded && !d.dispatch) {
      // Degraded mode drops the coalescing window: dispatch any ready key
      // immediately (backoff eligibility still applies).
      double submit = 0.0;
      double nextReady = 0.0;
      const ProblemKey* ready = queue_.readyKey(t, &submit, &nextReady);
      if (ready != nullptr) {
        d.dispatch = true;
        d.key = *ready;
      }
    }
    if (!d.dispatch && !stopping_) {
      // Hold the partial batch open for the rest of its coalescing
      // window (or until the earliest backed-off retry matures); new
      // arrivals notify and re-decide.
      cv_.wait_for(lock,
                   secondsOf(std::max(d.waitSeconds, kMinBatchWaitSeconds)));
      continue;
    }
    // Dispatch (or stop-flush without waiting out the window). Stop-flush
    // ignores backoff eligibility: every admitted request must terminate.
    const index_t cap = isDegraded ? 1 : config_.maxBatch;
    std::vector<QueuedRequest> batch =
        stopping_ ? queue_.take(d.key, cap) : queue_.take(d.key, cap, t);
    if (batch.empty()) {
      continue;
    }
    lock.unlock();
    executeBatch(lane, d.key, std::move(batch));
    lock.lock();
  }
}

void ServeEngine::finishRequest(QueuedRequest& qr, RequestOutcome outcome,
                                std::vector<double> solution) {
  recorder_.record(outcome);
  std::static_pointer_cast<Handle>(qr.handle)->finish(std::move(outcome),
                                                      std::move(solution));
  bool idle = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    idle = --outstanding_ == 0;
  }
  if (idle) {
    idleCv_.notify_all();
  }
}

void ServeEngine::executeBatch(index_t lane, const ProblemKey& key,
                               std::vector<QueuedRequest> batch) {
  const double pickup = now();

  // One chaos draw per execution attempt, the worker lane standing in for
  // the rank. Delays are *survived* (slept through, then deadlines
  // re-checked); transient failures turn into bounded requeues.
  bool transient = false;
  if (config_.chaos) {
    const simmpi::FaultDecision d = config_.chaos->next(lane);
    if (d.delayMicros > 0) {
      config_.chaos->noteDelay();
      std::this_thread::sleep_for(std::chrono::microseconds(d.delayMicros));
    }
    transient = d.transientSendFailure;
  }

  // Deadline check after any injected delay: expired requests are
  // answered as rejected, never hung.
  auto expireOverdue = [&](std::vector<QueuedRequest>& reqs,
                           double factorSeconds) {
    const double t = now();
    std::vector<QueuedRequest> live;
    live.reserve(reqs.size());
    for (QueuedRequest& qr : reqs) {
      if (qr.deadlineSeconds > 0.0 && t > qr.deadlineSeconds) {
        RequestOutcome o;
        o.id = qr.request.id;
        o.key = qr.request.key;
        o.rhsSeed = qr.request.rhsSeed;
        o.status = RequestStatus::kRejectedDeadline;
        o.queueWaitSeconds = pickup - qr.submitSeconds;
        o.factorSeconds = factorSeconds;
        o.totalSeconds = t - qr.submitSeconds;
        o.retries = qr.retries;
        finishRequest(qr, std::move(o), {});
      } else {
        live.push_back(std::move(qr));
      }
    }
    reqs = std::move(live);
  };
  expireOverdue(batch, 0.0);
  if (batch.empty()) {
    return;
  }

  // Transient fault: requeue the whole batch within each request's retry
  // budget; past it, fail with a structured outcome.
  auto requeueOrFail = [&](std::vector<QueuedRequest>& reqs,
                           const std::string& why) {
    bool requeued = false;
    for (QueuedRequest& qr : reqs) {
      if (qr.retries >= config_.maxRetries) {
        RequestOutcome o;
        o.id = qr.request.id;
        o.key = qr.request.key;
        o.rhsSeed = qr.request.rhsSeed;
        o.status = RequestStatus::kFailed;
        o.error = why + " (retry budget of " +
                  std::to_string(config_.maxRetries) + " exhausted)";
        o.queueWaitSeconds = pickup - qr.submitSeconds;
        o.totalSeconds = now() - qr.submitSeconds;
        o.retries = qr.retries;
        finishRequest(qr, std::move(o), {});
      } else {
        ++qr.retries;
        // Jittered exponential backoff keeps a retry storm from hammering
        // the same key back-to-back; 0 base keeps the legacy behavior.
        qr.notBeforeSeconds =
            now() + retryBackoff(qr.request.id, qr.retries);
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.pushRetry(std::move(qr));
        requeued = true;
      }
    }
    if (requeued) {
      cv_.notify_all();
    }
  };
  if (transient) {
    // Lane-attributed chaos, not a property of the key — retried without
    // feeding the per-key breaker.
    config_.chaos->noteTransient();
    requeueOrFail(batch, "injected transient fault");
    return;
  }

  // Key-attributed fault hook (tests/benches): a poisoned key fails every
  // execution attempt, flows through the retry path, and feeds the
  // breaker so persistent failure eventually trips the circuit.
  if (config_.keyFaultHook && config_.keyFaultHook(key)) {
    if (config_.breaker.enabled) {
      breaker_.onFailure(key, now());
    }
    requeueOrFail(batch, "injected key fault");
    return;
  }

  try {
    const FactorCache::Fetch fetch = cache_.getOrFactor(key, [&] {
      if (config_.factorOverride) {
        return config_.factorOverride(key);
      }
      ProblemGenerator gen(key.seed, key.n);
      return factorStorageSingle(gen, key.b, config_.vendor, key.precision);
    });

    // A cold factorization can be the slowest step by far; late requests
    // are rejected here rather than solved past their deadline.
    expireOverdue(batch, fetch.factorSeconds);
    if (batch.empty()) {
      return;
    }

    std::vector<std::uint64_t> rhsSeeds;
    rhsSeeds.reserve(batch.size());
    for (const QueuedRequest& qr : batch) {
      rhsSeeds.push_back(qr.request.rhsSeed);
    }
    std::vector<std::vector<double>> xs;
    ProblemGenerator gen(key.seed, key.n);
    SolveManyResult res = solveManyMixedSingle(
        *fetch.factors, gen, rhsSeeds, xs, config_.maxIrIterations, pool_);
    recorder_.recordBatch(static_cast<index_t>(batch.size()));

    // Gray-fault hook: a slow-but-alive shard serves correct answers, just
    // `stretch` times later. Applied after the real solve so the result is
    // untouched and the stretch shows up purely as service time.
    const double stretch = serviceStretch_.load(std::memory_order_relaxed);
    if (stretch > 1.0) {
      const double extra = res.solveSeconds * (stretch - 1.0);
      std::this_thread::sleep_for(std::chrono::duration<double>(extra));
      res.solveSeconds *= stretch;
    }

    // Feed the breaker BEFORE publishing outcomes: a client that saw its
    // half-open probe complete must find the circuit closed, not still
    // holding the probe slot.
    if (config_.breaker.enabled) {
      breaker_.onSuccess(key);
    }

    const double done = now();
    for (std::size_t c = 0; c < batch.size(); ++c) {
      QueuedRequest& qr = batch[c];
      const SolveManyColumn& col = res.columns[c];
      RequestOutcome o;
      o.id = qr.request.id;
      o.key = qr.request.key;
      o.rhsSeed = qr.request.rhsSeed;
      o.status = RequestStatus::kCompleted;
      o.queueWaitSeconds = pickup - qr.submitSeconds;
      o.factorSeconds = fetch.factorSeconds;
      o.solveSeconds = res.solveSeconds;
      o.totalSeconds = done - qr.submitSeconds;
      o.cacheHit = fetch.hit;
      o.batchSize = static_cast<index_t>(batch.size());
      o.irIterations = col.irIterations;
      o.converged = col.converged;
      o.residualInf = col.residualInf;
      o.retries = qr.retries;
      finishRequest(qr, std::move(o), std::move(xs[c]));
    }
  } catch (const std::exception& e) {
    // Worker-side failures (including chaos-injected ones surfacing as
    // exceptions) follow the same bounded-retry path as transients.
    logWarn("serve worker ", lane, ": batch for ", key.toString(),
            " failed: ", e.what());
    if (config_.breaker.enabled) {
      breaker_.onFailure(key, now());
    }
    requeueOrFail(batch, std::string("solver error: ") + e.what());
  }
}

}  // namespace hplmxp::serve
