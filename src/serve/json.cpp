#include "serve/json.h"

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace hplmxp::serve {

namespace {

[[noreturn]] void parseFail(std::size_t pos, const std::string& what) {
  throw JsonParseError(pos, what);
}

/// Appends the UTF-8 encoding of a Unicode code point (<= U+10FFFF).
void appendUtf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

}  // namespace

/// Hand-rolled recursive-descent parser over the input string.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue run() {
    JsonValue v = value();
    skipWs();
    if (pos_ != text_.size()) {
      parseFail(pos_, "trailing content after document");
    }
    return v;
  }

 private:
  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      parseFail(pos_, "unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      parseFail(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consumeLiteral(const char* lit) {
    std::size_t i = 0;
    while (lit[i] != '\0') {
      if (pos_ + i >= text_.size() || text_[pos_ + i] != lit[i]) {
        return false;
      }
      ++i;
    }
    pos_ += i;
    return true;
  }

  JsonValue value() {
    skipWs();
    const char c = peek();
    JsonValue v;
    switch (c) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        v.type_ = JsonValue::Type::kString;
        v.string_ = string();
        return v;
      case 't':
        if (!consumeLiteral("true")) {
          parseFail(pos_, "bad literal");
        }
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = true;
        return v;
      case 'f':
        if (!consumeLiteral("false")) {
          parseFail(pos_, "bad literal");
        }
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = false;
        return v;
      case 'n':
        if (!consumeLiteral("null")) {
          parseFail(pos_, "bad literal");
        }
        return v;
      default:
        return number();
    }
  }

  JsonValue object() {
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    expect('{');
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skipWs();
      const std::string key = string();
      skipWs();
      expect(':');
      v.object_[key] = value();
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    expect('[');
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(value());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        parseFail(pos_, "unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        parseFail(pos_, "unterminated escape");
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          // pos_ - 2 points at the backslash that opened this escape, the
          // offset an error should blame.
          const std::size_t escStart = pos_ - 2;
          std::uint32_t cp = hex4(escStart);
          if (cp >= 0xDC00 && cp <= 0xDFFF) {
            parseFail(escStart, "unpaired low surrogate");
          }
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a \uDC00..\uDFFF low half must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              parseFail(escStart, "unpaired high surrogate");
            }
            pos_ += 2;
            const std::uint32_t lo = hex4(escStart);
            if (lo < 0xDC00 || lo > 0xDFFF) {
              parseFail(escStart,
                        "high surrogate not followed by a low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          }
          appendUtf8(out, cp);
          break;
        }
        default:
          parseFail(pos_ - 1, "unsupported escape");
      }
    }
  }

  /// Reads 4 hex digits at pos_ (the payload of a \uXXXX escape);
  /// `escStart` is the offset of the opening backslash for error blame.
  std::uint32_t hex4(std::size_t escStart) {
    if (pos_ + 4 > text_.size()) {
      parseFail(escStart, "truncated \\u escape");
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_];
      std::uint32_t digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint32_t>(10 + c - 'a');
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<std::uint32_t>(10 + c - 'A');
      } else {
        parseFail(pos_, "bad hex digit in \\u escape");
      }
      v = (v << 4) | digit;
      ++pos_;
    }
    return v;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      parseFail(pos_, "expected a value");
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      parseFail(start, "malformed number '" + token + "'");
    }
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    v.number_ = d;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(const std::string& text) {
  return JsonParser(text).run();
}

bool JsonValue::asBool() const {
  HPLMXP_REQUIRE(type_ == Type::kBool, "json: expected a boolean");
  return bool_;
}

double JsonValue::asNumber() const {
  HPLMXP_REQUIRE(type_ == Type::kNumber, "json: expected a number");
  return number_;
}

const std::string& JsonValue::asString() const {
  HPLMXP_REQUIRE(type_ == Type::kString, "json: expected a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::asArray() const {
  HPLMXP_REQUIRE(type_ == Type::kArray, "json: expected an array");
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::asObject() const {
  HPLMXP_REQUIRE(type_ == Type::kObject, "json: expected an object");
  return object_;
}

const JsonValue& JsonValue::get(const std::string& key) const {
  const auto& obj = asObject();
  const auto it = obj.find(key);
  HPLMXP_REQUIRE(it != obj.end(),
                 ("json: missing required key '" + key + "'").c_str());
  return it->second;
}

bool JsonValue::has(const std::string& key) const {
  const auto& obj = asObject();
  return obj.find(key) != obj.end();
}

double JsonValue::numberOr(const std::string& key, double fallback) const {
  return has(key) ? get(key).asNumber() : fallback;
}

std::string JsonValue::stringOr(const std::string& key,
                                const std::string& fallback) const {
  return has(key) ? get(key).asString() : fallback;
}

std::string jsonQuote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Remaining control characters are only representable escaped.
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out += "\"";
  return out;
}

}  // namespace hplmxp::serve
