#include "serve/json.h"

#include <cctype>
#include <cstdlib>

namespace hplmxp::serve {

namespace {

[[noreturn]] void parseFail(std::size_t pos, const std::string& what) {
  throw CheckError("json parse error at offset " + std::to_string(pos) +
                   ": " + what);
}

}  // namespace

/// Hand-rolled recursive-descent parser over the input string.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue run() {
    JsonValue v = value();
    skipWs();
    if (pos_ != text_.size()) {
      parseFail(pos_, "trailing content after document");
    }
    return v;
  }

 private:
  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      parseFail(pos_, "unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      parseFail(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consumeLiteral(const char* lit) {
    std::size_t i = 0;
    while (lit[i] != '\0') {
      if (pos_ + i >= text_.size() || text_[pos_ + i] != lit[i]) {
        return false;
      }
      ++i;
    }
    pos_ += i;
    return true;
  }

  JsonValue value() {
    skipWs();
    const char c = peek();
    JsonValue v;
    switch (c) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        v.type_ = JsonValue::Type::kString;
        v.string_ = string();
        return v;
      case 't':
        if (!consumeLiteral("true")) {
          parseFail(pos_, "bad literal");
        }
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = true;
        return v;
      case 'f':
        if (!consumeLiteral("false")) {
          parseFail(pos_, "bad literal");
        }
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = false;
        return v;
      case 'n':
        if (!consumeLiteral("null")) {
          parseFail(pos_, "bad literal");
        }
        return v;
      default:
        return number();
    }
  }

  JsonValue object() {
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    expect('{');
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skipWs();
      const std::string key = string();
      skipWs();
      expect(':');
      v.object_[key] = value();
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    expect('[');
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(value());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        parseFail(pos_, "unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        parseFail(pos_, "unterminated escape");
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        default:
          parseFail(pos_ - 1, "unsupported escape");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      parseFail(pos_, "expected a value");
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      parseFail(start, "malformed number '" + token + "'");
    }
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    v.number_ = d;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(const std::string& text) {
  return JsonParser(text).run();
}

bool JsonValue::asBool() const {
  HPLMXP_REQUIRE(type_ == Type::kBool, "json: expected a boolean");
  return bool_;
}

double JsonValue::asNumber() const {
  HPLMXP_REQUIRE(type_ == Type::kNumber, "json: expected a number");
  return number_;
}

const std::string& JsonValue::asString() const {
  HPLMXP_REQUIRE(type_ == Type::kString, "json: expected a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::asArray() const {
  HPLMXP_REQUIRE(type_ == Type::kArray, "json: expected an array");
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::asObject() const {
  HPLMXP_REQUIRE(type_ == Type::kObject, "json: expected an object");
  return object_;
}

const JsonValue& JsonValue::get(const std::string& key) const {
  const auto& obj = asObject();
  const auto it = obj.find(key);
  HPLMXP_REQUIRE(it != obj.end(),
                 ("json: missing required key '" + key + "'").c_str());
  return it->second;
}

bool JsonValue::has(const std::string& key) const {
  const auto& obj = asObject();
  return obj.find(key) != obj.end();
}

double JsonValue::numberOr(const std::string& key, double fallback) const {
  return has(key) ? get(key).asNumber() : fallback;
}

std::string JsonValue::stringOr(const std::string& key,
                                const std::string& fallback) const {
  return has(key) ? get(key).asString() : fallback;
}

std::string jsonQuote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  out += "\"";
  return out;
}

}  // namespace hplmxp::serve
