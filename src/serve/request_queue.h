// Bounded, admission-controlled store of pending solve requests.
//
// Admission control is the backpressure half of the serving contract:
// when the pending depth reaches the bound, new requests are rejected
// immediately (kRejectedQueueFull) instead of growing an unbounded queue
// whose tail latency no deadline could honor. Within the bound, requests
// are bucketed per ProblemKey in FIFO order so the Batcher can coalesce
// compatible solves without reordering any single key's stream.
//
// The queue is a passive, lock-protected structure; blocking/wakeup
// policy lives in the ServeEngine, which pairs it with a condition
// variable.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "serve/request.h"
#include "util/common.h"

namespace hplmxp::serve {

/// A request plus its bookkeeping while queued. `submitSeconds` is the
/// engine-clock submission instant; deadlines are enforced against it.
struct QueuedRequest {
  SolveRequest request;
  double submitSeconds = 0.0;
  double deadlineSeconds = 0.0;  // absolute engine-clock instant; 0 = none
  /// Earliest engine-clock instant a retry may be dispatched (jittered
  /// exponential backoff); 0 = immediately eligible.
  double notBeforeSeconds = 0.0;
  index_t retries = 0;
  std::shared_ptr<void> handle;  // engine's per-request completion handle
};

class RequestQueue {
 public:
  explicit RequestQueue(index_t maxDepth);

  /// Admits or rejects one request. Returns false (and does not enqueue)
  /// when the queue is at its depth bound.
  bool push(QueuedRequest qr);

  /// Re-admits a request that failed transiently. Requeues bypass the
  /// depth bound: the request was already admitted once and rejecting it
  /// now would turn a retryable fault into a spurious drop.
  void pushRetry(QueuedRequest qr);

  /// Key of the oldest pending request, or nullptr when empty. `ageOut`
  /// receives that request's submission instant. Ignores retry-backoff
  /// eligibility (equivalent to readyKey at time infinity).
  [[nodiscard]] const ProblemKey* oldestKey(double* ageOut) const;

  /// Key of the oldest request whose backoff window has elapsed by `now`,
  /// or nullptr. Buckets stay FIFO: a bucket whose front is still backing
  /// off is not ready, even if later entries are (per-key order is part of
  /// the serving contract). When nothing is ready but requests are
  /// pending, `nextReadyOut` (if non-null) receives the earliest instant
  /// a front becomes eligible, so the caller can sleep exactly that long.
  [[nodiscard]] const ProblemKey* readyKey(double now, double* ageOut,
                                           double* nextReadyOut) const;

  /// Removes and returns up to `maxBatch` requests for `key` in FIFO
  /// order, stopping at the first entry still backing off at `now` (pass
  /// no `now` to ignore eligibility).
  std::vector<QueuedRequest> take(const ProblemKey& key, index_t maxBatch);
  std::vector<QueuedRequest> take(const ProblemKey& key, index_t maxBatch,
                                  double now);

  [[nodiscard]] index_t depth() const { return depth_; }
  [[nodiscard]] bool empty() const { return depth_ == 0; }
  [[nodiscard]] index_t peakDepth() const { return peakDepth_; }
  [[nodiscard]] std::uint64_t rejectedFull() const { return rejectedFull_; }

 private:
  index_t maxDepth_;
  index_t depth_ = 0;
  index_t peakDepth_ = 0;
  std::uint64_t rejectedFull_ = 0;
  std::map<ProblemKey, std::deque<QueuedRequest>> buckets_;
};

}  // namespace hplmxp::serve
