// Phi-accrual shard health detection: the gray-failure half of the fleet's
// defense, sitting in front of the terminal-failure CircuitBreaker.
//
// The breaker only reacts to *failures*; a shard that is alive but 5x
// slow never feeds it and quietly drags the fleet p99. The phi-accrual
// detector (Hayashibara et al., the Akka/Cassandra lineage) instead
// watches the shard's heartbeat cadence — here, completion events and
// periodic pulses — and turns "how late is the next heartbeat" into a
// continuous suspicion level:
//
//     phi(t) = -log10( P(interval > t) )
//
// with P the normal tail fitted to a sliding window of observed
// inter-arrival intervals. phi == 1 means "this gap had a 10% chance
// under the shard's own history"; phi == 3 means 0.1%. Thresholds on phi
// drive a four-state routing machine:
//
//     healthy ──(phi >= suspectPhi)──▶ suspect ──(phi >= quarantinePhi
//        ▲                               │        or straggler strikes)
//        │                               ▼                 │
//        │ phi recovers            back to healthy         ▼
//        │                                            quarantined
//        │ probe succeeds                                  │ dwell
//        └───────────────── probing ◀──────────────────────┘
//                              │ probe fails: quarantined again
//
// A quarantined shard receives no new routes (its in-flight work drains
// normally — the same drain contract as an open circuit); after the
// dwell it admits `probeQuota` probe requests whose outcomes decide
// between healing and another quarantine round. Slow-rank verdicts from
// trace::SlowRankMonitor (a straggler *inside* the shard's grid) are fed
// in as straggler evidence and short-circuit the phi ramp.
//
// Every method takes the current time explicitly — the CircuitBreaker
// discipline — so the detector is a pure function of its inputs: unit
// tests never sleep, fleetsim replays it on virtual time, and the same
// thresholds tuned in simulation land unchanged in the live engine.
// All methods are thread-safe.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/common.h"

namespace hplmxp::serve {

struct HealthConfig {
  bool enabled = true;
  /// Expected heartbeat cadence; seeds the interval window so a cold
  /// shard is judged against the configured pace, not an empty history.
  double heartbeatIntervalSeconds = 0.010;
  /// Sliding window of inter-arrival samples per shard.
  index_t windowSize = 32;
  /// Interval-distribution floor: a perfectly regular heartbeat would
  /// collapse the std-dev to 0 and make phi explode on microscopic
  /// jitter. The floor keeps the detector's resolution honest.
  double minStdDevSeconds = 0.002;
  /// Heartbeats observed before phi is trusted (cold start reads 0).
  index_t minSamples = 3;
  double suspectPhi = 1.0;      // healthy -> suspect
  double quarantinePhi = 3.0;   // suspect -> quarantined
  /// Time in quarantine before the shard may probe its way back.
  double quarantineDwellSeconds = 0.100;
  /// Routes admitted while probing, before a verdict.
  index_t probeQuota = 1;
  /// Straggler reports (slow-rank verdicts) while suspect that escalate
  /// to quarantine. The first report alone forces suspect.
  index_t stragglerStrikes = 2;

  void validate() const;
};

enum class HealthState { kHealthy, kSuspect, kQuarantined, kProbing };

[[nodiscard]] constexpr const char* toString(HealthState s) {
  switch (s) {
    case HealthState::kHealthy: return "healthy";
    case HealthState::kSuspect: return "suspect";
    case HealthState::kQuarantined: return "quarantined";
    case HealthState::kProbing: return "probing";
  }
  return "?";
}

class ShardHealthMonitor {
 public:
  struct ShardSnapshot {
    index_t shard = 0;
    HealthState state = HealthState::kHealthy;
    double phi = 0.0;
    double lastHeartbeatAge = 0.0;
    double meanIntervalSeconds = 0.0;
    std::uint64_t heartbeats = 0;
    std::uint64_t stragglerReports = 0;
    std::uint64_t quarantines = 0;  // entries into kQuarantined
    std::uint64_t probes = 0;       // probe routes admitted
  };

  ShardHealthMonitor(HealthConfig config, index_t shards);

  /// Healthy-liveness evidence: a completion or a periodic pulse from the
  /// shard at `now`. Records the inter-arrival interval and clears any
  /// straggler streak. Does NOT heal a quarantined shard — that must
  /// pass through probing.
  void heartbeat(index_t shard, double now);

  /// A slow-rank verdict from inside the shard's grid (the distributed-LU
  /// straggler loop): forces at least kSuspect immediately and escalates
  /// to quarantine after `stragglerStrikes` reports without an
  /// intervening heartbeat.
  void noteStraggler(index_t shard, double now);

  /// Outcome of a request routed to the shard. A success is a heartbeat
  /// and (while probing) a probe success that heals the shard; a failure
  /// is a probe failure that re-quarantines it. Outside probing,
  /// failures are the CircuitBreaker's business and are ignored here.
  void onOutcome(index_t shard, bool success, double now);

  /// Routing gate. Healthy and suspect shards route freely (suspect is a
  /// warning level, not a drain — the breaker may still be routing to
  /// it); quarantined shards route nothing; probing shards admit up to
  /// `probeQuota` routes. Advances the state machine against `now`.
  [[nodiscard]] bool routable(index_t shard, double now);

  /// Current suspicion level against the shard's own interval history.
  [[nodiscard]] double phi(index_t shard, double now) const;

  /// Current state, advancing time-driven transitions (suspect onset,
  /// quarantine, dwell expiry) against `now`.
  [[nodiscard]] HealthState state(index_t shard, double now);

  /// Total entries into quarantine across all shards.
  [[nodiscard]] std::uint64_t quarantines() const;
  /// Total straggler reports fed in across all shards.
  [[nodiscard]] std::uint64_t stragglerReports() const;

  [[nodiscard]] ShardSnapshot shardSnapshot(index_t shard, double now);
  [[nodiscard]] std::vector<ShardSnapshot> snapshot(double now);

  [[nodiscard]] const HealthConfig& config() const { return config_; }

 private:
  struct Entry {
    HealthState state = HealthState::kHealthy;
    double lastArrival = 0.0;
    bool seeded = false;          // first heartbeat only sets lastArrival
    std::vector<double> window;   // inter-arrival ring buffer
    index_t windowNext = 0;
    double quarantinedAt = 0.0;
    index_t probesUsed = 0;
    index_t stragglerStreak = 0;
    std::uint64_t heartbeats = 0;
    std::uint64_t stragglers = 0;
    std::uint64_t quarantines = 0;
    std::uint64_t probes = 0;
  };

  [[nodiscard]] double phiLocked(const Entry& e, double now) const;
  void meanStd(const Entry& e, double* mean, double* std) const;
  void advance(Entry& e, double now);
  void enterQuarantine(Entry& e, double now);
  Entry& entry(index_t shard);

  HealthConfig config_;
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
};

}  // namespace hplmxp::serve
