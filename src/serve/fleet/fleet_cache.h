// Fleet-level factor-cache index: which shards hold which factorization,
// and how hot each key is.
//
// The per-shard FactorCache stays the byte-budget authority (the fleet
// budget is split across shards at construction); this index is the
// routing-side view of residency. Placements are recorded when a shard
// completes a request for a key and withdrawn through the per-shard
// cache's eviction listener, so the router's cache-affinity preference
// never chases a factor that LRU already dropped. Request counts drive
// hot-factor replication: once a key crosses the hot threshold the router
// spreads it across its ring successors instead of pinning one shard.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "serve/problem_key.h"
#include "util/common.h"

namespace hplmxp::serve {

class FleetCacheIndex {
 public:
  struct Stats {
    std::uint64_t placements = 0;  // notePlacement calls (first-time only)
    std::uint64_t evictions = 0;   // withdrawn by a shard cache's LRU
    std::uint64_t dropped = 0;     // withdrawn by a shard crash
    index_t residentKeys = 0;      // keys with >= 1 live placement
    index_t replicatedKeys = 0;    // keys resident on >= 2 shards
  };

  /// A request for `key` was routed; returns the total routed so far
  /// (drives the hot-key threshold).
  std::uint64_t noteRequest(const ProblemKey& key);

  [[nodiscard]] std::uint64_t requestCount(const ProblemKey& key) const;

  /// `shard` now holds factors for `key` (a completed execution).
  void notePlacement(const ProblemKey& key, index_t shard);

  /// `shard`'s cache evicted `key` (fed by FactorCache's listener).
  void noteEviction(const ProblemKey& key, index_t shard);

  /// A crashed shard lost everything it held.
  void dropShard(index_t shard);

  /// Shards believed to hold `key`, in insertion order.
  [[nodiscard]] std::vector<index_t> placements(const ProblemKey& key) const;

  [[nodiscard]] Stats stats() const;

 private:
  struct KeyState {
    std::vector<index_t> shards;  // current placements
    std::uint64_t requests = 0;
  };

  mutable std::mutex mutex_;
  std::map<ProblemKey, KeyState> keys_;
  Stats stats_;
};

}  // namespace hplmxp::serve
