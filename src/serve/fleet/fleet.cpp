#include "serve/fleet/fleet.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "gen/matgen.h"
#include "serve/json.h"
#include "util/logging.h"

namespace hplmxp::serve {

namespace {

/// FNV-1a over the replicated factor panel: peers verify the broadcast
/// arrived intact (an injected bit flip fails the job, which feeds the
/// shard-health breaker like any other grid fault).
std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (std::size_t i = 0; i < bytes; ++i) {
    h = (h ^ p[i]) * 0x100000001B3ull;
  }
  return h;
}

bool contains(const std::vector<index_t>& v, index_t x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

}  // namespace

// --- Handle ---------------------------------------------------------------

const RequestOutcome& FleetEngine::Handle::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return done_; });
  return outcome_;
}

bool FleetEngine::Handle::done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

bool FleetEngine::Handle::publish(RequestOutcome outcome,
                                  std::vector<double> solution) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (done_) {
      return false;
    }
    outcome_ = std::move(outcome);
    solution_ = std::move(solution);
    done_ = true;
  }
  cv_.notify_all();
  return true;
}

// --- FleetEngine ----------------------------------------------------------

FleetEngine::FleetEngine(FleetConfig config)
    : config_(std::move(config)),
      ring_(config_.shards, config_.virtualNodes),
      health_(config_.health),
      healthMon_(config_.healthMonitor, config_.shards) {
  HPLMXP_REQUIRE(config_.shards > 0, "fleet needs >= 1 shard");
  HPLMXP_REQUIRE(config_.groupSize > 0, "fleet shards need >= 1 rank");
  HPLMXP_REQUIRE(config_.failoverLimit >= 0,
                 "failover limit must be >= 0");
  HPLMXP_REQUIRE(config_.health.enabled,
                 "fleet shard-health breaker cannot be disabled");
  shards_.reserve(static_cast<std::size_t>(config_.shards));
  for (index_t s = 0; s < config_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->id = s;
    // Sentinel keys live in n < 0 space so they can never collide with a
    // servable key (admission rejects n <= 0).
    shard->sentinel.n = -1 - s;
    shard->group = std::make_unique<simmpi::RankGroup>(s, config_.groupSize,
                                                       config_.groupOptions);
    shard->slowRanks = std::make_unique<SlowRankMonitor>(
        config_.groupSize, config_.slowRankPolicy);
    ServeConfig cfg = config_.shard;
    cfg.cacheBytes = config_.fleetCacheBytes /
                     static_cast<std::size_t>(config_.shards);
    cfg.factorOverride = [this, s](const ProblemKey& key) {
      return groupFactor(s, key);
    };
    shard->engine = std::make_unique<ServeEngine>(std::move(cfg));
    shard->engine->setCacheEvictionListener(
        [this, s](const ProblemKey& key) { index_.noteEviction(key, s); });
    shards_.push_back(std::move(shard));
  }
  if (config_.hedge.enabled) {
    HPLMXP_REQUIRE(config_.hedge.delayFactor >= 0.0 &&
                       config_.hedge.minDelaySeconds >= 0.0 &&
                       config_.hedge.maxDelaySeconds >=
                           config_.hedge.minDelaySeconds,
                   "hedge delay configuration is inconsistent");
    HPLMXP_REQUIRE(config_.hedge.budgetPerSecond > 0.0 &&
                       config_.hedge.budgetBurst >= 1.0,
                   "hedge budget must admit at least one hedge");
    hedgeTokens_ = config_.hedge.budgetBurst;
    hedgeRefillAt_ = now();
    hedgeThread_ = std::thread([this] { hedgeLoop(); });
  }
}

FleetEngine::~FleetEngine() { stop(); }

Factorization FleetEngine::groupFactor(index_t shard, const ProblemKey& key) {
  Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  try {
    Factorization out;
    sh.group->runJob([&](simmpi::Comm& comm) {
      const index_t n = key.n;
      if (comm.rank() == 0) {
        ProblemGenerator gen(key.seed, n);
        Factorization f = factorStorageSingle(gen, key.b,
                                              config_.shard.vendor,
                                              key.precision);
        if (comm.size() > 1) {
          std::uint64_t sum = fnv1a(f.lu.data(), f.lu.bytes());
          comm.bcast(0, f.lu.data(), n * n);
          comm.bcast(0, &sum, 1);
        }
        out = std::move(f);
      } else {
        // Peers hold a verified replica of the panel: the broadcast is
        // the crash/corruption surface an injected grid fault hits.
        Buffer<float> replica(n * n);
        comm.bcast(0, replica.data(), n * n);
        std::uint64_t sum = 0;
        comm.bcast(0, &sum, 1);
        HPLMXP_REQUIRE(fnv1a(replica.data(), replica.bytes()) == sum,
                       "fleet factor replication checksum mismatch");
      }
    });
    HPLMXP_REQUIRE(out.n == key.n,
                   "fleet factor job produced no factorization");
    health_.onSuccess(sh.sentinel);
    return out;
  } catch (...) {
    health_.onFailure(sh.sentinel, now());
    if (!sh.group->alive()) {
      markCrashed(shard);
    }
    throw;
  }
}

void FleetEngine::markCrashed(index_t shard) {
  Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  if (!sh.crashed.exchange(true)) {
    // A dead grid takes its resident factors with it: drop the shard's
    // cache and withdraw its fleet-index placements so the router stops
    // chasing factors that no longer exist.
    sh.engine->clearCache();
    index_.dropShard(shard);
    crashes_.fetch_add(1, std::memory_order_relaxed);
    logWarn("fleet: shard ", shard, " crashed (generation ",
            sh.group->generation(), ")");
  }
}

bool FleetEngine::shardRoutable(index_t shard) {
  Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  if (sh.crashed.load(std::memory_order_relaxed) || !sh.group->alive()) {
    return false;
  }
  // The health breaker is the drain gate: an open circuit routes nothing
  // (in-flight requests still finish on the shard), a half-open one
  // admits its probe quota, a closed one routes freely.
  return health_.allow(sh.sentinel, now());
}

index_t FleetEngine::pickShard(const ProblemKey& key, std::uint64_t count,
                               const std::vector<index_t>& tried) {
  const double t = now();
  // Two-tier health: `hard` excludes shards that cannot serve (crashed
  // grid, open breaker); `preferred` additionally steers off shards the
  // phi detector has quarantined. The hard tier is the fallback, so
  // gray-failure quarantine deprioritizes but can never starve routing.
  const auto hard = [&](index_t s) {
    return !contains(tried, s) && shardRoutable(s);
  };
  const auto preferred = [&](index_t s) {
    return hard(s) && healthMon_.routable(s, t);
  };
  const auto finish = [&](index_t chosen) {
    if (chosen >= 0) {
      const index_t allUp = ring_.route(key, nullptr);
      if (chosen != allUp && allUp >= 0 &&
          healthMon_.state(allUp, t) == HealthState::kQuarantined) {
        healthDetours_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return chosen;
  };

  // Hot keys spread round-robin across their ring successors so one
  // popular factorization stops serializing on a single shard.
  if (config_.hotKeyRequests > 0 && config_.hotReplicas > 1 &&
      count >= static_cast<std::uint64_t>(config_.hotKeyRequests)) {
    std::vector<index_t> replicas =
        ring_.successors(key, config_.hotReplicas, preferred);
    if (replicas.empty()) {
      replicas = ring_.successors(key, config_.hotReplicas, hard);
    }
    if (!replicas.empty()) {
      return finish(replicas[count % replicas.size()]);
    }
  }

  // Cache affinity: prefer a shard that already holds the factors.
  for (const index_t s : index_.placements(key)) {
    if (preferred(s)) {
      affinityHits_.fetch_add(1, std::memory_order_relaxed);
      return finish(s);
    }
  }

  index_t chosen = ring_.route(key, preferred);
  if (chosen < 0) {
    chosen = ring_.route(key, hard);  // quarantine never starves the fleet
  }
  if (chosen >= 0 && chosen != ring_.route(key, nullptr)) {
    // Routed off the all-up primary: the degraded-fleet detour counter.
    reroutes_.fetch_add(1, std::memory_order_relaxed);
  }
  return finish(chosen);
}

FleetEngine::HandlePtr FleetEngine::submit(const SolveRequest& request) {
  auto handle = std::make_shared<Handle>();
  SolveRequest req = request;
  req.id = req.id != 0
               ? req.id
               : nextId_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    HPLMXP_REQUIRE(!stopping_, "fleet is stopping");
    ++outstanding_;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  const double submitAt = now();

  const std::uint64_t count = index_.noteRequest(req.key);
  const index_t target = pickShard(req.key, count, {});
  if (target < 0) {
    // Whole-fleet degradation: answer structurally, never hang.
    RequestOutcome o;
    o.id = req.id;
    o.key = req.key;
    o.rhsSeed = req.rhsSeed;
    o.status = RequestStatus::kFailed;
    o.error = "no healthy shard for key " + req.key.toString();
    o.totalSeconds = now() - submitAt;
    publishOutcome(handle, std::move(o), {});
    return handle;
  }
  routeToShard(target, req, handle, submitAt, 0, {target});
  if (config_.hedge.enabled && shardCount() > 1) {
    scheduleHedge(req, handle, submitAt, {target});
  }
  return handle;
}

void FleetEngine::routeToShard(index_t shard, const SolveRequest& request,
                               const HandlePtr& handle, double submitAt,
                               index_t failovers,
                               std::vector<index_t> tried, bool hedge) {
  Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  sh.routed.fetch_add(1, std::memory_order_relaxed);
  ServeEngine::HandlePtr shardHandle = sh.engine->submit(request);
  // The callback runs on the shard's finishing thread (or inline for
  // admission rejections); a shard-side failure re-routes within the
  // failover budget, everything else publishes the fleet answer exactly
  // once.
  shardHandle->onDone([this, shard, request, handle, submitAt, failovers,
                       tried = std::move(tried), hedge,
                       shardHandle]() mutable {
    RequestOutcome o = shardHandle->outcome();
    // Completions are the shard's heartbeat stream: a slow-but-alive
    // shard reports late, the phi detector notices, and the shard drains
    // long before the breaker would trip. Failures only matter here as
    // probe verdicts; the breaker owns them otherwise.
    if (o.status == RequestStatus::kCompleted) {
      healthMon_.onOutcome(shard, true, now());
    } else if (o.status == RequestStatus::kFailed) {
      healthMon_.onOutcome(shard, false, now());
    }
    if (!hedge && o.status == RequestStatus::kFailed &&
        failovers < config_.failoverLimit) {
      const index_t next =
          pickShard(request.key, index_.requestCount(request.key), tried);
      if (next >= 0) {
        failovers_.fetch_add(1, std::memory_order_relaxed);
        tried.push_back(next);
        routeToShard(next, request, handle, submitAt, failovers + 1,
                     std::move(tried));
        return;
      }
    }
    if (hedge && o.status != RequestStatus::kCompleted) {
      // A speculative copy may never decide the request's fate: had the
      // hedge's failure published here, a still-running primary could
      // not win anymore. Swallow it as wasted duplicate work.
      hedgeWasted_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    o.shard = shard;
    o.failovers = failovers;
    o.totalSeconds = now() - submitAt;  // fleet view: failover time counts
    if (o.status == RequestStatus::kCompleted) {
      index_.notePlacement(request.key, shard);
    }
    publishOutcome(handle, std::move(o),
                   std::vector<double>(shardHandle->solution()), hedge);
  });
}

void FleetEngine::publishOutcome(const HandlePtr& handle,
                                 RequestOutcome outcome,
                                 std::vector<double> solution, bool hedge) {
  outcome.hedged = hedge;
  const RequestOutcome recorded = outcome;
  if (!handle->publish(std::move(outcome), std::move(solution))) {
    if (handle->hedged_.load(std::memory_order_relaxed)) {
      // The race hedging deliberately creates: both copies finished and
      // the loser's answer bounced off the publish-once handle. Expected
      // duplicate work, not an accounting bug.
      hedgeWasted_.fetch_add(1, std::memory_order_relaxed);
    } else {
      doubleAnswered_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  if (hedge) {
    hedgeWins_.fetch_add(1, std::memory_order_relaxed);
  }
  recorder_.record(recorded);
  answered_.fetch_add(1, std::memory_order_relaxed);
  bool idle = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    idle = --outstanding_ == 0;
  }
  if (idle) {
    idleCv_.notify_all();
  }
}

// --- hedged requests -------------------------------------------------------

double FleetEngine::hedgeDelaySeconds() const {
  const double p95 = recorder_.recentTotalP95Seconds();
  const double raw = config_.hedge.delayFactor * p95;
  return std::max(config_.hedge.minDelaySeconds,
                  std::min(config_.hedge.maxDelaySeconds, raw));
}

void FleetEngine::scheduleHedge(const SolveRequest& request,
                                const HandlePtr& handle, double submitAt,
                                std::vector<index_t> tried) {
  HedgeTask task;
  task.fireAt = now() + hedgeDelaySeconds();
  task.submitAt = submitAt;
  task.request = request;
  task.handle = handle;
  task.tried = std::move(tried);
  {
    std::lock_guard<std::mutex> lock(hedgeMutex_);
    if (hedgeStop_) {
      return;
    }
    hedgeHeap_.push_back(std::move(task));
    std::push_heap(hedgeHeap_.begin(), hedgeHeap_.end(),
                   [](const HedgeTask& a, const HedgeTask& b) {
                     return a.fireAt > b.fireAt;
                   });
  }
  hedgeCv_.notify_one();
}

void FleetEngine::hedgeLoop() {
  const auto later = [](const HedgeTask& a, const HedgeTask& b) {
    return a.fireAt > b.fireAt;
  };
  std::unique_lock<std::mutex> lock(hedgeMutex_);
  for (;;) {
    if (hedgeStop_) {
      return;
    }
    if (hedgeHeap_.empty()) {
      hedgeCv_.wait(lock);
      continue;
    }
    const double due = hedgeHeap_.front().fireAt;
    const double t = now();
    if (t < due) {
      hedgeCv_.wait_for(lock, std::chrono::duration<double>(due - t));
      continue;
    }
    std::pop_heap(hedgeHeap_.begin(), hedgeHeap_.end(), later);
    HedgeTask task = std::move(hedgeHeap_.back());
    hedgeHeap_.pop_back();
    // Token-bucket refill on the same clock the fire times use.
    hedgeTokens_ = std::min(
        config_.hedge.budgetBurst,
        hedgeTokens_ + (t - hedgeRefillAt_) * config_.hedge.budgetPerSecond);
    hedgeRefillAt_ = t;
    if (task.handle->done()) {
      continue;  // answered in time: the hedge is moot (cancelled)
    }
    if (hedgeTokens_ < 1.0) {
      hedgeDenied_.fetch_add(1, std::memory_order_relaxed);
      continue;  // amplification budget exhausted: fleet-wide slowness
    }
    hedgeTokens_ -= 1.0;
    lock.unlock();
    fireHedge(std::move(task));
    lock.lock();
  }
}

void FleetEngine::fireHedge(HedgeTask task) {
  const index_t next = pickShard(
      task.request.key, index_.requestCount(task.request.key), task.tried);
  if (next < 0 || task.handle->done()) {
    if (next < 0) {
      hedgeDenied_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  task.handle->hedged_.store(true, std::memory_order_relaxed);
  hedgesIssued_.fetch_add(1, std::memory_order_relaxed);
  task.tried.push_back(next);
  routeToShard(next, task.request, task.handle, task.submitAt, 0,
               std::move(task.tried), /*hedge=*/true);
}

void FleetEngine::drain() {
  for (const auto& sh : shards_) {
    sh->engine->drain();
  }
  // Failover chains can still be in flight after every shard queue is
  // empty; the fleet ledger is the source of truth.
  std::unique_lock<std::mutex> lock(mutex_);
  idleCv_.wait(lock, [&] { return outstanding_ == 0; });
}

void FleetEngine::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  // The hedge scheduler goes first so no speculative copy is submitted
  // to a shard engine that is already shutting down.
  {
    std::lock_guard<std::mutex> lock(hedgeMutex_);
    hedgeStop_ = true;
    hedgeHeap_.clear();
  }
  hedgeCv_.notify_all();
  if (hedgeThread_.joinable()) {
    hedgeThread_.join();
  }
  for (const auto& sh : shards_) {
    sh->engine->stop();
  }
  std::unique_lock<std::mutex> lock(mutex_);
  idleCv_.wait(lock, [&] { return outstanding_ == 0; });
}

void FleetEngine::breakShard(index_t shard) {
  Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  const double t = now();
  for (index_t i = 0; i < config_.health.failureThreshold; ++i) {
    health_.onFailure(sh.sentinel, t);
  }
  opsBreaks_.fetch_add(1, std::memory_order_relaxed);
  logInfo("fleet: shard ", shard, " circuit-broken (draining)");
}

void FleetEngine::unbreakShard(index_t shard) {
  health_.onSuccess(shards_[static_cast<std::size_t>(shard)]->sentinel);
}

void FleetEngine::crashShard(index_t shard) {
  shards_[static_cast<std::size_t>(shard)]->group->kill("ops crash");
  markCrashed(shard);
}

void FleetEngine::resurrectShard(index_t shard) {
  Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  sh.group->restart();
  sh.crashed.store(false, std::memory_order_relaxed);
  health_.onSuccess(sh.sentinel);
  resurrections_.fetch_add(1, std::memory_order_relaxed);
  logInfo("fleet: shard ", shard, " resurrected (generation ",
          sh.group->generation(), ")");
}

void FleetEngine::armShardFaults(
    index_t shard, std::shared_ptr<simmpi::FaultInjector> faults) {
  shards_[static_cast<std::size_t>(shard)]->group->setFaults(
      std::move(faults));
}

void FleetEngine::slowShard(index_t shard, double stretch) {
  shards_[static_cast<std::size_t>(shard)]->engine->setServiceStretch(
      stretch);
  opsSlows_.fetch_add(1, std::memory_order_relaxed);
  logInfo("fleet: shard ", shard, " service stretched x",
          Table::num(stretch, 2));
}

bool FleetEngine::reportRankWaits(index_t shard, index_t k,
                                  const std::vector<double>& waits) {
  Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  bool terminate = false;
  {
    std::lock_guard<std::mutex> lock(sh.slowMutex);
    sh.slowRanks->observe(k, waits);
    terminate = sh.slowRanks->shouldTerminate();
  }
  if (terminate) {
    // A struck-out rank inside the grid is straggler evidence against the
    // whole shard: the grid is only as fast as its slowest rank.
    healthMon_.noteStraggler(shard, now());
  }
  return terminate;
}

std::function<bool(index_t, const std::vector<double>&)>
FleetEngine::rankProgressHook(index_t shard) {
  return [this, shard](index_t k, const std::vector<double>& waits) {
    return reportRankWaits(shard, k, waits);
  };
}

FleetReport FleetEngine::report() const {
  FleetReport r;
  r.shards = static_cast<index_t>(shards_.size());

  FactorCache::Stats cacheSum;
  const std::vector<CircuitBreaker::KeySnapshot> health = health_.snapshot();
  for (const auto& sh : shards_) {
    ShardReport s;
    s.id = sh->id;
    s.groupAlive = sh->group->alive();
    const simmpi::RankGroup::Stats gs = sh->group->stats();
    s.generation = gs.generation;
    s.groupSize = sh->group->size();
    s.groupJobs = gs.jobs;
    s.groupCrashes = gs.crashes;
    s.routed = sh->routed.load(std::memory_order_relaxed);
    s.report = sh->engine->report();
    s.health = "healthy";
    for (const auto& k : health) {
      if (k.key == sh->sentinel) {
        if (k.state == CircuitBreaker::State::kOpen) {
          s.breakerState = "open";
        } else if (k.state == CircuitBreaker::State::kHalfOpen) {
          s.breakerState = "half-open";
        }
        s.breakerFailures = k.consecutiveFailures;
        s.breakerTrips = k.trips;
        s.breakerRejections = k.rejections;
        break;
      }
    }
    if (sh->crashed.load(std::memory_order_relaxed)) {
      s.health = "crashed";
    } else if (s.breakerState == "open") {
      s.health = "broken";
    } else if (s.breakerState == "half-open") {
      s.health = "half-open";
    }
    const ShardHealthMonitor::ShardSnapshot hs =
        healthMon_.shardSnapshot(sh->id, clock_.seconds());
    s.healthState = toString(hs.state);
    s.phi = hs.phi;
    s.heartbeatAgeSeconds = hs.lastHeartbeatAge;
    s.heartbeats = hs.heartbeats;
    s.quarantines = hs.quarantines;
    s.probes = hs.probes;
    s.stragglerReports = hs.stragglerReports;
    const FactorCache::Stats cs = s.report.cache;
    cacheSum.lookups += cs.lookups;
    cacheSum.hits += cs.hits;
    cacheSum.misses += cs.misses;
    cacheSum.coalesced += cs.coalesced;
    cacheSum.evictions += cs.evictions;
    cacheSum.factorCount += cs.factorCount;
    cacheSum.bytesInUse += cs.bytesInUse;
    cacheSum.budgetBytes += cs.budgetBytes;
    r.perShard.push_back(std::move(s));
  }

  r.fleet = recorder_.report(cacheSum, clock_.seconds(), 0);
  r.reroutes = reroutes_.load(std::memory_order_relaxed);
  r.failovers = failovers_.load(std::memory_order_relaxed);
  r.affinityHits = affinityHits_.load(std::memory_order_relaxed);
  r.opsBreaks = opsBreaks_.load(std::memory_order_relaxed);
  r.opsSlows = opsSlows_.load(std::memory_order_relaxed);
  r.crashes = crashes_.load(std::memory_order_relaxed);
  r.resurrections = resurrections_.load(std::memory_order_relaxed);
  r.healthTrips = health_.trips();
  r.quarantines = healthMon_.quarantines();
  r.healthDetours = healthDetours_.load(std::memory_order_relaxed);
  r.stragglerReports = healthMon_.stragglerReports();
  r.hedgesIssued = hedgesIssued_.load(std::memory_order_relaxed);
  r.hedgeWins = hedgeWins_.load(std::memory_order_relaxed);
  r.hedgeWasted = hedgeWasted_.load(std::memory_order_relaxed);
  r.hedgeDenied = hedgeDenied_.load(std::memory_order_relaxed);
  r.fleet.hedges = r.hedgesIssued;
  r.fleet.hedgeWins = r.hedgeWins;
  r.fleet.hedgeWasted = r.hedgeWasted;
  r.fleet.quarantines = r.quarantines;
  r.cacheIndex = index_.stats();
  r.submitted = submitted_.load(std::memory_order_relaxed);
  r.answered = answered_.load(std::memory_order_relaxed);
  r.dropped = r.submitted - r.answered;
  r.doubleAnswered = doubleAnswered_.load(std::memory_order_relaxed);
  r.cacheLookupInvariant =
      cacheSum.hits + cacheSum.misses == cacheSum.lookups;
  return r;
}

// --- FleetReport rendering ------------------------------------------------

Table FleetReport::toTable() const {
  Table t({"metric", "value"});
  t.addRow({"shards", Table::num((long long)shards)});
  t.addRow({"submitted", Table::num((long long)submitted)});
  t.addRow({"answered", Table::num((long long)answered)});
  t.addRow({"dropped", Table::num((long long)dropped)});
  t.addRow({"double answered", Table::num((long long)doubleAnswered)});
  t.addRow({"completed", Table::num((long long)fleet.completed)});
  t.addRow({"failed", Table::num((long long)fleet.failed)});
  t.addRow({"reroutes / failovers", Table::num((long long)reroutes) + " / " +
                                        Table::num((long long)failovers)});
  t.addRow({"affinity hits", Table::num((long long)affinityHits)});
  t.addRow({"health trips / ops breaks",
            Table::num((long long)healthTrips) + " / " +
                Table::num((long long)opsBreaks)});
  t.addRow({"crashes / resurrections", Table::num((long long)crashes) +
                                           " / " +
                                           Table::num((long long)resurrections)});
  t.addRow({"quarantines / detours / stragglers",
            Table::num((long long)quarantines) + " / " +
                Table::num((long long)healthDetours) + " / " +
                Table::num((long long)stragglerReports)});
  t.addRow({"hedges issued / won / wasted / denied",
            Table::num((long long)hedgesIssued) + " / " +
                Table::num((long long)hedgeWins) + " / " +
                Table::num((long long)hedgeWasted) + " / " +
                Table::num((long long)hedgeDenied)});
  t.addRow({"ops slows", Table::num((long long)opsSlows)});
  t.addRow({"fleet hit rate",
            Table::num(fleet.cache.hitRate() * 100.0, 1) + "%"});
  t.addRow({"fleet lookups = hits + misses",
            cacheLookupInvariant ? "yes" : "VIOLATED"});
  t.addRow({"replicated keys",
            Table::num((long long)cacheIndex.replicatedKeys)});
  t.addRow({"fleet total p50/p95/p99 ms",
            Table::num(fleet.total.p50Ms, 2) + " / " +
                Table::num(fleet.total.p95Ms, 2) + " / " +
                Table::num(fleet.total.p99Ms, 2)});
  for (const ShardReport& s : perShard) {
    t.addRow({"shard " + std::to_string(s.id) + " [" + s.health + "/" +
                  s.healthState + "]",
              Table::num((long long)s.routed) + " routed, " +
                  Table::num((long long)s.report.completed) + " completed, " +
                  "gen " + Table::num((long long)s.generation) + ", phi " +
                  Table::num(s.phi, 2) + ", hit " +
                  Table::num(s.report.cache.hitRate() * 100.0, 1) + "%"});
  }
  return t;
}

std::string FleetReport::toJson() const {
  std::ostringstream os;
  os.precision(6);
  os << "{\n";
  os << "  \"trace\": " << jsonQuote(trace) << ",\n";
  os << "  \"shards\": " << shards << ",\n";
  os << "  \"submitted\": " << submitted << ",\n";
  os << "  \"answered\": " << answered << ",\n";
  os << "  \"dropped\": " << dropped << ",\n";
  os << "  \"double_answered\": " << doubleAnswered << ",\n";
  os << "  \"reroutes\": " << reroutes << ",\n";
  os << "  \"failovers\": " << failovers << ",\n";
  os << "  \"affinity_hits\": " << affinityHits << ",\n";
  os << "  \"ops_breaks\": " << opsBreaks << ",\n";
  os << "  \"ops_slows\": " << opsSlows << ",\n";
  os << "  \"crashes\": " << crashes << ",\n";
  os << "  \"resurrections\": " << resurrections << ",\n";
  os << "  \"health_trips\": " << healthTrips << ",\n";
  os << "  \"quarantines\": " << quarantines << ",\n";
  os << "  \"health_detours\": " << healthDetours << ",\n";
  os << "  \"straggler_reports\": " << stragglerReports << ",\n";
  os << "  \"hedges_issued\": " << hedgesIssued << ",\n";
  os << "  \"hedge_wins\": " << hedgeWins << ",\n";
  os << "  \"hedge_wasted\": " << hedgeWasted << ",\n";
  os << "  \"hedge_denied\": " << hedgeDenied << ",\n";
  os << "  \"cache_lookup_invariant\": "
     << (cacheLookupInvariant ? "true" : "false") << ",\n";
  os << "  \"index_placements\": " << cacheIndex.placements << ",\n";
  os << "  \"index_evictions\": " << cacheIndex.evictions << ",\n";
  os << "  \"index_dropped\": " << cacheIndex.dropped << ",\n";
  os << "  \"index_resident_keys\": " << cacheIndex.residentKeys << ",\n";
  os << "  \"index_replicated_keys\": " << cacheIndex.replicatedKeys
     << ",\n";
  os << "  \"fleet\": " << fleet.toJson() << ",\n";
  os << "  \"per_shard\": [\n";
  for (std::size_t i = 0; i < perShard.size(); ++i) {
    const ShardReport& s = perShard[i];
    os << "    {\n";
    os << "      \"id\": " << s.id << ",\n";
    os << "      \"health\": " << jsonQuote(s.health) << ",\n";
    os << "      \"group_alive\": " << (s.groupAlive ? "true" : "false")
       << ",\n";
    os << "      \"generation\": " << s.generation << ",\n";
    os << "      \"group_size\": " << s.groupSize << ",\n";
    os << "      \"group_jobs\": " << s.groupJobs << ",\n";
    os << "      \"group_crashes\": " << s.groupCrashes << ",\n";
    os << "      \"routed\": " << s.routed << ",\n";
    os << "      \"breaker_state\": " << jsonQuote(s.breakerState) << ",\n";
    os << "      \"breaker_failures\": " << s.breakerFailures << ",\n";
    os << "      \"breaker_trips\": " << s.breakerTrips << ",\n";
    os << "      \"breaker_rejections\": " << s.breakerRejections << ",\n";
    os << "      \"health_state\": " << jsonQuote(s.healthState) << ",\n";
    os << "      \"phi\": " << s.phi << ",\n";
    os << "      \"heartbeat_age_seconds\": " << s.heartbeatAgeSeconds
       << ",\n";
    os << "      \"heartbeats\": " << s.heartbeats << ",\n";
    os << "      \"quarantines\": " << s.quarantines << ",\n";
    os << "      \"probes\": " << s.probes << ",\n";
    os << "      \"straggler_reports\": " << s.stragglerReports << ",\n";
    os << "      \"report\": " << s.report.toJson();
    os << "    }" << (i + 1 < perShard.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

}  // namespace hplmxp::serve
