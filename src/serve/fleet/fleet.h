// Sharded serve fabric: many ServeEngines, each backed by its own simmpi
// rank group, behind one consistent-hash router.
//
//                         FleetEngine::submit
//                                │
//                 FleetCacheIndex (hot? placed?)
//                                │
//              HashRing route / successors (healthy only)
//                                │
//        ┌───────────────┬───────┴───────┬───────────────┐
//     shard 0         shard 1         shard 2          ...
//   ServeEngine     ServeEngine     ServeEngine
//   + RankGroup     + RankGroup     + RankGroup   (factor jobs run on
//        │               │               │         the shard's grid)
//        └── Handle::onDone ── failover/publish ──┘
//
// Shard health is the existing serve/breaker state machine keyed by a
// per-shard sentinel: factor-job failures feed onFailure, successes feed
// onSuccess, and a shard whose circuit is open receives no new routes
// (drain — its in-flight requests still finish) until the cool-down
// half-opens it for a probe. A crashed shard (its rank group died, by an
// injected fault or the ops hook) additionally loses its cached factors
// and its fleet-index placements; resurrection restarts the group with a
// bumped generation and closes the circuit, and the ring re-routes the
// shard's keyspace back — no request is ever dropped or double-answered,
// which the fleet report counts prove.
//
// Completed answers are bitwise-identical across shard counts: a solution
// is a pure function of (ProblemKey, rhsSeed, maxIr) on the single-device
// solve path every shard runs, so routing, replication, and failover can
// never change the numbers — only who computes them.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/engine.h"
#include "serve/fleet/fleet_cache.h"
#include "serve/fleet/hash_ring.h"
#include "serve/fleet/health.h"
#include "simmpi/rank_group.h"
#include "trace/slow_node.h"

namespace hplmxp::serve {

/// Hedged-request policy: after a p95-derived delay with no answer, the
/// fleet re-issues the request to a replica shard; the first answer wins
/// through the publish-once Handle and the loser's work is discarded. A
/// token bucket caps the duplicate-work amplification — a fleet-wide
/// slowdown (every request late) drains the bucket and stops hedging,
/// while an isolated slow shard (the gray failure hedging exists for)
/// stays within budget.
struct HedgeConfig {
  bool enabled = false;
  /// Hedge delay = delayFactor x the observed completed-request total
  /// p95 (clamped below); a request is hedged only once.
  double delayFactor = 1.5;
  double minDelaySeconds = 0.002;
  double maxDelaySeconds = 0.500;
  /// Token bucket: hedges admitted per second and the burst capacity.
  double budgetPerSecond = 20.0;
  double budgetBurst = 8.0;
};

struct FleetConfig {
  index_t shards = 2;
  index_t virtualNodes = 64;   // ring points per shard
  index_t groupSize = 2;       // simmpi ranks per shard's grid
  /// RunOptions for every shard's rank group. A blocking-wait timeout here
  /// keeps a half-crashed grid from hanging its surviving peers forever;
  /// per-shard fault injectors are armed via armShardFaults instead.
  simmpi::RunOptions groupOptions;
  /// Fleet-wide factor-cache budget, split evenly across the per-shard
  /// FactorCaches (which stay the eviction authority; the fleet index
  /// mirrors their residency through eviction listeners).
  std::size_t fleetCacheBytes = std::size_t{64} << 20;
  /// Hot-factor replication: once a key has been routed this many times
  /// it is spread round-robin across `hotReplicas` ring successors
  /// instead of pinning its primary. 0 disables.
  index_t hotKeyRequests = 0;
  index_t hotReplicas = 2;
  /// Re-routes attempted after a shard-side failure before the failure
  /// is published to the client.
  index_t failoverLimit = 1;
  /// Per-shard engine template; cacheBytes is overridden by the fleet
  /// split and factorOverride is owned by the fleet.
  ServeConfig shard;
  /// Shard-health breaker (per-shard sentinel keys; always enabled).
  BreakerConfig health{true, 3, 0.050, 1};
  /// Phi-accrual gray-failure detector (serve/fleet/health.h), fed by
  /// shard completions. Quarantined shards are *deprioritized*, not
  /// excluded: routing falls back to them when no preferred shard is
  /// left, so the detector can never starve the fleet.
  HealthConfig healthMonitor;
  /// Speculative re-issue of slow requests (first answer wins).
  HedgeConfig hedge;
  /// Slow-rank detection inside each shard's grid; verdicts feed the
  /// health monitor as straggler evidence (reportRankWaits).
  SlowRankPolicy slowRankPolicy;
};

/// One shard's row in the fleet report.
struct ShardReport {
  index_t id = 0;
  std::string health;         // healthy | broken | half-open | crashed
  bool groupAlive = true;
  index_t generation = 1;
  index_t groupSize = 1;
  std::uint64_t routed = 0;   // requests routed here (incl. failovers in)
  std::uint64_t groupJobs = 0;
  std::uint64_t groupCrashes = 0;
  // Circuit-breaker transitions for this shard's sentinel.
  std::string breakerState = "closed";
  index_t breakerFailures = 0;
  std::uint64_t breakerTrips = 0;
  std::uint64_t breakerRejections = 0;
  // Phi-accrual detector view.
  std::string healthState = "healthy";
  double phi = 0.0;
  double heartbeatAgeSeconds = 0.0;
  std::uint64_t heartbeats = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t probes = 0;
  std::uint64_t stragglerReports = 0;
  ServeReport report;
};

struct FleetReport {
  std::string trace;
  index_t shards = 0;
  /// Fleet-level view: every published outcome, percentiles over the
  /// fleet total (submit to publish, failover chains included), cache
  /// stats summed over shards.
  ServeReport fleet;
  std::vector<ShardReport> perShard;

  // Router picture.
  std::uint64_t reroutes = 0;      // routed off the all-up primary
  std::uint64_t failovers = 0;     // resubmits after a shard-side failure
  std::uint64_t affinityHits = 0;  // routed to a shard already holding key
  std::uint64_t opsBreaks = 0;     // breakShard invocations
  std::uint64_t opsSlows = 0;      // slowShard invocations
  std::uint64_t crashes = 0;       // shards that lost their grid
  std::uint64_t resurrections = 0;
  std::uint64_t healthTrips = 0;   // shard-health circuit trips

  // Gray-failure defense picture.
  std::uint64_t quarantines = 0;      // entries into health quarantine
  std::uint64_t healthDetours = 0;    // routes steered off quarantined shards
  std::uint64_t stragglerReports = 0; // slow-rank verdicts fed to health
  std::uint64_t hedgesIssued = 0;
  std::uint64_t hedgeWins = 0;     // hedge published first
  std::uint64_t hedgeWasted = 0;   // loser finished after the winner
  std::uint64_t hedgeDenied = 0;   // token bucket empty / no replica
  FleetCacheIndex::Stats cacheIndex;

  // The no-lost-answer ledger the CI job gates on.
  std::uint64_t submitted = 0;
  std::uint64_t answered = 0;
  std::uint64_t dropped = 0;        // submitted - answered; must be 0
  std::uint64_t doubleAnswered = 0; // publish attempts on a done handle
  /// hits + misses == lookups over the summed shard caches.
  bool cacheLookupInvariant = true;

  [[nodiscard]] Table toTable() const;
  [[nodiscard]] std::string toJson() const;
};

class FleetEngine {
 public:
  /// Fleet-side completion handle: published exactly once, even when the
  /// request is failed over between shards.
  class Handle {
   public:
    const RequestOutcome& wait();
    [[nodiscard]] bool done() const;
    [[nodiscard]] const std::vector<double>& solution() const {
      return solution_;
    }

   private:
    friend class FleetEngine;
    /// False when the handle was already terminal (a double answer).
    bool publish(RequestOutcome outcome, std::vector<double> solution);
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool done_ = false;
    /// A hedge was issued for this request: a late losing publish is
    /// expected duplicate work (hedge_wasted), not a double answer.
    std::atomic<bool> hedged_{false};
    RequestOutcome outcome_;
    std::vector<double> solution_;
  };
  using HandlePtr = std::shared_ptr<Handle>;

  explicit FleetEngine(FleetConfig config);
  ~FleetEngine();

  FleetEngine(const FleetEngine&) = delete;
  FleetEngine& operator=(const FleetEngine&) = delete;

  /// Routes one request; the handle resolves exactly once. With no
  /// healthy shard left the request is answered kFailed immediately
  /// (degraded fleet: structured failure, never a hang).
  HandlePtr submit(const SolveRequest& request);

  /// Blocks until every submitted request is published.
  void drain();
  void stop();

  // --- ops hooks (the chaos surface of the CLI and CI job) -------------
  /// Trips the shard's health circuit: no new routes until the breaker's
  /// cool-down half-opens it (in-flight work drains normally).
  void breakShard(index_t shard);
  /// Closes the shard's health circuit immediately.
  void unbreakShard(index_t shard);
  /// Kills the shard's rank group and drops its cached factors plus its
  /// fleet-index placements.
  void crashShard(index_t shard);
  /// Restarts a crashed shard's group (new generation) and closes its
  /// circuit; the ring rebalances its keyspace back on the next routes.
  void resurrectShard(index_t shard);
  /// Arms a fault injector on the shard's rank group (organic crashes).
  void armShardFaults(index_t shard,
                      std::shared_ptr<simmpi::FaultInjector> faults);
  /// Gray fault: stretches the shard's service times by `stretch` (e.g.
  /// 5.0 = every batch takes 5x as long) WITHOUT failing anything — the
  /// slow-but-alive scenario the phi detector and hedging exist for.
  /// 1.0 restores full speed.
  void slowShard(index_t shard, double stretch);

  // --- gray-failure instrumentation ------------------------------------
  /// Feeds one distributed-LU step's per-rank barrier waits from the
  /// shard's grid into its SlowRankMonitor; returns true when the monitor
  /// wants the step terminated (a rank struck out). The verdict also
  /// lands in the shard's health stream as straggler evidence — the loop
  /// core/config.h's rankProgressCallback comment asks for.
  bool reportRankWaits(index_t shard, index_t k,
                       const std::vector<double>& waits);
  /// Adapter bound to `shard`, directly pluggable into
  /// HplaiConfig::rankProgressCallback.
  [[nodiscard]] std::function<bool(index_t, const std::vector<double>&)>
  rankProgressHook(index_t shard);

  [[nodiscard]] index_t shardCount() const {
    return static_cast<index_t>(shards_.size());
  }
  [[nodiscard]] bool shardRoutable(index_t shard);
  [[nodiscard]] const ServeEngine& shardEngine(index_t shard) const {
    return *shards_[static_cast<std::size_t>(shard)]->engine;
  }
  [[nodiscard]] const HashRing& ring() const { return ring_; }
  [[nodiscard]] const FleetCacheIndex& cacheIndex() const { return index_; }
  /// Phi-accrual detector (mutable: snapshots advance its state machine).
  [[nodiscard]] ShardHealthMonitor& healthMonitor() { return healthMon_; }
  [[nodiscard]] FleetReport report() const;

 private:
  struct Shard {
    index_t id = 0;
    ProblemKey sentinel;  // shard-health breaker key (n < 0, never real)
    std::unique_ptr<simmpi::RankGroup> group;
    std::unique_ptr<ServeEngine> engine;  // after group: dtor order
    std::unique_ptr<SlowRankMonitor> slowRanks;
    std::mutex slowMutex;  // SlowRankMonitor is not thread-safe
    std::atomic<bool> crashed{false};
    std::atomic<std::uint64_t> routed{0};
  };

  /// One armed speculative re-issue, waiting for its fire time.
  struct HedgeTask {
    double fireAt = 0.0;
    double submitAt = 0.0;
    SolveRequest request;
    HandlePtr handle;
    std::vector<index_t> tried;
  };

  [[nodiscard]] double now() const { return clock_.seconds(); }
  [[nodiscard]] Factorization groupFactor(index_t shard,
                                          const ProblemKey& key);
  void markCrashed(index_t shard);
  [[nodiscard]] index_t pickShard(const ProblemKey& key, std::uint64_t count,
                                  const std::vector<index_t>& tried);
  void routeToShard(index_t shard, const SolveRequest& request,
                    const HandlePtr& handle, double submitAt,
                    index_t failovers, std::vector<index_t> tried,
                    bool hedge = false);
  void publishOutcome(const HandlePtr& handle, RequestOutcome outcome,
                      std::vector<double> solution, bool hedge = false);
  void scheduleHedge(const SolveRequest& request, const HandlePtr& handle,
                     double submitAt, std::vector<index_t> tried);
  void hedgeLoop();
  void fireHedge(HedgeTask task);
  [[nodiscard]] double hedgeDelaySeconds() const;

  FleetConfig config_;
  HashRing ring_;
  FleetCacheIndex index_;
  CircuitBreaker health_;
  /// mutable: report()/snapshots advance time-driven state transitions.
  mutable ShardHealthMonitor healthMon_;
  LatencyRecorder recorder_;
  Timer clock_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> nextId_{1};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> answered_{0};
  std::atomic<std::uint64_t> doubleAnswered_{0};
  std::atomic<std::uint64_t> reroutes_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> affinityHits_{0};
  std::atomic<std::uint64_t> opsBreaks_{0};
  std::atomic<std::uint64_t> opsSlows_{0};
  std::atomic<std::uint64_t> crashes_{0};
  std::atomic<std::uint64_t> resurrections_{0};
  std::atomic<std::uint64_t> healthDetours_{0};
  std::atomic<std::uint64_t> hedgesIssued_{0};
  std::atomic<std::uint64_t> hedgeWins_{0};
  std::atomic<std::uint64_t> hedgeWasted_{0};
  std::atomic<std::uint64_t> hedgeDenied_{0};

  mutable std::mutex mutex_;
  std::condition_variable idleCv_;
  std::uint64_t outstanding_ = 0;
  bool stopping_ = false;

  // Hedge scheduler: a min-heap of armed hedges drained by one thread.
  std::mutex hedgeMutex_;
  std::condition_variable hedgeCv_;
  std::vector<HedgeTask> hedgeHeap_;  // min-heap by fireAt
  bool hedgeStop_ = false;
  double hedgeTokens_ = 0.0;
  double hedgeRefillAt_ = 0.0;
  std::thread hedgeThread_;
};

}  // namespace hplmxp::serve
