// Sharded serve fabric: many ServeEngines, each backed by its own simmpi
// rank group, behind one consistent-hash router.
//
//                         FleetEngine::submit
//                                │
//                 FleetCacheIndex (hot? placed?)
//                                │
//              HashRing route / successors (healthy only)
//                                │
//        ┌───────────────┬───────┴───────┬───────────────┐
//     shard 0         shard 1         shard 2          ...
//   ServeEngine     ServeEngine     ServeEngine
//   + RankGroup     + RankGroup     + RankGroup   (factor jobs run on
//        │               │               │         the shard's grid)
//        └── Handle::onDone ── failover/publish ──┘
//
// Shard health is the existing serve/breaker state machine keyed by a
// per-shard sentinel: factor-job failures feed onFailure, successes feed
// onSuccess, and a shard whose circuit is open receives no new routes
// (drain — its in-flight requests still finish) until the cool-down
// half-opens it for a probe. A crashed shard (its rank group died, by an
// injected fault or the ops hook) additionally loses its cached factors
// and its fleet-index placements; resurrection restarts the group with a
// bumped generation and closes the circuit, and the ring re-routes the
// shard's keyspace back — no request is ever dropped or double-answered,
// which the fleet report counts prove.
//
// Completed answers are bitwise-identical across shard counts: a solution
// is a pure function of (ProblemKey, rhsSeed, maxIr) on the single-device
// solve path every shard runs, so routing, replication, and failover can
// never change the numbers — only who computes them.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/engine.h"
#include "serve/fleet/fleet_cache.h"
#include "serve/fleet/hash_ring.h"
#include "simmpi/rank_group.h"

namespace hplmxp::serve {

struct FleetConfig {
  index_t shards = 2;
  index_t virtualNodes = 64;   // ring points per shard
  index_t groupSize = 2;       // simmpi ranks per shard's grid
  /// RunOptions for every shard's rank group. A blocking-wait timeout here
  /// keeps a half-crashed grid from hanging its surviving peers forever;
  /// per-shard fault injectors are armed via armShardFaults instead.
  simmpi::RunOptions groupOptions;
  /// Fleet-wide factor-cache budget, split evenly across the per-shard
  /// FactorCaches (which stay the eviction authority; the fleet index
  /// mirrors their residency through eviction listeners).
  std::size_t fleetCacheBytes = std::size_t{64} << 20;
  /// Hot-factor replication: once a key has been routed this many times
  /// it is spread round-robin across `hotReplicas` ring successors
  /// instead of pinning its primary. 0 disables.
  index_t hotKeyRequests = 0;
  index_t hotReplicas = 2;
  /// Re-routes attempted after a shard-side failure before the failure
  /// is published to the client.
  index_t failoverLimit = 1;
  /// Per-shard engine template; cacheBytes is overridden by the fleet
  /// split and factorOverride is owned by the fleet.
  ServeConfig shard;
  /// Shard-health breaker (per-shard sentinel keys; always enabled).
  BreakerConfig health{true, 3, 0.050, 1};
};

/// One shard's row in the fleet report.
struct ShardReport {
  index_t id = 0;
  std::string health;         // healthy | broken | half-open | crashed
  bool groupAlive = true;
  index_t generation = 1;
  index_t groupSize = 1;
  std::uint64_t routed = 0;   // requests routed here (incl. failovers in)
  std::uint64_t groupJobs = 0;
  std::uint64_t groupCrashes = 0;
  ServeReport report;
};

struct FleetReport {
  std::string trace;
  index_t shards = 0;
  /// Fleet-level view: every published outcome, percentiles over the
  /// fleet total (submit to publish, failover chains included), cache
  /// stats summed over shards.
  ServeReport fleet;
  std::vector<ShardReport> perShard;

  // Router picture.
  std::uint64_t reroutes = 0;      // routed off the all-up primary
  std::uint64_t failovers = 0;     // resubmits after a shard-side failure
  std::uint64_t affinityHits = 0;  // routed to a shard already holding key
  std::uint64_t opsBreaks = 0;     // breakShard invocations
  std::uint64_t crashes = 0;       // shards that lost their grid
  std::uint64_t resurrections = 0;
  std::uint64_t healthTrips = 0;   // shard-health circuit trips
  FleetCacheIndex::Stats cacheIndex;

  // The no-lost-answer ledger the CI job gates on.
  std::uint64_t submitted = 0;
  std::uint64_t answered = 0;
  std::uint64_t dropped = 0;        // submitted - answered; must be 0
  std::uint64_t doubleAnswered = 0; // publish attempts on a done handle
  /// hits + misses == lookups over the summed shard caches.
  bool cacheLookupInvariant = true;

  [[nodiscard]] Table toTable() const;
  [[nodiscard]] std::string toJson() const;
};

class FleetEngine {
 public:
  /// Fleet-side completion handle: published exactly once, even when the
  /// request is failed over between shards.
  class Handle {
   public:
    const RequestOutcome& wait();
    [[nodiscard]] bool done() const;
    [[nodiscard]] const std::vector<double>& solution() const {
      return solution_;
    }

   private:
    friend class FleetEngine;
    /// False when the handle was already terminal (a double answer).
    bool publish(RequestOutcome outcome, std::vector<double> solution);
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool done_ = false;
    RequestOutcome outcome_;
    std::vector<double> solution_;
  };
  using HandlePtr = std::shared_ptr<Handle>;

  explicit FleetEngine(FleetConfig config);
  ~FleetEngine();

  FleetEngine(const FleetEngine&) = delete;
  FleetEngine& operator=(const FleetEngine&) = delete;

  /// Routes one request; the handle resolves exactly once. With no
  /// healthy shard left the request is answered kFailed immediately
  /// (degraded fleet: structured failure, never a hang).
  HandlePtr submit(const SolveRequest& request);

  /// Blocks until every submitted request is published.
  void drain();
  void stop();

  // --- ops hooks (the chaos surface of the CLI and CI job) -------------
  /// Trips the shard's health circuit: no new routes until the breaker's
  /// cool-down half-opens it (in-flight work drains normally).
  void breakShard(index_t shard);
  /// Closes the shard's health circuit immediately.
  void unbreakShard(index_t shard);
  /// Kills the shard's rank group and drops its cached factors plus its
  /// fleet-index placements.
  void crashShard(index_t shard);
  /// Restarts a crashed shard's group (new generation) and closes its
  /// circuit; the ring rebalances its keyspace back on the next routes.
  void resurrectShard(index_t shard);
  /// Arms a fault injector on the shard's rank group (organic crashes).
  void armShardFaults(index_t shard,
                      std::shared_ptr<simmpi::FaultInjector> faults);

  [[nodiscard]] index_t shardCount() const {
    return static_cast<index_t>(shards_.size());
  }
  [[nodiscard]] bool shardRoutable(index_t shard);
  [[nodiscard]] const ServeEngine& shardEngine(index_t shard) const {
    return *shards_[static_cast<std::size_t>(shard)]->engine;
  }
  [[nodiscard]] const HashRing& ring() const { return ring_; }
  [[nodiscard]] const FleetCacheIndex& cacheIndex() const { return index_; }
  [[nodiscard]] FleetReport report() const;

 private:
  struct Shard {
    index_t id = 0;
    ProblemKey sentinel;  // shard-health breaker key (n < 0, never real)
    std::unique_ptr<simmpi::RankGroup> group;
    std::unique_ptr<ServeEngine> engine;  // after group: dtor order
    std::atomic<bool> crashed{false};
    std::atomic<std::uint64_t> routed{0};
  };

  [[nodiscard]] double now() const { return clock_.seconds(); }
  [[nodiscard]] Factorization groupFactor(index_t shard,
                                          const ProblemKey& key);
  void markCrashed(index_t shard);
  [[nodiscard]] index_t pickShard(const ProblemKey& key, std::uint64_t count,
                                  const std::vector<index_t>& tried);
  void routeToShard(index_t shard, const SolveRequest& request,
                    const HandlePtr& handle, double submitAt,
                    index_t failovers, std::vector<index_t> tried);
  void publishOutcome(const HandlePtr& handle, RequestOutcome outcome,
                      std::vector<double> solution);

  FleetConfig config_;
  HashRing ring_;
  FleetCacheIndex index_;
  CircuitBreaker health_;
  LatencyRecorder recorder_;
  Timer clock_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> nextId_{1};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> answered_{0};
  std::atomic<std::uint64_t> doubleAnswered_{0};
  std::atomic<std::uint64_t> reroutes_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> affinityHits_{0};
  std::atomic<std::uint64_t> opsBreaks_{0};
  std::atomic<std::uint64_t> crashes_{0};
  std::atomic<std::uint64_t> resurrections_{0};

  mutable std::mutex mutex_;
  std::condition_variable idleCv_;
  std::uint64_t outstanding_ = 0;
  bool stopping_ = false;
};

}  // namespace hplmxp::serve
