#include "serve/fleet/fleet_cache.h"

#include <algorithm>

namespace hplmxp::serve {

std::uint64_t FleetCacheIndex::noteRequest(const ProblemKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  return ++keys_[key].requests;
}

std::uint64_t FleetCacheIndex::requestCount(const ProblemKey& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = keys_.find(key);
  return it != keys_.end() ? it->second.requests : 0;
}

void FleetCacheIndex::notePlacement(const ProblemKey& key, index_t shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  KeyState& st = keys_[key];
  if (std::find(st.shards.begin(), st.shards.end(), shard) ==
      st.shards.end()) {
    st.shards.push_back(shard);
    ++stats_.placements;
  }
}

void FleetCacheIndex::noteEviction(const ProblemKey& key, index_t shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = keys_.find(key);
  if (it == keys_.end()) {
    return;
  }
  auto& shards = it->second.shards;
  const auto pos = std::find(shards.begin(), shards.end(), shard);
  if (pos != shards.end()) {
    shards.erase(pos);
    ++stats_.evictions;
  }
}

void FleetCacheIndex::dropShard(index_t shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, st] : keys_) {
    const auto pos = std::find(st.shards.begin(), st.shards.end(), shard);
    if (pos != st.shards.end()) {
      st.shards.erase(pos);
      ++stats_.dropped;
    }
  }
}

std::vector<index_t> FleetCacheIndex::placements(const ProblemKey& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = keys_.find(key);
  return it != keys_.end() ? it->second.shards : std::vector<index_t>{};
}

FleetCacheIndex::Stats FleetCacheIndex::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s = stats_;
  for (const auto& [key, st] : keys_) {
    if (!st.shards.empty()) {
      ++s.residentKeys;
    }
    if (st.shards.size() >= 2) {
      ++s.replicatedKeys;
    }
  }
  return s;
}

}  // namespace hplmxp::serve
