// Consistent-hash ring mapping ProblemKeys onto fleet shards.
//
// Each shard contributes `virtualNodes` deterministic points (a SplitMix64
// hash of (shard, vnode) — no RNG state, so every process builds the
// identical ring). A key routes to the first healthy shard clockwise of
// its own hash point; replication and failover walk further clockwise to
// the next *distinct* shards. Because points depend only on (shard,
// vnode), removing a shard reassigns only the keys it owned — the classic
// consistent-hashing property that makes drain/rebalance cheap.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "serve/problem_key.h"
#include "util/common.h"

namespace hplmxp::serve {

class HashRing {
 public:
  /// Predicate deciding whether a shard may receive new routes right now.
  using HealthFn = std::function<bool(index_t)>;

  HashRing(index_t shards, index_t virtualNodes);

  [[nodiscard]] index_t shards() const { return shards_; }
  [[nodiscard]] index_t points() const {
    return static_cast<index_t>(ring_.size());
  }

  /// First healthy shard clockwise of the key's point; -1 when no shard
  /// passes `healthy`.
  [[nodiscard]] index_t route(const ProblemKey& key,
                              const HealthFn& healthy) const;

  /// Up to `count` distinct healthy shards in ring order from the key's
  /// point (the primary first, then its replica/failover successors).
  [[nodiscard]] std::vector<index_t> successors(const ProblemKey& key,
                                                index_t count,
                                                const HealthFn& healthy) const;

  /// The key's point on the ring (exposed for tests asserting placement
  /// determinism).
  [[nodiscard]] static std::uint64_t hashKey(const ProblemKey& key);

 private:
  std::vector<std::pair<std::uint64_t, index_t>> ring_;  // sorted points
  index_t shards_;
};

}  // namespace hplmxp::serve
