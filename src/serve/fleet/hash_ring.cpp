#include "serve/fleet/hash_ring.h"

#include <algorithm>

namespace hplmxp::serve {

namespace {

/// SplitMix64 finalizer — the same mixing discipline as the engine's
/// retry jitter and the fault plan: pure, seedless, replayable.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

HashRing::HashRing(index_t shards, index_t virtualNodes) : shards_(shards) {
  HPLMXP_REQUIRE(shards > 0, "hash ring needs >= 1 shard");
  HPLMXP_REQUIRE(virtualNodes > 0, "hash ring needs >= 1 virtual node");
  ring_.reserve(static_cast<std::size_t>(shards * virtualNodes));
  for (index_t s = 0; s < shards; ++s) {
    for (index_t v = 0; v < virtualNodes; ++v) {
      const std::uint64_t point =
          mix64(mix64(static_cast<std::uint64_t>(s) + 1) ^
                mix64((static_cast<std::uint64_t>(v) + 1) * 0xA24BAED4963EE407ull));
      ring_.emplace_back(point, s);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::uint64_t HashRing::hashKey(const ProblemKey& key) {
  std::uint64_t h = mix64(static_cast<std::uint64_t>(key.n));
  h = mix64(h ^ static_cast<std::uint64_t>(key.b));
  h = mix64(h ^ key.seed);
  h = mix64(h ^ static_cast<std::uint64_t>(key.pr));
  h = mix64(h ^ static_cast<std::uint64_t>(key.pc));
  h = mix64(h ^ static_cast<std::uint64_t>(key.scheduler));
  h = mix64(h ^ static_cast<std::uint64_t>(key.precision));
  return h;
}

index_t HashRing::route(const ProblemKey& key, const HealthFn& healthy) const {
  const std::uint64_t point = hashKey(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(point, index_t{0}));
  for (std::size_t walked = 0; walked < ring_.size(); ++walked) {
    if (it == ring_.end()) {
      it = ring_.begin();  // wrap
    }
    if (!healthy || healthy(it->second)) {
      return it->second;
    }
    ++it;
  }
  return -1;
}

std::vector<index_t> HashRing::successors(const ProblemKey& key, index_t count,
                                          const HealthFn& healthy) const {
  std::vector<index_t> out;
  if (count <= 0) {
    return out;
  }
  const std::uint64_t point = hashKey(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(point, index_t{0}));
  std::vector<bool> seen(static_cast<std::size_t>(shards_), false);
  for (std::size_t walked = 0; walked < ring_.size(); ++walked) {
    if (it == ring_.end()) {
      it = ring_.begin();
    }
    const index_t s = it->second;
    if (!seen[static_cast<std::size_t>(s)]) {
      seen[static_cast<std::size_t>(s)] = true;
      if (!healthy || healthy(s)) {
        out.push_back(s);
        if (static_cast<index_t>(out.size()) == count) {
          break;
        }
      }
    }
    ++it;
  }
  return out;
}

}  // namespace hplmxp::serve
