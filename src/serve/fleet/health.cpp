#include "serve/fleet/health.h"

#include <algorithm>
#include <cmath>

namespace hplmxp::serve {

void HealthConfig::validate() const {
  HPLMXP_REQUIRE(heartbeatIntervalSeconds > 0.0,
                 "heartbeat interval must be positive");
  HPLMXP_REQUIRE(windowSize >= 2, "phi window needs >= 2 samples");
  HPLMXP_REQUIRE(minStdDevSeconds > 0.0, "phi std-dev floor must be > 0");
  HPLMXP_REQUIRE(minSamples >= 1, "phi needs >= 1 warm-up sample");
  HPLMXP_REQUIRE(suspectPhi > 0.0 && quarantinePhi > suspectPhi,
                 "need 0 < suspectPhi < quarantinePhi");
  HPLMXP_REQUIRE(quarantineDwellSeconds >= 0.0, "negative quarantine dwell");
  HPLMXP_REQUIRE(probeQuota >= 1, "probing needs >= 1 probe");
  HPLMXP_REQUIRE(stragglerStrikes >= 1, "straggler strikes must be >= 1");
}

ShardHealthMonitor::ShardHealthMonitor(HealthConfig config, index_t shards)
    : config_(config) {
  config_.validate();
  HPLMXP_REQUIRE(shards >= 1, "health monitor needs >= 1 shard");
  entries_.resize(static_cast<std::size_t>(shards));
}

ShardHealthMonitor::Entry& ShardHealthMonitor::entry(index_t shard) {
  HPLMXP_REQUIRE(shard >= 0 &&
                     shard < static_cast<index_t>(entries_.size()),
                 "health monitor: shard out of range");
  return entries_[static_cast<std::size_t>(shard)];
}

void ShardHealthMonitor::meanStd(const Entry& e, double* mean,
                                 double* std) const {
  // The configured cadence seeds the fit so a shard with a short history
  // is judged against the expected pace rather than an empty window.
  double sum = config_.heartbeatIntervalSeconds;
  double sumSq =
      config_.heartbeatIntervalSeconds * config_.heartbeatIntervalSeconds;
  double count = 1.0;
  for (const double interval : e.window) {
    sum += interval;
    sumSq += interval * interval;
    count += 1.0;
  }
  const double m = sum / count;
  const double var = std::max(0.0, sumSq / count - m * m);
  *mean = m;
  *std = std::max(config_.minStdDevSeconds, std::sqrt(var));
}

double ShardHealthMonitor::phiLocked(const Entry& e, double now) const {
  if (!e.seeded ||
      e.heartbeats < static_cast<std::uint64_t>(config_.minSamples)) {
    return 0.0;  // cold start: no basis for suspicion yet
  }
  const double since = now - e.lastArrival;
  if (since <= 0.0) {
    return 0.0;
  }
  double mean = 0.0;
  double std = 0.0;
  meanStd(e, &mean, &std);
  // Normal-tail probability that a heartbeat gap exceeds `since`;
  // phi = -log10 of it. erfc keeps the tail accurate where 1 - cdf
  // would cancel to zero.
  const double z = (since - mean) / (std * std::sqrt(2.0));
  const double tail = 0.5 * std::erfc(z);
  if (tail <= 1e-30) {
    return 30.0;  // saturate: gap is astronomically unlikely
  }
  return -std::log10(tail);
}

void ShardHealthMonitor::enterQuarantine(Entry& e, double now) {
  e.state = HealthState::kQuarantined;
  e.quarantinedAt = now;
  e.probesUsed = 0;
  ++e.quarantines;
}

void ShardHealthMonitor::advance(Entry& e, double now) {
  switch (e.state) {
    case HealthState::kHealthy: {
      const double p = phiLocked(e, now);
      if (p >= config_.quarantinePhi) {
        enterQuarantine(e, now);
      } else if (p >= config_.suspectPhi) {
        e.state = HealthState::kSuspect;
      }
      break;
    }
    case HealthState::kSuspect: {
      const double p = phiLocked(e, now);
      if (p >= config_.quarantinePhi) {
        enterQuarantine(e, now);
      } else if (p < config_.suspectPhi && e.stragglerStreak == 0) {
        e.state = HealthState::kHealthy;
      }
      break;
    }
    case HealthState::kQuarantined:
      if (now - e.quarantinedAt >= config_.quarantineDwellSeconds) {
        e.state = HealthState::kProbing;
        e.probesUsed = 0;
      }
      break;
    case HealthState::kProbing:
      break;  // probe outcomes drive the exits
  }
}

void ShardHealthMonitor::heartbeat(index_t shard, double now) {
  if (!config_.enabled) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entry(shard);
  if (e.seeded) {
    const double interval = std::max(0.0, now - e.lastArrival);
    if (static_cast<index_t>(e.window.size()) < config_.windowSize) {
      e.window.push_back(interval);
    } else {
      e.window[static_cast<std::size_t>(e.windowNext)] = interval;
      e.windowNext = (e.windowNext + 1) % config_.windowSize;
    }
  }
  e.seeded = true;
  e.lastArrival = now;
  ++e.heartbeats;
  e.stragglerStreak = 0;
  advance(e, now);
}

void ShardHealthMonitor::noteStraggler(index_t shard, double now) {
  if (!config_.enabled) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entry(shard);
  ++e.stragglers;
  ++e.stragglerStreak;
  if (e.state == HealthState::kHealthy) {
    e.state = HealthState::kSuspect;
  }
  if (e.state == HealthState::kSuspect &&
      e.stragglerStreak >= config_.stragglerStrikes) {
    enterQuarantine(e, now);
  }
}

void ShardHealthMonitor::onOutcome(index_t shard, bool success, double now) {
  if (!config_.enabled) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entry(shard);
  if (e.state == HealthState::kProbing) {
    if (success) {
      // Healed. The stale gap that put the shard here must not re-trip
      // the detector, so the probe's completion re-seeds the arrival
      // clock without contributing the quarantine-sized interval.
      e.state = HealthState::kHealthy;
      e.stragglerStreak = 0;
      e.seeded = true;
      e.lastArrival = now;
      ++e.heartbeats;
    } else {
      enterQuarantine(e, now);
    }
    return;
  }
  if (success) {
    // Re-run heartbeat logic inline (the lock is not recursive).
    if (e.seeded) {
      const double interval = std::max(0.0, now - e.lastArrival);
      if (static_cast<index_t>(e.window.size()) < config_.windowSize) {
        e.window.push_back(interval);
      } else {
        e.window[static_cast<std::size_t>(e.windowNext)] = interval;
        e.windowNext = (e.windowNext + 1) % config_.windowSize;
      }
    }
    e.seeded = true;
    e.lastArrival = now;
    ++e.heartbeats;
    e.stragglerStreak = 0;
    advance(e, now);
  }
  // Non-probe failures are the CircuitBreaker's evidence, not ours: a
  // failing-fast shard has a *healthy* heartbeat cadence.
}

bool ShardHealthMonitor::routable(index_t shard, double now) {
  if (!config_.enabled) {
    return true;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entry(shard);
  advance(e, now);
  switch (e.state) {
    case HealthState::kHealthy:
    case HealthState::kSuspect:
      return true;
    case HealthState::kQuarantined:
      return false;
    case HealthState::kProbing:
      if (e.probesUsed >= config_.probeQuota) {
        return false;
      }
      ++e.probesUsed;
      ++e.probes;
      return true;
  }
  return true;
}

double ShardHealthMonitor::phi(index_t shard, double now) const {
  if (!config_.enabled) {
    return 0.0;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  HPLMXP_REQUIRE(shard >= 0 &&
                     shard < static_cast<index_t>(entries_.size()),
                 "health monitor: shard out of range");
  return phiLocked(entries_[static_cast<std::size_t>(shard)], now);
}

HealthState ShardHealthMonitor::state(index_t shard, double now) {
  if (!config_.enabled) {
    return HealthState::kHealthy;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entry(shard);
  advance(e, now);
  return e.state;
}

std::uint64_t ShardHealthMonitor::quarantines() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const Entry& e : entries_) {
    total += e.quarantines;
  }
  return total;
}

std::uint64_t ShardHealthMonitor::stragglerReports() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const Entry& e : entries_) {
    total += e.stragglers;
  }
  return total;
}

ShardHealthMonitor::ShardSnapshot ShardHealthMonitor::shardSnapshot(
    index_t shard, double now) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entry(shard);
  if (config_.enabled) {
    advance(e, now);
  }
  ShardSnapshot s;
  s.shard = shard;
  s.state = e.state;
  s.phi = phiLocked(e, now);
  s.lastHeartbeatAge = e.seeded ? now - e.lastArrival : 0.0;
  double std = 0.0;
  meanStd(e, &s.meanIntervalSeconds, &std);
  s.heartbeats = e.heartbeats;
  s.stragglerReports = e.stragglers;
  s.quarantines = e.quarantines;
  s.probes = e.probes;
  return s;
}

std::vector<ShardHealthMonitor::ShardSnapshot> ShardHealthMonitor::snapshot(
    double now) {
  std::vector<ShardSnapshot> out;
  out.reserve(entries_.size());
  for (index_t s = 0; s < static_cast<index_t>(entries_.size()); ++s) {
    out.push_back(shardSnapshot(s, now));
  }
  return out;
}

}  // namespace hplmxp::serve
