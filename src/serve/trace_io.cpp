#include "serve/trace_io.h"

#include <fstream>
#include <sstream>

#include "serve/json.h"

namespace hplmxp::serve {

RequestTrace loadRequestTrace(const std::string& path) {
  std::ifstream in(path);
  HPLMXP_REQUIRE(in.good(), ("cannot open trace file: " + path).c_str());
  std::ostringstream text;
  text << in.rdbuf();

  const JsonValue doc = JsonValue::parse(text.str());
  RequestTrace trace;
  trace.name = doc.stringOr("name", path);

  const JsonValue& requests = doc.get("requests");
  double prevAtMs = 0.0;
  for (const JsonValue& r : requests.asArray()) {
    TraceRequest tr;
    if (r.has("arrival_us")) {
      const double gapUs = r.get("arrival_us").asNumber();
      HPLMXP_REQUIRE(gapUs >= 0.0, "arrival_us must be non-negative");
      tr.atMs = prevAtMs + gapUs / 1000.0;
    } else {
      tr.atMs = r.numberOr("at_ms", 0.0);
    }
    prevAtMs = tr.atMs;
    tr.n = static_cast<index_t>(r.get("n").asNumber());
    tr.b = static_cast<index_t>(r.get("b").asNumber());
    tr.seed = static_cast<std::uint64_t>(r.get("seed").asNumber());
    tr.rhsSeed = static_cast<std::uint64_t>(r.numberOr(
        "rhs_seed", static_cast<double>(tr.seed)));
    tr.deadlineMs = r.numberOr("deadline_ms", 0.0);
    tr.pr = static_cast<index_t>(r.numberOr("pr", 1.0));
    tr.pc = static_cast<index_t>(r.numberOr("pc", 1.0));
    tr.precision = lowp::precisionFromString(r.stringOr("precision", "fp16"));
    HPLMXP_REQUIRE(tr.n > 0 && tr.b > 0,
                   "trace request needs positive n and b");
    trace.requests.push_back(tr);
  }
  return trace;
}

std::string traceToJson(const RequestTrace& trace) {
  std::ostringstream os;
  os.precision(6);
  os << "{\n  \"name\": " << jsonQuote(trace.name)
     << ",\n  \"requests\": [\n";
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    const TraceRequest& r = trace.requests[i];
    os << "    {\"at_ms\": " << r.atMs << ", \"n\": " << r.n
       << ", \"b\": " << r.b << ", \"seed\": " << r.seed
       << ", \"rhs_seed\": " << r.rhsSeed
       << ", \"deadline_ms\": " << r.deadlineMs;
    if (r.pr != 1 || r.pc != 1) {
      os << ", \"pr\": " << r.pr << ", \"pc\": " << r.pc;
    }
    if (r.precision != lowp::StoragePrecision::kFp16) {
      os << ", \"precision\": " << jsonQuote(lowp::toString(r.precision));
    }
    os << "}" << (i + 1 < trace.requests.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

RequestTrace makeSyntheticTrace(index_t requests, index_t keys, double gapMs,
                                index_t baseN, index_t baseB,
                                std::uint64_t seed0) {
  HPLMXP_REQUIRE(requests > 0, "synthetic trace needs >= 1 request");
  HPLMXP_REQUIRE(keys > 0, "synthetic trace needs >= 1 key");
  RequestTrace trace;
  trace.name = "synthetic-" + std::to_string(requests) + "x" +
               std::to_string(keys);
  trace.requests.reserve(static_cast<std::size_t>(requests));
  for (index_t i = 0; i < requests; ++i) {
    TraceRequest r;
    r.atMs = gapMs * static_cast<double>(i);
    r.n = baseN;
    r.b = baseB;
    r.seed = seed0 + static_cast<std::uint64_t>(i % keys);
    r.rhsSeed = seed0 + 1000 + static_cast<std::uint64_t>(i);
    trace.requests.push_back(r);
  }
  return trace;
}

}  // namespace hplmxp::serve
