// Solve request and outcome types of the serving subsystem.
#pragma once

#include <cstdint>
#include <string>

#include "serve/problem_key.h"
#include "util/common.h"

namespace hplmxp::serve {

/// One inbound solve request: "refine the rhs stream of rhsSeed against
/// the factorization of `key`". Deadlines are relative to submission;
/// 0 inherits the engine default (and a 0 default means no deadline).
struct SolveRequest {
  std::uint64_t id = 0;
  ProblemKey key;
  std::uint64_t rhsSeed = 0;
  double deadlineSeconds = 0.0;
};

/// Terminal states of a request. Admission control rejects before any
/// work happens (kRejectedQueueFull); deadline rejections can happen at
/// admission, after an injected delay, or after a slow factorization —
/// the contract is that a late request is *answered* late-as-rejected,
/// never silently hung.
enum class RequestStatus {
  kPending,
  kCompleted,
  kRejectedQueueFull,
  kRejectedDeadline,
  kRejectedCircuitOpen,
  kFailed,
};

[[nodiscard]] constexpr const char* toString(RequestStatus s) {
  switch (s) {
    case RequestStatus::kPending: return "pending";
    case RequestStatus::kCompleted: return "completed";
    case RequestStatus::kRejectedQueueFull: return "rejected-queue-full";
    case RequestStatus::kRejectedDeadline: return "rejected-deadline";
    case RequestStatus::kRejectedCircuitOpen: return "rejected-circuit-open";
    case RequestStatus::kFailed: return "failed";
  }
  return "?";
}

/// What happened to one request, with the latency split the report
/// percentiles are computed from: queue wait (submission to batch pickup,
/// including requeue time after transient faults) vs. service time
/// (factor + batched solve).
struct RequestOutcome {
  std::uint64_t id = 0;
  ProblemKey key;
  std::uint64_t rhsSeed = 0;
  RequestStatus status = RequestStatus::kPending;

  double queueWaitSeconds = 0.0;
  double factorSeconds = 0.0;  // 0 on a cache hit
  double solveSeconds = 0.0;
  double totalSeconds = 0.0;  // submission to completion/rejection

  bool cacheHit = false;
  index_t batchSize = 0;  // columns in the coalesced solve that served it
  index_t irIterations = 0;
  bool converged = false;
  double residualInf = 0.0;
  index_t retries = 0;  // re-executions after injected transient faults
  index_t shard = -1;   // serving shard in a fleet; -1 single-engine
  index_t failovers = 0;  // fleet re-routes after a shard-side failure
  bool hedged = false;    // answered by a speculative fleet re-issue
  std::string error;
};

}  // namespace hplmxp::serve
