// Per-request latency recording and the serving report.
//
// Every finished request (completed, rejected, or failed) deposits its
// RequestOutcome here; the report splits completed-request latency into
// queue wait vs. service time and summarizes both as p50/p95/p99, next to
// throughput, admission counters, and the factor-cache hit picture. The
// JSON rendering is the BENCH_serve.json contract the CI serve-smoke job
// checks fields of.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "serve/factor_cache.h"
#include "serve/request.h"
#include "util/table.h"

namespace hplmxp::serve {

/// p50/p95/p99 of one latency series, in milliseconds.
struct LatencyPercentiles {
  double p50Ms = 0.0;
  double p95Ms = 0.0;
  double p99Ms = 0.0;
  double maxMs = 0.0;

  static LatencyPercentiles of(const std::vector<double>& seconds);
  [[nodiscard]] std::string toJson() const;
};

struct ServeReport {
  std::string trace;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejectedQueueFull = 0;
  std::uint64_t rejectedDeadline = 0;
  std::uint64_t rejectedCircuitOpen = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;

  double wallSeconds = 0.0;
  double throughputRps = 0.0;  // completed per wall second
  double meanBatchSize = 0.0;
  index_t maxBatchSize = 0;
  std::uint64_t batchedSolves = 0;  // coalesced multi-RHS executions
  index_t peakQueueDepth = 0;

  // Chaos tallies (zero when no injector is armed).
  std::uint64_t injectedDelays = 0;
  std::uint64_t injectedTransients = 0;

  // Circuit-breaker picture (zero when the breaker is disabled). Filled
  // by the engine, not the recorder.
  std::uint64_t breakerTrips = 0;
  std::uint64_t breakerRejections = 0;
  index_t breakersOpen = 0;
  bool degraded = false;

  // Gray-failure defense tallies (zero outside a fleet). Filled by the
  // FleetEngine, not the recorder.
  std::uint64_t hedges = 0;
  std::uint64_t hedgeWins = 0;
  std::uint64_t hedgeWasted = 0;
  std::uint64_t quarantines = 0;

  FactorCache::Stats cache;
  LatencyPercentiles queueWait;  // completed requests only
  LatencyPercentiles solve;      // batched solve time per request
  LatencyPercentiles total;      // submission to completion

  [[nodiscard]] Table toTable() const;
  [[nodiscard]] std::string toJson() const;
};

/// Thread-safe sink of finished requests.
class LatencyRecorder {
 public:
  void record(const RequestOutcome& outcome);

  /// Also counts coalesced executions for the batching stats.
  void recordBatch(index_t batchSize);

  [[nodiscard]] std::vector<RequestOutcome> outcomes() const;

  /// p95 of the last ~256 completed requests' total latency (seconds);
  /// 0 before any completion. The hedge scheduler derives its fire delay
  /// from this, so it must track the *current* service level, not the
  /// whole run's history.
  [[nodiscard]] double recentTotalP95Seconds() const;

  /// Builds the report from everything recorded so far. Cache stats and
  /// wall time are supplied by the engine.
  [[nodiscard]] ServeReport report(const FactorCache::Stats& cacheStats,
                                   double wallSeconds,
                                   index_t peakQueueDepth) const;

 private:
  static constexpr std::size_t kRecentWindow = 256;

  mutable std::mutex mutex_;
  std::vector<RequestOutcome> outcomes_;
  std::vector<double> recentTotals_;  // ring of completed totals (seconds)
  std::size_t recentNext_ = 0;
  std::uint64_t batchedSolves_ = 0;
  std::uint64_t batchedColumns_ = 0;
  index_t maxBatchSize_ = 0;
};

/// Writes `json` to `path` (throws CheckError on I/O failure).
void writeReportFile(const std::string& path, const std::string& json);

}  // namespace hplmxp::serve
